// Package vzlens is a Go reproduction of "Ten years of the Venezuelan
// crisis — An Internet perspective" (ACM SIGCOMM 2024): the analysis
// pipeline behind every figure and table of the paper, the parsers for
// each archival dataset format it consumes, and a calibrated synthetic
// Latin-American Internet standing in for the live measurement platforms.
//
// The library lives under internal/; the runnable surfaces are the
// binaries in cmd/ (vzreport, vzgen, vzfigs), the programs in examples/,
// and the per-experiment benchmarks in bench_test.go.
package vzlens
