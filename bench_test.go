// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment, plus ablation benchmarks for the design
// choices called out in DESIGN.md. Each benchmark prints the headline
// rows it reproduces once, then times regeneration.
//
//	go test -bench=. -benchmem
package vzlens

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"sync"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/core"
	"vzlens/internal/dnsplane"
	"vzlens/internal/dnsroot"
	"vzlens/internal/dnswire"
	"vzlens/internal/facts"
	"vzlens/internal/geo"
	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/netsim"
	"vzlens/internal/offnet"
	"vzlens/internal/query"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
	"vzlens/internal/sweep"
	"vzlens/internal/world"
)

// benchWorld is shared across benchmarks; campaigns run at quarterly
// resolution to keep the full suite fast while preserving the headline
// statistics.
var (
	benchOnce  sync.Once
	benchW     *world.World
	benchTrace *atlas.TraceCampaign
	benchChaos *atlas.ChaosCampaign
)

// mustBuild is the bench-only panicking form of world.Build.
func mustBuild(cfg world.Config) *world.World {
	w, err := world.Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func setup() {
	benchOnce.Do(func() {
		benchW = mustBuild(world.Config{Step: 3})
		benchTrace = benchW.TraceCampaign()
		benchChaos = benchW.ChaosCampaign()
	})
}

// printed tracks which experiment summaries have been shown, so each
// prints exactly once across benchmark reruns.
var printed sync.Map

func showOnce(id string, table *core.Table) {
	if _, loaded := printed.LoadOrStore(id, true); !loaded {
		fmt.Printf("\n%s\n", table.Text())
	}
}

func BenchmarkFig1Economy(b *testing.B) {
	var r core.Fig1Result
	for i := 0; i < b.N; i++ {
		r = core.Fig1Economy()
	}
	showOnce("fig1", r.Table())
	b.ReportMetric(r.OilDropPct, "oil_drop_%")
	b.ReportMetric(r.GDPDropPct, "gdp_drop_%")
}

func BenchmarkFig2AddressSpace(b *testing.B) {
	setup()
	var r core.Fig2Result
	for i := 0; i < b.N; i++ {
		r = core.Fig2AddressSpace(benchW)
	}
	showOnce("fig2", r.Table())
	b.ReportMetric(r.CANTVPeakShare*100, "cantv_peak_%")
}

func BenchmarkFig3Facilities(b *testing.B) {
	setup()
	var r core.Fig3Result
	for i := 0; i < b.N; i++ {
		r = core.Fig3Facilities(benchW)
	}
	showOnce("fig3", r.Table())
	b.ReportMetric(float64(r.RegionEnd), "facilities_2024")
}

func BenchmarkFig4Cables(b *testing.B) {
	setup()
	var r core.Fig4Result
	for i := 0; i < b.N; i++ {
		r = core.Fig4Cables(benchW)
	}
	showOnce("fig4", r.Table())
	b.ReportMetric(float64(r.RegionAt2024), "cables_2024")
}

func BenchmarkFig5IPv6(b *testing.B) {
	var r core.Fig5Result
	for i := 0; i < b.N; i++ {
		r = core.Fig5IPv6()
	}
	showOnce("fig5", r.Table())
	b.ReportMetric(r.VELatest, "ve_ipv6_%")
}

func BenchmarkFig6RootDNS(b *testing.B) {
	setup()
	var r core.Fig6Result
	for i := 0; i < b.N; i++ {
		r = core.Fig6RootDNS(benchChaos)
	}
	showOnce("fig6", r.Table())
	b.ReportMetric(float64(r.RegionEnd), "replicas_2024")
}

func BenchmarkFig7Offnets(b *testing.B) {
	setup()
	var r core.Fig7Result
	for i := 0; i < b.N; i++ {
		r = core.Fig7Offnets(benchW, []string{"Google", "Akamai", "Facebook", "Netflix"})
	}
	showOnce("fig7", r.Table())
	b.ReportMetric(r.VEAverage["Google"]*100, "ve_google_%")
}

func BenchmarkFig8CANTV(b *testing.B) {
	setup()
	var r core.Fig8Result
	for i := 0; i < b.N; i++ {
		r = core.Fig8CANTV(benchW)
	}
	showOnce("fig8", r.Table())
	b.ReportMetric(float64(r.PeakUpstreams), "peak_upstreams")
	b.ReportMetric(float64(r.TroughUpstreams), "trough_upstreams")
}

func BenchmarkFig9TransitHeatmap(b *testing.B) {
	setup()
	var r core.Fig9Result
	for i := 0; i < b.N; i++ {
		r = core.Fig9TransitHeatmap(benchW)
	}
	showOnce("fig9", r.Table())
	b.ReportMetric(float64(len(r.USDepartures)), "us_departures")
}

func BenchmarkFig10IXPHeatmap(b *testing.B) {
	setup()
	var r core.Fig10Result
	for i := 0; i < b.N; i++ {
		r = core.Fig10IXPHeatmap(benchW)
	}
	showOnce("fig10", r.Table())
	b.ReportMetric(r.ARShareAtARIX*100, "arix_share_%")
}

func BenchmarkFig11Bandwidth(b *testing.B) {
	var r core.Fig11Result
	lo, hi := months.New(2007, time.July), months.New(2024, time.January)
	for i := 0; i < b.N; i++ {
		r = core.Fig11Bandwidth(1, lo, hi, 3)
	}
	showOnce("fig11", r.Table())
	b.ReportMetric(r.VEJuly2023, "ve_mbps_2023")
}

func BenchmarkFig12GPDNS(b *testing.B) {
	setup()
	var r core.Fig12Result
	for i := 0; i < b.N; i++ {
		r = core.Fig12GPDNS(benchTrace)
	}
	showOnce("fig12", r.Table())
	b.ReportMetric(r.VE2023H2, "ve_rtt_ms")
	b.ReportMetric(r.VEOverRegion, "ve_over_region")
}

func BenchmarkTable1Eyeballs(b *testing.B) {
	setup()
	var r core.Table1Result
	for i := 0; i < b.N; i++ {
		r = core.Table1Eyeballs(benchW)
	}
	showOnce("table1", r.Table())
	b.ReportMetric(r.CANTVShare*100, "cantv_share_%")
}

func BenchmarkFig13GDPRank(b *testing.B) {
	var r core.Fig13Result
	for i := 0; i < b.N; i++ {
		r = core.Fig13GDPRank()
	}
	showOnce("fig13", r.Table())
	b.ReportMetric(float64(r.Ranks[2020]), "ve_rank_2020")
}

func BenchmarkFig14PrefixVisibility(b *testing.B) {
	setup()
	var r core.Fig14Result
	for i := 0; i < b.N; i++ {
		r = core.Fig14PrefixVisibility(benchW)
	}
	showOnce("fig14", r.Table())
	b.ReportMetric(float64(len(r.Withdrawn)), "withdrawn_prefixes")
}

func BenchmarkFig15FacilityMembers(b *testing.B) {
	setup()
	var r core.Fig15Result
	for i := 0; i < b.N; i++ {
		r = core.Fig15FacilityMembers(benchW)
	}
	showOnce("fig15", r.Table())
	b.ReportMetric(float64(r.Latest["Cirion La Urbina"]), "cirion_members")
}

func BenchmarkFig16RootOrigins(b *testing.B) {
	setup()
	var r core.Fig16Result
	for i := 0; i < b.N; i++ {
		r = core.Fig16RootOrigins(benchChaos)
	}
	showOnce("fig16", r.Table())
	b.ReportMetric(float64(len(r.LatestTop)), "origin_countries")
}

func BenchmarkFig17AtlasFootprint(b *testing.B) {
	setup()
	var r core.Fig17Result
	for i := 0; i < b.N; i++ {
		r = core.Fig17AtlasFootprint(benchW)
	}
	showOnce("fig17", r.Table())
	b.ReportMetric(float64(r.VE2024), "ve_probes_2024")
}

func BenchmarkFig18AllHypergiants(b *testing.B) {
	setup()
	var r core.Fig7Result
	for i := 0; i < b.N; i++ {
		r = core.Fig7Offnets(benchW, []string{
			"Microsoft", "Cloudflare", "Amazon", "Limelight", "CDNetworks", "Alibaba",
		})
	}
	showOnce("fig18", r.Table())
	b.ReportMetric(r.VEAverage["Cloudflare"]*100, "ve_cloudflare_%")
}

func BenchmarkFig19ThirdParty(b *testing.B) {
	var r core.Fig19Result
	for i := 0; i < b.N; i++ {
		r = core.Fig19ThirdParty()
	}
	showOnce("fig19", r.Table())
	b.ReportMetric(r.VE.DNS, "ve_dns")
	b.ReportMetric(r.VE.CDN, "ve_cdn")
}

func BenchmarkFig20ProbeGeo(b *testing.B) {
	setup()
	var r core.Fig20Result
	m := months.New(2023, time.December)
	for i := 0; i < b.N; i++ {
		r = core.Fig20ProbeGeo(benchW.Fleet, benchTrace, m)
	}
	showOnce("fig20", r.Table())
	b.ReportMetric(float64(r.Under10), "border_probes")
}

func BenchmarkFig21USIXPs(b *testing.B) {
	setup()
	var r core.Fig21Result
	for i := 0; i < b.N; i++ {
		r = core.Fig21USIXPs(benchW)
	}
	showOnce("fig21", r.Table())
	b.ReportMetric(float64(r.VENetworks), "ve_networks")
	b.ReportMetric(r.VEShare*100, "ve_share_%")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationRTTEstimator compares the paper's estimator (median of
// per-probe minimums) against a naive mean over raw samples, reporting
// how much congestion noise the naive estimator absorbs.
func BenchmarkAblationRTTEstimator(b *testing.B) {
	setup()
	m := months.New(2023, time.September) // on the quarterly campaign grid
	var robust, naive float64
	for i := 0; i < b.N; i++ {
		robust, _ = benchTrace.CountryMedian("VE", m)
		naive, _ = benchTrace.CountryMeanNaive("VE", m)
	}
	b.ReportMetric(robust, "median_of_min_ms")
	b.ReportMetric(naive, "naive_mean_ms")
	b.ReportMetric(naive-robust, "noise_absorbed_ms")
}

// BenchmarkAblationOrgAggregation compares organization-level off-net
// coverage (as2org+) with raw per-AS accounting for Google in Venezuela.
func BenchmarkAblationOrgAggregation(b *testing.B) {
	setup()
	hosts := benchW.OffnetHosts("Google", "VE", 2021)
	var withOrg, withoutOrg float64
	for i := 0; i < b.N; i++ {
		withOrg = offnet.Coverage("VE", hosts, benchW.Pop, benchW.Orgs)
		withoutOrg = offnet.CoverageNoOrg("VE", hosts, benchW.Pop)
	}
	b.ReportMetric(withOrg*100, "org_coverage_%")
	b.ReportMetric(withoutOrg*100, "as_coverage_%")
}

// BenchmarkAblationCatchmentPolicy compares BGP shortest-path catchment
// with naive geographic-nearest selection for a Caracas vantage point:
// geography predicts a nearby Colombian replica, BGP delivers Miami.
func BenchmarkAblationCatchmentPolicy(b *testing.B) {
	setup()
	m := months.New(2023, time.June)
	resolver := benchW.TopologyAt(m)
	sites := benchW.GPDNSSitesAt(m)
	probe := atlas.Probe{ASN: world.ASCANTV, Country: "VE"}
	if veProbes := benchW.Fleet.ActiveIn("VE", m); len(veProbes) > 0 {
		probe = veProbes[0]
	}
	var bgpLat, geoLat float64
	for i := 0; i < b.N; i++ {
		_, bgpLat, _ = resolver.CatchmentFrom(probe.ASN, probe.City, sites, netsim.PolicyBGP)
		_, geoLat, _ = resolver.CatchmentFrom(probe.ASN, probe.City, sites, netsim.PolicyGeo)
	}
	b.ReportMetric(bgpLat, "bgp_oneway_ms")
	b.ReportMetric(geoLat, "geo_oneway_ms")
}

// BenchmarkAblationSpeedEstimator compares median and mean download-speed
// aggregation under the heavy-tailed NDT distribution: the mean is pulled
// far above the typical user's experience.
func BenchmarkAblationSpeedEstimator(b *testing.B) {
	m := months.New(2023, time.July)
	gen := mlab.NewGenerator(1)
	archive := mlab.NewArchive()
	archive.Add(gen.Draw("VE", m, 10000))
	var median, mean float64
	for i := 0; i < b.N; i++ {
		median, _ = archive.Median("VE", m)
		mean, _ = archive.Mean("VE", m)
	}
	b.ReportMetric(median, "ve_median_mbps")
	b.ReportMetric(mean, "ve_mean_mbps")
}

// BenchmarkCrisisSignatures times the automated detector sweep across
// every Venezuelan series (the future-work extension).
func BenchmarkCrisisSignatures(b *testing.B) {
	setup()
	var r core.SignaturesResult
	for i := 0; i < b.N; i++ {
		r = core.CrisisSignatures(benchW, benchChaos)
	}
	showOnce("signatures", r.Table())
	b.ReportMetric(float64(len(r.Signatures)), "signatures")
}

// --- System benchmarks: the simulator itself ---

// BenchmarkWorldBuild times constructing the synthetic region.
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustBuild(world.Config{Step: 3})
	}
}

// BenchmarkTraceCampaignMonth times one monthly snapshot of the GPDNS
// traceroute campaign (every probe, catchment plus samples).
func BenchmarkTraceCampaignMonth(b *testing.B) {
	m := months.New(2023, time.July)
	w := mustBuild(world.Config{TraceStart: m, TraceEnd: m})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.TraceCampaign()
	}
}

// BenchmarkChaosCampaignMonth times one monthly snapshot of the built-in
// CHAOS measurements (every probe, all thirteen letters).
func BenchmarkChaosCampaignMonth(b *testing.B) {
	m := months.New(2023, time.July)
	w := mustBuild(world.Config{ChaosStart: m, ChaosEnd: m})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.ChaosCampaign()
	}
}

// campaignWorkerCounts are the pool sizes the full-campaign benchmarks
// sweep; the workers=1 row is the sequential baseline the parallel rows
// are judged against.
var campaignWorkerCounts = []int{1, 4, 8}

// BenchmarkTraceCampaignFull times the complete multi-year traceroute
// campaign (2014-03..2024-01, quarterly) at several worker-pool sizes.
// Each iteration builds a fresh world so no topology or tree cache
// carries over between pool sizes.
func BenchmarkTraceCampaignFull(b *testing.B) {
	for _, workers := range campaignWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := mustBuild(world.Config{Step: 3, Workers: workers})
				_ = w.TraceCampaign()
			}
		})
	}
}

// BenchmarkChaosCampaignFull times the complete multi-year CHAOS sweep
// (2016-01..2024-01, quarterly, thirteen letters) at several worker-pool
// sizes.
func BenchmarkChaosCampaignFull(b *testing.B) {
	for _, workers := range campaignWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := mustBuild(world.Config{Step: 3, Workers: workers})
				_ = w.ChaosCampaign()
			}
		})
	}
}

// BenchmarkTraceCampaignWarm times a full traceroute replay on a world
// whose kernel caches (interned topologies, site lists, localization
// memos, arena pool) are already hot — the steady-state cost of one
// sweep iteration. This is the allocation benchmark for the columnar
// kernel: allocs/op here is output slices plus scheduling, nothing else.
func BenchmarkTraceCampaignWarm(b *testing.B) {
	w := mustBuild(world.Config{Step: 3, Workers: 1})
	_ = w.TraceCampaign()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.TraceCampaign()
	}
}

// BenchmarkChaosCampaignWarm is BenchmarkTraceCampaignWarm for the
// thirteen-letter CHAOS sweep.
func BenchmarkChaosCampaignWarm(b *testing.B) {
	w := mustBuild(world.Config{Step: 3, Workers: 1})
	_ = w.ChaosCampaign()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.ChaosCampaign()
	}
}

// BenchmarkValleyFreeTree times one single-source valley-free
// shortest-path tree over the full topology.
func BenchmarkValleyFreeTree(b *testing.B) {
	setup()
	m := months.New(2023, time.July)
	topo := benchW.TopologyAt(m).Topology()
	srcs := benchW.Nets["VE"].Eyeballs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := netsim.NewResolver(topo)
		_ = r.PathInfoFrom(srcs[i%len(srcs)], world.ASGoogle)
	}
}

// BenchmarkChaosParse times the 13-format CHAOS TXT extraction.
func BenchmarkChaosParse(b *testing.B) {
	setup()
	names := []struct {
		letter byte
		txt    string
	}{
		{'L', "ccs01.l.root-servers.org"},
		{'L', "aa.ve-mar.l.root"},
		{'F', "gru1a.f.root-servers.org"},
		{'K', "ns1.cl-scl.k.ripe.net"},
		{'I', "s1.bog"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := names[i%len(names)]
		if _, err := dnsroot.ParseInstance(dnsroot.Letter(n.letter), n.txt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplicaDetection quantifies the CHAOS methodology's
// coverage (Section 8): distinct strings detected by the probe fleet
// against instances actually deployed in the region.
func BenchmarkAblationReplicaDetection(b *testing.B) {
	setup()
	m := months.New(2023, time.October) // on the chaos campaign quarterly grid
	var detected, deployed int
	for i := 0; i < b.N; i++ {
		counts := benchChaos.SitesByCountry(m, "")
		detected = 0
		for _, cc := range geo.LACNICCountries() {
			detected += counts[cc]
		}
		deployed = 0
		for cc, n := range benchW.Roots.CountByCountry(m) {
			if c, ok := geo.LookupCountry(cc); ok && c.LACNIC {
				deployed += n
			}
		}
	}
	b.ReportMetric(float64(detected), "detected")
	b.ReportMetric(float64(deployed), "deployed")
	b.ReportMetric(float64(detected)/float64(deployed), "coverage")
}

// BenchmarkScenarioOverlayDense times deriving a counterfactual view of
// the full topology: a copy-on-write overlay over a warm base, its
// patched dense build, and one valley-free resolution through it. The
// allocation count scales with the edit list, not the topology — the
// gap against BenchmarkScenarioDenseRebuild is why the scenario engine
// can replay whole campaigns without per-month graph rebuilds.
func BenchmarkScenarioOverlayDense(b *testing.B) {
	setup()
	topo := benchW.TopologyAt(months.New(2023, time.July)).Topology()
	edits := []netsim.Edit{
		{Op: netsim.EditRemoveLink, A: 6762, B: 8048, Kind: bgp.ProviderCustomer},
		{Op: netsim.EditAddLink, A: 8048, B: 3816, Kind: bgp.PeerPeer},
	}
	src := benchW.Nets["VE"].Eyeballs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		over, err := topo.Overlay(edits)
		if err != nil {
			b.Fatal(err)
		}
		if info := netsim.NewResolver(over).PathInfoFrom(src, world.ASGoogle); !info.OK {
			b.Fatal("unreachable under overlay")
		}
	}
}

// BenchmarkScenarioDenseRebuild is the from-scratch control for the
// overlay benchmark: the same counterfactual month rebuilt by replaying
// every link and location into a fresh topology before resolving.
func BenchmarkScenarioDenseRebuild(b *testing.B) {
	setup()
	topo := benchW.TopologyAt(months.New(2023, time.July)).Topology()
	g := topo.Graph()
	ases := g.ASes()
	type link struct{ a, b bgp.ASN }
	var p2c, p2p []link
	located := map[bgp.ASN]geo.City{}
	for _, a := range ases {
		for _, c := range g.Customers(a) {
			p2c = append(p2c, link{a, c})
		}
		for _, p := range g.Peers(a) {
			if a < p {
				p2p = append(p2p, link{a, p})
			}
		}
		if city, ok := topo.Location(a); ok {
			located[a] = city
		}
	}
	src := benchW.Nets["VE"].Eyeballs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re := netsim.New()
		for _, l := range p2c {
			re.AddLink(l.a, l.b, bgp.ProviderCustomer)
		}
		for _, l := range p2p {
			re.AddLink(l.a, l.b, bgp.PeerPeer)
		}
		for asn, city := range located {
			re.Locate(asn, city)
		}
		if info := netsim.NewResolver(re).PathInfoFrom(src, world.ASGoogle); !info.OK {
			b.Fatal("unreachable after rebuild")
		}
	}
}

// BenchmarkSweepWindowedReplay times one sweep spec through the
// scenario engine against warm baseline campaigns: the op's one-year
// edit window means only the months inside it re-simulate, the rest
// splice from the baseline. This per-spec cost, times the batch size,
// is what a sweep's wall clock scales with.
func BenchmarkSweepWindowedReplay(b *testing.B) {
	setup()
	eng := scenario.NewEngine(scenario.Options{
		World:         benchW,
		BaselineTrace: func(context.Context) (*atlas.TraceCampaign, error) { return benchTrace, nil },
		BaselineChaos: func(context.Context) (*atlas.ChaosCampaign, error) { return benchChaos, nil },
	})
	spec := &scenario.Spec{
		ID:  "bench-depeer",
		Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 6762, From: "2023-01", Until: "2024-01"}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var recomputed, reused int
	for i := 0; i < b.N; i++ {
		_, st, err := eng.RunWith(context.Background(), spec, scenario.RunConfig{SkipTables: true})
		if err != nil {
			b.Fatal(err)
		}
		recomputed = st.TraceMonthsRecomputed + st.ChaosMonthsRecomputed
		reused = st.TraceMonthsReused + st.ChaosMonthsReused
	}
	b.ReportMetric(float64(recomputed), "months_recomputed")
	b.ReportMetric(float64(reused), "months_reused")
}

// BenchmarkSweepResume times restarting a process over a finished
// 52-spec sweep journal: open, CRC-verify and replay the journal,
// re-expand the manifest, and serve the sweep — the startup cost a
// crash adds, with zero re-simulation (the injected runner would fail
// the benchmark if any spec ran again).
func BenchmarkSweepResume(b *testing.B) {
	setup()
	store, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cheap := func(context.Context, *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		return &scenario.Diff{}, scenario.RunStats{}, nil
	}
	seed := sweep.NewManager(sweep.Options{World: benchW, Store: store, Workers: 8, RunSpec: cheap})
	if _, err := seed.Start(&sweep.Request{ID: "bench", Family: sweep.FamilyRootEach}); err != nil {
		b.Fatal(err)
	}
	for {
		if st, ok := seed.Get("bench"); ok && st.State == sweep.StateDone {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := seed.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}
	poison := func(context.Context, *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		b.Fatal("resume re-simulated a journaled spec")
		return nil, scenario.RunStats{}, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sweep.NewManager(sweep.Options{World: benchW, Store: store, RunSpec: poison})
		restored, err := m.Resume()
		if err != nil || restored != 52 {
			b.Fatalf("Resume = %d, %v; want 52 restored", restored, err)
		}
		m.Kill()
	}
}

// BenchmarkFactBuild times producing one full fact-lake generation:
// both campaigns simulate with the recorder armed, every month encodes
// into a dictionary-coded columnar partition, the SCD2 dimensions
// derive from the world, and the generation commits durably
// (tmp+fsync+rename, manifest last).
func BenchmarkFactBuild(b *testing.B) {
	setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lake, err := facts.Open(b.TempDir(), benchW.Config.Scope())
		if err != nil {
			b.Fatal(err)
		}
		if err := lake.Build(context.Background(), benchW); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLake lazily builds one lake generation shared by the query
// benchmarks.
var (
	benchLakeOnce sync.Once
	benchLake     *facts.Lake
	benchLakeErr  error
)

func setupLake() (*facts.Lake, error) {
	setup()
	benchLakeOnce.Do(func() {
		dir, err := os.MkdirTemp("", "vzlens-bench-lake-*")
		if err != nil {
			benchLakeErr = err
			return
		}
		benchLake, benchLakeErr = facts.Open(dir, benchW.Config.Scope())
		if benchLakeErr == nil {
			benchLakeErr = benchLake.Build(context.Background(), benchW)
		}
	})
	return benchLake, benchLakeErr
}

// BenchmarkQueryWindow is the ad-hoc query layer's headline perf pin: a
// warm two-year median-RTT window grouped by country. Warm means every
// in-window partition is already decoded and cached, so the run is pure
// columnar aggregation — run-length minimums over contiguous probe
// runs, one percentile per country-month — with allocations bounded by
// groups × months, never by row count.
func BenchmarkQueryWindow(b *testing.B) {
	lake, err := setupLake()
	if err != nil {
		b.Fatal(err)
	}
	eng := query.New(lake)
	p, err := query.ParseParams(url.Values{
		"metric": {"median_rtt"}, "from": {"2018-01"}, "to": {"2019-10"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(p); err != nil { // decode the window once
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(p)
		if err != nil || res.Partitions == 0 || len(res.Groups) == 0 {
			b.Fatalf("query failed: %+v err=%v", res, err)
		}
	}
}

// BenchmarkDNSQuery is the DNS data plane's headline perf pin: one
// warm CHAOS identification query — parse, route through the answer
// cache, build the response — must cost 0 allocs/op and stay well
// under 100µs. The no-ECS form resolves from the default Venezuelan
// vantage.
func BenchmarkDNSQuery(b *testing.B) {
	setup()
	r := dnsplane.NewResolver(benchW, zeroMonth)
	pkt, err := dnswire.EncodeQuery(1, dnswire.Question{
		Name: "hostname.bind.l", Type: dnswire.TypeTXT, Class: dnswire.ClassCH,
	})
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, 4096)
	if out, _ := r.Handle(pkt, dst); out == nil {
		b.Fatal("warmup query dropped")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, info := r.Handle(pkt, dst)
		if out == nil || info.Rcode != 0 {
			b.Fatalf("query failed: %+v", info)
		}
	}
}

// BenchmarkDNSQueryECS times the EDNS0 path: an IN A query for a
// vanity name carrying a probe-identifying client subnet, answered
// with the OPT + ECS echo. Same 0-alloc contract.
func BenchmarkDNSQueryECS(b *testing.B) {
	setup()
	r := dnsplane.NewResolver(benchW, zeroMonth)
	pkt, err := dnswire.EncodeQuery(2, dnswire.Question{
		Name: "l.root-servers.vz", Type: dnswire.TypeA, Class: dnswire.ClassIN,
	})
	if err != nil {
		b.Fatal(err)
	}
	ecs := &dnswire.ECS{Family: dnswire.ECSFamilyIPv4, SourcePrefix: 32, AddrLen: 4}
	ecs.Addr[0], ecs.Addr[3] = 10, 1 // probe 1: CANTV, Caracas
	pkt = dnswire.AppendQueryOPT(pkt, 1232, ecs)
	dst := make([]byte, 0, 4096)
	if out, _ := r.Handle(pkt, dst); out == nil {
		b.Fatal("warmup query dropped")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, info := r.Handle(pkt, dst)
		if out == nil || info.Rcode != 0 || info.Source != dnsplane.SourceProbe {
			b.Fatalf("query failed: %+v", info)
		}
	}
}

// zeroMonth asks NewResolver for its default month (the campaign end).
var zeroMonth months.Month
