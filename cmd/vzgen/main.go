// Command vzgen materializes the synthetic measurement archives to disk
// in their native interchange formats, so the analysis pipeline can be
// exercised against files exactly as it would be against the real
// archives (LACNIC delegation files, CAIDA serial-1 AS relationships,
// RouteViews pfx2as, PeeringDB JSON dumps, Telegeography CSV, Meta IPv6
// CSV, APNIC-style population estimates, as2org+ mappings).
//
// Usage:
//
//	vzgen -out DIR [-seed N] [-step N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/ipv6"
	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/mrt"
	"vzlens/internal/world"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	step := flag.Int("step", 3, "months between archive snapshots")
	flag.Parse()

	w, err := world.Build(world.Config{Seed: *seed, Step: *step})
	if err != nil {
		log.Fatal(err)
	}
	log.SetFlags(0)
	log.SetPrefix("vzgen: ")

	writeFile := func(rel string, write func(io.Writer) error) {
		path := filepath.Join(*out, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			f.Close()
			log.Fatalf("%s: %v", rel, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("%s: %v", rel, err)
		}
		log.Printf("wrote %s", path)
	}

	// LACNIC delegation file.
	writeFile("lacnic/delegated-lacnic-extended.txt", func(f io.Writer) error {
		_, err := w.Registry().WriteTo(f)
		return err
	})

	// Monthly serial-1 AS relationship files and pfx2as snapshots.
	lo, hi := months.New(1998, time.January), months.New(2024, time.January)
	rels := w.ASRelArchive(lo, hi)
	for _, m := range rels.Months() {
		m := m
		writeFile(fmt.Sprintf("as-rel/%s.as-rel.txt", m), func(f io.Writer) error {
			_, err := rels.Get(m).WriteTo(f)
			return err
		})
	}
	ribs := w.RIBArchive(months.New(2008, time.January), hi)
	for _, m := range ribs.Months() {
		m := m
		writeFile(fmt.Sprintf("pfx2as/%s.pfx2as.txt", m), func(f io.Writer) error {
			_, err := ribs.Get(m).WriteTo(f)
			return err
		})
	}

	// Monthly PeeringDB dumps.
	pdb := w.PeeringDBArchive(months.New(2018, time.April), hi)
	for _, m := range pdb.Months() {
		m := m
		writeFile(fmt.Sprintf("peeringdb/peeringdb_dump_%s.json", m), func(f io.Writer) error {
			return pdb.Get(m).Write(f)
		})
	}

	// Submarine cable map.
	writeFile("telegeography/cables.csv", func(f io.Writer) error {
		_, err := w.Cables.WriteTo(f)
		return err
	})

	// IPv6 adoption.
	writeFile("meta/ipv6-adoption.csv", func(f io.Writer) error {
		ds := ipv6.Collect(ipv6.CoveredCountries(), months.New(2018, time.January), months.New(2023, time.June))
		_, err := ds.WriteTo(f)
		return err
	})

	// A raw TABLE_DUMP_V2 RIB dump for the latest month, the MRT form
	// the pfx2as digests descend from.
	writeFile("routeviews/rib.2024-01.mrt", func(f io.Writer) error {
		rib := w.RIBArchive(hi, hi).Get(hi)
		return mrt.WriteRIB(f, rib, 6762, hi.Time().Unix())
	})

	// One year of M-Lab style NDT result rows.
	writeFile("mlab/ndt-2023.jsonl", func(f io.Writer) error {
		gen := mlab.NewGenerator(w.Config.Seed)
		for m := months.New(2023, time.January); !m.After(months.New(2023, time.December)); m = m.Add(1) {
			for _, cc := range mlab.Countries() {
				if err := mlab.WriteJSON(f, gen.Draw(cc, m, mlab.MonthlyVolume(cc))); err != nil {
					return err
				}
			}
		}
		return nil
	})

	// One month of RIPE Atlas style measurement results.
	writeFile("atlas/results-2023-07.jsonl", func(f io.Writer) error {
		mw, err := world.Build(world.Config{
			Seed:       w.Config.Seed,
			TraceStart: months.New(2023, time.July), TraceEnd: months.New(2023, time.July),
			ChaosStart: months.New(2023, time.July), ChaosEnd: months.New(2023, time.July),
		})
		if err != nil {
			return err
		}
		if err := atlas.WriteTraceJSON(f, mw.TraceCampaign().Samples()); err != nil {
			return err
		}
		return atlas.WriteChaosJSON(f, mw.ChaosCampaign().Results())
	})

	// Probe metadata in Atlas API form.
	writeFile("atlas/probes.jsonl", func(f io.Writer) error {
		return atlas.WriteProbesJSON(f, w.Fleet, hi)
	})

	// Population estimates and organization mappings.
	writeFile("apnic/aspop.txt", func(f io.Writer) error {
		_, err := w.Pop.WriteTo(f)
		return err
	})
	writeFile("as2org/as2org.txt", func(f io.Writer) error {
		_, err := w.Orgs.WriteTo(f)
		return err
	})
}
