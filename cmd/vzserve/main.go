// Command vzserve exposes the reproduction over HTTP: JSON and CSV
// documents for every experiment and per-country summaries.
//
//	vzserve [-addr :8080] [-quick] [-workers N] [-warm] [-drain 30s] [-timeout 5m]
//	        [-max-inflight 64] [-queue-timeout 10s] [-store DIR] [-facts DIR]
//	        [-debug-addr :6060] [-trace FILE]
//	        [-scenario-file FILE] [-scenario-lenient]
//	        [-sweep-workers 2] [-sweep-spec-timeout 5m]
//	        [-dns-addr :5353] [-dns-month 2023-01] [-dns-readers 2]
//	        [-role standalone|coordinator|worker] [-peers URL,URL,...]
//	        [-cluster-self URL] [-replicas 2] [-hedge-delay 500ms] [-probe-interval 1s]
//
//	GET  /healthz                     (liveness)
//	GET  /readyz                      (readiness + degradation report + overload stats)
//	GET  /metrics                     (Prometheus text format)
//	GET  /metrics.json                (same registry as JSON)
//	GET  /api/experiments
//	GET  /api/experiments/{id}        (fig1..fig21, table1; append .csv)
//	GET  /api/countries/{cc}
//	GET  /api/query                   (ad-hoc fact-lake aggregation; requires -facts)
//	GET  /api/scenarios               (registered counterfactual scenarios)
//	POST /api/scenarios               (register a scenario spec)
//	GET  /api/scenarios/{id}/diff     (baseline-vs-scenario diff; simulates on first request)
//	GET  /api/sweeps                  (all batch sweeps; requires -store)
//	POST /api/sweeps                  (start a batch sweep: depeer_each, cable_cut_each, root_each, specs)
//	GET  /api/sweeps/{id}             (sweep progress + ranked impact leaderboard)
//	GET  /api/dns                     (DNS plane status; requires -dns-addr)
//	PUT  /api/dns/scenario/{id}       (route DNS answers through a registered scenario)
//	DEL  /api/dns/scenario            (back to the baseline topology)
//
// -dns-addr starts the authoritative DNS/GSLB data plane on a UDP
// socket: CHAOS TXT queries ("dig @host -p 5353 CH TXT hostname.bind.l")
// return the root instance whose catchment covers the client, and IN
// A/AAAA/TXT queries for <letter>.root-servers.vz return a synthetic
// service address for the same instance. The client's vantage comes
// from EDNS0 Client Subnet (a /32 in 10.0.0.0/8 names a simulated
// probe; anything else maps onto a country vantage; none = Venezuela).
// -dns-month pins the served month (default: the campaign end).
// Queries admit through the same overload gate as HTTP requests —
// under saturation the plane answers REFUSED instead of queueing.
//
// A sweep expands one templated request into up to 512 scenario specs
// and simulates them on -sweep-workers goroutines, journaling every
// completed spec through the -store so a killed server resumes exactly
// where it died — completed specs are never re-simulated. A spec that
// fails to compile, panics, or exceeds -sweep-spec-timeout is
// quarantined into the leaderboard with its error; the rest of the
// sweep proceeds. On SIGTERM the server drains in-flight specs and
// checkpoints before exiting.
//
// Several vzserve processes built from the same flags can form a
// fault-tolerant serving tier. A -role coordinator consistent-hashes
// scenario and sweep simulations across the -peers worker ring with
// health probing, hedged dispatch, and automatic reassignment when a
// worker dies; -role worker mounts the /cluster/* endpoints next to
// the normal API and replicates computed result frames to its ring
// successors so a restarted peer warms without re-simulating. Sweep
// leaderboards are byte-identical at any worker count, including with
// workers killed mid-sweep; a coordinator whose whole fleet is down
// simulates locally. The default -role standalone is exactly the
// single-process server described above.
//
// -facts DIR persists the campaigns' probe-month samples as a
// month-partitioned columnar fact lake under DIR and serves ad-hoc
// aggregations over it at GET /api/query (metric × country × month
// window × percentile × group-by; see DESIGN.md §17). A lake built by
// a previous run reloads instantly; otherwise the first generation
// builds during the background warm-up and queries answer 503 with
// Retry-After until it commits. Only partitions inside the requested
// month window are ever decoded.
//
// -scenario-file is validated as a whole at startup: every invalid
// entry is reported with its spec id, and the process exits nonzero
// unless -scenario-lenient asks it to serve the valid subset.
//
// Campaign-backed experiments (fig6, fig12, fig16, fig20) simulate on
// first request and are cached for the life of the process; a failed
// simulation returns 503 with Retry-After and is retried on the next
// request rather than cached. By default the caches pre-warm in the
// background at startup (-warm=false disables), with monthly snapshots
// fanned out over -workers goroutines.
//
// The server is protected against overload: at most -max-inflight
// requests execute concurrently, the overflow waits up to
// -queue-timeout in a priority queue (health probes are never queued),
// and beyond that requests are shed with 503 + Retry-After. Concurrent
// requests for the same experiment coalesce into one computation. With
// -store, computed tables and campaign results persist to a crash-safe
// on-disk store, so a restarted server warms near-instantly; corrupt
// entries are quarantined and recomputed. SIGINT/SIGTERM drain
// in-flight requests for up to -drain before the process exits.
//
// Observability: -debug-addr starts a second listener (bind it to
// localhost) serving /debug/pprof, /debug/vars (expvar), and the same
// /metrics registry as the API. -trace FILE appends one JSON line per
// finished span (use "-" for stderr); every response carries its trace
// ID in X-Trace-Id.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/dnsplane"
	"vzlens/internal/httpapi"
	"vzlens/internal/months"
	"vzlens/internal/netsim"
	"vzlens/internal/obs"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", true, "quarterly campaign resolution")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	warm := flag.Bool("warm", true, "pre-warm campaign caches in the background")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain deadline")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request timeout (0 = none)")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently executing requests (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 10*time.Second, "max wait for an execution slot before shedding")
	storeDir := flag.String("store", "", "crash-safe result store directory (empty = no persistence)")
	factsDir := flag.String("facts", "", "columnar fact lake directory enabling GET /api/query (empty = disabled)")
	scenarioFile := flag.String("scenario-file", "", "preload counterfactual scenario specs from FILE (one spec or a JSON array)")
	scenarioLenient := flag.Bool("scenario-lenient", false, "serve the valid subset of -scenario-file instead of refusing to start")
	sweepWorkers := flag.Int("sweep-workers", 2, "concurrent spec simulations per sweep")
	sweepSpecTimeout := flag.Duration("sweep-spec-timeout", 5*time.Minute, "per-spec watchdog deadline inside a sweep")
	dnsAddr := flag.String("dns-addr", "", "UDP listen address for the DNS data plane; empty = disabled")
	dnsMonth := flag.String("dns-month", "", "month the DNS plane serves, YYYY-MM (default: campaign end)")
	dnsReaders := flag.Int("dns-readers", 2, "DNS reader goroutines sharing the socket")
	role := flag.String("role", "standalone", "cluster role: standalone, coordinator, or worker")
	peers := flag.String("peers", "", "comma-separated worker base URLs (coordinator: the ring; worker: peers to warm from)")
	clusterSelf := flag.String("cluster-self", "", "this worker's own base URL as it appears in the coordinator's -peers")
	replicas := flag.Int("replicas", 2, "result-frame replicas per content key (coordinator)")
	hedgeDelay := flag.Duration("hedge-delay", 500*time.Millisecond, "latency hedge before trying the next worker (coordinator)")
	probeInterval := flag.Duration("probe-interval", time.Second, "worker health probe interval (coordinator)")
	debugAddr := flag.String("debug-addr", "", "debug listener (pprof, expvar, metrics); empty = disabled")
	traceOut := flag.String("trace", "", "append span JSON lines to FILE (\"-\" = stderr); empty = tracing off")
	flag.Parse()

	cfg := world.Config{Seed: *seed, Workers: *workers}
	if *quick {
		cfg.Step = 3
	}
	log.Printf("vzserve: building world (seed %d, step %d months)", cfg.Seed, cfg.Step)
	w, err := world.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	netsim.InstrumentMetrics(reg)
	atlas.InstrumentMetrics(reg)
	reg.PublishExpvar("vzlens")
	opts := httpapi.Options{
		RequestTimeout:       *timeout,
		MaxInFlight:          *maxInflight,
		QueueTimeout:         *queueTimeout,
		Metrics:              reg,
		SweepWorkers:         *sweepWorkers,
		SweepSpecTimeout:     *sweepSpecTimeout,
		ClusterRole:          *role,
		ClusterSelf:          *clusterSelf,
		ClusterReplicas:      *replicas,
		ClusterHedgeDelay:    *hedgeDelay,
		ClusterProbeInterval: *probeInterval,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.ClusterPeers = append(opts.ClusterPeers, p)
			}
		}
	}
	if *role == "coordinator" || *role == "worker" {
		log.Printf("vzserve: cluster role %s (%d peers)", *role, len(opts.ClusterPeers))
	}
	if *traceOut != "" {
		sink := os.Stderr
		if *traceOut != "-" {
			f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			sink = f
		}
		opts.Tracer = obs.NewTracer(sink)
		log.Printf("vzserve: tracing spans to %s", *traceOut)
	}
	if *storeDir != "" {
		store, err := resultstore.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = store
		log.Printf("vzserve: result store at %s", *storeDir)
	}
	if *factsDir != "" {
		opts.FactsDir = *factsDir
		log.Printf("vzserve: fact lake at %s", *factsDir)
	}
	if *scenarioFile != "" {
		// Validate the whole file before serving: every parse error and
		// every compile failure is reported with its spec id, so the
		// operator fixes the file in one pass instead of one error per
		// restart. Strict mode (the default) refuses to start on any
		// error; -scenario-lenient serves the valid subset.
		specs, errs := scenario.LoadSpecsLenient(*scenarioFile)
		valid := specs[:0]
		for _, sp := range specs {
			if _, err := sp.Compile(w); err != nil {
				errs = append(errs, err)
				continue
			}
			valid = append(valid, sp)
		}
		for _, e := range errs {
			log.Printf("vzserve: scenario file: %v", e)
		}
		switch {
		case len(errs) > 0 && !*scenarioLenient:
			log.Fatalf("vzserve: %s: %d invalid scenario(s), %d valid; fix the file or pass -scenario-lenient to serve the valid subset",
				*scenarioFile, len(errs), len(valid))
		case len(errs) > 0:
			log.Printf("vzserve: -scenario-lenient: serving %d valid scenario(s) from %s, skipped %d invalid",
				len(valid), *scenarioFile, len(errs))
		default:
			log.Printf("vzserve: preloaded %d scenario(s) from %s", len(valid), *scenarioFile)
		}
		opts.Scenarios = valid
	}
	var dnsRes *dnsplane.Resolver
	if *dnsAddr != "" {
		var m months.Month
		if *dnsMonth != "" {
			var err error
			if m, err = months.Parse(*dnsMonth); err != nil {
				log.Fatalf("vzserve: -dns-month: %v", err)
			}
		}
		dnsRes = dnsplane.NewResolver(w, m)
		opts.DNSPlane = dnsRes
	}
	h := httpapi.NewWithOptions(w, opts)
	var dnsSrv *dnsplane.Server
	if dnsRes != nil {
		// The DNS server shares the HTTP handler's admission gate, so
		// one -max-inflight budget covers both planes; Instrument ran
		// inside NewWithOptions, so vz_dns_* metrics are live first.
		dnsSrv, err = dnsplane.Serve(dnsplane.ServerOptions{
			Addr:     *dnsAddr,
			Resolver: dnsRes,
			Gate:     h.Gate(),
			Readers:  *dnsReaders,
			Tracer:   opts.Tracer,
		})
		if err != nil {
			log.Fatalf("vzserve: dns listener: %v", err)
		}
		log.Printf("vzserve: DNS data plane on %s (month %s)", dnsSrv.Addr(), dnsRes.Month())
	}
	if *warm {
		// Campaign results are deterministic for the seed, so warming
		// early changes nothing but the first requests' latency. With a
		// populated -store this is a disk read, not a simulation.
		go func() {
			start := time.Now()
			h.Warm()
			log.Printf("vzserve: campaign caches warm after %v", time.Since(start).Round(time.Millisecond))
		}()
	}

	if *debugAddr != "" {
		// The debug listener shares the API's registry but bypasses its
		// admission control entirely: pprof and metrics must answer even
		// when the serving path is saturated. Bind it to localhost.
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("vzserve: debug listener (pprof, expvar, metrics) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("vzserve: debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: h,
		// Slowloris protection: bound how long a client may dribble
		// headers, and how large they may grow.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		MaxHeaderBytes:    1 << 20,
		// Campaign simulation on a cold cache can take tens of seconds;
		// the request-level timeout above is the effective bound.
		WriteTimeout: *timeout + time.Minute,
	}
	log.Printf("vzserve: listening on %s", *addr)
	if err := httpapi.ListenAndServeGraceful(srv, *drain); err != nil {
		log.Fatal(err)
	}
	// HTTP is drained; now checkpoint the batch work. In-flight sweep
	// specs finish and journal within the drain budget, so the next
	// start resumes without re-simulating anything completed here.
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := h.DrainSweeps(dctx); err != nil {
		log.Printf("vzserve: sweep drain incomplete: %v (journaled progress is kept)", err)
	}
	// Stop cluster machinery (health prober, replication queue,
	// assignment journal) only after sweeps drain: draining specs may
	// still be dispatching to workers.
	h.Close()
	if dnsSrv != nil {
		if err := dnsSrv.Close(); err != nil {
			log.Printf("vzserve: dns listener close: %v", err)
		}
	}
	log.Printf("vzserve: drained cleanly, exiting")
}
