// Command vzserve exposes the reproduction over HTTP: JSON and CSV
// documents for every experiment and per-country summaries.
//
//	vzserve [-addr :8080] [-quick]
//
//	GET /healthz
//	GET /api/experiments
//	GET /api/experiments/{id}        (fig1..fig21, table1; append .csv)
//	GET /api/countries/{cc}
//
// Campaign-backed experiments (fig6, fig12, fig16, fig20) simulate on
// first request and are cached for the life of the process.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"vzlens/internal/httpapi"
	"vzlens/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", true, "quarterly campaign resolution")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	flag.Parse()

	cfg := world.Config{Seed: *seed}
	if *quick {
		cfg.Step = 3
	}
	log.Printf("vzserve: building world (seed %d, step %d months)", cfg.Seed, cfg.Step)
	h := httpapi.New(world.Build(cfg))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		// Campaign simulation on a cold cache can take tens of seconds.
		WriteTimeout: 5 * time.Minute,
	}
	log.Printf("vzserve: listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
