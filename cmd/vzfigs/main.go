// Command vzfigs emits plot-ready CSV series for the paper's panel
// figures: one file per figure, month-by-country matrices that a plotting
// script can render directly.
//
// Usage:
//
//	vzfigs -out DIR [-quick]
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"vzlens/internal/core"
	"vzlens/internal/months"
	"vzlens/internal/world"
)

func main() {
	out := flag.String("out", "figs", "output directory")
	quick := flag.Bool("quick", false, "quarterly campaign resolution")
	flag.Parse()

	cfg := world.Config{}
	if *quick {
		cfg.Step = 3
	}
	w, err := world.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.SetFlags(0)
	log.SetPrefix("vzfigs: ")

	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}

	write("fig3_facilities.csv", core.Fig3Facilities(w).PerCountry.CSV())
	write("fig5_ipv6.csv", core.Fig5IPv6().Panel.CSV())
	fig11 := core.Fig11Bandwidth(w.Config.Seed, months.New(2007, time.July), months.New(2024, time.January), w.Config.Step)
	write("fig11_bandwidth.csv", fig11.Panel.CSV())
	write("fig13_gdp.csv", core.Fig13GDPRank().Panel.CSV())
	write("fig17_probes.csv", core.Fig17AtlasFootprint(w).PerCountry.CSV())

	tc := w.TraceCampaign()
	write("fig12_gpdns_rtt.csv", core.Fig12GPDNS(tc).Panel.CSV())
	fig20 := core.Fig20ProbeGeo(w.Fleet, tc, months.New(2023, time.December))
	write("fig20_probe_geo.csv", fig20.Table().CSV())

	cc := w.ChaosCampaign()
	write("fig6_rootdns.csv", core.Fig6RootDNS(cc).PerCountry.CSV())
	write("fig16_root_origins.csv", core.Fig16RootOrigins(cc).Table().CSV())
}
