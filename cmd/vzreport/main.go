// Command vzreport builds the synthetic world and regenerates every
// table and figure of the paper, printing each as an aligned text table
// with the headline statistics the paper reports.
//
// Usage:
//
//	vzreport [-quick] [-seed N] [-only fig12,table1,...]
//
// -quick runs the measurement campaigns at quarterly instead of monthly
// resolution (about 10x faster, slightly coarser statistics).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vzlens/internal/core"
	"vzlens/internal/months"
	"vzlens/internal/report"
	"vzlens/internal/world"
)

func main() {
	quick := flag.Bool("quick", false, "quarterly campaign resolution")
	format := flag.String("format", "text", "output format: text or csv")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	markdown := flag.String("md", "", "write the full markdown report to this file and exit")
	flag.Parse()

	cfg := world.Config{Seed: *seed}
	if *quick {
		cfg.Step = 3
	}
	w, err := world.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vzreport: %v\n", err)
		os.Exit(1)
	}

	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vzreport: %v\n", err)
			os.Exit(1)
		}
		if err := report.Generate(f, w, report.Options{IncludeCampaigns: true}); err != nil {
			fmt.Fprintf(os.Stderr, "vzreport: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "vzreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *markdown)
		return
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToLower(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }
	render := func(t *core.Table) string {
		if *format == "csv" {
			return t.CSV()
		}
		return t.Text()
	}

	type experiment struct {
		id  string
		run func() *core.Table
	}
	experiments := []experiment{
		{"fig1", func() *core.Table { return core.Fig1Economy().Table() }},
		{"fig2", func() *core.Table { return core.Fig2AddressSpace(w).Table() }},
		{"fig3", func() *core.Table { return core.Fig3Facilities(w).Table() }},
		{"fig4", func() *core.Table { return core.Fig4Cables(w).Table() }},
		{"fig5", func() *core.Table { return core.Fig5IPv6().Table() }},
		{"fig7", func() *core.Table {
			return core.Fig7Offnets(w, []string{"Google", "Akamai", "Facebook", "Netflix"}).Table()
		}},
		{"fig8", func() *core.Table { return core.Fig8CANTV(w).Table() }},
		{"fig9", func() *core.Table { return core.Fig9TransitHeatmap(w).Table() }},
		{"fig10", func() *core.Table { return core.Fig10IXPHeatmap(w).Table() }},
		{"fig11", func() *core.Table {
			return core.Fig11Bandwidth(w.Config.Seed, months.New(2007, time.July), months.New(2024, time.January), w.Config.Step).Table()
		}},
		{"table1", func() *core.Table { return core.Table1Eyeballs(w).Table() }},
		{"fig13", func() *core.Table { return core.Fig13GDPRank().Table() }},
		{"fig14", func() *core.Table { return core.Fig14PrefixVisibility(w).Table() }},
		{"fig15", func() *core.Table { return core.Fig15FacilityMembers(w).Table() }},
		{"fig17", func() *core.Table { return core.Fig17AtlasFootprint(w).Table() }},
		{"fig18", func() *core.Table {
			return core.Fig7Offnets(w, []string{"Microsoft", "Cloudflare", "Amazon", "Limelight", "CDNetworks", "Alibaba"}).Table()
		}},
		{"fig19", func() *core.Table { return core.Fig19ThirdParty().Table() }},
		{"fig21", func() *core.Table { return core.Fig21USIXPs(w).Table() }},
	}
	for _, e := range experiments {
		if !want(e.id) {
			continue
		}
		fmt.Printf("== %s ==\n%s\n", e.id, render(e.run()))
	}

	if want("signatures") {
		fmt.Printf("== signatures ==\n%s\n", render(core.CrisisSignatures(w, nil).Table()))
	}

	// Campaign-backed experiments run last: they dominate runtime.
	needTrace := want("fig12") || want("fig20")
	needChaos := want("fig6") || want("fig16")
	if needTrace {
		tc := w.TraceCampaign()
		if want("fig12") {
			fmt.Printf("== fig12 ==\n%s\n", render(core.Fig12GPDNS(tc).Table()))
		}
		if want("fig20") {
			m := months.New(2023, time.December)
			fmt.Printf("== fig20 ==\n%s\n", render(core.Fig20ProbeGeo(w.Fleet, tc, m).Table()))
		}
	}
	if needChaos {
		cc := w.ChaosCampaign()
		if want("fig6") {
			fmt.Printf("== fig6 ==\n%s\n", render(core.Fig6RootDNS(cc).Table()))
		}
		if want("fig16") {
			fmt.Printf("== fig16 ==\n%s\n", render(core.Fig16RootOrigins(cc).Table()))
		}
	}
	if len(selected) > 0 {
		known := map[string]bool{"fig6": true, "fig12": true, "fig16": true, "fig20": true, "signatures": true}
		for _, e := range experiments {
			known[e.id] = true
		}
		for id := range selected {
			if !known[id] {
				fmt.Fprintf(os.Stderr, "vzreport: unknown experiment %q\n", id)
				os.Exit(2)
			}
		}
	}
}
