// Package geo carries the geographic reference data every analysis joins
// against: the LACNIC country set, city coordinates for latency modeling,
// IATA airport codes for CHAOS TXT site extraction, and great-circle
// distance.
package geo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Country describes one country in (or relevant to) the study.
type Country struct {
	Code   string // ISO 3166-1 alpha-2
	Name   string
	LACNIC bool    // belongs to the LACNIC service region
	Lat    float64 // centroid used for coarse latency modeling
	Lon    float64
}

// City is a population center that can host infrastructure (facilities,
// IXPs, root DNS instances, probes).
type City struct {
	Name    string
	Country string // ISO country code
	IATA    string // airport code used in CHAOS TXT instance names
	Lat     float64
	Lon     float64
}

// countries is the reference country table. LACNIC members follow the
// registry's service region; US and EU countries appear because the paper's
// DNS-origin and transit analyses reference them.
var countries = []Country{
	{"AR", "Argentina", true, -34.6, -58.4},
	{"BO", "Bolivia", true, -16.5, -68.1},
	{"BR", "Brazil", true, -15.8, -47.9},
	{"BQ", "Bonaire", true, 12.2, -68.3},
	{"BZ", "Belize", true, 17.3, -88.8},
	{"CL", "Chile", true, -33.4, -70.7},
	{"CO", "Colombia", true, 4.6, -74.1},
	{"CR", "Costa Rica", true, 9.9, -84.1},
	{"CU", "Cuba", true, 23.1, -82.4},
	{"CW", "Curacao", true, 12.1, -68.9},
	{"DO", "Dominican Republic", true, 18.5, -69.9},
	{"EC", "Ecuador", true, -0.2, -78.5},
	{"GF", "French Guiana", true, 4.9, -52.3},
	{"GT", "Guatemala", true, 14.6, -90.5},
	{"GY", "Guyana", true, 6.8, -58.2},
	{"HN", "Honduras", true, 14.1, -87.2},
	{"HT", "Haiti", true, 18.5, -72.3},
	{"MX", "Mexico", true, 19.4, -99.1},
	{"NI", "Nicaragua", true, 12.1, -86.3},
	{"PA", "Panama", true, 9.0, -79.5},
	{"PE", "Peru", true, -12.0, -77.0},
	{"PY", "Paraguay", true, -25.3, -57.6},
	{"SR", "Suriname", true, 5.9, -55.2},
	{"SV", "El Salvador", true, 13.7, -89.2},
	{"SX", "Sint Maarten", true, 18.0, -63.1},
	{"TT", "Trinidad and Tobago", true, 10.7, -61.5},
	{"UY", "Uruguay", true, -34.9, -56.2},
	{"VE", "Venezuela", true, 10.5, -66.9},
	// Non-LACNIC countries referenced by the DNS-origin, transit, and US-IXP
	// analyses.
	{"US", "United States", false, 38.9, -77.0},
	{"GB", "Great Britain", false, 51.5, -0.1},
	{"DE", "Germany", false, 52.5, 13.4},
	{"FR", "France", false, 48.9, 2.4},
	{"NL", "Netherlands", false, 52.4, 4.9},
	{"ES", "Spain", false, 40.4, -3.7},
	{"IT", "Italy", false, 41.9, 12.5},
	{"SE", "Sweden", false, 59.3, 18.1},
	{"JP", "Japan", false, 35.7, 139.7},
	{"ZA", "South Africa", false, -26.2, 28.0},
	{"CA", "Canada", false, 45.4, -75.7},
	{"RU", "Russia", false, 55.8, 37.6},
}

var countryByCode = func() map[string]Country {
	m := make(map[string]Country, len(countries))
	for _, c := range countries {
		m[c.Code] = c
	}
	return m
}()

// LookupCountry returns the Country for an ISO code.
func LookupCountry(code string) (Country, bool) {
	c, ok := countryByCode[strings.ToUpper(code)]
	return c, ok
}

// LACNICCountries returns the ISO codes of the LACNIC service region,
// sorted.
func LACNICCountries() []string {
	var out []string
	for _, c := range countries {
		if c.LACNIC {
			out = append(out, c.Code)
		}
	}
	sort.Strings(out)
	return out
}

// AllCountries returns every known ISO code, sorted.
func AllCountries() []string {
	out := make([]string, 0, len(countries))
	for _, c := range countries {
		out = append(out, c.Code)
	}
	sort.Strings(out)
	return out
}

// ComparablePeers is the fixed set of countries the paper highlights
// against Venezuela in every panel figure.
var ComparablePeers = []string{"AR", "BR", "CL", "CO", "MX", "UY"}

// cities is the city table. IATA codes are the real airport codes for those
// cities; the CHAOS TXT parsers resolve instance names through them.
var cities = []City{
	{"Caracas", "VE", "CCS", 10.48, -66.90},
	{"Maracaibo", "VE", "MAR", 10.65, -71.63},
	{"Valencia", "VE", "VLN", 10.18, -67.99},
	{"San Cristobal", "VE", "SCI", 7.77, -72.22},
	{"Buenos Aires", "AR", "EZE", -34.60, -58.38},
	{"Cordoba", "AR", "COR", -31.42, -64.18},
	{"Sao Paulo", "BR", "GRU", -23.55, -46.63},
	{"Rio de Janeiro", "BR", "GIG", -22.91, -43.17},
	{"Fortaleza", "BR", "FOR", -3.73, -38.52},
	{"Porto Alegre", "BR", "POA", -30.03, -51.23},
	{"Santiago", "CL", "SCL", -33.45, -70.67},
	{"Arica", "CL", "ARI", -18.48, -70.31},
	{"Concepcion", "CL", "CCP", -36.83, -73.05},
	{"Bogota", "CO", "BOG", 4.71, -74.07},
	{"Cucuta", "CO", "CUC", 7.89, -72.51},
	{"Medellin", "CO", "MDE", 6.24, -75.58},
	{"Mexico City", "MX", "MEX", 19.43, -99.13},
	{"Monterrey", "MX", "MTY", 25.69, -100.32},
	{"Montevideo", "UY", "MVD", -34.90, -56.16},
	{"Panama City", "PA", "PTY", 8.98, -79.52},
	{"San Jose CR", "CR", "SJO", 9.93, -84.08},
	{"Quito", "EC", "UIO", -0.18, -78.47},
	{"Lima", "PE", "LIM", -12.05, -77.04},
	{"Asuncion", "PY", "ASU", -25.26, -57.58},
	{"La Paz", "BO", "LPB", -16.49, -68.12},
	{"Santo Domingo", "DO", "SDQ", 18.49, -69.93},
	{"Guatemala City", "GT", "GUA", 14.63, -90.51},
	{"Tegucigalpa", "HN", "TGU", 14.07, -87.19},
	{"Managua", "NI", "MGA", 12.13, -86.25},
	{"Port of Spain", "TT", "POS", 10.65, -61.50},
	{"Willemstad", "CW", "CUR", 12.11, -68.93},
	{"Havana", "CU", "HAV", 23.11, -82.37},
	{"Georgetown", "GY", "GEO", 6.80, -58.16},
	{"Paramaribo", "SR", "PBM", 5.87, -55.17},
	{"San Salvador", "SV", "SAL", 13.69, -89.19},
	{"Belize City", "BZ", "BZE", 17.50, -88.20},
	{"Port-au-Prince", "HT", "PAP", 18.54, -72.34},
	{"Cayenne", "GF", "CAY", 4.92, -52.31},
	{"Philipsburg", "SX", "SXM", 18.04, -63.05},
	{"Kralendijk", "BQ", "BON", 12.15, -68.27},
	{"Miami", "US", "MIA", 25.76, -80.19},
	{"Ashburn", "US", "IAD", 39.04, -77.49},
	{"New York", "US", "JFK", 40.71, -74.01},
	{"Los Angeles", "US", "LAX", 34.05, -118.24},
	{"Chicago", "US", "ORD", 41.88, -87.63},
	{"Dallas", "US", "DFW", 32.78, -96.80},
	{"Atlanta", "US", "ATL", 33.75, -84.39},
	{"Seattle", "US", "SEA", 47.61, -122.33},
	{"London", "GB", "LHR", 51.51, -0.13},
	{"Frankfurt", "DE", "FRA", 50.11, 8.68},
	{"Paris", "FR", "CDG", 48.86, 2.35},
	{"Amsterdam", "NL", "AMS", 52.37, 4.90},
	{"Madrid", "ES", "MAD", 40.42, -3.70},
	{"Rome", "IT", "FCO", 41.90, 12.50},
	{"Stockholm", "SE", "ARN", 59.33, 18.07},
	{"Tokyo", "JP", "NRT", 35.68, 139.69},
	{"Johannesburg", "ZA", "JNB", -26.20, 28.05},
	{"Toronto", "CA", "YYZ", 43.65, -79.38},
	{"Moscow", "RU", "SVO", 55.76, 37.62},
}

var cityByIATA = func() map[string]City {
	m := make(map[string]City, len(cities))
	for _, c := range cities {
		m[c.IATA] = c
	}
	return m
}()

// LookupIATA resolves an airport code to its city.
func LookupIATA(code string) (City, bool) {
	c, ok := cityByIATA[strings.ToUpper(code)]
	return c, ok
}

// CitiesIn returns the cities located in country cc, in table order.
func CitiesIn(cc string) []City {
	var out []City
	for _, c := range cities {
		if c.Country == cc {
			out = append(out, c)
		}
	}
	return out
}

// AllCities returns a copy of the full city table.
func AllCities() []City {
	out := make([]City, len(cities))
	copy(out, cities)
	return out
}

const earthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance between two coordinates.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}

// CityDistanceKm returns the distance between two cities by IATA code.
func CityDistanceKm(a, b string) (float64, error) {
	ca, ok := LookupIATA(a)
	if !ok {
		return 0, fmt.Errorf("geo: unknown airport code %q", a)
	}
	cb, ok := LookupIATA(b)
	if !ok {
		return 0, fmt.Errorf("geo: unknown airport code %q", b)
	}
	return HaversineKm(ca.Lat, ca.Lon, cb.Lat, cb.Lon), nil
}

// PropagationDelayMs estimates one-way propagation delay in milliseconds
// for a fiber path of the given great-circle distance. Light in fiber
// travels at roughly 2/3 c and real paths detour; the 1.52 path-stretch
// factor follows common transit-path measurements.
func PropagationDelayMs(distanceKm float64) float64 {
	const fiberKmPerMs = 200.0 // ~2/3 of c
	const pathStretch = 1.52
	return distanceKm * pathStretch / fiberKmPerMs
}
