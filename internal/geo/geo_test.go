package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLookupCountry(t *testing.T) {
	c, ok := LookupCountry("VE")
	if !ok || c.Name != "Venezuela" || !c.LACNIC {
		t.Errorf("LookupCountry(VE) = %+v %v", c, ok)
	}
	if c, ok := LookupCountry("ve"); !ok || c.Code != "VE" {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := LookupCountry("ZZ"); ok {
		t.Error("unknown country should not resolve")
	}
	us, ok := LookupCountry("US")
	if !ok || us.LACNIC {
		t.Errorf("US = %+v %v", us, ok)
	}
}

func TestLACNICCountries(t *testing.T) {
	ccs := LACNICCountries()
	if len(ccs) != 28 {
		t.Errorf("LACNIC region size = %d, want 28 (paper: 28 countries in M-Lab data)", len(ccs))
	}
	seen := map[string]bool{}
	for _, cc := range ccs {
		if seen[cc] {
			t.Errorf("duplicate country %s", cc)
		}
		seen[cc] = true
		c, ok := LookupCountry(cc)
		if !ok || !c.LACNIC {
			t.Errorf("%s not a LACNIC country", cc)
		}
	}
	for _, want := range []string{"VE", "BR", "AR", "CL", "MX", "UY", "CO"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestComparablePeers(t *testing.T) {
	for _, cc := range ComparablePeers {
		c, ok := LookupCountry(cc)
		if !ok || !c.LACNIC {
			t.Errorf("peer %s invalid", cc)
		}
		if cc == "VE" {
			t.Error("VE is not its own peer")
		}
	}
}

func TestLookupIATA(t *testing.T) {
	c, ok := LookupIATA("CCS")
	if !ok || c.Country != "VE" || c.Name != "Caracas" {
		t.Errorf("CCS = %+v %v", c, ok)
	}
	if _, ok := LookupIATA("XXX"); ok {
		t.Error("unknown IATA should not resolve")
	}
	if c, ok := LookupIATA("ccs"); !ok || c.IATA != "CCS" {
		t.Error("IATA lookup should be case-insensitive")
	}
}

func TestCitiesIn(t *testing.T) {
	ve := CitiesIn("VE")
	if len(ve) < 2 {
		t.Fatalf("VE cities = %d, want >= 2 (Caracas, Maracaibo)", len(ve))
	}
	for _, c := range ve {
		if c.Country != "VE" {
			t.Errorf("city %s in wrong country %s", c.Name, c.Country)
		}
	}
	if len(CitiesIn("ZZ")) != 0 {
		t.Error("unknown country should have no cities")
	}
}

func TestAllCitiesIsCopy(t *testing.T) {
	a := AllCities()
	if len(a) == 0 {
		t.Fatal("empty city table")
	}
	orig := a[0].Name
	a[0].Name = "Mutated"
	b := AllCities()
	if b[0].Name != orig {
		t.Error("AllCities leaked internal state")
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Caracas to Bogota is ~1,000 km.
	d, err := CityDistanceKm("CCS", "BOG")
	if err != nil {
		t.Fatal(err)
	}
	if d < 800 || d > 1200 {
		t.Errorf("CCS-BOG = %.0f km, want ~1000", d)
	}
	// Curacao is ~295 km from Caracas per the paper (section 6.2).
	d, err = CityDistanceKm("CCS", "CUR")
	if err != nil {
		t.Fatal(err)
	}
	if d < 200 || d > 400 {
		t.Errorf("CCS-CUR = %.0f km, want ~295 (paper)", d)
	}
}

func TestCityDistanceErrors(t *testing.T) {
	if _, err := CityDistanceKm("CCS", "???"); err == nil {
		t.Error("want error for unknown destination")
	}
	if _, err := CityDistanceKm("???", "CCS"); err == nil {
		t.Error("want error for unknown origin")
	}
}

func TestHaversineZero(t *testing.T) {
	if d := HaversineKm(10, 20, 10, 20); d != 0 {
		t.Errorf("same point distance = %v", d)
	}
}

// Property: haversine is symmetric and non-negative.
func TestQuickHaversineSymmetric(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		la1 := float64(a%90) / 1.0
		lo1 := float64(b % 180)
		la2 := float64(c % 90)
		lo2 := float64(d % 180)
		d1 := HaversineKm(la1, lo1, la2, lo2)
		d2 := HaversineKm(la2, lo2, la1, lo1)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropagationDelay(t *testing.T) {
	// ~1000 km should be roughly 7-8 ms one-way with stretch.
	ms := PropagationDelayMs(1000)
	if ms < 5 || ms > 10 {
		t.Errorf("PropagationDelayMs(1000) = %v, want 5-10", ms)
	}
	if PropagationDelayMs(0) != 0 {
		t.Error("zero distance should be zero delay")
	}
}
