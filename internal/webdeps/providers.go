package webdeps

import (
	"fmt"
	"sort"
)

// This file adds provider attribution on top of the adoption flags:
// which third party actually serves each dependent site, and how
// concentrated each market is — the centralization measurements of
// Kumar et al. that Appendix H builds on.

// Dimension selects a third-party service market.
type Dimension int

// The three outsourced service markets.
const (
	DimDNS Dimension = iota
	DimCA
	DimCDN
)

// String names the dimension.
func (d Dimension) String() string {
	switch d {
	case DimDNS:
		return "DNS"
	case DimCA:
		return "CA"
	case DimCDN:
		return "CDN"
	}
	return fmt.Sprintf("dimension(%d)", int(d))
}

// providerPalettes gives each market its major players with global
// popularity weights; assignment cycles deterministically so the
// per-country mix approximates the weights.
var providerPalettes = map[Dimension][]struct {
	name   string
	weight int
}{
	DimDNS: {
		{"Cloudflare DNS", 35}, {"Amazon Route 53", 25}, {"GoDaddy DNS", 14},
		{"Google Cloud DNS", 12}, {"DigitalOcean DNS", 8}, {"NS1", 6},
	},
	DimCA: {
		{"Let's Encrypt", 52}, {"DigiCert", 18}, {"Sectigo", 14},
		{"GlobalSign", 9}, {"GoDaddy CA", 7},
	},
	DimCDN: {
		{"Cloudflare", 42}, {"Amazon CloudFront", 22}, {"Akamai", 16},
		{"Fastly", 12}, {"Google Cloud CDN", 8},
	},
}

// assignProvider picks the provider for the i-th dependent site of a
// market, walking the weighted palette deterministically.
func assignProvider(d Dimension, i int) string {
	palette := providerPalettes[d]
	total := 0
	for _, p := range palette {
		total += p.weight
	}
	slot := i % total
	for _, p := range palette {
		if slot < p.weight {
			return p.name
		}
		slot -= p.weight
	}
	return palette[len(palette)-1].name
}

// ProviderShare is one provider's slice of a country's third-party
// market.
type ProviderShare struct {
	Provider string
	Share    float64 // fraction of the country's dependent unique sites
}

// ProviderConcentration returns, over cc's unique sites that outsource
// the given dimension, each provider's share (descending) and the
// Herfindahl-Hirschman index of the market (1 = fully centralized).
// ok is false when no unique site outsources the dimension.
func (s *Snapshot) ProviderConcentration(cc string, d Dimension) (shares []ProviderShare, hhi float64, ok bool) {
	counts := map[string]int{}
	total := 0
	for _, site := range s.UniqueSites(cc) {
		var provider string
		switch d {
		case DimDNS:
			provider = site.DNSProvider
		case DimCA:
			provider = site.CAProvider
		case DimCDN:
			provider = site.CDNProvider
		}
		if provider == "" {
			continue
		}
		counts[provider]++
		total++
	}
	if total == 0 {
		return nil, 0, false
	}
	for provider, n := range counts {
		share := float64(n) / float64(total)
		shares = append(shares, ProviderShare{provider, share})
		hhi += share * share
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Share != shares[j].Share {
			return shares[i].Share > shares[j].Share
		}
		return shares[i].Provider < shares[j].Provider
	})
	return shares, hhi, true
}

// TopProvider returns the dominant provider of a market in cc.
func (s *Snapshot) TopProvider(cc string, d Dimension) (ProviderShare, bool) {
	shares, _, ok := s.ProviderConcentration(cc, d)
	if !ok {
		return ProviderShare{}, false
	}
	return shares[0], true
}
