package webdeps

import (
	"math"
	"testing"
)

func TestAssignProviderFollowsWeights(t *testing.T) {
	// Over a full palette cycle, each provider receives exactly its
	// weight in assignments.
	counts := map[string]int{}
	for i := 0; i < 100; i++ { // DNS palette weights sum to 100
		counts[assignProvider(DimDNS, i)]++
	}
	if counts["Cloudflare DNS"] != 35 || counts["Amazon Route 53"] != 25 || counts["NS1"] != 6 {
		t.Errorf("counts = %v", counts)
	}
}

func TestProviderConcentration(t *testing.T) {
	s := GenerateSnapshot(1000)
	shares, hhi, ok := s.ProviderConcentration("VE", DimDNS)
	if !ok || len(shares) == 0 {
		t.Fatal("no DNS concentration for VE")
	}
	// Shares are descending and sum to 1.
	total := 0.0
	for i, sh := range shares {
		total += sh.Share
		if i > 0 && sh.Share > shares[i-1].Share {
			t.Fatal("shares not descending")
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum = %v", total)
	}
	// Cloudflare dominates the DNS market (35% palette weight).
	if shares[0].Provider != "Cloudflare DNS" {
		t.Errorf("top DNS provider = %s", shares[0].Provider)
	}
	// HHI bounded by (1/n, 1].
	if hhi <= 0 || hhi > 1 {
		t.Errorf("hhi = %v", hhi)
	}
}

func TestCAMoreConcentratedThanDNS(t *testing.T) {
	// Let's Encrypt's 52% makes the CA market the most concentrated —
	// the centralization finding of Kumar et al.
	s := GenerateSnapshot(1000)
	_, hhiDNS, _ := s.ProviderConcentration("BR", DimDNS)
	_, hhiCA, _ := s.ProviderConcentration("BR", DimCA)
	if hhiCA <= hhiDNS {
		t.Errorf("CA HHI %.3f should exceed DNS HHI %.3f", hhiCA, hhiDNS)
	}
	top, ok := s.TopProvider("BR", DimCA)
	if !ok || top.Provider != "Let's Encrypt" {
		t.Errorf("top CA = %+v", top)
	}
	if top.Share < 0.4 {
		t.Errorf("Let's Encrypt share = %.2f, want ~0.52", top.Share)
	}
}

func TestConcentrationNoData(t *testing.T) {
	s := NewSnapshot()
	s.SetList("VE", []Site{{Host: "a.ve"}}) // no third-party anything
	if _, _, ok := s.ProviderConcentration("VE", DimCDN); ok {
		t.Error("no outsourced sites should report no concentration")
	}
	if _, ok := s.TopProvider("VE", DimCDN); ok {
		t.Error("TopProvider should fail with no data")
	}
}

func TestDimensionString(t *testing.T) {
	if DimDNS.String() != "DNS" || DimCA.String() != "CA" || DimCDN.String() != "CDN" {
		t.Error("dimension names broken")
	}
	if Dimension(9).String() == "" {
		t.Error("unknown dimension should still render")
	}
}
