// Package webdeps reimplements the third-party dependency analysis of
// Appendix H (following Kumar et al.): for each country, take the top
// 1,000 most popular websites as seen by a local user, keep only the
// sites unique to that country's list (shared global sites would be
// served by the same large providers everywhere), and measure what
// fraction are served via third-party DNS, third-party certificate
// authorities, third-party CDNs, and HTTPS.
//
// Calibration matches Figure 19: Venezuela at 0.29 DNS (regional mean
// 0.32), 0.22 CA (0.26), 0.37 CDN (0.46) and 0.58 HTTPS (0.60) — ahead of
// only Bolivia on the three infrastructure dimensions.
package webdeps

import (
	"fmt"
	"sort"
)

// Site is one scraped website with its serving-infrastructure flags and
// the attributed third-party providers (empty when served first-party).
type Site struct {
	Host        string
	ThirdDNS    bool // authoritative DNS outsourced to a third party
	ThirdCA     bool // certificate from a third-party-managed CA
	ThirdCDN    bool // content served through a third-party CDN
	HTTPS       bool
	DNSProvider string
	CAProvider  string
	CDNProvider string
}

// Snapshot is one scraping campaign: per country, the ranked site list a
// local user sees.
type Snapshot struct {
	lists map[string][]Site
}

// NewSnapshot returns an empty Snapshot.
func NewSnapshot() *Snapshot { return &Snapshot{lists: map[string][]Site{}} }

// SetList records the site list scraped from country cc's vantage point.
func (s *Snapshot) SetList(cc string, sites []Site) {
	if s.lists == nil {
		s.lists = map[string][]Site{}
	}
	s.lists[cc] = sites
}

// Countries returns the countries scraped, sorted.
func (s *Snapshot) Countries() []string {
	out := make([]string, 0, len(s.lists))
	for cc := range s.lists {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// List returns country cc's ranked site list.
func (s *Snapshot) List(cc string) []Site { return s.lists[cc] }

// UniqueSites returns the sites appearing only in cc's list and no
// other's — the paper's uniqueness filter.
func (s *Snapshot) UniqueSites(cc string) []Site {
	counts := map[string]int{}
	for _, sites := range s.lists {
		seen := map[string]bool{}
		for _, site := range sites {
			if !seen[site.Host] {
				seen[site.Host] = true
				counts[site.Host]++
			}
		}
	}
	var out []Site
	for _, site := range s.lists[cc] {
		if counts[site.Host] == 1 {
			out = append(out, site)
		}
	}
	return out
}

// Rates holds the four adoption fractions for one country.
type Rates struct {
	DNS, CA, CDN, HTTPS float64
	Sites               int // unique sites the rates are computed over
}

// Adoption computes the adoption rates over cc's unique sites; ok is
// false when the country has no unique sites.
func (s *Snapshot) Adoption(cc string) (Rates, bool) {
	unique := s.UniqueSites(cc)
	if len(unique) == 0 {
		return Rates{}, false
	}
	var r Rates
	r.Sites = len(unique)
	for _, site := range unique {
		if site.ThirdDNS {
			r.DNS++
		}
		if site.ThirdCA {
			r.CA++
		}
		if site.ThirdCDN {
			r.CDN++
		}
		if site.HTTPS {
			r.HTTPS++
		}
	}
	n := float64(len(unique))
	r.DNS /= n
	r.CA /= n
	r.CDN /= n
	r.HTTPS /= n
	return r, true
}

// RegionalMeans averages the adoption rates across all scraped countries.
func (s *Snapshot) RegionalMeans() Rates {
	var sum Rates
	n := 0
	for cc := range s.lists {
		r, ok := s.Adoption(cc)
		if !ok {
			continue
		}
		sum.DNS += r.DNS
		sum.CA += r.CA
		sum.CDN += r.CDN
		sum.HTTPS += r.HTTPS
		n++
	}
	if n == 0 {
		return Rates{}
	}
	sum.DNS /= float64(n)
	sum.CA /= float64(n)
	sum.CDN /= float64(n)
	sum.HTTPS /= float64(n)
	sum.Sites = n
	return sum
}

// calibratedRates encodes Figure 19's per-country adoption levels.
var calibratedRates = map[string]Rates{
	"BO": {DNS: 0.25, CA: 0.16, CDN: 0.28, HTTPS: 0.48},
	"VE": {DNS: 0.29, CA: 0.22, CDN: 0.37, HTTPS: 0.58},
	"AR": {DNS: 0.30, CA: 0.25, CDN: 0.54, HTTPS: 0.54},
	"PY": {DNS: 0.31, CA: 0.23, CDN: 0.34, HTTPS: 0.59},
	"BR": {DNS: 0.32, CA: 0.30, CDN: 0.58, HTTPS: 0.72},
	"CL": {DNS: 0.33, CA: 0.27, CDN: 0.65, HTTPS: 0.67},
	"CO": {DNS: 0.34, CA: 0.32, CDN: 0.42, HTTPS: 0.56},
	"MX": {DNS: 0.36, CA: 0.35, CDN: 0.50, HTTPS: 0.62},
	"UY": {DNS: 0.38, CA: 0.24, CDN: 0.46, HTTPS: 0.64},
}

// CalibratedCountries returns the countries in the Figure 19 panel,
// sorted.
func CalibratedCountries() []string {
	out := make([]string, 0, len(calibratedRates))
	for cc := range calibratedRates {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// GenerateSnapshot synthesizes a scraping campaign whose unique-site
// adoption rates reproduce the calibrated table exactly: each country
// gets uniquePerCC unique local sites with flag counts set by the rates,
// plus a block of global sites shared by every list (which the uniqueness
// filter must discard — they are all fully third-party-served).
func GenerateSnapshot(uniquePerCC int) *Snapshot {
	s := NewSnapshot()
	shared := make([]Site, 40)
	for i := range shared {
		shared[i] = Site{
			Host:     fmt.Sprintf("global-%d.example.com", i),
			ThirdDNS: true, ThirdCA: true, ThirdCDN: true, HTTPS: true,
		}
	}
	for cc, rates := range calibratedRates {
		sites := make([]Site, 0, uniquePerCC+len(shared))
		for i := 0; i < uniquePerCC; i++ {
			site := Site{
				Host:     fmt.Sprintf("site-%d.%s.example", i, cc),
				ThirdDNS: i < int(rates.DNS*float64(uniquePerCC)+0.5),
				ThirdCA:  i < int(rates.CA*float64(uniquePerCC)+0.5),
				ThirdCDN: i < int(rates.CDN*float64(uniquePerCC)+0.5),
				HTTPS:    i < int(rates.HTTPS*float64(uniquePerCC)+0.5),
			}
			if site.ThirdDNS {
				site.DNSProvider = assignProvider(DimDNS, i)
			}
			if site.ThirdCA {
				site.CAProvider = assignProvider(DimCA, i)
			}
			if site.ThirdCDN {
				site.CDNProvider = assignProvider(DimCDN, i)
			}
			sites = append(sites, site)
		}
		sites = append(sites, shared...)
		s.SetList(cc, sites)
	}
	return s
}
