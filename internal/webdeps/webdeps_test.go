package webdeps

import (
	"math"
	"testing"
)

func TestUniquenessFilter(t *testing.T) {
	s := NewSnapshot()
	s.SetList("VE", []Site{
		{Host: "local.ve.example"},
		{Host: "shared.example.com"},
	})
	s.SetList("CO", []Site{
		{Host: "local.co.example"},
		{Host: "shared.example.com"},
	})
	ve := s.UniqueSites("VE")
	if len(ve) != 1 || ve[0].Host != "local.ve.example" {
		t.Errorf("UniqueSites(VE) = %v", ve)
	}
}

func TestUniquenessFilterHandlesDuplicatesWithinList(t *testing.T) {
	s := NewSnapshot()
	s.SetList("VE", []Site{
		{Host: "twice.ve.example"},
		{Host: "twice.ve.example"},
	})
	s.SetList("CO", []Site{{Host: "other.co.example"}})
	// Appearing twice in the same country's list is still unique to it.
	if got := s.UniqueSites("VE"); len(got) != 2 {
		t.Errorf("duplicates within one list = %v", got)
	}
}

func TestAdoptionRates(t *testing.T) {
	s := NewSnapshot()
	s.SetList("VE", []Site{
		{Host: "a.ve", ThirdDNS: true, HTTPS: true},
		{Host: "b.ve", ThirdCA: true, ThirdCDN: true},
		{Host: "c.ve", HTTPS: true},
		{Host: "d.ve"},
	})
	r, ok := s.Adoption("VE")
	if !ok {
		t.Fatal("no adoption")
	}
	if r.DNS != 0.25 || r.CA != 0.25 || r.CDN != 0.25 || r.HTTPS != 0.5 || r.Sites != 4 {
		t.Errorf("rates = %+v", r)
	}
	if _, ok := s.Adoption("ZZ"); ok {
		t.Error("missing country should not report rates")
	}
}

func TestGeneratedSnapshotMatchesFigure19(t *testing.T) {
	s := GenerateSnapshot(1000)
	ve, ok := s.Adoption("VE")
	if !ok {
		t.Fatal("no VE adoption")
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.005 {
			t.Errorf("VE %s = %.3f, want %.3f", name, got, want)
		}
	}
	check("DNS", ve.DNS, 0.29)
	check("CA", ve.CA, 0.22)
	check("CDN", ve.CDN, 0.37)
	check("HTTPS", ve.HTTPS, 0.58)

	means := s.RegionalMeans()
	check("mean DNS", means.DNS, 0.32)
	check("mean CA", means.CA, 0.26)
	check("mean CDN", means.CDN, 0.46)
	check("mean HTTPS", means.HTTPS, 0.60)
}

func TestVenezuelaOnlyAheadOfBolivia(t *testing.T) {
	s := GenerateSnapshot(1000)
	ve, _ := s.Adoption("VE")
	for _, cc := range CalibratedCountries() {
		if cc == "VE" || cc == "BO" {
			continue
		}
		r, _ := s.Adoption(cc)
		if r.DNS < ve.DNS {
			t.Errorf("%s DNS %.2f below VE — VE should be ahead of only BO", cc, r.DNS)
		}
		if r.CA < ve.CA && cc != "PY" && cc != "UY" && cc != "AR" { // CA ordering per Figure 19
			t.Errorf("%s CA %.2f below VE unexpectedly", cc, r.CA)
		}
	}
	bo, _ := s.Adoption("BO")
	if bo.DNS >= ve.DNS || bo.CA >= ve.CA || bo.CDN >= ve.CDN {
		t.Error("BO should trail VE on all three infrastructure dimensions")
	}
	// HTTPS is the exception: VE sits slightly below the mean but not last.
	if ve.HTTPS <= bo.HTTPS {
		t.Error("VE HTTPS should exceed BO's")
	}
}

func TestSharedSitesExcluded(t *testing.T) {
	s := GenerateSnapshot(100)
	// Every country's unique-site count must equal the requested size:
	// the 40 shared (fully third-party) sites must all be filtered out.
	for _, cc := range s.Countries() {
		r, _ := s.Adoption(cc)
		if r.Sites != 100 {
			t.Errorf("%s unique sites = %d, want 100", cc, r.Sites)
		}
	}
}

func TestRegionalMeansEmpty(t *testing.T) {
	s := NewSnapshot()
	if got := s.RegionalMeans(); got.DNS != 0 || got.Sites != 0 {
		t.Errorf("empty means = %+v", got)
	}
}
