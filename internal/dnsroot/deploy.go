package dnsroot

import (
	"sort"
	"time"

	"vzlens/internal/geo"
	"vzlens/internal/months"
)

// Instance is one anycast root server deployment at a site, active over
// [Start, End). A zero End means still active.
type Instance struct {
	Letter Letter
	City   geo.City
	Index  int
	Start  months.Month
	End    months.Month
}

// ActiveAt reports whether the instance serves traffic during month m.
func (i Instance) ActiveAt(m months.Month) bool {
	if m.Before(i.Start) {
		return false
	}
	return i.End.IsZero() || m.Before(i.End)
}

// lRootRename is when ICANN switched L-root instance naming conventions.
var lRootRename = months.New(2018, time.July)

// NamingEraAt returns the naming generation letter l uses at month m —
// the era ChaosName resolves internally. Exposed so bulk consumers can
// intern per-era name tables instead of re-rendering per response.
func NamingEraAt(l Letter, m months.Month) Era {
	if l == 'L' && !m.Before(lRootRename) {
		return EraModern
	}
	return EraClassic
}

// ChaosName returns the CHAOS TXT hostname.bind response the instance
// gives at month m, honoring the L-root renaming.
func (i Instance) ChaosName(m months.Month) string {
	return InstanceName(i.Letter, i.City, i.Index, NamingEraAt(i.Letter, m))
}

// Deployment is the global set of root instances over time.
type Deployment struct {
	instances []Instance
}

// NewDeployment returns an empty Deployment.
func NewDeployment() *Deployment { return &Deployment{} }

// Add registers an instance.
func (d *Deployment) Add(i Instance) { d.instances = append(d.instances, i) }

// Len returns the total number of instances ever deployed.
func (d *Deployment) Len() int { return len(d.instances) }

// ActiveAt returns the instances serving at month m, ordered by letter
// then city then index.
func (d *Deployment) ActiveAt(m months.Month) []Instance {
	var out []Instance
	for _, i := range d.instances {
		if i.ActiveAt(m) {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Letter != out[b].Letter {
			return out[a].Letter < out[b].Letter
		}
		if out[a].City.Name != out[b].City.Name {
			return out[a].City.Name < out[b].City.Name
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// CountByCountry returns the number of active instances per country at
// month m.
func (d *Deployment) CountByCountry(m months.Month) map[string]int {
	out := map[string]int{}
	for _, i := range d.instances {
		if i.ActiveAt(m) {
			out[i.City.Country]++
		}
	}
	return out
}

// InCountry returns the instances in country cc active at month m.
func (d *Deployment) InCountry(cc string, m months.Month) []Instance {
	var out []Instance
	for _, i := range d.ActiveAt(m) {
		if i.City.Country == cc {
			out = append(out, i)
		}
	}
	return out
}

// countryGrowth drives the synthesized regional build-out: instances at
// the start of 2016 and at the start of 2024. Additions are spread evenly
// across the window. Calibrated to Figure 6: region 59 -> 138 replicas,
// Brazil 18 -> 41, Chile 5 -> 20, Mexico 4 -> 16, Argentina 14 -> 15.
var countryGrowth = []struct {
	cc           string
	n2016, n2024 int
}{
	{"BR", 18, 41}, {"MX", 4, 16}, {"CL", 5, 20}, {"AR", 14, 15},
	{"CO", 4, 8}, {"PE", 2, 6}, {"EC", 1, 5}, {"UY", 2, 4},
	{"PA", 1, 4}, {"CR", 1, 3}, {"TT", 1, 2}, {"DO", 2, 3},
	{"CW", 1, 1}, {"GF", 1, 1}, {"GT", 0, 2}, {"BO", 0, 2},
	{"PY", 0, 2}, {"HT", 0, 1}, {"HN", 0, 1}, {"NI", 0, 1},
}

// letterCycle orders instance letters by how aggressively each operator
// places hosted copies: L and F lead (LACNIC's +Raices program places L
// and F roots), followed by the other anycast letters. The cycle visits
// all thirteen so a large national deployment spans every operator.
var letterCycle = []Letter{'L', 'F', 'K', 'I', 'J', 'E', 'D', 'C', 'A', 'B', 'G', 'H', 'M'}

// globalDeployments places instances outside the region for the
// origin-country analyses (Figure 16): the US hosts by far the most,
// followed by Western Europe, with a handful elsewhere.
var globalDeployments = []struct {
	cc string
	n  int
}{
	{"US", 45}, {"GB", 6}, {"DE", 5}, {"FR", 4}, {"NL", 4},
	{"CA", 3}, {"JP", 3}, {"SE", 2}, {"ZA", 2}, {"RU", 2},
	{"ES", 2}, {"IT", 2},
}

// DefaultDeployment builds the calibrated global root-server deployment
// for 2016-2024, including Venezuela's trajectory: an L and an F root in
// Caracas early in the window, both later withdrawn, briefly replaced by
// an L root in Maracaibo, leaving the country with none.
func DefaultDeployment() *Deployment {
	d := NewDeployment()
	preStudy := months.New(2015, time.January)
	windowStart := months.New(2016, time.January)
	windowEnd := months.New(2024, time.January)
	window := windowEnd.Sub(windowStart)

	for _, g := range countryGrowth {
		cities := geo.CitiesIn(g.cc)
		if len(cities) == 0 {
			continue
		}
		for k := 0; k < g.n2024; k++ {
			start := preStudy
			if k >= g.n2016 {
				// Spread additions across the window, finishing before its end.
				frac := float64(k-g.n2016+1) / float64(g.n2024-g.n2016+1)
				start = windowStart.Add(int(frac * float64(window)))
			}
			d.Add(Instance{
				Letter: letterCycle[k%len(letterCycle)],
				City:   cities[k%len(cities)],
				Index:  k/len(cities) + 1,
				Start:  start,
			})
		}
	}

	for _, g := range globalDeployments {
		cities := geo.CitiesIn(g.cc)
		if len(cities) == 0 {
			continue
		}
		for k := 0; k < g.n; k++ {
			d.Add(Instance{
				Letter: letterCycle[k%len(letterCycle)],
				City:   cities[k%len(cities)],
				Index:  k/len(cities) + 1,
				Start:  preStudy,
			})
		}
	}

	// Venezuela's story (Section 5.4): ccs01.l and ccs1a.f in Caracas,
	// gone by 2019-2020; aa.ve-mar.l.root in Maracaibo until mid-2022.
	caracas, _ := geo.LookupIATA("CCS")
	maracaibo, _ := geo.LookupIATA("MAR")
	d.Add(Instance{Letter: 'L', City: caracas, Index: 1, Start: preStudy, End: months.New(2019, time.July)})
	d.Add(Instance{Letter: 'F', City: caracas, Index: 1, Start: preStudy, End: months.New(2020, time.April)})
	d.Add(Instance{Letter: 'L', City: maracaibo, Index: 1, Start: months.New(2019, time.July), End: months.New(2022, time.July)})

	return d
}
