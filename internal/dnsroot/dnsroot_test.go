package dnsroot

import (
	"testing"
	"testing/quick"
	"time"

	"vzlens/internal/geo"
	"vzlens/internal/months"
)

func TestLetters(t *testing.T) {
	ls := Letters()
	if len(ls) != 13 || ls[0] != 'A' || ls[12] != 'M' {
		t.Errorf("Letters = %v", ls)
	}
	for _, l := range ls {
		if !l.Valid() {
			t.Errorf("%v not valid", l)
		}
	}
	if Letter('N').Valid() || Letter('@').Valid() {
		t.Error("out-of-range letters should be invalid")
	}
}

func TestPaperInstanceNames(t *testing.T) {
	// The three concrete names the paper reports for Venezuela.
	ccs, _ := geo.LookupIATA("CCS")
	mar, _ := geo.LookupIATA("MAR")

	if got := InstanceName('L', ccs, 1, EraClassic); got != "ccs01.l.root-servers.org" {
		t.Errorf("classic L = %q, want ccs01.l.root-servers.org", got)
	}
	if got := InstanceName('F', ccs, 1, EraClassic); got != "ccs1a.f.root-servers.org" {
		t.Errorf("F = %q, want ccs1a.f.root-servers.org", got)
	}
	if got := InstanceName('L', mar, 1, EraModern); got != "aa.ve-mar.l.root" {
		t.Errorf("modern L = %q, want aa.ve-mar.l.root", got)
	}
}

func TestAllThirteenFormatsRoundTrip(t *testing.T) {
	city, _ := geo.LookupIATA("BOG")
	for _, l := range Letters() {
		for _, era := range []Era{EraClassic, EraModern} {
			name := InstanceName(l, city, 2, era)
			if name == "" {
				t.Fatalf("%s: empty instance name", l)
			}
			site, err := ParseInstance(l, name)
			if err != nil {
				t.Fatalf("%s (%v): parse %q: %v", l, era, name, err)
			}
			if site.Country != "CO" || site.IATA != "BOG" {
				t.Errorf("%s: parsed %q to %+v", l, name, site)
			}
		}
	}
}

func TestParseRejectsWrongConvention(t *testing.T) {
	// An F-style response handed to the L parser must not resolve.
	if _, err := ParseInstance('L', "bog1a.f.root-servers.org"); err == nil {
		t.Error("cross-letter parse should fail")
	}
	if _, err := ParseInstance('A', "garbage"); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ParseInstance(Letter('z'), "s1.bog"); err == nil {
		t.Error("invalid letter should fail")
	}
	// Unknown location tag.
	if _, err := ParseInstance('I', "s1.zzz"); err == nil {
		t.Error("unknown airport code should fail")
	}
	// Country/city mismatch in country-carrying formats.
	if _, err := ParseInstance('K', "ns1.br-bog.k.ripe.net"); err == nil {
		t.Error("K with mismatched country should fail")
	}
	if _, err := ParseInstance('L', "aa.br-bog.l.root"); err == nil {
		t.Error("modern L with mismatched country should fail")
	}
}

func TestParseIsCaseAndSpaceTolerant(t *testing.T) {
	site, err := ParseInstance('I', "  S1.BOG \n")
	if err != nil {
		t.Fatal(err)
	}
	if site.City != "Bogota" {
		t.Errorf("City = %q", site.City)
	}
}

func TestServerTag(t *testing.T) {
	if serverTag(1) != "aa" || serverTag(2) != "ab" || serverTag(27) != "ba" {
		t.Errorf("serverTag: %q %q %q", serverTag(1), serverTag(2), serverTag(27))
	}
	if serverTag(0) != "aa" {
		t.Errorf("serverTag(0) = %q, want aa", serverTag(0))
	}
}

func mon(y int, m time.Month) months.Month { return months.New(y, m) }

func TestInstanceActiveWindow(t *testing.T) {
	i := Instance{Start: mon(2016, time.January), End: mon(2019, time.July)}
	if i.ActiveAt(mon(2015, time.December)) {
		t.Error("active before start")
	}
	if !i.ActiveAt(mon(2016, time.January)) || !i.ActiveAt(mon(2019, time.June)) {
		t.Error("inactive inside window")
	}
	if i.ActiveAt(mon(2019, time.July)) {
		t.Error("active at exclusive end")
	}
	open := Instance{Start: mon(2016, time.January)}
	if !open.ActiveAt(mon(2030, time.January)) {
		t.Error("open-ended instance should stay active")
	}
}

func TestLRootRename(t *testing.T) {
	ccs, _ := geo.LookupIATA("CCS")
	i := Instance{Letter: 'L', City: ccs, Index: 1, Start: mon(2015, time.January)}
	before := i.ChaosName(mon(2017, time.January))
	after := i.ChaosName(mon(2019, time.January))
	if before != "ccs01.l.root-servers.org" {
		t.Errorf("before rename = %q", before)
	}
	if after != "aa.ve-ccs.l.root" {
		t.Errorf("after rename = %q", after)
	}
	// Non-L letters never change convention.
	f := Instance{Letter: 'F', City: ccs, Index: 1, Start: mon(2015, time.January)}
	if f.ChaosName(mon(2017, time.January)) != f.ChaosName(mon(2019, time.January)) {
		t.Error("F convention should not change")
	}
}

func TestDefaultDeploymentRegionalGrowth(t *testing.T) {
	d := DefaultDeployment()
	lacnic := map[string]bool{}
	for _, cc := range geo.LACNICCountries() {
		lacnic[cc] = true
	}
	count := func(m months.Month) int {
		total := 0
		for cc, n := range d.CountByCountry(m) {
			if lacnic[cc] {
				total += n
			}
		}
		return total
	}
	at2016 := count(mon(2016, time.January))
	at2024 := count(mon(2024, time.January))
	// Paper: 59 -> 138 replicas (a 2.34-fold rise).
	if at2016 < 57 || at2016 > 63 {
		t.Errorf("region replicas 2016 = %d, want ~59", at2016)
	}
	if at2024 < 132 || at2024 > 144 {
		t.Errorf("region replicas 2024 = %d, want ~138", at2024)
	}
	ratio := float64(at2024) / float64(at2016)
	if ratio < 2.0 || ratio > 2.7 {
		t.Errorf("growth ratio = %.2f, want ~2.34", ratio)
	}
}

func TestDefaultDeploymentCountryStories(t *testing.T) {
	d := DefaultDeployment()
	check := func(cc string, m months.Month, lo, hi int) {
		t.Helper()
		n := d.CountByCountry(m)[cc]
		if n < lo || n > hi {
			t.Errorf("%s at %v = %d, want [%d,%d]", cc, m, n, lo, hi)
		}
	}
	check("BR", mon(2016, time.January), 17, 19) // paper: 18
	check("BR", mon(2024, time.January), 39, 43) // paper: 41
	check("MX", mon(2016, time.January), 4, 4)
	check("MX", mon(2024, time.January), 15, 17)
	check("CL", mon(2016, time.January), 5, 5)
	check("CL", mon(2024, time.January), 19, 21)
	check("AR", mon(2016, time.January), 14, 14)
	check("AR", mon(2024, time.January), 15, 15)
}

func TestVenezuelaRegression(t *testing.T) {
	d := DefaultDeployment()
	// Two instances (L and F, Caracas) early in the window.
	early := d.InCountry("VE", mon(2016, time.June))
	if len(early) != 2 {
		t.Fatalf("VE 2016 = %d instances, want 2", len(early))
	}
	letters := map[Letter]bool{}
	for _, i := range early {
		letters[i.Letter] = true
		if i.City.Name != "Caracas" {
			t.Errorf("early VE instance in %s, want Caracas", i.City.Name)
		}
	}
	if !letters['L'] || !letters['F'] {
		t.Errorf("early VE letters = %v, want L and F", letters)
	}
	// Maracaibo L replaces the Caracas pair.
	mid := d.InCountry("VE", mon(2021, time.January))
	foundMaracaibo := false
	for _, i := range mid {
		if i.City.Name == "Maracaibo" && i.Letter == 'L' {
			foundMaracaibo = true
			// The modern-format name the paper saw.
			if name := i.ChaosName(mon(2021, time.January)); name != "aa.ve-mar.l.root" {
				t.Errorf("Maracaibo chaos name = %q", name)
			}
		}
	}
	if !foundMaracaibo {
		t.Error("Maracaibo L root missing in 2021")
	}
	// Nothing left by 2023.
	if late := d.InCountry("VE", mon(2023, time.June)); len(late) != 0 {
		t.Errorf("VE 2023 = %d instances, want 0", len(late))
	}
}

func TestUSHostsMost(t *testing.T) {
	d := DefaultDeployment()
	counts := d.CountByCountry(mon(2023, time.January))
	us := counts["US"]
	for cc, n := range counts {
		if cc != "US" && n > us {
			t.Errorf("%s (%d) exceeds US (%d)", cc, n, us)
		}
	}
	if us < 20 {
		t.Errorf("US = %d instances, want a large deployment", us)
	}
}

func TestActiveAtSorted(t *testing.T) {
	d := DefaultDeployment()
	active := d.ActiveAt(mon(2020, time.January))
	for i := 1; i < len(active); i++ {
		a, b := active[i-1], active[i]
		if a.Letter > b.Letter {
			t.Fatal("not letter-sorted")
		}
		if a.Letter == b.Letter && a.City.Name > b.City.Name {
			t.Fatal("not city-sorted within letter")
		}
	}
}

// Property: every generated instance name for any city and letter parses
// back to the same country.
func TestQuickNameParseInverse(t *testing.T) {
	cities := geo.AllCities()
	f := func(li, ci, idx uint8) bool {
		l := Letters()[int(li)%13]
		city := cities[int(ci)%len(cities)]
		index := int(idx)%20 + 1
		for _, era := range []Era{EraClassic, EraModern} {
			site, err := ParseInstance(l, InstanceName(l, city, index, era))
			if err != nil || site.Country != city.Country {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
