package dnsroot

import (
	"strings"
	"testing"

	"vzlens/internal/geo"
)

// FuzzParseInstance drives the 13-convention CHAOS TXT extractor with
// arbitrary letter bytes and response strings. ParseInstance must never
// panic, and every accepted response must carry a coherent site: a known
// IATA tag whose city matches the reported country, round-tripping
// through the letter's own naming convention.
func FuzzParseInstance(f *testing.F) {
	for _, l := range Letters() {
		ccs, _ := geo.LookupIATA("CCS")
		f.Add(byte(l), InstanceName(l, ccs, 1, EraClassic))
		f.Add(byte(l), InstanceName(l, ccs, 2, EraModern))
	}
	f.Add(byte('L'), "ccs01.l.root-servers.org")
	f.Add(byte('K'), "ns1.ve-ccs.k.ripe.net")
	f.Add(byte('K'), "ns1.br-ccs.k.ripe.net") // country/city mismatch
	f.Add(byte('I'), "s1.bog")
	f.Add(byte('Z'), "not-a-letter")
	f.Add(byte('A'), "nnn1-zzz9") // unknown location tag
	f.Add(byte('M'), strings.Repeat("m1.", 1000)+"ccs.m.root")

	f.Fuzz(func(t *testing.T, letter byte, txt string) {
		site, err := ParseInstance(Letter(letter), txt)
		if err != nil {
			return
		}
		if !Letter(letter).Valid() {
			t.Fatalf("accepted response %q for invalid letter %q", txt, letter)
		}
		if site.Letter != Letter(letter) {
			t.Fatalf("parsed letter %v from a %q response", site.Letter, letter)
		}
		city, ok := geo.LookupIATA(site.IATA)
		if !ok {
			t.Fatalf("accepted unknown location tag %q from %q", site.IATA, txt)
		}
		if city.Country != site.Country || city.Name != site.City {
			t.Fatalf("tag %q resolves to %s/%s but site says %s/%s",
				site.IATA, city.Name, city.Country, site.City, site.Country)
		}
		if site.Raw != txt {
			t.Fatalf("raw response mangled: %q → %q", txt, site.Raw)
		}
	})
}
