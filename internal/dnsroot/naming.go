// Package dnsroot models the root DNS server system as the paper measures
// it: thirteen root letters, each operated independently and each encoding
// the identity of its anycast instances in a different CHAOS TXT
// hostname.bind convention. The package provides the per-letter naming
// schemes, the regular-expression extraction of location tags from the 13
// response formats (the methodology of Section 3.1), and the deployment
// model of where instances exist over time.
package dnsroot

import (
	"fmt"
	"regexp"
	"strings"

	"vzlens/internal/geo"
)

// Letter identifies one of the thirteen root servers, 'A' through 'M'.
type Letter byte

// Letters lists all thirteen root letters in order.
func Letters() []Letter {
	out := make([]Letter, 13)
	for i := range out {
		out[i] = Letter('A' + i)
	}
	return out
}

// Valid reports whether l is one of the thirteen letters.
func (l Letter) Valid() bool { return l >= 'A' && l <= 'M' }

// String returns the letter as an upper-case string.
func (l Letter) String() string { return string(rune(l)) }

// Era selects a naming generation for operators that changed conventions.
type Era int

// L-root renamed its instances around 2018; other letters kept a single
// convention over the study period.
const (
	EraClassic Era = iota // pre-rename conventions
	EraModern             // post-rename conventions
)

// InstanceName returns the CHAOS TXT hostname.bind string a given
// instance answers with. Each letter uses its operator's convention:
//
//	A  nnn1-ccs2                        (Verisign)
//	B  b1-ccs                           (USC-ISI)
//	C  ccs1b.c.root-servers.org         (Cogent)
//	D  dtld-ccs1                        (UMD)
//	E  e1.ccs.e.root-servers.net        (NASA)
//	F  ccs1a.f.root-servers.org         (ISC)
//	G  groot-ccs-1                      (DISA)
//	H  h1.ccs.h.root-servers.org        (ARL)
//	I  s1.ccs                           (Netnod)
//	J  j-ccs-1                          (Verisign)
//	K  ns1.ve-ccs.k.ripe.net            (RIPE NCC)
//	L  ccs01.l.root-servers.org         (ICANN, classic era)
//	L  aa.ve-ccs.l.root                 (ICANN, modern era)
//	M  m1.ccs.m.root                    (WIDE)
//
// The location tag is the city's IATA code (lower-cased); K and modern L
// additionally carry the country code.
func InstanceName(l Letter, city geo.City, index int, era Era) string {
	code := strings.ToLower(city.IATA)
	cc := strings.ToLower(city.Country)
	switch l {
	case 'A':
		return fmt.Sprintf("nnn1-%s%d", code, index)
	case 'B':
		return fmt.Sprintf("b%d-%s", index, code)
	case 'C':
		return fmt.Sprintf("%s%db.c.root-servers.org", code, index)
	case 'D':
		return fmt.Sprintf("dtld-%s%d", code, index)
	case 'E':
		return fmt.Sprintf("e%d.%s.e.root-servers.net", index, code)
	case 'F':
		return fmt.Sprintf("%s%da.f.root-servers.org", code, index)
	case 'G':
		return fmt.Sprintf("groot-%s-%d", code, index)
	case 'H':
		return fmt.Sprintf("h%d.%s.h.root-servers.org", index, code)
	case 'I':
		return fmt.Sprintf("s%d.%s", index, code)
	case 'J':
		return fmt.Sprintf("j-%s-%d", code, index)
	case 'K':
		return fmt.Sprintf("ns%d.%s-%s.k.ripe.net", index, cc, code)
	case 'L':
		if era == EraClassic {
			return fmt.Sprintf("%s%02d.l.root-servers.org", code, index)
		}
		return fmt.Sprintf("%s.%s-%s.l.root", serverTag(index), cc, code)
	case 'M':
		return fmt.Sprintf("m%d.%s.m.root", index, code)
	}
	return ""
}

// serverTag renders 1 -> "aa", 2 -> "ab", ... like modern L-root names.
func serverTag(index int) string {
	if index < 1 {
		index = 1
	}
	index--
	return string([]byte{byte('a' + (index/26)%26), byte('a' + index%26)})
}

// Site is a root instance location extracted from a CHAOS TXT response.
type Site struct {
	Letter  Letter
	City    string // city name
	Country string // ISO code
	IATA    string // extracted location tag, upper case
	Raw     string // the response it was parsed from
}

// Per-letter extraction patterns. Each captures the IATA location tag;
// K and modern L also capture the country code.
var patterns = map[Letter][]*regexp.Regexp{
	'A': {regexp.MustCompile(`^nnn\d+-([a-z]{3})\d*$`)},
	'B': {regexp.MustCompile(`^b\d+-([a-z]{3})$`)},
	'C': {regexp.MustCompile(`^([a-z]{3})\d+[a-z]\.c\.root-servers\.org$`)},
	'D': {regexp.MustCompile(`^dtld-([a-z]{3})\d+$`)},
	'E': {regexp.MustCompile(`^e\d+\.([a-z]{3})\.e\.root-servers\.net$`)},
	'F': {regexp.MustCompile(`^([a-z]{3})\d+[a-z]\.f\.root-servers\.org$`)},
	'G': {regexp.MustCompile(`^groot-([a-z]{3})-\d+$`)},
	'H': {regexp.MustCompile(`^h\d+\.([a-z]{3})\.h\.root-servers\.org$`)},
	'I': {regexp.MustCompile(`^s\d+\.([a-z]{3})$`)},
	'J': {regexp.MustCompile(`^j-([a-z]{3})-\d+$`)},
	'K': {regexp.MustCompile(`^ns\d+\.([a-z]{2})-([a-z]{3})\.k\.ripe\.net$`)},
	'L': {
		regexp.MustCompile(`^([a-z]{3})\d+\.l\.root-servers\.org$`),
		regexp.MustCompile(`^[a-z]{2}\.([a-z]{2})-([a-z]{3})\.l\.root$`),
	},
	'M': {regexp.MustCompile(`^m\d+\.([a-z]{3})\.m\.root$`)},
}

// ParseInstance extracts the site identified by a CHAOS TXT response from
// root letter l. It returns an error when the response does not match the
// letter's convention or the location tag is unknown.
func ParseInstance(l Letter, txt string) (Site, error) {
	if !l.Valid() {
		return Site{}, fmt.Errorf("dnsroot: invalid letter %q", l.String())
	}
	t := strings.ToLower(strings.TrimSpace(txt))
	for _, re := range patterns[l] {
		m := re.FindStringSubmatch(t)
		if m == nil {
			continue
		}
		// K and modern L capture (cc, iata); everything else just (iata).
		iata := m[len(m)-1]
		city, ok := geo.LookupIATA(iata)
		if !ok {
			return Site{}, fmt.Errorf("dnsroot: %s response %q: unknown location tag %q", l, txt, iata)
		}
		if len(m) == 3 {
			if cc := strings.ToUpper(m[1]); cc != city.Country {
				return Site{}, fmt.Errorf("dnsroot: %s response %q: country %s does not match city %s",
					l, txt, cc, city.Name)
			}
		}
		return Site{
			Letter:  l,
			City:    city.Name,
			Country: city.Country,
			IATA:    strings.ToUpper(iata),
			Raw:     txt,
		}, nil
	}
	return Site{}, fmt.Errorf("dnsroot: %s response %q does not match the operator's convention", l, txt)
}
