package peeringdb

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vzlens/internal/months"
)

func sample() *Snapshot {
	return &Snapshot{
		Facilities: []Facility{
			{1, "Cirion La Urbina", "Caracas", "VE"},
			{2, "Daycohost - Caracas", "Caracas", "VE"},
			{3, "Equinix SP1", "Sao Paulo", "BR"},
		},
		Networks: []Network{
			{10, 8053, "IFX Venezuela", "VE"},
			{11, 265641, "CIX BROADBAND", "VE"},
			{12, 26615, "Tim Brasil", "BR"},
		},
		IXs: []IX{
			{20, "IX.br (SP)", "Sao Paulo", "BR"},
		},
		NetFacs: []NetFac{
			{10, 1}, {11, 1}, {10, 2},
		},
		NetIXLans: []NetIXLan{
			{12, 20},
		},
	}
}

func TestFacilitiesIn(t *testing.T) {
	s := sample()
	ve := s.FacilitiesIn("VE")
	if len(ve) != 2 || ve[0].Name != "Cirion La Urbina" {
		t.Errorf("FacilitiesIn(VE) = %v", ve)
	}
	if got := s.FacilitiesIn("ZZ"); got != nil {
		t.Errorf("FacilitiesIn(ZZ) = %v", got)
	}
	counts := s.FacilityCount()
	if counts["VE"] != 2 || counts["BR"] != 1 {
		t.Errorf("FacilityCount = %v", counts)
	}
}

func TestNetworksAt(t *testing.T) {
	s := sample()
	at1 := s.NetworksAt(1)
	if len(at1) != 2 {
		t.Fatalf("NetworksAt(1) = %v", at1)
	}
	if at1[0].ASN != 8053 || at1[1].ASN != 265641 {
		t.Errorf("NetworksAt not ASN-sorted: %v", at1)
	}
	if got := s.NetworksAt(99); len(got) != 0 {
		t.Errorf("NetworksAt(99) = %v", got)
	}
}

func TestNetworksAtIX(t *testing.T) {
	s := sample()
	at := s.NetworksAtIX(20)
	if len(at) != 1 || at[0].ASN != 26615 {
		t.Errorf("NetworksAtIX = %v", at)
	}
}

func TestLookups(t *testing.T) {
	s := sample()
	if n, ok := s.NetworkByASN(8053); !ok || n.Name != "IFX Venezuela" {
		t.Errorf("NetworkByASN = %v %v", n, ok)
	}
	if _, ok := s.NetworkByASN(1); ok {
		t.Error("unknown ASN resolved")
	}
	if f, ok := s.FacilityByName("Daycohost - Caracas"); !ok || f.ID != 2 {
		t.Errorf("FacilityByName = %v %v", f, ok)
	}
	if _, ok := s.FacilityByName("nope"); ok {
		t.Error("unknown facility resolved")
	}
	if ix, ok := s.IXByName("IX.br (SP)"); !ok || ix.Country != "BR" {
		t.Errorf("IXByName = %v %v", ix, ok)
	}
	if _, ok := s.IXByName("nope"); ok {
		t.Error("unknown IX resolved")
	}
	if got := s.IXsIn("BR"); len(got) != 1 {
		t.Errorf("IXsIn = %v", got)
	}
}

func TestJSONRoundTripUsesDumpEnvelope(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	for _, key := range []string{`"fac"`, `"net"`, `"netfac"`, `"netixlan"`, `"data"`} {
		if !strings.Contains(js, key) {
			t.Errorf("dump envelope missing %s: %s", key, js)
		}
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Facilities) != 3 || len(parsed.NetFacs) != 3 {
		t.Errorf("round trip = %+v", parsed)
	}
	if parsed.Facilities[0].Name != "Cirion La Urbina" {
		t.Errorf("facility name lost: %v", parsed.Facilities[0])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Error("want decode error")
	}
}

func TestArchiveSeries(t *testing.T) {
	a := NewArchive()
	m1 := months.New(2018, time.April)
	m2 := months.New(2021, time.November)

	s1 := &Snapshot{Facilities: []Facility{{3, "Equinix SP1", "Sao Paulo", "BR"}}}
	a.Put(m1, s1)
	a.Put(m2, sample())

	fs := a.FacilitySeries("VE")
	if fs[m1] != 0 || fs[m2] != 2 {
		t.Errorf("FacilitySeries = %v", fs)
	}
	ms := a.Months()
	if len(ms) != 2 || ms[0] != m1 || ms[1] != m2 {
		t.Errorf("Months = %v", ms)
	}
	if got := a.Get(m2); got == nil || len(got.Facilities) != 3 {
		t.Error("Get broken")
	}
	if a.Get(months.New(2000, time.January)) != nil {
		t.Error("missing month should be nil")
	}
}

func TestMembershipSeries(t *testing.T) {
	a := NewArchive()
	m1 := months.New(2021, time.November)
	m2 := months.New(2023, time.November)
	a.Put(m1, sample())

	grown := sample()
	grown.NetFacs = append(grown.NetFacs, NetFac{12, 1})
	a.Put(m2, grown)

	ms := a.MembershipSeries("Cirion La Urbina")
	if ms[m1] != 2 || ms[m2] != 3 {
		t.Errorf("MembershipSeries = %v", ms)
	}
	if got := a.MembershipSeries("nope"); len(got) != 0 {
		t.Errorf("missing facility series = %v", got)
	}
}

func TestZeroValueArchive(t *testing.T) {
	var a Archive
	a.Put(months.New(2020, time.January), sample())
	if len(a.Months()) != 1 {
		t.Error("zero-value Archive unusable")
	}
}

// Property: arbitrary snapshots survive the JSON dump envelope.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(facs, nets uint8) bool {
		s := &Snapshot{}
		for i := 0; i < int(facs)%20; i++ {
			s.Facilities = append(s.Facilities, Facility{ID: i + 1, Name: "F", Country: "VE"})
		}
		for i := 0; i < int(nets)%20; i++ {
			s.Networks = append(s.Networks, Network{ID: 100 + i, ASN: uint32(8000 + i), Name: "N", Country: "BR"})
			if len(s.Facilities) > 0 {
				s.NetFacs = append(s.NetFacs, NetFac{NetID: 100 + i, FacID: 1})
			}
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			return false
		}
		parsed, err := Read(&buf)
		if err != nil {
			return false
		}
		return len(parsed.Facilities) == len(s.Facilities) &&
			len(parsed.Networks) == len(s.Networks) &&
			len(parsed.NetFacs) == len(s.NetFacs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
