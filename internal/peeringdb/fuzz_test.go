package peeringdb

import (
	"bytes"
	"io"
	"testing"

	"vzlens/internal/faultio"
)

// FuzzRead feeds arbitrary bytes through the snapshot reader: it must
// return a snapshot or an error without panicking, and an accepted
// snapshot must index cleanly. The corpus is seeded with a valid
// snapshot plus faultio-damaged variants (truncated, bit-flipped) so
// the fuzzer starts from the failure shapes the fault harness exercises.
func FuzzRead(f *testing.F) {
	snap := &Snapshot{
		Facilities: []Facility{{ID: 1, Name: "Cirion La Urbina", City: "Caracas", Country: "VE"}},
		IXs:        []IX{{ID: 1, Name: "IX-Caracas", Country: "VE"}},
		Networks:   []Network{{ID: 1, ASN: 8048, Name: "CANTV", Country: "VE"}},
		NetFacs:    []NetFac{{NetID: 1, FacID: 1}},
		NetIXLans:  []NetIXLan{{NetID: 1, IXID: 1}},
	}
	var valid bytes.Buffer
	if err := snap.Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, n := range []int64{0, 1, int64(valid.Len() / 2), int64(valid.Len() - 1)} {
		cut, _ := io.ReadAll(faultio.Truncate(bytes.NewReader(valid.Bytes()), n))
		f.Add(cut)
	}
	for _, off := range []int64{0, 3, int64(valid.Len() / 3), int64(valid.Len() - 2)} {
		flipped, _ := io.ReadAll(faultio.Corrupt(bytes.NewReader(valid.Bytes()), 0x20, off))
		f.Add(flipped)
	}
	f.Add([]byte("{}"))
	f.Add([]byte(`{"fac":null,"net":[{"asn":-1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted snapshot must support the read paths the world
		// exercises without panicking.
		s.FacilityCount()
		s.FacilitiesIn("VE")
		for _, n := range s.Networks {
			s.NetworksAt(n.ID)
		}
	})
}
