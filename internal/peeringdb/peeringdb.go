// Package peeringdb models the slice of the PeeringDB v2 schema the paper
// consumes from CAIDA's daily archive: facilities, networks, exchanges and
// the join tables recording which network is present at which facility or
// exchange. Snapshots serialize to the same JSON object layout the
// PeeringDB API dump uses ({"fac":{"data":[...]}, ...}), and an Archive
// holds the monthly snapshot sequence starting April 2018 (the start of
// the v2 data schema, as the paper notes).
package peeringdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"vzlens/internal/months"
)

// Facility is a colocation/peering facility (PeeringDB "fac" object).
type Facility struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	City    string `json:"city"`
	Country string `json:"country"`
}

// Network is a network operator (PeeringDB "net" object).
type Network struct {
	ID      int    `json:"id"`
	ASN     uint32 `json:"asn"`
	Name    string `json:"name"`
	Country string `json:"country"` // registration country
}

// IX is an Internet exchange point (PeeringDB "ix" object).
type IX struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	City    string `json:"city"`
	Country string `json:"country"`
}

// NetFac records a network's presence at a facility ("netfac").
type NetFac struct {
	NetID int `json:"net_id"`
	FacID int `json:"fac_id"`
}

// NetIXLan records a network's presence at an exchange ("netixlan").
type NetIXLan struct {
	NetID int `json:"net_id"`
	IXID  int `json:"ix_id"`
}

// Snapshot is one dated dump of the database.
type Snapshot struct {
	Facilities []Facility `json:"-"`
	Networks   []Network  `json:"-"`
	IXs        []IX       `json:"-"`
	NetFacs    []NetFac   `json:"-"`
	NetIXLans  []NetIXLan `json:"-"`
}

// dumpWrapper mirrors the PeeringDB API dump envelope.
type dumpWrapper struct {
	Fac      dumpList[Facility] `json:"fac"`
	Net      dumpList[Network]  `json:"net"`
	IX       dumpList[IX]       `json:"ix"`
	NetFac   dumpList[NetFac]   `json:"netfac"`
	NetIXLan dumpList[NetIXLan] `json:"netixlan"`
}

type dumpList[T any] struct {
	Data []T `json:"data"`
}

// MarshalJSON encodes the snapshot in API-dump envelope form.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(dumpWrapper{
		Fac:      dumpList[Facility]{s.Facilities},
		Net:      dumpList[Network]{s.Networks},
		IX:       dumpList[IX]{s.IXs},
		NetFac:   dumpList[NetFac]{s.NetFacs},
		NetIXLan: dumpList[NetIXLan]{s.NetIXLans},
	})
}

// UnmarshalJSON decodes the API-dump envelope form.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var w dumpWrapper
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("peeringdb: decode: %w", err)
	}
	s.Facilities = w.Fac.Data
	s.Networks = w.Net.Data
	s.IXs = w.IX.Data
	s.NetFacs = w.NetFac.Data
	s.NetIXLans = w.NetIXLan.Data
	return nil
}

// Write encodes the snapshot as JSON to w.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Read decodes a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("peeringdb: read: %w", err)
	}
	return &s, nil
}

// FacilitiesIn returns the facilities located in country cc, sorted by ID.
func (s *Snapshot) FacilitiesIn(cc string) []Facility {
	var out []Facility
	for _, f := range s.Facilities {
		if f.Country == cc {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FacilityCount returns the number of facilities per country.
func (s *Snapshot) FacilityCount() map[string]int {
	out := map[string]int{}
	for _, f := range s.Facilities {
		out[f.Country]++
	}
	return out
}

// NetworksAt returns the networks present at facility facID, sorted by ASN.
func (s *Snapshot) NetworksAt(facID int) []Network {
	present := map[int]bool{}
	for _, nf := range s.NetFacs {
		if nf.FacID == facID {
			present[nf.NetID] = true
		}
	}
	var out []Network
	for _, n := range s.Networks {
		if present[n.ID] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// NetworksAtIX returns the networks present at exchange ixID, sorted by
// ASN.
func (s *Snapshot) NetworksAtIX(ixID int) []Network {
	present := map[int]bool{}
	for _, nl := range s.NetIXLans {
		if nl.IXID == ixID {
			present[nl.NetID] = true
		}
	}
	var out []Network
	for _, n := range s.Networks {
		if present[n.ID] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// NetworkByASN returns the network object for asn.
func (s *Snapshot) NetworkByASN(asn uint32) (Network, bool) {
	for _, n := range s.Networks {
		if n.ASN == asn {
			return n, true
		}
	}
	return Network{}, false
}

// FacilityByName returns the facility whose name matches exactly.
func (s *Snapshot) FacilityByName(name string) (Facility, bool) {
	for _, f := range s.Facilities {
		if f.Name == name {
			return f, true
		}
	}
	return Facility{}, false
}

// IXByName returns the exchange whose name matches exactly.
func (s *Snapshot) IXByName(name string) (IX, bool) {
	for _, ix := range s.IXs {
		if ix.Name == name {
			return ix, true
		}
	}
	return IX{}, false
}

// IXsIn returns the exchanges located in country cc, sorted by ID.
func (s *Snapshot) IXsIn(cc string) []IX {
	var out []IX
	for _, ix := range s.IXs {
		if ix.Country == cc {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Archive holds monthly snapshots.
type Archive struct {
	byMonth map[months.Month]*Snapshot
}

// NewArchive returns an empty Archive.
func NewArchive() *Archive { return &Archive{byMonth: map[months.Month]*Snapshot{}} }

// Put stores the snapshot for month m.
func (a *Archive) Put(m months.Month, s *Snapshot) {
	if a.byMonth == nil {
		a.byMonth = map[months.Month]*Snapshot{}
	}
	a.byMonth[m] = s
}

// Get returns the snapshot for m, or nil.
func (a *Archive) Get(m months.Month) *Snapshot { return a.byMonth[m] }

// Months returns the archived months, sorted.
func (a *Archive) Months() []months.Month {
	out := make([]months.Month, 0, len(a.byMonth))
	for m := range a.byMonth {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FacilitySeries returns per month the number of facilities in country cc
// (Figure 3 panels).
func (a *Archive) FacilitySeries(cc string) map[months.Month]int {
	out := make(map[months.Month]int, len(a.byMonth))
	for m, s := range a.byMonth {
		out[m] = len(s.FacilitiesIn(cc))
	}
	return out
}

// MembershipSeries returns per month the number of networks present at the
// named facility (Figure 15).
func (a *Archive) MembershipSeries(facName string) map[months.Month]int {
	out := map[months.Month]int{}
	for m, s := range a.byMonth {
		f, ok := s.FacilityByName(facName)
		if !ok {
			continue
		}
		out[m] = len(s.NetworksAt(f.ID))
	}
	return out
}
