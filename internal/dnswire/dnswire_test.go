package dnswire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestQueryRoundTrip(t *testing.T) {
	q := Question{Name: "hostname.bind", Type: TypeTXT, Class: ClassCH}
	pkt, err := EncodeQuery(0x1234, q)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if msg.ID != 0x1234 || msg.IsResponse() {
		t.Errorf("header = %+v", msg)
	}
	if len(msg.Question) != 1 || msg.Question[0] != q {
		t.Errorf("question = %+v", msg.Question)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := Question{Name: "hostname.bind", Type: TypeTXT, Class: ClassCH}
	pkt, err := EncodeResponse(7, q, []string{"ccs01.l.root-servers.org"}, RcodeOK)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.IsResponse() || msg.Rcode() != RcodeOK {
		t.Errorf("flags = %04x", msg.Flags)
	}
	txt, err := FirstTXT(msg)
	if err != nil || txt != "ccs01.l.root-servers.org" {
		t.Errorf("FirstTXT = %q, %v", txt, err)
	}
	if msg.Answers[0].Class != ClassCH || msg.Answers[0].Name != q.Name {
		t.Errorf("answer = %+v", msg.Answers[0])
	}
}

func TestRefusedResponse(t *testing.T) {
	q := Question{Name: "hostname.bind", Type: TypeTXT, Class: ClassCH}
	pkt, err := EncodeResponse(7, q, nil, RcodeRef)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Rcode() != RcodeRef || len(msg.Answers) != 0 {
		t.Errorf("msg = %+v", msg)
	}
	if _, err := FirstTXT(msg); !errors.Is(err, ErrNoAnswer) {
		t.Errorf("FirstTXT err = %v", err)
	}
}

func TestFirstTXTRejectsQueries(t *testing.T) {
	q := Question{Name: "hostname.bind", Type: TypeTXT, Class: ClassCH}
	pkt, _ := EncodeQuery(1, q)
	msg, _ := Decode(pkt)
	if _, err := FirstTXT(msg); !errors.Is(err, ErrNotResponse) {
		t.Errorf("err = %v", err)
	}
}

func TestEncodeRejectsBadNames(t *testing.T) {
	long := strings.Repeat("x", 64)
	for _, name := range []string{"bad..label", long + ".bind"} {
		if _, err := EncodeQuery(1, Question{Name: name, Type: TypeTXT, Class: ClassCH}); err == nil {
			t.Errorf("EncodeQuery(%q): want error", name)
		}
	}
}

func TestEncodeRejectsOversizeTXT(t *testing.T) {
	q := Question{Name: "hostname.bind", Type: TypeTXT, Class: ClassCH}
	if _, err := EncodeResponse(1, q, []string{strings.Repeat("a", 256)}, RcodeOK); err == nil {
		t.Error("want error for >255-byte TXT")
	}
}

func TestDecodeTruncated(t *testing.T) {
	q := Question{Name: "hostname.bind", Type: TypeTXT, Class: ClassCH}
	pkt, _ := EncodeResponse(7, q, []string{"abc"}, RcodeOK)
	for cut := 1; cut < len(pkt); cut += 3 {
		if _, err := Decode(pkt[:cut]); err == nil {
			// Some prefixes may decode if counts allow; header must not lie.
			msg, _ := Decode(pkt[:cut])
			if msg != nil && len(msg.Answers) > 0 {
				t.Errorf("truncation at %d produced an answer", cut)
			}
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncatedMessage) {
		t.Error("nil message should be truncated")
	}
}

func TestDecodeCompressionPointer(t *testing.T) {
	// Hand-build a response whose answer name is a pointer to the
	// question name (offset 12), as real servers emit.
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, 9)             // ID
	buf = binary.BigEndian.AppendUint16(buf, FlagQR|FlagAA) // flags
	buf = binary.BigEndian.AppendUint16(buf, 1)             // QDCOUNT
	buf = binary.BigEndian.AppendUint16(buf, 1)             // ANCOUNT
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf, _ = appendName(buf, "hostname.bind")
	buf = binary.BigEndian.AppendUint16(buf, TypeTXT)
	buf = binary.BigEndian.AppendUint16(buf, ClassCH)
	buf = append(buf, 0xC0, 12) // pointer to offset 12
	buf = binary.BigEndian.AppendUint16(buf, TypeTXT)
	buf = binary.BigEndian.AppendUint16(buf, ClassCH)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 4)
	buf = append(buf, 3, 's', '1', '.')

	msg, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Answers) != 1 || msg.Answers[0].Name != "hostname.bind" {
		t.Errorf("answers = %+v", msg.Answers)
	}
}

func TestDecodePointerLoop(t *testing.T) {
	// A name that points at itself must error, not hang. Pointers are
	// only followed backwards, so craft two pointers at 12 and 14 where
	// the second points at the first and the first at... itself is
	// forward-rejected; test the forward rejection too.
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, 9)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = append(buf, 0xC0, 12) // points at itself
	buf = binary.BigEndian.AppendUint16(buf, TypeTXT)
	buf = binary.BigEndian.AppendUint16(buf, ClassCH)
	if _, err := Decode(buf); err == nil {
		t.Error("self-pointing name should error")
	}
}

func TestParseTXTDataMultipleStrings(t *testing.T) {
	texts, err := parseTXTData([]byte{3, 'a', 'b', 'c', 2, 'd', 'e'})
	if err != nil || len(texts) != 2 || texts[0] != "abc" || texts[1] != "de" {
		t.Errorf("texts = %v, %v", texts, err)
	}
	if _, err := parseTXTData([]byte{5, 'a'}); err == nil {
		t.Error("truncated character-string should error")
	}
}

func TestServerClientOverUDP(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(name string) ([]string, bool) {
		if name == HostnameBind {
			return []string{"ccs1a.f.root-servers.org"}, true
		}
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient()
	c.Timeout = 2 * time.Second
	txt, err := c.Identify(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if txt != "ccs1a.f.root-servers.org" {
		t.Errorf("Identify = %q", txt)
	}

	// Unknown CHAOS names are refused.
	if _, err := c.QueryTXT(srv.Addr().String(), "version.server"); !errors.Is(err, ErrNoAnswer) {
		t.Errorf("unknown name err = %v", err)
	}
}

func TestServerRefusesWrongClass(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(string) ([]string, bool) {
		return []string{"x"}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hand-issue an IN-class query.
	pkt, _ := EncodeQuery(3, Question{Name: HostnameBind, Type: TypeTXT, Class: ClassIN})
	reply := srv.handle(pkt)
	msg, err := Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Rcode() != RcodeRef {
		t.Errorf("rcode = %d, want REFUSED", msg.Rcode())
	}
}

func TestServerDropsGarbage(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(string) ([]string, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if reply := srv.handle([]byte{1, 2, 3}); reply != nil {
		t.Error("garbage should be dropped, not answered")
	}
	// Responses must not be echoed (reflection protection).
	q := Question{Name: HostnameBind, Type: TypeTXT, Class: ClassCH}
	resp, _ := EncodeResponse(1, q, []string{"x"}, RcodeOK)
	if reply := srv.handle(resp); reply != nil {
		t.Error("responses should be dropped")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(string) ([]string, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestClientTimeout(t *testing.T) {
	// A socket that never answers.
	srv, err := Serve("127.0.0.1:0", func(string) ([]string, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	srv.Close() // nothing listening anymore

	c := NewClient()
	c.Timeout = 100 * time.Millisecond
	start := time.Now()
	if _, err := c.Identify(addr); err == nil {
		t.Error("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

// Property: query encoding round-trips arbitrary well-formed names.
func TestQuickNameRoundTrip(t *testing.T) {
	f := func(raw []byte, id uint16) bool {
		// Build a well-formed name from the raw bytes.
		var labels []string
		for i := 0; i < len(raw) && len(labels) < 6; i += 4 {
			end := i + 4
			if end > len(raw) {
				end = len(raw)
			}
			label := ""
			for _, b := range raw[i:end] {
				label += string(rune('a' + int(b)%26))
			}
			if label != "" {
				labels = append(labels, label)
			}
		}
		if len(labels) == 0 {
			labels = []string{"bind"}
		}
		name := strings.Join(labels, ".")
		pkt, err := EncodeQuery(id, Question{Name: name, Type: TypeTXT, Class: ClassCH})
		if err != nil {
			return false
		}
		msg, err := Decode(pkt)
		return err == nil && msg.ID == id && msg.Question[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: response encoding round-trips arbitrary short TXT strings.
func TestQuickTXTRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 255 {
			payload = payload[:255]
		}
		txt := string(payload)
		q := Question{Name: HostnameBind, Type: TypeTXT, Class: ClassCH}
		pkt, err := EncodeResponse(1, q, []string{txt}, RcodeOK)
		if err != nil {
			return false
		}
		msg, err := Decode(pkt)
		if err != nil {
			return false
		}
		got, err := FirstTXT(msg)
		if txt == "" {
			// Empty TXT still decodes as one empty string.
			return err == nil && got == ""
		}
		return err == nil && bytes.Equal([]byte(got), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
