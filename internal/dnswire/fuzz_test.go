package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary datagrams through the message decoder: it
// must never panic, and whatever decodes must re-encode consistently for
// the supported message shapes.
func FuzzDecode(f *testing.F) {
	q := Question{Name: HostnameBind, Type: TypeTXT, Class: ClassCH}
	if pkt, err := EncodeQuery(99, q); err == nil {
		f.Add(pkt)
	}
	if pkt, err := EncodeResponse(1, q, []string{"ccs01.l.root-servers.org"}, RcodeOK); err == nil {
		f.Add(pkt)
	}
	if pkt, err := EncodeResponse(1, q, nil, RcodeRef); err == nil {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	f.Add(bytes.Repeat([]byte{0xC0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Decoded questions must carry well-formed names: re-encoding a
		// single-question query must succeed or fail cleanly, never panic.
		if len(msg.Question) == 1 && msg.Question[0].Name != "" {
			_, _ = EncodeQuery(msg.ID, msg.Question[0])
		}
		_, _ = FirstTXT(msg)
	})
}

// FuzzServerHandle feeds arbitrary datagrams through the server's
// dispatch: it must never panic and never answer garbage (reflection
// protection).
func FuzzServerHandle(f *testing.F) {
	srv := &Server{responder: func(name string) ([]string, bool) {
		return []string{"s1.bog"}, name == HostnameBind
	}}
	q := Question{Name: HostnameBind, Type: TypeTXT, Class: ClassCH}
	if pkt, err := EncodeQuery(7, q); err == nil {
		f.Add(pkt)
	}
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		reply := srv.handle(data)
		if reply == nil {
			return
		}
		msg, err := Decode(reply)
		if err != nil {
			t.Fatalf("server emitted undecodable reply: %v", err)
		}
		if !msg.IsResponse() {
			t.Fatal("server emitted a non-response")
		}
	})
}
