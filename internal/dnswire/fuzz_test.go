package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary datagrams through the message decoder: it
// must never panic, and whatever decodes must re-encode consistently for
// the supported message shapes.
func FuzzDecode(f *testing.F) {
	q := Question{Name: HostnameBind, Type: TypeTXT, Class: ClassCH}
	if pkt, err := EncodeQuery(99, q); err == nil {
		f.Add(pkt)
	}
	if pkt, err := EncodeResponse(1, q, []string{"ccs01.l.root-servers.org"}, RcodeOK); err == nil {
		f.Add(pkt)
	}
	if pkt, err := EncodeResponse(1, q, nil, RcodeRef); err == nil {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	f.Add(bytes.Repeat([]byte{0xC0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Decoded questions must carry well-formed names: re-encoding a
		// single-question query must succeed or fail cleanly, never panic.
		if len(msg.Question) == 1 && msg.Question[0].Name != "" {
			_, _ = EncodeQuery(msg.ID, msg.Question[0])
		}
		_, _ = FirstTXT(msg)
	})
}

// FuzzECS feeds arbitrary option bytes through the EDNS0 Client Subnet
// parser: it must never panic, and whatever parses must satisfy the
// minimal-encoding invariants — AddrLen matches the prefix, bits past
// the prefix are zero, and the result round-trips through the encoder.
func FuzzECS(f *testing.F) {
	f.Add([]byte{0, 1, 32, 0, 10, 0, 0, 1})
	f.Add([]byte{0, 1, 24, 0, 192, 0, 2})
	f.Add([]byte{0, 2, 48, 0, 0x20, 0x01, 0x0d, 0xb8, 0, 0})
	f.Add([]byte{0, 1, 0, 0})
	f.Add([]byte{0, 9, 8, 0, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var e ECS
		if err := ParseECS(data, &e); err != nil {
			return
		}
		if e.AddrLen != (int(e.SourcePrefix)+7)/8 {
			t.Fatalf("AddrLen %d disagrees with prefix /%d", e.AddrLen, e.SourcePrefix)
		}
		max := 32
		if e.Family == ECSFamilyIPv6 {
			max = 128
		}
		if int(e.SourcePrefix) > max {
			t.Fatalf("prefix /%d exceeds family %d maximum", e.SourcePrefix, e.Family)
		}
		if bits := e.SourcePrefix % 8; bits != 0 && e.AddrLen > 0 {
			if e.Addr[e.AddrLen-1]&(0xFF>>bits) != 0 {
				t.Fatalf("bits past /%d not masked: %x", e.SourcePrefix, e.Addr[:e.AddrLen])
			}
		}
		for _, b := range e.Addr[e.AddrLen:] {
			if b != 0 {
				t.Fatalf("address bytes past AddrLen not zeroed: %x", e.Addr)
			}
		}
		// Round trip: re-encoding inside an OPT and re-parsing the query
		// must reproduce the same masked subnet. The encoder echoes
		// scope = source, so normalize that field before comparing.
		pkt, err := EncodeQuery(1, Question{Name: "x", Type: TypeA, Class: ClassIN})
		if err != nil {
			t.Fatal(err)
		}
		var q Query
		if err := ParseQuery(AppendQueryOPT(pkt, 1232, &e), &q); err != nil {
			t.Fatalf("re-encoded ECS rejected: %v", err)
		}
		want := e
		want.ScopePrefix = e.SourcePrefix
		if !q.HasECS || q.ECS != want {
			t.Fatalf("round trip changed ECS: %+v -> %+v", want, q.ECS)
		}
	})
}

// FuzzServerHandle feeds arbitrary datagrams through the server's
// dispatch: it must never panic and never answer garbage (reflection
// protection).
func FuzzServerHandle(f *testing.F) {
	srv := &Server{responder: func(name string) ([]string, bool) {
		return []string{"s1.bog"}, name == HostnameBind
	}}
	q := Question{Name: HostnameBind, Type: TypeTXT, Class: ClassCH}
	if pkt, err := EncodeQuery(7, q); err == nil {
		f.Add(pkt)
	}
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		reply := srv.handle(data)
		if reply == nil {
			return
		}
		msg, err := Decode(reply)
		if err != nil {
			t.Fatalf("server emitted undecodable reply: %v", err)
		}
		if !msg.IsResponse() {
			t.Fatal("server emitted a non-response")
		}
	})
}
