package dnswire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

func encode(t *testing.T, id uint16, name string, qtype, class uint16) []byte {
	t.Helper()
	pkt, err := EncodeQuery(id, Question{Name: name, Type: qtype, Class: class})
	if err != nil {
		t.Fatalf("EncodeQuery: %v", err)
	}
	return pkt
}

func TestParseQueryBasics(t *testing.T) {
	pkt := encode(t, 0xBEEF, "Hostname.BIND", TypeTXT, ClassCH)
	var q Query
	if err := ParseQuery(pkt, &q); err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if q.ID != 0xBEEF || q.Type != TypeTXT || q.Class != ClassCH {
		t.Errorf("parsed %+v", q)
	}
	if got := string(q.Name()); got != "hostname.bind" {
		t.Errorf("Name() = %q, want lowercased %q", got, "hostname.bind")
	}
	if q.HasOPT || q.HasECS {
		t.Error("phantom OPT/ECS on a plain query")
	}
	if q.ResponseLimit() != 512 {
		t.Errorf("no-OPT limit = %d, want 512", q.ResponseLimit())
	}
	if q.QEnd != len(pkt) {
		t.Errorf("QEnd = %d, want %d", q.QEnd, len(pkt))
	}
}

func TestParseQueryRejects(t *testing.T) {
	resp, _ := EncodeResponse(1, Question{Name: "x", Type: TypeTXT, Class: ClassCH}, []string{"t"}, RcodeOK)
	var q Query
	if err := ParseQuery(resp, &q); !errors.Is(err, ErrNotQuery) {
		t.Errorf("response parsed as query: %v", err)
	}
	pkt := encode(t, 2, "x", TypeTXT, ClassCH)
	binary.BigEndian.PutUint16(pkt[4:], 2) // QDCOUNT=2
	if err := ParseQuery(pkt, &q); !errors.Is(err, ErrQuestionCount) {
		t.Errorf("two questions accepted: %v", err)
	}
	// Compression pointer inside the question name: untrusted.
	ptr := []byte{0, 3, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 16, 0, 3}
	if err := ParseQuery(ptr, &q); err == nil {
		t.Error("compressed question name accepted")
	}
}

func TestParseQueryOPT(t *testing.T) {
	pkt := AppendQueryOPT(encode(t, 3, "a.b", TypeA, ClassIN), 1232, nil)
	var q Query
	if err := ParseQuery(pkt, &q); err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if !q.HasOPT || q.HasECS {
		t.Fatalf("OPT parsed as HasOPT=%v HasECS=%v", q.HasOPT, q.HasECS)
	}
	if q.UDPSize != 1232 || q.ResponseLimit() != 1232 {
		t.Errorf("UDPSize=%d limit=%d, want 1232", q.UDPSize, q.ResponseLimit())
	}

	// Tiny and huge advertised sizes clamp into [512, 4096].
	lo := AppendQueryOPT(encode(t, 4, "a.b", TypeA, ClassIN), 80, nil)
	hi := AppendQueryOPT(encode(t, 5, "a.b", TypeA, ClassIN), 65000, nil)
	if err := ParseQuery(lo, &q); err != nil || q.ResponseLimit() != 512 {
		t.Errorf("small OPT: limit=%d err=%v, want 512", q.ResponseLimit(), err)
	}
	if err := ParseQuery(hi, &q); err != nil || q.ResponseLimit() != int(MaxUDPSize) {
		t.Errorf("huge OPT: limit=%d err=%v, want %d", q.ResponseLimit(), err, MaxUDPSize)
	}

	// A second OPT is FORMERR-worthy.
	dup := AppendQueryOPT(pkt, 1232, nil)
	if err := ParseQuery(dup, &q); !errors.Is(err, ErrBadOPT) {
		t.Errorf("duplicate OPT: %v, want ErrBadOPT", err)
	}
}

func TestParseQueryECS(t *testing.T) {
	ecs := &ECS{Family: ECSFamilyIPv4, SourcePrefix: 24, AddrLen: 3}
	ecs.Addr[0], ecs.Addr[1], ecs.Addr[2] = 192, 0, 2
	pkt := AppendQueryOPT(encode(t, 6, "q", TypeTXT, ClassCH), 4096, ecs)
	var q Query
	if err := ParseQuery(pkt, &q); err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if !q.HasECS || q.ECS.Family != ECSFamilyIPv4 || q.ECS.SourcePrefix != 24 {
		t.Fatalf("ECS round trip: %+v", q.ECS)
	}
	ip, ok := q.ECS.IPv4()
	if !ok || ip != [4]byte{192, 0, 2, 0} {
		t.Errorf("IPv4() = %v, %v", ip, ok)
	}
}

func TestParseECSValidation(t *testing.T) {
	var e ECS
	cases := []struct {
		name string
		data []byte
		ok   bool
	}{
		{"v4 /32", []byte{0, 1, 32, 0, 10, 0, 0, 1}, true},
		{"v4 /24 minimal", []byte{0, 1, 24, 0, 10, 0, 0}, true},
		{"v4 /24 overlong", []byte{0, 1, 24, 0, 10, 0, 0, 1}, false},
		{"v4 /24 short", []byte{0, 1, 24, 0, 10, 0}, false},
		{"v4 /33", []byte{0, 1, 33, 0, 10, 0, 0, 1, 0}, false},
		{"v6 /48", []byte{0, 2, 48, 0, 0x20, 0x01, 0x0d, 0xb8, 0, 0}, true},
		{"v6 /129", append([]byte{0, 2, 129, 0}, make([]byte, 17)...), false},
		{"family 9", []byte{0, 9, 8, 0, 1}, false},
		{"empty", nil, false},
		{"header only", []byte{0, 1, 0}, false},
		{"zero prefix", []byte{0, 1, 0, 0}, true},
	}
	for _, tc := range cases {
		err := ParseECS(tc.data, &e)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Trailing bits beyond the prefix are masked, not rejected
	// (RFC 7871 §6 says they SHOULD be zero; tolerating them beats
	// refusing real-world resolvers that don't mask).
	if err := ParseECS([]byte{0, 1, 20, 0, 10, 1, 0xFF}, &e); err != nil {
		t.Fatalf("unmasked trailing bits rejected: %v", err)
	}
	if e.Addr[2] != 0xF0 {
		t.Errorf("trailing bits not masked: %x", e.Addr[2])
	}
}

func TestResponseBuilders(t *testing.T) {
	pkt := encode(t, 7, "l.zone", TypeA, ClassIN)
	var q Query
	if err := ParseQuery(pkt, &q); err != nil {
		t.Fatal(err)
	}
	msg := AppendResponseStart(nil, q.ID, FlagQR|FlagAA, pkt[12:q.QEnd])
	msg = AppendARR(msg, 30, [4]byte{198, 18, 11, 1})
	msg = AppendAAAARR(msg, 30, [16]byte{0x20, 0x01, 0x0d, 0xb8})
	msg = AppendTXTRR(msg, ClassIN, 30, "ak.ve-ccs.l.root")
	SetCounts(msg, 3, 0, 0)
	SetRcode(msg, RcodeOK)
	dec, err := Decode(msg)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.ID != 7 || !dec.IsResponse() || dec.Rcode() != RcodeOK {
		t.Errorf("header: %+v", dec)
	}
	if got, _ := FirstTXT(dec); got != "ak.ve-ccs.l.root" {
		t.Errorf("TXT answer = %q", got)
	}
	// The builders compress every owner to the question name; the raw
	// A RDATA sits right after the first RR head.
	if !bytes.Equal(msg[q.QEnd+12:q.QEnd+16], []byte{198, 18, 11, 1}) {
		t.Errorf("A RDATA = %v", msg[q.QEnd+12:q.QEnd+16])
	}
}

func TestTruncate(t *testing.T) {
	pkt := encode(t, 8, "big.example", TypeTXT, ClassCH)
	var q Query
	if err := ParseQuery(pkt, &q); err != nil {
		t.Fatal(err)
	}
	msg := AppendResponseStart(nil, q.ID, FlagQR|FlagAA, pkt[12:q.QEnd])
	for i := 0; i < 40; i++ {
		msg = AppendTXTRR(msg, ClassCH, 0, "padding-padding-padding-padding")
	}
	SetCounts(msg, 40, 0, 0)
	if len(msg) <= 512 {
		t.Fatalf("test setup: message only %d bytes", len(msg))
	}
	msg = Truncate(msg, q.QEnd)
	if len(msg) != q.QEnd {
		t.Errorf("truncated length %d, want %d", len(msg), q.QEnd)
	}
	dec, err := Decode(msg)
	if err != nil {
		t.Fatalf("truncated message must still decode: %v", err)
	}
	if dec.Flags&FlagTC == 0 {
		t.Error("TC not set")
	}
	if len(dec.Answers) != 0 {
		t.Error("answers survived truncation")
	}
	if len(dec.Question) != 1 || dec.Question[0].Name != "big.example" {
		t.Errorf("question lost: %+v", dec.Question)
	}
}

func TestServerConcurrentClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(name string) ([]string, bool) {
		return []string{"x"}, true
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = srv.Close() }(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("closer %d got %v, closer 0 got %v — Close is not sticky", i, err, errs[0])
		}
	}
}
