package dnswire

import (
	"encoding/binary"
	"errors"
)

// EDNS0 (RFC 6891) and Client Subnet (RFC 7871) support. The data
// plane uses ECS as its GeoIP stand-in: the client subnet carried in
// the query is the "where is this resolver" signal that selects a
// catchment, exactly as OpenGSLB-style servers map ECS onto a region.

const (
	// OptionECS is the EDNS0 option code for Client Subnet.
	OptionECS uint16 = 8
	// DefaultUDPSize is the payload size the server advertises in its
	// own OPT records (the common post-flag-day value).
	DefaultUDPSize uint16 = 1232
	// MaxUDPSize caps what the server honors from a client's OPT:
	// beyond this the response is bounded by the write buffer anyway.
	MaxUDPSize uint16 = 4096
	// MinUDPSize is the RFC 1035 fallback for clients without EDNS0
	// and the floor applied to nonsense OPT advertisements.
	MinUDPSize uint16 = 512

	// ECS address families (RFC 7871 §6).
	ECSFamilyIPv4 uint16 = 1
	ECSFamilyIPv6 uint16 = 2
)

// EDNS0/ECS errors.
var (
	ErrBadOPT = errors.New("dnswire: malformed OPT record")
	ErrBadECS = errors.New("dnswire: malformed ECS option")
)

// ECS is a parsed EDNS0 Client Subnet option. Addr holds the masked
// address bytes left-aligned; AddrLen is how many of them the option
// carried (ceil(SourcePrefix/8)).
type ECS struct {
	Family       uint16
	SourcePrefix uint8
	ScopePrefix  uint8
	Addr         [16]byte
	AddrLen      int
}

// IPv4 returns the option's address as 4 bytes when it is a full or
// partial IPv4 prefix.
func (e *ECS) IPv4() ([4]byte, bool) {
	var out [4]byte
	if e.Family != ECSFamilyIPv4 {
		return out, false
	}
	copy(out[:], e.Addr[:4])
	return out, true
}

// ParseECS decodes ECS option data (the bytes after the option code
// and length) into e without allocating. It enforces RFC 7871's
// minimal-encoding rule: the address field carries exactly
// ceil(SourcePrefix/8) bytes, and bits beyond the prefix are zero
// after parsing (the server masks rather than rejects).
func ParseECS(data []byte, e *ECS) error {
	if len(data) < 4 {
		return ErrBadECS
	}
	e.Family = binary.BigEndian.Uint16(data[0:])
	e.SourcePrefix = data[2]
	e.ScopePrefix = data[3]
	var maxBits uint8
	switch e.Family {
	case ECSFamilyIPv4:
		maxBits = 32
	case ECSFamilyIPv6:
		maxBits = 128
	default:
		return ErrBadECS
	}
	if e.SourcePrefix > maxBits {
		return ErrBadECS
	}
	n := (int(e.SourcePrefix) + 7) / 8
	if len(data)-4 != n {
		return ErrBadECS
	}
	e.Addr = [16]byte{}
	copy(e.Addr[:n], data[4:])
	if rem := e.SourcePrefix % 8; rem != 0 && n > 0 {
		e.Addr[n-1] &= byte(0xFF << (8 - rem))
	}
	e.AddrLen = n
	return nil
}

// AppendOPTRR appends an OPT pseudo-RR advertising udpSize; when ecs
// is non-nil the record echoes the client subnet with the scope set to
// the source prefix (the answer is specific to the whole subnet the
// client named). Callers must bump ARCOUNT themselves (SetCounts).
func AppendOPTRR(dst []byte, udpSize uint16, ecs *ECS) []byte {
	dst = append(dst, 0) // root name
	dst = binary.BigEndian.AppendUint16(dst, TypeOPT)
	dst = binary.BigEndian.AppendUint16(dst, udpSize)
	dst = append(dst, 0, 0, 0, 0) // extended rcode + flags
	if ecs == nil {
		return binary.BigEndian.AppendUint16(dst, 0)
	}
	optLen := 4 + ecs.AddrLen
	dst = binary.BigEndian.AppendUint16(dst, uint16(4+optLen))
	dst = binary.BigEndian.AppendUint16(dst, OptionECS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(optLen))
	dst = binary.BigEndian.AppendUint16(dst, ecs.Family)
	dst = append(dst, ecs.SourcePrefix, ecs.SourcePrefix)
	return append(dst, ecs.Addr[:ecs.AddrLen]...)
}

// AppendQueryOPT appends an OPT record to an encoded query and bumps
// its ARCOUNT — the client-side helper tests and benchmarks use to
// build EDNS0 queries.
func AppendQueryOPT(pkt []byte, udpSize uint16, ecs *ECS) []byte {
	pkt = AppendOPTRR(pkt, udpSize, ecs)
	ar := binary.BigEndian.Uint16(pkt[10:])
	binary.BigEndian.PutUint16(pkt[10:], ar+1)
	return pkt
}
