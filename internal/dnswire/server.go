package dnswire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Responder computes the TXT identification strings for a CHAOS query
// name ("hostname.bind", "id.server", ...). Returning ok=false yields a
// REFUSED response, as real servers do for unknown CHAOS names.
type Responder func(name string) (texts []string, ok bool)

// pktBufs pools per-datagram scratch: the first half of each buffer is
// the read area, the rest the reply build area, so one checkout covers
// a whole request/response cycle.
var pktBufs = sync.Pool{
	New: func() any {
		b := make([]byte, serverBufSize)
		return &b
	},
}

// serverBufSize holds a full-size read (readArea) plus a reply built
// behind it.
const (
	serverBufSize = 2 * readArea
	readArea      = 2048
)

// Server is a minimal UDP DNS server answering CHAOS TXT identification
// queries — an in-process stand-in for an anycast root instance. It
// refuses non-CHAOS classes and non-TXT types.
type Server struct {
	conn      net.PacketConn
	responder Responder

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with the given
// responder. It returns once the socket is listening; handling proceeds
// on a background goroutine until Close.
func Serve(addr string, responder Responder) (*Server, error) {
	if responder == nil {
		return nil, errors.New("dnswire: nil responder")
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnswire: listen: %w", err)
	}
	s := &Server{conn: conn, responder: responder, done: make(chan struct{})}
	go s.loop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Close stops the server and releases its socket. It is safe to call
// from concurrent goroutines: the socket closes exactly once, and
// every caller returns only after the serve loop has exited.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.conn.Close()
	})
	<-s.done
	return s.closeErr
}

func (s *Server) loop() {
	defer close(s.done)
	bp := pktBufs.Get().(*[]byte)
	defer pktBufs.Put(bp)
	buf := *bp
	for {
		n, peer, err := s.conn.ReadFrom(buf[:readArea])
		if err != nil {
			return // closed
		}
		// The reply builds into the back half of the pooled buffer, so a
		// request/response cycle costs no per-packet slices.
		reply := s.appendReply(buf[readArea:readArea], buf[:n])
		if reply != nil {
			// Best-effort send; a lost reply is a timeout at the client,
			// exactly as on the real network.
			_, _ = s.conn.WriteTo(reply, peer)
		}
	}
}

// handle builds the reply for one datagram, or nil to drop it.
func (s *Server) handle(pkt []byte) []byte {
	return s.appendReply(nil, pkt)
}

// appendReply builds the reply for one datagram into dst, or returns
// nil to drop it.
func (s *Server) appendReply(dst, pkt []byte) []byte {
	var q Query
	if err := ParseQuery(pkt, &q); err != nil {
		return nil // not a well-formed query: drop, as real servers do
	}
	raw := pkt[12:q.QEnd]
	if q.Class != ClassCH || q.Type != TypeTXT {
		return AppendResponseStart(dst, q.ID, FlagQR|FlagAA|RcodeRef, raw)
	}
	texts, ok := s.responder(string(q.Name()))
	if !ok {
		return AppendResponseStart(dst, q.ID, FlagQR|FlagAA|RcodeRef, raw)
	}
	msg := AppendResponseStart(dst, q.ID, FlagQR|FlagAA, raw)
	an := uint16(0)
	for _, txt := range texts {
		if len(txt) > 255 {
			continue
		}
		msg = AppendTXTRR(msg, ClassCH, 0, txt)
		an++
	}
	SetCounts(msg, an, 0, 0)
	return msg
}

// Client issues CHAOS TXT identification queries over UDP.
type Client struct {
	// Timeout bounds each query round trip; zero means one second.
	Timeout time.Duration
	// nextID generates query IDs; overridable in tests.
	nextID func() uint16
}

// NewClient returns a Client with the default timeout.
func NewClient() *Client {
	var counter uint16
	var mu sync.Mutex
	return &Client{
		Timeout: time.Second,
		nextID: func() uint16 {
			mu.Lock()
			defer mu.Unlock()
			counter++
			return counter
		},
	}
}

// QueryTXT sends one CH TXT query for name to addr and returns the first
// TXT string of the answer.
func (c *Client) QueryTXT(addr, name string) (string, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return "", fmt.Errorf("dnswire: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return "", fmt.Errorf("dnswire: deadline: %w", err)
	}
	id := c.nextID()
	q := Question{Name: name, Type: TypeTXT, Class: ClassCH}
	pkt, err := EncodeQuery(id, q)
	if err != nil {
		return "", err
	}
	if _, err := conn.Write(pkt); err != nil {
		return "", fmt.Errorf("dnswire: send: %w", err)
	}
	buf := make([]byte, 1500)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return "", fmt.Errorf("dnswire: receive: %w", err)
		}
		msg, err := Decode(buf[:n])
		if err != nil {
			continue // garbled datagram: keep waiting for the real answer
		}
		if msg.ID != id {
			continue // stale or spoofed: ignore
		}
		return FirstTXT(msg)
	}
}

// Identify queries hostname.bind — the identification call the paper's
// built-in measurements issue every 30 minutes.
func (c *Client) Identify(addr string) (string, error) {
	return c.QueryTXT(addr, HostnameBind)
}
