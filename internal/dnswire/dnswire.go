// Package dnswire implements the small corner of the DNS wire format the
// paper's CHAOS measurements exercise: TXT queries in class CH for names
// like "hostname.bind", and the TXT responses root-server instances
// answer with. It provides message encoding and decoding (RFC 1035
// framing, including compression-pointer handling on the read path) and
// a UDP server/client pair so the whole identification path — query on
// the wire, operator-specific TXT answer, regular-expression extraction
// — can be driven end to end over real sockets.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// DNS constants used by CHAOS identification queries and the
// authoritative data plane.
const (
	TypeA    uint16 = 1
	TypeTXT  uint16 = 16
	TypeAAAA uint16 = 28
	TypeOPT  uint16 = 41 // EDNS0 pseudo-RR (RFC 6891)
	ClassCH  uint16 = 3
	ClassIN  uint16 = 1
	FlagQR   uint16 = 1 << 15 // response
	FlagAA   uint16 = 1 << 10 // authoritative
	FlagTC   uint16 = 1 << 9  // truncated
	FlagRD   uint16 = 1 << 8  // recursion desired

	RcodeOK       uint16 = 0
	RcodeFormErr  uint16 = 1
	RcodeServFail uint16 = 2
	RcodeNX       uint16 = 3 // NXDOMAIN
	RcodeNotImp   uint16 = 4
	RcodeRef      uint16 = 5 // REFUSED
)

// HostnameBind is the conventional CHAOS identification name.
const HostnameBind = "hostname.bind"

// Errors the codec reports.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrBadName          = errors.New("dnswire: malformed name")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrNotResponse      = errors.New("dnswire: message is not a response")
	ErrNoAnswer         = errors.New("dnswire: no TXT answer")
)

// Question is one query tuple.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// TXTRecord is one TXT answer.
type TXTRecord struct {
	Name  string
	Class uint16
	TTL   uint32
	Texts []string
}

// Message is a decoded DNS message restricted to what CHAOS probing
// needs: the header fields, one question, and TXT answers.
type Message struct {
	ID       uint16
	Flags    uint16
	Question []Question
	Answers  []TXTRecord
}

// Rcode extracts the response code from the flags.
func (m *Message) Rcode() uint16 { return m.Flags & 0xF }

// IsResponse reports whether the QR bit is set.
func (m *Message) IsResponse() bool { return m.Flags&FlagQR != 0 }

// appendName encodes a domain name as length-prefixed labels.
func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
	}
	return append(buf, 0), nil
}

// EncodeQuery builds a single-question query message.
func EncodeQuery(id uint16, q Question) ([]byte, error) {
	buf := make([]byte, 12, 12+len(q.Name)+6)
	binary.BigEndian.PutUint16(buf[0:], id)
	binary.BigEndian.PutUint16(buf[2:], 0) // flags: standard query
	binary.BigEndian.PutUint16(buf[4:], 1) // QDCOUNT
	var err error
	buf, err = appendName(buf, q.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, q.Type)
	buf = binary.BigEndian.AppendUint16(buf, q.Class)
	return buf, nil
}

// EncodeResponse builds a response to query q carrying the given TXT
// strings (one character-string each) with the supplied rcode. A zero
// rcode answers authoritatively; nonzero rcodes carry no answer records.
func EncodeResponse(id uint16, q Question, texts []string, rcode uint16) ([]byte, error) {
	buf := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(buf[0:], id)
	flags := FlagQR | FlagAA | rcode
	binary.BigEndian.PutUint16(buf[2:], flags)
	binary.BigEndian.PutUint16(buf[4:], 1) // QDCOUNT
	ancount := uint16(0)
	if rcode == RcodeOK && len(texts) > 0 {
		ancount = uint16(len(texts))
	}
	binary.BigEndian.PutUint16(buf[6:], ancount)

	var err error
	buf, err = appendName(buf, q.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, q.Type)
	buf = binary.BigEndian.AppendUint16(buf, q.Class)

	if ancount == 0 {
		return buf, nil
	}
	for _, txt := range texts {
		if len(txt) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
		}
		buf, err = appendName(buf, q.Name)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, TypeTXT)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
		buf = binary.BigEndian.AppendUint32(buf, 0) // TTL 0: identification data
		rdata := make([]byte, 0, len(txt)+1)
		rdata = append(rdata, byte(len(txt)))
		rdata = append(rdata, txt...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rdata)))
		buf = append(buf, rdata...)
	}
	return buf, nil
}

// readName decodes a possibly-compressed name starting at off, returning
// the name and the offset of the byte after it.
func readName(msg []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	after := off
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := int(msg[off])
		switch {
		case b == 0:
			if !jumped {
				after = off + 1
			}
			return strings.Join(labels, "."), after, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := (b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				after = off + 2
				jumped = true
			}
			hops++
			if hops > 32 {
				return "", 0, ErrPointerLoop
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrBadName)
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrBadName)
		default:
			if off+1+b > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			labels = append(labels, string(msg[off+1:off+1+b]))
			off += 1 + b
			if len(labels) > 128 {
				return "", 0, fmt.Errorf("%w: too many labels", ErrBadName)
			}
		}
	}
}

// Decode parses a DNS message, keeping the question section and any TXT
// answers. Non-TXT answers are skipped.
func Decode(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncatedMessage
	}
	out := &Message{
		ID:    binary.BigEndian.Uint16(msg[0:]),
		Flags: binary.BigEndian.Uint16(msg[2:]),
	}
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		out.Question = append(out.Question, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(msg[next:]),
			Class: binary.BigEndian.Uint16(msg[next+2:]),
		})
		off = next + 4
	}
	for i := 0; i < an; i++ {
		name, next, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		rrtype := binary.BigEndian.Uint16(msg[next:])
		class := binary.BigEndian.Uint16(msg[next+2:])
		ttl := binary.BigEndian.Uint32(msg[next+4:])
		rdlen := int(binary.BigEndian.Uint16(msg[next+8:]))
		rdataStart := next + 10
		if rdataStart+rdlen > len(msg) {
			return nil, ErrTruncatedMessage
		}
		if rrtype == TypeTXT {
			texts, err := parseTXTData(msg[rdataStart : rdataStart+rdlen])
			if err != nil {
				return nil, err
			}
			out.Answers = append(out.Answers, TXTRecord{
				Name: name, Class: class, TTL: ttl, Texts: texts,
			})
		}
		off = rdataStart + rdlen
	}
	return out, nil
}

// parseTXTData splits TXT RDATA into its character-strings.
func parseTXTData(rdata []byte) ([]string, error) {
	var out []string
	for i := 0; i < len(rdata); {
		n := int(rdata[i])
		if i+1+n > len(rdata) {
			return nil, fmt.Errorf("dnswire: truncated TXT character-string")
		}
		out = append(out, string(rdata[i+1:i+1+n]))
		i += 1 + n
	}
	return out, nil
}

// FirstTXT extracts the first TXT string from a decoded response,
// validating that it actually answers the question.
func FirstTXT(m *Message) (string, error) {
	if !m.IsResponse() {
		return "", ErrNotResponse
	}
	if m.Rcode() != RcodeOK || len(m.Answers) == 0 || len(m.Answers[0].Texts) == 0 {
		return "", fmt.Errorf("%w (rcode %d)", ErrNoAnswer, m.Rcode())
	}
	return m.Answers[0].Texts[0], nil
}
