package dnswire

import (
	"encoding/binary"
	"errors"
)

// This file is the data plane's half of the codec: a query parser and
// response builders that touch no heap. ParseQuery decodes into a
// caller-owned Query (the name lands in a fixed buffer), and the
// Append* builders write into a caller-provided slice, naming the
// owner record with a compression pointer at the question. Together
// they let a server answer a query with zero allocations once its
// buffers are warm.

// MaxNameLen bounds a presentation-format name (RFC 1035: 255 octets
// of wire format is at most 253 presentation characters; 255 is safe).
const MaxNameLen = 255

// compressionPtr points at the question name, which every response
// built by AppendResponseStart places at offset 12.
const compressionPtr uint16 = 0xC00C

// Query parse errors beyond the shared codec ones.
var (
	ErrNotQuery      = errors.New("dnswire: message is not a query")
	ErrQuestionCount = errors.New("dnswire: question count is not 1")
)

// Query is one parsed single-question query. The name is stored
// lowercased in a fixed buffer so parsing allocates nothing.
type Query struct {
	ID    uint16
	Flags uint16
	Type  uint16
	Class uint16
	// QEnd is the offset just past the question section; pkt[12:QEnd]
	// is the raw question for echoing into a response.
	QEnd int

	HasOPT  bool
	UDPSize uint16
	HasECS  bool
	ECS     ECS

	nameLen int
	name    [MaxNameLen]byte
}

// Name returns the lowercased question name without a trailing dot.
// The slice aliases the Query's internal buffer.
func (q *Query) Name() []byte { return q.name[:q.nameLen] }

// Opcode extracts the query's opcode from the flags.
func (q *Query) Opcode() uint16 { return (q.Flags >> 11) & 0xF }

// ResponseLimit is the size the client can accept: 512 without EDNS0,
// the advertised payload size clamped to [MinUDPSize, MaxUDPSize]
// with it.
func (q *Query) ResponseLimit() int {
	if !q.HasOPT {
		return int(MinUDPSize)
	}
	size := q.UDPSize
	if size < MinUDPSize {
		size = MinUDPSize
	}
	if size > MaxUDPSize {
		size = MaxUDPSize
	}
	return int(size)
}

// readNameInto decodes the uncompressed name at off into q's buffer,
// lowercasing as it goes, and returns the offset after it. Queries on
// the wire never need compression for their single question, so
// pointers here are rejected — which also keeps the raw question bytes
// self-contained for echoing.
func (q *Query) readNameInto(pkt []byte, off int) (int, error) {
	q.nameLen = 0
	for {
		if off >= len(pkt) {
			return 0, ErrTruncatedMessage
		}
		b := int(pkt[off])
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xC0 != 0:
			return 0, ErrBadName
		default:
			if off+1+b > len(pkt) {
				return 0, ErrTruncatedMessage
			}
			need := b
			if q.nameLen > 0 {
				need++
			}
			if q.nameLen+need > len(q.name) {
				return 0, ErrBadName
			}
			if q.nameLen > 0 {
				q.name[q.nameLen] = '.'
				q.nameLen++
			}
			for _, c := range pkt[off+1 : off+1+b] {
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				q.name[q.nameLen] = c
				q.nameLen++
			}
			off += 1 + b
		}
	}
}

// SkipName advances past the (possibly compressed) name at off and
// returns the offset after it.
func SkipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrTruncatedMessage
		}
		b := int(msg[off])
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, ErrTruncatedMessage
			}
			return off + 2, nil
		case b&0xC0 != 0:
			return 0, ErrBadName
		default:
			off += 1 + b
		}
	}
}

// ParseQuery decodes a query datagram into q without allocating. It
// insists on exactly one question and scans the additional section for
// one OPT record (EDNS0), extracting a Client Subnet option when
// present. The question fields (Name, Type, Class, QEnd) are valid
// whenever the returned error is nil, ErrBadOPT, or ErrBadECS — so a
// server can still build a FORMERR response for a query whose OPT is
// garbage.
func ParseQuery(pkt []byte, q *Query) error {
	if len(pkt) < 12 {
		return ErrTruncatedMessage
	}
	q.ID = binary.BigEndian.Uint16(pkt[0:])
	q.Flags = binary.BigEndian.Uint16(pkt[2:])
	q.HasOPT = false
	q.HasECS = false
	q.UDPSize = 0
	q.QEnd = 0
	if q.Flags&FlagQR != 0 {
		return ErrNotQuery
	}
	qd := int(binary.BigEndian.Uint16(pkt[4:]))
	an := int(binary.BigEndian.Uint16(pkt[6:]))
	ns := int(binary.BigEndian.Uint16(pkt[8:]))
	ar := int(binary.BigEndian.Uint16(pkt[10:]))
	if qd != 1 {
		return ErrQuestionCount
	}
	off, err := q.readNameInto(pkt, 12)
	if err != nil {
		return err
	}
	if off+4 > len(pkt) {
		return ErrTruncatedMessage
	}
	q.Type = binary.BigEndian.Uint16(pkt[off:])
	q.Class = binary.BigEndian.Uint16(pkt[off+2:])
	q.QEnd = off + 4

	// Walk the remaining records looking for the OPT pseudo-RR, which
	// RFC 6891 restricts to the additional section.
	off = q.QEnd
	for i := 0; i < an+ns+ar; i++ {
		off, err = SkipName(pkt, off)
		if err != nil {
			return err
		}
		if off+10 > len(pkt) {
			return ErrTruncatedMessage
		}
		rrtype := binary.BigEndian.Uint16(pkt[off:])
		rdlen := int(binary.BigEndian.Uint16(pkt[off+8:]))
		rdata := off + 10
		if rdata+rdlen > len(pkt) {
			return ErrTruncatedMessage
		}
		if rrtype == TypeOPT && i >= an+ns {
			if q.HasOPT {
				return ErrBadOPT // at most one OPT per message
			}
			q.HasOPT = true
			q.UDPSize = binary.BigEndian.Uint16(pkt[off+2:]) // class field
			if err := q.parseOPTData(pkt[rdata : rdata+rdlen]); err != nil {
				return err
			}
		}
		off = rdata + rdlen
	}
	return nil
}

// parseOPTData walks the OPT record's option TLVs.
func (q *Query) parseOPTData(data []byte) error {
	for i := 0; i < len(data); {
		if i+4 > len(data) {
			return ErrBadOPT
		}
		code := binary.BigEndian.Uint16(data[i:])
		olen := int(binary.BigEndian.Uint16(data[i+2:]))
		if i+4+olen > len(data) {
			return ErrBadOPT
		}
		if code == OptionECS {
			if err := ParseECS(data[i+4:i+4+olen], &q.ECS); err != nil {
				return err
			}
			q.HasECS = true
		}
		i += 4 + olen
	}
	return nil
}

// AppendResponseStart begins a response in dst: a header with the
// given id and flags, counts zeroed, followed by the echoed raw
// question (pkt[12:QEnd] of the query). Record counts are patched in
// afterwards with SetCounts; the rcode with SetRcode.
func AppendResponseStart(dst []byte, id, flags uint16, rawQuestion []byte) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], id)
	binary.BigEndian.PutUint16(hdr[2:], flags)
	binary.BigEndian.PutUint16(hdr[4:], 1) // QDCOUNT
	dst = append(dst, hdr[:]...)
	return append(dst, rawQuestion...)
}

// SetCounts patches the answer/authority/additional counts of a
// message started with AppendResponseStart.
func SetCounts(msg []byte, an, ns, ar uint16) {
	binary.BigEndian.PutUint16(msg[6:], an)
	binary.BigEndian.PutUint16(msg[8:], ns)
	binary.BigEndian.PutUint16(msg[10:], ar)
}

// SetRcode patches the response code into the message's flags.
func SetRcode(msg []byte, rcode uint16) {
	flags := binary.BigEndian.Uint16(msg[2:])
	binary.BigEndian.PutUint16(msg[2:], flags&^uint16(0xF)|rcode&0xF)
}

// appendRRHead writes the shared RR prefix: a compression pointer to
// the question name, type, class, TTL, and RDLENGTH.
func appendRRHead(dst []byte, rrtype, class uint16, ttl uint32, rdlen uint16) []byte {
	dst = binary.BigEndian.AppendUint16(dst, compressionPtr)
	dst = binary.BigEndian.AppendUint16(dst, rrtype)
	dst = binary.BigEndian.AppendUint16(dst, class)
	dst = binary.BigEndian.AppendUint32(dst, ttl)
	return binary.BigEndian.AppendUint16(dst, rdlen)
}

// AppendTXTRR appends a TXT record (one character-string) owned by the
// question name. txt must be at most 255 bytes.
func AppendTXTRR(dst []byte, class uint16, ttl uint32, txt string) []byte {
	dst = appendRRHead(dst, TypeTXT, class, ttl, uint16(1+len(txt)))
	dst = append(dst, byte(len(txt)))
	return append(dst, txt...)
}

// AppendARR appends an IN A record owned by the question name.
func AppendARR(dst []byte, ttl uint32, ip [4]byte) []byte {
	dst = appendRRHead(dst, TypeA, ClassIN, ttl, 4)
	return append(dst, ip[:]...)
}

// AppendAAAARR appends an IN AAAA record owned by the question name.
func AppendAAAARR(dst []byte, ttl uint32, ip [16]byte) []byte {
	dst = appendRRHead(dst, TypeAAAA, ClassIN, ttl, 16)
	return append(dst, ip[:]...)
}

// Truncate reduces a response that exceeded the client's limit to its
// header and question, sets TC, and zeroes the record counts — the
// client retries over a transport without the limit.
func Truncate(msg []byte, qend int) []byte {
	msg = msg[:qend]
	flags := binary.BigEndian.Uint16(msg[2:])
	binary.BigEndian.PutUint16(msg[2:], flags|FlagTC)
	SetCounts(msg, 0, 0, 0)
	return msg
}
