package anomaly

import (
	"strings"
	"testing"
	"time"

	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/series"
)

func mm(y int, mo time.Month) months.Month { return months.New(y, mo) }

func monthlySeries(start months.Month, values ...float64) *series.Series {
	s := series.New()
	for i, v := range values {
		s.Set(start.Add(i), v)
	}
	return s
}

func TestStagnationsDetectsFlatline(t *testing.T) {
	s := monthlySeries(mm(2010, time.January),
		1.0, 1.02, 0.98, 1.01, 0.99, 1.0, // flat
		2.0, 3.0, 4.0) // then growth
	events := Stagnations(s, 4, 0.10)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	e := events[0]
	if e.Kind != Stagnation || e.Start != mm(2010, time.January) || e.Months() < 4 {
		t.Errorf("event = %v", e)
	}
}

func TestStagnationsIgnoresGrowth(t *testing.T) {
	s := monthlySeries(mm(2010, time.January), 1, 2, 4, 8, 16, 32)
	if events := Stagnations(s, 3, 0.10); len(events) != 0 {
		t.Errorf("growth flagged as stagnation: %v", events)
	}
}

func TestContractionsDetectsDrop(t *testing.T) {
	s := monthlySeries(mm(2012, time.January), 5, 8, 11, 10, 7, 5, 3, 3, 4)
	events := Contractions(s, 0.5)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	e := events[0]
	if e.Kind != Contraction {
		t.Errorf("kind = %v", e.Kind)
	}
	if e.Start != mm(2012, time.March) { // the peak at 11
		t.Errorf("start = %v, want 2012-03", e.Start)
	}
	if e.Magnitude < 0.7 || e.Magnitude > 0.75 { // 11 -> 3 is -72.7%
		t.Errorf("magnitude = %.2f", e.Magnitude)
	}
}

func TestContractionsIgnoresSmallDips(t *testing.T) {
	s := monthlySeries(mm(2012, time.January), 10, 11, 10, 11, 10, 11)
	if events := Contractions(s, 0.5); len(events) != 0 {
		t.Errorf("noise flagged: %v", events)
	}
}

func TestDisappearances(t *testing.T) {
	s := monthlySeries(mm(2016, time.January), 2, 2, 1, 0, 0, 1, 0)
	events := Disappearances(s)
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Start != mm(2016, time.April) {
		t.Errorf("first disappearance = %v, want 2016-04", events[0].Start)
	}
	if events[1].Start != mm(2016, time.July) {
		t.Errorf("second disappearance = %v, want 2016-07", events[1].Start)
	}
	// Never-positive series produce nothing.
	if got := Disappearances(monthlySeries(mm(2016, time.January), 0, 0, 0)); len(got) != 0 {
		t.Errorf("all-zero flagged: %v", got)
	}
}

func TestDivergences(t *testing.T) {
	target := monthlySeries(mm(2014, time.January), 1, 1, 1, 1, 1, 1)
	ref := monthlySeries(mm(2014, time.January), 1, 2, 4, 5, 5, 1)
	events := Divergences(target, ref, 0.5, 2)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	e := events[0]
	if e.Start != mm(2014, time.March) || e.End != mm(2014, time.May) {
		t.Errorf("span = %v..%v", e.Start, e.End)
	}
	if e.Magnitude != 0.2 { // 1/5 at the worst month
		t.Errorf("magnitude = %v", e.Magnitude)
	}
}

// TestDetectsVenezuelanBandwidthStagnation runs the detector over the
// calibrated M-Lab curves: Venezuela's decade under 1 Mbps must surface;
// Uruguay's steady growth must not.
func TestDetectsVenezuelanBandwidthStagnation(t *testing.T) {
	build := func(cc string) *series.Series {
		s := series.New()
		for m := mm(2008, time.January); !m.After(mm(2024, time.January)); m = m.Add(1) {
			s.Set(m, mlab.MedianSpeed(cc, m))
		}
		return s
	}
	veEvents := Stagnations(build("VE"), 60, 0.35)
	if len(veEvents) == 0 {
		t.Fatal("Venezuela's bandwidth stagnation not detected")
	}
	longest := veEvents[0]
	for _, e := range veEvents {
		if e.Months() > longest.Months() {
			longest = e
		}
	}
	if longest.Months() < 96 {
		t.Errorf("longest VE stagnation = %d months, want a decade-scale run", longest.Months())
	}
	if uy := Stagnations(build("UY"), 60, 0.35); len(uy) != 0 {
		t.Errorf("Uruguay flagged as stagnant: %v", uy)
	}
}

func TestKindAndEventStrings(t *testing.T) {
	e := Event{Kind: Contraction, Start: mm(2013, time.January), End: mm(2020, time.January), Magnitude: 0.72}
	s := e.String()
	for _, want := range []string{"contraction", "2013-01", "2020-01", "0.72"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	for k, name := range map[Kind]string{
		Stagnation: "stagnation", Disappearance: "disappearance", Divergence: "divergence",
	} {
		if k.String() != name {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestRecoveriesDetectsRebound(t *testing.T) {
	// Decline 10 -> 3, then rebound to 6: a 100% rise from the trough.
	s := monthlySeries(mm(2013, time.January), 10, 8, 5, 3, 4, 5, 6)
	events := Recoveries(s, 0.5)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	e := events[0]
	if e.Kind != Recovery || e.Start != mm(2013, time.April) {
		t.Errorf("event = %v", e)
	}
	if e.Magnitude != 1.0 {
		t.Errorf("magnitude = %v, want 1.0 (3 -> 6)", e.Magnitude)
	}
}

func TestRecoveriesNeedsPriorDecline(t *testing.T) {
	// Pure growth has no trough to recover from.
	s := monthlySeries(mm(2013, time.January), 1, 2, 3, 4)
	if events := Recoveries(s, 0.1); len(events) != 0 {
		t.Errorf("growth flagged as recovery: %v", events)
	}
}

func TestDetectsVenezuelanBandwidthRecovery(t *testing.T) {
	s := series.New()
	for m := mm(2008, time.January); !m.After(mm(2024, time.January)); m = m.Add(1) {
		s.Set(m, mlab.MedianSpeed("VE", m))
	}
	events := Recoveries(s, 1.0) // the paper's 1 -> ~3 Mbps rebound
	found := false
	for _, e := range events {
		if e.Start.Year() >= 2017 && e.End.Year() >= 2022 {
			found = true
		}
	}
	if !found {
		t.Errorf("2022 bandwidth recovery not detected: %v", events)
	}
}
