// Package anomaly detects the crisis signatures the paper reads off its
// longitudinal series by eye: multi-year stagnation (Venezuela's
// bandwidth), sustained contractions (CANTV's upstream providers,
// Telefonica's address space), disappearances (the country's root DNS
// instances), and divergence from a regional reference (the normalized
// download-speed decline). It generalizes the paper's narrative into
// reusable detectors — the automation its future-work section points at.
package anomaly

import (
	"fmt"
	"sort"

	"vzlens/internal/months"
	"vzlens/internal/series"
)

// Event is one detected signature.
type Event struct {
	Kind  Kind
	Start months.Month
	End   months.Month // inclusive
	// Magnitude is kind-specific: relative band width for stagnation,
	// relative drop for contraction, fraction of reference for
	// divergence; zero for disappearance.
	Magnitude float64
}

// Kind classifies an event.
type Kind int

// Detected event kinds.
const (
	Stagnation Kind = iota
	Contraction
	Disappearance
	Divergence
	Recovery
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Stagnation:
		return "stagnation"
	case Contraction:
		return "contraction"
	case Disappearance:
		return "disappearance"
	case Divergence:
		return "divergence"
	case Recovery:
		return "recovery"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%s %s..%s (%.2f)", e.Kind, e.Start, e.End, e.Magnitude)
}

// Months returns the event duration in calendar months, inclusive.
func (e Event) Months() int { return e.End.Sub(e.Start) + 1 }

// Stagnations finds maximal runs of at least minMonths where the series
// stays within ±tolerance (relative) of the run's starting value — flat
// growth in a metric that is expected to grow.
func Stagnations(s *series.Series, minMonths int, tolerance float64) []Event {
	pts := s.Points()
	var out []Event
	i := 0
	for i < len(pts) {
		base := pts[i].Value
		j := i
		for j+1 < len(pts) && within(pts[j+1].Value, base, tolerance) {
			j++
		}
		if span := pts[j].Month.Sub(pts[i].Month) + 1; span >= minMonths && j > i {
			out = append(out, Event{
				Kind:      Stagnation,
				Start:     pts[i].Month,
				End:       pts[j].Month,
				Magnitude: tolerance,
			})
		}
		if j == i {
			i++
		} else {
			i = j + 1
		}
	}
	return out
}

func within(v, base, tol float64) bool {
	if base == 0 {
		return v == 0
	}
	rel := (v - base) / base
	return rel <= tol && rel >= -tol
}

// Contractions finds declines of at least minRelDrop (0-1) from a local
// peak to a subsequent trough. Each event spans peak month to trough
// month with the relative drop as magnitude.
func Contractions(s *series.Series, minRelDrop float64) []Event {
	pts := s.Points()
	var out []Event
	i := 0
	for i < len(pts) {
		// Find the next local peak.
		peak := i
		for peak+1 < len(pts) && pts[peak+1].Value >= pts[peak].Value {
			peak++
		}
		if pts[peak].Value <= 0 {
			i = peak + 1
			continue
		}
		// Descend to the trough.
		trough := peak
		for trough+1 < len(pts) && pts[trough+1].Value <= pts[trough].Value {
			trough++
		}
		drop := (pts[peak].Value - pts[trough].Value) / pts[peak].Value
		if trough > peak && drop >= minRelDrop {
			out = append(out, Event{
				Kind:      Contraction,
				Start:     pts[peak].Month,
				End:       pts[trough].Month,
				Magnitude: drop,
			})
		}
		i = trough + 1
	}
	return out
}

// Disappearances finds months where a count series reaches zero after
// having been positive — infrastructure that vanished. Each event is a
// single month (the first zero of each run).
func Disappearances(s *series.Series) []Event {
	pts := s.Points()
	var out []Event
	seenPositive := false
	inZeroRun := false
	for _, p := range pts {
		switch {
		case p.Value > 0:
			seenPositive = true
			inZeroRun = false
		case seenPositive && !inZeroRun:
			out = append(out, Event{Kind: Disappearance, Start: p.Month, End: p.Month})
			inZeroRun = true
		}
	}
	return out
}

// Divergences finds maximal runs of at least minMonths where s stays
// below fraction*ref — a country falling away from the regional
// trajectory. Magnitude is the run's minimum s/ref ratio.
func Divergences(s, ref *series.Series, fraction float64, minMonths int) []Event {
	type ratioPoint struct {
		m months.Month
		r float64
	}
	var ratios []ratioPoint
	for _, p := range s.Points() {
		rv, ok := ref.Get(p.Month)
		if !ok || rv == 0 {
			continue
		}
		ratios = append(ratios, ratioPoint{p.Month, p.Value / rv})
	}
	sort.Slice(ratios, func(i, j int) bool { return ratios[i].m < ratios[j].m })
	var out []Event
	i := 0
	for i < len(ratios) {
		if ratios[i].r >= fraction {
			i++
			continue
		}
		j := i
		minRatio := ratios[i].r
		for j+1 < len(ratios) && ratios[j+1].r < fraction {
			j++
			if ratios[j].r < minRatio {
				minRatio = ratios[j].r
			}
		}
		if span := ratios[j].m.Sub(ratios[i].m) + 1; span >= minMonths {
			out = append(out, Event{
				Kind:      Divergence,
				Start:     ratios[i].m,
				End:       ratios[j].m,
				Magnitude: minRatio,
			})
		}
		i = j + 1
	}
	return out
}

// Recoveries finds rises of at least minRelRise (relative to the local
// trough) following a decline — the partial rebounds the paper notes
// since 2021-2022 (CANTV's upstream count, Venezuelan bandwidth,
// Telefonica's 2023 re-aggregation). Each event spans trough month to
// the subsequent peak.
func Recoveries(s *series.Series, minRelRise float64) []Event {
	pts := s.Points()
	var out []Event
	i := 0
	for i < len(pts) {
		// Find the next local trough that follows a decline.
		trough := i
		declined := false
		for trough+1 < len(pts) && pts[trough+1].Value <= pts[trough].Value {
			if pts[trough+1].Value < pts[trough].Value {
				declined = true
			}
			trough++
		}
		if !declined || pts[trough].Value <= 0 {
			i = trough + 1
			continue
		}
		// Climb to the recovery peak.
		peak := trough
		for peak+1 < len(pts) && pts[peak+1].Value >= pts[peak].Value {
			peak++
		}
		rise := (pts[peak].Value - pts[trough].Value) / pts[trough].Value
		if peak > trough && rise >= minRelRise {
			out = append(out, Event{
				Kind:      Recovery,
				Start:     pts[trough].Month,
				End:       pts[peak].Month,
				Magnitude: rise,
			})
		}
		i = peak + 1
	}
	return out
}
