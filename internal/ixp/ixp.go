// Package ixp models Internet exchange point membership and the
// population-weighted presence analyses of Section 6.2 and Appendix I:
// which share of each country's Internet users sits in networks that peer
// at a given exchange (Figure 10's heatmap for the largest IXP per Latin
// American country, Figure 21's for exchanges in the United States).
package ixp

import (
	"sort"

	"vzlens/internal/aspop"
	"vzlens/internal/bgp"
)

// Exchange is one IXP.
type Exchange struct {
	Name    string
	Country string // where the exchange operates
	City    string
}

// LatAmExchanges returns the largest exchange of each Latin American
// country with one, as drawn in Figure 10, plus Equinix Bogota (the one
// exchange where a Venezuela-serving network peers).
func LatAmExchanges() []Exchange {
	return []Exchange{
		{"AMS-IX (CW)", "CW", "Willemstad"},
		{"AR-IX", "AR", "Buenos Aires"},
		{"CRIX", "CR", "San Jose"},
		{"GTIX", "GT", "Guatemala City"},
		{"Guyanix", "GY", "Georgetown"},
		{"IX.br (SP)", "BR", "Sao Paulo"},
		{"IXP-HN", "HN", "Tegucigalpa"},
		{"IXSY", "SX", "Philipsburg"},
		{"IXpy", "PY", "Asuncion"},
		{"InteRed (PA)", "PA", "Panama City"},
		{"NAP.CO", "CO", "Bogota"},
		{"NAP.EC - UIO", "EC", "Quito"},
		{"OCIX", "BQ", "Kralendijk"},
		{"PIT.BO", "BO", "La Paz"},
		{"PIT Chile (SCL)", "CL", "Santiago"},
		{"Peru IX", "PE", "Lima"},
		{"SUR-IX", "SR", "Paramaribo"},
		{"TTIX", "TT", "Port of Spain"},
		{"Equinix Bogota", "CO", "Bogota"},
	}
}

// USExchanges returns the United States exchanges of Appendix I that
// attract Latin American networks. (Figure 21 lists ~70; the ones below
// carry essentially all the Latin American presence.)
func USExchanges() []Exchange {
	return []Exchange{
		{"FL-IX", "US", "Miami"},
		{"Equinix Miami", "US", "Miami"},
		{"DE-CIX New York", "US", "New York"},
		{"Equinix Ashburn", "US", "Ashburn"},
		{"Equinix Dallas", "US", "Dallas"},
		{"Equinix Los Angeles", "US", "Los Angeles"},
		{"Any2West", "US", "Los Angeles"},
		{"NYIIX New York", "US", "New York"},
		{"MEX-IX McAllen", "US", "McAllen"},
		{"Equinix Chicago", "US", "Chicago"},
	}
}

// Membership records which networks peer at which exchange.
type Membership struct {
	byExchange map[string]map[bgp.ASN]bool
}

// NewMembership returns an empty Membership.
func NewMembership() *Membership {
	return &Membership{byExchange: map[string]map[bgp.ASN]bool{}}
}

// Join records asn peering at the named exchange.
func (m *Membership) Join(exchange string, asn bgp.ASN) {
	if m.byExchange == nil {
		m.byExchange = map[string]map[bgp.ASN]bool{}
	}
	set, ok := m.byExchange[exchange]
	if !ok {
		set = map[bgp.ASN]bool{}
		m.byExchange[exchange] = set
	}
	set[asn] = true
}

// Members returns the networks at the exchange, sorted.
func (m *Membership) Members(exchange string) []bgp.ASN {
	set := m.byExchange[exchange]
	out := make([]bgp.ASN, 0, len(set))
	for asn := range set {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Present reports whether asn peers at the exchange.
func (m *Membership) Present(exchange string, asn bgp.ASN) bool {
	return m.byExchange[exchange][asn]
}

// Exchanges returns the exchanges with at least one member, sorted.
func (m *Membership) Exchanges() []string {
	out := make([]string, 0, len(m.byExchange))
	for name := range m.byExchange {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Cell is one heatmap entry: the share of a country's population in
// networks present at an exchange, and how many of its networks peer
// there.
type Cell struct {
	Share    float64 // 0-1
	Networks int
}

// Heatmap computes, for each exchange and each country in countries, the
// population share and network count of that country present at the
// exchange — Figures 10 and 21. Countries with zero presence are omitted
// from each exchange's row.
func Heatmap(m *Membership, pop *aspop.Estimates, exchanges []Exchange, countries []string) map[string]map[string]Cell {
	out := map[string]map[string]Cell{}
	for _, ex := range exchanges {
		members := m.Members(ex.Name)
		if len(members) == 0 {
			continue
		}
		row := map[string]Cell{}
		for _, cc := range countries {
			var asns []bgp.ASN
			for _, asn := range members {
				if est, ok := pop.Lookup(asn); ok && est.Country == cc {
					asns = append(asns, asn)
				}
			}
			if len(asns) == 0 {
				continue
			}
			row[cc] = Cell{Share: pop.ShareOf(cc, asns), Networks: len(asns)}
		}
		if len(row) > 0 {
			out[ex.Name] = row
		}
	}
	return out
}

// CountryPresence aggregates a country's total distinct networks and
// population share across a set of exchanges — the Appendix I summary
// ("seven networks serving a mere 7% of Venezuela's population").
func CountryPresence(m *Membership, pop *aspop.Estimates, exchanges []Exchange, cc string) Cell {
	seen := map[bgp.ASN]bool{}
	for _, ex := range exchanges {
		for _, asn := range m.Members(ex.Name) {
			if est, ok := pop.Lookup(asn); ok && est.Country == cc {
				seen[asn] = true
			}
		}
	}
	asns := make([]bgp.ASN, 0, len(seen))
	for asn := range seen {
		asns = append(asns, asn)
	}
	return Cell{Share: pop.ShareOf(cc, asns), Networks: len(asns)}
}
