package ixp

import (
	"testing"

	"vzlens/internal/aspop"
)

func pop() *aspop.Estimates {
	e := aspop.New()
	e.Add(aspop.Estimate{ASN: 100, Name: "AR Eyeball 1", Country: "AR", Users: 6000})
	e.Add(aspop.Estimate{ASN: 101, Name: "AR Eyeball 2", Country: "AR", Users: 4000})
	e.Add(aspop.Estimate{ASN: 200, Name: "UY Eyeball", Country: "UY", Users: 1000})
	e.Add(aspop.Estimate{ASN: 300, Name: "VE Eyeball", Country: "VE", Users: 500})
	e.Add(aspop.Estimate{ASN: 301, Name: "VE Other", Country: "VE", Users: 9500})
	return e
}

func TestMembershipBasics(t *testing.T) {
	m := NewMembership()
	m.Join("AR-IX", 100)
	m.Join("AR-IX", 100) // duplicate ignored
	m.Join("AR-IX", 200)
	if got := m.Members("AR-IX"); len(got) != 2 || got[0] != 100 {
		t.Errorf("Members = %v", got)
	}
	if !m.Present("AR-IX", 100) || m.Present("AR-IX", 999) {
		t.Error("Present broken")
	}
	if got := m.Members("nope"); len(got) != 0 {
		t.Errorf("empty exchange = %v", got)
	}
	if ex := m.Exchanges(); len(ex) != 1 || ex[0] != "AR-IX" {
		t.Errorf("Exchanges = %v", ex)
	}
}

func TestHeatmap(t *testing.T) {
	m := NewMembership()
	m.Join("AR-IX", 100) // 60% of AR
	m.Join("AR-IX", 200) // UY network abroad
	exchanges := []Exchange{{"AR-IX", "AR", "Buenos Aires"}, {"IXpy", "PY", "Asuncion"}}

	hm := Heatmap(m, pop(), exchanges, []string{"AR", "UY", "VE"})
	row, ok := hm["AR-IX"]
	if !ok {
		t.Fatal("AR-IX row missing")
	}
	if c := row["AR"]; c.Share != 0.6 || c.Networks != 1 {
		t.Errorf("AR cell = %+v", c)
	}
	if c := row["UY"]; c.Share != 1.0 || c.Networks != 1 {
		t.Errorf("UY cell = %+v", c)
	}
	if _, ok := row["VE"]; ok {
		t.Error("VE should be absent from the heatmap")
	}
	if _, ok := hm["IXpy"]; ok {
		t.Error("memberless exchange should be omitted")
	}
}

func TestCountryPresenceDeduplicatesAcrossIXPs(t *testing.T) {
	m := NewMembership()
	m.Join("FL-IX", 300)
	m.Join("Equinix Miami", 300) // same network at two exchanges
	exchanges := []Exchange{{"FL-IX", "US", "Miami"}, {"Equinix Miami", "US", "Miami"}}
	c := CountryPresence(m, pop(), exchanges, "VE")
	if c.Networks != 1 {
		t.Errorf("networks = %d, want 1 (deduplicated)", c.Networks)
	}
	if c.Share != 0.05 {
		t.Errorf("share = %v, want 0.05", c.Share)
	}
}

func TestCountryPresenceEmpty(t *testing.T) {
	m := NewMembership()
	c := CountryPresence(m, pop(), USExchanges(), "VE")
	if c.Networks != 0 || c.Share != 0 {
		t.Errorf("empty presence = %+v", c)
	}
}

func TestDirectories(t *testing.T) {
	latam := LatAmExchanges()
	if len(latam) != 19 {
		t.Errorf("LatAm exchanges = %d, want 19 (18 largest + Equinix Bogota)", len(latam))
	}
	names := map[string]string{}
	for _, ex := range latam {
		names[ex.Name] = ex.Country
	}
	for name, cc := range map[string]string{
		"AR-IX": "AR", "IX.br (SP)": "BR", "PIT Chile (SCL)": "CL",
		"AMS-IX (CW)": "CW", "Equinix Bogota": "CO",
	} {
		if names[name] != cc {
			t.Errorf("%s country = %q, want %q", name, names[name], cc)
		}
	}
	// Venezuela and Uruguay host no IXP (paper).
	for _, ex := range latam {
		if ex.Country == "VE" || ex.Country == "UY" {
			t.Errorf("%s should not exist: %s hosts no IXP", ex.Name, ex.Country)
		}
	}
	us := USExchanges()
	if len(us) < 8 {
		t.Errorf("US exchanges = %d, want >= 8", len(us))
	}
	for _, ex := range us {
		if ex.Country != "US" {
			t.Errorf("%s in %s, want US", ex.Name, ex.Country)
		}
	}
}
