// Package faultio wraps io.Readers and data sources with scripted
// faults — truncation, bit-flip corruption, stalls, and transient I/O
// errors — so the ingestion parsers can be exercised against the failure
// modes real archival mirrors exhibit: cut-off downloads, corrupted
// dumps, hung connections, and fetches that succeed only on retry.
//
// Every wrapper is deterministic: the same script over the same bytes
// produces the same faulty stream, which keeps the parser robustness
// tests reproducible.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrInjected is the error surfaced by fault wrappers that terminate a
// stream abnormally (see Err and Flaky).
var ErrInjected = errors.New("faultio: injected fault")

// Truncate returns a reader that delivers at most n bytes of r and then
// reports EOF — a download cut off mid-transfer by a stalled mirror.
func Truncate(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// corruptReader XORs mask into the byte at each scripted offset.
type corruptReader struct {
	r       io.Reader
	offsets map[int64]bool
	mask    byte
	pos     int64
}

// Corrupt returns a reader that flips bits (XOR mask) in the bytes of r
// at the given stream offsets; offsets beyond the stream are ignored. A
// zero mask defaults to 0x01 (a single-bit flip).
func Corrupt(r io.Reader, mask byte, offsets ...int64) io.Reader {
	if mask == 0 {
		mask = 0x01
	}
	m := make(map[int64]bool, len(offsets))
	for _, o := range offsets {
		m[o] = true
	}
	return &corruptReader{r: r, offsets: m, mask: mask}
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		if c.offsets[c.pos+int64(i)] {
			p[i] ^= c.mask
		}
	}
	c.pos += int64(n)
	return n, err
}

// stallReader sleeps once when the stream position crosses after.
type stallReader struct {
	r       io.Reader
	after   int64
	delay   time.Duration
	pos     int64
	stalled bool
}

// Stall returns a reader that pauses for delay the first time the
// stream position reaches after bytes — a hung connection that
// eventually resumes. Reads are otherwise passed through unchanged.
func Stall(r io.Reader, after int64, delay time.Duration) io.Reader {
	return &stallReader{r: r, after: after, delay: delay}
}

func (s *stallReader) Read(p []byte) (int, error) {
	if !s.stalled && s.pos >= s.after {
		s.stalled = true
		time.Sleep(s.delay)
	}
	n, err := s.r.Read(p)
	s.pos += int64(n)
	return n, err
}

// errReader fails with err once after bytes have been delivered.
type errReader struct {
	r     io.Reader
	after int64
	err   error
	pos   int64
}

// Err returns a reader that delivers the first after bytes of r and then
// fails every subsequent Read with err (ErrInjected when nil) — a
// connection reset partway through a transfer.
func Err(r io.Reader, after int64, err error) io.Reader {
	if err == nil {
		err = ErrInjected
	}
	return &errReader{r: io.LimitReader(r, after), after: after, err: err}
}

func (e *errReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	e.pos += int64(n)
	if err == io.EOF && e.pos >= e.after {
		return n, e.err
	}
	return n, err
}

// Source opens one attempt at a data stream; retry loops call it once
// per attempt.
type Source func() (io.Reader, error)

// Flaky wraps src so the first failures attempts fail with err
// (ErrInjected when nil) before attempts pass through — the
// fail-N-times-then-succeed shape transient mirror outages take.
// The returned Source is not safe for concurrent use.
func Flaky(src Source, failures int, err error) Source {
	if err == nil {
		err = ErrInjected
	}
	remaining := failures
	return func() (io.Reader, error) {
		if remaining > 0 {
			remaining--
			return nil, fmt.Errorf("transient open failure (%d more): %w", remaining, err)
		}
		return src()
	}
}
