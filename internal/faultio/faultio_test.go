package faultio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/mrt"
	"vzlens/internal/peeringdb"
	"vzlens/internal/resilience"
)

func TestTruncate(t *testing.T) {
	got, err := io.ReadAll(Truncate(strings.NewReader("hello world"), 5))
	if err != nil || string(got) != "hello" {
		t.Fatalf("Truncate = %q, %v", got, err)
	}
}

func TestCorrupt(t *testing.T) {
	got, err := io.ReadAll(Corrupt(strings.NewReader("abcd"), 0xFF, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{'a', 'b' ^ 0xFF, 'c', 'd' ^ 0xFF}
	if !bytes.Equal(got, want) {
		t.Errorf("Corrupt = %v, want %v", got, want)
	}
}

func TestCorruptAcrossReads(t *testing.T) {
	// One-byte reads must still hit the scripted absolute offset.
	r := Corrupt(strings.NewReader("abcd"), 0x01, 2)
	var out []byte
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	if out[2] != 'c'^0x01 {
		t.Errorf("offset tracking broken: %q", out)
	}
}

func TestStall(t *testing.T) {
	start := time.Now()
	got, err := io.ReadAll(Stall(strings.NewReader("xy"), 1, 30*time.Millisecond))
	if err != nil || string(got) != "xy" {
		t.Fatalf("Stall = %q, %v", got, err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Error("stall did not delay")
	}
}

func TestErr(t *testing.T) {
	got, err := io.ReadAll(Err(strings.NewReader("hello world"), 5, nil))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "hello" {
		t.Errorf("partial read = %q", got)
	}
}

func TestFlaky(t *testing.T) {
	src := Flaky(func() (io.Reader, error) { return strings.NewReader("data"), nil }, 2, nil)
	for i := 0; i < 2; i++ {
		if _, err := src(); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d = %v, want ErrInjected", i+1, err)
		}
	}
	r, err := src()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(r); string(got) != "data" {
		t.Errorf("recovered read = %q", got)
	}
}

// ---- parser robustness under every fault class ----

// validCorpus returns a well-formed input for each of the five archival
// parsers, alongside a closure that runs the parser.
func parserCases(t *testing.T) []struct {
	name  string
	data  []byte
	parse func(io.Reader) error
} {
	t.Helper()
	m := months.New(2023, time.July)

	snap := &peeringdb.Snapshot{
		Facilities: []peeringdb.Facility{{ID: 1, Name: "Cirion La Urbina", City: "Caracas", Country: "VE"}},
		Networks:   []peeringdb.Network{{ID: 1, ASN: 8048, Name: "CANTV", Country: "VE"}},
		NetFacs:    []peeringdb.NetFac{{NetID: 1, FacID: 1}},
	}
	var pdb bytes.Buffer
	if err := snap.Write(&pdb); err != nil {
		t.Fatal(err)
	}

	var atlasBuf bytes.Buffer
	if err := atlas.WriteChaosJSON(&atlasBuf, []atlas.ChaosResult{
		{Month: m, ProbeID: 1, ProbeCC: "VE", Letter: 'K', TXT: "ns1.gru"},
		{Month: m, ProbeID: 2, ProbeCC: "BR", Letter: 'L', TXT: "ns2.mia"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := atlas.WriteTraceJSON(&atlasBuf, []atlas.TraceSample{
		{Month: m, ProbeID: 1, ProbeCC: "VE", RTTms: 120.5},
	}); err != nil {
		t.Fatal(err)
	}

	var mlabBuf bytes.Buffer
	if err := mlab.WriteJSON(&mlabBuf, []mlab.Test{
		{Month: m, Country: "VE", DownloadMbps: 2.9},
		{Month: m, Country: "BR", DownloadMbps: 48.1},
	}); err != nil {
		t.Fatal(err)
	}

	rib := bgp.NewRIB()
	rib.Announce(bgp.Prefix{Network: netip.MustParsePrefix("200.44.0.0/16"), Origin: 8048})
	rib.Announce(bgp.Prefix{Network: netip.MustParsePrefix("190.202.0.0/17"), Origin: 8048})
	var pfxBuf bytes.Buffer
	if _, err := rib.WriteTo(&pfxBuf); err != nil {
		t.Fatal(err)
	}

	var mrtBuf bytes.Buffer
	if err := mrt.WriteRIB(&mrtBuf, rib, 6762, m.Time().Unix()); err != nil {
		t.Fatal(err)
	}

	return []struct {
		name  string
		data  []byte
		parse func(io.Reader) error
	}{
		{"peeringdb.Read", pdb.Bytes(), func(r io.Reader) error { _, err := peeringdb.Read(r); return err }},
		{"atlas.ParseResultsJSON", atlasBuf.Bytes(), func(r io.Reader) error { _, _, err := atlas.ParseResultsJSON(r); return err }},
		{"mlab.ParseJSON", mlabBuf.Bytes(), func(r io.Reader) error { _, err := mlab.ParseJSON(r); return err }},
		{"bgp.ParseRIB", pfxBuf.Bytes(), func(r io.Reader) error { _, err := bgp.ParseRIB(r); return err }},
		{"mrt.ParseRIB", mrtBuf.Bytes(), func(r io.Reader) error { _, err := mrt.ParseRIB(r); return err }},
	}
}

// TestParsersSurviveFaults drives every archival parser through every
// fault class. The contract is uniform: a clean error or a clean (if
// partial) result — never a panic, never a hang.
func TestParsersSurviveFaults(t *testing.T) {
	for _, pc := range parserCases(t) {
		pc := pc
		mid := int64(len(pc.data) / 2)
		faults := []struct {
			name string
			wrap func(io.Reader) io.Reader
		}{
			{"truncate-mid", func(r io.Reader) io.Reader { return Truncate(r, mid) }},
			{"truncate-1byte", func(r io.Reader) io.Reader { return Truncate(r, 1) }},
			{"truncate-0", func(r io.Reader) io.Reader { return Truncate(r, 0) }},
			{"bitflip-early", func(r io.Reader) io.Reader { return Corrupt(r, 0x01, 2) }},
			{"bitflip-spray", func(r io.Reader) io.Reader {
				return Corrupt(r, 0x80, mid/2, mid, mid+mid/2)
			}},
			{"stall", func(r io.Reader) io.Reader { return Stall(r, mid, 10*time.Millisecond) }},
			{"err-mid", func(r io.Reader) io.Reader { return Err(r, mid, nil) }},
			{"err-immediate", func(r io.Reader) io.Reader { return Err(r, 0, nil) }},
		}
		for _, f := range faults {
			f := f
			t.Run(pc.name+"/"+f.name, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("parser panicked under %s: %v", f.name, r)
					}
				}()
				err := pc.parse(f.wrap(bytes.NewReader(pc.data)))
				// Faults that end the stream abnormally must surface as
				// errors; parsers may tolerate benign faults (a stall, a
				// flipped bit inside a skipped field) and return a
				// partial result, but must never panic.
				if strings.HasPrefix(f.name, "err-") && err == nil {
					t.Error("injected I/O error was swallowed")
				}
				if f.name == "stall" && err != nil {
					t.Errorf("stalled-but-complete stream should parse: %v", err)
				}
			})
		}
		// Unfaulted control: the corpus itself is valid.
		t.Run(pc.name+"/clean", func(t *testing.T) {
			if err := pc.parse(bytes.NewReader(pc.data)); err != nil {
				t.Fatalf("clean corpus rejected: %v", err)
			}
		})
	}
}

// TestParsersRecoverViaRetry wires each parser behind a Flaky source and
// a retry policy: two transient open failures, then success.
func TestParsersRecoverViaRetry(t *testing.T) {
	policy := resilience.Policy{
		MaxAttempts: 4,
		Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
	}
	for _, pc := range parserCases(t) {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			opens := 0
			src := Flaky(func() (io.Reader, error) {
				opens++
				return bytes.NewReader(pc.data), nil
			}, 2, nil)
			err := resilience.Retry(context.Background(), policy, func(context.Context) error {
				r, err := src()
				if err != nil {
					return err
				}
				return pc.parse(r)
			})
			if err != nil {
				t.Fatalf("retry did not recover: %v", err)
			}
			if opens != 1 {
				t.Errorf("successful opens = %d, want 1", opens)
			}
		})
	}
}
