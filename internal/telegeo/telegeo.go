// Package telegeo models the submarine-cable map the paper derives from
// Telegeography: cables with ready-for-service (RFS) dates and the
// countries their landing points touch. It embeds the Latin American
// cable build-out 1992-2024 — the region's two deployment waves around the
// dot-com bubble — calibrated so the regional totals match Figure 4: 13
// cables reaching the region in 2000 growing to 54 by 2024, with Venezuela
// adding only the ALBA-1 link to Cuba after 2000.
package telegeo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Cable is one submarine cable system.
type Cable struct {
	Name     string
	RFS      int      // ready-for-service year
	Landings []string // ISO country codes with landing points (region only)
}

// String renders the cable in the CSV interchange format
// "name,rfs,cc1;cc2;...".
func (c Cable) String() string {
	return fmt.Sprintf("%s,%d,%s", c.Name, c.RFS, strings.Join(c.Landings, ";"))
}

// LandsIn reports whether the cable has a landing in country cc.
func (c Cable) LandsIn(cc string) bool {
	for _, l := range c.Landings {
		if l == cc {
			return true
		}
	}
	return false
}

// Map is a collection of cables.
type Map struct {
	cables []Cable
}

// NewMap returns an empty Map.
func NewMap() *Map { return &Map{} }

// Add appends a cable.
func (m *Map) Add(c Cable) { m.cables = append(m.cables, c) }

// Len returns the number of cables.
func (m *Map) Len() int { return len(m.cables) }

// Cables returns all cables sorted by RFS year then name.
func (m *Map) Cables() []Cable {
	out := make([]Cable, len(m.cables))
	copy(out, m.cables)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RFS != out[j].RFS {
			return out[i].RFS < out[j].RFS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CountryCount returns the number of cables with a landing in cc that are
// in service by the end of the given year.
func (m *Map) CountryCount(cc string, year int) int {
	n := 0
	for _, c := range m.cables {
		if c.RFS <= year && c.LandsIn(cc) {
			n++
		}
	}
	return n
}

// RegionTotal returns the number of cables in service by the end of the
// given year (every cable in the map reaches the region by construction).
func (m *Map) RegionTotal(year int) int {
	n := 0
	for _, c := range m.cables {
		if c.RFS <= year {
			n++
		}
	}
	return n
}

// AddedBetween returns the cables landing in cc whose RFS falls in
// (afterYear, uptoYear], sorted by RFS.
func (m *Map) AddedBetween(cc string, afterYear, uptoYear int) []Cable {
	var out []Cable
	for _, c := range m.cables {
		if c.RFS > afterYear && c.RFS <= uptoYear && c.LandsIn(cc) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RFS < out[j].RFS })
	return out
}

// Countries returns every country code with at least one landing, sorted.
func (m *Map) Countries() []string {
	seen := map[string]bool{}
	for _, c := range m.cables {
		for _, cc := range c.Landings {
			seen[cc] = true
		}
	}
	out := make([]string, 0, len(seen))
	for cc := range seen {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// WriteTo writes the map in CSV interchange form with a header,
// implementing io.WriterTo.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(s string) error {
		k, err := io.WriteString(w, s)
		n += int64(k)
		return err
	}
	if err := write("name,rfs,landings\n"); err != nil {
		return n, err
	}
	for _, c := range m.Cables() {
		if err := write(c.String() + "\n"); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Parse reads the CSV interchange form (header optional).
func Parse(r io.Reader) (*Map, error) {
	m := NewMap()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || line == "name,rfs,landings" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("telegeo: line %d: malformed %q", lineNo, line)
		}
		rfs, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("telegeo: line %d: bad RFS %q", lineNo, parts[1])
		}
		var landings []string
		for _, cc := range strings.Split(parts[2], ";") {
			cc = strings.TrimSpace(cc)
			if cc != "" {
				landings = append(landings, strings.ToUpper(cc))
			}
		}
		if len(landings) == 0 {
			return nil, fmt.Errorf("telegeo: line %d: no landings", lineNo)
		}
		m.Add(Cable{parts[0], rfs, landings})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telegeo: read: %w", err)
	}
	return m, nil
}

// LatinAmerica returns the embedded regional cable history.
func LatinAmerica() *Map {
	m := NewMap()
	for _, c := range latamCables {
		m.Add(c)
	}
	return m
}

// latamCables is the embedded build-out. Names and dates follow the public
// record; landing lists are restricted to the study region.
var latamCables = []Cable{
	{"CANTV Festoon", 1992, []string{"VE"}},
	{"Americas-I", 1994, []string{"VE", "TT", "BR"}},
	{"Columbus-II", 1994, []string{"MX"}},
	{"Unisur", 1995, []string{"UY", "AR", "BR"}},
	{"ECFS", 1995, []string{"TT"}},
	{"Antillas 1", 1997, []string{"DO", "HT"}},
	{"Pan American", 1999, []string{"CL", "PE", "EC", "PA", "CO", "VE"}},
	{"Americas-II", 2000, []string{"BR", "GF", "TT", "VE"}},
	{"Atlantis-2", 2000, []string{"AR", "BR"}},
	{"Maya-1", 2000, []string{"MX", "HN", "CR", "CO", "PA"}},
	{"South American Crossing (SAC)", 2000, []string{"BR", "AR", "CL", "PE", "CO", "PA"}},
	{"GlobeNet", 2000, []string{"BR", "VE"}},
	{"ARCOS-1", 2000, []string{"MX", "BZ", "GT", "HN", "NI", "CR", "PA", "CO", "DO"}},
	{"SAm-1", 2001, []string{"BR", "AR", "CL", "PE", "EC", "GT"}},
	{"GCN", 2003, []string{"GF"}},
	{"Fibralink", 2006, []string{"DO"}},
	{"CBUS", 2008, []string{"HN"}},
	{"CFX-1", 2008, []string{"CO"}},
	{"SAIT", 2010, []string{"CO"}},
	{"Suriname-Guyana SCS", 2010, []string{"SR", "GY", "TT"}},
	{"ALBA-1", 2011, []string{"VE", "CU"}},
	{"East-West", 2011, []string{"CW"}},
	{"Southern Caribbean Fiber", 2012, []string{"TT"}},
	{"BDSCS", 2012, []string{"BZ"}},
	{"AMX-1", 2014, []string{"BR", "CO", "DO", "GT", "MX"}},
	{"PCCS", 2014, []string{"EC", "PA", "CO", "CW"}},
	{"Monet", 2016, []string{"BR"}},
	{"Junior", 2017, []string{"BR"}},
	{"Seabras-1", 2017, []string{"BR"}},
	{"SACS", 2018, []string{"BR"}},
	{"SAIL", 2018, []string{"BR"}},
	{"Tannat", 2018, []string{"BR", "UY"}},
	{"BRUSA", 2018, []string{"BR"}},
	{"Alonso de Ojeda", 2018, []string{"CW", "BQ"}},
	{"Kanawa", 2019, []string{"GF"}},
	{"Curie", 2019, []string{"CL", "PA"}},
	{"Fibra Optica Austral", 2020, []string{"CL"}},
	{"Prat", 2020, []string{"CL"}},
	{"Malbec", 2020, []string{"AR", "BR"}},
	{"Deep Blue One", 2020, []string{"TT", "GY"}},
	{"EllaLink", 2021, []string{"BR"}},
	{"Mistral", 2021, []string{"CL", "PE", "EC", "GT"}},
	{"ARBR", 2021, []string{"AR", "BR"}},
	{"Firmina", 2022, []string{"AR", "BR", "UY"}},
	{"Infovia-00", 2022, []string{"BR"}},
	{"GigNet-1", 2022, []string{"MX"}},
	{"AMX-3 Tikal", 2023, []string{"MX", "GT"}},
	{"Infovia-01", 2023, []string{"BR"}},
	{"Galapagos Cable System", 2023, []string{"EC"}},
	{"CSN-1", 2023, []string{"DO"}},
	{"Caribbean Express", 2024, []string{"PA", "CO", "MX"}},
	{"Aurora", 2024, []string{"MX", "CR", "PA"}},
	{"LN-2", 2024, []string{"CO"}},
	{"Humboldt", 2024, []string{"CL"}},
}
