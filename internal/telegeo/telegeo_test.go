package telegeo

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegionTotalsMatchFigure4(t *testing.T) {
	m := LatinAmerica()
	// Paper: 13 cables in 2000, 54 in 2024.
	if got := m.RegionTotal(2000); got != 13 {
		t.Errorf("RegionTotal(2000) = %d, want 13", got)
	}
	if got := m.RegionTotal(2024); got != 54 {
		t.Errorf("RegionTotal(2024) = %d, want 54", got)
	}
	if got := m.RegionTotal(1991); got != 0 {
		t.Errorf("RegionTotal(1991) = %d, want 0", got)
	}
}

func TestVenezuelaAddsOnlyALBA(t *testing.T) {
	m := LatinAmerica()
	added := m.AddedBetween("VE", 2000, 2024)
	if len(added) != 1 || added[0].Name != "ALBA-1" {
		t.Errorf("VE additions 2000-2024 = %v, want only ALBA-1", added)
	}
	// ALBA connects Venezuela with Cuba.
	if !added[0].LandsIn("CU") {
		t.Error("ALBA-1 should land in Cuba")
	}
}

func TestNicaraguaHaitiDidNotExpand(t *testing.T) {
	m := LatinAmerica()
	for _, cc := range []string{"NI", "HT"} {
		if added := m.AddedBetween(cc, 2000, 2024); len(added) != 0 {
			t.Errorf("%s additions = %v, want none (paper)", cc, added)
		}
	}
}

func TestSingleCableAdders(t *testing.T) {
	// Paper: Venezuela, Honduras, and Belize added exactly one cable.
	m := LatinAmerica()
	for _, cc := range []string{"VE", "HN", "BZ"} {
		if added := m.AddedBetween(cc, 2000, 2024); len(added) != 1 {
			t.Errorf("%s additions = %d, want 1", cc, len(added))
		}
	}
}

func TestGrowthLeaders(t *testing.T) {
	m := LatinAmerica()
	// Paper: BR 5→17, CO 5→13, CL 2→9, AR 3→9 between 2000 and 2024.
	// Shape check: strong growth, Brazil leading.
	type g struct {
		cc          string
		atLeast2024 int
	}
	for _, c := range []g{{"BR", 15}, {"CO", 8}, {"CL", 6}, {"AR", 6}} {
		got := m.CountryCount(c.cc, 2024)
		if got < c.atLeast2024 {
			t.Errorf("%s cables 2024 = %d, want >= %d", c.cc, got, c.atLeast2024)
		}
	}
	br := m.CountryCount("BR", 2024)
	for _, cc := range []string{"CO", "CL", "AR", "VE", "MX"} {
		if m.CountryCount(cc, 2024) >= br {
			t.Errorf("BR should lead the region; %s has %d vs BR %d", cc, m.CountryCount(cc, 2024), br)
		}
	}
	if cl := m.CountryCount("CL", 2000); cl != 2 {
		t.Errorf("CL cables 2000 = %d, want 2 (paper)", cl)
	}
	if ar := m.CountryCount("AR", 2000); ar != 3 {
		t.Errorf("AR cables 2000 = %d, want 3 (paper)", ar)
	}
}

func TestVenezuelaRankedBottomOfSecondWave(t *testing.T) {
	m := LatinAmerica()
	// Venezuela's 2024 count should trail every comparable peer except
	// possibly none — it ranked at the bottom of second-wave deployment.
	ve24, ve00 := m.CountryCount("VE", 2024), m.CountryCount("VE", 2000)
	if ve24-ve00 != 1 {
		t.Errorf("VE second-wave growth = %d, want 1", ve24-ve00)
	}
	for _, cc := range []string{"BR", "CL", "AR", "CO", "MX"} {
		growth := m.CountryCount(cc, 2024) - m.CountryCount(cc, 2000)
		if growth <= 1 {
			t.Errorf("%s growth = %d, should exceed VE's 1", cc, growth)
		}
	}
}

func TestCableQueries(t *testing.T) {
	c := Cable{"X", 2000, []string{"VE", "CU"}}
	if !c.LandsIn("VE") || c.LandsIn("BR") {
		t.Error("LandsIn broken")
	}
	m := NewMap()
	m.Add(c)
	m.Add(Cable{"Y", 1995, []string{"BR"}})
	cables := m.Cables()
	if len(cables) != 2 || cables[0].Name != "Y" {
		t.Errorf("Cables not RFS-sorted: %v", cables)
	}
	ccs := m.Countries()
	if len(ccs) != 3 || ccs[0] != "BR" {
		t.Errorf("Countries = %v", ccs)
	}
}

func TestRoundTrip(t *testing.T) {
	m := LatinAmerica()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != m.Len() {
		t.Fatalf("round trip len = %d, want %d", parsed.Len(), m.Len())
	}
	if parsed.RegionTotal(2024) != m.RegionTotal(2024) {
		t.Error("totals differ after round trip")
	}
	if parsed.CountryCount("VE", 2024) != m.CountryCount("VE", 2024) {
		t.Error("VE count differs after round trip")
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"onlyname",
		"name,notayear,VE",
		"name,2000,",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
	// Header, comments, blanks pass.
	m, err := Parse(strings.NewReader("name,rfs,landings\n# c\n\nX,2000,ve;cu\n"))
	if err != nil || m.Len() != 1 {
		t.Fatalf("Parse = %v %v", m, err)
	}
	if !m.Cables()[0].LandsIn("VE") {
		t.Error("landing codes should be upper-cased")
	}
}

// Property: CountryCount is monotone in year, and never exceeds the
// region total.
func TestQuickCountsMonotone(t *testing.T) {
	m := LatinAmerica()
	ccs := m.Countries()
	f := func(ci uint8, a, b uint8) bool {
		cc := ccs[int(ci)%len(ccs)]
		y1 := 1990 + int(a)%35
		y2 := y1 + int(b)%35
		c1, c2 := m.CountryCount(cc, y1), m.CountryCount(cc, y2)
		return c1 <= c2 && c2 <= m.RegionTotal(y2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
