package netsim

import (
	"math/rand"
	"sync"
	"testing"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// randomTopology builds a three-tier topology with rng-driven shape:
// a peered core, mid-tier transits multihomed to the core, and edges
// buying from the mid tier, with occasional mid-tier peering.
func randomTopology(rng *rand.Rand) *Topology {
	t := New()
	cities := []string{"MIA", "BOG", "GRU", "CCS", "SCL", "EZE", "MEX", "LIM"}
	locate := func(asn bgp.ASN) {
		if rng.Intn(4) > 0 { // some ASes stay unlocated
			c, _ := geo.LookupIATA(cities[rng.Intn(len(cities))])
			t.Locate(asn, c)
		}
	}
	core := []bgp.ASN{10, 11, 12}
	for i, a := range core {
		locate(a)
		for _, b := range core[i+1:] {
			t.AddLink(a, b, bgp.PeerPeer)
		}
	}
	var mids []bgp.ASN
	for i := 0; i < 6; i++ {
		m := bgp.ASN(100 + i)
		mids = append(mids, m)
		locate(m)
		t.AddLink(core[rng.Intn(len(core))], m, bgp.ProviderCustomer)
		if rng.Intn(2) == 0 {
			t.AddLink(core[rng.Intn(len(core))], m, bgp.ProviderCustomer)
		}
	}
	for i := 0; i < len(mids); i++ {
		for j := i + 1; j < len(mids); j++ {
			if rng.Intn(4) == 0 {
				t.AddLink(mids[i], mids[j], bgp.PeerPeer)
			}
		}
	}
	for i := 0; i < 12; i++ {
		e := bgp.ASN(1000 + i)
		locate(e)
		t.AddLink(mids[rng.Intn(len(mids))], e, bgp.ProviderCustomer)
	}
	return t
}

// TestDenseTreeMatchesASPath cross-checks the dense BFS against the
// reference map-based search over randomized topologies: reachability
// and hop counts must agree for every pair.
func TestDenseTreeMatchesASPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		top := randomTopology(rng)
		r := NewResolver(top)
		ases := top.Graph().ASes()
		for _, src := range ases {
			for _, dst := range ases {
				path, ok := top.ASPath(src, dst)
				info := r.PathInfoFrom(src, dst)
				if ok != info.OK {
					t.Fatalf("trial %d: %d→%d reachability: ASPath %v, dense %v", trial, src, dst, ok, info.OK)
				}
				if ok && len(path) != info.Hops {
					t.Fatalf("trial %d: %d→%d hops: ASPath %d, dense %d", trial, src, dst, len(path), info.Hops)
				}
			}
		}
	}
}

// TestDenseBestPathValid checks BestPath over randomized topologies:
// hop count matches PathInfo, endpoints are right, and every step uses
// an edge of the graph.
func TestDenseBestPathValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		top := randomTopology(rng)
		r := NewResolver(top)
		g := top.Graph()
		ases := g.ASes()
		for _, src := range ases {
			for _, dst := range ases {
				info := r.PathInfoFrom(src, dst)
				path, ok := r.BestPath(src, dst)
				if ok != info.OK {
					t.Fatalf("%d→%d: BestPath ok %v, PathInfo ok %v", src, dst, ok, info.OK)
				}
				if !ok {
					continue
				}
				if len(path) != info.Hops || path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("%d→%d: bad path %v for hops %d", src, dst, path, info.Hops)
				}
				for i := 1; i < len(path); i++ {
					a, b := path[i-1], path[i]
					linked := containsAS(g.Providers(a), b) || containsAS(g.Customers(a), b) || containsAS(g.Peers(a), b)
					if !linked {
						t.Fatalf("%d→%d: step %d→%d is not an edge", src, dst, a, b)
					}
				}
			}
		}
	}
}

func containsAS(xs []bgp.ASN, a bgp.ASN) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

// TestDenseInvalidation: mutating a topology after resolver queries must
// rebuild the interned view rather than serve stale adjacency.
func TestDenseInvalidation(t *testing.T) {
	top := New()
	top.AddLink(1, 2, bgp.ProviderCustomer)
	if info := (&Resolver{topo: top}).PathInfoFrom(2, 3); info.OK {
		t.Fatal("3 reachable before the link exists")
	}
	top.AddLink(1, 3, bgp.ProviderCustomer)
	r := NewResolver(top)
	info := r.PathInfoFrom(2, 3)
	if !info.OK || info.Hops != 3 {
		t.Fatalf("2→3 after mutation: %+v, want 3 hops via 1", info)
	}
}

// TestResolverConcurrentTrees hammers one resolver from many goroutines;
// meaningful under -race, and the answers must match a warm sequential
// baseline.
func TestResolverConcurrentTrees(t *testing.T) {
	top := randomTopology(rand.New(rand.NewSource(3)))
	ases := top.Graph().ASes()

	want := map[[2]bgp.ASN]PathInfo{}
	base := NewResolver(top)
	for _, src := range ases {
		for _, dst := range ases {
			want[[2]bgp.ASN{src, dst}] = base.PathInfoFrom(src, dst)
		}
	}

	r := NewResolver(top)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := range ases {
				src := ases[(i+k)%len(ases)]
				for _, dst := range ases {
					if got := r.PathInfoFrom(src, dst); got != want[[2]bgp.ASN{src, dst}] {
						t.Errorf("%d→%d: concurrent %+v, sequential %+v", src, dst, got, want[[2]bgp.ASN{src, dst}])
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
}

// TestTreeMapAdapter: the map-shaped adapter must agree with the slice
// core and omit unreachable ASes.
func TestTreeMapAdapter(t *testing.T) {
	top := testTopology()
	r := NewResolver(top)
	tree := r.Tree(401)
	for asn, info := range tree {
		if !info.OK {
			t.Errorf("adapter returned non-OK entry for %d", asn)
		}
		if got := r.PathInfoFrom(401, asn); got != info {
			t.Errorf("%d: adapter %+v, PathInfoFrom %+v", asn, info, got)
		}
	}
	if _, ok := tree[9999]; ok {
		t.Error("unknown AS present in adapter map")
	}
}
