package netsim

import (
	"fmt"
	"sort"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// This file implements counterfactual overlays: cheap copy-on-write
// views over a base Topology that add or remove individual links and
// relocate ASes without rebuilding — or even touching — the base. An
// overlay shares the base's graph, location table, and dense CSR
// arrays; only the rows an edit touches are materialized, so building
// one costs O(edits) allocations regardless of topology size. Overlays
// are the substrate of the scenario engine: "what if CANTV had kept
// its upstreams?" is one overlay per monthly snapshot, not one graph
// rebuild per month.

// EditOp enumerates the overlay edit kinds.
type EditOp uint8

const (
	// EditAddLink inserts a relationship edge A→B (provider→customer
	// for bgp.ProviderCustomer, symmetric for bgp.PeerPeer). The link
	// must not already exist.
	EditAddLink EditOp = iota
	// EditRemoveLink deletes an existing relationship edge A→B.
	EditRemoveLink
	// EditRelocate moves AS A to City. At most one relocation per AS
	// per overlay.
	EditRelocate
)

// String names the op for error messages.
func (op EditOp) String() string {
	switch op {
	case EditAddLink:
		return "add-link"
	case EditRemoveLink:
		return "remove-link"
	case EditRelocate:
		return "relocate"
	}
	return fmt.Sprintf("edit(%d)", uint8(op))
}

// Edit is one declarative overlay edit.
type Edit struct {
	Op   EditOp
	A, B bgp.ASN     // link endpoints; A is the provider for ProviderCustomer
	Kind bgp.RelKind // link kind for EditAddLink / EditRemoveLink
	City geo.City    // target city for EditRelocate
}

// String renders the edit for error messages.
func (e Edit) String() string {
	switch e.Op {
	case EditRelocate:
		return fmt.Sprintf("relocate AS%d to %s", e.A, e.City.Name)
	default:
		rel := "p2c"
		if e.Kind == bgp.PeerPeer {
			rel = "p2p"
		}
		return fmt.Sprintf("%s AS%d-AS%d (%s)", e.Op, e.A, e.B, rel)
	}
}

// Inverse returns the edit that undoes e. origCity must be the city A
// occupied before a relocation (the zero City when A had none).
func (e Edit) Inverse(origCity geo.City) Edit {
	switch e.Op {
	case EditAddLink:
		return Edit{Op: EditRemoveLink, A: e.A, B: e.B, Kind: e.Kind}
	case EditRemoveLink:
		return Edit{Op: EditAddLink, A: e.A, B: e.B, Kind: e.Kind}
	default:
		return Edit{Op: EditRelocate, A: e.A, City: origCity}
	}
}

// adjDelta is the copy-on-write adjacency delta for one direction
// (providers-of, customers-of, or peers-of): neighbors added to and
// removed from the base lists, per AS. Lists stay sorted and disjoint.
type adjDelta struct {
	add map[bgp.ASN][]bgp.ASN
	rem map[bgp.ASN][]bgp.ASN
}

func newAdjDelta() adjDelta {
	return adjDelta{add: map[bgp.ASN][]bgp.ASN{}, rem: map[bgp.ASN][]bgp.ASN{}}
}

// insert adds b to the delta for a: a pending removal is cancelled,
// otherwise b joins the sorted add list.
func (d adjDelta) insert(a, b bgp.ASN) {
	if removeSorted(d.rem, a, b) {
		return
	}
	d.add[a] = insertSorted(d.add[a], b)
}

// drop removes b from the delta for a: a pending addition is
// cancelled, otherwise b joins the sorted removal list.
func (d adjDelta) drop(a, b bgp.ASN) {
	if removeSorted(d.add, a, b) {
		return
	}
	d.rem[a] = insertSorted(d.rem[a], b)
}

// merged applies the delta for a to the (sorted) base neighbor list.
// With an empty delta the base list is returned as-is.
func (d adjDelta) merged(a bgp.ASN, base []bgp.ASN) []bgp.ASN {
	add, rem := d.add[a], d.rem[a]
	if len(add) == 0 && len(rem) == 0 {
		return base
	}
	out := make([]bgp.ASN, 0, len(base)+len(add))
	for _, x := range base {
		if !hasASN(rem, x) {
			out = append(out, x)
		}
	}
	for _, x := range add {
		out = insertSorted(out, x)
	}
	return out
}

func hasASN(xs []bgp.ASN, a bgp.ASN) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

func insertSorted(xs []bgp.ASN, a bgp.ASN) []bgp.ASN {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= a })
	if i < len(xs) && xs[i] == a {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = a
	return xs
}

// removeSorted deletes b from m[a], reporting whether it was present.
func removeSorted(m map[bgp.ASN][]bgp.ASN, a, b bgp.ASN) bool {
	xs := m[a]
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= b })
	if i >= len(xs) || xs[i] != b {
		return false
	}
	m[a] = append(xs[:i], xs[i+1:]...)
	if len(m[a]) == 0 {
		delete(m, a)
	}
	return true
}

// Overlay returns a copy-on-write view of t with edits applied. The
// base is never modified and stays usable; the view shares its graph,
// location table, and dense arrays. Edits are strict so that overlays
// compose and invert cleanly: adding a link that already exists,
// removing one that doesn't, referencing an AS the base has never
// seen, or relocating the same AS twice is an error. Overlays are
// immutable (AddLink and Locate panic) but can themselves be overlaid;
// mutating the base afterwards invalidates every derived dense view
// through the generation counter.
func (t *Topology) Overlay(edits []Edit) (*Topology, error) {
	o := &Topology{
		base:        t,
		prov:        newAdjDelta(),
		cust:        newAdjDelta(),
		peer:        newAdjDelta(),
		locOverride: map[bgp.ASN]geo.City{},
	}
	for _, e := range edits {
		if err := o.applyEdit(e); err != nil {
			return nil, err
		}
	}
	o.edits = append([]Edit(nil), edits...)
	return o, nil
}

// Base returns the topology this overlay view derives from, or nil for
// a base topology.
func (t *Topology) Base() *Topology { return t.base }

// Edits returns the overlay's edit list (nil for a base topology).
// Callers must not mutate the returned slice.
func (t *Topology) Edits() []Edit { return t.edits }

// applyEdit validates e against the current view (base plus earlier
// edits) and folds it into the deltas.
func (o *Topology) applyEdit(e Edit) error {
	switch e.Op {
	case EditAddLink, EditRemoveLink:
		if e.Kind != bgp.ProviderCustomer && e.Kind != bgp.PeerPeer {
			return fmt.Errorf("netsim: %s: unknown relationship kind %d", e, e.Kind)
		}
		if e.A == e.B {
			return fmt.Errorf("netsim: %s: self-loop", e)
		}
		for _, asn := range []bgp.ASN{e.A, e.B} {
			if !o.HasAS(asn) {
				return fmt.Errorf("netsim: %s: AS%d not in topology", e, asn)
			}
		}
		if e.Op == EditAddLink {
			if o.HasLink(e.A, e.B, e.Kind) {
				return fmt.Errorf("netsim: %s: link already present", e)
			}
			o.addRel(e.A, e.B, e.Kind)
			return nil
		}
		if !o.HasLink(e.A, e.B, e.Kind) {
			return fmt.Errorf("netsim: %s: link not present", e)
		}
		o.removeRel(e.A, e.B, e.Kind)
		return nil
	case EditRelocate:
		if !o.HasAS(e.A) {
			return fmt.Errorf("netsim: %s: AS%d not in topology", e, e.A)
		}
		if _, dup := o.locOverride[e.A]; dup {
			return fmt.Errorf("netsim: %s: AS%d already relocated in this overlay", e, e.A)
		}
		o.locOverride[e.A] = e.City
		return nil
	default:
		return fmt.Errorf("netsim: unknown edit op %v", e.Op)
	}
}

func (o *Topology) addRel(a, b bgp.ASN, kind bgp.RelKind) {
	if kind == bgp.ProviderCustomer {
		o.cust.insert(a, b)
		o.prov.insert(b, a)
		return
	}
	o.peer.insert(a, b)
	o.peer.insert(b, a)
}

func (o *Topology) removeRel(a, b bgp.ASN, kind bgp.RelKind) {
	if kind == bgp.ProviderCustomer {
		o.cust.drop(a, b)
		o.prov.drop(b, a)
		return
	}
	o.peer.drop(a, b)
	o.peer.drop(b, a)
}

// providersOf returns the effective sorted provider list of asn in
// this view (base topologies read the graph directly).
func (t *Topology) providersOf(asn bgp.ASN) []bgp.ASN {
	if t.base == nil {
		return t.graph.Providers(asn)
	}
	return t.prov.merged(asn, t.base.providersOf(asn))
}

// customersOf is providersOf for the customer direction.
func (t *Topology) customersOf(asn bgp.ASN) []bgp.ASN {
	if t.base == nil {
		return t.graph.Customers(asn)
	}
	return t.cust.merged(asn, t.base.customersOf(asn))
}

// peersOf is providersOf for peer edges.
func (t *Topology) peersOf(asn bgp.ASN) []bgp.ASN {
	if t.base == nil {
		return t.graph.Peers(asn)
	}
	return t.peer.merged(asn, t.base.peersOf(asn))
}

// ProvidersOf returns the effective sorted provider list of asn in
// this view, overlay edits included. Unlike Graph().Providers — which
// reads the base graph and therefore misses edits — this answers for
// the view itself; scenario compilation walks it when stripping an
// AS's upstreams. The returned slice may share storage with internal
// state and must not be modified.
func (t *Topology) ProvidersOf(asn bgp.ASN) []bgp.ASN { return t.providersOf(asn) }

// CustomersOf is ProvidersOf for the customer direction.
func (t *Topology) CustomersOf(asn bgp.ASN) []bgp.ASN { return t.customersOf(asn) }

// PeersOf is ProvidersOf for peer edges.
func (t *Topology) PeersOf(asn bgp.ASN) []bgp.ASN { return t.peersOf(asn) }

// HasAS reports whether asn exists in the topology (it appears in the
// relationship graph or carries a location). Overlays never introduce
// new ASes, so the answer is the base's.
func (t *Topology) HasAS(asn bgp.ASN) bool {
	if t.base != nil {
		return t.base.HasAS(asn)
	}
	_, ok := t.dense().index[asn]
	return ok
}

// HasLink reports whether the relationship edge a→b (provider→customer
// or peer) exists in this view, overlay edits included.
func (t *Topology) HasLink(a, b bgp.ASN, kind bgp.RelKind) bool {
	if kind == bgp.PeerPeer {
		return hasASN(t.peersOf(a), b)
	}
	return hasASN(t.customersOf(a), b)
}
