package netsim

import (
	"testing"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

func TestResolverPathInfoMatchesASPath(t *testing.T) {
	top := testTopology()
	r := NewResolver(top)
	for _, src := range top.Graph().ASes() {
		for _, dst := range top.Graph().ASes() {
			path, ok := top.ASPath(src, dst)
			info := r.PathInfoFrom(src, dst)
			if ok != info.OK {
				t.Fatalf("%d→%d: reachability mismatch (%v vs %v)", src, dst, ok, info.OK)
			}
			if ok && info.Hops != len(path) {
				t.Errorf("%d→%d: hops = %d, path len = %d", src, dst, info.Hops, len(path))
			}
		}
	}
}

func TestResolverSelfPath(t *testing.T) {
	r := NewResolver(testTopology())
	info := r.PathInfoFrom(201, 201)
	if !info.OK || info.Hops != 1 || info.LatencyMs != 0 {
		t.Errorf("self path = %+v", info)
	}
}

func TestResolverUnreachable(t *testing.T) {
	top := New()
	top.AddLink(1, 2, bgp.ProviderCustomer)
	r := NewResolver(top)
	if info := r.PathInfoFrom(2, 99); info.OK {
		t.Errorf("unreachable dst = %+v", info)
	}
}

func TestCatchmentFromOwnASWins(t *testing.T) {
	top := testTopology()
	r := NewResolver(top)
	bog, _ := geo.LookupIATA("BOG")
	mia, _ := geo.LookupIATA("MIA")
	sites := []Site{
		{Host: 100, City: mia},
		{Host: 201, City: bog}, // hosted inside the source AS itself
	}
	site, lat, err := r.CatchmentFrom(201, bog, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	if site.Host != 201 {
		t.Errorf("caught by %d, want own AS 201", site.Host)
	}
	if lat != 0 {
		t.Errorf("same-city own-AS latency = %v, want 0", lat)
	}
}

func TestCatchmentFromAccountsForProbeCity(t *testing.T) {
	top := testTopology()
	r := NewResolver(top)
	bog, _ := geo.LookupIATA("BOG")
	mde, _ := geo.LookupIATA("MDE") // probe city differs from AS location
	sites := []Site{{Host: 200, City: bog}}
	_, latFromBog, err := r.CatchmentFrom(201, bog, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	_, latFromMde, err := r.CatchmentFrom(201, mde, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	if latFromMde <= latFromBog {
		t.Errorf("remote probe latency %.2f should exceed capital probe latency %.2f", latFromMde, latFromBog)
	}
}

func TestCatchmentFromVenezuelaShape(t *testing.T) {
	// The Figure 12/20 mechanism: a Venezuelan eyeball homed to a US
	// transit reaches the Miami replica; one homed to Colombia reaches
	// Bogota at a fraction of the latency.
	top := testTopology()
	ccs, _ := geo.LookupIATA("CCS")
	sci, _ := geo.LookupIATA("SCI")
	// Border AS 402 buys from Colombian transit.
	top.AddLink(200, 402, bgp.ProviderCustomer)
	top.Locate(402, sci)
	r := NewResolver(top)
	bog, _ := geo.LookupIATA("BOG")
	mia, _ := geo.LookupIATA("MIA")
	sites := []Site{{Host: 100, City: mia}, {Host: 200, City: bog}}

	_, latCANTV, err := r.CatchmentFrom(401, ccs, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	siteBorder, latBorder, err := r.CatchmentFrom(402, sci, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	if siteBorder.City.Name != "Bogota" {
		t.Errorf("border AS caught by %s, want Bogota", siteBorder.City.Name)
	}
	if latBorder >= latCANTV/2 {
		t.Errorf("border latency %.1f should be well under Caracas latency %.1f", latBorder, latCANTV)
	}
	if latBorder > 6 {
		t.Errorf("border one-way latency = %.1f ms, want just a few ms", latBorder)
	}
}

func TestBestPathMatchesPathInfo(t *testing.T) {
	top := testTopology()
	r := NewResolver(top)
	for _, src := range top.Graph().ASes() {
		for _, dst := range top.Graph().ASes() {
			info := r.PathInfoFrom(src, dst)
			path, ok := r.BestPath(src, dst)
			if info.OK != ok {
				t.Fatalf("%d→%d: reachability mismatch", src, dst)
			}
			if !ok {
				continue
			}
			if len(path) != info.Hops {
				t.Errorf("%d→%d: BestPath len %d, PathInfo hops %d", src, dst, len(path), info.Hops)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Errorf("%d→%d: endpoints %v", src, dst, path)
			}
			if lat := top.PathLatencyMs(path); info.Hops > 1 && absDiff(lat, info.LatencyMs) > 1e-6 {
				t.Errorf("%d→%d: path latency %.3f, tree latency %.3f", src, dst, lat, info.LatencyMs)
			}
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
