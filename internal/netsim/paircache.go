package netsim

import "vzlens/internal/geo"

// PairCache memoizes great-circle distances by raw coordinate pair.
// Catchment selection recomputes HaversineKm for the same few hundred
// (probe city, site city) and (AS city, site city) pairs on every
// probe-month, and profiling puts that trigonometry at ~40% of a full
// campaign; caching the distance — not the derived delay — keeps every
// downstream value bit-identical, because PropagationDelayMs is pure
// arithmetic on the cached number.
//
// The zero value is ready to use. A nil *PairCache degrades to direct
// computation, so call sites don't branch. Not safe for concurrent
// use; the campaign kernels keep one per arena.
type PairCache struct {
	m map[[4]float64]float64
}

// DistKm returns geo.HaversineKm(aLat, aLon, bLat, bLon), memoized.
func (pc *PairCache) DistKm(aLat, aLon, bLat, bLon float64) float64 {
	if pc == nil {
		return geo.HaversineKm(aLat, aLon, bLat, bLon)
	}
	k := [4]float64{aLat, aLon, bLat, bLon}
	if v, ok := pc.m[k]; ok {
		return v
	}
	v := geo.HaversineKm(aLat, aLon, bLat, bLon)
	if pc.m == nil {
		pc.m = make(map[[4]float64]float64, 256)
	}
	pc.m[k] = v
	return v
}
