package netsim

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// denseTopo is the cache-friendly index-based view of a Topology: every
// ASN interned to a dense int32 index, adjacency flattened into CSR
// arrays, and locations in parallel coordinate slices. The valley-free
// BFS runs entirely over these arrays, so a full single-source tree
// costs a handful of slice allocations instead of a map per level.
type denseTopo struct {
	asns  []bgp.ASN         // index → ASN, ascending
	index map[bgp.ASN]int32 // ASN → index

	// CSR adjacency: the providers of AS i are
	// provAdj[provOff[i]:provOff[i+1]], sorted by index (equivalently by
	// ASN). Likewise for peers and customers.
	provOff, provAdj []int32
	peerOff, peerAdj []int32
	custOff, custAdj []int32

	hasLoc         []bool
	locLat, locLon []float64

	// Overlay patches: when a row appears in a patch map, it replaces
	// the CSR slice for that AS. Base builds leave the maps nil, so the
	// accessors stay a bounds-checked slice on the hot path. Patch rows
	// are immutable once the view is built — derived overlays clone a
	// row before changing it.
	provPatch map[int32][]int32
	peerPatch map[int32][]int32
	custPatch map[int32][]int32

	// edgeDelay memoizes the propagation delay of each CSR edge slot
	// (provider slots first, then peer slots from peerSlotBase, then
	// customer slots from custSlotBase) as math.Float64bits, filled
	// lazily by the BFS. Haversine dominates tree-build CPU, and the
	// delay of a located→located edge is a pure function of the two
	// endpoints' coordinates, so the cached bits are exactly what the
	// direct computation produces. Entries hold delayUnset until
	// computed; access is atomic (concurrent fills recompute the same
	// value, so lost races are harmless). Overlays share the cache —
	// patched rows carry no slot and bypass it — except relocation
	// overlays, which nil it out because coordinates changed.
	edgeDelay    []uint64
	peerSlotBase int32
	custSlotBase int32
}

// delayUnset marks an edgeDelay slot as not yet computed. The bit
// pattern is a NaN, which no real propagation delay produces.
const delayUnset = ^uint64(0)

// buildDense interns every AS that appears in the graph or carries a
// location and flattens the adjacency. Index order follows ASN order, so
// the sorted neighbor lists of bgp.Graph stay sorted after translation.
func buildDense(t *Topology) *denseTopo {
	if m := met.Load(); m != nil {
		m.denseBuilds.Inc()
	}
	seen := map[bgp.ASN]bool{}
	for _, a := range t.graph.ASes() {
		seen[a] = true
	}
	for a := range t.location {
		seen[a] = true
	}
	asns := make([]bgp.ASN, 0, len(seen))
	for a := range seen {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	n := len(asns)
	d := &denseTopo{
		asns:   asns,
		index:  make(map[bgp.ASN]int32, n),
		hasLoc: make([]bool, n),
		locLat: make([]float64, n),
		locLon: make([]float64, n),
	}
	for i, a := range asns {
		d.index[a] = int32(i)
		if c, ok := t.location[a]; ok {
			d.hasLoc[i] = true
			d.locLat[i] = c.Lat
			d.locLon[i] = c.Lon
		}
	}
	// Rows are gathered through the graph's append accessors into one
	// scratch buffer and sorted in place: the per-AS sorted copies of
	// Providers/Customers/Peers would otherwise dominate the build's
	// allocation count.
	var buf []bgp.ASN
	fill := func(degree func(bgp.ASN) int, appendRow func([]bgp.ASN, bgp.ASN) []bgp.ASN) (off, adj []int32) {
		off = make([]int32, n+1)
		for i, a := range asns {
			off[i+1] = off[i] + int32(degree(a))
		}
		adj = make([]int32, off[n])
		for i, a := range asns {
			buf = appendRow(buf[:0], a)
			sortASNRow(buf)
			k := off[i]
			for _, b := range buf {
				adj[k] = d.index[b]
				k++
			}
		}
		return off, adj
	}
	provDeg := func(a bgp.ASN) int { p, _, _ := t.graph.Degree(a); return p }
	custDeg := func(a bgp.ASN) int { _, c, _ := t.graph.Degree(a); return c }
	peerDeg := func(a bgp.ASN) int { _, _, p := t.graph.Degree(a); return p }
	d.provOff, d.provAdj = fill(provDeg, t.graph.AppendProviders)
	d.peerOff, d.peerAdj = fill(peerDeg, t.graph.AppendPeers)
	d.custOff, d.custAdj = fill(custDeg, t.graph.AppendCustomers)

	d.peerSlotBase = int32(len(d.provAdj))
	d.custSlotBase = d.peerSlotBase + int32(len(d.peerAdj))
	d.edgeDelay = make([]uint64, len(d.provAdj)+len(d.peerAdj)+len(d.custAdj))
	for i := range d.edgeDelay {
		d.edgeDelay[i] = delayUnset
	}
	return d
}

// sortASNRow sorts a small adjacency row ascending by ASN (insertion
// sort: rows are short and this path must not allocate).
func sortASNRow(row []bgp.ASN) {
	for i := 1; i < len(row); i++ {
		for j := i; j > 0 && row[j] < row[j-1]; j-- {
			row[j], row[j-1] = row[j-1], row[j]
		}
	}
}

func (d *denseTopo) providers(i int32) []int32 {
	if d.provPatch != nil {
		if row, ok := d.provPatch[i]; ok {
			return row
		}
	}
	return d.provAdj[d.provOff[i]:d.provOff[i+1]]
}

func (d *denseTopo) peers(i int32) []int32 {
	if d.peerPatch != nil {
		if row, ok := d.peerPatch[i]; ok {
			return row
		}
	}
	return d.peerAdj[d.peerOff[i]:d.peerOff[i+1]]
}

func (d *denseTopo) customers(i int32) []int32 {
	if d.custPatch != nil {
		if row, ok := d.custPatch[i]; ok {
			return row
		}
	}
	return d.custAdj[d.custOff[i]:d.custOff[i+1]]
}

// providersRow returns AS i's provider row plus the edgeDelay slot of
// its first element, or -1 when the row carries no cache slots (a
// patched row, or a view whose delay cache is disabled).
func (d *denseTopo) providersRow(i int32) ([]int32, int32) {
	if d.provPatch != nil {
		if row, ok := d.provPatch[i]; ok {
			return row, -1
		}
	}
	lo := d.provOff[i]
	if d.edgeDelay == nil {
		return d.provAdj[lo:d.provOff[i+1]], -1
	}
	return d.provAdj[lo:d.provOff[i+1]], lo
}

// peersRow is providersRow for peer edges.
func (d *denseTopo) peersRow(i int32) ([]int32, int32) {
	if d.peerPatch != nil {
		if row, ok := d.peerPatch[i]; ok {
			return row, -1
		}
	}
	lo := d.peerOff[i]
	if d.edgeDelay == nil {
		return d.peerAdj[lo:d.peerOff[i+1]], -1
	}
	return d.peerAdj[lo:d.peerOff[i+1]], d.peerSlotBase + lo
}

// customersRow is providersRow for customer edges.
func (d *denseTopo) customersRow(i int32) ([]int32, int32) {
	if d.custPatch != nil {
		if row, ok := d.custPatch[i]; ok {
			return row, -1
		}
	}
	lo := d.custOff[i]
	if d.edgeDelay == nil {
		return d.custAdj[lo:d.custOff[i+1]], -1
	}
	return d.custAdj[lo:d.custOff[i+1]], d.custSlotBase + lo
}

// buildOverlayDense derives the dense view of an overlay from its
// base's dense view. Everything is shared — the interning, the CSR
// arrays, the location slices — except the rows the overlay's edits
// touch, which are materialized into patch maps, and the location
// slices when the overlay relocates an AS. The build therefore costs
// O(edits) allocations regardless of topology size; this is what makes
// a per-month scenario overlay cheaper than rebuilding the month.
func buildOverlayDense(d0 *denseTopo, o *Topology) *denseTopo {
	if m := met.Load(); m != nil {
		m.overlayBuilds.Inc()
	}
	d := *d0 // share asns, index, CSR arrays, location slices
	d.provPatch = clonePatch(d0.provPatch)
	d.peerPatch = clonePatch(d0.peerPatch)
	d.custPatch = clonePatch(d0.custPatch)

	patch := func(p map[int32][]int32, row func(int32) []int32, i, v int32, add bool) {
		cur := row(i)
		if add {
			p[i] = insertSortedIdx(cur, v)
		} else {
			p[i] = removeIdx(cur, v)
		}
	}
	apply := func(p map[int32][]int32, row func(int32) []int32, delta adjDelta) {
		for a, bs := range delta.add {
			for _, b := range bs {
				patch(p, row, d.index[a], d.index[b], true)
			}
		}
		for a, bs := range delta.rem {
			for _, b := range bs {
				patch(p, row, d.index[a], d.index[b], false)
			}
		}
	}
	apply(d.provPatch, d.providers, o.prov)
	apply(d.custPatch, d.customers, o.cust)
	apply(d.peerPatch, d.peers, o.peer)

	if len(o.locOverride) > 0 {
		// Relocations invalidate cached edge delays for this view (and
		// any view derived from it): coordinates changed, so fall back
		// to direct computation.
		d.edgeDelay = nil
		d.hasLoc = append([]bool(nil), d0.hasLoc...)
		d.locLat = append([]float64(nil), d0.locLat...)
		d.locLon = append([]float64(nil), d0.locLon...)
		for asn, c := range o.locOverride {
			i := d.index[asn]
			if c == (geo.City{}) {
				d.hasLoc[i] = false
				d.locLat[i], d.locLon[i] = 0, 0
				continue
			}
			d.hasLoc[i] = true
			d.locLat[i], d.locLon[i] = c.Lat, c.Lon
		}
	}
	return &d
}

// clonePatch copies a patch map (rows stay shared; they are immutable).
func clonePatch(p map[int32][]int32) map[int32][]int32 {
	out := make(map[int32][]int32, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// insertSortedIdx returns a fresh sorted row with v inserted. The input
// row is never modified: it may be a shared CSR slice or a parent
// overlay's patch row.
func insertSortedIdx(row []int32, v int32) []int32 {
	out := make([]int32, 0, len(row)+1)
	placed := false
	for _, x := range row {
		if !placed && v < x {
			out = append(out, v)
			placed = true
		}
		if x == v {
			placed = true // already present (Overlay validation prevents this)
		}
		out = append(out, x)
	}
	if !placed {
		out = append(out, v)
	}
	return out
}

// removeIdx returns a fresh row with v filtered out.
func removeIdx(row []int32, v int32) []int32 {
	out := make([]int32, 0, len(row))
	for _, x := range row {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// BFS states are packed as asIndex*3 + phase, so per-state bookkeeping
// lives in flat arrays indexed by the packed value.
const numPhases = 3

// scratch holds the reusable per-traversal buffers. Epoch stamping makes
// reuse O(1): a slot is valid only when its stamp equals the current
// epoch, so nothing is cleared between traversals.
type scratch struct {
	lat      []float64 // tentative/settled latency per state
	locIdx   []int32   // dense index of the last located AS on the path, -1 none
	parent   []int32   // predecessor state (BestPath only)
	settled  []uint32  // epoch stamp: state settled
	inNext   []uint32  // epoch stamp: state already in the next frontier
	frontier []int32
	next     []int32
	epoch    uint32
}

// scratchPool recycles traversal buffers across resolvers and goroutines;
// buffers grow to the largest topology seen and are reused as-is for
// smaller ones.
var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// getScratch returns a scratch with capacity for nStates states and a
// fresh epoch.
func getScratch(nStates int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if len(sc.settled) < nStates {
		if m := met.Load(); m != nil {
			m.scratchGrow.Inc()
		}
		sc.lat = make([]float64, nStates)
		sc.locIdx = make([]int32, nStates)
		sc.parent = make([]int32, nStates)
		sc.settled = make([]uint32, nStates)
		sc.inNext = make([]uint32, nStates)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // stamp wraparound: invalidate everything once
		for i := range sc.settled {
			sc.settled[i] = 0
			sc.inNext[i] = 0
		}
		sc.epoch = 1
	}
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// expand pushes the valley-free transitions of state cur into the next
// frontier, keeping the minimum-latency arrival per state. It returns the
// updated frontier slice.
func (d *denseTopo) expand(sc *scratch, next []int32, cur int32, withParents bool) []int32 {
	const perHopMs = 0.35
	asIdx := cur / numPhases
	ph := phase(cur % numPhases)
	curLat := sc.lat[cur]
	curLoc := sc.locIdx[cur]

	visit := func(nbrIdx int32, nph phase, slot int32) []int32 {
		ns := nbrIdx*numPhases + int32(nph)
		if sc.settled[ns] == sc.epoch {
			return next
		}
		lat := curLat + perHopMs
		loc := curLoc
		if d.hasLoc[nbrIdx] {
			if loc >= 0 {
				// The edge cache is keyed by CSR slot, which identifies
				// the (asIdx, nbrIdx) endpoint pair; it applies only
				// when the path's last located AS is the edge's own
				// tail (loc == asIdx), i.e. when the cached coordinates
				// match this traversal's.
				if slot >= 0 && loc == asIdx {
					if bits := atomic.LoadUint64(&d.edgeDelay[slot]); bits != delayUnset {
						lat += math.Float64frombits(bits)
					} else {
						delay := geo.PropagationDelayMs(geo.HaversineKm(
							d.locLat[loc], d.locLon[loc], d.locLat[nbrIdx], d.locLon[nbrIdx]))
						atomic.StoreUint64(&d.edgeDelay[slot], math.Float64bits(delay))
						lat += delay
					}
				} else {
					lat += geo.PropagationDelayMs(geo.HaversineKm(
						d.locLat[loc], d.locLon[loc], d.locLat[nbrIdx], d.locLon[nbrIdx]))
				}
			}
			loc = nbrIdx
		}
		if sc.inNext[ns] != sc.epoch {
			sc.inNext[ns] = sc.epoch
			sc.lat[ns] = lat
			sc.locIdx[ns] = loc
			if withParents {
				sc.parent[ns] = cur
			}
			return append(next, ns)
		}
		if lat < sc.lat[ns] {
			sc.lat[ns] = lat
			sc.locIdx[ns] = loc
			if withParents {
				sc.parent[ns] = cur
			}
		}
		return next
	}

	slotted := func(slot0 int32, k int) int32 {
		if slot0 < 0 {
			return -1
		}
		return slot0 + int32(k)
	}

	switch ph {
	case phaseUp:
		row, slot0 := d.providersRow(asIdx)
		for k, p := range row {
			next = visit(p, phaseUp, slotted(slot0, k))
		}
		row, slot0 = d.peersRow(asIdx)
		for k, p := range row {
			next = visit(p, phasePeer, slotted(slot0, k))
		}
		row, slot0 = d.customersRow(asIdx)
		for k, c := range row {
			next = visit(c, phaseDown, slotted(slot0, k))
		}
	default: // phasePeer, phaseDown: only customer edges remain
		row, slot0 := d.customersRow(asIdx)
		for k, c := range row {
			next = visit(c, phaseDown, slotted(slot0, k))
		}
	}
	return next
}

// startState seeds the traversal buffers with the source state and
// returns it.
func (d *denseTopo) startState(sc *scratch, srcIdx int32) int32 {
	start := srcIdx*numPhases + int32(phaseUp)
	sc.settled[start] = sc.epoch
	sc.lat[start] = 0
	sc.locIdx[start] = -1
	if d.hasLoc[srcIdx] {
		sc.locIdx[start] = srcIdx
	}
	return start
}

// buildTree runs one valley-free BFS from srcIdx, level by level,
// recording for every AS the fewest-hop arrival and — among equal-hop
// arrivals — the minimum accumulated latency, matching BGP's
// shortest-path-first with latency-aware tie-breaking. The result is
// indexed by dense AS index.
func (d *denseTopo) buildTree(srcIdx int32) []PathInfo {
	if m := met.Load(); m != nil {
		m.treeBFS.Inc()
	}
	n := len(d.asns)
	tree := make([]PathInfo, n)
	tree[srcIdx] = PathInfo{Hops: 1, LatencyMs: 0, OK: true}

	sc := getScratch(n * numPhases)
	defer putScratch(sc)
	frontier := append(sc.frontier[:0], d.startState(sc, srcIdx))
	next := sc.next[:0]
	hops := 1
	for len(frontier) > 0 {
		hops++
		next = next[:0]
		for _, cur := range frontier {
			next = d.expand(sc, next, cur, false)
		}
		for _, ns := range next {
			sc.settled[ns] = sc.epoch
			ai := ns / numPhases
			if !tree[ai].OK {
				tree[ai] = PathInfo{Hops: hops, LatencyMs: sc.lat[ns], OK: true}
			} else if tree[ai].Hops == hops && sc.lat[ns] < tree[ai].LatencyMs {
				tree[ai].LatencyMs = sc.lat[ns]
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next // return grown buffers to the pool
	return tree
}

// bestPath re-runs the leveled BFS with parent pointers and reconstructs
// the fewest-hop, minimum-latency path from srcIdx to dstIdx.
func (d *denseTopo) bestPath(srcIdx, dstIdx int32) ([]bgp.ASN, bool) {
	if m := met.Load(); m != nil {
		m.pathBFS.Inc()
	}
	n := len(d.asns)
	sc := getScratch(n * numPhases)
	defer putScratch(sc)
	start := d.startState(sc, srcIdx)
	sc.parent[start] = -1
	frontier := append(sc.frontier[:0], start)
	next := sc.next[:0]
	best := int32(-1)
	for len(frontier) > 0 && best < 0 {
		next = next[:0]
		for _, cur := range frontier {
			next = d.expand(sc, next, cur, true)
		}
		for _, ns := range next {
			sc.settled[ns] = sc.epoch
			if ns/numPhases == dstIdx && (best < 0 || sc.lat[ns] < sc.lat[best]) {
				best = ns
			}
		}
		frontier, next = next, frontier
	}
	if best < 0 {
		sc.frontier, sc.next = frontier, next
		return nil, false
	}
	var rev []int32
	for s := best; s >= 0; s = sc.parent[s] {
		rev = append(rev, s/numPhases)
	}
	path := make([]bgp.ASN, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, d.asns[rev[i]])
	}
	sc.frontier, sc.next = frontier, next
	return path, true
}
