package netsim

import (
	"sync/atomic"

	"vzlens/internal/obs"
)

// metrics holds the package's observability counters. All fields are
// nil-safe obs counters, so the un-instrumented hot path pays one
// atomic pointer load and a nil check per BFS — nothing per state.
type metrics struct {
	denseBuilds   *obs.Counter
	overlayBuilds *obs.Counter
	treeBFS       *obs.Counter
	treeMemoHit   *obs.Counter
	pathBFS       *obs.Counter
	scratchGrow   *obs.Counter
}

// met is swapped atomically so InstrumentMetrics is safe to call while
// simulations are running (it still belongs at startup).
var met atomic.Pointer[metrics]

// InstrumentMetrics registers the valley-free engine's counters on reg:
// dense topology interns, single-source tree BFS runs vs memoized tree
// hits, best-path BFS runs, and scratch-buffer growths (a proxy for the
// allocation behavior the dense engine exists to avoid).
func InstrumentMetrics(reg *obs.Registry) {
	m := &metrics{
		denseBuilds: reg.Counter("vz_netsim_dense_builds_total",
			"Topologies interned into the dense CSR form."),
		overlayBuilds: reg.Counter("vz_netsim_overlay_builds_total",
			"Dense overlay views derived by patching a base build."),
		treeBFS: reg.Counter("vz_netsim_tree_bfs_total",
			"Single-source valley-free BFS traversals executed."),
		treeMemoHit: reg.Counter("vz_netsim_tree_memo_hits_total",
			"Catchment lookups served from a memoized source tree."),
		pathBFS: reg.Counter("vz_netsim_path_bfs_total",
			"Best-path BFS traversals (parent-pointer variant) executed."),
		scratchGrow: reg.Counter("vz_netsim_scratch_grows_total",
			"Pooled scratch buffers (re)allocated for a larger topology."),
	}
	met.Store(m)
}
