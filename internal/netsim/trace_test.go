package netsim

import (
	"strings"
	"testing"

	"vzlens/internal/geo"
)

func TestTraceVenezuelanPath(t *testing.T) {
	top := testTopology()
	ccs, _ := geo.LookupIATA("CCS")
	mia, _ := geo.LookupIATA("MIA")
	hops, err := top.Trace(401, ccs, Site{Host: 100, City: mia})
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) < 2 {
		t.Fatalf("hops = %v", hops)
	}
	if hops[0].ASN != 401 || hops[0].City != "Caracas" {
		t.Errorf("first hop = %+v", hops[0])
	}
	last := hops[len(hops)-1]
	if last.ASN != 100 || last.City != "Miami" {
		t.Errorf("last hop = %+v", last)
	}
	// Cumulative latency is monotone.
	for i := 1; i < len(hops); i++ {
		if hops[i].CumulativeMs < hops[i-1].CumulativeMs {
			t.Fatalf("latency decreases at hop %d: %v", i, hops)
		}
	}
	// Caracas to Miami should accumulate ~15-25 ms one way.
	if last.CumulativeMs < 10 || last.CumulativeMs > 30 {
		t.Errorf("end-to-end = %.1f ms", last.CumulativeMs)
	}
}

func TestTraceReplicaCityExtension(t *testing.T) {
	top := testTopology()
	bog, _ := geo.LookupIATA("BOG")
	mde, _ := geo.LookupIATA("MDE")
	// Site hosted by the Colombian transit (located Bogota) but the
	// replica sits in Medellin: an extra hop appears.
	hops, err := top.Trace(201, bog, Site{Host: 200, City: mde})
	if err != nil {
		t.Fatal(err)
	}
	last := hops[len(hops)-1]
	if last.City != "Medellin" {
		t.Errorf("last hop = %+v, want Medellin", last)
	}
}

func TestTraceUnreachable(t *testing.T) {
	top := testTopology()
	bog, _ := geo.LookupIATA("BOG")
	if _, err := top.Trace(401, bog, Site{Host: 9999, City: bog}); err != ErrUnreachable {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestFormatTrace(t *testing.T) {
	out := FormatTrace([]Hop{
		{ASN: 8048, City: "Caracas", CumulativeMs: 0.3},
		{ASN: 6762, City: "Miami", CumulativeMs: 17.0},
	})
	if !strings.Contains(out, "AS8048") || !strings.Contains(out, "34.0 ms") {
		t.Errorf("FormatTrace = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "1") {
		t.Errorf("lines = %v", lines)
	}
}
