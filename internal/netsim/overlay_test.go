package netsim

import (
	"math/rand"
	"testing"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// viewLinks enumerates every relationship edge visible in a topology
// view (overlay edits included): p2c edges as (provider, customer),
// p2p edges once with A < B.
func viewLinks(t *Topology) (p2c, p2p [][2]bgp.ASN) {
	for _, a := range t.Graph().ASes() {
		for _, b := range t.customersOf(a) {
			p2c = append(p2c, [2]bgp.ASN{a, b})
		}
		for _, b := range t.peersOf(a) {
			if a < b {
				p2p = append(p2p, [2]bgp.ASN{a, b})
			}
		}
	}
	return p2c, p2p
}

// randomEdits grows a random valid edit list against top: additions of
// absent links, removals of present ones, relocations (occasionally to
// the zero City, which clears a location). Each prefix of the returned
// list is itself a valid overlay.
func randomEdits(t *testing.T, rng *rand.Rand, top *Topology, n int) []Edit {
	t.Helper()
	ases := top.Graph().ASes()
	cities := []string{"MIA", "BOG", "GRU", "CCS", "SCL"}
	var edits []Edit
	view := top
	for len(edits) < n {
		var e Edit
		switch rng.Intn(3) {
		case 0: // add a link absent from the current view
			a, b := ases[rng.Intn(len(ases))], ases[rng.Intn(len(ases))]
			kind := bgp.RelKind(bgp.ProviderCustomer)
			if rng.Intn(2) == 0 {
				kind = bgp.PeerPeer
			}
			if a == b || view.HasLink(a, b, kind) {
				continue
			}
			e = Edit{Op: EditAddLink, A: a, B: b, Kind: kind}
		case 1: // remove a link present in the current view
			p2c, p2p := viewLinks(view)
			if len(p2c)+len(p2p) == 0 {
				continue
			}
			if i := rng.Intn(len(p2c) + len(p2p)); i < len(p2c) {
				e = Edit{Op: EditRemoveLink, A: p2c[i][0], B: p2c[i][1], Kind: bgp.ProviderCustomer}
			} else {
				l := p2p[i-len(p2c)]
				e = Edit{Op: EditRemoveLink, A: l[0], B: l[1], Kind: bgp.PeerPeer}
			}
		default: // relocate an AS not yet moved by this edit list
			a := ases[rng.Intn(len(ases))]
			moved := false
			for _, prev := range edits {
				if prev.Op == EditRelocate && prev.A == a {
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			var c geo.City
			if rng.Intn(4) > 0 {
				c, _ = geo.LookupIATA(cities[rng.Intn(len(cities))])
			}
			e = Edit{Op: EditRelocate, A: a, City: c}
		}
		next, err := top.Overlay(append(append([]Edit(nil), edits...), e))
		if err != nil {
			t.Fatalf("generated invalid edit %s: %v", e, err)
		}
		edits = append(edits, e)
		view = next
	}
	return edits
}

// sameView asserts two topology views are observationally identical:
// same path info for every pair, same location for every AS.
func sameView(t *testing.T, trial int, want, got *Topology) {
	t.Helper()
	rw, rg := NewResolver(want), NewResolver(got)
	for _, src := range want.Graph().ASes() {
		wc, wok := want.Location(src)
		gc, gok := got.Location(src)
		if wok != gok || wc != gc {
			t.Fatalf("trial %d: AS%d location: want %v/%v, got %v/%v", trial, src, wc, wok, gc, gok)
		}
		for _, dst := range want.Graph().ASes() {
			wi, gi := rw.PathInfoFrom(src, dst), rg.PathInfoFrom(src, dst)
			if wi != gi {
				t.Fatalf("trial %d: %d→%d: want %+v, got %+v", trial, src, dst, wi, gi)
			}
		}
	}
}

// TestOverlayApplyRevertIdentity is the inversion property: applying an
// edit list and then its inverses (in reverse order, with original
// locations) on top yields a view byte-identical to the baseline —
// and the baseline itself is never disturbed.
func TestOverlayApplyRevertIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		top := randomTopology(rng)
		edits := randomEdits(t, rng, top, 1+rng.Intn(7))

		// Record original locations before anything is applied.
		orig := map[bgp.ASN]geo.City{}
		for _, e := range edits {
			if e.Op == EditRelocate {
				if c, ok := top.Location(e.A); ok {
					orig[e.A] = c
				}
			}
		}
		over, err := top.Overlay(edits)
		if err != nil {
			t.Fatalf("trial %d: overlay: %v", trial, err)
		}
		inverses := make([]Edit, 0, len(edits))
		for i := len(edits) - 1; i >= 0; i-- {
			inverses = append(inverses, edits[i].Inverse(orig[edits[i].A]))
		}
		reverted, err := over.Overlay(inverses)
		if err != nil {
			t.Fatalf("trial %d: revert overlay: %v", trial, err)
		}
		sameView(t, trial, top, reverted)
	}
}

// TestOverlayDenseMatchesRebuild is the oracle property: the patched
// dense view of base+edits must agree everywhere with a from-scratch
// topology built by replaying the base's links and the edits through
// the ordinary mutable API.
func TestOverlayDenseMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		top := randomTopology(rng)
		edits := randomEdits(t, rng, top, 1+rng.Intn(7))
		over, err := top.Overlay(edits)
		if err != nil {
			t.Fatalf("trial %d: overlay: %v", trial, err)
		}

		// Oracle: replay base links and edits into a fresh topology.
		rebuilt := New()
		p2c, p2p := viewLinks(over)
		for _, l := range p2c {
			rebuilt.AddLink(l[0], l[1], bgp.ProviderCustomer)
		}
		for _, l := range p2p {
			rebuilt.AddLink(l[0], l[1], bgp.PeerPeer)
		}
		for _, asn := range top.Graph().ASes() {
			if c, ok := over.Location(asn); ok {
				rebuilt.Locate(asn, c)
			}
		}
		// The rebuilt graph may drop ASes that lost their every edge;
		// compare over the surviving AS set.
		rv, ov := NewResolver(rebuilt), NewResolver(over)
		for _, src := range rebuilt.Graph().ASes() {
			for _, dst := range rebuilt.Graph().ASes() {
				ri, oi := rv.PathInfoFrom(src, dst), ov.PathInfoFrom(src, dst)
				if ri != oi {
					t.Fatalf("trial %d: %d→%d: rebuilt %+v, overlay %+v", trial, src, dst, ri, oi)
				}
			}
		}
	}
}

// TestOverlayPathsValleyFree: every concrete best path served from an
// overlayed dense view must respect valley-free export rules — after a
// peer or down step, only down steps may follow.
func TestOverlayPathsValleyFree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		top := randomTopology(rng)
		over, err := top.Overlay(randomEdits(t, rng, top, 1+rng.Intn(7)))
		if err != nil {
			t.Fatalf("trial %d: overlay: %v", trial, err)
		}
		r := NewResolver(over)
		ases := top.Graph().ASes()
		for _, src := range ases {
			for _, dst := range ases {
				path, ok := r.BestPath(src, dst)
				if !ok {
					continue
				}
				// A pair may carry both a p2c and a p2p edge (random
				// edits can stack them), so a step can classify as
				// both "up" and "peer". Simulate the dominant state:
				// while an all-up prefix is possible the path may
				// still do anything; once no up reading remains, only
				// down steps are legal.
				canAscend := true
				for i := 1; i < len(path); i++ {
					a, b := path[i-1], path[i]
					up := hasASN(over.providersOf(a), b)
					peer := hasASN(over.peersOf(a), b)
					down := hasASN(over.customersOf(a), b)
					if !up && !peer && !down {
						t.Fatalf("trial %d: %v step %d→%d is not an edge of the overlay", trial, path, a, b)
					}
					if !canAscend && !down {
						t.Fatalf("trial %d: path %v violates valley-free at %d→%d", trial, path, a, b)
					}
					canAscend = canAscend && up
				}
			}
		}
	}
}

// TestOverlayStrictEdits pins the error cases that make overlays
// invertible: double-adds, phantom removals, unknown ASes, self-loops,
// and double relocations are all rejected.
func TestOverlayStrictEdits(t *testing.T) {
	top := New()
	top.AddLink(1, 2, bgp.ProviderCustomer)
	top.AddLink(2, 3, bgp.PeerPeer)
	ccs, _ := geo.LookupIATA("CCS")

	cases := []struct {
		name  string
		edits []Edit
	}{
		{"add existing link", []Edit{{Op: EditAddLink, A: 1, B: 2, Kind: bgp.ProviderCustomer}}},
		{"remove absent link", []Edit{{Op: EditRemoveLink, A: 1, B: 3, Kind: bgp.ProviderCustomer}}},
		{"remove wrong kind", []Edit{{Op: EditRemoveLink, A: 2, B: 3, Kind: bgp.ProviderCustomer}}},
		{"self loop", []Edit{{Op: EditAddLink, A: 1, B: 1, Kind: bgp.PeerPeer}}},
		{"unknown AS", []Edit{{Op: EditAddLink, A: 1, B: 99, Kind: bgp.PeerPeer}}},
		{"relocate unknown AS", []Edit{{Op: EditRelocate, A: 99, City: ccs}}},
		{"double relocate", []Edit{
			{Op: EditRelocate, A: 1, City: ccs},
			{Op: EditRelocate, A: 1, City: geo.City{}},
		}},
		{"add then duplicate add", []Edit{
			{Op: EditAddLink, A: 1, B: 3, Kind: bgp.PeerPeer},
			{Op: EditAddLink, A: 3, B: 1, Kind: bgp.PeerPeer},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := top.Overlay(tc.edits); err == nil {
				t.Fatalf("overlay accepted %v", tc.edits)
			}
		})
	}

	// Valid compositions of the same primitives still work.
	if _, err := top.Overlay([]Edit{
		{Op: EditRemoveLink, A: 2, B: 3, Kind: bgp.PeerPeer},
		{Op: EditAddLink, A: 2, B: 3, Kind: bgp.ProviderCustomer},
		{Op: EditRelocate, A: 1, City: ccs},
	}); err != nil {
		t.Fatalf("valid overlay rejected: %v", err)
	}
}

// TestOverlayImmutable: overlays reject in-place mutation — the
// copy-on-write sharing would silently corrupt the base otherwise.
func TestOverlayImmutable(t *testing.T) {
	top := New()
	top.AddLink(1, 2, bgp.ProviderCustomer)
	over, err := top.Overlay(nil)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on an overlay did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("AddLink", func() { over.AddLink(1, 3, bgp.PeerPeer) })
	assertPanics("Locate", func() { over.Locate(1, geo.City{}) })
}
