package netsim

import (
	"fmt"
	"strings"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// Hop is one traceroute step: the AS entered, where it interconnects,
// and the cumulative one-way latency at that point.
type Hop struct {
	ASN          bgp.ASN
	City         string
	CumulativeMs float64
}

// Trace expands the valley-free path from a source (AS plus physical
// city) toward an anycast site into per-hop latencies — the hop list a
// traceroute from a probe would show. The final hop is the replica city.
// The path is the plain shortest valley-free path; for the minimum-
// latency path the campaign RTTs are computed over, use Resolver.Trace.
func (t *Topology) Trace(srcAS bgp.ASN, srcCity geo.City, site Site) ([]Hop, error) {
	path, ok := t.ASPath(srcAS, site.Host)
	if !ok {
		return nil, ErrUnreachable
	}
	return t.traceAlong(path, srcCity, site)
}

// Trace expands the minimum-latency shortest path (the one catchment
// latencies follow) into per-hop latencies.
func (r *Resolver) Trace(srcAS bgp.ASN, srcCity geo.City, site Site) ([]Hop, error) {
	path, ok := r.BestPath(srcAS, site.Host)
	if !ok {
		return nil, ErrUnreachable
	}
	return r.topo.traceAlong(path, srcCity, site)
}

// traceAlong accumulates per-hop latency over a concrete AS path.
func (t *Topology) traceAlong(path []bgp.ASN, srcCity geo.City, site Site) ([]Hop, error) {
	const perHopMs = 0.35
	var hops []Hop
	cum := 0.0
	prev := srcCity
	for i, asn := range path {
		city, located := t.Location(asn)
		if i == 0 {
			// First hop: the probe's own gateway at its city.
			hops = append(hops, Hop{ASN: asn, City: srcCity.Name, CumulativeMs: 0.3})
			cum = 0.3
			if located {
				// Carrying traffic to the AS's interconnection city.
				cum += geo.PropagationDelayMs(geo.HaversineKm(srcCity.Lat, srcCity.Lon, city.Lat, city.Lon))
				prev = city
			}
			continue
		}
		cum += perHopMs
		name := "?"
		if located {
			cum += geo.PropagationDelayMs(geo.HaversineKm(prev.Lat, prev.Lon, city.Lat, city.Lon))
			prev = city
			name = city.Name
		}
		hops = append(hops, Hop{ASN: asn, City: name, CumulativeMs: cum})
	}
	// Final segment to the replica city when it differs from the host's
	// interconnection point.
	cum += geo.PropagationDelayMs(geo.HaversineKm(prev.Lat, prev.Lon, site.City.Lat, site.City.Lon))
	last := hops[len(hops)-1]
	if site.City.Name != last.City {
		hops = append(hops, Hop{ASN: site.Host, City: site.City.Name, CumulativeMs: cum})
	} else {
		hops[len(hops)-1].CumulativeMs = cum
	}
	return hops, nil
}

// FormatTrace renders hops in traceroute style, with RTTs (2x the
// cumulative one-way latency).
func FormatTrace(hops []Hop) string {
	var b strings.Builder
	for i, h := range hops {
		fmt.Fprintf(&b, "%2d  AS%-8d %-16s %.1f ms\n", i+1, h.ASN, h.City, 2*h.CumulativeMs)
	}
	return b.String()
}
