// Package netsim simulates interdomain paths and latencies over an
// AS-level topology. It provides the substrate under the paper's two
// active-measurement campaigns: RIPE Atlas traceroutes toward Google
// Public DNS (Section 7.2) and CHAOS TXT queries toward anycast root DNS
// (Section 5.4). Routes follow valley-free BGP semantics (customer routes
// preferred, then peer, then provider; shortest AS path within a class),
// and latency accrues from great-circle propagation between the cities of
// consecutive ASes on the path.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// Topology is an AS-level graph annotated with AS locations. A
// Topology is either a base (graph and location populated) or an
// overlay view created by Overlay (base and deltas populated); the
// query API is identical for both.
type Topology struct {
	graph    *bgp.Graph
	location map[bgp.ASN]geo.City

	// Overlay views: the base topology, the edit list that produced the
	// view, the copy-on-write adjacency deltas, and relocated ASes.
	base        *Topology
	edits       []Edit
	prov        adjDelta // providers-of deltas
	cust        adjDelta // customers-of deltas
	peer        adjDelta // peers-of deltas
	locOverride map[bgp.ASN]geo.City

	// gen counts mutations of this topology. An overlay's effective
	// generation sums the chain down to the base, so a dense view (or a
	// resolver tree) built over any view in the chain can detect that
	// an ancestor changed underneath it.
	gen atomic.Uint64

	// denseV is the interned index-based view the resolver traversals
	// run over, built lazily on first use and invalidated by mutation
	// anywhere in the base chain (denseGen records the generation it
	// was built at).
	denseMu  sync.Mutex
	denseV   *denseTopo
	denseGen uint64
}

// New returns an empty Topology.
func New() *Topology {
	return &Topology{graph: bgp.NewGraph(), location: map[bgp.ASN]geo.City{}}
}

// FromGraph builds a topology over an existing relationship graph.
func FromGraph(g *bgp.Graph) *Topology {
	return &Topology{graph: g, location: map[bgp.ASN]geo.City{}}
}

// AddLink inserts a relationship edge (provider→customer or peer).
// Overlay views are immutable; AddLink panics on one (build a new
// Overlay instead).
func (t *Topology) AddLink(a, b bgp.ASN, kind bgp.RelKind) {
	if t.base != nil {
		panic("netsim: AddLink on an overlay view; overlays are immutable, build a new Overlay")
	}
	t.invalidateDense()
	t.graph.AddRel(bgp.Rel{A: a, B: b, Kind: kind})
}

// Locate records the primary interconnection city of an AS. Overlay
// views are immutable; Locate panics on one (use an EditRelocate).
func (t *Topology) Locate(asn bgp.ASN, city geo.City) {
	if t.base != nil {
		panic("netsim: Locate on an overlay view; overlays are immutable, use EditRelocate")
	}
	t.invalidateDense()
	t.location[asn] = city
}

// invalidateDense drops the interned view after a mutation and bumps
// the generation so overlay views derived from this topology rebuild
// their own dense caches on next use.
func (t *Topology) invalidateDense() {
	t.gen.Add(1)
	t.denseMu.Lock()
	t.denseV = nil
	t.denseMu.Unlock()
}

// generation is the mutation counter of this view's whole base chain.
// Dense views and resolver trees record it at build time and rebuild
// when it moves.
func (t *Topology) generation() uint64 {
	g := t.gen.Load()
	for b := t.base; b != nil; b = b.base {
		g += b.gen.Load()
	}
	return g
}

// dense returns the interned index-based view, building it on first
// use and rebuilding when the base chain has mutated since. The view
// is immutable once built and safe to share across goroutines.
func (t *Topology) dense() *denseTopo {
	gen := t.generation()
	t.denseMu.Lock()
	defer t.denseMu.Unlock()
	if t.denseV == nil || t.denseGen != gen {
		if t.base != nil {
			t.denseV = buildOverlayDense(t.base.dense(), t)
		} else {
			t.denseV = buildDense(t)
		}
		t.denseGen = gen
	}
	return t.denseV
}

// Location returns the recorded city of asn, honoring overlay
// relocations.
func (t *Topology) Location(asn bgp.ASN) (geo.City, bool) {
	if t.base != nil {
		if c, ok := t.locOverride[asn]; ok {
			return c, c != (geo.City{})
		}
		return t.base.Location(asn)
	}
	c, ok := t.location[asn]
	return c, ok
}

// Graph exposes the underlying relationship graph. For an overlay view
// this is the base graph: overlay edits live in copy-on-write deltas
// and are never materialized back into a bgp.Graph. Callers that need
// the effective adjacency should query the topology (HasLink, ASPath,
// a Resolver), not the graph.
func (t *Topology) Graph() *bgp.Graph {
	if t.base != nil {
		return t.base.Graph()
	}
	return t.graph
}

// routing phases for valley-free search. A path travels "up" through
// providers, crosses at most one peer edge, then travels "down" through
// customers.
type phase int8

const (
	phaseUp phase = iota
	phasePeer
	phaseDown
)

type state struct {
	asn bgp.ASN
	ph  phase
}

// ASPath returns a shortest valley-free AS path from src to dst and true,
// or nil and false when no policy-compliant path exists. The path includes
// both endpoints.
func (t *Topology) ASPath(src, dst bgp.ASN) ([]bgp.ASN, bool) {
	if src == dst {
		return []bgp.ASN{src}, true
	}
	start := state{src, phaseUp}
	prev := map[state]state{start: start}
	queue := []state{start}
	var goal *state
	for len(queue) > 0 && goal == nil {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range t.transitions(cur) {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next.asn == dst {
				g := next
				goal = &g
				break
			}
			queue = append(queue, next)
		}
	}
	if goal == nil {
		return nil, false
	}
	var rev []bgp.ASN
	for s := *goal; ; s = prev[s] {
		rev = append(rev, s.asn)
		if s == prev[s] {
			break
		}
	}
	path := make([]bgp.ASN, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path, true
}

// transitions enumerates the valley-free moves from a state, in
// deterministic order.
func (t *Topology) transitions(s state) []state {
	var out []state
	switch s.ph {
	case phaseUp:
		for _, p := range t.providersOf(s.asn) {
			out = append(out, state{p, phaseUp})
		}
		for _, p := range t.peersOf(s.asn) {
			out = append(out, state{p, phasePeer})
		}
		for _, c := range t.customersOf(s.asn) {
			out = append(out, state{c, phaseDown})
		}
	case phasePeer, phaseDown:
		for _, c := range t.customersOf(s.asn) {
			out = append(out, state{c, phaseDown})
		}
	}
	return out
}

// PathLatencyMs returns the one-way propagation latency along an AS path,
// from the cities of consecutive ASes, plus a fixed per-hop processing
// cost. ASes without a recorded location contribute no distance.
func (t *Topology) PathLatencyMs(path []bgp.ASN) float64 {
	const perHopMs = 0.35
	total := float64(len(path)-1) * perHopMs
	if total < 0 {
		return 0
	}
	var prevCity *geo.City
	for _, asn := range path {
		c, ok := t.Location(asn)
		if !ok {
			continue
		}
		if prevCity != nil {
			total += geo.PropagationDelayMs(geo.HaversineKm(prevCity.Lat, prevCity.Lon, c.Lat, c.Lon))
		}
		cc := c
		prevCity = &cc
	}
	return total
}

// Site is one anycast replica: the AS announcing the service prefix at a
// location.
type Site struct {
	Host bgp.ASN
	City geo.City
}

// ErrUnreachable is returned when no site is reachable from a source AS.
var ErrUnreachable = fmt.Errorf("netsim: no reachable anycast site")

// CatchmentPolicy selects which reachable anycast site captures a source.
type CatchmentPolicy int

const (
	// PolicyBGP picks the shortest AS path, breaking ties by latency —
	// how anycast actually routes.
	PolicyBGP CatchmentPolicy = iota
	// PolicyGeo picks the geographically nearest reachable site — the
	// naive baseline the ablation benchmarks compare against.
	PolicyGeo
)

// Catchment returns the anycast site that captures traffic from src under
// the policy, together with the one-way path latency to it.
func (t *Topology) Catchment(src bgp.ASN, sites []Site, policy CatchmentPolicy) (Site, float64, error) {
	type candidate struct {
		site    Site
		hops    int
		latency float64
		distKm  float64
	}
	var cands []candidate
	srcCity, hasSrcCity := t.Location(src)
	for _, site := range sites {
		path, ok := t.ASPath(src, site.Host)
		if !ok {
			continue
		}
		lat := t.PathLatencyMs(path)
		// The final segment runs from the host AS's recorded city to the
		// replica city.
		if hostCity, ok := t.Location(site.Host); ok {
			lat += geo.PropagationDelayMs(geo.HaversineKm(hostCity.Lat, hostCity.Lon, site.City.Lat, site.City.Lon))
		}
		dist := 0.0
		if hasSrcCity {
			dist = geo.HaversineKm(srcCity.Lat, srcCity.Lon, site.City.Lat, site.City.Lon)
		}
		cands = append(cands, candidate{site, len(path), lat, dist})
	}
	if len(cands) == 0 {
		return Site{}, 0, ErrUnreachable
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		switch policy {
		case PolicyGeo:
			if a.distKm != b.distKm {
				return a.distKm < b.distKm
			}
		default:
			if a.hops != b.hops {
				return a.hops < b.hops
			}
			if a.latency != b.latency {
				return a.latency < b.latency
			}
		}
		// Stable final tiebreak.
		if a.site.Host != b.site.Host {
			return a.site.Host < b.site.Host
		}
		return a.site.City.Name < b.site.City.Name
	})
	best := cands[0]
	return best.site, best.latency, nil
}

// RTT converts a one-way latency into a round-trip sample, adding last-
// mile access delay and random queueing jitter drawn from rng. accessMs
// models the probe's access technology (a few ms on fiber, tens on
// congested DSL).
func RTT(oneWayMs, accessMs float64, rng *rand.Rand) float64 {
	jitter := rng.ExpFloat64() * 2.0 // congestion tail
	return 2*(oneWayMs+accessMs) + jitter
}
