package netsim

import (
	"sync"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// PathInfo summarizes a valley-free path to one destination.
type PathInfo struct {
	Hops      int     // AS-path length including both endpoints
	LatencyMs float64 // one-way propagation along the path
	OK        bool
}

// Resolver wraps a Topology with per-source shortest-path trees so that
// repeated catchment computations (one per probe per anycast service per
// month) run off a single breadth-first traversal per source AS. Trees
// are computed over the topology's dense index-based view ([]PathInfo
// indexed by interned AS, not maps) with pooled scratch buffers, so a
// traversal allocates only its result slice. It is safe for concurrent
// use: campaign simulations triggered by concurrent API requests share
// the per-month resolvers.
type Resolver struct {
	topo *Topology

	mu    sync.Mutex
	d     *denseTopo
	trees [][]PathInfo // by source dense index; nil until built
}

// NewResolver returns a Resolver over topo.
func NewResolver(topo *Topology) *Resolver {
	return &Resolver{topo: topo}
}

// Topology returns the underlying topology.
func (r *Resolver) Topology() *Topology { return r.topo }

// treeFor returns the memoized single-source tree for src (indexed by
// dense AS index) and the dense view it is defined over, building both
// under the resolver lock on first use. The tree is nil when src is
// unknown to the topology. Trees are immutable once built; a topology
// mutation (anywhere in an overlay's base chain) produces a new dense
// view, which drops every memoized tree here — the resolver never
// serves adjacency from before the mutation.
func (r *Resolver) treeFor(src bgp.ASN) ([]PathInfo, *denseTopo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.topo.dense(); d != r.d {
		r.d = d
		r.trees = make([][]PathInfo, len(r.d.asns))
	}
	si, ok := r.d.index[src]
	if !ok {
		return nil, r.d
	}
	if r.trees[si] == nil {
		r.trees[si] = r.d.buildTree(si)
	} else if m := met.Load(); m != nil {
		m.treeMemoHit.Inc()
	}
	return r.trees[si], r.d
}

// PathInfoFrom returns shortest valley-free path information from src to
// dst, memoizing the full single-source tree on first use.
func (r *Resolver) PathInfoFrom(src, dst bgp.ASN) PathInfo {
	if src == dst {
		return PathInfo{Hops: 1, LatencyMs: 0, OK: true}
	}
	tree, d := r.treeFor(src)
	if tree == nil {
		return PathInfo{}
	}
	di, ok := d.index[dst]
	if !ok {
		return PathInfo{}
	}
	return tree[di]
}

// Tree returns the full single-source tree for src as an ASN-keyed map —
// the pre-dense-index API shape, kept as a thin adapter for inspection
// and tests. Bulk callers should prefer PathInfoFrom, which avoids
// materializing the map.
func (r *Resolver) Tree(src bgp.ASN) map[bgp.ASN]PathInfo {
	tree, d := r.treeFor(src)
	out := map[bgp.ASN]PathInfo{}
	if tree == nil {
		return out
	}
	for i, info := range tree {
		if info.OK {
			out[d.asns[i]] = info
		}
	}
	return out
}

// BestPath reconstructs the concrete AS path behind PathInfoFrom's
// answer: fewest hops, minimum latency among equal-hop paths — the path
// the campaign latencies are computed over. It re-runs the leveled BFS
// with parent pointers, so it costs one traversal per call; use it for
// hop-level inspection (traceroutes), not bulk catchment.
func (r *Resolver) BestPath(src, dst bgp.ASN) ([]bgp.ASN, bool) {
	if src == dst {
		return []bgp.ASN{src}, true
	}
	d := r.topo.dense()
	si, ok := d.index[src]
	if !ok {
		return nil, false
	}
	di, ok := d.index[dst]
	if !ok {
		return nil, false
	}
	return d.bestPath(si, di)
}

// CatchmentFrom selects the anycast site capturing traffic from a source
// in AS srcAS physically located at srcCity, and returns the one-way
// latency from that location. Unlike Topology.Catchment it accounts for
// the source's position inside its AS: the first segment runs from
// srcCity to the AS's interconnection city (and collapses to the direct
// city-to-replica distance when the source AS itself hosts the site).
func (r *Resolver) CatchmentFrom(srcAS bgp.ASN, srcCity geo.City, sites []Site, policy CatchmentPolicy) (Site, float64, error) {
	i, lat, err := r.CatchmentIndex(srcAS, srcCity, sites, policy)
	if err != nil {
		return Site{}, 0, err
	}
	return sites[i], lat, nil
}

// catchCand is one reachable site under consideration by CatchmentIndex.
type catchCand struct {
	index   int
	site    Site
	hops    int
	latency float64
	distKm  float64
}

// better reports whether a beats b under the policy's preference order —
// the comparison the pre-rewrite sort used, applied as a single-pass
// minimum so site selection allocates nothing.
func (a catchCand) better(b catchCand, policy CatchmentPolicy) bool {
	switch policy {
	case PolicyGeo:
		if a.distKm != b.distKm {
			return a.distKm < b.distKm
		}
	default:
		if a.hops != b.hops {
			return a.hops < b.hops
		}
		if a.latency != b.latency {
			return a.latency < b.latency
		}
	}
	// Stable final tiebreak.
	if a.site.Host != b.site.Host {
		return a.site.Host < b.site.Host
	}
	return a.site.City.Name < b.site.City.Name
}

// CatchmentIndex is CatchmentFrom returning the index of the selected
// site within sites, for callers that keep metadata parallel to the site
// list.
func (r *Resolver) CatchmentIndex(srcAS bgp.ASN, srcCity geo.City, sites []Site, policy CatchmentPolicy) (int, float64, error) {
	return r.CatchmentIndexCached(srcAS, srcCity, sites, policy, nil)
}

// CatchmentIndexCached is CatchmentIndex with an optional PairCache
// memoizing the great-circle distances the selection recomputes per
// probe (a nil cache means direct computation). The campaign kernels
// pass a per-arena cache: the same few hundred city pairs recur across
// every probe-month, and the cached distance feeds the exact arithmetic
// the direct path uses, so results are bit-identical.
func (r *Resolver) CatchmentIndexCached(srcAS bgp.ASN, srcCity geo.City, sites []Site, policy CatchmentPolicy, pc *PairCache) (int, float64, error) {
	idx, lat, _, err := r.CatchmentInfoCached(srcAS, srcCity, sites, policy, pc)
	return idx, lat, err
}

// CatchmentInfoCached is CatchmentIndexCached additionally reporting
// the AS-path hop count of the selected site (1 when the source AS
// hosts it). The selection arithmetic is shared, so the index and
// latency are bit-identical to CatchmentIndexCached — the hop count is
// a free by-product the fact-emission path records per probe class.
func (r *Resolver) CatchmentInfoCached(srcAS bgp.ASN, srcCity geo.City, sites []Site, policy CatchmentPolicy, pc *PairCache) (int, float64, int, error) {
	var best catchCand
	found := false
	asCity, asCityOK := r.topo.Location(srcAS)
	for i, site := range sites {
		var hops int
		var lat float64
		if site.Host == srcAS {
			hops = 1
			lat = geo.PropagationDelayMs(pc.DistKm(srcCity.Lat, srcCity.Lon, site.City.Lat, site.City.Lon))
		} else {
			info := r.PathInfoFrom(srcAS, site.Host)
			if !info.OK {
				continue
			}
			hops = info.Hops
			lat = info.LatencyMs
			// First segment: the source's city to its AS's location.
			if asCityOK {
				lat += geo.PropagationDelayMs(pc.DistKm(srcCity.Lat, srcCity.Lon, asCity.Lat, asCity.Lon))
			}
			// Final segment: the host AS's location to the replica city.
			if hostCity, ok := r.topo.Location(site.Host); ok {
				lat += geo.PropagationDelayMs(pc.DistKm(hostCity.Lat, hostCity.Lon, site.City.Lat, site.City.Lon))
			}
		}
		cand := catchCand{
			index: i, site: site, hops: hops, latency: lat,
			distKm: pc.DistKm(srcCity.Lat, srcCity.Lon, site.City.Lat, site.City.Lon),
		}
		if !found || cand.better(best, policy) {
			best = cand
			found = true
		}
	}
	if !found {
		return 0, 0, 0, ErrUnreachable
	}
	return best.index, best.latency, best.hops, nil
}
