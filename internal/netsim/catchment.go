package netsim

import (
	"sort"
	"sync"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// PathInfo summarizes a valley-free path to one destination.
type PathInfo struct {
	Hops      int     // AS-path length including both endpoints
	LatencyMs float64 // one-way propagation along the path
	OK        bool
}

// Resolver wraps a Topology with per-source shortest-path trees so that
// repeated catchment computations (one per probe per anycast service per
// month) run off a single breadth-first traversal per source AS. It is
// safe for concurrent use: campaign simulations triggered by concurrent
// API requests share the per-month resolvers.
type Resolver struct {
	topo *Topology

	mu    sync.Mutex
	trees map[bgp.ASN]map[bgp.ASN]PathInfo
}

// NewResolver returns a Resolver over topo.
func NewResolver(topo *Topology) *Resolver {
	return &Resolver{topo: topo, trees: map[bgp.ASN]map[bgp.ASN]PathInfo{}}
}

// Topology returns the underlying topology.
func (r *Resolver) Topology() *Topology { return r.topo }

// treeFor returns the memoized single-source tree for src, building it
// under the resolver lock on first use. Trees are immutable once built.
func (r *Resolver) treeFor(src bgp.ASN) map[bgp.ASN]PathInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	tree, ok := r.trees[src]
	if !ok {
		tree = r.buildTree(src)
		r.trees[src] = tree
	}
	return tree
}

// PathInfoFrom returns shortest valley-free path information from src to
// dst, memoizing the full single-source tree on first use.
func (r *Resolver) PathInfoFrom(src, dst bgp.ASN) PathInfo {
	return r.treeFor(src)[dst]
}

// treeState augments the valley-free BFS state with the accumulated
// latency and the last located city on the path, so latency accrues
// correctly across ASes without recorded locations.
type treeState struct {
	st  state
	lat float64
	loc *geo.City
}

// buildTree runs one valley-free BFS from src, level by level, recording
// for every AS the fewest-hop arrival and — among equal-hop arrivals —
// the minimum accumulated latency, matching BGP's shortest-path-first
// with latency-aware tie-breaking.
func (r *Resolver) buildTree(src bgp.ASN) map[bgp.ASN]PathInfo {
	const perHopMs = 0.35
	tree := map[bgp.ASN]PathInfo{src: {Hops: 1, LatencyMs: 0, OK: true}}
	var srcLoc *geo.City
	if c, ok := r.topo.Location(src); ok {
		cc := c
		srcLoc = &cc
	}
	frontier := map[state]treeState{
		{src, phaseUp}: {st: state{src, phaseUp}, lat: 0, loc: srcLoc},
	}
	settled := map[state]bool{{src, phaseUp}: true}
	hops := 1
	for len(frontier) > 0 {
		hops++
		next := map[state]treeState{}
		for _, cur := range frontier {
			for _, ns := range r.topo.transitions(cur.st) {
				if settled[ns] {
					continue
				}
				lat := cur.lat + perHopMs
				loc := cur.loc
				if c, ok := r.topo.Location(ns.asn); ok {
					if loc != nil {
						lat += geo.PropagationDelayMs(geo.HaversineKm(loc.Lat, loc.Lon, c.Lat, c.Lon))
					}
					cc := c
					loc = &cc
				}
				if prev, ok := next[ns]; !ok || lat < prev.lat {
					next[ns] = treeState{st: ns, lat: lat, loc: loc}
				}
			}
		}
		for st, ts := range next {
			settled[st] = true
			if info, done := tree[st.asn]; !done || (info.Hops == hops && ts.lat < info.LatencyMs) {
				tree[st.asn] = PathInfo{Hops: hops, LatencyMs: ts.lat, OK: true}
			}
		}
		frontier = next
	}
	return tree
}

// BestPath reconstructs the concrete AS path behind PathInfoFrom's
// answer: fewest hops, minimum latency among equal-hop paths — the path
// the campaign latencies are computed over. It re-runs the leveled BFS
// with parent pointers, so it costs one traversal per call; use it for
// hop-level inspection (traceroutes), not bulk catchment.
func (r *Resolver) BestPath(src, dst bgp.ASN) ([]bgp.ASN, bool) {
	const perHopMs = 0.35
	if src == dst {
		return []bgp.ASN{src}, true
	}
	type node struct {
		ts     treeState
		parent *node
	}
	var srcLoc *geo.City
	if c, ok := r.topo.Location(src); ok {
		cc := c
		srcLoc = &cc
	}
	start := &node{ts: treeState{st: state{src, phaseUp}, lat: 0, loc: srcLoc}}
	frontier := map[state]*node{start.ts.st: start}
	settled := map[state]bool{start.ts.st: true}
	var best *node
	for len(frontier) > 0 && best == nil {
		next := map[state]*node{}
		for _, cur := range frontier {
			for _, ns := range r.topo.transitions(cur.ts.st) {
				if settled[ns] {
					continue
				}
				lat := cur.ts.lat + perHopMs
				loc := cur.ts.loc
				if c, ok := r.topo.Location(ns.asn); ok {
					if loc != nil {
						lat += geo.PropagationDelayMs(geo.HaversineKm(loc.Lat, loc.Lon, c.Lat, c.Lon))
					}
					cc := c
					loc = &cc
				}
				if prev, ok := next[ns]; !ok || lat < prev.ts.lat {
					next[ns] = &node{ts: treeState{st: ns, lat: lat, loc: loc}, parent: cur}
				}
			}
		}
		for st, n := range next {
			settled[st] = true
			if st.asn == dst && (best == nil || n.ts.lat < best.ts.lat) {
				best = n
			}
		}
		frontier = next
	}
	if best == nil {
		return nil, false
	}
	var rev []bgp.ASN
	for n := best; n != nil; n = n.parent {
		rev = append(rev, n.ts.st.asn)
	}
	path := make([]bgp.ASN, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path, true
}

// CatchmentFrom selects the anycast site capturing traffic from a source
// in AS srcAS physically located at srcCity, and returns the one-way
// latency from that location. Unlike Topology.Catchment it accounts for
// the source's position inside its AS: the first segment runs from
// srcCity to the AS's interconnection city (and collapses to the direct
// city-to-replica distance when the source AS itself hosts the site).
func (r *Resolver) CatchmentFrom(srcAS bgp.ASN, srcCity geo.City, sites []Site, policy CatchmentPolicy) (Site, float64, error) {
	i, lat, err := r.CatchmentIndex(srcAS, srcCity, sites, policy)
	if err != nil {
		return Site{}, 0, err
	}
	return sites[i], lat, nil
}

// CatchmentIndex is CatchmentFrom returning the index of the selected
// site within sites, for callers that keep metadata parallel to the site
// list.
func (r *Resolver) CatchmentIndex(srcAS bgp.ASN, srcCity geo.City, sites []Site, policy CatchmentPolicy) (int, float64, error) {
	type candidate struct {
		index   int
		site    Site
		hops    int
		latency float64
		distKm  float64
	}
	var cands []candidate
	for i, site := range sites {
		var hops int
		var lat float64
		if site.Host == srcAS {
			hops = 1
			lat = geo.PropagationDelayMs(geo.HaversineKm(srcCity.Lat, srcCity.Lon, site.City.Lat, site.City.Lon))
		} else {
			info := r.PathInfoFrom(srcAS, site.Host)
			if !info.OK {
				continue
			}
			hops = info.Hops
			lat = info.LatencyMs
			// First segment: the source's city to its AS's location.
			if asCity, ok := r.topo.Location(srcAS); ok {
				lat += geo.PropagationDelayMs(geo.HaversineKm(srcCity.Lat, srcCity.Lon, asCity.Lat, asCity.Lon))
			}
			// Final segment: the host AS's location to the replica city.
			if hostCity, ok := r.topo.Location(site.Host); ok {
				lat += geo.PropagationDelayMs(geo.HaversineKm(hostCity.Lat, hostCity.Lon, site.City.Lat, site.City.Lon))
			}
		}
		dist := geo.HaversineKm(srcCity.Lat, srcCity.Lon, site.City.Lat, site.City.Lon)
		cands = append(cands, candidate{i, site, hops, lat, dist})
	}
	if len(cands) == 0 {
		return 0, 0, ErrUnreachable
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		switch policy {
		case PolicyGeo:
			if a.distKm != b.distKm {
				return a.distKm < b.distKm
			}
		default:
			if a.hops != b.hops {
				return a.hops < b.hops
			}
			if a.latency != b.latency {
				return a.latency < b.latency
			}
		}
		if a.site.Host != b.site.Host {
			return a.site.Host < b.site.Host
		}
		return a.site.City.Name < b.site.City.Name
	})
	best := cands[0]
	return best.index, best.latency, nil
}
