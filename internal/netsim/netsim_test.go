package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// testTopology builds a small regional topology:
//
//	     TransitUS(100)
//	     /         \
//	TransitCO(200) TransitBR(300)
//	   |     \       |
//	EyeCO(201) \   EyeBR(301)
//	            EyeVE(401)
//
// EyeVE buys transit only from TransitUS; EyeCO and EyeBR buy locally.
// TransitCO and TransitBR peer.
func testTopology() *Topology {
	t := New()
	t.AddLink(100, 200, bgp.ProviderCustomer)
	t.AddLink(100, 300, bgp.ProviderCustomer)
	t.AddLink(200, 201, bgp.ProviderCustomer)
	t.AddLink(300, 301, bgp.ProviderCustomer)
	t.AddLink(100, 401, bgp.ProviderCustomer)
	t.AddLink(200, 300, bgp.PeerPeer)

	mia, _ := geo.LookupIATA("MIA")
	bog, _ := geo.LookupIATA("BOG")
	gru, _ := geo.LookupIATA("GRU")
	ccs, _ := geo.LookupIATA("CCS")
	t.Locate(100, mia)
	t.Locate(200, bog)
	t.Locate(201, bog)
	t.Locate(300, gru)
	t.Locate(301, gru)
	t.Locate(401, ccs)
	return t
}

func TestASPathDirect(t *testing.T) {
	top := testTopology()
	path, ok := top.ASPath(201, 200)
	if !ok || len(path) != 2 || path[0] != 201 || path[1] != 200 {
		t.Errorf("path = %v %v", path, ok)
	}
	self, ok := top.ASPath(201, 201)
	if !ok || len(self) != 1 {
		t.Errorf("self path = %v %v", self, ok)
	}
}

func TestASPathValleyFree(t *testing.T) {
	top := testTopology()
	// EyeCO to EyeBR: up to TransitCO, peer to TransitBR, down to EyeBR.
	path, ok := top.ASPath(201, 301)
	if !ok {
		t.Fatal("no path")
	}
	want := []bgp.ASN{201, 200, 300, 301}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestASPathNoValley(t *testing.T) {
	top := New()
	// Two customers of different providers that only connect via a peer
	// link between the customers' providers... but here providers do not
	// peer and have no common upstream: no valley-free path.
	top.AddLink(10, 11, bgp.ProviderCustomer)
	top.AddLink(20, 21, bgp.ProviderCustomer)
	if _, ok := top.ASPath(11, 21); ok {
		t.Error("disconnected graph should have no path")
	}
}

func TestASPathDoesNotTransitPeerTwice(t *testing.T) {
	top := New()
	// a -peer- b -peer- c: valley-free forbids two peer crossings.
	top.AddLink(1, 2, bgp.PeerPeer)
	top.AddLink(2, 3, bgp.PeerPeer)
	if _, ok := top.ASPath(1, 3); ok {
		t.Error("two peer hops should be rejected")
	}
	if path, ok := top.ASPath(1, 2); !ok || len(path) != 2 {
		t.Errorf("single peer hop = %v %v", path, ok)
	}
}

func TestASPathPrefersShort(t *testing.T) {
	top := New()
	top.AddLink(1, 2, bgp.ProviderCustomer) // 2's provider is 1
	top.AddLink(1, 3, bgp.ProviderCustomer)
	top.AddLink(3, 4, bgp.ProviderCustomer)
	top.AddLink(2, 4, bgp.ProviderCustomer) // 4 has two providers: 3 and 2
	path, ok := top.ASPath(4, 1)
	if !ok || len(path) != 3 {
		t.Errorf("path = %v, want length 3 (4→{2|3}→1)", path)
	}
}

func TestPathLatency(t *testing.T) {
	top := testTopology()
	path, _ := top.ASPath(401, 100) // Caracas → Miami
	lat := top.PathLatencyMs(path)
	// CCS-MIA ≈ 2,200 km ≈ 17 ms one-way with stretch + hop cost.
	if lat < 10 || lat > 30 {
		t.Errorf("CCS→MIA latency = %.1f ms, want 10-30", lat)
	}
	if top.PathLatencyMs(nil) != 0 {
		t.Error("empty path latency != 0")
	}
	if got := top.PathLatencyMs([]bgp.ASN{401}); got != 0 {
		t.Errorf("single-hop latency = %v, want 0", got)
	}
}

func TestCatchmentBGPPrefersLocalSite(t *testing.T) {
	top := testTopology()
	bog, _ := geo.LookupIATA("BOG")
	mia, _ := geo.LookupIATA("MIA")
	sites := []Site{
		{Host: 100, City: mia}, // US replica
		{Host: 200, City: bog}, // Colombian replica
	}
	// Colombian eyeball: direct provider hosts a replica → 2-hop path wins.
	site, lat, err := top.Catchment(201, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	if site.Host != 200 {
		t.Errorf("CO eyeball caught by %d, want local 200", site.Host)
	}
	if lat > 5 {
		t.Errorf("local catchment latency = %.1f ms, want small", lat)
	}
	// Venezuelan eyeball: only reaches via TransitUS → US replica, far.
	siteVE, latVE, err := top.Catchment(401, sites, PolicyBGP)
	if err != nil {
		t.Fatal(err)
	}
	if siteVE.Host != 100 {
		t.Errorf("VE eyeball caught by %d, want 100", siteVE.Host)
	}
	if latVE <= lat {
		t.Errorf("VE latency %.1f should exceed CO latency %.1f", latVE, lat)
	}
}

func TestCatchmentGeoPolicyDiffers(t *testing.T) {
	top := testTopology()
	bog, _ := geo.LookupIATA("BOG")
	mia, _ := geo.LookupIATA("MIA")
	sites := []Site{
		{Host: 100, City: mia},
		{Host: 200, City: bog},
	}
	// Under geographic policy, the Venezuelan eyeball picks Bogota (closer
	// than Miami) even though BGP would deliver it to the US.
	site, _, err := top.Catchment(401, sites, PolicyGeo)
	if err != nil {
		t.Fatal(err)
	}
	if site.City.Name != "Bogota" {
		t.Errorf("geo policy caught %s, want Bogota", site.City.Name)
	}
}

func TestCatchmentUnreachable(t *testing.T) {
	top := testTopology()
	bog, _ := geo.LookupIATA("BOG")
	if _, _, err := top.Catchment(401, []Site{{Host: 999, City: bog}}, PolicyBGP); err != ErrUnreachable {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	if _, _, err := top.Catchment(401, nil, PolicyBGP); err != ErrUnreachable {
		t.Errorf("empty sites err = %v, want ErrUnreachable", err)
	}
}

func TestCatchmentDeterministic(t *testing.T) {
	top := testTopology()
	bog, _ := geo.LookupIATA("BOG")
	mia, _ := geo.LookupIATA("MIA")
	sites := []Site{{Host: 100, City: mia}, {Host: 200, City: bog}}
	first, _, _ := top.Catchment(201, sites, PolicyBGP)
	for i := 0; i < 10; i++ {
		got, _, _ := top.Catchment(201, sites, PolicyBGP)
		if got != first {
			t.Fatal("catchment not deterministic")
		}
	}
}

func TestRTT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := RTT(10, 5, rng)
	if r < 30 {
		t.Errorf("RTT = %.1f, want >= 2*(10+5)", r)
	}
	// Jitter keeps RTT finite and positive.
	for i := 0; i < 100; i++ {
		if v := RTT(1, 1, rng); v < 4 || v > 200 {
			t.Fatalf("RTT sample %v out of range", v)
		}
	}
}

// Property: any returned path starts at src, ends at dst, and respects
// valley-freeness (no provider edge after a peer/customer edge).
func TestQuickPathsValleyFree(t *testing.T) {
	top := testTopology()
	all := top.Graph().ASes()
	f := func(si, di uint8) bool {
		src := all[int(si)%len(all)]
		dst := all[int(di)%len(all)]
		path, ok := top.ASPath(src, dst)
		if !ok {
			return true
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		descended := false
		for i := 1; i < len(path); i++ {
			a, b := path[i-1], path[i]
			up := top.Graph().HasProvider(a, b)   // b is provider of a
			down := top.Graph().HasProvider(b, a) // a is provider of b
			peer := containsPeer(top.Graph().Peers(a), b)
			switch {
			case up:
				if descended {
					return false
				}
			case peer, down:
				descended = true
			default:
				return false // edge not in graph at all
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func containsPeer(xs []bgp.ASN, a bgp.ASN) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}
