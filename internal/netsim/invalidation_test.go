package netsim

import (
	"testing"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// TestBaseMutationInvalidatesOverlayDense: an overlay's dense view is
// patched over the base's cached build, so mutating the base after the
// overlay has served queries must propagate — the generation counter
// sums down the base chain precisely so a derived view can never serve
// pre-mutation adjacency.
func TestBaseMutationInvalidatesOverlayDense(t *testing.T) {
	base := New()
	base.AddLink(1, 2, bgp.ProviderCustomer)
	base.AddLink(1, 3, bgp.ProviderCustomer)

	over, err := base.Overlay([]Edit{{Op: EditAddLink, A: 2, B: 3, Kind: bgp.PeerPeer}})
	if err != nil {
		t.Fatal(err)
	}
	r := NewResolver(over)
	if info := r.PathInfoFrom(2, 3); !info.OK || info.Hops != 2 {
		t.Fatalf("2→3 over overlay peer link: %+v, want 2 hops", info)
	}

	// Mutate the base after the overlay's dense view is warm.
	base.AddLink(3, 4, bgp.ProviderCustomer)
	if info := r.PathInfoFrom(2, 4); !info.OK || info.Hops != 3 {
		t.Fatalf("2→4 after base mutation: %+v, want 3 hops via the overlay peer link", info)
	}
	// The overlay's own edit survives the rebuild.
	if info := r.PathInfoFrom(2, 3); !info.OK || info.Hops != 2 {
		t.Fatalf("2→3 after base mutation: %+v, want the overlay link intact", info)
	}
}

// TestNestedOverlayInvalidation: generation changes must propagate
// through a chain of overlays, not just one level.
func TestNestedOverlayInvalidation(t *testing.T) {
	base := New()
	base.AddLink(10, 1, bgp.ProviderCustomer)
	base.AddLink(10, 2, bgp.ProviderCustomer)

	mid, err := base.Overlay([]Edit{{Op: EditAddLink, A: 1, B: 2, Kind: bgp.PeerPeer}})
	if err != nil {
		t.Fatal(err)
	}
	top, err := mid.Overlay([]Edit{{Op: EditRemoveLink, A: 10, B: 2, Kind: bgp.ProviderCustomer}})
	if err != nil {
		t.Fatal(err)
	}
	r := NewResolver(top)
	if info := r.PathInfoFrom(2, 1); !info.OK || info.Hops != 2 {
		t.Fatalf("2→1 via the mid peer link: %+v, want 2 hops", info)
	}
	// Mutate the grand-base: 2 must reach the new customer of 1 through
	// both overlay levels (peer then down is valley-free).
	base.AddLink(1, 5, bgp.ProviderCustomer)
	if info := r.PathInfoFrom(2, 5); !info.OK || info.Hops != 3 {
		t.Fatalf("2→5 after grand-base mutation: %+v, want 3 hops", info)
	}
}

// TestLocateEdgeCases is the table-driven contract of Locate and the
// overlay location override: relocation changes what Location answers,
// a zero-City override clears a location, and untouched ASes fall
// through to the base.
func TestLocateEdgeCases(t *testing.T) {
	ccs, _ := geo.LookupIATA("CCS")
	bog, _ := geo.LookupIATA("BOG")

	cases := []struct {
		name     string
		edit     Edit
		asn      bgp.ASN
		wantCity string
		wantOK   bool
	}{
		{"override replaces base location", Edit{Op: EditRelocate, A: 1, City: bog}, 1, bog.Name, true},
		{"zero override clears location", Edit{Op: EditRelocate, A: 1, City: geo.City{}}, 1, "", false},
		{"override locates an unlocated AS", Edit{Op: EditRelocate, A: 2, City: bog}, 2, bog.Name, true},
		{"untouched AS falls through", Edit{Op: EditRelocate, A: 2, City: bog}, 1, ccs.Name, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := New()
			base.AddLink(1, 2, bgp.ProviderCustomer)
			base.Locate(1, ccs)
			over, err := base.Overlay([]Edit{tc.edit})
			if err != nil {
				t.Fatal(err)
			}
			c, ok := over.Location(tc.asn)
			if ok != tc.wantOK || (ok && c.Name != tc.wantCity) {
				t.Fatalf("Location(%d) = %v/%v, want %q/%v", tc.asn, c.Name, ok, tc.wantCity, tc.wantOK)
			}
			// The base's own view must be unaffected by any override.
			if c, ok := base.Location(1); !ok || c.Name != ccs.Name {
				t.Fatalf("base location disturbed: %v/%v", c, ok)
			}
		})
	}
}

// TestRelocateAfterDenseBuild: a location override must be visible in
// dense-derived latency math even when the base's dense view was
// already cached before the overlay existed.
func TestRelocateAfterDenseBuild(t *testing.T) {
	ccs, _ := geo.LookupIATA("CCS")
	mia, _ := geo.LookupIATA("MIA")
	base := New()
	base.AddLink(1, 2, bgp.ProviderCustomer)
	base.Locate(1, ccs)
	base.Locate(2, ccs)

	// Warm the base dense view first.
	before := NewResolver(base).PathInfoFrom(2, 1)
	if !before.OK {
		t.Fatalf("co-located base path: %+v", before)
	}
	over, err := base.Overlay([]Edit{{Op: EditRelocate, A: 1, City: mia}})
	if err != nil {
		t.Fatal(err)
	}
	info := NewResolver(over).PathInfoFrom(2, 1)
	if !info.OK || info.LatencyMs <= before.LatencyMs {
		t.Fatalf("latency after relocating one endpoint: %+v, want > co-located %.2fms", info, before.LatencyMs)
	}
}
