package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"testing"
	"testing/quick"

	"vzlens/internal/bgp"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestRIBRoundTrip(t *testing.T) {
	rib := bgp.NewRIB()
	rib.Announce(bgp.Prefix{Network: mustPrefix("200.44.0.0/16"), Origin: 8048})
	rib.Announce(bgp.Prefix{Network: mustPrefix("186.24.0.0/17"), Origin: 6306})
	rib.Announce(bgp.Prefix{Network: mustPrefix("190.120.0.0/15"), Origin: 21826})

	var buf bytes.Buffer
	if err := WriteRIB(&buf, rib, 6762, 1700000000); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != rib.Len() {
		t.Fatalf("round trip = %d prefixes, want %d", parsed.Len(), rib.Len())
	}
	for _, p := range rib.Prefixes() {
		if !parsed.Visible(p.Network, p.Origin) {
			t.Errorf("lost %v via %d", p.Network, p.Origin)
		}
	}
	if got, want := parsed.AnnouncedSpace(8048), rib.AnnouncedSpace(8048); got != want {
		t.Errorf("announced space = %d, want %d", got, want)
	}
}

func TestRoutePathsPreserved(t *testing.T) {
	var buf bytes.Buffer
	wr := NewWriter(&buf, 1700000000)
	if err := wr.WritePeerIndexTable(6762); err != nil {
		t.Fatal(err)
	}
	want := Route{
		Prefix: mustPrefix("200.44.0.0/16"),
		Path:   []bgp.ASN{6762, 23520, 8048},
	}
	if err := wr.WriteRoute(want); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	got, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Prefix != want.Prefix || len(got.Path) != 3 {
		t.Fatalf("route = %+v", got)
	}
	for i := range want.Path {
		if got.Path[i] != want.Path[i] {
			t.Errorf("path[%d] = %d, want %d", i, got.Path[i], want.Path[i])
		}
	}
	origin, ok := got.Origin()
	if !ok || origin != 8048 {
		t.Errorf("origin = %d, %v", origin, ok)
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestWriterRequiresPeerTable(t *testing.T) {
	var buf bytes.Buffer
	wr := NewWriter(&buf, 0)
	err := wr.WriteRoute(Route{Prefix: mustPrefix("10.0.0.0/8"), Path: []bgp.ASN{1}})
	if !errors.Is(err, ErrNoPeerTable) {
		t.Errorf("err = %v, want ErrNoPeerTable", err)
	}
}

func TestWriterRejectsBadRoutes(t *testing.T) {
	var buf bytes.Buffer
	wr := NewWriter(&buf, 0)
	if err := wr.WritePeerIndexTable(1); err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteRoute(Route{Prefix: mustPrefix("2001:db8::/32"), Path: []bgp.ASN{1}}); err == nil {
		t.Error("IPv6 route should be rejected")
	}
	if err := wr.WriteRoute(Route{Prefix: mustPrefix("10.0.0.0/8")}); err == nil {
		t.Error("empty path should be rejected")
	}
}

func TestReaderRequiresPeerTable(t *testing.T) {
	// Hand-frame a RIB record with no preceding peer table.
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 1)
	body = append(body, 8, 10) // 10.0.0.0/8
	body = binary.BigEndian.AppendUint16(body, 0)
	var buf bytes.Buffer
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[4:], typeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtypeRIBIPv4Unicast)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := NewReader(&buf).Next(); !errors.Is(err, ErrNoPeerTable) {
		t.Errorf("err = %v, want ErrNoPeerTable", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	rib := bgp.NewRIB()
	rib.Announce(bgp.Prefix{Network: mustPrefix("200.44.0.0/16"), Origin: 8048})
	var buf bytes.Buffer
	if err := WriteRIB(&buf, rib, 6762, 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix either parses fewer routes or errors; never
	// invents routes or hangs.
	for cut := 0; cut < len(full); cut += 7 {
		parsed, err := ParseRIB(bytes.NewReader(full[:cut]))
		if err == nil && parsed.Len() > rib.Len() {
			t.Fatalf("cut %d: invented routes", cut)
		}
	}
}

func TestReaderSkipsForeignRecords(t *testing.T) {
	rib := bgp.NewRIB()
	rib.Announce(bgp.Prefix{Network: mustPrefix("200.44.0.0/16"), Origin: 8048})
	var buf bytes.Buffer
	// Prepend a BGP4MP record (type 16), which the reader must skip.
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[4:], 16)
	binary.BigEndian.PutUint32(hdr[8:], 4)
	buf.Write(hdr[:])
	buf.Write([]byte{1, 2, 3, 4})
	if err := WriteRIB(&buf, rib, 6762, 0); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 1 {
		t.Errorf("parsed = %d routes", parsed.Len())
	}
}

func TestReaderRejectsImplausibleLength(t *testing.T) {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[4:], typeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtypeRIBIPv4Unicast)
	binary.BigEndian.PutUint32(hdr[8:], 1<<24)
	if _, err := NewReader(bytes.NewReader(hdr[:])).Next(); err == nil {
		t.Error("want length error")
	}
}

func TestHeaderLayout(t *testing.T) {
	// The 12-byte MRT common header must match RFC 6396: timestamp,
	// type 13, subtype 1, length.
	var buf bytes.Buffer
	wr := NewWriter(&buf, 1700000000)
	if err := wr.WritePeerIndexTable(6762); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if ts := binary.BigEndian.Uint32(raw[0:]); ts != 1700000000 {
		t.Errorf("timestamp = %d", ts)
	}
	if typ := binary.BigEndian.Uint16(raw[4:]); typ != 13 {
		t.Errorf("type = %d, want 13 (TABLE_DUMP_V2)", typ)
	}
	if sub := binary.BigEndian.Uint16(raw[6:]); sub != 1 {
		t.Errorf("subtype = %d, want 1 (PEER_INDEX_TABLE)", sub)
	}
	if l := binary.BigEndian.Uint32(raw[8:]); int(l) != len(raw)-12 {
		t.Errorf("length = %d, body = %d", l, len(raw)-12)
	}
}

// Property: any set of valid IPv4 prefixes round-trips through MRT.
func TestQuickRIBRoundTrip(t *testing.T) {
	f := func(seeds []uint32) bool {
		rib := bgp.NewRIB()
		for i, s := range seeds {
			if i >= 20 {
				break
			}
			bits := int(s%25) + 8
			addr := netip.AddrFrom4([4]byte{byte(s >> 24), byte(s >> 16), byte(s >> 8), byte(s)})
			prefix, err := addr.Prefix(bits)
			if err != nil {
				return false
			}
			rib.Announce(bgp.Prefix{Network: prefix, Origin: bgp.ASN(s%65000 + 1)})
		}
		var buf bytes.Buffer
		if err := WriteRIB(&buf, rib, 3356, 0); err != nil {
			return false
		}
		parsed, err := ParseRIB(&buf)
		if err != nil {
			return false
		}
		return parsed.Len() == rib.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
