package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"

	"vzlens/internal/bgp"
)

// FuzzReader feeds arbitrary bytes through the MRT reader: it must
// terminate (EOF or error) without panicking, and must never fabricate
// prefixes with out-of-range lengths.
func FuzzReader(f *testing.F) {
	rib := bgp.NewRIB()
	rib.Announce(bgp.Prefix{Network: netip.MustParsePrefix("200.44.0.0/16"), Origin: 8048})
	var buf bytes.Buffer
	if err := WriteRIB(&buf, rib, 6762, 1700000000); err == nil {
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add(make([]byte, 12))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			route, err := rd.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			if route.Prefix.IsValid() && (route.Prefix.Bits() < 0 || route.Prefix.Bits() > 32) {
				t.Fatalf("fabricated prefix %v", route.Prefix)
			}
		}
	})
}
