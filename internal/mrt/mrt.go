// Package mrt implements the slice of the MRT export format (RFC 6396)
// that the paper's addressing datasets descend from: TABLE_DUMP_V2 RIB
// dumps as RouteViews collectors publish them. CAIDA's prefix-to-AS
// files are digests of exactly these dumps, so vzlens can write its
// synthetic RIBs as real .mrt files and re-derive the pfx2as view by
// parsing them back.
//
// Supported records: PEER_INDEX_TABLE and RIB_IPV4_UNICAST with ORIGIN
// and AS_PATH attributes (4-byte ASNs, as RFC 6396 §4.3.4 requires
// inside TABLE_DUMP_V2).
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"vzlens/internal/bgp"
)

// MRT type and subtype constants (RFC 6396).
const (
	typeTableDumpV2       = 13
	subtypePeerIndexTable = 1
	subtypeRIBIPv4Unicast = 2

	attrOrigin = 1
	attrASPath = 2

	asPathSegmentSequence = 2

	originIGP = 0
)

// Errors the codec reports.
var (
	ErrTruncated    = errors.New("mrt: truncated record")
	ErrNoPeerTable  = errors.New("mrt: RIB entry before PEER_INDEX_TABLE")
	ErrBadPrefixLen = errors.New("mrt: prefix length out of range")
)

// Route is one decoded RIB entry: the prefix and the AS path of its best
// route as seen from the collector peer.
type Route struct {
	Prefix netip.Prefix
	Path   []bgp.ASN
}

// Origin returns the path's origin AS (the last element).
func (r Route) Origin() (bgp.ASN, bool) {
	if len(r.Path) == 0 {
		return 0, false
	}
	return r.Path[len(r.Path)-1], true
}

// Writer emits TABLE_DUMP_V2 records.
type Writer struct {
	w         io.Writer
	timestamp uint32
	wrotePeer bool
	sequence  uint32
}

// NewWriter returns a Writer stamping records with the given UNIX time.
func NewWriter(w io.Writer, timestamp int64) *Writer {
	return &Writer{w: w, timestamp: uint32(timestamp)}
}

// writeRecord frames one MRT record.
func (wr *Writer) writeRecord(subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], wr.timestamp)
	binary.BigEndian.PutUint16(hdr[4:], typeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := wr.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("mrt: write header: %w", err)
	}
	if _, err := wr.w.Write(body); err != nil {
		return fmt.Errorf("mrt: write body: %w", err)
	}
	return nil
}

// WritePeerIndexTable emits the mandatory peer table with one collector
// peer (RouteViews-style), identified by its BGP ID, address and ASN.
func (wr *Writer) WritePeerIndexTable(collectorASN bgp.ASN) error {
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 0xC0000201) // collector BGP ID
	body = binary.BigEndian.AppendUint16(body, 0)          // view name length
	body = binary.BigEndian.AppendUint16(body, 1)          // peer count
	// Peer entry: type (AS4 + IPv4), BGP ID, IPv4 address, AS4.
	body = append(body, 0x02) // bit 1 = AS size 4 bytes, bit 0 clear = IPv4
	body = binary.BigEndian.AppendUint32(body, 0xC0000202)
	body = append(body, 192, 0, 2, 2)
	body = binary.BigEndian.AppendUint32(body, uint32(collectorASN))
	if err := wr.writeRecord(subtypePeerIndexTable, body); err != nil {
		return err
	}
	wr.wrotePeer = true
	return nil
}

// WriteRoute emits one RIB_IPV4_UNICAST record for the route.
func (wr *Writer) WriteRoute(route Route) error {
	if !wr.wrotePeer {
		return ErrNoPeerTable
	}
	if !route.Prefix.Addr().Is4() {
		return fmt.Errorf("mrt: only IPv4 unicast supported, got %v", route.Prefix)
	}
	if len(route.Path) == 0 {
		return fmt.Errorf("mrt: route for %v has empty AS path", route.Prefix)
	}

	// BGP path attributes: ORIGIN and AS_PATH.
	var attrs []byte
	attrs = append(attrs, 0x40, attrOrigin, 1, originIGP) // well-known transitive
	var pathBody []byte
	pathBody = append(pathBody, asPathSegmentSequence, byte(len(route.Path)))
	for _, asn := range route.Path {
		pathBody = binary.BigEndian.AppendUint32(pathBody, uint32(asn))
	}
	attrs = append(attrs, 0x40, attrASPath, byte(len(pathBody)))
	attrs = append(attrs, pathBody...)

	var body []byte
	wr.sequence++
	body = binary.BigEndian.AppendUint32(body, wr.sequence)
	bits := route.Prefix.Bits()
	body = append(body, byte(bits))
	addr := route.Prefix.Addr().As4()
	body = append(body, addr[:(bits+7)/8]...)
	body = binary.BigEndian.AppendUint16(body, 1) // entry count
	// RIB entry: peer index, originated time, attribute length, attrs.
	body = binary.BigEndian.AppendUint16(body, 0)
	body = binary.BigEndian.AppendUint32(body, wr.timestamp)
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	return wr.writeRecord(subtypeRIBIPv4Unicast, body)
}

// WriteRIB dumps an entire RIB, one best route per (prefix, origin) with
// a synthetic collector→origin path.
func WriteRIB(w io.Writer, rib *bgp.RIB, collectorASN bgp.ASN, timestamp int64) error {
	wr := NewWriter(w, timestamp)
	if err := wr.WritePeerIndexTable(collectorASN); err != nil {
		return err
	}
	for _, p := range rib.Prefixes() {
		path := []bgp.ASN{collectorASN, p.Origin}
		if collectorASN == p.Origin {
			path = []bgp.ASN{p.Origin}
		}
		if err := wr.WriteRoute(Route{Prefix: p.Network, Path: path}); err != nil {
			return err
		}
	}
	return nil
}

// Reader decodes TABLE_DUMP_V2 records.
type Reader struct {
	r         io.Reader
	sawPeers  bool
	peerCount int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next RIB route, skipping non-RIB records. It returns
// io.EOF at the end of the stream.
func (rd *Reader) Next() (Route, error) {
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Route{}, io.EOF
			}
			return Route{}, fmt.Errorf("mrt: read header: %w", err)
		}
		mrtType := binary.BigEndian.Uint16(hdr[4:])
		subtype := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if length > 1<<20 {
			return Route{}, fmt.Errorf("mrt: implausible record length %d", length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(rd.r, body); err != nil {
			return Route{}, ErrTruncated
		}
		if mrtType != typeTableDumpV2 {
			continue // other MRT families: skip
		}
		switch subtype {
		case subtypePeerIndexTable:
			if err := rd.parsePeerTable(body); err != nil {
				return Route{}, err
			}
		case subtypeRIBIPv4Unicast:
			if !rd.sawPeers {
				return Route{}, ErrNoPeerTable
			}
			return parseRIBEntry(body)
		default:
			// RIB_IPV6_UNICAST etc.: skip.
		}
	}
}

func (rd *Reader) parsePeerTable(body []byte) error {
	if len(body) < 8 {
		return ErrTruncated
	}
	viewLen := int(binary.BigEndian.Uint16(body[4:]))
	off := 6 + viewLen
	if len(body) < off+2 {
		return ErrTruncated
	}
	rd.peerCount = int(binary.BigEndian.Uint16(body[off:]))
	rd.sawPeers = true
	return nil
}

func parseRIBEntry(body []byte) (Route, error) {
	if len(body) < 5 {
		return Route{}, ErrTruncated
	}
	bits := int(body[4])
	if bits < 0 || bits > 32 {
		return Route{}, ErrBadPrefixLen
	}
	nBytes := (bits + 7) / 8
	off := 5
	if len(body) < off+nBytes+2 {
		return Route{}, ErrTruncated
	}
	var addr [4]byte
	copy(addr[:], body[off:off+nBytes])
	prefix, err := netip.AddrFrom4(addr).Prefix(bits)
	if err != nil {
		return Route{}, fmt.Errorf("mrt: %w", err)
	}
	off += nBytes
	entryCount := int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	if entryCount == 0 {
		return Route{Prefix: prefix}, nil
	}
	// First (best) entry only.
	if len(body) < off+8 {
		return Route{}, ErrTruncated
	}
	attrLen := int(binary.BigEndian.Uint16(body[off+6:]))
	off += 8
	if len(body) < off+attrLen {
		return Route{}, ErrTruncated
	}
	path, err := parseASPath(body[off : off+attrLen])
	if err != nil {
		return Route{}, err
	}
	return Route{Prefix: prefix, Path: path}, nil
}

// parseASPath walks the BGP attribute block and extracts the AS_PATH.
func parseASPath(attrs []byte) ([]bgp.ASN, error) {
	off := 0
	for off < len(attrs) {
		if off+2 > len(attrs) {
			return nil, ErrTruncated
		}
		flags := attrs[off]
		code := attrs[off+1]
		off += 2
		var alen int
		if flags&0x10 != 0 { // extended length
			if off+2 > len(attrs) {
				return nil, ErrTruncated
			}
			alen = int(binary.BigEndian.Uint16(attrs[off:]))
			off += 2
		} else {
			if off+1 > len(attrs) {
				return nil, ErrTruncated
			}
			alen = int(attrs[off])
			off++
		}
		if off+alen > len(attrs) {
			return nil, ErrTruncated
		}
		if code == attrASPath {
			return parsePathSegments(attrs[off : off+alen])
		}
		off += alen
	}
	return nil, nil // no AS_PATH attribute
}

func parsePathSegments(seg []byte) ([]bgp.ASN, error) {
	var path []bgp.ASN
	off := 0
	for off < len(seg) {
		if off+2 > len(seg) {
			return nil, ErrTruncated
		}
		count := int(seg[off+1])
		off += 2
		if off+4*count > len(seg) {
			return nil, ErrTruncated
		}
		for i := 0; i < count; i++ {
			path = append(path, bgp.ASN(binary.BigEndian.Uint32(seg[off:])))
			off += 4
		}
	}
	return path, nil
}

// ParseRIB reads a whole dump back into a prefix-to-AS table, taking the
// origin (last path element) of each route — the pfx2as derivation.
func ParseRIB(r io.Reader) (*bgp.RIB, error) {
	rd := NewReader(r)
	rib := bgp.NewRIB()
	for {
		route, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return rib, nil
		}
		if err != nil {
			return nil, err
		}
		origin, ok := route.Origin()
		if !ok {
			continue
		}
		rib.Announce(bgp.Prefix{Network: route.Prefix, Origin: origin})
	}
}
