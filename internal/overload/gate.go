// Package overload protects the serving layer from bursty demand: a
// bounded-concurrency admission gate with a deadline-aware wait queue
// and priority classes, adaptive load shedding driven by observed
// latency, per-endpoint token-bucket rate limits as a static backstop,
// and a generic flight group that collapses concurrent identical
// requests into one computation.
//
// The pieces compose but do not know about HTTP: httpapi maps gate
// verdicts onto 429/503 + Retry-After, and chooses the priority class
// per route.
package overload

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Priority orders requests for admission. Higher values are admitted
// first from the wait queue and shed last.
type Priority int

const (
	// PriorityLow is the default for expensive, retryable work
	// (campaign-backed experiments). Shed first under pressure.
	PriorityLow Priority = iota
	// PriorityHigh is for cheap interactive endpoints (listings,
	// country summaries). Queued before low, shed only when the queue
	// itself overflows.
	PriorityHigh
	// PriorityCritical bypasses the gate entirely: never queued, never
	// shed, not counted against the in-flight bound. Health and
	// readiness probes live here — an overloaded server must still
	// answer its orchestrator.
	PriorityCritical
)

// Gate verdict errors. Callers map these onto transport-level backoff
// signals (HTTP 503 + Retry-After).
var (
	// ErrQueueFull: the wait queue is at capacity; the request was
	// rejected without waiting.
	ErrQueueFull = errors.New("overload: wait queue full")
	// ErrQueueTimeout: the request waited its full queue deadline
	// without a slot opening.
	ErrQueueTimeout = errors.New("overload: queue wait deadline exceeded")
	// ErrShed: adaptive shedding rejected a low-priority request
	// because observed latency crossed the shed threshold.
	ErrShed = errors.New("overload: shed under load")
	// ErrCanceled: the request's own context ended while queued.
	ErrCanceled = errors.New("overload: canceled while queued")
)

// GateOptions tunes a Gate. The zero value of a field takes the
// documented default.
type GateOptions struct {
	// MaxInFlight bounds concurrently admitted requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default
	// 4×MaxInFlight). Beyond it, requests fail fast with ErrQueueFull.
	MaxQueue int
	// QueueTimeout bounds how long one request waits for a slot
	// (default 10s). A caller context deadline that expires sooner
	// wins.
	QueueTimeout time.Duration
	// ShedLatency is the adaptive threshold: when the exponentially
	// weighted moving average of queue wait exceeds it, PriorityLow
	// requests are shed on arrival instead of queued (default
	// QueueTimeout/2; 0 after defaulting disables adaptive shedding).
	ShedLatency time.Duration
	// ObserveWait, when non-nil, receives every admitted request's
	// queue wait (zero for immediate admission). httpapi feeds a
	// latency histogram here; the gate's own EWMA stays authoritative
	// for shedding. Called outside the gate lock.
	ObserveWait func(wait time.Duration)
	// now overrides the clock in tests.
	now func() time.Time
}

func (o GateOptions) withDefaults() GateOptions {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 10 * time.Second
	}
	if o.ShedLatency <= 0 {
		o.ShedLatency = o.QueueTimeout / 2
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// GateStats is an observability snapshot of a Gate.
type GateStats struct {
	InFlight      int           // currently admitted
	Queued        int           // currently waiting
	PeakInFlight  int           // high-water mark of admitted requests
	Admitted      uint64        // total admitted (including after a queue wait)
	ShedAdaptive  uint64        // rejected by adaptive shedding
	ShedQueueFull uint64        // rejected because the queue was full
	RejectedFast  uint64        // rejected by TryAcquire (no slot, no queueing)
	TimedOut      uint64        // gave up waiting (deadline or context)
	AvgQueueWait  time.Duration // EWMA of time spent queued before admission
}

// waiter is one queued request. grant is buffered so a releaser can
// hand over a slot without blocking even if the waiter is abandoning.
type waiter struct {
	grant chan struct{}
	pri   Priority
	since time.Time
	// granted marks that a releaser transferred its slot to this
	// waiter; an abandoning waiter that lost this race must give the
	// slot back.
	granted bool
}

// Gate is a bounded-concurrency admission controller. Acquire admits
// immediately when a slot is free, queues (highest priority first,
// FIFO within a class) when not, and rejects when the queue is full,
// the wait deadline passes, or adaptive shedding is active for the
// request's class.
type Gate struct {
	opts GateOptions

	mu       sync.Mutex
	inflight int
	queue    []*waiter // sorted: admission order is max priority, then FIFO
	stats    GateStats
	ewmaWait time.Duration // EWMA of queue wait, guarded by mu
}

// NewGate returns a Gate with the given options.
func NewGate(opts GateOptions) *Gate {
	return &Gate{opts: opts.withDefaults()}
}

// Acquire asks for an execution slot. On success it returns a release
// function that MUST be called exactly once when the work completes.
// PriorityCritical is always admitted immediately with a no-op release.
func (g *Gate) Acquire(ctx context.Context, pri Priority) (release func(), err error) {
	if pri >= PriorityCritical {
		return func() {}, nil
	}
	g.mu.Lock()
	if g.inflight < g.opts.MaxInFlight && len(g.queue) == 0 {
		g.inflight++
		g.admitLocked(0)
		g.mu.Unlock()
		if g.opts.ObserveWait != nil {
			g.opts.ObserveWait(0)
		}
		return g.releaseFunc(), nil
	}
	// No free slot (or a queue to get behind): decide whether to wait.
	if pri == PriorityLow && g.ewmaWait > g.opts.ShedLatency {
		g.stats.ShedAdaptive++
		g.mu.Unlock()
		return nil, ErrShed
	}
	if len(g.queue) >= g.opts.MaxQueue {
		g.stats.ShedQueueFull++
		g.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{grant: make(chan struct{}, 1), pri: pri, since: g.opts.now()}
	g.enqueueLocked(w)
	g.mu.Unlock()

	timer := time.NewTimer(g.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.grant:
		// The releaser transferred its slot directly: inflight was
		// never decremented, so the bound holds across the hand-off.
		g.mu.Lock()
		wait := g.opts.now().Sub(w.since)
		g.admitLocked(wait)
		g.mu.Unlock()
		if g.opts.ObserveWait != nil {
			g.opts.ObserveWait(wait)
		}
		return g.releaseFunc(), nil
	case <-ctx.Done():
		err = ErrCanceled
	case <-timer.C:
		err = ErrQueueTimeout
	}
	// Abandon the wait. A releaser may have granted us a slot in the
	// race window; if so the slot is ours to give back.
	g.mu.Lock()
	g.removeLocked(w)
	g.stats.TimedOut++
	if w.granted {
		// We own a transferred slot we will never use; pass it on.
		select {
		case <-w.grant:
		default:
		}
		g.releaseLocked()
	}
	g.mu.Unlock()
	return nil, err
}

// TryAcquire is the datagram-plane admission path: it takes a slot
// only when one is immediately free, never queues, and allocates
// nothing — no context, no timer, no release closure. A caller that
// gets true MUST call Release exactly once. Wire protocols with no
// backpressure semantics (the DNS data plane) use this to turn
// overload into an instant REFUSED instead of a queue wait the client
// would have timed out on anyway.
//
// Adaptive shedding applies as in Acquire: while observed queue wait
// exceeds the shed threshold, PriorityLow callers are rejected even
// when a slot happens to be free, keeping headroom for the classes the
// queue is collapsing under. PriorityCritical callers should use
// Acquire (which bypasses the gate); here it is treated as
// PriorityHigh.
func (g *Gate) TryAcquire(pri Priority) bool {
	g.mu.Lock()
	if pri == PriorityLow && g.ewmaWait > g.opts.ShedLatency {
		g.stats.ShedAdaptive++
		g.mu.Unlock()
		return false
	}
	if g.inflight < g.opts.MaxInFlight && len(g.queue) == 0 {
		g.inflight++
		g.admitLocked(0)
		g.mu.Unlock()
		return true
	}
	g.stats.RejectedFast++
	g.mu.Unlock()
	return false
}

// Release frees a slot taken by TryAcquire. Like a release closure
// from Acquire it hands the slot directly to a queued waiter when one
// exists, so the concurrency bound holds across the transfer — but
// unlike those closures it is not idempotent: call it exactly once per
// successful TryAcquire.
func (g *Gate) Release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// admitLocked records an admission (slot already counted in inflight)
// whose queue wait was d.
func (g *Gate) admitLocked(d time.Duration) {
	g.stats.Admitted++
	if g.inflight > g.stats.PeakInFlight {
		g.stats.PeakInFlight = g.inflight
	}
	// EWMA with alpha = 1/8: smooth enough to ride out one slow
	// request, fast enough to open shedding within a burst.
	g.ewmaWait += (d - g.ewmaWait) / 8
}

// enqueueLocked inserts w in admission order.
func (g *Gate) enqueueLocked(w *waiter) {
	i := len(g.queue)
	for i > 0 && g.queue[i-1].pri < w.pri {
		i--
	}
	g.queue = append(g.queue, nil)
	copy(g.queue[i+1:], g.queue[i:])
	g.queue[i] = w
}

// removeLocked deletes w from the queue if still present.
func (g *Gate) removeLocked(w *waiter) {
	for i, q := range g.queue {
		if q == w {
			copy(g.queue[i:], g.queue[i+1:])
			g.queue[len(g.queue)-1] = nil
			g.queue = g.queue[:len(g.queue)-1]
			return
		}
	}
}

func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.releaseLocked()
			g.mu.Unlock()
		})
	}
}

// releaseLocked frees one slot. If a waiter is queued the slot
// transfers directly (inflight is NOT decremented), so the concurrency
// bound holds across the hand-off and a new arrival cannot steal it.
func (g *Gate) releaseLocked() {
	if len(g.queue) > 0 {
		w := g.queue[0]
		copy(g.queue, g.queue[1:])
		g.queue[len(g.queue)-1] = nil
		g.queue = g.queue[:len(g.queue)-1]
		w.granted = true
		w.grant <- struct{}{}
		return
	}
	g.inflight--
}

// Stats returns a point-in-time snapshot.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.InFlight = g.inflight
	s.Queued = len(g.queue)
	s.AvgQueueWait = g.ewmaWait
	return s
}
