package overload

import (
	"math"
	"sync"
	"time"
)

// Rate is a token-bucket configuration: sustained requests per second
// with a burst allowance.
type Rate struct {
	PerSecond float64 // sustained refill rate; <= 0 disables the bucket
	Burst     float64 // bucket capacity (defaults to PerSecond when <= 0)
}

// TokenBucket is a classic lazily-refilled token bucket. It is the
// static backstop under the adaptive gate: even when latency looks
// healthy, no endpoint class may exceed its configured rate.
type TokenBucket struct {
	mu     sync.Mutex
	rate   Rate
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a full bucket for r. A nil now uses the wall
// clock; tests inject a fake.
func NewTokenBucket(r Rate, now func() time.Time) *TokenBucket {
	if r.Burst <= 0 {
		r.Burst = math.Max(r.PerSecond, 1)
	}
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{rate: r, tokens: r.Burst, last: now(), now: now}
}

// Allow consumes one token if available.
func (b *TokenBucket) Allow() bool {
	if b == nil || b.rate.PerSecond <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter estimates how long until the next token, rounded up to a
// whole second (the resolution of the Retry-After header), minimum 1s.
func (b *TokenBucket) RetryAfter() time.Duration {
	if b == nil || b.rate.PerSecond <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		return time.Second
	}
	need := (1 - b.tokens) / b.rate.PerSecond
	secs := math.Ceil(need)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

func (b *TokenBucket) refillLocked() {
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(b.rate.Burst, b.tokens+elapsed*b.rate.PerSecond)
		b.last = now
	}
}

// Limiter holds one token bucket per endpoint class.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*TokenBucket
	now     func() time.Time
}

// NewLimiter returns a Limiter with the given per-class rates. Classes
// absent from rates are unlimited.
func NewLimiter(rates map[string]Rate) *Limiter {
	l := &Limiter{buckets: map[string]*TokenBucket{}, now: time.Now}
	for class, r := range rates {
		l.buckets[class] = NewTokenBucket(r, l.now)
	}
	return l
}

// Allow consumes one token from class's bucket; unknown classes are
// always allowed. The second result is the suggested retry delay when
// denied.
func (l *Limiter) Allow(class string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	b := l.buckets[class]
	l.mu.Unlock()
	if b == nil {
		return true, 0
	}
	if b.Allow() {
		return true, 0
	}
	return false, b.RetryAfter()
}
