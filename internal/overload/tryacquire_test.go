package overload

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTryAcquireBasic(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 2})
	if !g.TryAcquire(PriorityLow) || !g.TryAcquire(PriorityHigh) {
		t.Fatal("empty gate rejected")
	}
	if g.TryAcquire(PriorityHigh) {
		t.Fatal("full gate admitted a third request")
	}
	if s := g.Stats(); s.RejectedFast != 1 {
		t.Errorf("RejectedFast = %d, want 1", s.RejectedFast)
	}
	g.Release()
	if !g.TryAcquire(PriorityLow) {
		t.Fatal("released slot not reusable")
	}
	g.Release()
	g.Release()
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("InFlight = %d after all releases", s.InFlight)
	}
}

func TestTryAcquireAdaptiveShed(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 4, ShedLatency: time.Millisecond})
	g.mu.Lock()
	g.ewmaWait = 10 * time.Millisecond
	g.mu.Unlock()
	if g.TryAcquire(PriorityLow) {
		t.Error("PriorityLow admitted during adaptive shed")
	}
	if !g.TryAcquire(PriorityHigh) {
		t.Error("PriorityHigh shed — the adaptive gate must only drop low traffic")
	}
	g.Release()
	if s := g.Stats(); s.ShedAdaptive != 1 {
		t.Errorf("ShedAdaptive = %d, want 1", s.ShedAdaptive)
	}
}

// TestTryAcquireRespectsQueue pins the fairness contract: a waiter
// queued by blocking Acquire gets the next free slot before any
// TryAcquire caller can steal it.
func TestTryAcquireRespectsQueue(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 1, QueueTimeout: 5 * time.Second})
	if !g.TryAcquire(PriorityHigh) {
		t.Fatal("empty gate rejected")
	}
	admitted := make(chan func(), 1)
	go func() {
		rel, err := g.Acquire(context.Background(), PriorityHigh)
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
			close(admitted)
			return
		}
		admitted <- rel
	}()
	// Wait for the waiter to be queued, then release: the slot must
	// hand off to it, and TryAcquire must keep failing throughout.
	for i := 0; i < 1000; i++ {
		if g.Stats().Queued > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if g.TryAcquire(PriorityHigh) {
		t.Fatal("TryAcquire jumped a non-empty queue")
	}
	g.Release()
	rel, ok := <-admitted
	if !ok {
		t.Fatal("waiter never admitted")
	}
	if g.TryAcquire(PriorityHigh) {
		t.Fatal("TryAcquire got a slot the waiter holds")
	}
	rel()
	if !g.TryAcquire(PriorityHigh) {
		t.Fatal("slot lost after waiter released")
	}
	g.Release()
}

func TestTryAcquireConcurrent(t *testing.T) {
	const slots = 8
	g := NewGate(GateOptions{MaxInFlight: slots})
	var wg sync.WaitGroup
	var peak, cur, admitted int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if !g.TryAcquire(PriorityHigh) {
					continue
				}
				mu.Lock()
				cur++
				admitted++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if peak > slots {
		t.Errorf("concurrency peak %d exceeded MaxInFlight %d", peak, slots)
	}
	if admitted == 0 {
		t.Error("nothing admitted")
	}
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("InFlight = %d after drain", s.InFlight)
	}
}
