package overload

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Group collapses concurrent calls with the same key into one
// execution (request coalescing, the classic singleflight). The leader
// runs fn; followers that arrive while it is in flight block and
// receive the leader's result. The entry is forgotten as soon as the
// call completes, so nothing — success or failure — is cached here:
// compose with resilience.LazyResult (or a result store) for caching
// semantics. Failures therefore stay retryable, exactly like
// LazyResult's own contract.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]

	leaders   atomic.Uint64
	followers atomic.Uint64
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
	dups int
}

// Do executes fn for key, coalescing with any in-flight call for the
// same key. shared reports whether the result was produced by another
// caller's execution.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[K]*flightCall[V]{}
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		g.followers.Add(1)
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	g.leaders.Add(1)

	func() {
		// A leader panic must not strand followers on a closed-over
		// zero value: convert it to an error every caller sees.
		defer func() {
			if rec := recover(); rec != nil {
				c.err = fmt.Errorf("overload: coalesced call panicked: %v", rec)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}

// Stats reports cumulative leaders (calls that executed fn) and
// followers (calls served by another caller's execution) — the
// coalescing ratio the /metrics endpoint exposes.
func (g *Group[K, V]) Stats() (leaders, followers uint64) {
	return g.leaders.Load(), g.followers.Load()
}

// InFlight reports whether a call for key is currently executing.
func (g *Group[K, V]) InFlight(key K) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.calls[key]
	return ok
}
