package overload

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTokenBucketTable drives the bucket with a fake clock through
// scripted drain/refill sequences.
func TestTokenBucketTable(t *testing.T) {
	type step struct {
		advance time.Duration
		allows  int // consecutive Allow calls
		granted int // how many of them must succeed
	}
	cases := []struct {
		name  string
		rate  Rate
		steps []step
	}{
		{
			name: "burst drains then denies", rate: Rate{PerSecond: 1, Burst: 3},
			steps: []step{{allows: 5, granted: 3}},
		},
		{
			name: "refills at the sustained rate", rate: Rate{PerSecond: 2, Burst: 2},
			steps: []step{
				{allows: 2, granted: 2},
				{advance: 500 * time.Millisecond, allows: 2, granted: 1}, // 0.5s × 2/s = 1 token
				{advance: 10 * time.Second, allows: 3, granted: 2},       // capped at burst
			},
		},
		{
			name: "burst defaults to the rate", rate: Rate{PerSecond: 4},
			steps: []step{{allows: 6, granted: 4}},
		},
		{
			name: "non-positive rate disables the bucket", rate: Rate{PerSecond: 0},
			steps: []step{{allows: 100, granted: 100}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := time.Unix(1700000000, 0)
			b := NewTokenBucket(tc.rate, func() time.Time { return clock })
			for i, s := range tc.steps {
				clock = clock.Add(s.advance)
				granted := 0
				for j := 0; j < s.allows; j++ {
					if b.Allow() {
						granted++
					}
				}
				if granted != s.granted {
					t.Fatalf("step %d: granted %d of %d, want %d", i, granted, s.allows, s.granted)
				}
			}
		})
	}
}

// TestTokenBucketRetryAfter pins the Retry-After estimate: whole
// seconds, never below 1, derived from the token deficit.
func TestTokenBucketRetryAfter(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	b := NewTokenBucket(Rate{PerSecond: 0.5, Burst: 1}, func() time.Time { return clock })
	if !b.Allow() {
		t.Fatal("full bucket denied")
	}
	// Empty bucket at 0.5 tokens/s: a full token is 2s away.
	if got := b.RetryAfter(); got != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s", got)
	}
	clock = clock.Add(3 * time.Second)
	if got := b.RetryAfter(); got != time.Second {
		t.Errorf("RetryAfter with a token banked = %v, want the 1s floor", got)
	}
	var disabled *TokenBucket
	if got := disabled.RetryAfter(); got != 0 {
		t.Errorf("nil bucket RetryAfter = %v, want 0", got)
	}
}

// TestFlightStats pins the leader/follower accounting the /metrics
// endpoint exposes: sequential calls are all leaders; calls that arrive
// while a computation is in flight are followers.
func TestFlightStats(t *testing.T) {
	var g Group[string, int]
	for i := 0; i < 3; i++ {
		if _, err, shared := g.Do("seq", func() (int, error) { return i, nil }); err != nil || shared {
			t.Fatalf("sequential Do: err=%v shared=%v", err, shared)
		}
	}
	if l, f := g.Stats(); l != 3 || f != 0 {
		t.Fatalf("after sequential calls: leaders=%d followers=%d, want 3/0", l, f)
	}

	const followers = 4
	gateIn, gateOut := make(chan struct{}), make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do("key", func() (int, error) {
			close(gateIn) // leader is in flight
			<-gateOut
			return 42, nil
		})
	}()
	<-gateIn
	results := make(chan bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("key", func() (int, error) { return -1, nil })
			if v != 42 || err != nil {
				t.Errorf("follower got %d, %v", v, err)
			}
			results <- shared
		}()
	}
	// Followers must be registered before the leader finishes; poll the
	// stats until all four are counted (the counter increments before
	// the follower blocks on the leader's completion).
	for {
		if _, f := g.Stats(); f == followers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gateOut)
	wg.Wait()
	for i := 0; i < followers; i++ {
		if !<-results {
			t.Error("a coalesced caller reported shared=false")
		}
	}
	l, f := g.Stats()
	if l != 4 { // 3 sequential + 1 coalesced leader
		t.Errorf("leaders = %d, want 4", l)
	}
	if f != followers {
		t.Errorf("followers = %d, want %d", f, followers)
	}
}

// TestGateObserveWait pins the queue-wait hook: immediate admissions
// report a zero wait, queued admissions report the time actually spent
// waiting, and shed requests report nothing.
func TestGateObserveWait(t *testing.T) {
	var mu sync.Mutex
	var waits []time.Duration
	g := NewGate(GateOptions{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: time.Second,
		ObserveWait: func(d time.Duration) {
			mu.Lock()
			waits = append(waits, d)
			mu.Unlock()
		},
	})
	release, err := g.Acquire(context.Background(), PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		r2, err := g.Acquire(context.Background(), PriorityHigh)
		if err == nil {
			r2()
		}
		admitted <- err
	}()
	// Wait until the second request is queued, then hold it briefly so
	// its recorded wait is measurably positive.
	for g.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("ObserveWait called %d times, want 2 (got %v)", len(waits), waits)
	}
	if waits[0] != 0 {
		t.Errorf("immediate admission reported wait %v, want 0", waits[0])
	}
	if waits[1] <= 0 {
		t.Errorf("queued admission reported wait %v, want > 0", waits[1])
	}
}
