package overload

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateAdmitsUpToBound(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 3, QueueTimeout: 50 * time.Millisecond, MaxQueue: 1})
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := g.Acquire(context.Background(), PriorityHigh)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if s := g.Stats(); s.InFlight != 3 || s.PeakInFlight != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// The 4th fills the queue, the 5th is rejected fast.
	done := make(chan error, 1)
	go func() {
		rel, err := g.Acquire(context.Background(), PriorityHigh)
		if err == nil {
			rel()
		}
		done <- err
	}()
	waitFor(t, func() bool { return g.Stats().Queued == 1 })
	if _, err := g.Acquire(context.Background(), PriorityHigh); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue overflow err = %v, want ErrQueueFull", err)
	}
	releases[0]()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	for _, rel := range releases[1:] {
		rel()
	}
}

func TestGateQueueTimeout(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 30 * time.Millisecond})
	rel, err := g.Acquire(context.Background(), PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := g.Acquire(context.Background(), PriorityHigh); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took far too long")
	}
	if s := g.Stats(); s.TimedOut != 1 || s.Queued != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 10 * time.Second})
	rel, err := g.Acquire(context.Background(), PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, PriorityHigh)
		done <- err
	}()
	waitFor(t, func() bool { return g.Stats().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestGateCriticalBypasses(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: time.Millisecond})
	rel, err := g.Acquire(context.Background(), PriorityLow)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Saturated gate: critical still sails through, instantly.
	for i := 0; i < 10; i++ {
		crel, err := g.Acquire(context.Background(), PriorityCritical)
		if err != nil {
			t.Fatalf("critical acquire %d: %v", i, err)
		}
		crel()
	}
	if s := g.Stats(); s.InFlight != 1 {
		t.Errorf("critical admissions consumed slots: %+v", s)
	}
}

func TestGatePriorityOrdering(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second})
	rel, err := g.Acquire(context.Background(), PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(name string, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background(), pri)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			rel()
		}()
	}
	enqueue("low", PriorityLow)
	waitFor(t, func() bool { return g.Stats().Queued == 1 })
	enqueue("high", PriorityHigh)
	waitFor(t, func() bool { return g.Stats().Queued == 2 })
	rel() // high should be admitted before the earlier-queued low
	wg.Wait()
	if strings.Join(order, ",") != "high,low" {
		t.Errorf("admission order = %v, want [high low]", order)
	}
}

func TestGateAdaptiveShedsLowOnly(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 1, MaxQueue: 16, QueueTimeout: time.Second, ShedLatency: time.Millisecond})
	g.ewmaWait = 50 * time.Millisecond // simulate observed slow queue waits
	rel, err := g.Acquire(context.Background(), PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background(), PriorityLow); !errors.Is(err, ErrShed) {
		t.Fatalf("low under pressure = %v, want ErrShed", err)
	}
	// High still queues rather than shedding.
	done := make(chan error, 1)
	go func() {
		hrel, err := g.Acquire(context.Background(), PriorityHigh)
		if err == nil {
			hrel()
		}
		done <- err
	}()
	waitFor(t, func() bool { return g.Stats().Queued == 1 })
	rel()
	if err := <-done; err != nil {
		t.Fatalf("high under pressure = %v, want admission", err)
	}
	if s := g.Stats(); s.ShedAdaptive != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestGateBoundHoldsUnderChurn hammers the gate from many goroutines
// and asserts the concurrency bound is never exceeded, including
// across slot hand-offs.
func TestGateBoundHoldsUnderChurn(t *testing.T) {
	const bound = 4
	g := NewGate(GateOptions{MaxInFlight: bound, MaxQueue: 64, QueueTimeout: time.Second})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				rel, err := g.Acquire(context.Background(), Priority(j%2))
				if err != nil {
					continue
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Errorf("observed %d concurrent admissions, bound %d", p, bound)
	}
	if s := g.Stats(); s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("gate not drained: %+v", s)
	}
	if s := g.Stats(); s.PeakInFlight > bound {
		t.Errorf("gate peak %d exceeds bound %d", s.PeakInFlight, bound)
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(GateOptions{MaxInFlight: 2})
	rel, err := g.Acquire(context.Background(), PriorityHigh)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("double release corrupted inflight: %+v", s)
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := NewTokenBucket(Rate{PerSecond: 2, Burst: 2}, clock)
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst tokens missing")
	}
	if b.Allow() {
		t.Fatal("bucket should be empty")
	}
	if ra := b.RetryAfter(); ra < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", ra)
	}
	now = now.Add(time.Second) // refills 2 tokens
	if !b.Allow() || !b.Allow() {
		t.Error("refill failed")
	}
	if b.Allow() {
		t.Error("over-refilled past burst")
	}
}

func TestLimiterClasses(t *testing.T) {
	l := NewLimiter(map[string]Rate{"exp": {PerSecond: 0.5, Burst: 1}})
	if ok, _ := l.Allow("exp"); !ok {
		t.Fatal("first call denied")
	}
	ok, retry := l.Allow("exp")
	if ok {
		t.Fatal("second call allowed past burst")
	}
	if retry < time.Second {
		t.Errorf("retry = %v, want >= 1s", retry)
	}
	if ok, _ := l.Allow("unknown-class"); !ok {
		t.Error("unknown class should be unlimited")
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("exp"); !ok {
		t.Error("nil limiter should allow")
	}
}

func TestFlightCoalesces(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, 8)
	shareds := make([]bool, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, shared := g.Do("k", func() (int, error) {
			close(started)
			calls.Add(1)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], shareds[0] = v, shared
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	waitFor(t, func() bool { return g.InFlight("k") })
	// Give followers a beat to join the flight, then let it finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want exactly 1 (coalesced)", calls.Load())
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("result[%d] = %d", i, v)
		}
	}
	if shareds[0] {
		t.Error("leader reported shared")
	}
}

func TestFlightFailureNotCached(t *testing.T) {
	var g Group[string, int]
	calls := 0
	_, err, _ := g.Do("k", func() (int, error) { calls++; return 0, errors.New("boom") })
	if err == nil {
		t.Fatal("expected error")
	}
	v, err, _ := g.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || calls != 2 {
		t.Errorf("retry: v=%d err=%v calls=%d", v, err, calls)
	}
}

func TestFlightPanicBecomesError(t *testing.T) {
	var g Group[string, int]
	_, err, _ := g.Do("k", func() (int, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic converted", err)
	}
	if g.InFlight("k") {
		t.Error("entry leaked after panic")
	}
}

// waitFor polls cond until true or the deadline trips the test.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
