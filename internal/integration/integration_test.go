// Package integration drives the pipeline end to end through the disk
// formats: every archive is written in its native interchange format,
// parsed back, and the analyses re-run over the parsed data must agree
// with the in-memory results — proving the analyses would run unchanged
// against the real archives.
package integration

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vzlens/internal/aspop"
	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/ipv6"
	"vzlens/internal/months"
	"vzlens/internal/mrt"
	"vzlens/internal/peeringdb"
	"vzlens/internal/registry"
	"vzlens/internal/telegeo"
	"vzlens/internal/world"
)

// mustBuild is the test-only panicking form of world.Build.
func mustBuild(cfg world.Config) *world.World {
	w, err := world.Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

var testWorld = mustBuild(world.Config{Step: 6})

func mm(y int, mo time.Month) months.Month { return months.New(y, mo) }

// writeParse round-trips bytes through an actual file.
func writeParse(t *testing.T, name string, data []byte) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestDelegationFileRoundTrip(t *testing.T) {
	reg := testWorld.Registry()
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "delegated-lacnic-extended.txt", buf.Bytes())
	parsed, err := registry.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	m := mm(2024, time.January)
	if got, want := parsed.IPv4HolderTotal("ORG-CANV", m), reg.IPv4HolderTotal("ORG-CANV", m); got != want {
		t.Errorf("CANTV delegated space = %d, want %d", got, want)
	}
	if got, want := parsed.IPv4CountryTotal("VE", m), reg.IPv4CountryTotal("VE", m); got != want {
		t.Errorf("VE delegated space = %d, want %d", got, want)
	}
}

func TestASRelFileRoundTrip(t *testing.T) {
	m := mm(2013, time.January)
	g := testWorld.TopologyAt(m).Topology().Graph()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "2013-01.as-rel.txt", buf.Bytes())
	parsed, err := bgp.ParseGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	// The headline Figure 8 statistic survives the file format.
	if got := len(parsed.Providers(world.ASCANTV)); got != 11 {
		t.Errorf("CANTV providers from file = %d, want 11", got)
	}
	if parsed.Edges() != g.Edges() {
		t.Errorf("edges = %d, want %d", parsed.Edges(), g.Edges())
	}
}

func TestPfx2asFileRoundTrip(t *testing.T) {
	for _, m := range []months.Month{mm(2016, time.January), mm(2017, time.January)} {
		rib := testWorld.RIBArchive(m, m).Get(m)
		var buf bytes.Buffer
		if _, err := rib.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		f := writeParse(t, m.String()+".pfx2as.txt", buf.Bytes())
		parsed, err := bgp.ParseRIB(f)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := parsed.AnnouncedSpace(world.ASTelefonica), rib.AnnouncedSpace(world.ASTelefonica); got != want {
			t.Errorf("%v: Telefonica space = %d, want %d", m, got, want)
		}
	}
}

func TestPeeringDBDumpRoundTrip(t *testing.T) {
	m := mm(2024, time.January)
	snap := testWorld.PeeringDBSnapshot(m)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "peeringdb_dump.json", buf.Bytes())
	parsed, err := peeringdb.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(parsed.FacilitiesIn("VE")); got != 4 {
		t.Errorf("VE facilities from dump = %d, want 4", got)
	}
	cirion, ok := parsed.FacilityByName("Cirion La Urbina")
	if !ok {
		t.Fatal("Cirion missing from dump")
	}
	if got := len(parsed.NetworksAt(cirion.ID)); got != 11 {
		t.Errorf("Cirion members from dump = %d, want 11", got)
	}
}

func TestCableMapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testWorld.Cables.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "cables.csv", buf.Bytes())
	parsed, err := telegeo.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.RegionTotal(2000) != 13 || parsed.RegionTotal(2024) != 54 {
		t.Errorf("region totals from file = %d/%d", parsed.RegionTotal(2000), parsed.RegionTotal(2024))
	}
	added := parsed.AddedBetween("VE", 2000, 2024)
	if len(added) != 1 || added[0].Name != "ALBA-1" {
		t.Errorf("VE additions from file = %v", added)
	}
}

func TestIPv6DatasetRoundTrip(t *testing.T) {
	ds := ipv6.Collect(ipv6.CoveredCountries(), mm(2018, time.January), mm(2023, time.June))
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "ipv6.csv", buf.Bytes())
	parsed, err := ipv6.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	m := mm(2023, time.June)
	if got, want := parsed.At("VE", m), ds.At("VE", m); got < want-0.01 || got > want+0.01 {
		t.Errorf("VE adoption from file = %v, want %v", got, want)
	}
}

func TestPopulationTableRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testWorld.Pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "aspop.txt", buf.Bytes())
	parsed, err := aspop.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parsed.Share(8048), testWorld.Pop.Share(8048); got != want {
		t.Errorf("CANTV share from file = %v, want %v", got, want)
	}
	if parsed.Len() != testWorld.Pop.Len() {
		t.Errorf("entries = %d, want %d", parsed.Len(), testWorld.Pop.Len())
	}
}

func TestOrgMapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testWorld.Orgs.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "as2org.txt", buf.Bytes())
	parsed, err := bgp.ParseOrgMap(f)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Org(world.ASMovilnet) != "ORG-CANV" {
		t.Error("state org mapping lost")
	}
	if parsed.Len() != testWorld.Orgs.Len() {
		t.Errorf("entries = %d, want %d", parsed.Len(), testWorld.Orgs.Len())
	}
}

func TestAtlasResultsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation")
	}
	// A one-month world keeps this fast.
	w := mustBuild(world.Config{
		TraceStart: mm(2023, time.July), TraceEnd: mm(2023, time.July),
		ChaosStart: mm(2023, time.July), ChaosEnd: mm(2023, time.July),
	})
	trace := w.TraceCampaign()
	chaos := w.ChaosCampaign()

	var buf bytes.Buffer
	if err := atlas.WriteTraceJSON(&buf, trace.Samples()); err != nil {
		t.Fatal(err)
	}
	if err := atlas.WriteChaosJSON(&buf, chaos.Results()); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "atlas-results.jsonl", buf.Bytes())
	chaos2, trace2, err := atlas.ParseResultsJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	m := mm(2023, time.July)
	want, ok1 := trace.CountryMedian("VE", m)
	got, ok2 := trace2.CountryMedian("VE", m)
	if !ok1 || !ok2 || want != got {
		t.Errorf("VE median through JSON = %v (%v), want %v (%v)", got, ok2, want, ok1)
	}
	if got, want := chaos2.SitesByCountry(m, "")["BR"], chaos.SitesByCountry(m, "")["BR"]; got != want {
		t.Errorf("BR replicas through JSON = %d, want %d", got, want)
	}
}

func TestMRTDumpRoundTrip(t *testing.T) {
	m := mm(2024, time.January)
	rib := testWorld.RIBArchive(m, m).Get(m)
	var buf bytes.Buffer
	if err := mrt.WriteRIB(&buf, rib, 6762, m.Time().Unix()); err != nil {
		t.Fatal(err)
	}
	f := writeParse(t, "rib.mrt", buf.Bytes())
	parsed, err := mrt.ParseRIB(f)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != rib.Len() {
		t.Fatalf("MRT round trip = %d prefixes, want %d", parsed.Len(), rib.Len())
	}
	// The pfx2as derivation agrees with the direct table.
	for _, asn := range []bgp.ASN{world.ASCANTV, world.ASTelefonica} {
		if got, want := parsed.AnnouncedSpace(asn), rib.AnnouncedSpace(asn); got != want {
			t.Errorf("AS%d space via MRT = %d, want %d", asn, got, want)
		}
	}
}
