package integration

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/httpapi"
	"vzlens/internal/resultstore"
	"vzlens/internal/world"
)

// TestSoakOverloadFaultRestart is the chaos/soak harness for the
// overload-protection layer: it hammers the real HTTP server with 64
// concurrent clients while the chaos campaign fails its first
// simulation, then restarts the server against the same result store,
// then corrupts a store entry. It asserts the load-shedding, request
// coalescing, crash-safe persistence, and quarantine contracts all at
// once, the way a production incident would exercise them together.
func TestSoakOverloadFaultRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation soak")
	}
	// One campaign month keeps each simulation fast while still
	// exercising the full pipeline.
	m := mm(2023, time.July)
	w := mustBuild(world.Config{
		TraceStart: m, TraceEnd: m,
		ChaosStart: m, ChaosEnd: m,
	})
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	var traceCalls, chaosCalls atomic.Int64
	newOptions := func(faulty bool, traceCalls, chaosCalls *atomic.Int64) httpapi.Options {
		return httpapi.Options{
			MaxInFlight:  4,
			MaxQueue:     8,
			QueueTimeout: 2 * time.Second,
			Store:        store,
			TraceCampaign: func() (*atlas.TraceCampaign, error) {
				traceCalls.Add(1)
				return w.TraceCampaign(), nil
			},
			ChaosCampaign: func() (*atlas.ChaosCampaign, error) {
				n := chaosCalls.Add(1)
				if faulty && n == 1 {
					return nil, errors.New("injected collector outage")
				}
				return w.ChaosCampaign(), nil
			},
		}
	}
	h1 := httpapi.NewWithOptions(w, newOptions(true, &traceCalls, &chaosCalls))
	srv1 := httptest.NewServer(h1)
	client := &http.Client{Timeout: 30 * time.Second}
	get := func(base, path string) (int, http.Header, string) {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return 0, nil, ""
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header, string(body)
	}

	baseline := runtime.NumGoroutine()

	// ---- Phase 1: overload wave with an injected campaign fault ----
	paths := []string{
		"/api/experiments/fig6",  // chaos-backed; first simulation fails
		"/api/experiments/fig12", // trace-backed
		"/api/experiments/fig4",
		"/api/experiments/fig8.csv",
		"/api/experiments/nope", // 404 path stays correct under load
		"/api/countries/VE",
	}
	var (
		wg            sync.WaitGroup
		shed          atomic.Int64
		missingRetry  atomic.Int64
		badStatus     atomic.Int64
		probeFailures atomic.Int64
	)
	stopProbes := make(chan struct{})
	// A liveness prober runs through the whole wave: health and
	// readiness must answer 200 no matter how saturated the gate is.
	// It has its own WaitGroup — it outlives the client wave.
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stopProbes:
				return
			default:
			}
			for _, p := range []string{"/healthz", "/readyz"} {
				if code, _, _ := get(srv1.URL, p); code != http.StatusOK {
					probeFailures.Add(1)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				code, hdr, _ := get(srv1.URL, paths[(i+j)%len(paths)])
				switch code {
				case http.StatusOK, http.StatusNotFound:
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					shed.Add(1)
					if hdr.Get("Retry-After") == "" {
						missingRetry.Add(1)
					}
				default:
					badStatus.Add(1)
					t.Errorf("unexpected status %d for %s", code, paths[(i+j)%len(paths)])
				}
			}
		}(i)
	}
	// Let the wave finish, then stop the prober.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("soak wave did not complete")
	}
	close(stopProbes)
	probeWG.Wait()

	if missingRetry.Load() != 0 {
		t.Errorf("%d shed responses missing Retry-After", missingRetry.Load())
	}
	if probeFailures.Load() != 0 {
		t.Errorf("%d health/readiness probes failed under load", probeFailures.Load())
	}
	if badStatus.Load() != 0 {
		t.Errorf("%d responses outside the allowed status set (500 would mean a panic)", badStatus.Load())
	}
	t.Logf("wave: %d shed with Retry-After, trace sims %d, chaos sims %d",
		shed.Load(), traceCalls.Load(), chaosCalls.Load())

	// Coalescing: one trace simulation total; the chaos fault costs
	// exactly one extra attempt (the failure is never cached, the
	// retry succeeds, every other request coalesces or hits cache).
	if got := traceCalls.Load(); got != 1 {
		t.Errorf("trace simulations = %d, want exactly 1 per coalescing key", got)
	}
	if got := chaosCalls.Load(); got != 2 {
		t.Errorf("chaos simulations = %d, want 2 (one injected failure + one retry)", got)
	}

	// The retried campaign now serves. Capture reference bodies for the
	// bit-identical restart check.
	refs := map[string]string{}
	for _, p := range []string{"/api/experiments/fig6", "/api/experiments/fig12", "/api/experiments/fig4"} {
		code, _, body := get(srv1.URL, p)
		if code != http.StatusOK {
			t.Fatalf("%s after fault recovery = %d", p, code)
		}
		refs[p] = body
	}

	// Goroutines are bounded: the wave's workers, queue waiters, and
	// campaign pools are all gone once the load stops.
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+16 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+16 {
		t.Errorf("goroutines after wave = %d, baseline %d: unbounded growth", n, baseline)
	}

	// ---- Phase 2: restart against the same store ----
	srv1.Close()
	var traceCalls2, chaosCalls2 atomic.Int64
	h2 := httpapi.NewWithOptions(w, newOptions(false, &traceCalls2, &chaosCalls2))
	warmStart := time.Now()
	h2.Warm()
	warmTook := time.Since(warmStart)
	if traceCalls2.Load() != 0 || chaosCalls2.Load() != 0 {
		t.Errorf("restart re-simulated (trace %d, chaos %d), want warm from store",
			traceCalls2.Load(), chaosCalls2.Load())
	}
	t.Logf("restart warm from store took %v", warmTook)
	srv2 := httptest.NewServer(h2)
	for p, want := range refs {
		code, _, body := get(srv2.URL, p)
		if code != http.StatusOK {
			t.Fatalf("%s after restart = %d", p, code)
		}
		if body != want {
			t.Errorf("%s not bit-identical across restart", p)
		}
	}
	srv2.Close()

	// ---- Phase 3: a corrupted store entry is quarantined, not served ----
	names, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	var chaosEntry string
	for _, name := range names {
		if strings.HasPrefix(name, "campaign-chaos") {
			chaosEntry = filepath.Join(store.Dir(), name)
		}
	}
	if chaosEntry == "" {
		t.Fatalf("chaos campaign entry missing from store: %v", names)
	}
	data, err := os.ReadFile(chaosEntry)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01 // a single flipped bit mid-payload
	if err := os.WriteFile(chaosEntry, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var traceCalls3, chaosCalls3 atomic.Int64
	h3 := httpapi.NewWithOptions(w, newOptions(false, &traceCalls3, &chaosCalls3))
	h3.Warm()
	if got := chaosCalls3.Load(); got != 1 {
		t.Errorf("chaos simulations after corruption = %d, want 1 (recompute, not serve corrupt)", got)
	}
	if got := traceCalls3.Load(); got != 0 {
		t.Errorf("trace re-simulated %d times, its entry was intact", got)
	}
	q, err := store.Quarantined()
	if err != nil || len(q) == 0 {
		t.Errorf("corrupt entry not quarantined: %v, %v", q, err)
	}
	srv3 := httptest.NewServer(h3)
	defer srv3.Close()
	code, _, body := get(srv3.URL, "/api/experiments/fig6")
	if code != http.StatusOK || body != refs["/api/experiments/fig6"] {
		t.Errorf("fig6 after corruption recovery: code %d, identical=%v", code, body == refs["/api/experiments/fig6"])
	}
}
