package integration

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/httpapi"
	"vzlens/internal/registry"
	"vzlens/internal/resilience"
	"vzlens/internal/world"
)

// bootServer serves h on a loopback listener and returns the base URL
// plus a channel that carries ServeGraceful's result.
func bootServer(t *testing.T, h http.Handler, drain time.Duration) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	done := make(chan error, 1)
	go func() { done <- httpapi.ServeGraceful(srv, ln, drain, syscall.SIGUSR1) }()
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String(), done
}

// TestServerDegradesAndRecovers boots the real HTTP server over a world
// whose campaign simulator fails on the first attempt: the campaign
// endpoint answers 503 with Retry-After, plain endpoints keep serving,
// and the retry succeeds without a restart.
func TestServerDegradesAndRecovers(t *testing.T) {
	w := testWorld
	calls := 0
	h := httpapi.NewWithOptions(w, httpapi.Options{
		ChaosCampaign: func() (*atlas.ChaosCampaign, error) {
			calls++
			if calls == 1 {
				return nil, errors.New("collector unreachable")
			}
			return w.ChaosCampaign(), nil
		},
	})
	base, _ := bootServer(t, h, time.Second)

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	resp, body := get("/api/experiments/fig6")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected failure: status = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}

	// Degradation is contained: unrelated endpoints still serve.
	if resp, _ := get("/api/experiments/fig4"); resp.StatusCode != http.StatusOK {
		t.Errorf("fig4 during campaign outage: status = %d", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during campaign outage: status = %d", resp.StatusCode)
	}

	// The failure was not cached: the retry simulates again and serves.
	resp, body = get("/api/experiments/fig6")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: status = %d, want 200: %s", resp.StatusCode, body)
	}
	if calls != 2 {
		t.Errorf("simulator calls = %d, want 2", calls)
	}
	if _, body := get("/readyz"); !strings.Contains(body, `"chaos": true`) {
		t.Errorf("readyz after recovery: %s", body)
	}
}

// TestServerDrainsOnSignal sends the server its shutdown signal while a
// slow request is in flight and requires that the request completes and
// ServeGraceful returns cleanly within the drain deadline.
func TestServerDrainsOnSignal(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "drained")
	})
	base, done := bootServer(t, mux, 5*time.Second)

	var body string
	var reqErr error
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		resp, err := http.Get(base + "/slow")
		if err != nil {
			reqErr = err
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
	}()

	// Wait for the request to be in flight, then signal shutdown.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	// The server must not return while the request is still running.
	select {
	case err := <-done:
		t.Fatalf("ServeGraceful returned before drain: %v", err)
	case <-time.After(200 * time.Millisecond):
	}
	once.Do(func() { close(release) })

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeGraceful = %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful did not return after drain")
	}
	<-finished
	if reqErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", reqErr)
	}
	if body != "drained" {
		t.Errorf("in-flight response = %q", body)
	}
}

// TestServerDrainDeadline: a request that outlives the drain deadline
// is forced closed and ServeGraceful reports the incomplete drain.
func TestServerDrainDeadline(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-hang:
		case <-r.Context().Done():
		}
	})
	base, done := bootServer(t, mux, 100*time.Millisecond)

	go func() { http.Get(base + "/hang") }()
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ServeGraceful = nil, want drain-incomplete error")
		}
		if !strings.Contains(err.Error(), "drain incomplete") {
			t.Errorf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful hung past the drain deadline")
	}
}

// TestWorldBuildWithSourcesServes ties ingestion degradation to serving:
// a world whose registry source is persistently down still boots, serves
// experiments from the synthetic substitute, and reports the degraded
// axis on /readyz.
func TestWorldBuildWithSourcesServes(t *testing.T) {
	w, err := world.BuildWithSources(context.Background(), world.Config{Step: 6}, world.SourceSet{
		Registry: func(context.Context) (*registry.Table, error) {
			return nil, errors.New("registry mirror down")
		},
		Retry: resilience.Policy{
			MaxAttempts: 2,
			Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		},
	})
	if err != nil {
		t.Fatalf("degraded build failed outright: %v", err)
	}
	base, _ := bootServer(t, httpapi.New(w), time.Second)

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d (degraded worlds still serve)", resp.StatusCode)
	}
	for _, want := range []string{`"degraded"`, `"registry"`, "registry mirror down"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("readyz missing %s: %s", want, body)
		}
	}

	// The synthetic substitute answers data queries (fig2 is built from
	// the registry axis).
	resp, err = http.Get(base + "/api/experiments/fig2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fig2 over degraded registry: status = %d", resp.StatusCode)
	}
}
