package integration

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"vzlens/internal/httpapi"
	"vzlens/internal/resultstore"
	"vzlens/internal/sweep"
	"vzlens/internal/world"
)

// sweepBody is the soak sweep: every root letter crossed with every
// Venezuelan candidate city — 52 specs through the real scenario
// engine, enough in-flight work to interrupt meaningfully.
const sweepBody = `{"id":"soak","family":"root_each"}`

func newSweepStack(t *testing.T, w *world.World, dir string) *httpapi.Handler {
	t.Helper()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := httpapi.NewWithOptions(w, httpapi.Options{Store: store})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		h.DrainSweeps(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return h
}

// sweepStatus GETs one sweep document straight off the handler.
func sweepStatus(t *testing.T, h http.Handler, id string) *sweep.Status {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "/api/sweeps/"+id, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET sweep %s: %d %s", id, rec.Code, rec.Body.String())
	}
	var st sweep.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return &st
}

func awaitSweepDone(t *testing.T, h http.Handler, id string) *sweep.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if st := sweepStatus(t, h, id); st.State == sweep.StateDone {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s never finished", id)
	return nil
}

// sweepMetric scrapes one unlabeled vz_sweep_* value off /metrics.
func sweepMetric(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: parse %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestSweepCrashResumeSoak is the crash-safety soak for the batch
// sweep engine: a 52-spec sweep is interrupted by SIGTERM-style drain
// mid-flight, the server restarts against the same store, and the
// resumed run must (a) restore every journaled result without
// re-simulating it — asserted through the vz_sweep_* counters — and
// (b) finish with a leaderboard byte-identical to an uninterrupted
// control run's.
func TestSweepCrashResumeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep soak")
	}
	leakGuard(t)
	m := mm(2023, time.July)
	w := mustBuild(world.Config{
		TraceStart: m, TraceEnd: m,
		ChaosStart: m, ChaosEnd: m,
	})

	// ---- Control: the same sweep, never interrupted ----
	control := newSweepStack(t, w, t.TempDir())
	postSweep(t, control, sweepBody, http.StatusAccepted)
	controlDone := awaitSweepDone(t, control, "soak")
	controlBoard, err := json.Marshal(controlDone.Leaderboard)
	if err != nil {
		t.Fatal(err)
	}
	if controlDone.Total != 52 || controlDone.Completed != 52 || controlDone.Failed != 0 {
		t.Fatalf("control sweep: %+v", controlDone)
	}

	// ---- Phase 1: start the sweep on a real server, SIGTERM it ----
	dir := t.TempDir()
	h1 := newSweepStack(t, w, dir)
	base, serveDone := bootServer(t, h1, 30*time.Second)
	resp, err := http.Post(base+"/api/sweeps", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep: %d", resp.StatusCode)
	}
	// Let some — ideally not all — specs complete before the signal.
	for i := 0; i < 2000 && sweepStatus(t, h1, "soak").Completed < 5; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("graceful serve: %v", err)
	}
	// The vzserve shutdown sequence: HTTP drained, now checkpoint the
	// batch work so the journal holds every in-flight spec's result.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h1.DrainSweeps(dctx); err != nil {
		t.Fatal(err)
	}
	journaled := sweepMetric(t, h1, "vz_sweep_specs_completed_total") +
		sweepMetric(t, h1, "vz_sweep_specs_failed_total")
	t.Logf("drained with %.0f/52 specs journaled", journaled)

	// ---- Phase 2: restart against the same store ----
	h2 := newSweepStack(t, w, dir)
	final := awaitSweepDone(t, h2, "soak")

	// Every journaled result was restored, not re-simulated: the new
	// process's restored counter matches what the old one checkpointed,
	// and its own simulation counters cover exactly the remainder.
	restored := sweepMetric(t, h2, "vz_sweep_specs_restored_total")
	if restored != journaled {
		t.Errorf("restored %.0f specs, want %.0f (journaled before drain)", restored, journaled)
	}
	resimulated := sweepMetric(t, h2, "vz_sweep_specs_completed_total") +
		sweepMetric(t, h2, "vz_sweep_specs_failed_total")
	if restored+resimulated != 52 {
		t.Errorf("restored %.0f + simulated %.0f != 52: completed specs were re-simulated", restored, resimulated)
	}

	// The resumed leaderboard is byte-identical to the control run's.
	finalBoard, err := json.Marshal(final.Leaderboard)
	if err != nil {
		t.Fatal(err)
	}
	if string(finalBoard) != string(controlBoard) {
		t.Errorf("resumed leaderboard differs from uninterrupted control:\n%s\n%s", finalBoard, controlBoard)
	}
	if final.Key != controlDone.Key {
		t.Errorf("sweep key differs: %q vs %q", final.Key, controlDone.Key)
	}
}

// TestSweepQuarantineEndToEnd runs a sweep whose spec list mixes
// healthy scenarios with one that cannot compile against the world:
// the sweep must complete, with the broken spec quarantined into the
// leaderboard below every success, carrying its compile error.
func TestSweepQuarantineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-backed sweep")
	}
	m := mm(2023, time.July)
	w := mustBuild(world.Config{
		TraceStart: m, TraceEnd: m,
		ChaosStart: m, ChaosEnd: m,
	})
	h := newSweepStack(t, w, t.TempDir())
	postSweep(t, h, `{"id":"q","family":"specs","specs":[
		{"id":"healthy-a","ops":[{"op":"add_root","letter":"L","host":8048,"iata":"CCS","from":"2023-07"}]},
		{"id":"healthy-b","ops":[{"op":"depeer","asn":6762,"from":"2023-07"}]},
		{"id":"wont-compile","ops":[{"op":"depeer","asn":64999,"from":"2023-07"}]}
	]}`, http.StatusAccepted)
	st := awaitSweepDone(t, h, "q")
	if st.Completed != 3 || st.Failed != 1 {
		t.Fatalf("quarantine sweep: %+v", st)
	}
	last := st.Leaderboard[len(st.Leaderboard)-1]
	if last.Spec != "wont-compile" || last.Status != sweep.StatusFailed ||
		!strings.Contains(last.Error, "unknown to the world") {
		t.Errorf("quarantined entry = %+v", last)
	}
	for _, e := range st.Leaderboard[:len(st.Leaderboard)-1] {
		if e.Status != sweep.StatusOK {
			t.Errorf("healthy spec %s ranked as %s", e.Spec, e.Status)
		}
	}
}

func postSweep(t *testing.T, h http.Handler, body string, want int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, "/api/sweeps", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != want {
		t.Fatalf("POST sweep: %d %s, want %d", rec.Code, rec.Body.String(), want)
	}
}
