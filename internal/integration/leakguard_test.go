package integration

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// leakTolerance absorbs runtime background goroutines (GC workers,
// netpoller wakeups) that come and go independently of the test.
const leakTolerance = 3

// leakGuard fails the test if it leaves goroutines behind. Call it
// FIRST in the test body: t.Cleanup runs last-registered-first, so the
// guard's check runs after every server, prober, and replication loop
// the test registered has been torn down. The comparison allows a
// grace window — shutdown is asynchronous by design (drain deadlines,
// canceled simulations unwinding) — and keeps flushing idle HTTP
// connections, whose keep-alive read loops would otherwise read as
// leaks for the transport's full idle timeout.
func leakGuard(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var after int
		for {
			if tr, ok := http.DefaultTransport.(*http.Transport); ok {
				tr.CloseIdleConnections()
			}
			after = runtime.NumGoroutine()
			if after <= before+leakTolerance {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after grace window\n%s", before, after, buf[:n])
	})
}
