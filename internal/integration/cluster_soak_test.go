package integration

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vzlens/internal/httpapi"
	"vzlens/internal/resultstore"
	"vzlens/internal/world"
)

// This file is the chaos soak for the fault-tolerant serving tier: a
// coordinator drives the 52-spec root_each sweep across a ring of
// three real worker servers, one worker is hard-killed mid-sweep, and
// the leaderboard must still come out byte-identical to a standalone
// run — with the failover visible in the vz_cluster_* counters. A
// second act restarts the dead worker against its surviving disk and
// proves it warms from its peers without re-simulating anything.

// listenLoopback binds a loopback listener. An empty addr picks a
// fresh port; a concrete addr re-binds it — how a "restarted" worker
// comes back at the same ring position.
func listenLoopback(t *testing.T, addr string) (net.Listener, string) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln, "http://" + ln.Addr().String()
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("listen %s: %v", addr, err)
	return nil, ""
}

// serveHard serves h on ln and returns a stop func that hard-closes
// every connection — the in-process equivalent of SIGKILL: no drain,
// no goodbye, in-flight responses torn mid-write.
func serveHard(t *testing.T, h http.Handler, ln net.Listener) (stop func()) {
	t.Helper()
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after stop
	stop = func() { srv.Close() }
	t.Cleanup(stop)
	return stop
}

// newClusterNode builds one handler over its own store directory with
// the given cluster options, wiring the teardown a clustered node
// needs (sweep drain, then prober/replication shutdown).
func newClusterNode(t *testing.T, w *world.World, dir string, mod func(*httpapi.Options)) *httpapi.Handler {
	t.Helper()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := httpapi.Options{Store: store}
	mod(&opts)
	h := httpapi.NewWithOptions(w, opts)
	t.Cleanup(h.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		h.DrainSweeps(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return h
}

// readyCluster decodes the cluster section of a handler's /readyz.
type readyCluster struct {
	Cluster *struct {
		Role    string `json:"role"`
		Workers []struct {
			Addr  string `json:"addr"`
			State string `json:"state"`
		} `json:"workers"`
	} `json:"cluster"`
}

func clusterReady(t *testing.T, h http.Handler) readyCluster {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc readyCluster
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode /readyz: %v", err)
	}
	return doc
}

// awaitWorkerState polls the coordinator's /readyz until addr reports
// state (the prober needs a few rounds to reclassify).
func awaitWorkerState(t *testing.T, h http.Handler, addr, state string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		doc := clusterReady(t, h)
		if doc.Cluster != nil {
			for _, w := range doc.Cluster.Workers {
				if w.Addr == addr && w.State == state {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("worker %s never reached state %q in coordinator /readyz", addr, state)
}

// TestClusterChaosSoak is the acceptance soak for the sharded tier.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-server cluster soak")
	}
	leakGuard(t)
	m := mm(2023, time.July)
	w := mustBuild(world.Config{
		TraceStart: m, TraceEnd: m,
		ChaosStart: m, ChaosEnd: m,
	})

	// ---- Control: the same sweep on a standalone server ----
	control := newSweepStack(t, w, t.TempDir())
	postSweep(t, control, sweepBody, http.StatusAccepted)
	controlDone := awaitSweepDone(t, control, "soak")
	controlBoard, err := json.Marshal(controlDone.Leaderboard)
	if err != nil {
		t.Fatal(err)
	}
	if controlDone.Total != 52 || controlDone.Completed != 52 || controlDone.Failed != 0 {
		t.Fatalf("control sweep: %+v", controlDone)
	}

	// ---- The ring: three workers, disks that survive their death ----
	lnA, urlA := listenLoopback(t, "")
	lnB, urlB := listenLoopback(t, "")
	lnC, urlC := listenLoopback(t, "")
	dirA, dirB, dirC := t.TempDir(), t.TempDir(), t.TempDir()
	worker := func(dir, self string, peers []string) *httpapi.Handler {
		return newClusterNode(t, w, dir, func(o *httpapi.Options) {
			o.ClusterRole = "worker"
			o.ClusterSelf = self
			o.ClusterPeers = peers
		})
	}
	hA := worker(dirA, urlA, []string{urlB, urlC})
	hB := worker(dirB, urlB, []string{urlA, urlC})
	hC := worker(dirC, urlC, []string{urlA, urlB})
	serveHard(t, hA, lnA)
	stopB := serveHard(t, hB, lnB)
	serveHard(t, hC, lnC)

	coordinator := func(dir string) *httpapi.Handler {
		return newClusterNode(t, w, dir, func(o *httpapi.Options) {
			o.ClusterRole = "coordinator"
			o.ClusterPeers = []string{urlA, urlB, urlC}
			// A generous hedge delay keeps this soak's failovers purely
			// error-driven: no spec is slow enough to latency-hedge, so
			// every simulation count below is exact.
			o.ClusterHedgeDelay = 5 * time.Second
			o.ClusterProbeInterval = 50 * time.Millisecond
		})
	}
	co := coordinator(t.TempDir())
	awaitWorkerState(t, co, urlB, "active")

	// ---- Act 1: kill one worker mid-sweep ----
	postSweep(t, co, sweepBody, http.StatusAccepted)
	for i := 0; i < 2000 && sweepStatus(t, co, "soak").Completed < 5; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	stopB()
	t.Logf("killed worker B (%s) with %d/52 specs complete", urlB, sweepStatus(t, co, "soak").Completed)

	final := awaitSweepDone(t, co, "soak")
	finalBoard, err := json.Marshal(final.Leaderboard)
	if err != nil {
		t.Fatal(err)
	}
	if string(finalBoard) != string(controlBoard) {
		t.Errorf("cluster leaderboard differs from standalone control:\n%s\n%s", finalBoard, controlBoard)
	}
	if final.Failed != 0 {
		t.Errorf("cluster sweep quarantined %d specs; the failover should have absorbed the kill", final.Failed)
	}

	// The prober noticed the death, and the survivors absorbed B's
	// shard: reassignments are the specs that executed off their
	// ring-primary owner.
	awaitWorkerState(t, co, urlB, "down")
	if v := sweepMetric(t, co, "vz_cluster_reassignments_total"); v < 1 {
		t.Errorf("vz_cluster_reassignments_total = %.0f, want >= 1 after killing a worker mid-sweep", v)
	}
	// Exactly-once at the coordinator: 52 distinct specs means no
	// coalesced duplicate dispatches...
	if v := sweepMetric(t, co, "vz_cluster_flight_followers_total"); v != 0 {
		t.Errorf("vz_cluster_flight_followers_total = %.0f, want 0", v)
	}
	// ...and across the fleet, each spec simulated once, plus at most
	// the couple B had in flight when it died (their responses were
	// lost, so a survivor legitimately re-ran them).
	simsA := sweepMetric(t, hA, "vz_cluster_spec_simulations_total")
	simsB := sweepMetric(t, hB, "vz_cluster_spec_simulations_total")
	simsC := sweepMetric(t, hC, "vz_cluster_spec_simulations_total")
	if total := simsA + simsB + simsC; total < 52 || total > 56 {
		t.Errorf("fleet simulations = %.0f (A %.0f, B %.0f, C %.0f), want 52..56",
			total, simsA, simsB, simsC)
	}

	// ---- Act 2: the dead worker returns, disk intact ----
	lnB2, _ := listenLoopback(t, lnB.Addr().String())
	hB2 := worker(dirB, urlB, []string{urlA, urlC})
	serveHard(t, hB2, lnB2)

	// A fresh coordinator (no sticky assignments, no sweep journal)
	// routes purely by ring, so B's shard lands back on B. Re-running
	// the identical sweep re-requests the same 52 content keys —
	// expansion prefixes spec IDs with the sweep id, so the id must
	// match for the frames to. B serves its own pre-kill frames from
	// disk and warm-pulls the ones the survivors computed during the
	// outage — zero re-simulation anywhere in the fleet.
	co2 := coordinator(t.TempDir())
	awaitWorkerState(t, co2, urlB, "active")
	preA, preC := simsA, simsC
	postSweep(t, co2, sweepBody, http.StatusAccepted)
	rerun := awaitSweepDone(t, co2, "soak")
	rerunBoard, err := json.Marshal(rerun.Leaderboard)
	if err != nil {
		t.Fatal(err)
	}
	if string(rerunBoard) != string(controlBoard) {
		t.Errorf("post-restart leaderboard differs from control:\n%s\n%s", rerunBoard, controlBoard)
	}
	if v := sweepMetric(t, hB2, "vz_cluster_spec_simulations_total"); v != 0 {
		t.Errorf("restarted worker simulated %.0f specs, want 0 (every frame was local or on a peer)", v)
	}
	if v := sweepMetric(t, hB2, "vz_cluster_warm_pulls_total"); v < 1 {
		t.Errorf("restarted worker warm pulls = %.0f, want >= 1 (survivors hold its outage-era frames)", v)
	}
	if dA := sweepMetric(t, hA, "vz_cluster_spec_simulations_total") - preA; dA != 0 {
		t.Errorf("worker A re-simulated %.0f specs on the re-run", dA)
	}
	if dC := sweepMetric(t, hC, "vz_cluster_spec_simulations_total") - preC; dC != 0 {
		t.Errorf("worker C re-simulated %.0f specs on the re-run", dC)
	}
}
