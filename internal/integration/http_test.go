package integration

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vzlens/internal/httpapi"
)

// TestHTTPServerEndToEnd drives the API over a real TCP listener, as a
// dashboard would: list the experiments, fetch one as JSON and CSV, pull
// a country summary, and read the crisis signatures.
func TestHTTPServerEndToEnd(t *testing.T) {
	srv := httptest.NewServer(httpapi.New(testWorld))
	defer srv.Close()

	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := fetch("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}

	code, body := fetch("/api/experiments")
	if code != 200 {
		t.Fatalf("experiments = %d", code)
	}
	var listing struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Experiments) != 22 {
		t.Errorf("experiments = %d", len(listing.Experiments))
	}

	if code, body := fetch("/api/experiments/table1"); code != 200 || !strings.Contains(body, "4,330,868") {
		t.Errorf("table1 = %d: %.120s", code, body)
	}
	if code, body := fetch("/api/experiments/fig4.csv"); code != 200 || !strings.Contains(body, "ALBA-1") {
		t.Errorf("fig4.csv = %d: %.120s", code, body)
	}
	if code, body := fetch("/api/countries/VE"); code != 200 || !strings.Contains(body, `"atlas_probes_2024": 30`) {
		t.Errorf("countries/VE = %d: %.200s", code, body)
	}
	if code, body := fetch("/api/signatures"); code != 200 || !strings.Contains(body, "stagnation") {
		t.Errorf("signatures = %d: %.120s", code, body)
	}
	if code, _ := fetch("/api/experiments/nope"); code != 404 {
		t.Errorf("unknown experiment = %d, want 404", code)
	}
}
