// Package aspop models APNIC-style per-AS Internet population estimates,
// the weighting the paper uses throughout: off-net coverage, IXP
// population heatmaps, and the Venezuelan eyeball-market composition of
// Table 1 (Appendix A).
package aspop

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vzlens/internal/bgp"
)

// Estimate is the user population attributed to one AS.
type Estimate struct {
	ASN     bgp.ASN
	Name    string
	Country string
	Users   int64
}

// Estimates is a population table.
type Estimates struct {
	byASN map[bgp.ASN]Estimate
}

// New returns an empty Estimates table.
func New() *Estimates { return &Estimates{byASN: map[bgp.ASN]Estimate{}} }

// Add registers an estimate, replacing any existing entry for the ASN.
func (e *Estimates) Add(est Estimate) {
	if e.byASN == nil {
		e.byASN = map[bgp.ASN]Estimate{}
	}
	e.byASN[est.ASN] = est
}

// Lookup returns the estimate for asn.
func (e *Estimates) Lookup(asn bgp.ASN) (Estimate, bool) {
	est, ok := e.byASN[asn]
	return est, ok
}

// Users returns the population of asn (0 when unknown).
func (e *Estimates) Users(asn bgp.ASN) int64 { return e.byASN[asn].Users }

// Len returns the number of ASes with estimates.
func (e *Estimates) Len() int { return len(e.byASN) }

// CountryUsers returns the total estimated population of country cc.
func (e *Estimates) CountryUsers(cc string) int64 {
	var total int64
	for _, est := range e.byASN {
		if est.Country == cc {
			total += est.Users
		}
	}
	return total
}

// Share returns asn's fraction of its country's population (0-1).
func (e *Estimates) Share(asn bgp.ASN) float64 {
	est, ok := e.byASN[asn]
	if !ok {
		return 0
	}
	total := e.CountryUsers(est.Country)
	if total == 0 {
		return 0
	}
	return float64(est.Users) / float64(total)
}

// ShareOf returns the combined population share of the given ASes within
// country cc (ASes registered elsewhere are ignored).
func (e *Estimates) ShareOf(cc string, asns []bgp.ASN) float64 {
	total := e.CountryUsers(cc)
	if total == 0 {
		return 0
	}
	seen := map[bgp.ASN]bool{}
	var covered int64
	for _, asn := range asns {
		if seen[asn] {
			continue
		}
		seen[asn] = true
		if est, ok := e.byASN[asn]; ok && est.Country == cc {
			covered += est.Users
		}
	}
	return float64(covered) / float64(total)
}

// TopN returns the n largest ASes of country cc by population,
// descending; ties break by ASN.
func (e *Estimates) TopN(cc string, n int) []Estimate {
	var all []Estimate
	for _, est := range e.byASN {
		if est.Country == cc {
			all = append(all, est)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Users != all[j].Users {
			return all[i].Users > all[j].Users
		}
		return all[i].ASN < all[j].ASN
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// InCountry returns every estimate for country cc, descending by users.
func (e *Estimates) InCountry(cc string) []Estimate {
	return e.TopN(cc, len(e.byASN))
}

// InCountryCodes returns every country with at least one estimate,
// sorted.
func (e *Estimates) InCountryCodes() []string {
	seen := map[string]bool{}
	for _, est := range e.byASN {
		seen[est.Country] = true
	}
	out := make([]string, 0, len(seen))
	for cc := range seen {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// WriteTo writes "asn|users|cc|name" lines, implementing io.WriterTo.
func (e *Estimates) WriteTo(w io.Writer) (int64, error) {
	var all []Estimate
	for _, est := range e.byASN {
		all = append(all, est)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ASN < all[j].ASN })
	var n int64
	for _, est := range all {
		k, err := fmt.Fprintf(w, "%d|%d|%s|%s\n", est.ASN, est.Users, est.Country, est.Name)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Parse reads the "asn|users|cc|name" form.
func Parse(r io.Reader) (*Estimates, error) {
	e := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "|", 4)
		if len(parts) < 4 {
			return nil, fmt.Errorf("aspop: line %d: malformed %q", lineNo, line)
		}
		asn, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("aspop: line %d: bad ASN %q", lineNo, parts[0])
		}
		users, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("aspop: line %d: bad users %q", lineNo, parts[1])
		}
		e.Add(Estimate{bgp.ASN(asn), parts[3], strings.ToUpper(parts[2]), users})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("aspop: read: %w", err)
	}
	return e, nil
}

// venezuelaTop10 reproduces Table 1 exactly: the ten largest Venezuelan
// providers by estimated population as of May 2024.
var venezuelaTop10 = []Estimate{
	{8048, "CANTV Servicios, Venezuela", "VE", 4330868},
	{21826, "Corporacion Telemic C.A.", "VE", 2490253},
	{6306, "TELEFONICA VENEZOLANA, C.A.", "VE", 2110464},
	{264731, "Corporacion Digitel C.A.", "VE", 1419723},
	{264628, "CORPORACION FIBEX TELECOM, C.A.", "VE", 1316463},
	{61461, "Airtek Solutions C.A.", "VE", 1092514},
	{263703, "VIGINET C.A", "VE", 962781},
	{11562, "Net Uno, C.A.", "VE", 896094},
	{272809, "THUNDERNET, C.A.", "VE", 515761},
	{27889, "Telecomunicaciones MOVILNET", "VE", 417762},
}

// venezuelaTail fills the remaining 22.82% of the market with smaller
// access networks so that the top-10 sum is 77.18% of the country total,
// matching the table's summary row.
var venezuelaTail = []Estimate{
	{8053, "IFX Venezuela", "VE", 390000},
	{265641, "CIX BROADBAND", "VE", 360000},
	{269832, "MDSTELECOM", "VE", 340000},
	{270042, "RED DOT TECHNOLOGIES", "VE", 320000},
	{269738, "Chircalnet Telecom", "VE", 300000},
	{267809, "360NET", "VE", 285000},
	{23379, "Blackburn Technologies II", "VE", 270000},
	{269918, "SISTEMAS TELCORP, C.A.", "VE", 255000},
	{21980, "Dayco Telecom", "VE", 240000},
	{272102, "BESSER SOLUTIONS", "VE", 225000},
	{264703, "UFINET VE", "VE", 210000},
	{262999, "GalaNet", "VE", 195000},
	{263237, "Lifetel", "VE", 180000},
	{264774, "NetVision VE", "VE", 165000},
	{265599, "OptiRed", "VE", 150000},
	{266873, "TeleTotal", "VE", 138000},
	{267715, "ConexRed", "VE", 126000},
	{268444, "AndesNet", "VE", 114000},
	{269111, "CaribeLink", "VE", 102000},
	{270555, "LlanoNet", "VE", 90000},
	{271333, "ZuliaTel", "VE", 78000},
	{273001, "OrinocoNet", "VE", 66018},
}

// Venezuela returns the calibrated Venezuelan population table: the exact
// Table 1 top ten plus a long tail such that the top ten hold 77.18% of
// the market and CANTV 21.50%.
func Venezuela() *Estimates {
	e := New()
	for _, est := range venezuelaTop10 {
		e.Add(est)
	}
	for _, est := range venezuelaTail {
		e.Add(est)
	}
	return e
}
