package aspop

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vzlens/internal/bgp"
)

func TestTable1TopTen(t *testing.T) {
	e := Venezuela()
	top := e.TopN("VE", 10)
	if len(top) != 10 {
		t.Fatalf("top = %d entries", len(top))
	}
	// Exact figures from Table 1.
	if top[0].ASN != 8048 || top[0].Users != 4330868 {
		t.Errorf("rank 1 = %+v, want CANTV 4,330,868", top[0])
	}
	if top[1].ASN != 21826 || top[1].Users != 2490253 {
		t.Errorf("rank 2 = %+v, want Telemic 2,490,253", top[1])
	}
	if top[9].ASN != 27889 || top[9].Users != 417762 {
		t.Errorf("rank 10 = %+v, want MOVILNET 417,762", top[9])
	}
	var sum int64
	for _, est := range top {
		sum += est.Users
	}
	if sum != 15552683 {
		t.Errorf("top-10 sum = %d, want 15,552,683", sum)
	}
}

func TestTable1Shares(t *testing.T) {
	e := Venezuela()
	// CANTV holds 21.50% of the market.
	if got := e.Share(8048) * 100; math.Abs(got-21.50) > 0.2 {
		t.Errorf("CANTV share = %.2f%%, want 21.50%%", got)
	}
	// Top ten hold 77.18%.
	var asns []bgp.ASN
	for _, est := range e.TopN("VE", 10) {
		asns = append(asns, est.ASN)
	}
	if got := e.ShareOf("VE", asns) * 100; math.Abs(got-77.18) > 0.2 {
		t.Errorf("top-10 share = %.2f%%, want 77.18%%", got)
	}
	// CANTV is nearly double its closest competitor (paper).
	ratio := float64(e.Users(8048)) / float64(e.Users(21826))
	if ratio < 1.6 || ratio > 2.1 {
		t.Errorf("CANTV/Telemic ratio = %.2f, want ~1.74", ratio)
	}
}

func TestShareOfDeduplicates(t *testing.T) {
	e := Venezuela()
	once := e.ShareOf("VE", []bgp.ASN{8048})
	twice := e.ShareOf("VE", []bgp.ASN{8048, 8048})
	if once != twice {
		t.Error("duplicate ASNs must not double-count")
	}
}

func TestShareOfIgnoresForeign(t *testing.T) {
	e := Venezuela()
	e.Add(Estimate{15169, "Google", "US", 1000000})
	with := e.ShareOf("VE", []bgp.ASN{8048, 15169})
	without := e.ShareOf("VE", []bgp.ASN{8048})
	if with != without {
		t.Error("foreign AS should not contribute to VE share")
	}
}

func TestLookupAndUsers(t *testing.T) {
	e := Venezuela()
	est, ok := e.Lookup(6306)
	if !ok || est.Name != "TELEFONICA VENEZOLANA, C.A." {
		t.Errorf("Lookup = %+v %v", est, ok)
	}
	if _, ok := e.Lookup(99999); ok {
		t.Error("unknown ASN resolved")
	}
	if e.Users(99999) != 0 {
		t.Error("unknown users != 0")
	}
}

func TestEmptyCountry(t *testing.T) {
	e := Venezuela()
	if e.CountryUsers("ZZ") != 0 {
		t.Error("unknown country users != 0")
	}
	if e.ShareOf("ZZ", []bgp.ASN{8048}) != 0 {
		t.Error("unknown country share != 0")
	}
	if got := e.TopN("ZZ", 5); len(got) != 0 {
		t.Errorf("unknown country TopN = %v", got)
	}
}

func TestInCountryDescending(t *testing.T) {
	e := Venezuela()
	all := e.InCountry("VE")
	if len(all) != e.Len() {
		t.Fatalf("InCountry = %d, want %d", len(all), e.Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i].Users > all[i-1].Users {
			t.Fatal("not descending")
		}
	}
}

func TestRoundTrip(t *testing.T) {
	e := Venezuela()
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != e.Len() {
		t.Fatalf("round trip len = %d, want %d", parsed.Len(), e.Len())
	}
	if parsed.Users(8048) != e.Users(8048) {
		t.Error("CANTV users differ after round trip")
	}
	// Names with separators survive (SplitN keeps commas in names).
	est, _ := parsed.Lookup(6306)
	if est.Name != "TELEFONICA VENEZOLANA, C.A." {
		t.Errorf("name after round trip = %q", est.Name)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"8048|123|VE",    // short
		"x|123|VE|name",  // bad ASN
		"8048|x|VE|name", // bad users
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestTopNClamp(t *testing.T) {
	e := New()
	e.Add(Estimate{1, "A", "VE", 10})
	if got := e.TopN("VE", 99); len(got) != 1 {
		t.Errorf("TopN clamp = %v", got)
	}
}
