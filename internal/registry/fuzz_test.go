package registry

import (
	"strings"
	"testing"
)

// FuzzParseRecord feeds arbitrary lines through the delegation-record
// parser: it must never panic, and anything it accepts must round-trip
// through String back to an equal record.
func FuzzParseRecord(f *testing.F) {
	f.Add("lacnic|VE|ipv4|200.44.0.0|65536|20001207|allocated|ORG-CANV")
	f.Add("2|lacnic|20240101|12345")
	f.Add("lacnic|*|ipv4|*|12345|summary")
	f.Add("")
	f.Add("|||||||")
	f.Add("lacnic|VE|asn|8048|1|19980101|allocated|ORG-CANV")

	f.Fuzz(func(t *testing.T, line string) {
		rec, ok, err := ParseRecord(line)
		if err != nil || !ok {
			return
		}
		rendered := rec.String()
		rec2, ok2, err2 := ParseRecord(rendered)
		if err2 != nil || !ok2 {
			t.Fatalf("accepted %q but rendered form %q fails: %v", line, rendered, err2)
		}
		if rec2 != rec {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
		}
	})
}

// FuzzParse feeds arbitrary multi-line inputs through the file parser.
func FuzzParse(f *testing.F) {
	f.Add("2|lacnic|x|1\nlacnic|VE|ipv4|200.44.0.0|65536|20001207|allocated|ORG-CANV\n")
	f.Add("# nothing\n\n")
	f.Fuzz(func(t *testing.T, in string) {
		tab, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		if tab.Len() < 0 {
			t.Fatal("negative length")
		}
	})
}
