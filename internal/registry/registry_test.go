package registry

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vzlens/internal/months"
)

func TestParseRecord(t *testing.T) {
	rec, ok, err := ParseRecord("lacnic|VE|ipv4|200.44.0.0|65536|20001207|allocated|ORG-CANV")
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if rec.Country != "VE" || rec.Type != "ipv4" || rec.Value != 65536 {
		t.Errorf("rec = %+v", rec)
	}
	if rec.Date != months.New(2000, time.December) {
		t.Errorf("date = %v", rec.Date)
	}
	if rec.Holder != "ORG-CANV" {
		t.Errorf("holder = %q", rec.Holder)
	}
}

func TestParseSkipsHeadersAndSummaries(t *testing.T) {
	for _, line := range []string{
		"",
		"# comment",
		"2|lacnic|20240101|12345|19870101|20240101|-0400",
		"lacnic|*|ipv4|*|12345|summary",
	} {
		_, ok, err := ParseRecord(line)
		if err != nil || ok {
			t.Errorf("line %q: ok=%v err=%v, want skipped", line, ok, err)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	for _, line := range []string{
		"lacnic|VE|ipv4", // short
		"lacnic|VE|ipv4|200.44.0.0|banana|20001207|allocated|X", // bad value
		"lacnic|VE|ipv4|200.44.0.0|65536|2000127|allocated|X",   // bad date length
		"lacnic|VE|ipv4|200.44.0.0|65536|20001307|allocated|X",  // month 13
		"lacnic|VE|ipv4|not-an-ip|65536|20001207|allocated|X",   // bad address
	} {
		if _, _, err := ParseRecord(line); err == nil {
			t.Errorf("line %q: want error", line)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{
		Registry: "lacnic", Country: "VE", Type: "ipv4",
		Start: "200.44.0.0", Value: 65536,
		Date: months.New(2000, time.December), Status: "allocated", Holder: "ORG-CANV",
	}
	parsed, ok, err := ParseRecord(rec.String())
	if err != nil || !ok {
		t.Fatalf("round trip parse: %v %v", ok, err)
	}
	if parsed != rec {
		t.Errorf("round trip = %+v, want %+v", parsed, rec)
	}
}

func sample() *Table {
	t := NewTable()
	t.Add(Record{"lacnic", "VE", "ipv4", "200.44.0.0", 1 << 16, months.New(2000, time.December), "allocated", "ORG-CANV"})
	t.Add(Record{"lacnic", "VE", "ipv4", "186.88.0.0", 1 << 17, months.New(2010, time.March), "allocated", "ORG-CANV"})
	t.Add(Record{"lacnic", "VE", "ipv4", "190.202.0.0", 1 << 16, months.New(2008, time.June), "allocated", "ORG-TELF"})
	t.Add(Record{"lacnic", "BR", "ipv4", "200.160.0.0", 1 << 18, months.New(2001, time.May), "allocated", "ORG-NICB"})
	t.Add(Record{"lacnic", "VE", "asn", "8048", 1, months.New(1998, time.January), "allocated", "ORG-CANV"})
	return t
}

func TestIPv4CountryTotal(t *testing.T) {
	tab := sample()
	if got := tab.IPv4CountryTotal("VE", months.New(2005, time.January)); got != 1<<16 {
		t.Errorf("VE@2005 = %d, want %d", got, 1<<16)
	}
	if got := tab.IPv4CountryTotal("VE", months.New(2011, time.January)); got != 1<<16+1<<17+1<<16 {
		t.Errorf("VE@2011 = %d", got)
	}
	if got := tab.IPv4CountryTotal("VE", months.New(1999, time.January)); got != 0 {
		t.Errorf("VE@1999 = %d, want 0", got)
	}
	// ASN records never count toward IPv4 totals.
	if got := tab.IPv4CountryTotal("BR", months.New(2024, time.January)); got != 1<<18 {
		t.Errorf("BR = %d", got)
	}
}

func TestHolderShare(t *testing.T) {
	tab := sample()
	m := months.New(2011, time.January)
	canv := tab.HolderShare("ORG-CANV", "VE", m)
	want := float64(1<<16+1<<17) / float64(1<<16+1<<17+1<<16)
	if canv != want {
		t.Errorf("CANV share = %v, want %v", canv, want)
	}
	if got := tab.HolderShare("ORG-NONE", "VE", m); got != 0 {
		t.Errorf("missing holder share = %v", got)
	}
	if got := tab.HolderShare("ORG-CANV", "ZZ", m); got != 0 {
		t.Errorf("empty country share = %v", got)
	}
}

func TestHolders(t *testing.T) {
	hs := sample().Holders("VE")
	if len(hs) != 2 || hs[0] != "ORG-CANV" || hs[1] != "ORG-TELF" {
		t.Errorf("Holders = %v", hs)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	tab := sample()
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "2|lacnic|") {
		t.Error("missing version header")
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != tab.Len() {
		t.Fatalf("round trip len = %d, want %d", parsed.Len(), tab.Len())
	}
	m := months.New(2024, time.January)
	if parsed.IPv4CountryTotal("VE", m) != tab.IPv4CountryTotal("VE", m) {
		t.Error("totals differ after round trip")
	}
}

func TestParseRejectsBadLine(t *testing.T) {
	_, err := Parse(strings.NewReader("lacnic|VE|ipv4|bad\n"))
	if err == nil {
		t.Error("want parse error with line number")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestRecordsSorted(t *testing.T) {
	recs := sample().Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].Date < recs[i-1].Date {
			t.Fatalf("records not date-sorted: %v before %v", recs[i-1].Date, recs[i])
		}
	}
}

// Property: country total is monotone non-decreasing in time.
func TestQuickTotalMonotone(t *testing.T) {
	tab := sample()
	f := func(a, b uint8) bool {
		m1 := months.New(1995+int(a)%30, time.January)
		m2 := m1.Add(int(b) % 120)
		return tab.IPv4CountryTotal("VE", m1) <= tab.IPv4CountryTotal("VE", m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountByType(t *testing.T) {
	tab := sample()
	m := months.New(2024, time.January)
	if got := tab.CountByType("VE", "ipv4", m); got != 3 {
		t.Errorf("ipv4 count = %d, want 3", got)
	}
	if got := tab.CountByType("VE", "asn", m); got != 1 {
		t.Errorf("asn count = %d, want 1", got)
	}
	if got := tab.CountByType("VE", "ipv6", m); got != 0 {
		t.Errorf("ipv6 count = %d, want 0", got)
	}
	if got := tab.CountByType("VE", "asn", months.New(1997, time.January)); got != 0 {
		t.Errorf("early asn count = %d, want 0", got)
	}
}
