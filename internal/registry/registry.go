// Package registry implements the RIR delegation-file format LACNIC
// publishes (the pipe-separated "NRO extended allocation and assignment"
// format) together with the address-space accounting the paper's Section 4
// performs on it: how much IPv4 space each country and each holder has
// been delegated at any month.
//
// Format reference (one record per line):
//
//	lacnic|VE|ipv4|200.44.0.0|65536|20001207|allocated|ORG-CANV
//
// Fields: registry, country code, type, start address, value (number of
// addresses for ipv4), date (YYYYMMDD), status, opaque holder ID. Header
// and summary lines (version/summary records) are accepted and skipped.
package registry

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"vzlens/internal/months"
)

// Record is one delegation line.
type Record struct {
	Registry string // "lacnic"
	Country  string // ISO code
	Type     string // "ipv4", "ipv6", "asn"
	Start    string // start address or first ASN
	Value    int64  // address count (ipv4), prefix length (ipv6), ASN count
	Date     months.Month
	Status   string // "allocated" or "assigned"
	Holder   string // opaque org identifier, e.g. "ORG-CANV"
}

// String renders the record in delegation-file syntax.
func (r Record) String() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%s|%s|%s",
		r.Registry, r.Country, strings.ToLower(r.Type), r.Start, r.Value,
		dateString(r.Date), r.Status, r.Holder)
}

func dateString(m months.Month) string {
	if m.IsZero() {
		return "00000000"
	}
	return fmt.Sprintf("%04d%02d01", m.Year(), int(m.Month()))
}

// ParseRecord parses one delegation line. It returns (zero, false, nil)
// for header, version and summary lines, which are valid but carry no
// delegation.
func ParseRecord(line string) (Record, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Record{}, false, nil
	}
	fields := strings.Split(line, "|")
	// Version header: 2|lacnic|20240101|...; summary: lacnic|*|ipv4|*|1234|summary
	if len(fields) > 0 && fields[0] != "" && fields[0][0] >= '0' && fields[0][0] <= '9' {
		return Record{}, false, nil
	}
	if len(fields) >= 6 && fields[len(fields)-1] == "summary" {
		return Record{}, false, nil
	}
	if len(fields) < 7 {
		return Record{}, false, fmt.Errorf("registry: short record %q", line)
	}
	value, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("registry: bad value in %q: %w", line, err)
	}
	date, err := parseDate(fields[5])
	if err != nil {
		return Record{}, false, fmt.Errorf("registry: bad date in %q: %w", line, err)
	}
	rec := Record{
		Registry: fields[0],
		Country:  strings.ToUpper(fields[1]),
		Type:     strings.ToLower(fields[2]),
		Start:    fields[3],
		Value:    value,
		Date:     date,
		Status:   fields[6],
	}
	if len(fields) >= 8 {
		rec.Holder = fields[7]
	}
	if rec.Type == "ipv4" {
		if _, err := netip.ParseAddr(rec.Start); err != nil {
			return Record{}, false, fmt.Errorf("registry: bad ipv4 start in %q: %w", line, err)
		}
	}
	return rec, true, nil
}

func parseDate(s string) (months.Month, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("want YYYYMMDD, got %q", s)
	}
	y, err := strconv.Atoi(s[:4])
	if err != nil {
		return 0, err
	}
	mo, err := strconv.Atoi(s[4:6])
	if err != nil {
		return 0, err
	}
	if mo < 1 || mo > 12 {
		return 0, fmt.Errorf("month out of range in %q", s)
	}
	return months.New(y, time.Month(mo)), nil
}

// Table is an in-memory delegation archive.
type Table struct {
	records []Record
}

// NewTable returns an empty Table.
func NewTable() *Table { return &Table{} }

// Add appends a record.
func (t *Table) Add(r Record) { t.records = append(t.records, r) }

// Len returns the number of records.
func (t *Table) Len() int { return len(t.records) }

// Records returns all records sorted by delegation date then start.
func (t *Table) Records() []Record {
	out := make([]Record, len(t.records))
	copy(out, t.records)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Date != out[j].Date {
			return out[i].Date < out[j].Date
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Parse reads a delegation file.
func Parse(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rec, ok, err := ParseRecord(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			t.Add(rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("registry: read: %w", err)
	}
	return t, nil
}

// WriteTo writes the table in delegation-file syntax, preceded by a
// version header, implementing io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(s string) error {
		k, err := io.WriteString(w, s)
		n += int64(k)
		return err
	}
	if err := write("2|lacnic|vzlens|" + strconv.Itoa(len(t.records)) + "\n"); err != nil {
		return n, err
	}
	for _, r := range t.Records() {
		if err := write(r.String() + "\n"); err != nil {
			return n, err
		}
	}
	return n, nil
}

// IPv4CountryTotal returns the number of IPv4 addresses delegated to
// country cc at or before month m.
func (t *Table) IPv4CountryTotal(cc string, m months.Month) int64 {
	var total int64
	for _, r := range t.records {
		if r.Type == "ipv4" && r.Country == cc && !r.Date.After(m) {
			total += r.Value
		}
	}
	return total
}

// IPv4HolderTotal returns the number of IPv4 addresses delegated to the
// given holder ID at or before month m.
func (t *Table) IPv4HolderTotal(holder string, m months.Month) int64 {
	var total int64
	for _, r := range t.records {
		if r.Type == "ipv4" && r.Holder == holder && !r.Date.After(m) {
			total += r.Value
		}
	}
	return total
}

// HolderShare returns the holder's fraction of the country's delegated
// IPv4 space at month m (0 when the country has none).
func (t *Table) HolderShare(holder, cc string, m months.Month) float64 {
	country := t.IPv4CountryTotal(cc, m)
	if country == 0 {
		return 0
	}
	return float64(t.IPv4HolderTotal(holder, m)) / float64(country)
}

// CountByType returns the number of delegations of the given type
// ("ipv4", "ipv6", "asn") to country cc at or before month m.
func (t *Table) CountByType(cc, typ string, m months.Month) int {
	n := 0
	for _, r := range t.records {
		if r.Type == typ && r.Country == cc && !r.Date.After(m) {
			n++
		}
	}
	return n
}

// Holders returns the distinct holder IDs with ipv4 space in country cc,
// sorted.
func (t *Table) Holders(cc string) []string {
	seen := map[string]bool{}
	for _, r := range t.records {
		if r.Type == "ipv4" && r.Country == cc && r.Holder != "" {
			seen[r.Holder] = true
		}
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
