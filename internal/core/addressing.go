package core

import (
	"sort"
	"strconv"
	"time"

	"vzlens/internal/bgp"
	"vzlens/internal/months"
	"vzlens/internal/series"
	"vzlens/internal/world"
)

func itoa(v int) string { return strconv.Itoa(v) }

// Fig2Result reproduces Figure 2: the evolution of announced address
// space originated by CANTV-AS8048 and Telefonica de Venezuela-AS6306,
// both as a fraction of the national announced space and in absolute
// addresses.
type Fig2Result struct {
	CANTVShare      *series.Series
	TelefonicaShare *series.Series
	CANTVSpace      *series.Series
	TelefonicaSpace *series.Series

	CANTVAvgShare  float64
	CANTVPeakShare float64
	MinGap         float64 // narrowest CANTV-Telefonica share gap pre-2014
}

// Fig2AddressSpace runs the address-space analysis over monthly RIB
// snapshots 2008-2024.
func Fig2AddressSpace(w *world.World) Fig2Result {
	lo, hi := months.New(2008, time.January), months.New(2024, time.January)
	arch := w.RIBArchive(lo, hi)
	r := Fig2Result{
		CANTVShare:      series.New(),
		TelefonicaShare: series.New(),
		CANTVSpace:      series.New(),
		TelefonicaSpace: series.New(),
		MinGap:          1,
	}
	var sum float64
	var n int
	for _, m := range arch.Months() {
		rib := arch.Get(m)
		var total int64
		origins := map[bgp.ASN]bool{}
		for _, p := range rib.Prefixes() {
			origins[p.Origin] = true
		}
		for asn := range origins {
			total += rib.AnnouncedSpace(asn)
		}
		if total == 0 {
			continue
		}
		canv := rib.AnnouncedSpace(world.ASCANTV)
		telf := rib.AnnouncedSpace(world.ASTelefonica)
		cs := float64(canv) / float64(total)
		ts := float64(telf) / float64(total)
		r.CANTVShare.Set(m, cs)
		r.TelefonicaShare.Set(m, ts)
		r.CANTVSpace.Set(m, float64(canv))
		r.TelefonicaSpace.Set(m, float64(telf))
		sum += cs
		n++
		if cs > r.CANTVPeakShare {
			r.CANTVPeakShare = cs
		}
		if m.Before(months.New(2014, time.January)) {
			if gap := cs - ts; gap < r.MinGap {
				r.MinGap = gap
			}
		}
	}
	if n > 0 {
		r.CANTVAvgShare = sum / float64(n)
	}
	return r
}

// Table renders the headline share statistics.
func (r Fig2Result) Table() *Table {
	t := &Table{
		Caption: "Figure 2: CANTV vs Telefonica announced address space",
		Header:  []string{"statistic", "value"},
	}
	t.AddRow("CANTV average share", pct(r.CANTVAvgShare))
	t.AddRow("CANTV peak share", pct(r.CANTVPeakShare))
	t.AddRow("narrowest pre-2014 gap", pct(r.MinGap))
	return t
}

// Fig14Result reproduces Appendix C's Figure 14: the visibility heatmap
// of every prefix Telefonica de Venezuela announced between 2016 and
// 2024.
type Fig14Result struct {
	// Visibility maps prefix -> months announced.
	Visibility map[string][]months.Month
	// Withdrawn lists prefixes that disappeared around June 2016.
	Withdrawn []string
	// Reappeared lists the larger aggregates that returned in June 2023.
	Reappeared []string
}

// Fig14PrefixVisibility runs the prefix-visibility analysis.
func Fig14PrefixVisibility(w *world.World) Fig14Result {
	arch := w.RIBArchive(months.New(2016, time.January), months.New(2024, time.January))
	r := Fig14Result{Visibility: arch.VisibilityMatrix(world.ASTelefonica)}
	cut := months.New(2016, time.July)
	reapp := months.New(2023, time.June)
	for prefix, ms := range r.Visibility {
		if len(ms) == 0 {
			continue
		}
		first, last := ms[0], ms[len(ms)-1]
		if last.Before(cut) {
			r.Withdrawn = append(r.Withdrawn, prefix)
		}
		if !first.Before(reapp) {
			r.Reappeared = append(r.Reappeared, prefix)
		}
	}
	sort.Strings(r.Withdrawn)
	sort.Strings(r.Reappeared)
	return r
}

// Table renders the withdrawal/reappearance summary.
func (r Fig14Result) Table() *Table {
	t := &Table{
		Caption: "Figure 14: Telefonica de Venezuela prefix visibility",
		Header:  []string{"event", "prefixes"},
	}
	t.AddRow("withdrawn by mid-2016", itoa(len(r.Withdrawn)))
	t.AddRow("reappeared as aggregates in 2023", itoa(len(r.Reappeared)))
	return t
}

// Fig8Result reproduces Figure 8: CANTV's upstream and downstream counts
// over time.
type Fig8Result struct {
	Upstreams   *series.Series
	Downstreams *series.Series

	PeakUpstreams     int
	PeakUpstreamMonth months.Month
	TroughUpstreams   int // minimum after the 2013 peak
	TroughMonth       months.Month
	LatestDownstreams int
}

// Fig8CANTV runs the connectivity analysis over monthly AS relationship
// snapshots 1998-2024.
func Fig8CANTV(w *world.World) Fig8Result {
	lo, hi := months.New(1998, time.January), months.New(2024, time.January)
	arch := w.ASRelArchive(lo, hi)
	r := Fig8Result{Upstreams: series.New(), Downstreams: series.New()}
	up := arch.UpstreamSeries(world.ASCANTV)
	down := arch.DownstreamSeries(world.ASCANTV)
	for m, n := range up {
		r.Upstreams.Set(m, float64(n))
		if n > r.PeakUpstreams || (n == r.PeakUpstreams && m.Before(r.PeakUpstreamMonth)) {
			r.PeakUpstreams = n
			r.PeakUpstreamMonth = m
		}
	}
	for m, n := range down {
		r.Downstreams.Set(m, float64(n))
	}
	r.TroughUpstreams = r.PeakUpstreams
	for m, n := range up {
		if m.After(r.PeakUpstreamMonth) && (n < r.TroughUpstreams || (n == r.TroughUpstreams && m.Before(r.TroughMonth))) {
			r.TroughUpstreams = n
			r.TroughMonth = m
		}
	}
	if last, ok := r.Downstreams.Last(); ok {
		r.LatestDownstreams = int(last.Value)
	}
	return r
}

// Table renders the connectivity summary.
func (r Fig8Result) Table() *Table {
	t := &Table{
		Caption: "Figure 8: CANTV-AS8048 interdomain connectivity",
		Header:  []string{"statistic", "value", "month"},
	}
	t.AddRow("peak upstream providers", itoa(r.PeakUpstreams), r.PeakUpstreamMonth.String())
	t.AddRow("post-peak trough", itoa(r.TroughUpstreams), r.TroughMonth.String())
	t.AddRow("latest downstream customers", itoa(r.LatestDownstreams), "")
	return t
}

// Fig9Result reproduces Figure 9: the heatmap of providers serving
// transit to CANTV for more than 12 months since 1998.
type Fig9Result struct {
	// History maps provider ASN -> active months.
	History map[bgp.ASN][]months.Month
	// USDepartures lists US-registered providers that stopped serving
	// CANTV, with their final month.
	USDepartures map[bgp.ASN]months.Month
	// RemainingUS is the US provider still serving at the end (Columbus).
	RemainingUS []bgp.ASN
}

// usRegistered marks the US-registered providers of Figure 9.
var usRegistered = map[bgp.ASN]bool{
	world.ASVerizon: true, world.ASSprint: true, world.ASATT: true,
	world.ASGTT: true, world.ASnLayer: true, world.ASLevel3: true,
	world.ASGBLX: true, world.ASColumbus: true,
}

// Fig9TransitHeatmap runs the provider-history analysis.
func Fig9TransitHeatmap(w *world.World) Fig9Result {
	lo, hi := months.New(1998, time.January), months.New(2024, time.January)
	arch := w.ASRelArchive(lo, hi)
	r := Fig9Result{
		History:      arch.ProviderHistory(world.ASCANTV, 12/w.Config.Step+1),
		USDepartures: map[bgp.ASN]months.Month{},
	}
	for asn, ms := range r.History {
		if !usRegistered[asn] || len(ms) == 0 {
			continue
		}
		last := ms[len(ms)-1]
		if last.Before(hi) {
			r.USDepartures[asn] = last
		} else {
			r.RemainingUS = append(r.RemainingUS, asn)
		}
	}
	sort.Slice(r.RemainingUS, func(i, j int) bool { return r.RemainingUS[i] < r.RemainingUS[j] })
	return r
}

// Table renders the departure timeline.
func (r Fig9Result) Table() *Table {
	t := &Table{
		Caption: "Figure 9: US providers departing CANTV",
		Header:  []string{"provider", "last month"},
	}
	var asns []bgp.ASN
	for asn := range r.USDepartures {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool {
		// Ties on the departure month break by ASN, so the row order
		// never depends on map iteration.
		if r.USDepartures[asns[i]] != r.USDepartures[asns[j]] {
			return r.USDepartures[asns[i]] < r.USDepartures[asns[j]]
		}
		return asns[i] < asns[j]
	})
	for _, asn := range asns {
		t.AddRow("AS"+asn.String(), r.USDepartures[asn].String())
	}
	for _, asn := range r.RemainingUS {
		t.AddRow("AS"+asn.String(), "still serving")
	}
	return t
}
