package core

import (
	"sort"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/geo"
	"vzlens/internal/months"
	"vzlens/internal/series"
)

// nonLACNICOrigins are the countries whose root instances count as
// "overseas" in the origin analyses.
var nonLACNICOrigins = map[string]bool{
	"US": true, "GB": true, "DE": true, "FR": true, "NL": true,
	"SE": true, "JP": true, "ZA": true, "CA": true, "RU": true,
	"ES": true, "IT": true,
}

// Fig6Result reproduces Figure 6: root DNS replicas per country detected
// through CHAOS TXT strings.
type Fig6Result struct {
	PerCountry *series.Panel
	Region     *series.Series

	RegionStart, RegionEnd int
	VESeries               map[months.Month]int
}

// Fig6RootDNS runs the replica-count analysis over a CHAOS campaign.
func Fig6RootDNS(c *atlas.ChaosCampaign) Fig6Result {
	r := Fig6Result{PerCountry: series.NewPanel(), VESeries: map[months.Month]int{}}
	for _, m := range c.Months() {
		counts := c.SitesByCountry(m, "")
		for _, cc := range geo.LACNICCountries() {
			r.PerCountry.Country(cc).Set(m, float64(counts[cc]))
		}
		r.VESeries[m] = counts["VE"]
	}
	r.Region = r.PerCountry.RegionalTotal()
	if first, ok := r.Region.First(); ok {
		r.RegionStart = int(first.Value)
	}
	if last, ok := r.Region.Last(); ok {
		r.RegionEnd = int(last.Value)
	}
	return r
}

// Table renders the replica summary.
func (r Fig6Result) Table() *Table {
	t := &Table{
		Caption: "Figure 6: root DNS replicas per country (CHAOS TXT)",
		Header:  []string{"series", "first", "last"},
	}
	t.AddRow("region total", itoa(r.RegionStart), itoa(r.RegionEnd))
	for _, cc := range []string{"BR", "CL", "MX", "AR", "VE"} {
		s := r.PerCountry.Country(cc)
		first, _ := s.First()
		last, _ := s.Last()
		t.AddRow(cc, itoa(int(first.Value)), itoa(int(last.Value)))
	}
	return t
}

// Fig16Result reproduces Appendix E's Figure 16: where the root servers
// answering Venezuelan probes are located.
type Fig16Result struct {
	// Origins maps month -> origin country -> replica count, restricted
	// to responses seen by probes in Venezuela.
	Origins map[months.Month]map[string]int
	// LatestTop lists origin countries in the final month, descending.
	LatestTop []string
}

// Fig16RootOrigins runs the origin analysis.
func Fig16RootOrigins(c *atlas.ChaosCampaign) Fig16Result {
	r := Fig16Result{Origins: map[months.Month]map[string]int{}}
	ms := c.Months()
	for _, m := range ms {
		r.Origins[m] = c.SitesByCountry(m, "VE")
	}
	if len(ms) > 0 {
		last := r.Origins[ms[len(ms)-1]]
		for cc := range last {
			r.LatestTop = append(r.LatestTop, cc)
		}
		sort.Slice(r.LatestTop, func(i, j int) bool {
			if last[r.LatestTop[i]] != last[r.LatestTop[j]] {
				return last[r.LatestTop[i]] > last[r.LatestTop[j]]
			}
			return r.LatestTop[i] < r.LatestTop[j]
		})
	}
	return r
}

// Table renders the latest origin distribution.
func (r Fig16Result) Table() *Table {
	t := &Table{
		Caption: "Figure 16: root origins serving Venezuelan probes (latest month)",
		Header:  []string{"origin", "replicas"},
	}
	var lastMonth months.Month
	for m := range r.Origins {
		if m > lastMonth {
			lastMonth = m
		}
	}
	for _, cc := range r.LatestTop {
		t.AddRow(cc, itoa(r.Origins[lastMonth][cc]))
	}
	return t
}

// Fig12Result reproduces Figure 12: median RTT to Google Public DNS.
type Fig12Result struct {
	Panel *series.Panel

	// Half-year summary statistics (means of monthly medians).
	VE2016H1, VE2023H2               float64
	RegionAvg2023H2                  float64
	VEOverRegion                     float64
	CountryH1of2016, CountryH2of2023 map[string]float64
}

// halfWindowMean averages a country's monthly medians over six months.
func halfWindowMean(tc *atlas.TraceCampaign, cc string, lo months.Month) (float64, bool) {
	var sum float64
	var n int
	for i := 0; i < 6; i++ {
		if v, ok := tc.CountryMedian(cc, lo.Add(i)); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Fig12GPDNS runs the latency analysis over the traceroute campaign.
func Fig12GPDNS(tc *atlas.TraceCampaign) Fig12Result {
	r := Fig12Result{
		Panel:           tc.MedianPanel(),
		CountryH1of2016: map[string]float64{},
		CountryH2of2023: map[string]float64{},
	}
	h1of2016 := months.New(2016, time.January)
	h2of2023 := months.New(2023, time.July)
	var sum float64
	var n int
	for _, cc := range r.Panel.Countries() {
		if v, ok := halfWindowMean(tc, cc, h1of2016); ok {
			r.CountryH1of2016[cc] = v
		}
		if v, ok := halfWindowMean(tc, cc, h2of2023); ok {
			r.CountryH2of2023[cc] = v
			sum += v
			n++
		}
	}
	r.VE2016H1 = r.CountryH1of2016["VE"]
	r.VE2023H2 = r.CountryH2of2023["VE"]
	if n > 0 {
		r.RegionAvg2023H2 = sum / float64(n)
	}
	if r.RegionAvg2023H2 > 0 {
		r.VEOverRegion = r.VE2023H2 / r.RegionAvg2023H2
	}
	return r
}

// Table renders the latency summary.
func (r Fig12Result) Table() *Table {
	t := &Table{
		Caption: "Figure 12: median RTT to Google Public DNS (ms)",
		Header:  []string{"series", "H1 2016", "H2 2023"},
	}
	for _, cc := range []string{"AR", "BR", "CL", "CO", "MX", "VE"} {
		t.AddRow(cc, f2(r.CountryH1of2016[cc]), f2(r.CountryH2of2023[cc]))
	}
	t.AddRow("LACNIC average", "", f2(r.RegionAvg2023H2))
	t.AddRow("VE / region", "", f2(r.VEOverRegion)+"x")
	return t
}

// Fig20Result reproduces Appendix J's Figure 20: Venezuelan probe
// locations against their minimum RTT to GPDNS.
type Fig20Result struct {
	Probes []atlas.ProbeRTT
	// Bands counts probes by the figure's color bands.
	Under10, From10to20, From20to40, Above40 int
}

// Fig20ProbeGeo runs the probe-geography analysis for one month.
func Fig20ProbeGeo(fleet *atlas.Fleet, tc *atlas.TraceCampaign, m months.Month) Fig20Result {
	var r Fig20Result
	for _, pr := range tc.ProbeMinsWithLocation(fleet, "VE", m) {
		r.Probes = append(r.Probes, pr)
		switch {
		case pr.MinRTTms < 10:
			r.Under10++
		case pr.MinRTTms < 20:
			r.From10to20++
		case pr.MinRTTms < 40:
			r.From20to40++
		default:
			r.Above40++
		}
	}
	sort.Slice(r.Probes, func(i, j int) bool { return r.Probes[i].Probe.ID < r.Probes[j].Probe.ID })
	return r
}

// Table renders the band counts.
func (r Fig20Result) Table() *Table {
	t := &Table{
		Caption: "Figure 20: Venezuelan probes by RTT band",
		Header:  []string{"band", "probes"},
	}
	t.AddRow("< 10 ms (border)", itoa(r.Under10))
	t.AddRow("10-20 ms", itoa(r.From10to20))
	t.AddRow("20-40 ms", itoa(r.From20to40))
	t.AddRow("> 40 ms", itoa(r.Above40))
	return t
}
