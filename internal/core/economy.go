package core

import (
	"time"

	"vzlens/internal/econ"
	"vzlens/internal/months"
	"vzlens/internal/series"
)

// Fig1Result reproduces Figure 1: the macro indicators of the crisis with
// the drop annotations the paper prints on each panel.
type Fig1Result struct {
	Oil        *series.Series
	GDP        *series.Series
	Inflation  *series.Series
	Population *series.Series

	OilDropPct        float64 // annotated -81.49%
	GDPDropPct        float64 // annotated -70.90%
	InflationPeak     float64 // annotated 32,000%
	PopulationDropPct float64 // annotated -13.85%
}

// Fig1Economy computes the Figure 1 panels.
func Fig1Economy() Fig1Result {
	r := Fig1Result{
		Oil:        econ.OilProductionVE(),
		GDP:        econ.GDPPerCapita().Country("VE"),
		Inflation:  econ.InflationVE(),
		Population: econ.PopulationVE(),
	}
	r.OilDropPct, _ = econ.DropFromPeak(r.Oil)
	r.GDPDropPct, _ = econ.DropFromPeak(r.GDP)
	if peak, ok := r.Inflation.MaxPoint(); ok {
		r.InflationPeak = peak.Value
	}
	r.PopulationDropPct, _ = econ.DropFromPeak(r.Population)
	return r
}

// Table renders the annotated drops.
func (r Fig1Result) Table() *Table {
	t := &Table{
		Caption: "Figure 1: Venezuela's economic collapse (annotations)",
		Header:  []string{"indicator", "statistic", "value"},
	}
	t.AddRow("oil production", "drop from peak", f2(r.OilDropPct)+"%")
	t.AddRow("GDP per capita", "drop from peak", f2(r.GDPDropPct)+"%")
	t.AddRow("inflation", "peak", f1(r.InflationPeak)+"%")
	t.AddRow("population", "drop from peak", f2(r.PopulationDropPct)+"%")
	return t
}

// Fig13Result reproduces Appendix B's Figure 13: Venezuela's GDP-per-
// capita rank across the region at five-year marks.
type Fig13Result struct {
	Panel *series.Panel
	Ranks map[int]int // year -> descending rank
	Of    int         // countries ranked
}

// Fig13GDPRank computes the rank trajectory.
func Fig13GDPRank() Fig13Result {
	p := econ.GDPPerCapita()
	r := Fig13Result{Panel: p, Ranks: map[int]int{}}
	for year := 1980; year <= 2020; year += 5 {
		rank, of, ok := p.RankAt("VE", months.New(year, time.January))
		if !ok {
			continue
		}
		r.Ranks[year] = rank
		r.Of = of
	}
	return r
}

// Table renders the rank annotations.
func (r Fig13Result) Table() *Table {
	t := &Table{
		Caption: "Figure 13: Venezuela's GDP-per-capita rank in the region",
		Header:  []string{"year", "rank", "of"},
	}
	for year := 1980; year <= 2020; year += 5 {
		if rank, ok := r.Ranks[year]; ok {
			t.AddRow(itoa(year), itoa(rank), itoa(r.Of))
		}
	}
	return t
}
