// Package core implements the paper's analyses: one function per figure
// or table in the evaluation, each consuming the datasets a World
// provides and returning a typed result that renders to the rows the
// paper reports. The cmd/vzreport binary strings them all together;
// bench_test.go regenerates each experiment under the benchmark harness.
package core

import (
	"fmt"
	"strings"
)

// Table is a rendered analysis result: a caption, a header row, and data
// rows, printable in aligned text or CSV.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Caption != "" {
		b.WriteString(t.Caption)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values. Cells containing
// commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct formats a 0-1 fraction as a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
