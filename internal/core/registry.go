package core

import (
	"sort"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/months"
	"vzlens/internal/world"
)

// Experiment is one entry in the canonical experiment registry: a
// stable ID (the httpapi route, the vzreport selector, and the golden
// snapshot name) plus how to render its table. The registry is the
// single source of truth shared by the HTTP API, the golden regression
// suite, and tooling — an experiment added here is automatically
// served, snapshotted, and reported.
type Experiment struct {
	// ID is the stable experiment identifier (fig1..fig21, table1).
	ID string
	// Campaign names the simulated measurement campaign the experiment
	// consumes: "" for none, "trace" for the traceroute campaign,
	// "chaos" for the CHAOS root-DNS sweep. Callers simulate each
	// campaign once and share it across experiments.
	Campaign string
	// Run renders the experiment's table. tc and cc must be non-nil
	// exactly when Campaign says so; Run never simulates on its own.
	Run func(w *world.World, tc *atlas.TraceCampaign, cc *atlas.ChaosCampaign) *Table
}

// Experiments returns the full registry in paper order. The slice is
// freshly allocated; callers may reorder it.
func Experiments() []Experiment {
	none := func(fn func(w *world.World) *Table) func(*world.World, *atlas.TraceCampaign, *atlas.ChaosCampaign) *Table {
		return func(w *world.World, _ *atlas.TraceCampaign, _ *atlas.ChaosCampaign) *Table {
			return fn(w)
		}
	}
	return []Experiment{
		{ID: "fig1", Run: none(func(*world.World) *Table { return Fig1Economy().Table() })},
		{ID: "fig2", Run: none(func(w *world.World) *Table { return Fig2AddressSpace(w).Table() })},
		{ID: "fig3", Run: none(func(w *world.World) *Table { return Fig3Facilities(w).Table() })},
		{ID: "fig4", Run: none(func(w *world.World) *Table { return Fig4Cables(w).Table() })},
		{ID: "fig5", Run: none(func(*world.World) *Table { return Fig5IPv6().Table() })},
		{ID: "fig6", Campaign: "chaos", Run: func(_ *world.World, _ *atlas.TraceCampaign, cc *atlas.ChaosCampaign) *Table {
			return Fig6RootDNS(cc).Table()
		}},
		{ID: "fig7", Run: none(func(w *world.World) *Table {
			return Fig7Offnets(w, []string{"Google", "Akamai", "Facebook", "Netflix"}).Table()
		})},
		{ID: "fig8", Run: none(func(w *world.World) *Table { return Fig8CANTV(w).Table() })},
		{ID: "fig9", Run: none(func(w *world.World) *Table { return Fig9TransitHeatmap(w).Table() })},
		{ID: "fig10", Run: none(func(w *world.World) *Table { return Fig10IXPHeatmap(w).Table() })},
		{ID: "fig11", Run: none(func(w *world.World) *Table {
			return Fig11Bandwidth(w.Config.Seed, months.New(2007, time.July), months.New(2024, time.January), w.Config.Step).Table()
		})},
		{ID: "fig12", Campaign: "trace", Run: func(_ *world.World, tc *atlas.TraceCampaign, _ *atlas.ChaosCampaign) *Table {
			return Fig12GPDNS(tc).Table()
		}},
		{ID: "table1", Run: none(func(w *world.World) *Table { return Table1Eyeballs(w).Table() })},
		{ID: "fig13", Run: none(func(*world.World) *Table { return Fig13GDPRank().Table() })},
		{ID: "fig14", Run: none(func(w *world.World) *Table { return Fig14PrefixVisibility(w).Table() })},
		{ID: "fig15", Run: none(func(w *world.World) *Table { return Fig15FacilityMembers(w).Table() })},
		{ID: "fig16", Campaign: "chaos", Run: func(_ *world.World, _ *atlas.TraceCampaign, cc *atlas.ChaosCampaign) *Table {
			return Fig16RootOrigins(cc).Table()
		}},
		{ID: "fig17", Run: none(func(w *world.World) *Table { return Fig17AtlasFootprint(w).Table() })},
		{ID: "fig18", Run: none(func(w *world.World) *Table {
			return Fig7Offnets(w, []string{"Microsoft", "Cloudflare", "Amazon", "Limelight", "CDNetworks", "Alibaba"}).Table()
		})},
		{ID: "fig19", Run: none(func(*world.World) *Table { return Fig19ThirdParty().Table() })},
		{ID: "fig20", Campaign: "trace", Run: func(w *world.World, tc *atlas.TraceCampaign, _ *atlas.ChaosCampaign) *Table {
			return Fig20ProbeGeo(w.Fleet, tc, months.New(2023, time.December)).Table()
		}},
		{ID: "fig21", Run: none(func(w *world.World) *Table { return Fig21USIXPs(w).Table() })},
	}
}

// ExperimentIDs returns every registered ID, sorted.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
