package core

import (
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/world"
)

func TestCrisisSignaturesRecoverTheNarrative(t *testing.T) {
	// Without the CHAOS campaign (covered separately): the detectors
	// must find the paper's three core structural signals.
	r := CrisisSignatures(testWorld, nil)

	// 1. A decade-scale bandwidth stagnation.
	stag := r.Find("mlab/bandwidth")
	if len(stag) == 0 {
		t.Fatal("bandwidth stagnation not detected")
	}
	longest := stag[0]
	for _, e := range stag {
		if e.Months() > longest.Months() {
			longest = e
		}
	}
	if longest.Months() < 96 {
		t.Errorf("stagnation = %d months, want >= 96", longest.Months())
	}

	// 2. The CANTV upstream contraction: a >60% collapse running through
	// the mid-2010s and bottoming out around 2020 (the V.tal arrival in
	// 2014 splits the decline from the absolute 2012/13 peak, so the
	// detector reports the post-2014 leg).
	ups := r.Find("bgp/upstreams")
	found := false
	for _, e := range ups {
		if e.Start.Year() >= 2013 && e.Start.Year() <= 2016 &&
			e.End.Year() >= 2018 && e.End.Year() <= 2021 && e.Magnitude > 0.6 {
			found = true
		}
	}
	if !found {
		t.Errorf("upstream collapse not found: %v", ups)
	}

	// 3. Telefonica's address-space contraction beginning mid-2016.
	tef := r.Find("bgp/telefonica-space")
	found = false
	for _, e := range tef {
		if e.Start.Year() == 2016 && e.Magnitude > 0.2 {
			found = true
		}
	}
	if !found {
		t.Errorf("Telefonica contraction not found: %v", tef)
	}

	// 4. The divergence from the regional mean.
	if div := r.Find("mlab/normalized"); len(div) == 0 {
		t.Error("bandwidth divergence not detected")
	}

	if txt := r.Table().Text(); len(txt) == 0 {
		t.Error("empty table")
	}
}

func TestCrisisSignaturesWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation")
	}
	w := mustBuild(world.Config{
		ChaosStart: months.New(2021, time.January),
		ChaosEnd:   months.New(2023, time.June),
		Step:       3,
	})
	chaos := w.ChaosCampaign()
	r := CrisisSignatures(w, chaos)
	roots := r.Find("dnsroot/replicas")
	if len(roots) == 0 {
		t.Fatal("root DNS disappearance not detected")
	}
	if y := roots[0].Start.Year(); y < 2022 || y > 2023 {
		t.Errorf("disappearance at %v, want 2022 (Maracaibo withdrawal)", roots[0].Start)
	}
}
