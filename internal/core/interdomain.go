package core

import (
	"sort"

	"vzlens/internal/bgp"
	"vzlens/internal/ixp"
	"vzlens/internal/world"
)

// Fig10Result reproduces Figure 10: the population share of each country
// present at the largest IXP of every Latin American country.
type Fig10Result struct {
	Heatmap map[string]map[string]ixp.Cell // exchange -> country -> cell

	ARShareAtARIX     float64
	BRShareAtIXbr     float64
	CLShareAtPITChile float64
	VEPresent         bool    // whether VE appears at any of the 18 largest
	VEAtEquinixBogota float64 // the single-network toehold
}

// Fig10IXPHeatmap runs the regional IXP analysis.
func Fig10IXPHeatmap(w *world.World) Fig10Result {
	members := w.IXPMembership()
	countries := append([]string{}, w.Pop.InCountryCodes()...)
	hm := ixp.Heatmap(members, w.Pop, ixp.LatAmExchanges(), countries)
	r := Fig10Result{Heatmap: hm}
	if row, ok := hm["AR-IX"]; ok {
		r.ARShareAtARIX = row["AR"].Share
	}
	if row, ok := hm["IX.br (SP)"]; ok {
		r.BRShareAtIXbr = row["BR"].Share
	}
	if row, ok := hm["PIT Chile (SCL)"]; ok {
		r.CLShareAtPITChile = row["CL"].Share
	}
	for ex, row := range hm {
		if ex == "Equinix Bogota" {
			r.VEAtEquinixBogota = row["VE"].Share
			continue
		}
		if _, ok := row["VE"]; ok {
			r.VEPresent = true
		}
	}
	return r
}

// Table renders the headline cells.
func (r Fig10Result) Table() *Table {
	t := &Table{
		Caption: "Figure 10: population share at the largest IXP per country",
		Header:  []string{"exchange", "country", "share"},
	}
	t.AddRow("AR-IX", "AR", pct(r.ARShareAtARIX))
	t.AddRow("IX.br (SP)", "BR", pct(r.BRShareAtIXbr))
	t.AddRow("PIT Chile (SCL)", "CL", pct(r.CLShareAtPITChile))
	veCell := "absent"
	if r.VEPresent {
		veCell = "present"
	}
	t.AddRow("any of the 18 largest", "VE", veCell)
	t.AddRow("Equinix Bogota", "VE", pct(r.VEAtEquinixBogota))
	return t
}

// Fig21Result reproduces Appendix I's Figure 21: Latin American presence
// at United States exchanges.
type Fig21Result struct {
	Heatmap map[string]map[string]ixp.Cell

	VENetworks int
	VEShare    float64
	// CountriesPresent lists countries with any US IXP presence, sorted.
	CountriesPresent []string
}

// Fig21USIXPs runs the US exchange analysis.
func Fig21USIXPs(w *world.World) Fig21Result {
	members := w.USIXPMembership()
	countries := w.Pop.InCountryCodes()
	hm := ixp.Heatmap(members, w.Pop, ixp.USExchanges(), countries)
	r := Fig21Result{Heatmap: hm}
	ve := ixp.CountryPresence(members, w.Pop, ixp.USExchanges(), "VE")
	r.VENetworks = ve.Networks
	r.VEShare = ve.Share
	seen := map[string]bool{}
	for _, row := range hm {
		for cc := range row {
			seen[cc] = true
		}
	}
	for cc := range seen {
		r.CountriesPresent = append(r.CountriesPresent, cc)
	}
	sort.Strings(r.CountriesPresent)
	return r
}

// Table renders the Venezuelan summary plus the per-exchange breakdown
// (the figure's lower panel: AS counts per exchange).
func (r Fig21Result) Table() *Table {
	t := &Table{
		Caption: "Figure 21: Latin American networks at US exchanges",
		Header:  []string{"statistic", "value"},
	}
	t.AddRow("VE networks", itoa(r.VENetworks))
	t.AddRow("VE population share", pct(r.VEShare))
	t.AddRow("countries present", itoa(len(r.CountriesPresent)))
	var exchanges []string
	for ex := range r.Heatmap {
		exchanges = append(exchanges, ex)
	}
	sort.Strings(exchanges)
	for _, ex := range exchanges {
		total := 0
		veNets := 0
		for cc, cell := range r.Heatmap[ex] {
			total += cell.Networks
			if cc == "VE" {
				veNets = cell.Networks
			}
		}
		t.AddRow(ex, itoa(total)+" LatAm ASes ("+itoa(veNets)+" VE)")
	}
	return t
}

// Table1Result reproduces Table 1 (Appendix A): the ten largest
// Venezuelan providers.
type Table1Result struct {
	Rows        []Table1Row
	TopTenShare float64
	CANTVShare  float64
}

// Table1Row is one provider line.
type Table1Row struct {
	ASN   bgp.ASN
	Name  string
	Users int64
	Share float64
}

// Table1Eyeballs runs the market-composition analysis.
func Table1Eyeballs(w *world.World) Table1Result {
	var r Table1Result
	var asns []bgp.ASN
	for _, est := range w.Pop.TopN("VE", 10) {
		r.Rows = append(r.Rows, Table1Row{
			ASN:   est.ASN,
			Name:  est.Name,
			Users: est.Users,
			Share: w.Pop.Share(est.ASN),
		})
		asns = append(asns, est.ASN)
	}
	r.TopTenShare = w.Pop.ShareOf("VE", asns)
	r.CANTVShare = w.Pop.Share(world.ASCANTV)
	return r
}

// Table renders the provider table.
func (r Table1Result) Table() *Table {
	t := &Table{
		Caption: "Table 1: ten largest Venezuelan providers",
		Header:  []string{"ASN", "name", "users", "share"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.ASN.String(), row.Name, itoa64(row.Users), pct(row.Share))
	}
	t.AddRow("", "top-10 total", "", pct(r.TopTenShare))
	return t
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	// Thousands separators for readability, as in the paper's table.
	var out []byte
	for i, d := range digits {
		if i > 0 && (len(digits)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, d)
	}
	if neg {
		out = append([]byte{'-'}, out...)
	}
	return string(out)
}
