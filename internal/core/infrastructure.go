package core

import (
	"sort"
	"time"

	"strings"

	"vzlens/internal/geo"
	"vzlens/internal/ipv6"
	"vzlens/internal/months"
	"vzlens/internal/series"
	"vzlens/internal/world"
)

// Fig3Result reproduces Figure 3: peering facility growth across the
// region since April 2018.
type Fig3Result struct {
	PerCountry *series.Panel
	Region     *series.Series

	RegionStart, RegionEnd int
	VEFacilities           int
}

// Fig3Facilities runs the facility-growth analysis over monthly PeeringDB
// snapshots.
func Fig3Facilities(w *world.World) Fig3Result {
	lo, hi := months.New(2018, time.April), months.New(2024, time.January)
	arch := w.PeeringDBArchive(lo, hi)
	r := Fig3Result{PerCountry: series.NewPanel()}
	for _, m := range arch.Months() {
		counts := arch.Get(m).FacilityCount()
		for cc, n := range counts {
			r.PerCountry.Country(cc).Set(m, float64(n))
		}
	}
	r.Region = r.PerCountry.RegionalTotal()
	if first, ok := r.Region.First(); ok {
		r.RegionStart = int(first.Value)
	}
	if last, ok := r.Region.Last(); ok {
		r.RegionEnd = int(last.Value)
	}
	r.VEFacilities = int(r.PerCountry.Country("VE").At(hi))
	return r
}

// Table renders the growth summary.
func (r Fig3Result) Table() *Table {
	t := &Table{
		Caption: "Figure 3: peering facilities in the LACNIC region",
		Header:  []string{"series", "2018", "2024"},
	}
	t.AddRow("region total", itoa(r.RegionStart), itoa(r.RegionEnd))
	for _, cc := range []string{"BR", "MX", "CL", "AR", "CR", "VE"} {
		s := r.PerCountry.Country(cc)
		first, _ := s.First()
		last, _ := s.Last()
		t.AddRow(cc, itoa(int(first.Value)), itoa(int(last.Value)))
	}
	return t
}

// Fig4Result reproduces Figure 4: submarine cable expansion.
type Fig4Result struct {
	PerCountry map[string][]int // cc -> counts at each year
	Years      []int
	Region     []int

	RegionAt2000, RegionAt2024 int
	VEAdditionsSince2000       []string
}

// Fig4Cables runs the submarine-connectivity analysis.
func Fig4Cables(w *world.World) Fig4Result {
	r := Fig4Result{PerCountry: map[string][]int{}}
	for y := 1992; y <= 2024; y++ {
		r.Years = append(r.Years, y)
		r.Region = append(r.Region, w.Cables.RegionTotal(y))
	}
	for _, cc := range w.Cables.Countries() {
		for _, y := range r.Years {
			r.PerCountry[cc] = append(r.PerCountry[cc], w.Cables.CountryCount(cc, y))
		}
	}
	r.RegionAt2000 = w.Cables.RegionTotal(2000)
	r.RegionAt2024 = w.Cables.RegionTotal(2024)
	for _, c := range w.Cables.AddedBetween("VE", 2000, 2024) {
		r.VEAdditionsSince2000 = append(r.VEAdditionsSince2000, c.Name)
	}
	return r
}

// Table renders the expansion summary.
func (r Fig4Result) Table() *Table {
	t := &Table{
		Caption: "Figure 4: submarine cable networks",
		Header:  []string{"statistic", "value"},
	}
	t.AddRow("region 2000", itoa(r.RegionAt2000))
	t.AddRow("region 2024", itoa(r.RegionAt2024))
	for _, name := range r.VEAdditionsSince2000 {
		t.AddRow("VE addition since 2000", name)
	}
	return t
}

// Fig5Result reproduces Figure 5: IPv6 adoption as seen by Meta.
type Fig5Result struct {
	Panel  *series.Panel
	Region *series.Series

	VELatest     float64
	RegionLatest float64
}

// Fig5IPv6 runs the IPv6-rollout analysis.
func Fig5IPv6() Fig5Result {
	lo, hi := months.New(2018, time.January), months.New(2023, time.June)
	ds := ipv6.Collect(ipv6.CoveredCountries(), lo, hi)
	r := Fig5Result{Panel: ds.Panel(), Region: ds.RegionalMean()}
	r.VELatest = ds.At("VE", hi)
	r.RegionLatest = r.Region.At(hi)
	return r
}

// Table renders the adoption summary.
func (r Fig5Result) Table() *Table {
	t := &Table{
		Caption: "Figure 5: IPv6 adoption (percent of requests)",
		Header:  []string{"series", "mid-2023"},
	}
	t.AddRow("VE", f2(r.VELatest))
	t.AddRow("region mean", f2(r.RegionLatest))
	for _, cc := range []string{"MX", "BR", "CL", "AR", "CO"} {
		last, _ := r.Panel.Country(cc).Last()
		t.AddRow(cc, f2(last.Value))
	}
	return t
}

// Fig17Result reproduces Appendix F's Figure 17: Atlas probe coverage.
type Fig17Result struct {
	PerCountry *series.Panel
	Region     *series.Series

	VE2016, VE2024 int
	VERank         int
}

// Fig17AtlasFootprint runs the probe-coverage analysis.
func Fig17AtlasFootprint(w *world.World) Fig17Result {
	lo, hi := months.New(2016, time.January), months.New(2024, time.January)
	r := Fig17Result{PerCountry: series.NewPanel()}
	lacnic := map[string]bool{}
	for _, cc := range geo.LACNICCountries() {
		lacnic[cc] = true
	}
	for m := lo; !m.After(hi); m = m.Add(w.Config.Step) {
		for cc, n := range w.Fleet.CountByCountry(m) {
			if lacnic[cc] {
				r.PerCountry.Country(cc).Set(m, float64(n))
			}
		}
	}
	r.Region = r.PerCountry.RegionalTotal()
	r.VE2016 = int(r.PerCountry.Country("VE").At(lo))
	r.VE2024 = int(r.PerCountry.Country("VE").At(hi))
	rank, _ := w.Fleet.CountryRank("VE", hi)
	r.VERank = rank
	return r
}

// Table renders the coverage summary.
func (r Fig17Result) Table() *Table {
	t := &Table{
		Caption: "Figure 17: RIPE Atlas probes per country",
		Header:  []string{"statistic", "value"},
	}
	t.AddRow("VE probes 2016", itoa(r.VE2016))
	t.AddRow("VE probes 2024", itoa(r.VE2024))
	t.AddRow("VE regional rank", itoa(r.VERank))
	first, _ := r.Region.First()
	last, _ := r.Region.Last()
	t.AddRow("region probes 2016", itoa(int(first.Value)))
	t.AddRow("region probes 2024", itoa(int(last.Value)))
	return t
}

// Fig15Result reproduces Appendix D's Figure 15 and Table 2: network
// presence at Venezuelan facilities.
type Fig15Result struct {
	Membership map[string]map[months.Month]int // facility -> month -> members
	Latest     map[string]int
	// Networks lists the member network names per facility in the final
	// snapshot — the body of Table 2.
	Networks   map[string][]string
	TotalNames []string
}

// Fig15FacilityMembers runs the facility-membership analysis.
func Fig15FacilityMembers(w *world.World) Fig15Result {
	lo, hi := months.New(2021, time.November), months.New(2024, time.January)
	arch := w.PeeringDBArchive(lo, hi)
	r := Fig15Result{
		Membership: map[string]map[months.Month]int{},
		Latest:     map[string]int{},
	}
	archMonths := arch.Months()
	latest := hi
	if len(archMonths) > 0 {
		latest = archMonths[len(archMonths)-1]
	}
	names := w.VEFacilityNamesAt(latest)
	r.Networks = map[string][]string{}
	finalSnap := arch.Get(latest)
	for _, name := range names {
		r.Membership[name] = arch.MembershipSeries(name)
		if n, ok := r.Membership[name][latest]; ok {
			r.Latest[name] = n
		}
		if finalSnap != nil {
			if fac, ok := finalSnap.FacilityByName(name); ok {
				for _, net := range finalSnap.NetworksAt(fac.ID) {
					r.Networks[name] = append(r.Networks[name], net.Name)
				}
			}
		}
	}
	r.TotalNames = names
	sort.Strings(r.TotalNames)
	return r
}

// Table renders the latest membership per facility.
func (r Fig15Result) Table() *Table {
	t := &Table{
		Caption: "Figure 15/Table 2: networks at Venezuelan facilities",
		Header:  []string{"facility", "networks", "members"},
	}
	for _, name := range r.TotalNames {
		t.AddRow(name, itoa(r.Latest[name]), strings.Join(r.Networks[name], "; "))
	}
	return t
}
