package core

import (
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/world"
)

// campaignWorld runs short campaigns (single half-year windows) so the
// campaign-backed analyses are exercised end to end without simulating
// the full decade.
func campaignWorld(t *testing.T) *world.World {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign simulation")
	}
	return mustBuild(world.Config{
		TraceStart: months.New(2023, time.July), TraceEnd: months.New(2023, time.December),
		ChaosStart: months.New(2023, time.July), ChaosEnd: months.New(2023, time.December),
	})
}

func TestFig12OverShortCampaign(t *testing.T) {
	w := campaignWorld(t)
	r := Fig12GPDNS(w.TraceCampaign())
	if r.VE2023H2 < 30 || r.VE2023H2 > 45 {
		t.Errorf("VE H2 2023 = %.2f, want ~36.56", r.VE2023H2)
	}
	if r.VEOverRegion < 1.5 || r.VEOverRegion > 2.6 {
		t.Errorf("VE/region = %.2f, want ~2.06", r.VEOverRegion)
	}
	if len(r.CountryH2of2023) < 25 {
		t.Errorf("countries with data = %d", len(r.CountryH2of2023))
	}
	// 2016 columns are empty in a 2023-only campaign.
	if len(r.CountryH1of2016) != 0 {
		t.Errorf("2016 data in 2023 campaign: %v", r.CountryH1of2016)
	}
}

func TestFig20OverShortCampaign(t *testing.T) {
	w := campaignWorld(t)
	tc := w.TraceCampaign()
	r := Fig20ProbeGeo(w.Fleet, tc, months.New(2023, time.December))
	if len(r.Probes) < 25 {
		t.Fatalf("probes = %d", len(r.Probes))
	}
	if r.Under10 == 0 {
		t.Error("no border probes under 10 ms")
	}
	if r.Above40+r.From20to40 < r.Under10 {
		t.Error("most of Venezuela should sit in the slow bands")
	}
}

func TestFig6AndFig16OverShortCampaign(t *testing.T) {
	w := campaignWorld(t)
	chaos := w.ChaosCampaign()

	fig6 := Fig6RootDNS(chaos)
	if got := int(fig6.PerCountry.Country("VE").At(months.New(2023, time.December))); got != 0 {
		t.Errorf("VE replicas end-2023 = %d, want 0", got)
	}
	if fig6.RegionEnd < 120 {
		t.Errorf("region replicas = %d, want ~138", fig6.RegionEnd)
	}

	fig16 := Fig16RootOrigins(chaos)
	if len(fig16.LatestTop) == 0 {
		t.Fatal("no origins")
	}
	if fig16.LatestTop[0] != "US" {
		t.Errorf("dominant origin = %s, want US", fig16.LatestTop[0])
	}
}
