package core

import (
	"time"

	"vzlens/internal/anomaly"
	"vzlens/internal/atlas"
	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/series"
	"vzlens/internal/world"
)

// Signature is one detected crisis signal with its provenance.
type Signature struct {
	Dataset string
	Event   anomaly.Event
}

// SignaturesResult is the output of the automated crisis detector: the
// paper's hand-curated observations, found by the anomaly detectors
// without being pointed at them.
type SignaturesResult struct {
	Signatures []Signature
}

// CrisisSignatures runs the anomaly detectors over the Venezuelan series
// of every dataset: bandwidth stagnation, upstream-provider contraction,
// Telefonica's address-space contraction, root-DNS disappearance, and
// the bandwidth divergence from the regional mean.
func CrisisSignatures(w *world.World, chaos *atlas.ChaosCampaign) SignaturesResult {
	var r SignaturesResult
	add := func(dataset string, events []anomaly.Event) {
		for _, e := range events {
			r.Signatures = append(r.Signatures, Signature{dataset, e})
		}
	}

	// Bandwidth stagnation and divergence (M-Lab curves).
	speeds := series.New()
	regional := series.New()
	for m := months.New(2008, time.January); !m.After(months.New(2024, time.January)); m = m.Add(1) {
		speeds.Set(m, mlab.MedianSpeed("VE", m))
		var sum float64
		var n int
		for _, cc := range mlab.Countries() {
			if v := mlab.MedianSpeed(cc, m); v > 0 {
				sum += v
				n++
			}
		}
		regional.Set(m, sum/float64(n))
	}
	add("mlab/bandwidth", anomaly.Stagnations(speeds, 60, 0.35))
	add("mlab/bandwidth", anomaly.Recoveries(speeds, 1.0))
	add("mlab/normalized", anomaly.Divergences(speeds, regional, 0.3, 24))

	// CANTV upstream contraction (AS relationships).
	ups := series.New()
	for m := months.New(1998, time.January); !m.After(months.New(2024, time.January)); m = m.Add(w.Config.Step) {
		ups.Set(m, float64(len(world.CANTVProvidersAt(m))))
	}
	add("bgp/upstreams", anomaly.Contractions(ups, 0.5))
	add("bgp/upstreams", anomaly.Recoveries(ups, 0.5))

	// Telefonica address-space contraction (pfx2as).
	tef := series.New()
	arch := w.RIBArchive(months.New(2008, time.January), months.New(2024, time.January))
	for _, m := range arch.Months() {
		tef.Set(m, float64(arch.Get(m).AnnouncedSpace(world.ASTelefonica)))
	}
	add("bgp/telefonica-space", anomaly.Contractions(tef, 0.25))

	// Root DNS disappearance (CHAOS campaign).
	if chaos != nil {
		roots := series.New()
		for m, n := range chaos.CountrySeries("VE") {
			roots.Set(m, float64(n))
		}
		add("dnsroot/replicas", anomaly.Disappearances(roots))
	}
	return r
}

// Table renders the detected signatures.
func (r SignaturesResult) Table() *Table {
	t := &Table{
		Caption: "Automated crisis signatures (anomaly detectors over the VE series)",
		Header:  []string{"dataset", "kind", "start", "end", "magnitude"},
	}
	for _, s := range r.Signatures {
		t.AddRow(s.Dataset, s.Event.Kind.String(), s.Event.Start.String(),
			s.Event.End.String(), f2(s.Event.Magnitude))
	}
	return t
}

// Find returns the signatures detected in the named dataset.
func (r SignaturesResult) Find(dataset string) []anomaly.Event {
	var out []anomaly.Event
	for _, s := range r.Signatures {
		if s.Dataset == dataset {
			out = append(out, s.Event)
		}
	}
	return out
}
