package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/world"
)

// mustBuild is the test-only panicking form of world.Build.
func mustBuild(cfg world.Config) *world.World {
	w, err := world.Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// testWorld is shared across the analysis tests.
var testWorld = mustBuild(world.Config{})

func TestFig1Economy(t *testing.T) {
	r := Fig1Economy()
	if math.Abs(r.OilDropPct-(-81.5)) > 3.5 {
		t.Errorf("oil drop = %.2f, want ~-81.49", r.OilDropPct)
	}
	if math.Abs(r.GDPDropPct-(-70.9)) > 2 {
		t.Errorf("GDP drop = %.2f, want ~-70.90", r.GDPDropPct)
	}
	if r.InflationPeak != 32000 {
		t.Errorf("inflation peak = %v, want 32000", r.InflationPeak)
	}
	if math.Abs(r.PopulationDropPct-(-13.85)) > 1 {
		t.Errorf("population drop = %.2f, want ~-13.85", r.PopulationDropPct)
	}
	txt := r.Table().Text()
	if !strings.Contains(txt, "oil production") {
		t.Errorf("table missing rows: %s", txt)
	}
}

func TestFig2AddressSpace(t *testing.T) {
	r := Fig2AddressSpace(testWorld)
	if r.CANTVAvgShare < 0.40 || r.CANTVAvgShare > 0.58 {
		t.Errorf("CANTV avg share = %.2f", r.CANTVAvgShare)
	}
	if r.CANTVPeakShare < 0.60 || r.CANTVPeakShare > 0.78 {
		t.Errorf("CANTV peak share = %.2f", r.CANTVPeakShare)
	}
	if r.MinGap > 0.20 {
		t.Errorf("min pre-2014 gap = %.2f, want narrow", r.MinGap)
	}
	if r.CANTVShare.Len() == 0 || r.TelefonicaSpace.Len() == 0 {
		t.Error("series not populated")
	}
}

func TestFig3Facilities(t *testing.T) {
	r := Fig3Facilities(testWorld)
	if r.RegionStart < 170 || r.RegionStart > 195 {
		t.Errorf("region 2018 = %d", r.RegionStart)
	}
	if r.RegionEnd < 535 || r.RegionEnd > 565 {
		t.Errorf("region 2024 = %d", r.RegionEnd)
	}
	if r.VEFacilities != 4 {
		t.Errorf("VE facilities = %d, want 4", r.VEFacilities)
	}
}

func TestFig4Cables(t *testing.T) {
	r := Fig4Cables(testWorld)
	if r.RegionAt2000 != 13 || r.RegionAt2024 != 54 {
		t.Errorf("region = %d → %d, want 13 → 54", r.RegionAt2000, r.RegionAt2024)
	}
	if len(r.VEAdditionsSince2000) != 1 || r.VEAdditionsSince2000[0] != "ALBA-1" {
		t.Errorf("VE additions = %v", r.VEAdditionsSince2000)
	}
	if len(r.Years) != len(r.Region) {
		t.Error("years/region length mismatch")
	}
}

func TestFig5IPv6(t *testing.T) {
	r := Fig5IPv6()
	if r.VELatest < 1.0 || r.VELatest > 2.0 {
		t.Errorf("VE adoption = %.2f, want ~1.5", r.VELatest)
	}
	if r.RegionLatest < 17 || r.RegionLatest > 27 {
		t.Errorf("region adoption = %.2f, want ~22", r.RegionLatest)
	}
}

func TestFig8CANTV(t *testing.T) {
	r := Fig8CANTV(testWorld)
	if r.PeakUpstreams != 11 {
		t.Errorf("peak upstreams = %d, want 11", r.PeakUpstreams)
	}
	if r.PeakUpstreamMonth.Year() < 2011 || r.PeakUpstreamMonth.Year() > 2013 {
		t.Errorf("peak month = %v, want ~2013", r.PeakUpstreamMonth)
	}
	if r.TroughUpstreams != 3 {
		t.Errorf("trough upstreams = %d, want 3", r.TroughUpstreams)
	}
	if r.LatestDownstreams < 18 {
		t.Errorf("downstreams = %d, want ~21", r.LatestDownstreams)
	}
}

func TestFig9TransitHeatmap(t *testing.T) {
	r := Fig9TransitHeatmap(testWorld)
	if len(r.USDepartures) < 6 {
		t.Errorf("US departures = %d, want >= 6", len(r.USDepartures))
	}
	if len(r.RemainingUS) != 1 || r.RemainingUS[0] != world.ASColumbus {
		t.Errorf("remaining US = %v, want Columbus only", r.RemainingUS)
	}
	// Verizon leaves in 2013, Level3 in 2018.
	if m, ok := r.USDepartures[world.ASVerizon]; !ok || m.Year() != 2013 {
		t.Errorf("Verizon departure = %v, want 2013", m)
	}
	if m, ok := r.USDepartures[world.ASLevel3]; !ok || m.Year() != 2018 {
		t.Errorf("Level3 departure = %v, want 2018", m)
	}
	if len(r.History) < 12 {
		t.Errorf("provider history = %d entries, want the full roster", len(r.History))
	}
}

func TestFig10IXPHeatmap(t *testing.T) {
	r := Fig10IXPHeatmap(testWorld)
	if math.Abs(r.ARShareAtARIX-0.624) > 0.03 {
		t.Errorf("AR-IX share = %.3f, want 0.624", r.ARShareAtARIX)
	}
	if math.Abs(r.BRShareAtIXbr-0.4553) > 0.03 {
		t.Errorf("IX.br share = %.3f, want 0.4553", r.BRShareAtIXbr)
	}
	if math.Abs(r.CLShareAtPITChile-0.4957) > 0.03 {
		t.Errorf("PIT share = %.3f, want 0.4957", r.CLShareAtPITChile)
	}
	if r.VEPresent {
		t.Error("VE should be absent from the 18 largest IXPs")
	}
	if math.Abs(r.VEAtEquinixBogota-0.04) > 0.02 {
		t.Errorf("VE at Equinix Bogota = %.3f, want ~0.04", r.VEAtEquinixBogota)
	}
}

func TestFig21USIXPs(t *testing.T) {
	r := Fig21USIXPs(testWorld)
	if r.VENetworks != 7 {
		t.Errorf("VE networks = %d, want 7", r.VENetworks)
	}
	if r.VEShare < 0.05 || r.VEShare > 0.09 {
		t.Errorf("VE share = %.3f, want ~0.07", r.VEShare)
	}
	if len(r.CountriesPresent) < 5 {
		t.Errorf("countries present = %v", r.CountriesPresent)
	}
}

func TestTable1Eyeballs(t *testing.T) {
	r := Table1Eyeballs(testWorld)
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].ASN != 8048 || r.Rows[0].Users != 4330868 {
		t.Errorf("rank 1 = %+v", r.Rows[0])
	}
	if math.Abs(r.TopTenShare-0.7718) > 0.002 {
		t.Errorf("top-10 share = %.4f, want 0.7718", r.TopTenShare)
	}
	if math.Abs(r.CANTVShare-0.2150) > 0.002 {
		t.Errorf("CANTV share = %.4f, want 0.2150", r.CANTVShare)
	}
	txt := r.Table().Text()
	if !strings.Contains(txt, "4,330,868") {
		t.Errorf("table formatting: %s", txt)
	}
}

func TestFig13GDPRank(t *testing.T) {
	r := Fig13GDPRank()
	want := map[int]int{1980: 3, 1985: 2, 1990: 8, 1995: 9, 2000: 7, 2005: 6, 2010: 6, 2015: 18, 2020: 23}
	for year, rank := range want {
		if r.Ranks[year] != rank {
			t.Errorf("%d: rank = %d, want %d", year, r.Ranks[year], rank)
		}
	}
	if r.Of != 24 {
		t.Errorf("of = %d, want 24", r.Of)
	}
}

func TestFig14PrefixVisibility(t *testing.T) {
	r := Fig14PrefixVisibility(testWorld)
	if len(r.Withdrawn) < 8 {
		t.Errorf("withdrawn = %v, want the /17 block set", r.Withdrawn)
	}
	foundAgg := false
	for _, p := range r.Reappeared {
		if p == "179.20.0.0/14" {
			foundAgg = true
		}
	}
	if !foundAgg {
		t.Errorf("reappeared = %v, want 179.20.0.0/14", r.Reappeared)
	}
}

func TestFig15FacilityMembers(t *testing.T) {
	r := Fig15FacilityMembers(testWorld)
	if r.Latest["Cirion La Urbina"] != 11 {
		t.Errorf("Cirion = %d, want 11", r.Latest["Cirion La Urbina"])
	}
	if r.Latest["GigaPOP Maracaibo"] != 0 {
		t.Errorf("GigaPOP = %d, want 0", r.Latest["GigaPOP Maracaibo"])
	}
	if len(r.TotalNames) != 4 {
		t.Errorf("facilities = %v", r.TotalNames)
	}
}

func TestFig17AtlasFootprint(t *testing.T) {
	r := Fig17AtlasFootprint(testWorld)
	if r.VE2016 != 10 || r.VE2024 != 30 {
		t.Errorf("VE probes = %d → %d, want 10 → 30", r.VE2016, r.VE2024)
	}
	if r.VERank != 6 {
		t.Errorf("VE rank = %d, want 6", r.VERank)
	}
}

func TestFig7Offnets(t *testing.T) {
	r := Fig7Offnets(testWorld, []string{"Google", "Akamai", "Facebook", "Netflix"})
	// Paper: VE averages — Google 56.88%, Akamai 35.74%, Facebook
	// 28.33%, Netflix 5.87%.
	check := func(provider string, want, tol float64) {
		t.Helper()
		got := r.VEAverage[provider]
		if math.Abs(got-want) > tol {
			t.Errorf("%s VE average = %.3f, want %.3f±%.2f", provider, got, want, tol)
		}
	}
	check("Google", 0.5688, 0.08)
	check("Akamai", 0.3574, 0.08)
	check("Facebook", 0.2833, 0.10)
	check("Netflix", 0.0587, 0.06)
	// Google present in VE from 2013; Netflix nearly absent until 2019.
	if r.Coverage["Google"]["VE"][2013] < 0.3 {
		t.Error("Google should cover VE from 2013")
	}
	if r.Coverage["Netflix"]["VE"][2016] != 0 {
		t.Error("Netflix should not cover VE in 2016")
	}
}

func TestFig18MinorHypergiantsAbsent(t *testing.T) {
	r := Fig7Offnets(testWorld, []string{"Microsoft", "Cloudflare", "Amazon", "Limelight", "CDNetworks", "Alibaba"})
	for provider, byCountry := range r.Coverage {
		for year, v := range byCountry["VE"] {
			if v != 0 {
				t.Errorf("%s covers VE in %d (%.2f), want none", provider, year, v)
			}
		}
	}
}

func TestFig11Bandwidth(t *testing.T) {
	r := Fig11Bandwidth(7, months.New(2007, time.July), months.New(2024, time.January), 6)
	if math.Abs(r.VEJuly2023-2.93) > 0.6 {
		t.Errorf("VE July 2023 = %.2f, want ~2.93", r.VEJuly2023)
	}
	if r.PeersJuly2023["UY"] < 38 {
		t.Errorf("UY = %.2f, want ~47", r.PeersJuly2023["UY"])
	}
	if r.VEOverRegion09 < 0.6 || r.VEOverRegion09 > 1.25 {
		t.Errorf("VE/region 2009 = %.2f, want ~0.89", r.VEOverRegion09)
	}
	if r.VEOverRegion23 < 0.10 || r.VEOverRegion23 > 0.28 {
		t.Errorf("VE/region 2023 = %.2f, want ~0.17", r.VEOverRegion23)
	}
}

func TestFig19ThirdParty(t *testing.T) {
	r := Fig19ThirdParty()
	if math.Abs(r.VE.DNS-0.29) > 0.01 || math.Abs(r.Means.DNS-0.32) > 0.01 {
		t.Errorf("DNS = %.2f/%.2f, want 0.29/0.32", r.VE.DNS, r.Means.DNS)
	}
	if math.Abs(r.VE.CDN-0.37) > 0.01 || math.Abs(r.Means.CDN-0.46) > 0.01 {
		t.Errorf("CDN = %.2f/%.2f, want 0.37/0.46", r.VE.CDN, r.Means.CDN)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Caption: "cap", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	txt := tab.Text()
	if !strings.Contains(txt, "cap\n") || !strings.Contains(txt, "---") {
		t.Errorf("Text = %q", txt)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV = %q", csv)
	}
	quoted := &Table{Header: []string{"x"}}
	quoted.AddRow(`has,comma "and quotes"`)
	if !strings.Contains(quoted.CSV(), `"has,comma ""and quotes"""`) {
		t.Errorf("CSV quoting = %q", quoted.CSV())
	}
}

func TestItoa64(t *testing.T) {
	cases := map[int64]string{
		0: "0", 5: "5", 999: "999", 1000: "1,000",
		4330868: "4,330,868", -12345: "-12,345",
	}
	for in, want := range cases {
		if got := itoa64(in); got != want {
			t.Errorf("itoa64(%d) = %q, want %q", in, got, want)
		}
	}
}
