package core

import (
	"sort"

	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/offnet"
	"vzlens/internal/series"
	"vzlens/internal/webdeps"
	"vzlens/internal/world"
)

// Fig7Result reproduces Figure 7 (and Figure 18 over all ten providers):
// the share of each country's population in organizations hosting
// hypergiant off-nets, per year.
type Fig7Result struct {
	// Coverage maps provider -> country -> year -> population share.
	Coverage map[string]map[string]map[int]float64
	// VEAverage is Venezuela's 2013-2021 mean coverage per provider.
	VEAverage map[string]float64
}

// Fig7Offnets runs the off-net coverage analysis for the named providers
// over 2013-2021, detecting hosts from the yearly certificate scans and
// weighting by population at the organization level.
func Fig7Offnets(w *world.World, providers []string) Fig7Result {
	r := Fig7Result{
		Coverage:  map[string]map[string]map[int]float64{},
		VEAverage: map[string]float64{},
	}
	countries := []string{"AR", "BR", "CL", "CO", "MX", "VE"}
	for year := 2013; year <= 2021; year++ {
		scan := w.OffnetScan(year)
		detected := offnet.DetectOffnets(scan, offnet.Hypergiants())
		for _, provider := range providers {
			hosts := detected[provider]
			byCountry, ok := r.Coverage[provider]
			if !ok {
				byCountry = map[string]map[int]float64{}
				r.Coverage[provider] = byCountry
			}
			for _, cc := range countries {
				byYear, ok := byCountry[cc]
				if !ok {
					byYear = map[int]float64{}
					byCountry[cc] = byYear
				}
				byYear[year] = offnet.Coverage(cc, hosts, w.Pop, w.Orgs)
			}
		}
	}
	for _, provider := range providers {
		var sum float64
		var n int
		for _, v := range r.Coverage[provider]["VE"] {
			sum += v
			n++
		}
		if n > 0 {
			r.VEAverage[provider] = sum / float64(n)
		}
	}
	return r
}

// Table renders Venezuela's per-provider average coverage.
func (r Fig7Result) Table() *Table {
	t := &Table{
		Caption: "Figure 7/18: Venezuela population in off-net hosting orgs (2013-2021 mean)",
		Header:  []string{"provider", "VE mean coverage"},
	}
	var providers []string
	for p := range r.VEAverage {
		providers = append(providers, p)
	}
	sort.Strings(providers)
	for _, p := range providers {
		t.AddRow(p, pct(r.VEAverage[p]))
	}
	return t
}

// Fig11Result reproduces Figure 11: median download speed evolution.
type Fig11Result struct {
	Panel      *series.Panel
	RegionMean *series.Series
	Normalized *series.Series // VE divided by the regional mean

	VEJuly2023     float64
	PeersJuly2023  map[string]float64
	VEOverRegion09 float64 // ~0.89 before the crisis
	VEOverRegion23 float64 // ~0.17 a decade later
}

// Fig11Bandwidth runs the bandwidth analysis over a generated NDT
// archive: volume-weighted monthly draws per country, aggregated to
// month-country medians.
func Fig11Bandwidth(seed int64, lo, hi months.Month, step int) Fig11Result {
	gen := mlab.NewGenerator(seed)
	ar := mlab.NewArchive()
	for m := lo; !m.After(hi); m = m.Add(step) {
		for _, cc := range mlab.Countries() {
			ar.Add(gen.Draw(cc, m, mlab.MonthlyVolume(cc)))
		}
	}
	r := Fig11Result{
		Panel:         ar.MedianPanel(),
		PeersJuly2023: map[string]float64{},
	}
	r.RegionMean = r.Panel.RegionalMean()
	r.Normalized = r.Panel.NormalizeAgainst("VE", r.RegionMean)

	july23 := nearestMonth(r.Panel.Country("VE"), months.MustParse("2023-07"))
	r.VEJuly2023 = r.Panel.Country("VE").At(july23)
	for _, cc := range []string{"UY", "BR", "CL", "AR", "MX"} {
		r.PeersJuly2023[cc] = r.Panel.Country(cc).At(july23)
	}
	july09 := nearestMonth(r.Panel.Country("VE"), months.MustParse("2009-07"))
	if v, ok := r.Normalized.Get(july09); ok {
		r.VEOverRegion09 = v
	}
	if v, ok := r.Normalized.Get(july23); ok {
		r.VEOverRegion23 = v
	}
	return r
}

// nearestMonth snaps a target month to the closest recorded month of s
// (campaigns may run with a coarse step).
func nearestMonth(s *series.Series, target months.Month) months.Month {
	best := target
	bestDist := 1 << 30
	for _, p := range s.Points() {
		d := p.Month.Sub(target)
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = p.Month
		}
	}
	return best
}

// Table renders the bandwidth summary.
func (r Fig11Result) Table() *Table {
	t := &Table{
		Caption: "Figure 11: median download speed (Mbps)",
		Header:  []string{"series", "July 2023"},
	}
	t.AddRow("VE", f2(r.VEJuly2023))
	for _, cc := range []string{"UY", "BR", "CL", "MX", "AR"} {
		t.AddRow(cc, f2(r.PeersJuly2023[cc]))
	}
	t.AddRow("VE / region (2009)", f2(r.VEOverRegion09))
	t.AddRow("VE / region (2023)", f2(r.VEOverRegion23))
	return t
}

// Fig19Result reproduces Appendix H's Figure 19: third-party adoption.
type Fig19Result struct {
	PerCountry map[string]webdeps.Rates
	Means      webdeps.Rates
	VE         webdeps.Rates
}

// Fig19ThirdParty runs the third-party dependency analysis over a
// generated scraping snapshot of 1,000 sites per country.
func Fig19ThirdParty() Fig19Result {
	snap := webdeps.GenerateSnapshot(1000)
	r := Fig19Result{PerCountry: map[string]webdeps.Rates{}}
	for _, cc := range snap.Countries() {
		if rates, ok := snap.Adoption(cc); ok {
			r.PerCountry[cc] = rates
		}
	}
	r.Means = snap.RegionalMeans()
	r.VE = r.PerCountry["VE"]
	return r
}

// Table renders the adoption comparison.
func (r Fig19Result) Table() *Table {
	t := &Table{
		Caption: "Figure 19: third-party adoption over country-unique top sites",
		Header:  []string{"dimension", "VE", "regional mean"},
	}
	t.AddRow("third-party DNS", f2(r.VE.DNS), f2(r.Means.DNS))
	t.AddRow("third-party CA", f2(r.VE.CA), f2(r.Means.CA))
	t.AddRow("third-party CDN", f2(r.VE.CDN), f2(r.Means.CDN))
	t.AddRow("HTTPS", f2(r.VE.HTTPS), f2(r.Means.HTTPS))
	return t
}
