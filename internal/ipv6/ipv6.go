// Package ipv6 models the per-country IPv6 adoption dataset the paper
// takes from Meta (the percentage of requests Facebook receives over IPv6,
// per country per month). Curves are logistic with country-specific
// midpoints and ceilings, calibrated to Figure 5: the LACNIC mean rising
// from under 5% (2018) through ~11% (early 2021) to ~22% (2023); Mexico
// and Brazil above 40%; Chile surging in 2022; and Venezuela near zero
// until 2021, reaching only ~1.5% by mid-2023.
package ipv6

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/series"
)

// curve parameterizes one country's logistic adoption trajectory:
// pct(t) = ceiling / (1 + exp(-rate * (t - midpoint))), with t in months.
type curve struct {
	ceiling  float64      // asymptotic adoption percentage
	midpoint months.Month // month at half the ceiling
	rate     float64      // steepness per month
}

// curves holds the calibrated trajectories. Countries absent from the map
// report zero adoption (several small LACNIC economies still do).
var curves = map[string]curve{
	"MX": {58, months.New(2017, time.June), 0.045},
	"BR": {48, months.New(2019, time.January), 0.055},
	"EC": {38, months.New(2021, time.January), 0.06},
	"PE": {36, months.New(2019, time.June), 0.05},
	"UY": {45, months.New(2020, time.January), 0.05},
	"AR": {26, months.New(2021, time.March), 0.055},
	"CO": {24, months.New(2021, time.June), 0.07},
	"CL": {30, months.New(2022, time.April), 0.12}, // the 2022 surge
	"GT": {30, months.New(2021, time.June), 0.06},
	"BO": {28, months.New(2021, time.January), 0.05},
	"PY": {22, months.New(2021, time.June), 0.05},
	"TT": {28, months.New(2020, time.June), 0.05},
	"CR": {22, months.New(2021, time.January), 0.05},
	"DO": {18, months.New(2021, time.June), 0.05},
	"PA": {15, months.New(2021, time.June), 0.05},
	"SV": {14, months.New(2021, time.June), 0.05},
	"HN": {12, months.New(2021, time.June), 0.05},
	"NI": {10, months.New(2021, time.June), 0.05},
	"HT": {4, months.New(2022, time.January), 0.05},
	"SR": {6, months.New(2022, time.January), 0.05},
	"GY": {6, months.New(2022, time.January), 0.05},
	// Venezuela: a barely-started rollout. Near zero through 2020, ~1.5%
	// by mid-2023.
	"VE": {2.1, months.New(2022, time.September), 0.10},
}

// Adoption returns the percentage of requests over IPv6 for country cc at
// month m. Unknown countries report 0.
func Adoption(cc string, m months.Month) float64 {
	c, ok := curves[strings.ToUpper(cc)]
	if !ok {
		return 0
	}
	t := float64(m.Sub(c.midpoint))
	return c.ceiling / (1 + math.Exp(-c.rate*t))
}

// Dataset is a materialized per-country monthly adoption table, the form
// the analyses and the CSV codec work with.
type Dataset struct {
	panel *series.Panel
}

// Collect materializes adoption for the given countries over [lo, hi].
func Collect(countries []string, lo, hi months.Month) *Dataset {
	p := series.NewPanel()
	for _, cc := range countries {
		s := p.Country(cc)
		for _, m := range months.Range(lo, hi) {
			s.Set(m, Adoption(cc, m))
		}
	}
	return &Dataset{panel: p}
}

// Panel exposes the underlying per-country series panel.
func (d *Dataset) Panel() *series.Panel { return d.panel }

// Countries returns the covered countries, sorted.
func (d *Dataset) Countries() []string { return d.panel.Countries() }

// At returns adoption for cc at m.
func (d *Dataset) At(cc string, m months.Month) float64 {
	return d.panel.Country(cc).At(m)
}

// RegionalMean returns the month-wise mean across covered countries — the
// paper's lower-right Figure 5 panel.
func (d *Dataset) RegionalMean() *series.Series { return d.panel.RegionalMean() }

// WriteTo writes "cc,YYYY-MM,pct" lines, implementing io.WriterTo.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(s string) error {
		k, err := io.WriteString(w, s)
		n += int64(k)
		return err
	}
	if err := write("country,month,pct\n"); err != nil {
		return n, err
	}
	for _, cc := range d.panel.Countries() {
		for _, p := range d.panel.Country(cc).Points() {
			if err := write(fmt.Sprintf("%s,%s,%.4f\n", cc, p.Month, p.Value)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Parse reads the CSV form produced by WriteTo.
func Parse(r io.Reader) (*Dataset, error) {
	p := series.NewPanel()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "country,month,pct" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("ipv6: line %d: malformed %q", lineNo, line)
		}
		m, err := months.Parse(parts[1])
		if err != nil {
			return nil, fmt.Errorf("ipv6: line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("ipv6: line %d: bad pct %q", lineNo, parts[2])
		}
		p.Country(strings.ToUpper(parts[0])).Set(m, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ipv6: read: %w", err)
	}
	return &Dataset{panel: p}, nil
}

// CoveredCountries returns the countries with calibrated curves, sorted.
func CoveredCountries() []string {
	out := make([]string, 0, len(curves))
	for cc := range curves {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}
