package ipv6

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vzlens/internal/months"
)

func m(y int, mo time.Month) months.Month { return months.New(y, mo) }

func TestVenezuelaLagsMatchingFigure5(t *testing.T) {
	// Near-zero until 2021.
	if v := Adoption("VE", m(2020, time.June)); v > 0.5 {
		t.Errorf("VE 2020-06 = %.2f%%, want < 0.5%%", v)
	}
	// ~1.5% by mid-2023.
	v := Adoption("VE", m(2023, time.June))
	if v < 1.0 || v > 2.0 {
		t.Errorf("VE 2023-06 = %.2f%%, want ~1.5%%", v)
	}
}

func TestLeadersMatchFigure5(t *testing.T) {
	// Mexico and Brazil surpass ~40% in the latest snapshots.
	for _, cc := range []string{"MX", "BR"} {
		if v := Adoption(cc, m(2023, time.June)); v < 40 {
			t.Errorf("%s 2023-06 = %.1f%%, want >= 40%%", cc, v)
		}
	}
	// Argentina, Chile, Colombia around the 20% mark.
	for _, cc := range []string{"AR", "CL", "CO"} {
		v := Adoption(cc, m(2023, time.June))
		if v < 12 || v > 35 {
			t.Errorf("%s 2023-06 = %.1f%%, want ~20%%", cc, v)
		}
	}
}

func TestChileSurge2022(t *testing.T) {
	// Chile's curve steepens through 2022: the gain during 2022 exceeds
	// the gain during 2020.
	gain2020 := Adoption("CL", m(2021, time.January)) - Adoption("CL", m(2020, time.January))
	gain2022 := Adoption("CL", m(2023, time.January)) - Adoption("CL", m(2022, time.January))
	if gain2022 <= gain2020 {
		t.Errorf("CL 2022 gain %.1f <= 2020 gain %.1f, want surge", gain2022, gain2020)
	}
}

func TestRegionalMeanTrajectory(t *testing.T) {
	d := Collect(CoveredCountries(), m(2018, time.January), m(2023, time.June))
	mean := d.RegionalMean()
	at2018 := mean.At(m(2018, time.January))
	at2021 := mean.At(m(2021, time.January))
	at2023 := mean.At(m(2023, time.June))
	if at2018 > 7 {
		t.Errorf("regional mean 2018 = %.1f%%, want < 7%%", at2018)
	}
	if at2021 < 7 || at2021 > 15 {
		t.Errorf("regional mean 2021 = %.1f%%, want ~11%%", at2021)
	}
	if at2023 < 17 || at2023 > 27 {
		t.Errorf("regional mean 2023 = %.1f%%, want ~22%%", at2023)
	}
	if !(at2018 < at2021 && at2021 < at2023) {
		t.Error("regional mean should grow monotonically at the anchor points")
	}
}

func TestUnknownCountryZero(t *testing.T) {
	if v := Adoption("ZZ", m(2023, time.January)); v != 0 {
		t.Errorf("unknown country adoption = %v", v)
	}
}

func TestCaseInsensitive(t *testing.T) {
	if Adoption("ve", m(2023, time.June)) != Adoption("VE", m(2023, time.June)) {
		t.Error("country lookup should be case-insensitive")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d := Collect([]string{"VE", "BR"}, m(2020, time.January), m(2020, time.March))
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.Countries(); len(got) != 2 {
		t.Fatalf("Countries = %v", got)
	}
	want := d.At("BR", m(2020, time.February))
	got := parsed.At("BR", m(2020, time.February))
	if diff := want - got; diff > 0.001 || diff < -0.001 {
		t.Errorf("round trip value = %v, want %v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"VE,2020-01",        // short
		"VE,banana,1.0",     // bad month
		"VE,2020-01,banana", // bad pct
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

// Property: adoption is monotone non-decreasing and bounded by the
// ceiling for every covered country.
func TestQuickMonotoneBounded(t *testing.T) {
	ccs := CoveredCountries()
	f := func(ci uint8, a, b uint8) bool {
		cc := ccs[int(ci)%len(ccs)]
		m1 := m(2015, time.January).Add(int(a))
		m2 := m1.Add(int(b))
		v1, v2 := Adoption(cc, m1), Adoption(cc, m2)
		return v1 >= 0 && v2 <= 100 && v1 <= v2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
