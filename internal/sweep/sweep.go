// Package sweep is the batch half of the what-if engine: one request
// names a templated family of counterfactuals — depeer each of CANTV's
// transit providers, cut each Venezuelan submarine cable, place a root
// replica in each candidate city — and the engine expands it into N
// content-addressed scenario specs, drives them through the scenario
// engine under a bounded worker pool, and serves a ranked impact
// leaderboard. Progress is journaled through the crash-safe result
// store: a restarted server resumes exactly where it died, never
// re-simulating a spec whose result already reached the journal, and a
// spec that fails (bad compile, panic, deadline) is quarantined into
// the leaderboard with its error instead of sinking the sweep.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"vzlens/internal/bgp"
	"vzlens/internal/dnsroot"
	"vzlens/internal/geo"
	"vzlens/internal/months"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

// Families a sweep request can name.
const (
	// FamilyDepeerEach generates one depeer scenario per candidate
	// transit AS (default: every provider that ever served CANTV inside
	// the campaign range).
	FamilyDepeerEach = "depeer_each"
	// FamilyCableCutEach generates one cable-cut scenario per
	// Venezuelan-landing Telegeography cable with a modeled transit
	// association; cables without one are reported as skipped.
	FamilyCableCutEach = "cable_cut_each"
	// FamilyRootEach generates one root-replica scenario per
	// (letter, candidate city) pair.
	FamilyRootEach = "root_each"
	// FamilySpecs runs an explicit list of scenario specs as one sweep.
	FamilySpecs = "specs"
)

// MaxSpecs bounds a sweep so a hostile request cannot expand into an
// unbounded batch.
const MaxSpecs = 512

// Request is the JSON document POST /api/sweeps accepts: a sweep id, a
// family, and the family's parameters. Expansion is deterministic, so
// the same request against the same world always produces the same
// spec set in the same order.
type Request struct {
	ID     string `json:"id"`
	Family string `json:"family"`

	// From/Until window every generated op ("YYYY-MM", until exclusive).
	// Narrow windows are what make sweeps cheap: the engine re-simulates
	// only the months inside them.
	From  string `json:"from,omitempty"`
	Until string `json:"until,omitempty"`

	// ASNs overrides the depeer_each candidate set.
	ASNs []uint32 `json:"asns,omitempty"`

	// Letters/IATAs/Host parameterize root_each. Defaults: all thirteen
	// letters, the Venezuelan cities, CANTV as host.
	Letters []string `json:"letters,omitempty"`
	IATAs   []string `json:"iatas,omitempty"`
	Host    uint32   `json:"host,omitempty"`

	// Specs is the explicit list for FamilySpecs.
	Specs []*scenario.Spec `json:"specs,omitempty"`
}

// ParseRequest strictly decodes and validates a sweep request.
func ParseRequest(data []byte) (*Request, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r Request
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("sweep: decode request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: trailing data after request document")
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks the request structurally; world-dependent checks
// (unknown ASNs, empty candidate sets) live in Expand.
func (r *Request) Validate() error {
	if err := validateID(r.ID); err != nil {
		return err
	}
	switch r.Family {
	case FamilyDepeerEach, FamilyCableCutEach, FamilyRootEach:
		if len(r.Specs) > 0 {
			return fmt.Errorf("sweep %q: specs only valid with family %q", r.ID, FamilySpecs)
		}
	case FamilySpecs:
		if len(r.Specs) == 0 {
			return fmt.Errorf("sweep %q: family %q requires specs", r.ID, FamilySpecs)
		}
	case "":
		return fmt.Errorf("sweep %q: missing family", r.ID)
	default:
		return fmt.Errorf("sweep %q: unknown family %q", r.ID, r.Family)
	}
	var from, until months.Month
	var err error
	if r.From != "" {
		if from, err = months.Parse(r.From); err != nil {
			return fmt.Errorf("sweep %q: bad from %q: %w", r.ID, r.From, err)
		}
	}
	if r.Until != "" {
		if until, err = months.Parse(r.Until); err != nil {
			return fmt.Errorf("sweep %q: bad until %q: %w", r.ID, r.Until, err)
		}
	}
	if !from.IsZero() && !until.IsZero() && !from.Before(until) {
		return fmt.Errorf("sweep %q: window inverted: from %s not before until %s", r.ID, r.From, r.Until)
	}
	for _, l := range r.Letters {
		if len(l) != 1 || l[0] < 'A' || l[0] > 'M' {
			return fmt.Errorf("sweep %q: bad root letter %q (want \"A\"..\"M\")", r.ID, l)
		}
	}
	return nil
}

// Key derives the sweep's content-addressed identity, the same way a
// scenario spec does: id plus a digest of the canonical request JSON.
// A re-POSTed id with different parameters gets a different key and
// can never serve the old leaderboard.
func (r *Request) Key() string {
	canon, _ := json.Marshal(r)
	sum := sha256.Sum256(canon)
	return r.ID + "-" + hex.EncodeToString(sum[:6])
}

// validateID enforces lowercase-kebab sweep ids (same alphabet as
// scenario ids, so generated spec ids stay valid).
func validateID(id string) error {
	if id == "" {
		return fmt.Errorf("sweep: empty id")
	}
	if len(id) > 48 {
		return fmt.Errorf("sweep: id longer than 48 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-'
		if !ok || (c == '-' && (i == 0 || i == len(id)-1)) {
			return fmt.Errorf("sweep: id %q must be lowercase kebab-case ([a-z0-9-])", id)
		}
	}
	return nil
}

// cableTransits associates Venezuelan-landing cables with the CANTV
// transit providers the topology models as riding them (the Figure 9
// doc: Telecom Italia via SAC/Americas-II, Columbus and Orange via
// Americas-II, V.tal via GlobeNet). A cable cut is the loss of those
// provider links.
var cableTransits = map[string][]bgp.ASN{
	"Americas-II": {world.ASTelecomIT, world.ASColumbus, world.ASOrange},
	"GlobeNet":    {world.ASVtal},
}

// Expand turns the request into its ordered scenario specs. The second
// return lists candidates the family skipped (e.g. cables with no
// modeled transit) — skips are reported, never silent. Every generated
// spec passes scenario.Spec.Validate; compile-time failures against
// the world are per-spec outcomes, not expansion errors, so one bad
// candidate cannot sink the batch.
func (r *Request) Expand(w *world.World) (specs []*scenario.Spec, skipped []string, err error) {
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	switch r.Family {
	case FamilyDepeerEach:
		for _, asn := range r.depeerCandidates(w) {
			specs = append(specs, &scenario.Spec{
				ID:   fmt.Sprintf("%s-depeer-as%d", r.ID, asn),
				Name: fmt.Sprintf("Depeer AS%d", asn),
				Ops:  []scenario.Op{{Op: scenario.OpDepeer, ASN: uint32(asn), From: r.From, Until: r.Until}},
			})
		}
	case FamilyCableCutEach:
		for _, c := range w.Cables.Cables() {
			if !c.LandsIn("VE") {
				continue
			}
			asns, ok := cableTransits[c.Name]
			if !ok {
				skipped = append(skipped, fmt.Sprintf("cable %q: no modeled transit association", c.Name))
				continue
			}
			var ops []scenario.Op
			for _, asn := range asns {
				ops = append(ops, scenario.Op{
					Op: scenario.OpRemoveLink, A: uint32(asn), B: uint32(world.ASCANTV),
					Kind: "p2c", From: r.From, Until: r.Until,
				})
			}
			specs = append(specs, &scenario.Spec{
				ID:   r.ID + "-cut-" + slug(c.Name),
				Name: fmt.Sprintf("Cut %s", c.Name),
				Ops:  ops,
			})
		}
	case FamilyRootEach:
		letters := r.Letters
		if len(letters) == 0 {
			for _, l := range dnsroot.Letters() {
				letters = append(letters, l.String())
			}
		}
		iatas := r.IATAs
		if len(iatas) == 0 {
			for _, c := range geo.CitiesIn("VE") {
				iatas = append(iatas, c.IATA)
			}
		}
		host := r.Host
		if host == 0 {
			host = uint32(world.ASCANTV)
		}
		for _, l := range letters {
			for _, iata := range iatas {
				specs = append(specs, &scenario.Spec{
					ID:   fmt.Sprintf("%s-root-%s-%s", r.ID, strings.ToLower(l), strings.ToLower(iata)),
					Name: fmt.Sprintf("%s-root replica at %s", l, iata),
					Ops: []scenario.Op{{
						Op: scenario.OpAddRoot, Letter: l, Host: host, IATA: iata,
						From: r.From, Until: r.Until,
					}},
				})
			}
		}
	case FamilySpecs:
		specs = r.Specs
	}
	if len(specs) == 0 {
		return nil, skipped, fmt.Errorf("sweep %q: family %q expanded to zero specs", r.ID, r.Family)
	}
	if len(specs) > MaxSpecs {
		return nil, skipped, fmt.Errorf("sweep %q: %d specs exceeds limit of %d", r.ID, len(specs), MaxSpecs)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, skipped, fmt.Errorf("sweep %q: %w", r.ID, err)
		}
		if seen[s.ID] {
			return nil, skipped, fmt.Errorf("sweep %q: duplicate spec id %q", r.ID, s.ID)
		}
		seen[s.ID] = true
	}
	return specs, skipped, nil
}

// depeerCandidates returns the default depeer_each candidate set: every
// provider that served CANTV transit during any campaign month, sorted.
func (r *Request) depeerCandidates(w *world.World) []bgp.ASN {
	if len(r.ASNs) > 0 {
		out := make([]bgp.ASN, len(r.ASNs))
		for i, a := range r.ASNs {
			out[i] = bgp.ASN(a)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	lo, hi := w.Config.TraceStart, w.Config.TraceEnd
	if w.Config.ChaosStart.Before(lo) {
		lo = w.Config.ChaosStart
	}
	if hi.Before(w.Config.ChaosEnd) {
		hi = w.Config.ChaosEnd
	}
	set := map[bgp.ASN]bool{}
	for m := lo; !hi.Before(m); m = m.Add(1) {
		for _, asn := range world.CANTVProvidersAt(m) {
			set[asn] = true
		}
	}
	out := make([]bgp.ASN, 0, len(set))
	for asn := range set {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// slug lowercases a display name into the scenario id alphabet.
func slug(name string) string {
	var b strings.Builder
	lastDash := true // suppress leading dashes
	for _, c := range strings.ToLower(name) {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			b.WriteRune(c)
			lastDash = false
		case !lastDash:
			b.WriteByte('-')
			lastDash = true
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
