package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"vzlens/internal/obs"
	"vzlens/internal/resilience"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

// ErrConflict reports a POST reusing a live sweep id with different
// parameters; the serving layer maps it to 409.
var ErrConflict = errors.New("sweep id already exists with different parameters")

// Journal record kinds. A sweep journal is a sequence of CRC-framed
// JSON records: one manifest, then one spec record per completed
// (succeeded or quarantined) spec in completion order, then a done
// marker once the leaderboard is final.
const (
	recManifest = "manifest"
	recSpec     = "spec"
	recDone     = "done"
)

// journalRecord is the framed payload. Exactly one pointer field is
// set, selected by Kind.
type journalRecord struct {
	Kind     string    `json:"kind"`
	Manifest *manifest `json:"manifest,omitempty"`
	Spec     *Result   `json:"spec,omitempty"`
}

// manifest pins the sweep's identity in its journal. Expansion is
// deterministic, so the request alone reconstructs the spec list on
// resume; Key double-checks the journal belongs to this request.
type manifest struct {
	Key     string   `json:"key"`
	Request *Request `json:"request"`
}

// Options configures a Manager.
type Options struct {
	// World expands families and compiles specs. Required.
	World *world.World
	// Engine runs specs; nil builds a fresh engine over World. The
	// serving layer injects its engine so sweeps share the memoized
	// baseline campaigns.
	Engine *scenario.Engine
	// Store supplies the journal directory and persists the final
	// leaderboard. Required.
	Store *resultstore.Store
	// Workers bounds concurrent spec simulations (default 2).
	Workers int
	// SpecTimeout is the per-spec watchdog deadline covering every
	// retry attempt (default 5m; negative disables).
	SpecTimeout time.Duration
	// Retry is the per-spec retry policy (default: 2 attempts, short
	// backoff). Backoff sleeps abort on drain or deadline.
	Retry resilience.Policy
	// Admit, when set, gates each simulation attempt through the
	// serving layer's admission control. It returns a release func or
	// an error (shed); sheds are retried like any transient failure.
	Admit func(ctx context.Context) (func(), error)
	// RunSpec overrides how one spec is simulated; nil uses the
	// scenario engine with experiment tables skipped. Tests inject
	// failing and panicking runs here.
	RunSpec func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error)
}

// Manager owns every sweep in the process: it expands requests,
// journals progress through the result store, runs specs on a bounded
// pool with panic isolation and retries, and serves ranked status.
type Manager struct {
	w           *world.World
	store       *resultstore.Store
	workers     int
	specTimeout time.Duration
	retry       resilience.Policy
	admit       func(ctx context.Context) (func(), error)
	run         func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error)
	met         managerMetrics

	ctx       context.Context // canceled by Kill: in-flight specs abandon un-journaled
	cancel    context.CancelFunc
	drainCh   chan struct{} // closed by Drain/Kill: dispatch stops, in-flight finishes
	drainOnce sync.Once

	mu     sync.Mutex
	sweeps map[string]*sweepRun // by sweep id
	wg     sync.WaitGroup
}

// sweepRun is one sweep's live state.
type sweepRun struct {
	req      *Request
	key      string
	specs    []*scenario.Spec
	specKeys []string // specs[i].Key(), cached
	skipped  []string
	journal  *resultstore.Journal

	mu      sync.Mutex
	results map[string]*Result // by spec key, journaled
	done    bool
}

// NewManager returns a Manager; call Resume to pick up journals left by
// a previous process, then Start new sweeps.
func NewManager(opts Options) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		w:           opts.World,
		store:       opts.Store,
		workers:     opts.Workers,
		specTimeout: opts.SpecTimeout,
		retry:       opts.Retry,
		admit:       opts.Admit,
		run:         opts.RunSpec,
		ctx:         ctx,
		cancel:      cancel,
		drainCh:     make(chan struct{}),
		sweeps:      map[string]*sweepRun{},
	}
	if m.workers <= 0 {
		m.workers = 2
	}
	if m.specTimeout == 0 {
		m.specTimeout = 5 * time.Minute
	}
	if m.retry.MaxAttempts == 0 {
		m.retry = resilience.Policy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}
	}
	if m.run == nil {
		eng := opts.Engine
		if eng == nil {
			eng = scenario.NewEngine(scenario.Options{World: opts.World})
		}
		m.run = func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
			return eng.RunWith(ctx, sp, scenario.RunConfig{SkipTables: true})
		}
	}
	return m
}

// managerMetrics holds the manager's nil-safe observability hooks.
type managerMetrics struct {
	started, resumed, completed         *obs.Counter
	specsOK, specsFailed, specsRestored *obs.Counter
	retries, journalErrors              *obs.Counter
	monthsRecomputed, monthsReused      *obs.Counter
	compactions                         *obs.Counter
	active                              *obs.Gauge
	specSeconds                         *obs.Histogram
}

// Instrument registers the vz_sweep_* metrics on reg.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.met = managerMetrics{
		started: reg.Counter("vz_sweep_started_total",
			"Sweeps accepted and started."),
		resumed: reg.Counter("vz_sweep_resumed_total",
			"Unfinished sweeps resumed from their journals at startup."),
		completed: reg.Counter("vz_sweep_completed_total",
			"Sweeps whose leaderboard reached its done record."),
		specsOK: reg.Counter("vz_sweep_specs_completed_total",
			"Sweep specs simulated and journaled successfully."),
		specsFailed: reg.Counter("vz_sweep_specs_failed_total",
			"Sweep specs quarantined with an error."),
		specsRestored: reg.Counter("vz_sweep_specs_restored_total",
			"Journaled spec results restored on resume (never re-simulated)."),
		retries: reg.Counter("vz_sweep_spec_retries_total",
			"Extra simulation attempts beyond each spec's first."),
		journalErrors: reg.Counter("vz_sweep_journal_errors_total",
			"Failed journal appends (result kept in memory only)."),
		monthsRecomputed: reg.Counter("vz_sweep_months_recomputed_total",
			"Campaign months re-simulated across all sweep specs."),
		monthsReused: reg.Counter("vz_sweep_months_reused_total",
			"Campaign months spliced from the memoized baseline."),
		active: reg.Gauge("vz_sweep_active",
			"Sweeps currently running (not yet done)."),
		specSeconds: reg.Histogram("vz_sweep_spec_seconds",
			"End-to-end duration of one successful sweep spec.",
			obs.LatencyBuckets),
		compactions: resultstore.InstrumentCompactions(reg),
	}
}

// Start expands req and launches its sweep. Re-POSTing an identical
// request is idempotent and returns the live status; the same id with
// different parameters returns ErrConflict.
func (m *Manager) Start(req *Request) (*Status, error) {
	specs, skipped, err := req.Expand(m.w)
	if err != nil {
		return nil, err
	}
	key := req.Key()
	m.mu.Lock()
	if ex, ok := m.sweeps[req.ID]; ok {
		m.mu.Unlock()
		if ex.key == key {
			return m.statusOf(ex), nil
		}
		return nil, fmt.Errorf("sweep %q: %w", req.ID, ErrConflict)
	}
	sw, err := m.openRun(req, key, specs, skipped)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.sweeps[req.ID] = sw
	m.wg.Add(1)
	m.mu.Unlock()
	m.met.started.Inc()
	m.met.active.Add(1)
	go m.runSweep(sw)
	return m.statusOf(sw), nil
}

// openRun opens (or re-opens) the sweep's journal, replays any records
// already in it, and guarantees the manifest record is present.
func (m *Manager) openRun(req *Request, key string, specs []*scenario.Spec, skipped []string) (*sweepRun, error) {
	j, recs, _, err := resultstore.OpenJournal(m.store.JournalPath("sweep-" + key))
	if err != nil {
		return nil, fmt.Errorf("sweep %q: open journal: %w", req.ID, err)
	}
	j.Instrument(m.met.compactions)
	m.compactIfDuplicated(j, recs)
	sw := &sweepRun{
		req: req, key: key, specs: specs, skipped: skipped,
		journal: j, results: map[string]*Result{},
	}
	sw.specKeys = make([]string, len(specs))
	for i, sp := range specs {
		sw.specKeys[i] = sp.Key()
	}
	sw.replay(recs)
	hasManifest := false
	for _, raw := range recs {
		var rec journalRecord
		if json.Unmarshal(raw, &rec) == nil && rec.Kind == recManifest {
			hasManifest = true
			break
		}
	}
	if !hasManifest {
		payload, _ := json.Marshal(journalRecord{Kind: recManifest, Manifest: &manifest{Key: key, Request: req}})
		if err := j.Append(payload); err != nil {
			j.Close()
			return nil, fmt.Errorf("sweep %q: journal manifest: %w", req.ID, err)
		}
	}
	return sw, nil
}

// compactIfDuplicated rewrites a journal whose replay would skip
// redundant records — duplicate manifests or spec results left behind
// by repeated crash-resume cycles. Compaction is best-effort: a failed
// rewrite leaves the original journal intact (duplicates are harmless
// to replay, just wasted disk and startup time).
func (m *Manager) compactIfDuplicated(j *resultstore.Journal, recs [][]byte) {
	if len(dedupeSweepRecords(recs)) == len(recs) {
		return
	}
	if _, err := j.Compact(dedupeSweepRecords); err != nil {
		m.met.journalErrors.Inc()
	}
}

// dedupeSweepRecords is the journal compaction policy: keep the first
// manifest, the first spec record per spec key, and a single done
// marker. Records this version cannot decode are preserved untouched —
// a newer journal format must survive an older binary's compaction.
func dedupeSweepRecords(recs [][]byte) [][]byte {
	out := make([][]byte, 0, len(recs))
	seenManifest, seenDone := false, false
	seenSpec := map[string]bool{}
	for _, raw := range recs {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			out = append(out, raw)
			continue
		}
		switch rec.Kind {
		case recManifest:
			if seenManifest {
				continue
			}
			seenManifest = true
		case recSpec:
			if rec.Spec == nil || rec.Spec.Key == "" || seenSpec[rec.Spec.Key] {
				continue
			}
			seenSpec[rec.Spec.Key] = true
		case recDone:
			if seenDone {
				continue
			}
			seenDone = true
		}
		out = append(out, raw)
	}
	return out
}

// replay folds journal records into the run's state and returns the
// number of spec results restored. Unknown kinds are skipped — a newer
// journal version degrades to re-simulation, never to corruption.
func (sw *sweepRun) replay(recs [][]byte) int {
	restored := 0
	for _, raw := range recs {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		switch rec.Kind {
		case recSpec:
			if rec.Spec != nil && rec.Spec.Key != "" {
				if _, ok := sw.results[rec.Spec.Key]; !ok {
					sw.results[rec.Spec.Key] = rec.Spec
					restored++
				}
			}
		case recDone:
			sw.done = true
		}
	}
	return restored
}

// Resume scans the store for sweep journals left by a previous process
// and restores them: finished sweeps become servable immediately,
// unfinished ones continue from exactly where the journal ends. It
// returns the number of spec results restored without re-simulation.
func (m *Manager) Resume() (restored int, err error) {
	names, err := m.store.Journals()
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "sweep-") {
			continue
		}
		j, recs, _, err := resultstore.OpenJournal(filepath.Join(m.store.Dir(), name))
		if err != nil {
			continue
		}
		j.Instrument(m.met.compactions)
		m.compactIfDuplicated(j, recs)
		var mf *manifest
		for _, raw := range recs {
			var rec journalRecord
			if json.Unmarshal(raw, &rec) == nil && rec.Kind == recManifest && rec.Manifest != nil {
				mf = rec.Manifest
				break
			}
		}
		if mf == nil || mf.Request == nil {
			j.Close()
			continue
		}
		specs, skipped, err := mf.Request.Expand(m.w)
		if err != nil || mf.Request.Key() != mf.Key {
			// The world or request semantics changed under the journal;
			// resuming would mix incompatible results.
			j.Close()
			continue
		}
		sw := &sweepRun{
			req: mf.Request, key: mf.Key, specs: specs, skipped: skipped,
			journal: j, results: map[string]*Result{},
		}
		sw.specKeys = make([]string, len(specs))
		for i, sp := range specs {
			sw.specKeys[i] = sp.Key()
		}
		n := sw.replay(recs)
		m.mu.Lock()
		if _, ok := m.sweeps[mf.Request.ID]; ok {
			m.mu.Unlock()
			j.Close()
			continue
		}
		m.sweeps[mf.Request.ID] = sw
		m.wg.Add(1)
		m.mu.Unlock()
		restored += n
		m.met.specsRestored.Add(uint64(n))
		if !sw.isDone() {
			m.met.resumed.Inc()
			m.met.active.Add(1)
		}
		go m.runSweep(sw)
	}
	return restored, nil
}

// Get returns the live status of the sweep with the given id.
func (m *Manager) Get(id string) (*Status, bool) {
	m.mu.Lock()
	sw, ok := m.sweeps[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return m.statusOf(sw), true
}

// List returns the status of every known sweep, sorted by id.
func (m *Manager) List() []*Status {
	m.mu.Lock()
	runs := make([]*sweepRun, 0, len(m.sweeps))
	for _, sw := range m.sweeps {
		runs = append(runs, sw)
	}
	m.mu.Unlock()
	out := make([]*Status, len(runs))
	for i, sw := range runs {
		out[i] = m.statusOf(sw)
	}
	sortStatuses(out)
	return out
}

func sortStatuses(ss []*Status) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].ID < ss[j-1].ID; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Drain stops dispatching new specs, waits for in-flight specs to
// finish and checkpoint, and closes the journals. Unfinished sweeps
// resume on the next process start. The SIGTERM path.
func (m *Manager) Drain(ctx context.Context) error {
	m.drainOnce.Do(func() { close(m.drainCh) })
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill aborts everything immediately: in-flight specs are abandoned
// without journaling, exactly as a crash would leave them. Tests use
// it to simulate dying mid-sweep inside one process.
func (m *Manager) Kill() {
	m.cancel()
	m.drainOnce.Do(func() { close(m.drainCh) })
	m.wg.Wait()
}

// runSweep drives one sweep to completion (or to drain/kill).
func (m *Manager) runSweep(sw *sweepRun) {
	defer m.wg.Done()
	if sw.isDone() {
		sw.journal.Close()
		return
	}
	ctx, span := obs.StartSpan(m.ctx, "sweep.run")
	span.SetAttr("sweep", sw.req.ID)
	span.SetAttr("key", sw.key)
	span.SetAttr("specs", len(sw.specs))
	defer span.End()

	var pending []*scenario.Spec
	sw.mu.Lock()
	for i, sp := range sw.specs {
		if _, ok := sw.results[sw.specKeys[i]]; !ok {
			pending = append(pending, sp)
		}
	}
	sw.mu.Unlock()
	span.SetAttr("pending", len(pending))

	ch := make(chan *scenario.Spec)
	var wg sync.WaitGroup
	for i := 0; i < m.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range ch {
				m.runOne(ctx, sw, sp)
			}
		}()
	}
dispatch:
	for _, sp := range pending {
		select {
		case <-m.drainCh:
			break dispatch
		case ch <- sp:
		}
	}
	close(ch)
	wg.Wait()

	if m.ctx.Err() == nil && sw.complete() {
		m.finish(sw)
	}
	sw.journal.Close()
}

// runOne executes a single spec end to end: compile gate, admission,
// watchdog deadline, bounded retry, panic isolation, journal append.
func (m *Manager) runOne(parent context.Context, sw *sweepRun, sp *scenario.Spec) {
	ctx, span := obs.StartSpan(parent, "sweep.spec")
	span.SetAttr("spec", sp.ID)
	defer span.End()
	start := time.Now()

	// Compile errors are permanent: no retry, straight to quarantine.
	if _, err := sp.Compile(m.w); err != nil {
		span.SetAttr("status", StatusFailed)
		m.record(sw, &Result{Spec: sp.ID, Key: sp.Key(), Status: StatusFailed, Error: err.Error()})
		return
	}

	sctx, cancel := ctx, context.CancelFunc(func() {})
	if m.specTimeout > 0 {
		sctx, cancel = context.WithTimeout(ctx, m.specTimeout)
	}
	defer cancel()

	type runOut struct {
		d  *scenario.Diff
		st scenario.RunStats
	}
	attempts := 0
	out, err := resilience.RetryValue(sctx, m.retry, func(ctx context.Context) (runOut, error) {
		attempts++
		if m.admit != nil {
			release, err := m.admit(ctx)
			if err != nil {
				return runOut{}, err
			}
			defer release()
		}
		d, st, err := m.safeRun(ctx, sp)
		return runOut{d, st}, err
	})
	if attempts > 1 {
		m.met.retries.Add(uint64(attempts - 1))
	}
	if err != nil {
		if parent.Err() != nil {
			// Killed mid-flight: abandon without journaling; the spec
			// re-runs on resume, which is exactly crash semantics.
			span.SetAttr("status", "abandoned")
			return
		}
		span.SetAttr("status", StatusFailed)
		m.record(sw, &Result{Spec: sp.ID, Key: sp.Key(), Status: StatusFailed, Error: err.Error()})
		return
	}
	res := summarize(sp, out.d, out.st)
	span.SetAttr("status", StatusOK)
	span.SetAttr("recomputed", res.MonthsRecomputed)
	m.met.monthsRecomputed.Add(uint64(res.MonthsRecomputed))
	m.met.monthsReused.Add(uint64(res.MonthsReused))
	m.met.specSeconds.ObserveDuration(time.Since(start))
	m.record(sw, res)
}

// safeRun converts a panicking simulation into an error so one bad
// spec can never take the worker pool down (the scenario engine has
// its own recover; this one also covers injected RunSpec overrides).
func (m *Manager) safeRun(ctx context.Context, sp *scenario.Spec) (d *scenario.Diff, st scenario.RunStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: spec %q panicked: %v", sp.ID, r)
		}
	}()
	return m.run(ctx, sp)
}

// record journals one result and folds it into the run. The append
// happens before the in-memory insert: a result is only visible once
// it is crash-safe. A spec already recorded (resume races) is a no-op.
func (m *Manager) record(sw *sweepRun, res *Result) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.results[res.Key]; ok {
		return
	}
	payload, _ := json.Marshal(journalRecord{Kind: recSpec, Spec: res})
	if err := sw.journal.Append(payload); err != nil {
		// Disk trouble: keep the result in memory so the sweep can
		// finish; after a crash this spec re-runs, which is safe.
		m.met.journalErrors.Inc()
	}
	sw.results[res.Key] = res
	if res.Status == StatusFailed {
		m.met.specsFailed.Inc()
	} else {
		m.met.specsOK.Inc()
	}
}

// finish appends the done record and persists the final status (with
// its leaderboard) to the result store as a durable artifact.
func (m *Manager) finish(sw *sweepRun) {
	sw.mu.Lock()
	payload, _ := json.Marshal(journalRecord{Kind: recDone})
	if err := sw.journal.Append(payload); err != nil {
		m.met.journalErrors.Inc()
	}
	sw.done = true
	status := sw.statusLocked()
	sw.mu.Unlock()
	if data, err := json.Marshal(status); err == nil {
		m.store.Put("sweep-"+sw.key, data) //nolint:errcheck // journal is the source of truth
	}
	m.met.completed.Inc()
	m.met.active.Add(-1)
}

func (sw *sweepRun) isDone() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.done
}

func (sw *sweepRun) complete() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.results) >= len(sw.specs)
}

func (m *Manager) statusOf(sw *sweepRun) *Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.statusLocked()
}

// statusLocked assembles the status document; sw.mu must be held.
func (sw *sweepRun) statusLocked() *Status {
	st := &Status{
		ID:      sw.req.ID,
		Key:     sw.key,
		Family:  sw.req.Family,
		State:   StateRunning,
		Total:   len(sw.specs),
		Skipped: sw.skipped,
	}
	if sw.done {
		st.State = StateDone
	}
	var rs []*Result
	for _, k := range sw.specKeys {
		if r, ok := sw.results[k]; ok {
			rs = append(rs, r)
			st.Completed++
			if r.Status == StatusFailed {
				st.Failed++
			}
		}
	}
	st.Leaderboard = leaderboard(rs)
	return st
}
