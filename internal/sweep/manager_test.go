package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vzlens/internal/obs"
	"vzlens/internal/resilience"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
)

// fakeRun is a deterministic stand-in for the scenario engine: impact
// derives from the spec id alone, so a control run and a resumed run
// produce identical results without simulating anything.
func fakeRun(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
	d := &scenario.Diff{
		Scenario: sp.ID,
		Key:      sp.Key(),
		Trace: []scenario.TraceDelta{{
			Month: "2023-07", CC: "VE",
			DeltaMs: float64(len(sp.ID)), // deterministic per spec
		}},
		Reach: []scenario.ReachDelta{{
			Month: "2023-07", CC: "VE",
			BaselineProbes: 10, ScenarioProbes: 10 - len(sp.ID)%4,
		}},
	}
	return d, scenario.RunStats{TraceMonthsRecomputed: 1, ChaosMonthsReused: 1}, nil
}

// newTestManager wires a Manager over a fresh store in dir.
func newTestManager(t *testing.T, dir string, opts Options) (*Manager, *resultstore.Store) {
	t.Helper()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.World = testWorld(t)
	opts.Store = store
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	m := NewManager(opts)
	m.Instrument(obs.NewRegistry())
	t.Cleanup(m.Kill)
	return m, store
}

// waitDone polls until the sweep reaches the done state.
func waitDone(t *testing.T, m *Manager, id string) *Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if ok && st.State == StateDone {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("sweep %q never finished: %+v", id, st)
	return nil
}

// depeerReq is the workhorse request: six depeer specs on the test
// world, windowed to the single campaign month.
func depeerReq(id string) *Request {
	return &Request{ID: id, Family: FamilyDepeerEach, From: "2023-07"}
}

func TestManagerRunsSweepToDone(t *testing.T) {
	m, store := newTestManager(t, t.TempDir(), Options{RunSpec: fakeRun})
	st, err := m.Start(depeerReq("run1"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 || st.State != StateRunning && st.State != StateDone {
		t.Fatalf("initial status: %+v", st)
	}
	final := waitDone(t, m, "run1")
	if final.Completed != 6 || final.Failed != 0 {
		t.Fatalf("final status: %+v", final)
	}
	if len(final.Leaderboard) != 6 {
		t.Fatalf("leaderboard has %d entries", len(final.Leaderboard))
	}
	for i, e := range final.Leaderboard {
		if e.Rank != i+1 {
			t.Errorf("entry %d rank = %d", i, e.Rank)
		}
		if e.Status != StatusOK {
			t.Errorf("entry %q status = %q", e.Spec, e.Status)
		}
	}
	// Impact ordering: reach loss desc, then |RTT delta| desc, then id.
	for i := 1; i < len(final.Leaderboard); i++ {
		a, b := final.Leaderboard[i-1], final.Leaderboard[i]
		if a.ReachLossProbeMonths < b.ReachLossProbeMonths {
			t.Errorf("leaderboard unsorted at %d: %d < %d", i, a.ReachLossProbeMonths, b.ReachLossProbeMonths)
		}
	}
	// The final leaderboard is persisted as a durable store artifact.
	if _, err := store.Get("sweep-" + final.Key); err != nil {
		t.Errorf("final status not in store: %v", err)
	}
	// And the journal records manifest + 6 specs + done.
	names, _ := store.Journals()
	if len(names) != 1 {
		t.Fatalf("journals = %v", names)
	}
}

func TestManagerQuarantinesFailures(t *testing.T) {
	// One spec panics, one fails persistently; the other compiles fine.
	boom := func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		switch sp.ID {
		case "panics":
			panic("simulated explosion")
		case "errors":
			return nil, scenario.RunStats{}, errors.New("simulated persistent failure")
		}
		return fakeRun(ctx, sp)
	}
	m, _ := newTestManager(t, t.TempDir(), Options{
		RunSpec: boom,
		Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	req := &Request{ID: "q1", Family: FamilySpecs, Specs: []*scenario.Spec{
		{ID: "healthy", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 8048, From: "2023-07"}}},
		{ID: "panics", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 6306, From: "2023-07"}}},
		{ID: "errors", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 27889, From: "2023-07"}}},
		// References an AS the world has never heard of: a compile
		// error, quarantined without a single simulation attempt.
		{ID: "wont-compile", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 64999, From: "2023-07"}}},
	}}
	if _, err := m.Start(req); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, "q1")
	if final.Completed != 4 || final.Failed != 3 {
		t.Fatalf("final status: %+v", final)
	}
	byID := map[string]Entry{}
	for _, e := range final.Leaderboard {
		byID[e.Spec] = e
	}
	if e := byID["healthy"]; e.Status != StatusOK || e.Rank != 1 {
		t.Errorf("healthy entry: %+v", e)
	}
	if e := byID["panics"]; e.Status != StatusFailed || !strings.Contains(e.Error, "panicked") {
		t.Errorf("panicking entry: %+v", e)
	}
	if e := byID["errors"]; e.Status != StatusFailed || !strings.Contains(e.Error, "attempts exhausted") {
		t.Errorf("erroring entry: %+v", e)
	}
	if e := byID["wont-compile"]; e.Status != StatusFailed || !strings.Contains(e.Error, "unknown to the world") {
		t.Errorf("compile-failing entry: %+v", e)
	}
	// Failures sink below the success regardless of name order.
	if final.Leaderboard[0].Spec != "healthy" {
		t.Errorf("leaderboard head = %q, want the healthy spec", final.Leaderboard[0].Spec)
	}
}

func TestManagerSpecDeadlineQuarantines(t *testing.T) {
	hang := func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		<-ctx.Done() // honors the per-spec watchdog
		return nil, scenario.RunStats{}, ctx.Err()
	}
	m, _ := newTestManager(t, t.TempDir(), Options{
		RunSpec:     hang,
		SpecTimeout: 20 * time.Millisecond,
		Retry:       resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	req := &Request{ID: "w1", Family: FamilySpecs, Specs: []*scenario.Spec{
		{ID: "stuck", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 8048, From: "2023-07"}}},
	}}
	if _, err := m.Start(req); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, "w1")
	e := final.Leaderboard[0]
	if e.Status != StatusFailed || !strings.Contains(e.Error, "deadline") {
		t.Errorf("watchdogged entry: %+v", e)
	}
}

func TestManagerIdempotentStartAndConflict(t *testing.T) {
	m, _ := newTestManager(t, t.TempDir(), Options{RunSpec: fakeRun})
	if _, err := m.Start(depeerReq("dup")); err != nil {
		t.Fatal(err)
	}
	// Identical re-POST: same sweep, no error.
	st, err := m.Start(depeerReq("dup"))
	if err != nil || st.ID != "dup" {
		t.Fatalf("idempotent re-start: %v, %v", st, err)
	}
	// Same id, different parameters: conflict.
	other := &Request{ID: "dup", Family: FamilyRootEach, From: "2023-07", Letters: []string{"L"}, IATAs: []string{"CCS"}}
	if _, err := m.Start(other); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting start: %v, want ErrConflict", err)
	}
	waitDone(t, m, "dup")
}

// TestManagerCrashResume is the tentpole contract: kill the manager
// mid-sweep, restart over the same store, and the resumed run must (a)
// never re-simulate a journaled spec and (b) finish with a leaderboard
// byte-identical to an uninterrupted control run.
func TestManagerCrashResume(t *testing.T) {
	// Control run in its own store.
	ctrl, _ := newTestManager(t, t.TempDir(), Options{RunSpec: fakeRun})
	if _, err := ctrl.Start(depeerReq("cr")); err != nil {
		t.Fatal(err)
	}
	control := waitDone(t, ctrl, "cr")

	// Interrupted run: workers=1, and the fake engine blocks hard after
	// two completions until the manager dies.
	dir := t.TempDir()
	var completed atomic.Int64
	blocked := make(chan struct{})
	var blockOnce sync.Once
	gated := func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		if completed.Load() >= 2 {
			blockOnce.Do(func() { close(blocked) })
			<-ctx.Done() // simulates being mid-simulation at crash time
			return nil, scenario.RunStats{}, ctx.Err()
		}
		d, st, err := fakeRun(ctx, sp)
		completed.Add(1)
		return d, st, err
	}
	m1, _ := newTestManager(t, dir, Options{RunSpec: gated, Workers: 1})
	if _, err := m1.Start(depeerReq("cr")); err != nil {
		t.Fatal(err)
	}
	<-blocked // two specs journaled, third in flight
	m1.Kill() // crash: the in-flight spec never reaches the journal

	// Restart against the same store. The new engine counts invocations:
	// journaled specs must not come back.
	var reruns atomic.Int64
	counting := func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		reruns.Add(1)
		return fakeRun(ctx, sp)
	}
	m2, store2 := newTestManager(t, dir, Options{RunSpec: counting, Workers: 1})
	restored, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d results, want 2", restored)
	}
	resumed := waitDone(t, m2, "cr")
	if got := int(reruns.Load()); got != 4 {
		t.Errorf("resumed run simulated %d specs, want 4 (6 total - 2 journaled)", got)
	}

	// Byte-identical leaderboards, control vs resumed.
	cb, _ := json.Marshal(control.Leaderboard)
	rb, _ := json.Marshal(resumed.Leaderboard)
	if string(cb) != string(rb) {
		t.Errorf("leaderboards differ:\ncontrol: %s\nresumed: %s", cb, rb)
	}
	if control.Key != resumed.Key {
		t.Errorf("keys differ: %q vs %q", control.Key, resumed.Key)
	}

	// A third manager over the now-done journal serves it without
	// running anything.
	m3, _ := newTestManager(t, dir, Options{RunSpec: func(context.Context, *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		t.Error("done sweep re-simulated a spec")
		return nil, scenario.RunStats{}, nil
	}})
	if _, err := m3.Resume(); err != nil {
		t.Fatal(err)
	}
	st3, ok := m3.Get("cr")
	if !ok || st3.State != StateDone || st3.Completed != 6 {
		t.Fatalf("done sweep not restored: %+v", st3)
	}
	_ = store2
}

// TestManagerDrainCheckpoints: a drained manager finishes in-flight
// specs, journals them, and a successor picks up only the remainder.
func TestManagerDrainCheckpoints(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 16)
	slow := func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
		started <- struct{}{}
		time.Sleep(20 * time.Millisecond) // in flight while Drain arrives
		return fakeRun(ctx, sp)
	}
	m1, _ := newTestManager(t, dir, Options{RunSpec: slow, Workers: 1})
	if _, err := m1.Start(depeerReq("dr")); err != nil {
		t.Fatal(err)
	}
	<-started // first spec is mid-simulation
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, _ := m1.Get("dr")
	if st.Completed == 0 {
		t.Fatal("drain checkpointed nothing")
	}
	if st.State == StateDone {
		t.Skip("machine fast enough to finish before drain; nothing to resume")
	}

	m2, _ := newTestManager(t, dir, Options{RunSpec: fakeRun, Workers: 1})
	restored, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if restored != st.Completed {
		t.Errorf("restored %d, want %d (every drained checkpoint)", restored, st.Completed)
	}
	final := waitDone(t, m2, "dr")
	if final.Completed != 6 {
		t.Errorf("final completed = %d", final.Completed)
	}
}

// TestManagerRealEngine exercises the default engine path end to end
// on the single-month world: a root replica sweep whose specs recompute
// only the chaos campaign.
func TestManagerRealEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation")
	}
	m, _ := newTestManager(t, t.TempDir(), Options{})
	req := &Request{ID: "real", Family: FamilyRootEach, From: "2023-07",
		Letters: []string{"L"}, IATAs: []string{"CCS", "MAR"}}
	if _, err := m.Start(req); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, "real")
	if final.Completed != 2 || final.Failed != 0 {
		t.Fatalf("final: %+v", final)
	}
	for _, e := range final.Leaderboard {
		// Root-only specs never touch the trace campaign: the windowed
		// engine must reuse the baseline month and recompute only chaos.
		if e.MonthsRecomputed != 1 || e.MonthsReused != 1 {
			t.Errorf("%s: recomputed=%d reused=%d, want 1/1", e.Spec, e.MonthsRecomputed, e.MonthsReused)
		}
	}
}

// TestManagerAdmitGate: every simulation attempt passes through the
// injected admission hook, and a shed attempt is retried.
func TestManagerAdmitGate(t *testing.T) {
	var admits, sheds atomic.Int64
	admit := func(ctx context.Context) (func(), error) {
		if admits.Add(1) == 1 {
			sheds.Add(1)
			return nil, errors.New("shed")
		}
		return func() {}, nil
	}
	m, _ := newTestManager(t, t.TempDir(), Options{
		RunSpec: fakeRun,
		Admit:   admit,
		Retry:   resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if _, err := m.Start(depeerReq("ad")); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, "ad")
	if final.Failed != 0 {
		t.Fatalf("shed retry failed: %+v", final)
	}
	if admits.Load() < 7 { // 6 specs + 1 retried shed
		t.Errorf("admit called %d times, want >= 7", admits.Load())
	}
	if sheds.Load() != 1 {
		t.Errorf("sheds = %d", sheds.Load())
	}
}

func TestManagerListAndGet(t *testing.T) {
	m, _ := newTestManager(t, t.TempDir(), Options{RunSpec: fakeRun})
	if _, ok := m.Get("nope"); ok {
		t.Error("Get on unknown id succeeded")
	}
	for _, id := range []string{"l-b", "l-a"} {
		if _, err := m.Start(depeerReq(id)); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, m, "l-a")
	waitDone(t, m, "l-b")
	ls := m.List()
	if len(ls) != 2 || ls[0].ID != "l-a" || ls[1].ID != "l-b" {
		ids := make([]string, len(ls))
		for i, s := range ls {
			ids[i] = s.ID
		}
		t.Errorf("List = %v, want [l-a l-b]", ids)
	}
}

func TestLeaderboardRanking(t *testing.T) {
	rs := []*Result{
		{Spec: "b", Status: StatusOK, ReachLossProbeMonths: 2, MaxRTTDeltaMs: 1},
		{Spec: "zz-fail", Status: StatusFailed, Error: "x"},
		{Spec: "a", Status: StatusOK, ReachLossProbeMonths: 2, MaxRTTDeltaMs: -5},
		{Spec: "aa-fail", Status: StatusFailed, Error: "y"},
		{Spec: "c", Status: StatusOK, ReachLossProbeMonths: 9},
	}
	got := leaderboard(rs)
	want := []string{"c", "a", "b", "aa-fail", "zz-fail"}
	for i, w := range want {
		if got[i].Spec != w || got[i].Rank != i+1 {
			t.Errorf("entry %d = %q (rank %d), want %q", i, got[i].Spec, got[i].Rank, w)
		}
	}
}

func TestSummarize(t *testing.T) {
	sp := &scenario.Spec{ID: "s", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 8048}}}
	d := &scenario.Diff{
		Trace: []scenario.TraceDelta{
			{CC: "VE", DeltaMs: -3.5},
			{CC: "VE", DeltaMs: 2},
			{CC: "BR", DeltaMs: 99}, // foreign country never dominates
		},
		Reach: []scenario.ReachDelta{
			{CC: "VE", BaselineProbes: 10, ScenarioProbes: 7},
			{CC: "VE", BaselineProbes: 5, ScenarioProbes: 9}, // gains don't offset losses
		},
		Catchment: []scenario.CatchmentDelta{{Month: "2023-07"}},
	}
	res := summarize(sp, d, scenario.RunStats{TraceMonthsRecomputed: 2, TraceMonthsReused: 3, ChaosMonthsRecomputed: 1, ChaosMonthsReused: 4})
	if res.MaxRTTDeltaMs != -3.5 {
		t.Errorf("MaxRTTDeltaMs = %v", res.MaxRTTDeltaMs)
	}
	if res.ReachLossProbeMonths != 3 {
		t.Errorf("ReachLossProbeMonths = %d", res.ReachLossProbeMonths)
	}
	if res.CatchmentShiftMonths != 1 {
		t.Errorf("CatchmentShiftMonths = %d", res.CatchmentShiftMonths)
	}
	if res.MonthsRecomputed != 3 || res.MonthsReused != 7 {
		t.Errorf("months = %d/%d", res.MonthsRecomputed, res.MonthsReused)
	}
}

func TestStatusJSONShape(t *testing.T) {
	st := &Status{ID: "s", Key: "s-abc", Family: FamilyRootEach, State: StateDone, Total: 1}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"id"`, `"key"`, `"family"`, `"state"`, `"total_specs"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("status JSON missing %s: %s", field, data)
		}
	}
}

func TestManagerKillIsReentrant(t *testing.T) {
	m, _ := newTestManager(t, t.TempDir(), Options{RunSpec: fakeRun})
	if _, err := m.Start(depeerReq("k1")); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, "k1")
	m.Kill()
	m.Kill() // idempotent; Cleanup calls it a third time
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Errorf("drain after kill: %v", err)
	}
}
