package sweep

import (
	"math"
	"sort"

	"vzlens/internal/scenario"
)

// Spec result statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed" // quarantined: compile error, panic, or deadline
)

// Result is one spec's outcome — the unit the journal checkpoints and
// the leaderboard ranks. It carries no timestamps or durations, so the
// final leaderboard of a resumed sweep is byte-identical to an
// uninterrupted run's.
type Result struct {
	Spec   string `json:"spec"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// Impact summary, derived from the scenario diff. ReachLoss counts
	// probe-months that lost all anycast reachability; MaxRTTDelta is
	// the largest Venezuelan monthly median move (signed, ms);
	// CatchmentShift counts months where VE probes' distinct root-site
	// set changed size.
	ReachLossProbeMonths int     `json:"reach_loss_probe_months"`
	MaxRTTDeltaMs        float64 `json:"max_rtt_delta_ms"`
	CatchmentShiftMonths int     `json:"catchment_shift_months"`

	// Windowed-replay accounting: campaign months re-simulated for this
	// spec vs spliced from the memoized baseline.
	MonthsRecomputed int `json:"months_recomputed"`
	MonthsReused     int `json:"months_reused"`
}

// summarize reduces a scenario diff plus its run stats to a Result.
func summarize(sp *scenario.Spec, d *scenario.Diff, st scenario.RunStats) *Result {
	res := &Result{
		Spec:             sp.ID,
		Key:              sp.Key(),
		Status:           StatusOK,
		MonthsRecomputed: st.TraceMonthsRecomputed + st.ChaosMonthsRecomputed,
		MonthsReused:     st.TraceMonthsReused + st.ChaosMonthsReused,
	}
	for _, t := range d.Trace {
		if t.CC == "VE" && math.Abs(t.DeltaMs) > math.Abs(res.MaxRTTDeltaMs) {
			res.MaxRTTDeltaMs = t.DeltaMs
		}
	}
	for _, rd := range d.Reach {
		if lost := rd.BaselineProbes - rd.ScenarioProbes; lost > 0 {
			res.ReachLossProbeMonths += lost
		}
	}
	res.CatchmentShiftMonths = len(d.Catchment)
	return res
}

// Entry is one ranked leaderboard row.
type Entry struct {
	Rank int `json:"rank"`
	Result
}

// Status is the sweep document GET /api/sweeps/{id} serves.
type Status struct {
	ID        string   `json:"id"`
	Key       string   `json:"key"`
	Family    string   `json:"family"`
	State     string   `json:"state"` // "running" | "done"
	Total     int      `json:"total_specs"`
	Completed int      `json:"completed"` // ok + failed (journaled)
	Failed    int      `json:"failed"`
	Skipped   []string `json:"skipped,omitempty"`
	// Leaderboard ranks the journaled results so far: successful specs
	// by impact (reachability loss, then RTT delta magnitude, then id),
	// quarantined failures after them by id.
	Leaderboard []Entry `json:"leaderboard,omitempty"`
}

// Sweep states.
const (
	StateRunning = "running"
	StateDone    = "done"
)

// leaderboard ranks results deterministically. Impact ordering:
// reachability loss (desc), then |max RTT delta| (desc), then spec id
// (asc) — ties broken lexically so equal-impact specs rank stably.
// Failed specs sink below every success, ordered by id, so quarantined
// work stays visible without polluting the impact ranking.
func leaderboard(results []*Result) []Entry {
	rs := make([]*Result, len(results))
	copy(rs, results)
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if (a.Status == StatusOK) != (b.Status == StatusOK) {
			return a.Status == StatusOK
		}
		if a.Status != StatusOK {
			return a.Spec < b.Spec
		}
		if a.ReachLossProbeMonths != b.ReachLossProbeMonths {
			return a.ReachLossProbeMonths > b.ReachLossProbeMonths
		}
		am, bm := math.Abs(a.MaxRTTDeltaMs), math.Abs(b.MaxRTTDeltaMs)
		if am != bm {
			return am > bm
		}
		if a.CatchmentShiftMonths != b.CatchmentShiftMonths {
			return a.CatchmentShiftMonths > b.CatchmentShiftMonths
		}
		return a.Spec < b.Spec
	})
	out := make([]Entry, len(rs))
	for i, r := range rs {
		out[i] = Entry{Rank: i + 1, Result: *r}
	}
	return out
}
