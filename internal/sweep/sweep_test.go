package sweep

import (
	"strings"
	"sync"
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

// testWorld is the shared single-month world: campaigns collapse to
// July 2023, so expansion and compilation stay cheap.
var (
	testWorldOnce sync.Once
	testWorldVal  *world.World
	testWorldErr  error
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	testWorldOnce.Do(func() {
		m := months.New(2023, time.July)
		testWorldVal, testWorldErr = world.Build(world.Config{
			TraceStart: m, TraceEnd: m, ChaosStart: m, ChaosEnd: m, Step: 1,
		})
	})
	if testWorldErr != nil {
		t.Fatal(testWorldErr)
	}
	return testWorldVal
}

func TestRequestValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		req  Request
		part string
	}{
		{"empty_id", Request{Family: FamilyRootEach}, "empty id"},
		{"bad_id", Request{ID: "Bad_ID", Family: FamilyRootEach}, "kebab-case"},
		{"missing_family", Request{ID: "s1"}, "missing family"},
		{"unknown_family", Request{ID: "s1", Family: "everything"}, "unknown family"},
		{"specs_without_family", Request{ID: "s1", Family: FamilySpecs}, "requires specs"},
		{"specs_on_template_family", Request{ID: "s1", Family: FamilyDepeerEach,
			Specs: []*scenario.Spec{{ID: "x"}}}, "only valid with"},
		{"bad_from", Request{ID: "s1", Family: FamilyRootEach, From: "soon"}, "bad from"},
		{"inverted_window", Request{ID: "s1", Family: FamilyRootEach,
			From: "2023-07", Until: "2023-01"}, "window inverted"},
		{"bad_letter", Request{ID: "s1", Family: FamilyRootEach, Letters: []string{"Z"}}, "bad root letter"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.part) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.part)
			}
		})
	}
	ok := Request{ID: "s1", Family: FamilyRootEach, Letters: []string{"L"}, IATAs: []string{"CCS"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestExpandDepeerEach(t *testing.T) {
	w := testWorld(t)
	req := &Request{ID: "d1", Family: FamilyDepeerEach, From: "2023-07"}
	specs, skipped, err := req.Expand(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	// July 2023 providers: Orange, Telecom Italia, Columbus, Gold Data,
	// V.tal, Gold Data International — sorted by ASN.
	wantIDs := []string{
		"d1-depeer-as5511", "d1-depeer-as6762", "d1-depeer-as23520",
		"d1-depeer-as28007", "d1-depeer-as52320", "d1-depeer-as262589",
	}
	if len(specs) != len(wantIDs) {
		t.Fatalf("expanded %d specs, want %d", len(specs), len(wantIDs))
	}
	for i, want := range wantIDs {
		if specs[i].ID != want {
			t.Errorf("spec[%d] = %q, want %q", i, specs[i].ID, want)
		}
	}

	explicit := &Request{ID: "d2", Family: FamilyDepeerEach, ASNs: []uint32{8048, 6306}}
	specs, _, err = explicit.Expand(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ID != "d2-depeer-as6306" || specs[1].ID != "d2-depeer-as8048" {
		t.Errorf("explicit candidates = %v", specIDs(specs))
	}
}

func TestExpandCableCutEach(t *testing.T) {
	w := testWorld(t)
	req := &Request{ID: "c1", Family: FamilyCableCutEach, From: "2023-07"}
	specs, skipped, err := req.Expand(w)
	if err != nil {
		t.Fatal(err)
	}
	ids := specIDs(specs)
	if len(specs) != 2 || ids[0] != "c1-cut-americas-ii" || ids[1] != "c1-cut-globenet" {
		t.Fatalf("cable specs = %v, want [c1-cut-americas-ii c1-cut-globenet]", ids)
	}
	// Americas-II carries three modeled transits, GlobeNet one.
	if len(specs[0].Ops) != 3 || len(specs[1].Ops) != 1 {
		t.Errorf("op counts = %d, %d, want 3, 1", len(specs[0].Ops), len(specs[1].Ops))
	}
	// The VE-landing cables without a modeled transit are reported, not
	// silently dropped: Festoon, Americas-I, Pan American, ALBA-1.
	if len(skipped) != 4 {
		t.Errorf("skipped = %v, want 4 entries", skipped)
	}
	for _, s := range skipped {
		if !strings.Contains(s, "no modeled transit") {
			t.Errorf("skip reason %q lacks explanation", s)
		}
	}
}

func TestExpandRootEach(t *testing.T) {
	w := testWorld(t)
	req := &Request{ID: "r1", Family: FamilyRootEach, From: "2023-07"}
	specs, _, err := req.Expand(w)
	if err != nil {
		t.Fatal(err)
	}
	// 13 letters x 4 Venezuelan cities.
	if len(specs) != 52 {
		t.Fatalf("expanded %d specs, want 52", len(specs))
	}
	if specs[0].ID != "r1-root-a-ccs" || specs[51].ID != "r1-root-m-sci" {
		t.Errorf("order = %q .. %q", specs[0].ID, specs[51].ID)
	}

	narrow := &Request{ID: "r2", Family: FamilyRootEach, From: "2023-07",
		Letters: []string{"L"}, IATAs: []string{"CCS", "MAR"}, Host: 8048}
	specs, _, err = narrow.Expand(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ID != "r2-root-l-ccs" || specs[1].ID != "r2-root-l-mar" {
		t.Errorf("narrow expansion = %v", specIDs(specs))
	}
}

func TestExpandSpecsFamily(t *testing.T) {
	w := testWorld(t)
	req := &Request{ID: "x1", Family: FamilySpecs, Specs: []*scenario.Spec{
		{ID: "a", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 8048, From: "2023-07"}}},
		{ID: "b", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 6306, From: "2023-07"}}},
	}}
	specs, _, err := req.Expand(w)
	if err != nil || len(specs) != 2 {
		t.Fatalf("specs family: %v, %v", specIDs(specs), err)
	}

	dup := &Request{ID: "x2", Family: FamilySpecs, Specs: []*scenario.Spec{
		{ID: "a", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 8048}}},
		{ID: "a", Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 6306}}},
	}}
	if _, _, err := dup.Expand(w); err == nil || !strings.Contains(err.Error(), "duplicate spec id") {
		t.Errorf("duplicate ids accepted: %v", err)
	}

	invalid := &Request{ID: "x3", Family: FamilySpecs, Specs: []*scenario.Spec{{ID: "nope"}}}
	if _, _, err := invalid.Expand(w); err == nil {
		t.Error("invalid spec accepted")
	}

	big := &Request{ID: "x4", Family: FamilySpecs}
	for i := 0; i <= MaxSpecs; i++ {
		big.Specs = append(big.Specs, &scenario.Spec{
			ID:  "spec-" + itoa(i),
			Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: uint32(i + 1)}},
		})
	}
	if _, _, err := big.Expand(w); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized sweep accepted: %v", err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

func TestRequestKeyTracksContent(t *testing.T) {
	a := &Request{ID: "k1", Family: FamilyRootEach, Letters: []string{"L"}}
	b := &Request{ID: "k1", Family: FamilyRootEach, Letters: []string{"F"}}
	if a.Key() == b.Key() {
		t.Errorf("same key %q for different requests", a.Key())
	}
	if !strings.HasPrefix(a.Key(), "k1-") {
		t.Errorf("key %q does not embed the id", a.Key())
	}
	a2 := &Request{ID: "k1", Family: FamilyRootEach, Letters: []string{"L"}}
	if a.Key() != a2.Key() {
		t.Errorf("key not deterministic: %q vs %q", a.Key(), a2.Key())
	}
}

func TestParseRequest(t *testing.T) {
	r, err := ParseRequest([]byte(`{"id":"p1","family":"root_each","letters":["L"],"iatas":["CCS"]}`))
	if err != nil || r.ID != "p1" {
		t.Fatalf("ParseRequest: %v, %v", r, err)
	}
	if _, err := ParseRequest([]byte(`{"id":"p1","family":"root_each","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseRequest([]byte(`{"id":"p1","family":"root_each"} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Americas-II":   "americas-ii",
		"GlobeNet":      "globenet",
		"CANTV Festoon": "cantv-festoon",
		"  A  B  ":      "a-b",
	} {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

// FuzzSweepSpec drives the sweep request decoder with arbitrary bytes:
// it must accept or reject but never panic, and anything accepted must
// re-validate, key stably, and (family expansion being pure) never
// panic during candidate enumeration either.
func FuzzSweepSpec(f *testing.F) {
	f.Add([]byte(`{"id":"s1","family":"depeer_each","from":"2019-01"}`))
	f.Add([]byte(`{"id":"s2","family":"cable_cut_each","until":"2021-06"}`))
	f.Add([]byte(`{"id":"s3","family":"root_each","letters":["L","F"],"iatas":["CCS"],"host":8048}`))
	f.Add([]byte(`{"id":"s4","family":"specs","specs":[{"id":"a","ops":[{"op":"depeer","asn":8048}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("accepted request fails re-validation: %v", err)
		}
		if k := req.Key(); k == "" || k != req.Key() {
			t.Fatalf("unstable key %q", k)
		}
	})
}

func specIDs(specs []*scenario.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}
