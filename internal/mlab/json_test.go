package mlab

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vzlens/internal/months"
)

func TestJSONRoundTrip(t *testing.T) {
	g := NewGenerator(11)
	m := months.New(2023, time.July)
	tests := g.Draw("VE", m, 501)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tests); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.CountryCount("VE") != 501 {
		t.Fatalf("count = %d", parsed.CountryCount("VE"))
	}
	direct := NewArchive()
	direct.Add(tests)
	want, _ := direct.Median("VE", m)
	got, _ := parsed.Median("VE", m)
	if want != got {
		t.Errorf("median through JSON = %v, want %v", got, want)
	}
}

func TestParseJSONSkipsJunkRows(t *testing.T) {
	lines := strings.Join([]string{
		`{"date":"2023-07-15","a":{"MeanThroughputMbps":5.5},"client":{"Geo":{"CountryCode":"VE"}}}`,
		`{"date":"2023-07-15","a":{"MeanThroughputMbps":0},"client":{"Geo":{"CountryCode":"VE"}}}`,
		`{"date":"2023-07-15","a":{"MeanThroughputMbps":3.2},"client":{"Geo":{"CountryCode":""}}}`,
		``,
	}, "\n")
	ar, err := ParseJSON(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	if ar.TestCount() != 1 {
		t.Errorf("count = %d, want 1 (zero-throughput and no-CC rows skipped)", ar.TestCount())
	}
}

func TestParseJSONErrors(t *testing.T) {
	for _, in := range []string{
		"{bad json",
		`{"date":"x","a":{"MeanThroughputMbps":5},"client":{"Geo":{"CountryCode":"VE"}}}`,
		`{"date":"20xx-07-15","a":{"MeanThroughputMbps":5},"client":{"Geo":{"CountryCode":"VE"}}}`,
	} {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ParseJSON(%q): want error", in)
		}
	}
}
