package mlab

import (
	"bytes"
	"io"
	"testing"
	"time"

	"vzlens/internal/faultio"
	"vzlens/internal/months"
)

// FuzzParseJSON feeds arbitrary bytes through the NDJSON parser: it
// must return an archive or an error without panicking, and an accepted
// archive must aggregate cleanly. The corpus is seeded with valid
// output from WriteJSON plus faultio-damaged variants (truncated,
// bit-flipped) matching the fault harness's failure shapes.
func FuzzParseJSON(f *testing.F) {
	m := months.New(2023, time.July)
	var valid bytes.Buffer
	if err := WriteJSON(&valid, []Test{
		{Month: m, Country: "VE", DownloadMbps: 2.9},
		{Month: m, Country: "BR", DownloadMbps: 48.1},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, n := range []int64{0, 1, int64(valid.Len() / 2), int64(valid.Len() - 1)} {
		cut, _ := io.ReadAll(faultio.Truncate(bytes.NewReader(valid.Bytes()), n))
		f.Add(cut)
	}
	for _, off := range []int64{0, 5, int64(valid.Len() / 3), int64(valid.Len() - 2)} {
		flipped, _ := io.ReadAll(faultio.Corrupt(bytes.NewReader(valid.Bytes()), 0x02, off))
		f.Add(flipped)
	}
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"month":"not-a-month","country":"VE"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ar, err := ParseJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted archive must aggregate without panicking.
		ar.TestCount()
		ar.CountryCount("VE")
		ar.Median("VE", m)
		ar.MedianPanel()
	})
}
