// Package mlab models the Measurement Lab NDT archive the paper
// aggregates in Section 7.1: crowdsourced download-speed tests per
// country, aggregated to month-country medians. The generator draws
// individual tests from a lognormal around each country's calibrated
// median trajectory — crowdsourced speed tests are heavy-tailed, which is
// exactly why the paper reports medians.
//
// Calibration follows Figure 11: Venezuela stagnates below 1 Mbps from
// 2010 through late 2021 and recovers to 2.93 Mbps by July 2023, when its
// peers reach 47.33 (UY), 32.44 (BR), 25.25 (CL), 18.66 (MX) and 15.48
// (AR) Mbps; the historical equivalences the paper lists (Uruguay and
// Mexico in November 2013, Chile in June 2017, Argentina in April 2018,
// Brazil in September 2019 all at Venezuela's current speed) hold by
// construction.
package mlab

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/series"
	"vzlens/internal/stats"
)

// anchor pins a country's median download speed at a month.
type anchor struct {
	m    months.Month
	mbps float64
}

func a(y int, mo time.Month, mbps float64) anchor {
	return anchor{months.New(y, mo), mbps}
}

// speedAnchors drives each country's median NDT download speed.
// Interpolation between anchors is geometric (exponential growth), the
// empirical shape of broadband build-outs.
var speedAnchors = map[string][]anchor{
	"VE": {a(2007, time.July, 0.70), a(2009, time.July, 0.85), a(2012, time.January, 0.90),
		a(2014, time.January, 0.80), a(2018, time.January, 0.72), a(2021, time.October, 0.95),
		a(2022, time.June, 1.80), a(2023, time.July, 2.93), a(2024, time.June, 3.20)},
	"UY": {a(2007, time.July, 1.40), a(2013, time.November, 2.93), a(2017, time.July, 11.0),
		a(2020, time.July, 28.0), a(2023, time.July, 47.33), a(2024, time.June, 50.0)},
	"MX": {a(2007, time.July, 1.40), a(2013, time.November, 2.93), a(2018, time.July, 7.5),
		a(2021, time.July, 13.0), a(2023, time.July, 18.66), a(2024, time.June, 20.5)},
	"CL": {a(2007, time.July, 1.20), a(2013, time.July, 1.9), a(2017, time.June, 2.93),
		a(2020, time.July, 11.0), a(2023, time.July, 25.25), a(2024, time.June, 28.0)},
	"AR": {a(2007, time.July, 1.30), a(2014, time.July, 2.0), a(2018, time.April, 2.93),
		a(2021, time.July, 8.0), a(2023, time.July, 15.48), a(2024, time.June, 17.0)},
	"BR": {a(2007, time.July, 1.20), a(2015, time.July, 2.2), a(2019, time.September, 2.93),
		a(2021, time.July, 12.0), a(2023, time.July, 32.44), a(2024, time.June, 36.0)},
	"CO": {a(2007, time.July, 1.00), a(2015, time.July, 2.4), a(2020, time.July, 6.0),
		a(2023, time.July, 12.0), a(2024, time.June, 13.5)},
	"PE": {a(2007, time.July, 0.85), a(2016, time.July, 2.5), a(2020, time.July, 5.5),
		a(2023, time.July, 10.0), a(2024, time.June, 11.5)},
	"EC": {a(2007, time.July, 0.80), a(2016, time.July, 2.3), a(2020, time.July, 5.8),
		a(2023, time.July, 9.0), a(2024, time.June, 10.0)},
	"PY": {a(2007, time.July, 0.35), a(2016, time.July, 1.6), a(2020, time.July, 4.0),
		a(2023, time.July, 8.0), a(2024, time.June, 9.0)},
	"BO": {a(2007, time.July, 0.25), a(2016, time.July, 1.0), a(2020, time.July, 2.4),
		a(2023, time.July, 4.2), a(2024, time.June, 5.0)},
	"CR": {a(2007, time.July, 1.10), a(2016, time.July, 2.8), a(2020, time.July, 7.0),
		a(2023, time.July, 13.0), a(2024, time.June, 14.5)},
	"PA": {a(2007, time.July, 1.10), a(2016, time.July, 3.2), a(2020, time.July, 8.0),
		a(2023, time.July, 14.0), a(2024, time.June, 16.0)},
	"DO": {a(2007, time.July, 0.45), a(2016, time.July, 2.0), a(2020, time.July, 5.0),
		a(2023, time.July, 9.0), a(2024, time.June, 10.0)},
	"GT": {a(2007, time.July, 0.35), a(2016, time.July, 1.7), a(2020, time.July, 4.0),
		a(2023, time.July, 7.0), a(2024, time.June, 8.0)},
	"HN": {a(2007, time.July, 0.30), a(2016, time.July, 1.3), a(2020, time.July, 3.0),
		a(2023, time.July, 5.0), a(2024, time.June, 6.0)},
	"NI": {a(2007, time.July, 0.30), a(2016, time.July, 1.2), a(2020, time.July, 2.5),
		a(2023, time.July, 4.0), a(2024, time.June, 4.5)},
	"HT": {a(2007, time.July, 0.20), a(2016, time.July, 0.7), a(2020, time.July, 1.3),
		a(2023, time.July, 2.0), a(2024, time.June, 2.3)},
	"CU": {a(2008, time.July, 0.15), a(2016, time.July, 0.5), a(2020, time.July, 1.0),
		a(2023, time.July, 1.5), a(2024, time.June, 1.8)},
	"TT": {a(2007, time.July, 1.40), a(2016, time.July, 3.5), a(2020, time.July, 9.0),
		a(2023, time.July, 15.0), a(2024, time.June, 17.0)},
	"SR": {a(2007, time.July, 0.35), a(2016, time.July, 1.5), a(2020, time.July, 3.5),
		a(2023, time.July, 6.0), a(2024, time.June, 7.0)},
	"GY": {a(2007, time.July, 0.30), a(2016, time.July, 1.2), a(2020, time.July, 3.0),
		a(2023, time.July, 5.5), a(2024, time.June, 7.0)},
	"BZ": {a(2007, time.July, 0.35), a(2016, time.July, 1.5), a(2020, time.July, 3.5),
		a(2023, time.July, 6.0), a(2024, time.June, 7.0)},
	"SV": {a(2007, time.July, 0.35), a(2016, time.July, 1.6), a(2020, time.July, 3.8),
		a(2023, time.July, 6.5), a(2024, time.June, 7.5)},
	"GF": {a(2007, time.July, 1.30), a(2016, time.July, 3.0), a(2020, time.July, 6.5),
		a(2023, time.July, 10.0), a(2024, time.June, 11.0)},
	"CW": {a(2007, time.July, 1.80), a(2016, time.July, 4.5), a(2020, time.July, 12.0),
		a(2023, time.July, 20.0), a(2024, time.June, 22.0)},
	"BQ": {a(2007, time.July, 1.60), a(2016, time.July, 4.0), a(2020, time.July, 11.0),
		a(2023, time.July, 18.0), a(2024, time.June, 20.0)},
	"SX": {a(2007, time.July, 1.60), a(2016, time.July, 4.0), a(2020, time.July, 11.0),
		a(2023, time.July, 18.0), a(2024, time.June, 20.0)},
}

// MedianSpeed returns the calibrated median download speed (Mbps) for
// country cc at month m, interpolating geometrically between anchors and
// clamping outside the anchored range. Unknown countries return 0.
func MedianSpeed(cc string, m months.Month) float64 {
	as, ok := speedAnchors[cc]
	if !ok || len(as) == 0 {
		return 0
	}
	if !m.After(as[0].m) {
		return as[0].mbps
	}
	last := as[len(as)-1]
	if !m.Before(last.m) {
		return last.mbps
	}
	for i := 0; i < len(as)-1; i++ {
		lo, hi := as[i], as[i+1]
		if m.Before(lo.m) || !m.Before(hi.m) {
			continue
		}
		frac := float64(m.Sub(lo.m)) / float64(hi.m.Sub(lo.m))
		// Geometric interpolation: exp(lerp(log lo, log hi)).
		return math.Exp(math.Log(lo.mbps)*(1-frac) + math.Log(hi.mbps)*frac)
	}
	return last.mbps
}

// Countries returns the countries with calibrated curves, sorted.
func Countries() []string {
	out := make([]string, 0, len(speedAnchors))
	for cc := range speedAnchors {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// Test is one NDT download measurement.
type Test struct {
	Month        months.Month
	Country      string
	DownloadMbps float64
}

// Generator draws synthetic NDT tests. The zero value is not usable; use
// NewGenerator with a seed for reproducibility.
type Generator struct {
	rng   *rand.Rand
	sigma float64
}

// NewGenerator returns a deterministic test generator. Sigma is the
// lognormal shape parameter; 0.8 reproduces the dispersion of
// crowdsourced NDT data.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), sigma: 0.8}
}

// Draw samples n tests for (cc, m) around the calibrated median. The
// median of the lognormal equals exp(mu), so the sample median converges
// to MedianSpeed(cc, m).
func (g *Generator) Draw(cc string, m months.Month, n int) []Test {
	med := MedianSpeed(cc, m)
	if med <= 0 || n <= 0 {
		return nil
	}
	mu := math.Log(med)
	out := make([]Test, n)
	for i := range out {
		speed := math.Exp(mu + g.rng.NormFloat64()*g.sigma)
		out[i] = Test{Month: m, Country: cc, DownloadMbps: speed}
	}
	return out
}

// MonthlyVolume approximates each country's crowdsourced test volume
// (scaled down from M-Lab's millions). Bigger Internet populations test
// more.
func MonthlyVolume(cc string) int {
	switch cc {
	case "BR":
		return 1200
	case "MX", "AR", "CO", "CL":
		return 500
	case "VE", "PE", "EC", "UY":
		return 250
	default:
		return 120
	}
}

// Archive aggregates tests to the month-country granularity the paper
// reports.
type Archive struct {
	samples map[string]map[months.Month][]float64
	total   int
}

// NewArchive returns an empty Archive.
func NewArchive() *Archive {
	return &Archive{samples: map[string]map[months.Month][]float64{}}
}

// Add records tests into the archive.
func (ar *Archive) Add(tests []Test) {
	for _, t := range tests {
		byMonth, ok := ar.samples[t.Country]
		if !ok {
			byMonth = map[months.Month][]float64{}
			ar.samples[t.Country] = byMonth
		}
		byMonth[t.Month] = append(byMonth[t.Month], t.DownloadMbps)
		ar.total++
	}
}

// TestCount returns the number of archived tests.
func (ar *Archive) TestCount() int { return ar.total }

// CountryCount returns the number of archived tests for country cc.
func (ar *Archive) CountryCount(cc string) int {
	n := 0
	for _, xs := range ar.samples[cc] {
		n += len(xs)
	}
	return n
}

// Median returns the median download speed for (cc, m); ok is false with
// no samples.
func (ar *Archive) Median(cc string, m months.Month) (float64, bool) {
	xs := ar.samples[cc][m]
	med, err := stats.Median(xs)
	return med, err == nil
}

// Mean returns the mean download speed for (cc, m) — the non-robust
// estimator used by the ablation benchmarks.
func (ar *Archive) Mean(cc string, m months.Month) (float64, bool) {
	xs := ar.samples[cc][m]
	mean, err := stats.Mean(xs)
	return mean, err == nil
}

// MedianPanel returns the per-country monthly median panel behind
// Figure 11.
func (ar *Archive) MedianPanel() *series.Panel {
	p := series.NewPanel()
	for cc, byMonth := range ar.samples {
		dst := p.Country(cc)
		for m := range byMonth {
			if med, ok := ar.Median(cc, m); ok {
				dst.Set(m, med)
			}
		}
	}
	return p
}
