package mlab

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vzlens/internal/months"
)

func mon(y int, m time.Month) months.Month { return months.New(y, m) }

func TestFigure11Calibration(t *testing.T) {
	july23 := mon(2023, time.July)
	want := map[string]float64{
		"UY": 47.33, "BR": 32.44, "CL": 25.25, "MX": 18.66, "AR": 15.48, "VE": 2.93,
	}
	for cc, w := range want {
		if got := MedianSpeed(cc, july23); math.Abs(got-w) > 0.01 {
			t.Errorf("%s July 2023 = %.2f, want %.2f", cc, got, w)
		}
	}
}

func TestVenezuelaStagnation(t *testing.T) {
	// Below 1 Mbps for over a decade (2010 through late 2021).
	for y := 2010; y <= 2021; y++ {
		if v := MedianSpeed("VE", mon(y, time.June)); v >= 1.0 {
			t.Errorf("VE %d = %.2f Mbps, want < 1", y, v)
		}
	}
	// Recovery since end of 2021: 1 → ~3 Mbps.
	v22, v23 := MedianSpeed("VE", mon(2022, time.June)), MedianSpeed("VE", mon(2023, time.June))
	if v22 < 1.0 || v23 < 2.5 {
		t.Errorf("VE recovery = %.2f (2022), %.2f (2023)", v22, v23)
	}
}

func TestHistoricalEquivalences(t *testing.T) {
	// Paper: VE's July-2023 speed equals UY and MX in Nov 2013, CL in Jun
	// 2017, AR in Apr 2018, BR in Sep 2019.
	target := MedianSpeed("VE", mon(2023, time.July))
	checks := []struct {
		cc string
		m  months.Month
	}{
		{"UY", mon(2013, time.November)},
		{"MX", mon(2013, time.November)},
		{"CL", mon(2017, time.June)},
		{"AR", mon(2018, time.April)},
		{"BR", mon(2019, time.September)},
	}
	for _, c := range checks {
		if got := MedianSpeed(c.cc, c.m); math.Abs(got-target) > 0.05 {
			t.Errorf("%s at %v = %.2f, want %.2f (VE July 2023)", c.cc, c.m, got, target)
		}
	}
}

func TestNormalizedDeclineMatchesFigure11(t *testing.T) {
	// VE was near the regional average before 2010 (89%) and fell to
	// ~17% of it by 2023.
	mean := func(m months.Month) float64 {
		var sum float64
		var n int
		for _, cc := range Countries() {
			if v := MedianSpeed(cc, m); v > 0 {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	early := MedianSpeed("VE", mon(2009, time.July)) / mean(mon(2009, time.July))
	late := MedianSpeed("VE", mon(2023, time.July)) / mean(mon(2023, time.July))
	if early < 0.7 || early > 1.2 {
		t.Errorf("VE/regional 2009 = %.2f, want ~0.89", early)
	}
	if late < 0.12 || late > 0.25 {
		t.Errorf("VE/regional 2023 = %.2f, want ~0.17", late)
	}
}

func TestMedianSpeedClamping(t *testing.T) {
	before := MedianSpeed("VE", mon(2000, time.January))
	first := MedianSpeed("VE", mon(2007, time.July))
	if before != first {
		t.Errorf("pre-range speed %v != first anchor %v", before, first)
	}
	after := MedianSpeed("VE", mon(2030, time.January))
	last := MedianSpeed("VE", mon(2024, time.June))
	if after != last {
		t.Errorf("post-range speed %v != last anchor %v", after, last)
	}
	if MedianSpeed("ZZ", mon(2020, time.January)) != 0 {
		t.Error("unknown country should be 0")
	}
}

func TestGeneratorMedianConverges(t *testing.T) {
	g := NewGenerator(42)
	m := mon(2023, time.July)
	tests := g.Draw("VE", m, 20001)
	ar := NewArchive()
	ar.Add(tests)
	med, ok := ar.Median("VE", m)
	if !ok {
		t.Fatal("no median")
	}
	want := MedianSpeed("VE", m)
	if math.Abs(med-want)/want > 0.05 {
		t.Errorf("sample median = %.2f, want ~%.2f", med, want)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(7).Draw("BR", mon(2020, time.March), 10)
	b := NewGenerator(7).Draw("BR", mon(2020, time.March), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic for equal seeds")
		}
	}
}

func TestGeneratorEdgeCases(t *testing.T) {
	g := NewGenerator(1)
	if got := g.Draw("ZZ", mon(2020, time.January), 10); got != nil {
		t.Error("unknown country should draw nothing")
	}
	if got := g.Draw("VE", mon(2020, time.January), 0); got != nil {
		t.Error("zero count should draw nothing")
	}
}

func TestArchiveHeavyTailMeanAboveMedian(t *testing.T) {
	g := NewGenerator(3)
	m := mon(2023, time.July)
	ar := NewArchive()
	ar.Add(g.Draw("BR", m, 5001))
	med, _ := ar.Median("BR", m)
	mean, _ := ar.Mean("BR", m)
	if mean <= med {
		t.Errorf("lognormal mean %.2f should exceed median %.2f", mean, med)
	}
}

func TestArchiveCountsAndPanel(t *testing.T) {
	g := NewGenerator(5)
	ar := NewArchive()
	m := mon(2023, time.July)
	ar.Add(g.Draw("VE", m, 100))
	ar.Add(g.Draw("BR", m, 200))
	if ar.TestCount() != 300 {
		t.Errorf("TestCount = %d", ar.TestCount())
	}
	if ar.CountryCount("VE") != 100 {
		t.Errorf("CountryCount = %d", ar.CountryCount("VE"))
	}
	p := ar.MedianPanel()
	if len(p.Countries()) != 2 {
		t.Errorf("panel countries = %v", p.Countries())
	}
	if _, ok := ar.Median("CL", m); ok {
		t.Error("no-sample country should have no median")
	}
}

func TestMonthlyVolume(t *testing.T) {
	if MonthlyVolume("BR") <= MonthlyVolume("VE") {
		t.Error("Brazil should test more than Venezuela")
	}
	if MonthlyVolume("HT") <= 0 {
		t.Error("every country has some volume")
	}
}

// Property: median speeds are positive and monotone non-decreasing for
// countries without a crisis dip (Uruguay).
func TestQuickUruguayMonotone(t *testing.T) {
	f := func(x, y uint8) bool {
		m1 := mon(2007, time.July).Add(int(x))
		m2 := m1.Add(int(y))
		a, b := MedianSpeed("UY", m1), MedianSpeed("UY", m2)
		return a > 0 && a <= b+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
