package mlab

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"vzlens/internal/months"
)

// This file implements an NDT result-row interchange format modeled on
// M-Lab's unified views (measurement-lab.ndt.unified_downloads): one JSON
// object per test with the date, the client's country, and the download
// throughput — the three columns the paper's month-country aggregation
// consumes.

// wireRow mirrors one unified-view row.
type wireRow struct {
	Date   string     `json:"date"` // YYYY-MM-DD (test day)
	A      wireA      `json:"a"`
	Client wireClient `json:"client"`
}

type wireA struct {
	MeanThroughputMbps float64 `json:"MeanThroughputMbps"`
}

type wireClient struct {
	Geo wireGeo `json:"Geo"`
}

type wireGeo struct {
	CountryCode string `json:"CountryCode"`
}

// WriteJSON encodes tests as unified-view JSON lines.
func WriteJSON(w io.Writer, tests []Test) error {
	enc := json.NewEncoder(w)
	for _, t := range tests {
		row := wireRow{
			Date:   fmt.Sprintf("%s-15", t.Month), // mid-month representative day
			A:      wireA{MeanThroughputMbps: t.DownloadMbps},
			Client: wireClient{Geo: wireGeo{CountryCode: t.Country}},
		}
		if err := enc.Encode(row); err != nil {
			return fmt.Errorf("mlab: encode row: %w", err)
		}
	}
	return nil
}

// ParseJSON reads unified-view JSON lines into an Archive, aggregating
// at month-country granularity. Rows without a country code or with a
// non-positive throughput are skipped, as the paper's aggregation does.
func ParseJSON(r io.Reader) (*Archive, error) {
	ar := NewArchive()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var row wireRow
		if err := json.Unmarshal(raw, &row); err != nil {
			return nil, fmt.Errorf("mlab: line %d: %w", lineNo, err)
		}
		if row.Client.Geo.CountryCode == "" || row.A.MeanThroughputMbps <= 0 {
			continue
		}
		if len(row.Date) < 7 {
			return nil, fmt.Errorf("mlab: line %d: bad date %q", lineNo, row.Date)
		}
		m, err := months.Parse(row.Date[:7])
		if err != nil {
			return nil, fmt.Errorf("mlab: line %d: %w", lineNo, err)
		}
		ar.Add([]Test{{
			Month:        m,
			Country:      row.Client.Geo.CountryCode,
			DownloadMbps: row.A.MeanThroughputMbps,
		}})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mlab: read: %w", err)
	}
	return ar, nil
}
