// Package stats provides the small set of robust estimators the paper's
// analyses rely on: medians and percentiles over heavy-tailed measurement
// distributions, plus simple aggregates.
//
// The paper uses medians almost exclusively (median download speed, median
// RTT of per-probe minimums) because crowdsourced measurement data is
// heavy-tailed; means are provided for the regional-average panels and for
// ablation benchmarks.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators given no samples.
var ErrEmpty = errors.New("stats: empty sample")

// Median returns the median of xs without modifying it.
// It returns ErrEmpty for an empty slice.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return percentileSorted(s, p), nil
}

// PercentileSorted is Percentile for an already ascending-sorted slice;
// it performs no allocation.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return percentileSorted(sorted, p), nil
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, or ErrEmpty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Min returns the minimum of xs, or ErrEmpty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs, or ErrEmpty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// CDF returns the empirical CDF evaluation points of xs as parallel
// (value, cumulative fraction) slices, sorted ascending.
func CDF(xs []float64) (values, fractions []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	values = make([]float64, len(xs))
	copy(values, xs)
	sort.Float64s(values)
	fractions = make([]float64, len(values))
	n := float64(len(values))
	for i := range values {
		fractions[i] = float64(i+1) / n
	}
	return values, fractions
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
