package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedianOdd(t *testing.T) {
	m, err := Median([]float64{3, 1, 2})
	if err != nil || !almost(m, 2) {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestMedianEven(t *testing.T) {
	m, err := Median([]float64{4, 1, 3, 2})
	if err != nil || !almost(m, 2.5) {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestMedianSingle(t *testing.T) {
	m, err := Median([]float64{7.5})
	if err != nil || !almost(m, 7.5) {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Median(nil); err != ErrEmpty {
		t.Error("Median(nil): want ErrEmpty")
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Error("Mean(nil): want ErrEmpty")
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil): want ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil): want ErrEmpty")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil): want ErrEmpty")
	}
	if _, err := PercentileSorted(nil, 50); err != ErrEmpty {
		t.Error("PercentileSorted(nil): want ErrEmpty")
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if p, _ := Percentile(xs, 0); !almost(p, 10) {
		t.Errorf("p0 = %v", p)
	}
	if p, _ := Percentile(xs, 100); !almost(p, 40) {
		t.Errorf("p100 = %v", p)
	}
	// out-of-range p values clamp
	if p, _ := Percentile(xs, -5); !almost(p, 10) {
		t.Errorf("p-5 = %v", p)
	}
	if p, _ := Percentile(xs, 120); !almost(p, 40) {
		t.Errorf("p120 = %v", p)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if p, _ := Percentile(xs, 25); !almost(p, 2.5) {
		t.Errorf("p25 = %v, want 2.5", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanMinMaxSum(t *testing.T) {
	xs := []float64{2, 4, 6}
	if m, _ := Mean(xs); !almost(m, 4) {
		t.Errorf("Mean = %v", m)
	}
	if m, _ := Min(xs); !almost(m, 2) {
		t.Errorf("Min = %v", m)
	}
	if m, _ := Max(xs); !almost(m, 6) {
		t.Errorf("Max = %v", m)
	}
	if s := Sum(xs); !almost(s, 12) {
		t.Errorf("Sum = %v", s)
	}
	if s := Sum(nil); s != 0 {
		t.Errorf("Sum(nil) = %v", s)
	}
}

func TestCDF(t *testing.T) {
	v, f := CDF([]float64{3, 1, 2})
	if len(v) != 3 || !sort.Float64sAreSorted(v) {
		t.Fatalf("values = %v", v)
	}
	if !almost(f[2], 1) {
		t.Errorf("last fraction = %v, want 1", f[2])
	}
	if v2, f2 := CDF(nil); v2 != nil || f2 != nil {
		t.Error("CDF(nil) should be nil,nil")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
}

// Property: median lies between min and max.
func TestQuickMedianBounded(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n)%50 + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		med, _ := Median(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return med >= lo-1e-9 && med <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64, n uint8, a, b uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n)%40 + 2
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, _ := Percentile(xs, pa)
		vb, _ := Percentile(xs, pb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
