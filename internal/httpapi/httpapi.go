// Package httpapi serves the reproduction's results over HTTP: one JSON
// or CSV document per experiment, plus per-country summaries — the shape
// an open-source release of the paper's pipeline would expose to
// dashboards.
//
// The handler is hardened for unattended serving: campaign simulations
// cache through an error-aware lazy cell (a failure is retried on the
// next request, never cached), every request runs under panic recovery
// and an optional per-request timeout, and /healthz (liveness) is split
// from /readyz (readiness plus the per-axis degradation report and the
// admission-gate snapshot).
//
// Under load the handler sheds rather than collapses: admission
// control bounds concurrency with a deadline-aware priority queue
// (probes bypass it), adaptive shedding and token-bucket backstops
// answer 503/429 with Retry-After, concurrent requests for one
// experiment coalesce into a single computation, and an optional
// crash-safe result store persists computed tables and campaigns so a
// restart warms from disk. See DESIGN.md §10.
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/cluster"
	"vzlens/internal/core"
	"vzlens/internal/dnsplane"
	"vzlens/internal/facts"
	"vzlens/internal/geo"
	"vzlens/internal/ipv6"
	"vzlens/internal/months"
	"vzlens/internal/obs"
	"vzlens/internal/overload"
	"vzlens/internal/query"
	"vzlens/internal/resilience"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
	"vzlens/internal/sweep"
	"vzlens/internal/world"
)

// Options tunes the hardened handler. The zero value serves with panic
// recovery, no per-request timeout, no admission gate, and the world's
// own simulators.
type Options struct {
	// TraceCampaign and ChaosCampaign override the campaign
	// simulators; tests inject failures here, tools can inject
	// precomputed campaigns. Nil uses the world's simulation.
	TraceCampaign func() (*atlas.TraceCampaign, error)
	ChaosCampaign func() (*atlas.ChaosCampaign, error)
	// RequestTimeout bounds every request; requests over it receive
	// 503. Zero disables the timeout (campaign simulation on a cold
	// cache can take tens of seconds, so don't set this too low).
	RequestTimeout time.Duration

	// MaxInFlight enables admission control: at most this many
	// non-probe requests execute concurrently, the rest wait in a
	// bounded priority queue and are shed with 503 + Retry-After when
	// it overflows or the wait exceeds QueueTimeout. Health and
	// readiness probes are never queued or shed. Zero disables the
	// gate.
	MaxInFlight int
	// MaxQueue bounds the admission wait queue (default 4×MaxInFlight).
	MaxQueue int
	// QueueTimeout bounds one request's wait for an execution slot
	// (default 10s).
	QueueTimeout time.Duration
	// ShedLatency is the adaptive load-shedding threshold: once the
	// smoothed queue wait exceeds it, low-priority requests
	// (experiment computations) are shed on arrival (default
	// QueueTimeout/2).
	ShedLatency time.Duration
	// RateLimits adds static token-bucket backstops per endpoint
	// class ("experiment", "api"); classes absent from the map are
	// unlimited. Exceeding a bucket returns 429 + Retry-After.
	RateLimits map[string]overload.Rate

	// FactsDir mounts the ad-hoc query layer: campaign probe-month
	// samples persist as a month-partitioned columnar fact lake under
	// this directory, and GET /api/query serves country × metric ×
	// month-window aggregations over it with strict partition pruning.
	// If the directory holds no generation for this world's scope, the
	// lake builds on Warm (queries 503 with Retry-After meanwhile).
	// Empty disables the layer. See DESIGN.md §17.
	FactsDir string

	// Store persists computed experiment tables and campaign results
	// across restarts: on a cache miss the handler consults the store
	// before simulating, and every fresh computation is written back,
	// so Warm() after a restart is near-instant. Corrupt or torn
	// entries are quarantined and recomputed, never served. Nil
	// disables persistence.
	Store *resultstore.Store

	// Metrics is the registry the handler (and the gate, store, and
	// campaign engine) register on; it is served at /metrics in
	// Prometheus text format and /metrics.json as JSON. Nil creates a
	// private registry, so /metrics always answers. Share one registry
	// with obs.DebugMux to expose the same metrics on the debug
	// listener.
	Metrics *obs.Registry

	// Tracer enables request tracing: every request gets a root span
	// and an X-Trace-Id response header, and the trace ID propagates
	// through experiment coalescing into the campaign engine's
	// per-month spans. Nil disables tracing (zero overhead).
	Tracer *obs.Tracer

	// DNSPlane, when non-nil, mounts the DNS data plane's control
	// surface: GET /api/dns (status), PUT /api/dns/scenario/{id}
	// (route answers through a registered scenario), DELETE
	// /api/dns/scenario (back to baseline). The resolver itself serves
	// queries on its own UDP socket (vzserve's -dns-addr).
	DNSPlane *dnsplane.Resolver

	// Scenarios preloads counterfactual scenario specs (vzserve's
	// -scenario-file) so their diffs are requestable immediately. A
	// spec that fails to compile against the world is a construction
	// error surfaced by NewWithOptions via panic — a canned scenario
	// file that doesn't apply is an operator mistake worth failing
	// loudly at startup, not at first request.
	Scenarios []*scenario.Spec

	// SweepWorkers bounds concurrent spec simulations inside the batch
	// sweep engine (default 2). Sweeps are only enabled when Store is
	// set: the journal through the store is what makes them crash-safe.
	SweepWorkers int
	// SweepSpecTimeout is the per-spec watchdog deadline inside a sweep
	// (default 5m; negative disables).
	SweepSpecTimeout time.Duration

	// ClusterRole selects this node's role in the sharded serving
	// tier: "" or "standalone" (default) serve alone, "coordinator"
	// dispatches scenario and sweep simulations across ClusterPeers,
	// "worker" additionally mounts the /cluster/* simulation
	// endpoints. See DESIGN.md §15.
	ClusterRole string
	// ClusterPeers are worker base URLs ("http://host:port"): the
	// ring membership for a coordinator, the warm-up peers for a
	// worker.
	ClusterPeers []string
	// ClusterSelf is a worker's own advertised base URL, excluded
	// from its peer pulls.
	ClusterSelf string
	// ClusterReplicas is how many ring owners hold each result frame,
	// executor included (default 2).
	ClusterReplicas int
	// ClusterHedgeDelay is the coordinator's latency-hedge threshold:
	// how long a dispatch may stay silent before the next ring owner
	// is raced (default 500ms).
	ClusterHedgeDelay time.Duration
	// ClusterProbeInterval is the coordinator's worker health-probe
	// period (default 1s).
	ClusterProbeInterval time.Duration
}

// Handler serves the API over a built world. Campaign-backed
// experiments simulate lazily on first request; a failed simulation is
// reported to that request (503, Retry-After) and retried on the next —
// it is never cached.
type Handler struct {
	w    *world.World
	mux  *http.ServeMux
	root http.Handler
	opts Options

	gate    *overload.Gate
	limits  *overload.Limiter
	flights overload.Group[string, *core.Table]

	reg  *obs.Registry
	met  handlerMetrics
	exps map[string]core.Experiment

	trace resilience.LazyResult[*atlas.TraceCampaign]
	chaos resilience.LazyResult[*atlas.ChaosCampaign]

	engine      *scenario.Engine
	scenMu      sync.Mutex
	scenarios   map[string]*scenario.Spec
	scenFlights overload.Group[string, []byte]

	sweeps *sweep.Manager // nil without a result store

	lake         *facts.Lake   // nil without Options.FactsDir
	queryEng     *query.Engine // nil without Options.FactsDir
	qmet         queryMetrics
	lakeMu       sync.Mutex  // serializes lake builds
	lakeBuilding atomic.Bool // a background build is in flight

	cluster       *cluster.Coordinator // non-nil for role "coordinator"
	clusterWorker *cluster.Worker      // non-nil for role "worker"
}

// New returns a Handler over w with default Options.
func New(w *world.World) *Handler { return NewWithOptions(w, Options{}) }

// NewWithOptions returns a Handler over w.
func NewWithOptions(w *world.World, opts Options) *Handler {
	h := &Handler{w: w, mux: http.NewServeMux(), opts: opts}
	h.reg = opts.Metrics
	if h.reg == nil {
		h.reg = obs.NewRegistry()
	}
	h.met = newHandlerMetrics(h.reg)
	w.Instrument(h.reg)
	if opts.Store != nil {
		opts.Store.Instrument(h.reg)
	}
	if opts.MaxInFlight > 0 {
		h.gate = overload.NewGate(overload.GateOptions{
			MaxInFlight:  opts.MaxInFlight,
			MaxQueue:     opts.MaxQueue,
			QueueTimeout: opts.QueueTimeout,
			ShedLatency:  opts.ShedLatency,
			ObserveWait:  h.met.queueWait.ObserveDuration,
		})
		instrumentGate(h.reg, h.gate)
	}
	if len(opts.RateLimits) > 0 {
		h.limits = overload.NewLimiter(opts.RateLimits)
	}
	h.exps = make(map[string]core.Experiment)
	for _, e := range core.Experiments() {
		h.exps[e.ID] = e
	}
	// The scenario engine reuses the handler's memoized baseline
	// campaigns, so a scenario run pays for one scenario simulation,
	// not two full campaigns.
	h.engine = scenario.NewEngine(scenario.Options{
		World:         w,
		BaselineTrace: h.traceCampaign,
		BaselineChaos: h.chaosCampaign,
	})
	h.engine.Instrument(h.reg)
	h.scenarios = make(map[string]*scenario.Spec)
	for _, spec := range opts.Scenarios {
		if _, err := h.registerScenario(spec); err != nil {
			panic(fmt.Sprintf("httpapi: preloaded scenario: %v", err))
		}
	}
	// The cluster half (if any) must exist before the sweep manager:
	// a coordinator's manager simulates specs by dispatching across
	// the ring instead of running the local engine.
	h.initCluster()
	// The sweep engine journals through the result store — that journal
	// is its crash-safety — so it only exists when a store does. It
	// shares the handler's scenario engine (and thus the memoized
	// baseline campaigns) and admits each background simulation through
	// the gate at low priority, batch work behind live clients.
	if opts.Store != nil {
		var admit func(ctx context.Context) (func(), error)
		if h.gate != nil {
			admit = h.sweepAdmit
		}
		var runSpec func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error)
		if h.cluster != nil {
			runSpec = h.clusterRunSpec
		}
		h.sweeps = sweep.NewManager(sweep.Options{
			World:       w,
			Engine:      h.engine,
			Store:       opts.Store,
			Workers:     opts.SweepWorkers,
			SpecTimeout: opts.SweepSpecTimeout,
			Admit:       admit,
			RunSpec:     runSpec,
		})
		h.sweeps.Instrument(h.reg)
		if restored, err := h.sweeps.Resume(); err != nil {
			log.Printf("httpapi: resume sweeps: %v", err)
		} else if restored > 0 {
			log.Printf("httpapi: resumed sweep journals, %d spec results restored without re-simulation", restored)
		}
	}
	h.mux.HandleFunc("GET /healthz", h.health)
	h.mux.HandleFunc("GET /readyz", h.ready)
	h.mux.Handle("GET /metrics", h.reg.Handler())
	h.mux.Handle("GET /metrics.json", h.reg.JSONHandler())
	h.mux.HandleFunc("GET /api/experiments", h.listExperiments)
	h.mux.HandleFunc("GET /api/experiments/{id}", h.experiment)
	h.mux.HandleFunc("GET /api/countries/{cc}", h.country)
	h.mux.HandleFunc("GET /api/signatures", h.signatures)
	h.mux.HandleFunc("GET /api/scenarios", h.listScenarios)
	h.mux.HandleFunc("POST /api/scenarios", h.postScenario)
	h.mux.HandleFunc("GET /api/scenarios/{id}/diff", h.scenarioDiff)
	h.mux.HandleFunc("GET /api/sweeps", h.listSweeps)
	h.mux.HandleFunc("POST /api/sweeps", h.postSweep)
	h.mux.HandleFunc("GET /api/sweeps/{id}", h.getSweep)
	if opts.FactsDir != "" {
		h.initFacts()
	}
	if opts.DNSPlane != nil {
		opts.DNSPlane.Instrument(h.reg)
		h.mux.HandleFunc("GET /api/dns", h.dnsStatus)
		h.mux.HandleFunc("PUT /api/dns/scenario/{id}", h.dnsSetScenario)
		h.mux.HandleFunc("DELETE /api/dns/scenario", h.dnsClearScenario)
	}
	if h.clusterWorker != nil {
		h.clusterWorker.Register(h.mux)
	}
	var root http.Handler = h.mux
	if opts.RequestTimeout > 0 {
		root = http.TimeoutHandler(root, opts.RequestTimeout,
			`{"error": "request timed out"}`)
	}
	root = h.observabilityMiddleware(h.admissionMiddleware(root))
	h.root = recoverMiddleware(backpressureHeaderMiddleware(root))
	return h
}

// Metrics returns the handler's registry, so callers (vzserve's debug
// listener) can expose the same metrics elsewhere or register more.
func (h *Handler) Metrics() *obs.Registry { return h.reg }

// Gate returns the admission gate (nil when MaxInFlight is unset), so
// the DNS server can shed against the same concurrency budget as the
// HTTP side instead of maintaining a second, independent limit.
func (h *Handler) Gate() *overload.Gate { return h.gate }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.root.ServeHTTP(w, r)
}

// recoverMiddleware converts handler panics into 500s instead of
// tearing down the connection (and, under some servers, the process).
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // deliberate connection abort
				}
				log.Printf("httpapi: panic serving %s: %v", r.URL.Path, rec)
				writeJSON(w, http.StatusInternalServerError,
					map[string]string{"error": "internal error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// simulate runs one campaign simulation, converting panics into errors
// so a poisoned input cannot take down the server and the failure is
// retried on the next request.
func simulate[T any](fn func() (T, error)) (val T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("campaign simulation panicked: %v", rec)
		}
	}()
	return fn()
}

func (h *Handler) traceCampaign(ctx context.Context) (*atlas.TraceCampaign, error) {
	return h.trace.Get(func() (*atlas.TraceCampaign, error) {
		if tc, ok := h.storedTrace(); ok {
			return tc, nil
		}
		if tc, ok := h.lakeTrace(); ok {
			return tc, nil
		}
		tc, err := simulate(func() (*atlas.TraceCampaign, error) {
			if h.opts.TraceCampaign != nil {
				return h.opts.TraceCampaign()
			}
			return h.w.TraceCampaignCtx(ctx), nil
		})
		if err == nil {
			h.persistTrace(tc)
		}
		return tc, err
	})
}

// Warm primes both lazy campaign caches and blocks until they are warm
// (or failed; a failure is not cached and the next request retries).
// The two campaigns run concurrently, and each fans its monthly
// snapshots out over the world's Workers pool, so /readyz reports warm
// campaigns proportionally sooner on multicore. Call it from a goroutine
// at startup to pre-warm without delaying the listener.
func (h *Handler) Warm() {
	ctx := context.Background()
	if h.lake != nil {
		// The lake builds first, deliberately not concurrently with the
		// campaign caches: one simulation fills the lake, and the
		// campaign warms below then reconstruct from its partitions
		// instead of simulating a second time. A lake reloaded from
		// disk skips simulation entirely.
		if err := h.ensureLake(ctx, false); err != nil {
			log.Printf("httpapi: warm fact lake: %v", err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = h.traceCampaign(ctx) }()
	go func() { defer wg.Done(); _, _ = h.chaosCampaign(ctx) }()
	wg.Wait()
}

func (h *Handler) chaosCampaign(ctx context.Context) (*atlas.ChaosCampaign, error) {
	return h.chaos.Get(func() (*atlas.ChaosCampaign, error) {
		if cc, ok := h.storedChaos(); ok {
			return cc, nil
		}
		if cc, ok := h.lakeChaos(); ok {
			return cc, nil
		}
		cc, err := simulate(func() (*atlas.ChaosCampaign, error) {
			if h.opts.ChaosCampaign != nil {
				return h.opts.ChaosCampaign()
			}
			return h.w.ChaosCampaignCtx(ctx), nil
		})
		if err == nil {
			h.persistChaos(cc)
		}
		return cc, err
	})
}

// runExperiment renders one registry experiment, simulating (or reusing)
// whichever campaign it declares. Campaign-backed experiments (fig6,
// fig12, fig16, fig20) can fail transiently and surface errors instead
// of panicking or caching failure. The context carries the requesting
// trace, so a cold campaign's spans attach to the request that paid for
// the simulation.
func (h *Handler) runExperiment(ctx context.Context, e core.Experiment) (*core.Table, error) {
	var tc *atlas.TraceCampaign
	var cc *atlas.ChaosCampaign
	var err error
	switch e.Campaign {
	case "trace":
		if tc, err = h.traceCampaign(ctx); err != nil {
			return nil, err
		}
	case "chaos":
		if cc, err = h.chaosCampaign(ctx); err != nil {
			return nil, err
		}
	}
	return e.Run(h.w, tc, cc), nil
}

// health is the liveness probe: the process is up.
func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readiness is the /readyz document.
type readiness struct {
	// Status is "ok", or "degraded" when any ingestion axis fell back
	// to its synthetic substitute.
	Status string `json:"status"`
	// Axes is the per-axis ingestion report (absent for a fully
	// synthetic world built without sources).
	Axes []world.AxisStatus `json:"axes,omitempty"`
	// Campaigns reports which lazy campaign caches are warm.
	Campaigns map[string]bool `json:"campaigns"`
	// Overload is the admission-gate snapshot (absent when the gate
	// is disabled).
	Overload *overload.GateStats `json:"overload,omitempty"`
	// Cluster reports the sharded tier as this node sees it — ring
	// membership with per-worker health and drain state from a
	// coordinator, replication lag from a worker. Absent for a
	// standalone server. /healthz stays strictly local: a node's
	// liveness must never depend on its peers.
	Cluster *cluster.Snapshot `json:"cluster,omitempty"`
}

// ready is the readiness probe: the world is built and serving, with
// the degradation report attached. A degraded world still serves (the
// synthetic substitutes answer), so the status stays 200; operators
// alert on the "degraded" status string.
func (h *Handler) ready(w http.ResponseWriter, _ *http.Request) {
	doc := readiness{
		Status: "ok",
		Axes:   h.w.AxisStatuses(),
		Campaigns: map[string]bool{
			"trace": h.trace.Ready(),
			"chaos": h.chaos.Ready(),
		},
	}
	if h.lake != nil {
		doc.Campaigns["facts"] = h.lake.Ready()
	}
	if h.gate != nil {
		stats := h.gate.Stats()
		doc.Overload = &stats
	}
	switch {
	case h.cluster != nil:
		doc.Cluster = h.cluster.Snapshot()
	case h.clusterWorker != nil:
		doc.Cluster = h.clusterWorker.Snapshot()
	}
	if h.w.Degraded() {
		doc.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, doc)
}

func (h *Handler) listExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": core.ExperimentIDs()})
}

// tableJSON is the JSON rendering of a core.Table.
type tableJSON struct {
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

func (h *Handler) experiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wantCSV := strings.HasSuffix(id, ".csv")
	id = strings.TrimSuffix(id, ".csv")
	exp, ok := h.exps[id]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown experiment %q", id)})
		return
	}
	// Coalesce concurrent requests for the same experiment into one
	// computation, consulting the result store before computing and
	// persisting fresh results. Failures are not cached at any layer.
	ctx, span := obs.StartSpan(r.Context(), "experiment")
	span.SetAttr("id", id)
	table, err, shared := h.flights.Do(id, func() (*core.Table, error) {
		if t, ok := h.storedTable(id); ok {
			return t, nil
		}
		// A coordinator reads through the ring first: the owning
		// worker has likely computed (and cached) the table already.
		if h.cluster != nil {
			if t, ok := h.clusterTable(ctx, id); ok {
				h.persistTable(id, t)
				return t, nil
			}
		}
		t, err := h.runExperiment(ctx, exp)
		if err == nil {
			h.persistTable(id, t)
		}
		return t, err
	})
	if shared {
		h.met.followers.Inc()
	} else {
		h.met.leaders.Inc()
	}
	span.SetAttr("coalesced", shared)
	span.End()
	if err != nil {
		// Transient: the failed simulation was not cached, so the
		// client should simply retry.
		log.Printf("httpapi: experiment %s: %v", id, err)
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": fmt.Sprintf("experiment %s temporarily unavailable: %v", id, err)})
		return
	}
	if wantCSV {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, table.CSV())
		return
	}
	writeJSON(w, http.StatusOK, tableJSON{Caption: table.Caption, Header: table.Header, Rows: table.Rows})
}

// countrySummary is the per-country JSON document.
type countrySummary struct {
	Code            string  `json:"code"`
	Name            string  `json:"name"`
	Cables2000      int     `json:"cables_2000"`
	Cables2024      int     `json:"cables_2024"`
	Facilities2024  int     `json:"facilities_2024"`
	IPv6Pct2023     float64 `json:"ipv6_pct_mid2023"`
	MedianMbps2023  float64 `json:"median_mbps_july2023"`
	AtlasProbes2024 int     `json:"atlas_probes_2024"`
	InternetUsers   int64   `json:"internet_users"`
}

func (h *Handler) country(w http.ResponseWriter, r *http.Request) {
	cc := strings.ToUpper(r.PathValue("cc"))
	if !validCountryCode(cc) {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("%q is not a two-letter country code", cc)})
		return
	}
	country, ok := geo.LookupCountry(cc)
	if !ok || !country.LACNIC {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("%q is not a LACNIC country", cc)})
		return
	}
	jan24 := months.New(2024, time.January)
	writeJSON(w, http.StatusOK, countrySummary{
		Code:            country.Code,
		Name:            country.Name,
		Cables2000:      h.w.Cables.CountryCount(cc, 2000),
		Cables2024:      h.w.Cables.CountryCount(cc, 2024),
		Facilities2024:  h.w.PeeringDBSnapshot(jan24).FacilityCount()[cc],
		IPv6Pct2023:     ipv6.Adoption(cc, months.New(2023, time.June)),
		MedianMbps2023:  h.w.MedianSpeed(cc, months.New(2023, time.July)),
		AtlasProbes2024: h.w.Fleet.CountByCountry(jan24)[cc],
		InternetUsers:   h.w.Pop.CountryUsers(cc),
	})
}

// signatureJSON is one detected crisis signal.
type signatureJSON struct {
	Dataset   string  `json:"dataset"`
	Kind      string  `json:"kind"`
	Start     string  `json:"start"`
	End       string  `json:"end"`
	Magnitude float64 `json:"magnitude"`
}

func (h *Handler) signatures(w http.ResponseWriter, _ *http.Request) {
	result := core.CrisisSignatures(h.w, nil)
	out := make([]signatureJSON, 0, len(result.Signatures))
	for _, s := range result.Signatures {
		out = append(out, signatureJSON{
			Dataset:   s.Dataset,
			Kind:      s.Event.Kind.String(),
			Start:     s.Event.Start.String(),
			End:       s.Event.End.String(),
			Magnitude: s.Event.Magnitude,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"signatures": out})
}

// validCountryCode reports whether cc looks like an ISO 3166-1 alpha-2
// code (after upcasing). Anything else is a client error (400), as
// opposed to a well-formed code we don't serve (404).
func validCountryCode(cc string) bool {
	if len(cc) != 2 {
		return false
	}
	for i := 0; i < len(cc); i++ {
		if cc[i] < 'A' || cc[i] > 'Z' {
			return false
		}
	}
	return true
}

// writeJSON sets the Content-Type before committing the status (headers
// written after WriteHeader are silently dropped), then encodes v. The
// encode error is logged explicitly: the status line is already on the
// wire, so a failure here can only be observed server-side.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("httpapi: encode %T response: %v", v, err)
	}
}
