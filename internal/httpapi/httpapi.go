// Package httpapi serves the reproduction's results over HTTP: one JSON
// or CSV document per experiment, plus per-country summaries — the shape
// an open-source release of the paper's pipeline would expose to
// dashboards.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/core"
	"vzlens/internal/geo"
	"vzlens/internal/ipv6"
	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/world"
)

// Handler serves the API over a built world. Campaign-backed experiments
// simulate lazily, once, on first request.
type Handler struct {
	w   *world.World
	mux *http.ServeMux

	traceOnce sync.Once
	trace     *atlas.TraceCampaign
	chaosOnce sync.Once
	chaos     *atlas.ChaosCampaign
}

// New returns a Handler over w.
func New(w *world.World) *Handler {
	h := &Handler{w: w, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /healthz", h.health)
	h.mux.HandleFunc("GET /api/experiments", h.listExperiments)
	h.mux.HandleFunc("GET /api/experiments/{id}", h.experiment)
	h.mux.HandleFunc("GET /api/countries/{cc}", h.country)
	h.mux.HandleFunc("GET /api/signatures", h.signatures)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) traceCampaign() *atlas.TraceCampaign {
	h.traceOnce.Do(func() { h.trace = h.w.TraceCampaign() })
	return h.trace
}

func (h *Handler) chaosCampaign() *atlas.ChaosCampaign {
	h.chaosOnce.Do(func() { h.chaos = h.w.ChaosCampaign() })
	return h.chaos
}

// experiments maps experiment IDs to their table producers.
func (h *Handler) experiments() map[string]func() *core.Table {
	return map[string]func() *core.Table{
		"fig1": func() *core.Table { return core.Fig1Economy().Table() },
		"fig2": func() *core.Table { return core.Fig2AddressSpace(h.w).Table() },
		"fig3": func() *core.Table { return core.Fig3Facilities(h.w).Table() },
		"fig4": func() *core.Table { return core.Fig4Cables(h.w).Table() },
		"fig5": func() *core.Table { return core.Fig5IPv6().Table() },
		"fig6": func() *core.Table { return core.Fig6RootDNS(h.chaosCampaign()).Table() },
		"fig7": func() *core.Table {
			return core.Fig7Offnets(h.w, []string{"Google", "Akamai", "Facebook", "Netflix"}).Table()
		},
		"fig8":  func() *core.Table { return core.Fig8CANTV(h.w).Table() },
		"fig9":  func() *core.Table { return core.Fig9TransitHeatmap(h.w).Table() },
		"fig10": func() *core.Table { return core.Fig10IXPHeatmap(h.w).Table() },
		"fig11": func() *core.Table {
			return core.Fig11Bandwidth(h.w.Config.Seed, months.New(2007, time.July), months.New(2024, time.January), h.w.Config.Step).Table()
		},
		"fig12":  func() *core.Table { return core.Fig12GPDNS(h.traceCampaign()).Table() },
		"table1": func() *core.Table { return core.Table1Eyeballs(h.w).Table() },
		"fig13":  func() *core.Table { return core.Fig13GDPRank().Table() },
		"fig14":  func() *core.Table { return core.Fig14PrefixVisibility(h.w).Table() },
		"fig15":  func() *core.Table { return core.Fig15FacilityMembers(h.w).Table() },
		"fig16":  func() *core.Table { return core.Fig16RootOrigins(h.chaosCampaign()).Table() },
		"fig17":  func() *core.Table { return core.Fig17AtlasFootprint(h.w).Table() },
		"fig18": func() *core.Table {
			return core.Fig7Offnets(h.w, []string{"Microsoft", "Cloudflare", "Amazon", "Limelight", "CDNetworks", "Alibaba"}).Table()
		},
		"fig19": func() *core.Table { return core.Fig19ThirdParty().Table() },
		"fig20": func() *core.Table {
			return core.Fig20ProbeGeo(h.w.Fleet, h.traceCampaign(), months.New(2023, time.December)).Table()
		},
		"fig21": func() *core.Table { return core.Fig21USIXPs(h.w).Table() },
	}
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Handler) listExperiments(w http.ResponseWriter, _ *http.Request) {
	exps := h.experiments()
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]any{"experiments": ids})
}

// tableJSON is the JSON rendering of a core.Table.
type tableJSON struct {
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

func (h *Handler) experiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wantCSV := strings.HasSuffix(id, ".csv")
	id = strings.TrimSuffix(id, ".csv")
	run, ok := h.experiments()[id]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown experiment %q", id)})
		return
	}
	table := run()
	if wantCSV {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, table.CSV())
		return
	}
	writeJSON(w, http.StatusOK, tableJSON{Caption: table.Caption, Header: table.Header, Rows: table.Rows})
}

// countrySummary is the per-country JSON document.
type countrySummary struct {
	Code            string  `json:"code"`
	Name            string  `json:"name"`
	Cables2000      int     `json:"cables_2000"`
	Cables2024      int     `json:"cables_2024"`
	Facilities2024  int     `json:"facilities_2024"`
	IPv6Pct2023     float64 `json:"ipv6_pct_mid2023"`
	MedianMbps2023  float64 `json:"median_mbps_july2023"`
	AtlasProbes2024 int     `json:"atlas_probes_2024"`
	InternetUsers   int64   `json:"internet_users"`
}

func (h *Handler) country(w http.ResponseWriter, r *http.Request) {
	cc := strings.ToUpper(r.PathValue("cc"))
	country, ok := geo.LookupCountry(cc)
	if !ok || !country.LACNIC {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("%q is not a LACNIC country", cc)})
		return
	}
	jan24 := months.New(2024, time.January)
	writeJSON(w, http.StatusOK, countrySummary{
		Code:            country.Code,
		Name:            country.Name,
		Cables2000:      h.w.Cables.CountryCount(cc, 2000),
		Cables2024:      h.w.Cables.CountryCount(cc, 2024),
		Facilities2024:  h.w.PeeringDBSnapshot(jan24).FacilityCount()[cc],
		IPv6Pct2023:     ipv6.Adoption(cc, months.New(2023, time.June)),
		MedianMbps2023:  mlab.MedianSpeed(cc, months.New(2023, time.July)),
		AtlasProbes2024: h.w.Fleet.CountByCountry(jan24)[cc],
		InternetUsers:   h.w.Pop.CountryUsers(cc),
	})
}

// signatureJSON is one detected crisis signal.
type signatureJSON struct {
	Dataset   string  `json:"dataset"`
	Kind      string  `json:"kind"`
	Start     string  `json:"start"`
	End       string  `json:"end"`
	Magnitude float64 `json:"magnitude"`
}

func (h *Handler) signatures(w http.ResponseWriter, _ *http.Request) {
	result := core.CrisisSignatures(h.w, nil)
	out := make([]signatureJSON, 0, len(result.Signatures))
	for _, s := range result.Signatures {
		out = append(out, signatureJSON{
			Dataset:   s.Dataset,
			Kind:      s.Event.Kind.String(),
			Start:     s.Event.Start.String(),
			End:       s.Event.End.String(),
			Magnitude: s.Event.Magnitude,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"signatures": out})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are committed; nothing useful to do on error
}
