package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vzlens/internal/world"
)

func mustBuild(cfg world.Config) *world.World {
	w, err := world.Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

var testHandler = New(mustBuild(world.Config{Step: 6}))

func get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	testHandler.ServeHTTP(rec, req)
	return rec
}

func TestHealth(t *testing.T) {
	rec := get(t, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestListExperiments(t *testing.T) {
	rec := get(t, "/api/experiments")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Experiments) != 22 {
		t.Errorf("experiments = %d, want 22", len(out.Experiments))
	}
	seen := map[string]bool{}
	for _, id := range out.Experiments {
		seen[id] = true
	}
	for _, want := range []string{"fig1", "fig12", "table1", "fig21"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestExperimentJSON(t *testing.T) {
	rec := get(t, "/api/experiments/table1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var table struct {
		Caption string     `json:"caption"`
		Header  []string   `json:"header"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &table); err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 11 { // 10 providers + summary row
		t.Errorf("rows = %d", len(table.Rows))
	}
	if table.Rows[0][0] != "8048" {
		t.Errorf("first row = %v", table.Rows[0])
	}
}

func TestExperimentCSV(t *testing.T) {
	rec := get(t, "/api/experiments/fig4.csv")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/csv") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "ALBA-1") {
		t.Errorf("CSV missing ALBA row: %s", body)
	}
}

func TestExperimentNotFound(t *testing.T) {
	rec := get(t, "/api/experiments/fig99")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unknown experiment") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestCountrySummary(t *testing.T) {
	rec := get(t, "/api/countries/ve")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Code            string  `json:"code"`
		Cables2024      int     `json:"cables_2024"`
		Facilities2024  int     `json:"facilities_2024"`
		MedianMbps2023  float64 `json:"median_mbps_july2023"`
		AtlasProbes2024 int     `json:"atlas_probes_2024"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != "VE" || out.Cables2024 != 6 || out.Facilities2024 != 4 {
		t.Errorf("summary = %+v", out)
	}
	if out.MedianMbps2023 < 2.5 || out.MedianMbps2023 > 3.3 {
		t.Errorf("mbps = %v", out.MedianMbps2023)
	}
	if out.AtlasProbes2024 != 30 {
		t.Errorf("probes = %v", out.AtlasProbes2024)
	}
}

func TestCountryNotFound(t *testing.T) {
	for _, cc := range []string{"US", "ZZ"} {
		rec := get(t, "/api/countries/"+cc)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", cc, rec.Code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/api/experiments", nil)
	rec := httptest.NewRecorder()
	testHandler.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestSignaturesEndpoint(t *testing.T) {
	rec := get(t, "/api/signatures")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Signatures []struct {
			Dataset string `json:"dataset"`
			Kind    string `json:"kind"`
		} `json:"signatures"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Signatures) < 4 {
		t.Errorf("signatures = %d, want >= 4", len(out.Signatures))
	}
	kinds := map[string]bool{}
	for _, s := range out.Signatures {
		kinds[s.Kind] = true
	}
	for _, want := range []string{"stagnation", "contraction", "recovery"} {
		if !kinds[want] {
			t.Errorf("missing %s signature", want)
		}
	}
}
