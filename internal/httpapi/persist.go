package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"

	"vzlens/internal/atlas"
	"vzlens/internal/core"
	"vzlens/internal/resultstore"
)

// This file is the bridge between the handler's in-memory caches and
// the crash-safe result store: campaign results persist in the Atlas
// JSON-lines interchange format, experiment tables as the same JSON
// document the API serves. Every read path treats the store as a
// cache, never an authority — a missing, corrupt, or mismatched entry
// silently falls through to recomputation (the store quarantines
// corrupt entries itself).

// storeKey scopes an entry to the world configuration that produced
// it, so a store directory reused across differently-configured
// servers never serves stale results. Workers is deliberately
// excluded: campaign output is bit-identical at any worker count.
func (h *Handler) storeKey(kind, id string) string {
	return kind + "-" + id + "-" + h.configScope()
}

// configScope is the world-configuration fingerprint shared by every
// store key. The cluster tier reuses it verbatim so that a
// coordinator and its workers — built from the same flags — agree on
// frame keys, and differently-configured nodes can never exchange
// frames. The fact lake's manifest records the same scope, so the
// format lives on world.Config where both layers reach it.
func (h *Handler) configScope() string {
	return h.w.Config.Scope()
}

// storedTable loads a previously computed experiment table.
func (h *Handler) storedTable(id string) (*core.Table, bool) {
	if h.opts.Store == nil {
		return nil, false
	}
	payload, err := h.opts.Store.Get(h.storeKey("table", id))
	if err != nil {
		logStoreMiss("table "+id, err)
		return nil, false
	}
	var doc tableJSON
	if err := json.Unmarshal(payload, &doc); err != nil {
		log.Printf("httpapi: store entry for table %s undecodable: %v", id, err)
		return nil, false
	}
	return &core.Table{Caption: doc.Caption, Header: doc.Header, Rows: doc.Rows}, true
}

// persistTable writes a freshly computed table back to the store.
// Persistence failures are logged, not surfaced: the request already
// has its result.
func (h *Handler) persistTable(id string, t *core.Table) {
	if h.opts.Store == nil {
		return
	}
	payload, err := json.Marshal(tableJSON{Caption: t.Caption, Header: t.Header, Rows: t.Rows})
	if err != nil {
		log.Printf("httpapi: encode table %s for store: %v", id, err)
		return
	}
	if err := h.opts.Store.Put(h.storeKey("table", id), payload); err != nil {
		log.Printf("httpapi: persist table %s: %v", id, err)
	}
}

// storedTrace loads the traceroute campaign from the store.
func (h *Handler) storedTrace() (*atlas.TraceCampaign, bool) {
	if h.opts.Store == nil {
		return nil, false
	}
	payload, err := h.opts.Store.Get(h.storeKey("campaign", "trace"))
	if err != nil {
		logStoreMiss("trace campaign", err)
		return nil, false
	}
	_, trace, err := atlas.ParseResultsJSON(bytes.NewReader(payload))
	if err != nil || trace.Len() == 0 {
		log.Printf("httpapi: store entry for trace campaign undecodable: %v", err)
		return nil, false
	}
	return trace, true
}

// persistTrace writes the simulated traceroute campaign to the store.
func (h *Handler) persistTrace(tc *atlas.TraceCampaign) {
	if h.opts.Store == nil || tc == nil || tc.Len() == 0 {
		return
	}
	var buf bytes.Buffer
	if err := atlas.WriteTraceJSON(&buf, tc.Samples()); err != nil {
		log.Printf("httpapi: encode trace campaign for store: %v", err)
		return
	}
	if err := h.opts.Store.Put(h.storeKey("campaign", "trace"), buf.Bytes()); err != nil {
		log.Printf("httpapi: persist trace campaign: %v", err)
	}
}

// storedChaos loads the CHAOS campaign from the store.
func (h *Handler) storedChaos() (*atlas.ChaosCampaign, bool) {
	if h.opts.Store == nil {
		return nil, false
	}
	payload, err := h.opts.Store.Get(h.storeKey("campaign", "chaos"))
	if err != nil {
		logStoreMiss("chaos campaign", err)
		return nil, false
	}
	chaos, _, err := atlas.ParseResultsJSON(bytes.NewReader(payload))
	if err != nil || chaos.Len() == 0 {
		log.Printf("httpapi: store entry for chaos campaign undecodable: %v", err)
		return nil, false
	}
	return chaos, true
}

// persistChaos writes the simulated CHAOS campaign to the store.
func (h *Handler) persistChaos(cc *atlas.ChaosCampaign) {
	if h.opts.Store == nil || cc == nil || cc.Len() == 0 {
		return
	}
	var buf bytes.Buffer
	if err := atlas.WriteChaosJSON(&buf, cc.Results()); err != nil {
		log.Printf("httpapi: encode chaos campaign for store: %v", err)
		return
	}
	if err := h.opts.Store.Put(h.storeKey("campaign", "chaos"), buf.Bytes()); err != nil {
		log.Printf("httpapi: persist chaos campaign: %v", err)
	}
}

// logStoreMiss logs store read failures that matter. A plain miss is
// the normal cold path and stays quiet; corruption is loud because an
// entry was quarantined.
func logStoreMiss(what string, err error) {
	if errors.Is(err, resultstore.ErrNotFound) {
		return
	}
	if errors.Is(err, resultstore.ErrCorrupt) {
		log.Printf("httpapi: store entry for %s corrupt, quarantined and recomputing: %v", what, err)
		return
	}
	log.Printf("httpapi: store read for %s: %v", what, err)
}
