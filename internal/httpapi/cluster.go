package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"

	"vzlens/internal/cluster"
	"vzlens/internal/core"
	"vzlens/internal/scenario"
)

// This file wires the handler into the sharded serving tier
// (internal/cluster). Roles are declarative: a "worker" mounts the
// /cluster/* simulation endpoints next to its normal API, a
// "coordinator" dispatches scenario and sweep simulations across the
// worker ring and proxies experiment reads to content owners, and
// "standalone" (the default) is exactly the single-process server the
// rest of this package describes. Every cluster path degrades to the
// local one: a coordinator whose entire fleet is down simulates
// locally, so correctness never depends on the ring.

// initCluster constructs this node's cluster half, if any. Called
// from NewWithOptions after the engine exists and before the sweep
// manager (which captures the coordinator's RunSpec).
func (h *Handler) initCluster() {
	switch role := h.opts.ClusterRole; role {
	case "", "standalone":
	case "worker":
		if h.opts.Store == nil {
			panic("httpapi: cluster worker role requires a result store")
		}
		w := cluster.NewWorker(cluster.WorkerOptions{
			Self:        h.opts.ClusterSelf,
			Peers:       h.opts.ClusterPeers,
			Store:       h.opts.Store,
			Scope:       h.configScope(),
			RunSpec:     h.localRunSpec,
			DiffPayload: h.localDiffPayload,
		})
		w.Instrument(h.reg)
		w.Start()
		h.clusterWorker = w
	case "coordinator":
		if len(h.opts.ClusterPeers) == 0 {
			panic("httpapi: cluster coordinator role requires at least one worker in ClusterPeers")
		}
		c := cluster.NewCoordinator(cluster.CoordinatorOptions{
			Workers:       h.opts.ClusterPeers,
			Replicas:      h.opts.ClusterReplicas,
			Scope:         h.configScope(),
			Store:         h.opts.Store,
			HedgeDelay:    h.opts.ClusterHedgeDelay,
			ProbeInterval: h.opts.ClusterProbeInterval,
		})
		c.Instrument(h.reg)
		c.Start()
		h.cluster = c
	default:
		panic(fmt.Sprintf("httpapi: unknown cluster role %q (want standalone, coordinator, or worker)", role))
	}
}

// Close releases the handler's cluster resources — the coordinator's
// prober and assignment journal, the worker's replication queue. Call
// it after the HTTP server has stopped and sweeps have drained; a
// non-clustered handler closes trivially.
func (h *Handler) Close() {
	if h.cluster != nil {
		h.cluster.Close()
	}
	if h.clusterWorker != nil {
		h.clusterWorker.Close()
	}
}

// localRunSpec simulates one spec on this process's engine — the
// standalone sweep path, the worker's compute path, and the
// coordinator's fallback.
func (h *Handler) localRunSpec(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
	return h.engine.RunWith(ctx, sp, scenario.RunConfig{SkipTables: true})
}

// clusterRunSpec is the coordinator's sweep RunSpec: dispatch across
// the ring, falling back to local simulation only when no worker is
// available at all. Other dispatch failures surface to the sweep
// manager's retry policy, which re-enters here — by which time the
// prober has usually reclassified the fleet.
func (h *Handler) clusterRunSpec(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
	d, st, err := h.cluster.RunSpec(ctx, sp)
	if err == nil {
		return d, st, nil
	}
	if errors.Is(err, cluster.ErrNoWorkers) {
		log.Printf("httpapi: cluster has no available workers, simulating %s locally", sp.ID)
		return h.localRunSpec(ctx, sp)
	}
	return nil, scenario.RunStats{}, err
}

// clusterTable proxies one experiment read to the worker that owns its
// content key. A false return (worker error, malformed reply) falls
// back to local computation.
func (h *Handler) clusterTable(ctx context.Context, id string) (*core.Table, bool) {
	data, err := h.cluster.ProxyGET(ctx, h.storeKey("table", id), "/api/experiments/"+id)
	if err != nil {
		log.Printf("httpapi: cluster experiment %s: %v (computing locally)", id, err)
		return nil, false
	}
	var doc tableJSON
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.Header) == 0 {
		log.Printf("httpapi: cluster experiment %s: malformed worker reply (computing locally)", id)
		return nil, false
	}
	return &core.Table{Caption: doc.Caption, Header: doc.Header, Rows: doc.Rows}, true
}
