package httpapi

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ServeGraceful serves srv on ln until one of the given signals arrives
// (SIGINT/SIGTERM when none are given), then stops accepting connections
// and drains in-flight requests for up to drain before forcing the
// remainder closed. It returns nil after a clean drain, the serve error
// if the listener fails first, and a drain error when the deadline
// expires with requests still in flight.
func ServeGraceful(srv *http.Server, ln net.Listener, drain time.Duration, signals ...os.Signal) error {
	if len(signals) == 0 {
		signals = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, signals...)
	defer signal.Stop(sigc)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil // Shutdown was called elsewhere
		}
		return err
	case <-sigc:
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("httpapi: drain incomplete after %v: %w", drain, err)
	}
	<-errc // Serve has returned ErrServerClosed
	return nil
}

// ListenAndServeGraceful is ServeGraceful over a fresh TCP listener on
// srv.Addr (":http" when empty).
func ListenAndServeGraceful(srv *http.Server, drain time.Duration, signals ...os.Signal) error {
	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeGraceful(srv, ln, drain, signals...)
}
