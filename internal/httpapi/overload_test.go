package httpapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/months"
	"vzlens/internal/overload"
	"vzlens/internal/resultstore"
)

// syntheticTrace is a minimal campaign that makes fig12/fig20 cheap to
// serve in tests without a full simulation.
func syntheticTrace() *atlas.TraceCampaign {
	tc := atlas.NewTraceCampaign()
	for i := 0; i < 4; i++ {
		tc.Add(atlas.TraceSample{
			Month:   months.New(2023, time.December),
			ProbeID: 1000 + i,
			ProbeCC: "VE",
			RTTms:   40 + float64(i),
		})
	}
	return tc
}

func do(t *testing.T, h http.Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestCountryBadCodeIs400(t *testing.T) {
	for _, cc := range []string{"usa", "1x", "v", "v%21"} {
		rec := do(t, testHandler, http.MethodGet, "/api/countries/"+cc)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("cc %q: status = %d, want 400", cc, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("cc %q: content type = %q", cc, ct)
		}
	}
	// Well-formed but unserved codes remain 404.
	if rec := do(t, testHandler, http.MethodGet, "/api/countries/ZZ"); rec.Code != http.StatusNotFound {
		t.Errorf("ZZ: status = %d, want 404", rec.Code)
	}
}

func TestWrongMethodIs405(t *testing.T) {
	for _, path := range []string{"/healthz", "/readyz", "/api/experiments", "/api/experiments/fig1", "/api/countries/VE", "/api/signatures"} {
		for _, method := range []string{http.MethodPost, http.MethodDelete, http.MethodPut} {
			rec := do(t, testHandler, method, path)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status = %d, want 405", method, path, rec.Code)
			}
		}
	}
}

func TestUnknownExperimentIs404(t *testing.T) {
	rec := do(t, testHandler, http.MethodGet, "/api/experiments/fig999")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unknown experiment") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

// TestCampaignFailure503HasRetryAfter pins the backpressure contract on
// the simulation-failure path.
func TestCampaignFailure503HasRetryAfter(t *testing.T) {
	h := NewWithOptions(testHandler.w, Options{
		TraceCampaign: func() (*atlas.TraceCampaign, error) {
			return nil, errors.New("collector unreachable")
		},
	})
	rec := do(t, h, http.MethodGet, "/api/experiments/fig12")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
}

// TestTimeout503HasRetryAfter drives http.TimeoutHandler's built-in 503
// page through the backpressure header guard.
func TestTimeout503HasRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := NewWithOptions(testHandler.w, Options{
		RequestTimeout: 30 * time.Millisecond,
		TraceCampaign: func() (*atlas.TraceCampaign, error) {
			<-release
			return syntheticTrace(), nil
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/experiments/fig12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("timeout 503 missing Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("timeout 503 content type = %q", ct)
	}
}

// TestGateShedsAndProtectsProbes saturates a MaxInFlight=1 handler and
// checks: overflow requests are shed with 503 + Retry-After, health and
// readiness probes never queue, and queued requests coalesce into one
// simulation.
func TestGateShedsAndProtectsProbes(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	h := NewWithOptions(testHandler.w, Options{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 5 * time.Second,
		TraceCampaign: func() (*atlas.TraceCampaign, error) {
			calls.Add(1)
			close(started)
			<-release
			return syntheticTrace(), nil
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = get("/api/experiments/fig12").StatusCode
		}(i)
	}
	<-started // the slot holder is inside the simulation

	// One more request fits the queue; wait until it is parked there,
	// then the next overflows and is shed immediately.
	waitFor(t, func() bool {
		return h.gate.Stats().InFlight == 1 && h.gate.Stats().Queued == 1
	})
	shed := get("/api/experiments/fig12")
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow status = %d, want 503", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// Probes bypass the saturated gate.
	for _, path := range []string{"/healthz", "/readyz"} {
		if resp := get(path); resp.StatusCode != http.StatusOK {
			t.Errorf("%s under saturation = %d, want 200", path, resp.StatusCode)
		}
	}

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d = %d, want 200", i, code)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("simulations = %d, want 1 (queued request must coalesce)", calls.Load())
	}
}

func TestRateLimit429HasRetryAfter(t *testing.T) {
	h := NewWithOptions(testHandler.w, Options{
		RateLimits: map[string]overload.Rate{"api": {PerSecond: 0.001, Burst: 1}},
	})
	if rec := do(t, h, http.MethodGet, "/api/experiments"); rec.Code != http.StatusOK {
		t.Fatalf("first request = %d", rec.Code)
	}
	rec := do(t, h, http.MethodGet, "/api/experiments")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "rate_limited") {
		t.Errorf("body = %s", rec.Body.String())
	}
	// The health probe class is never rate limited.
	for i := 0; i < 5; i++ {
		if rec := do(t, h, http.MethodGet, "/healthz"); rec.Code != http.StatusOK {
			t.Fatalf("healthz %d = %d", i, rec.Code)
		}
	}
}

// TestStoreWarmsAcrossHandlers simulates a restart: a second handler
// sharing the first one's store serves campaign-backed experiments
// without re-simulating, and the tables are byte-identical.
func TestStoreWarmsAcrossHandlers(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls1, calls2 atomic.Int64
	opts := func(calls *atomic.Int64) Options {
		return Options{
			Store: store,
			TraceCampaign: func() (*atlas.TraceCampaign, error) {
				calls.Add(1)
				return syntheticTrace(), nil
			},
		}
	}
	h1 := NewWithOptions(testHandler.w, opts(&calls1))
	before := do(t, h1, http.MethodGet, "/api/experiments/fig12")
	if before.Code != http.StatusOK {
		t.Fatalf("fig12 = %d", before.Code)
	}
	if calls1.Load() != 1 {
		t.Fatalf("first handler simulations = %d", calls1.Load())
	}

	// "Restart": fresh handler, same store.
	h2 := NewWithOptions(testHandler.w, opts(&calls2))
	after := do(t, h2, http.MethodGet, "/api/experiments/fig12")
	if after.Code != http.StatusOK {
		t.Fatalf("fig12 after restart = %d", after.Code)
	}
	if calls2.Load() != 0 {
		t.Errorf("restarted handler re-simulated %d times, want 0", calls2.Load())
	}
	if before.Body.String() != after.Body.String() {
		t.Error("table not bit-identical across restart")
	}
}

// waitFor polls cond until true or the deadline trips the test.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
