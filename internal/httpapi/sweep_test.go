package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/resultstore"
	"vzlens/internal/sweep"
	"vzlens/internal/world"
)

// sweepTestConfig collapses every campaign to one month so a sweep's
// specs each simulate in milliseconds.
func sweepTestConfig() world.Config {
	m := months.New(2023, time.July)
	return world.Config{
		TraceStart: m, TraceEnd: m, ChaosStart: m, ChaosEnd: m, Step: 1,
	}
}

func newSweepHandler(t *testing.T, dir string) *Handler {
	t.Helper()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithOptions(mustBuild(sweepTestConfig()), Options{Store: store})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		h.DrainSweeps(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return h
}

// waitSweepDone polls GET /api/sweeps/{id} until the sweep reports
// state "done", returning the final status document.
func waitSweepDone(t *testing.T, h *Handler, id string) *sweep.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := getFrom(t, h, "/api/sweeps/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET sweep %s: %d %s", id, rec.Code, rec.Body.String())
		}
		var st sweep.Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == sweep.StateDone {
			return &st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached done", id)
	return nil
}

func TestSweepLifecycle(t *testing.T) {
	h := newSweepHandler(t, t.TempDir())

	const body = `{"id":"s1","family":"root_each","letters":["L"],"iatas":["CCS","MAR"]}`
	rec := post(t, h, "/api/sweeps", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST sweep: %d %s", rec.Code, rec.Body.String())
	}
	st := waitSweepDone(t, h, "s1")
	if st.Total != 2 || st.Completed != 2 || st.Failed != 0 {
		t.Errorf("status = %+v", st)
	}
	if len(st.Leaderboard) != 2 || st.Leaderboard[0].Rank != 1 {
		t.Errorf("leaderboard = %+v", st.Leaderboard)
	}

	// Re-POSTing the identical request is idempotent: 200, same key.
	rec = post(t, h, "/api/sweeps", body)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), st.Key) {
		t.Errorf("idempotent re-POST: %d %s", rec.Code, rec.Body.String())
	}
	// Same id, different parameters: conflict.
	rec = post(t, h, "/api/sweeps", `{"id":"s1","family":"root_each","letters":["F"],"iatas":["CCS"]}`)
	if rec.Code != http.StatusConflict {
		t.Errorf("conflicting re-POST: %d %s", rec.Code, rec.Body.String())
	}

	rec = getFrom(t, h, "/api/sweeps")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"s1"`) {
		t.Errorf("list: %d %s", rec.Code, rec.Body.String())
	}
	rec = getFrom(t, h, "/api/sweeps/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown sweep: %d", rec.Code)
	}

	// The sweep metrics are visible on the handler's registry.
	rec = getFrom(t, h, "/metrics.json")
	for _, name := range []string{"vz_sweep_started_total", "vz_sweep_specs_completed_total"} {
		if !strings.Contains(rec.Body.String(), name) {
			t.Errorf("metrics.json missing %s", name)
		}
	}
}

func TestSweepBadRequestAndNoStore(t *testing.T) {
	h := newSweepHandler(t, t.TempDir())
	if rec := post(t, h, "/api/sweeps", `{"id":"s1"`); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated JSON: %d", rec.Code)
	}
	if rec := post(t, h, "/api/sweeps", `{"id":"s1","family":"nope"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown family: %d", rec.Code)
	}

	// Without a result store there is no journal, so sweeps are off.
	bare := New(mustBuild(sweepTestConfig()))
	if rec := post(t, bare, "/api/sweeps", `{"id":"s1","family":"root_each"}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("store-less POST: %d %s", rec.Code, rec.Body.String())
	}
	if rec := getFrom(t, bare, "/api/sweeps"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("store-less list: %d", rec.Code)
	}
}

// TestSweepRestartResume finishes a sweep, then builds a fresh handler
// over the same store directory: the new process serves the finished
// sweep from its journal, with the leaderboard intact and the restored
// results counted on the vz_sweep_specs_restored_total metric.
func TestSweepRestartResume(t *testing.T) {
	dir := t.TempDir()
	h1 := newSweepHandler(t, dir)
	rec := post(t, h1, "/api/sweeps", `{"id":"r1","family":"root_each","letters":["L","F"],"iatas":["CCS"]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST sweep: %d %s", rec.Code, rec.Body.String())
	}
	before := waitSweepDone(t, h1, "r1")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h1.DrainSweeps(ctx); err != nil {
		t.Fatal(err)
	}

	h2 := newSweepHandler(t, dir)
	after := waitSweepDone(t, h2, "r1")
	b1, _ := json.Marshal(before.Leaderboard)
	b2, _ := json.Marshal(after.Leaderboard)
	if string(b1) != string(b2) {
		t.Errorf("leaderboard changed across restart:\n%s\n%s", b1, b2)
	}
	if after.Key != before.Key {
		t.Errorf("key changed across restart: %q vs %q", after.Key, before.Key)
	}
	rec = getFrom(t, h2, "/metrics.json")
	if !strings.Contains(rec.Body.String(), "vz_sweep_specs_restored_total") {
		t.Errorf("restored metric missing: %s", rec.Body.String())
	}
}
