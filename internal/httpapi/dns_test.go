package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vzlens/internal/dnsplane"
	"vzlens/internal/months"
	"vzlens/internal/scenario"
)

func doMethod(t *testing.T, h *Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

func TestDNSControlSurface(t *testing.T) {
	w := mustBuild(scenarioTestConfig())
	r := dnsplane.NewResolver(w, months.MustParse("2019-07"))
	h := NewWithOptions(w, Options{
		DNSPlane:  r,
		Scenarios: []*scenario.Spec{cannedSpec(t, "cantv-depeer")},
	})

	rec := getFrom(t, h, "/api/dns")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/dns: %d %s", rec.Code, rec.Body.String())
	}
	var st dnsStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Month != "2019-07" || st.Scenario != "" {
		t.Errorf("status = %+v; want baseline at 2019-07", st)
	}

	if rec = doMethod(t, h, http.MethodPut, "/api/dns/scenario/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown scenario: %d", rec.Code)
	}
	if rec = doMethod(t, h, http.MethodPut, "/api/dns/scenario/cantv-depeer"); rec.Code != http.StatusOK {
		t.Fatalf("set scenario: %d %s", rec.Code, rec.Body.String())
	}
	if key := r.ScenarioKey(); key == "" {
		t.Error("resolver still on baseline after PUT")
	}
	rec = getFrom(t, h, "/api/dns")
	if !strings.Contains(rec.Body.String(), `"scenario"`) {
		t.Errorf("status does not report scenario: %s", rec.Body.String())
	}

	if rec = doMethod(t, h, http.MethodDelete, "/api/dns/scenario"); rec.Code != http.StatusOK {
		t.Fatalf("clear scenario: %d %s", rec.Code, rec.Body.String())
	}
	if key := r.ScenarioKey(); key != "" {
		t.Errorf("scenario %q survives DELETE", key)
	}
}

// TestDNSRoutesAbsentWithoutPlane pins that a handler built without a
// DNS plane serves 404 on the control surface instead of panicking on
// a nil resolver.
func TestDNSRoutesAbsentWithoutPlane(t *testing.T) {
	h := NewWithOptions(mustBuild(scenarioTestConfig()), Options{})
	if rec := getFrom(t, h, "/api/dns"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /api/dns without plane: %d", rec.Code)
	}
	if rec := doMethod(t, h, http.MethodDelete, "/api/dns/scenario"); rec.Code != http.StatusNotFound {
		t.Errorf("DELETE without plane: %d", rec.Code)
	}
}
