package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/obs"
	"vzlens/internal/resultstore"
	"vzlens/internal/world"
)

// TestMetricsEndpointAfterWarmedCampaign is the acceptance check for
// the observability layer: after one campaign-backed experiment is
// served, /metrics must expose the admission gate, singleflight,
// result store, and campaign engine families with non-trivial values.
func TestMetricsEndpointAfterWarmedCampaign(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var spans bytes.Buffer
	h := NewWithOptions(mustBuild(world.Config{Step: 6}), Options{
		MaxInFlight: 4,
		Store:       store,
		Tracer:      obs.NewTracer(&spans),
	})

	// fig12 simulates the trace campaign, fig6 the chaos sweep; the
	// second fig12 hit is served from the store.
	for _, path := range []string{"/api/experiments/fig12", "/api/experiments/fig6", "/api/experiments/fig12"} {
		rec := do(t, h, http.MethodGet, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("X-Trace-Id") == "" {
			t.Errorf("GET %s: missing X-Trace-Id with tracing enabled", path)
		}
	}

	rec := do(t, h, http.MethodGet, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		// Handler + gate.
		`vz_http_requests_total{class="experiment"} 3`,
		`vz_http_responses_total{code="2xx"}`,
		"vz_gate_inflight 0",
		"vz_gate_queue_wait_seconds_count 3",
		// Singleflight: three experiment requests, three leaders (the
		// repeat was sequential, so it led its own flight and hit the
		// store).
		"vz_flight_leaders_total 3",
		"vz_flight_followers_total 0",
		// Result store: campaign persists + table persists, one get hit.
		"vz_resultstore_puts_total",
		"vz_resultstore_hits_total",
		// Campaign engine: each campaign simulated exactly once.
		`vz_campaign_runs_total{campaign="trace"} 1`,
		`vz_campaign_runs_total{campaign="chaos"} 1`,
		`vz_campaign_month_seconds_count{campaign="trace"}`,
		`vz_campaign_last_run_seconds{campaign="trace"}`,
		`vz_campaign_worker_utilization{campaign="chaos"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The JSON rendering serves the same registry.
	rec = do(t, h, http.MethodGet, "/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	if got := doc[`vz_campaign_runs_total{campaign="trace"}`]; got != float64(1) {
		t.Errorf("JSON trace runs = %v, want 1", got)
	}

	// Trace propagation: the request that paid for the trace campaign
	// must own the campaign's spans — http.request, experiment,
	// campaign.trace, and campaign.month all on one trace ID.
	type spanLine struct {
		Trace string `json:"trace"`
		Name  string `json:"name"`
	}
	byName := map[string][]string{}
	dec := json.NewDecoder(&spans)
	for dec.More() {
		var s spanLine
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("span output: %v", err)
		}
		byName[s.Name] = append(byName[s.Name], s.Trace)
	}
	for _, name := range []string{"http.request", "experiment", "campaign.trace", "campaign.chaos", "campaign.month"} {
		if len(byName[name]) == 0 {
			t.Errorf("no %q span emitted", name)
		}
	}
	if len(byName["campaign.trace"]) == 1 && len(byName["campaign.month"]) > 0 {
		campaignTrace := byName["campaign.trace"][0]
		found := false
		for _, id := range byName["http.request"] {
			if id == campaignTrace {
				found = true
			}
		}
		if !found {
			t.Errorf("campaign.trace trace ID %s does not match any http.request trace %v",
				campaignTrace, byName["http.request"])
		}
	}
}

// TestMetricsCriticalUnderSaturation proves a scrape survives a
// saturated gate: with every slot held, /metrics still answers 200
// because it classifies as critical.
func TestMetricsCriticalUnderSaturation(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	h := NewWithOptions(mustBuild(world.Config{Step: 12}), Options{
		MaxInFlight: 1,
		MaxQueue:    1,
		TraceCampaign: func() (*atlas.TraceCampaign, error) {
			<-block
			return syntheticTrace(), nil
		},
	})
	defer once.Do(func() { close(block) })

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		do(t, h, http.MethodGet, "/api/experiments/fig12")
	}()
	<-started
	// Wait for the slot to be taken, then scrape.
	for h.gate.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	rec := do(t, h, http.MethodGet, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics under saturation = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "vz_gate_inflight 1") {
		t.Errorf("scrape does not show the held slot:\n%s", rec.Body.String())
	}
	once.Do(func() { close(block) })
	<-done
}
