package httpapi

import (
	"context"
	"errors"
	"log"
	"net/http"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/facts"
	"vzlens/internal/obs"
	"vzlens/internal/query"
	"vzlens/internal/resultstore"
)

// queryMetrics is the /api/query observability surface, registered only
// when a fact lake is configured.
type queryMetrics struct {
	queries    *obs.Counter   // plans executed (post-validation)
	badParams  *obs.Counter   // 400s: rejected plans
	notReady   *obs.Counter   // 503s: lake generation not built yet
	partitions *obs.Counter   // in-window partitions consulted, cumulative
	duration   *obs.Histogram // plan execution latency
}

func newQueryMetrics(reg *obs.Registry, lake *facts.Lake) queryMetrics {
	m := queryMetrics{
		queries: reg.Counter("vz_query_plans_total",
			"Validated /api/query plans executed."),
		badParams: reg.Counter("vz_query_bad_params_total",
			"/api/query requests rejected for invalid parameters."),
		notReady: reg.Counter("vz_query_not_ready_total",
			"/api/query requests answered 503 while the fact lake builds."),
		partitions: reg.Counter("vz_query_partitions_total",
			"In-window fact partitions consulted by queries, cumulative."),
		duration: reg.Histogram("vz_query_seconds",
			"Plan execution latency.", obs.LatencyBuckets),
	}
	reg.GaugeFunc("vz_facts_ready", "Whether the fact lake has a committed generation.",
		func() float64 {
			if lake.Ready() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("vz_facts_decodes", "Fact partitions decoded since start (pruning telemetry).",
		func() float64 { return float64(lake.Decodes()) })
	reg.GaugeFunc("vz_facts_quarantines", "Corrupt fact partitions quarantined since start.",
		func() float64 { return float64(lake.Quarantines()) })
	return m
}

// initFacts opens the fact lake and mounts GET /api/query. Open only
// loads the manifest; if the directory holds no generation for this
// world's scope, the lake builds on Warm (or lazily behind the first
// query, which 503s meanwhile).
func (h *Handler) initFacts() {
	lake, err := facts.Open(h.opts.FactsDir, h.w.Config.Scope())
	if err != nil {
		// An unreadable lake directory is an operator mistake worth
		// failing loudly at startup, like a scenario file that doesn't
		// compile.
		panic("httpapi: open fact lake: " + err.Error())
	}
	h.lake = lake
	h.queryEng = query.New(lake)
	h.qmet = newQueryMetrics(h.reg, lake)
	h.mux.HandleFunc("GET /api/query", h.query)
}

// Lake returns the fact lake (nil unless Options.FactsDir was set), so
// vzserve can report build progress and tests can reach the decode
// counters.
func (h *Handler) Lake() *facts.Lake { return h.lake }

// ensureLake builds the lake's first generation if none is committed.
// Concurrent callers coalesce: one builds, the rest see Ready flip.
// With force, a committed generation does not short-circuit the build:
// that is the quarantine-heal path, where the lake is Ready but one of
// its partitions is corrupt on disk and only a fresh generation
// replaces it.
func (h *Handler) ensureLake(ctx context.Context, force bool) error {
	if h.lake == nil || (!force && h.lake.Ready()) {
		return nil
	}
	h.lakeMu.Lock()
	defer h.lakeMu.Unlock()
	if !force && h.lake.Ready() {
		return nil
	}
	return h.lake.Build(ctx, h.w)
}

// kickLakeBuild starts one background build; later calls while it runs
// are no-ops. Queries answer 503 + Retry-After until the generation
// commits — the lake swap is atomic, so they flip to 200 mid-flight.
func (h *Handler) kickLakeBuild(force bool) {
	if !h.lakeBuilding.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer h.lakeBuilding.Store(false)
		if err := h.ensureLake(context.Background(), force); err != nil {
			log.Printf("httpapi: fact lake build: %v", err)
		}
	}()
}

// lakeTrace reconstructs the baseline traceroute campaign from the
// fact lake. The kernels' emission contract (probes ascending, samples
// contiguous, months concatenated in order) makes the reconstruction
// byte-identical to a fresh simulation, so experiments, scenario-diff
// baselines, and sweeps all join against the lake instead of
// re-simulating. Any lake problem falls back to simulation — the lake
// is an accelerator here, never a correctness dependency.
func (h *Handler) lakeTrace() (*atlas.TraceCampaign, bool) {
	if h.lake == nil || !h.lake.Ready() {
		return nil, false
	}
	tc, err := h.lake.TraceCampaign()
	if err != nil {
		log.Printf("httpapi: fact-lake trace reconstruction: %v (simulating instead)", err)
		return nil, false
	}
	return tc, true
}

// lakeChaos is lakeTrace for the CHAOS campaign.
func (h *Handler) lakeChaos() (*atlas.ChaosCampaign, bool) {
	if h.lake == nil || !h.lake.Ready() {
		return nil, false
	}
	cc, err := h.lake.ChaosCampaign()
	if err != nil {
		log.Printf("httpapi: fact-lake chaos reconstruction: %v (simulating instead)", err)
		return nil, false
	}
	return cc, true
}

// query serves GET /api/query: URL parameters compile into a plan, the
// engine executes it over the lake with strict partition pruning, and
// the result renders as JSON. Invalid plans are 400s; a lake that is
// still building (or lost a partition to corruption mid-read) is a 503
// with Retry-After, because both heal without operator action.
func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	p, err := query.ParseParams(r.URL.Query())
	if err != nil {
		h.qmet.badParams.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	_, span := obs.StartSpan(r.Context(), "query")
	defer span.End()
	span.SetAttr("metric", p.Metric)
	span.SetAttr("from", p.From.String())
	span.SetAttr("to", p.To.String())
	h.qmet.queries.Inc()
	start := time.Now()
	res, err := h.queryEng.Run(p)
	h.qmet.duration.ObserveDuration(time.Since(start))
	switch {
	case errors.Is(err, query.ErrNotReady):
		h.qmet.notReady.Inc()
		h.kickLakeBuild(false)
		w.Header().Set("Retry-After", "10")
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "fact lake is building, retry shortly"})
		return
	case errors.Is(err, resultstore.ErrCorrupt):
		// The corrupt partition is already quarantined; the lake is
		// still Ready (its generation is committed), so the rebuild
		// must be forced to replace the quarantined partition from
		// simulation.
		h.kickLakeBuild(true)
		w.Header().Set("Retry-After", "10")
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "a fact partition was quarantined, rebuilding"})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	span.SetAttr("partitions", res.Partitions)
	h.qmet.partitions.Add(uint64(res.Partitions))
	writeJSON(w, http.StatusOK, res)
}
