package httpapi

import (
	"fmt"
	"net/http"
)

// The DNS control surface. The data plane itself answers on its own
// UDP socket; these routes are how operators observe and steer it —
// most importantly, pointing it at a registered counterfactual
// scenario so the very next query resolves through the overlaid
// topology.

// dnsStatus is the GET /api/dns document.
type dnsStatus struct {
	Month        string `json:"month"`
	Scenario     string `json:"scenario,omitempty"`
	CacheEntries int    `json:"cache_entries"`
}

func (h *Handler) dnsStatus(w http.ResponseWriter, _ *http.Request) {
	r := h.opts.DNSPlane
	writeJSON(w, http.StatusOK, dnsStatus{
		Month:        r.Month().String(),
		Scenario:     r.ScenarioKey(),
		CacheEntries: r.CacheLen(),
	})
}

// dnsSetScenario (PUT /api/dns/scenario/{id}) re-points the live DNS
// plane at a registered scenario. The spec must already be registered
// via POST /api/scenarios — reusing that registry means the overlay
// serving DNS answers is byte-identical to the one the diff endpoints
// analyze.
func (h *Handler) dnsSetScenario(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spec, ok := h.scenarioByID(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("unknown scenario %q", id)})
		return
	}
	plan, err := spec.Compile(h.w)
	if err != nil {
		// Registration compiles specs, so this is unreachable short of
		// a world rebuild; report rather than trust.
		writeJSON(w, http.StatusUnprocessableEntity,
			map[string]string{"error": err.Error()})
		return
	}
	h.opts.DNSPlane.SetScenario(plan)
	writeJSON(w, http.StatusOK, map[string]string{"scenario": plan.Key})
}

// dnsClearScenario (DELETE /api/dns/scenario) returns the plane to the
// baseline topology.
func (h *Handler) dnsClearScenario(w http.ResponseWriter, _ *http.Request) {
	h.opts.DNSPlane.SetScenario(nil)
	writeJSON(w, http.StatusOK, map[string]string{"scenario": ""})
}
