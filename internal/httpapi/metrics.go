package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"vzlens/internal/obs"
	"vzlens/internal/overload"
)

// handlerMetrics is the handler's own observability surface; the gate,
// result store, and campaign engine register theirs on the same
// Registry. Label children are materialized here, at construction, so
// the per-request path is pure atomic increments.
type handlerMetrics struct {
	requests  map[string]*obs.Counter   // by admission class
	durations map[string]*obs.Histogram // by admission class
	responses [6]*obs.Counter           // by status class index (status/100)
	sheds     map[string]*obs.Counter   // by rejection reason
	queueWait *obs.Histogram            // admission-gate queue wait
	leaders   *obs.Counter              // singleflight executions
	followers *obs.Counter              // coalesced singleflight waits
}

var requestClasses = []string{"health", "experiment", "scenario", "sweep", "query", "api", "metrics", "cluster"}

// shedReasons must cover every reason writeShed and the rate limiter
// can emit, so the counters exist before the first rejection.
var shedReasons = []string{"shed", "queue_full", "queue_timeout", "client_canceled", "overloaded", "rate_limited"}

func newHandlerMetrics(reg *obs.Registry) handlerMetrics {
	m := handlerMetrics{
		requests:  map[string]*obs.Counter{},
		durations: map[string]*obs.Histogram{},
		sheds:     map[string]*obs.Counter{},
	}
	for _, class := range requestClasses {
		m.requests[class] = reg.Counter("vz_http_requests_total",
			"Requests received, by admission class.", obs.L("class", class))
		m.durations[class] = reg.Histogram("vz_http_request_seconds",
			"End-to-end request latency, by admission class.", obs.LatencyBuckets, obs.L("class", class))
	}
	for i := 1; i <= 5; i++ {
		m.responses[i] = reg.Counter("vz_http_responses_total",
			"Responses sent, by status class.", obs.L("code", strconv.Itoa(i)+"xx"))
	}
	for _, reason := range shedReasons {
		m.sheds[reason] = reg.Counter("vz_http_sheds_total",
			"Requests rejected for backpressure, by reason.", obs.L("reason", reason))
	}
	m.queueWait = reg.Histogram("vz_gate_queue_wait_seconds",
		"Time admitted requests spent waiting for an execution slot.", obs.LatencyBuckets)
	m.leaders = reg.Counter("vz_flight_leaders_total",
		"Experiment computations executed (singleflight leaders).")
	m.followers = reg.Counter("vz_flight_followers_total",
		"Experiment requests served by another caller's computation.")
	return m
}

// instrumentGate exposes the admission gate's snapshot stats as
// render-time gauges. Cumulative gate totals are covered elsewhere:
// admissions by the queue-wait histogram's count, rejections by the
// shed counters.
func instrumentGate(reg *obs.Registry, g *overload.Gate) {
	stat := func(fn func(overload.GateStats) float64) func() float64 {
		return func() float64 { return fn(g.Stats()) }
	}
	reg.GaugeFunc("vz_gate_inflight", "Requests currently holding an execution slot.",
		stat(func(s overload.GateStats) float64 { return float64(s.InFlight) }))
	reg.GaugeFunc("vz_gate_queued", "Requests currently waiting for a slot.",
		stat(func(s overload.GateStats) float64 { return float64(s.Queued) }))
	reg.GaugeFunc("vz_gate_peak_inflight", "High-water mark of concurrently admitted requests.",
		stat(func(s overload.GateStats) float64 { return float64(s.PeakInFlight) }))
	reg.GaugeFunc("vz_gate_queue_wait_ewma_seconds", "Smoothed queue wait driving adaptive shedding.",
		stat(func(s overload.GateStats) float64 { return s.AvgQueueWait.Seconds() }))
	reg.GaugeFunc("vz_gate_rejected_fast", "Non-queueing TryAcquire rejections (DNS plane REFUSED).",
		stat(func(s overload.GateStats) float64 { return float64(s.RejectedFast) }))
}

// statusRecorder captures the final status code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	if sr.status == 0 {
		sr.status = status
	}
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// observabilityMiddleware sits outside admission control so it sees
// every request — including the ones the gate sheds — and times the
// full in-server latency. When tracing is enabled it opens the root
// span, stamps X-Trace-Id on the response, and threads the traced
// context down to the campaign engine.
func (h *Handler) observabilityMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, class := classify(r)
		if c := h.met.requests[class]; c != nil {
			c.Inc()
		}
		var span *obs.Span
		if h.opts.Tracer != nil {
			ctx := obs.WithTracer(r.Context(), h.opts.Tracer)
			ctx, span = obs.StartSpan(ctx, "http.request")
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			w.Header().Set("X-Trace-Id", span.TraceID().String())
			r = r.WithContext(ctx)
		}
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		dur := time.Since(start)
		if hist := h.met.durations[class]; hist != nil {
			hist.ObserveDuration(dur)
		}
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		if i := status / 100; i >= 1 && i <= 5 {
			h.met.responses[i].Inc()
		}
		if span != nil {
			span.SetAttr("status", status)
			span.End()
		}
	})
}
