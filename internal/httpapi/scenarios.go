package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"

	"vzlens/internal/obs"
	"vzlens/internal/scenario"
)

// This file serves the counterfactual scenario engine: scenarios
// register through POST /api/scenarios (or preload via
// Options.Scenarios / vzserve's -scenario-file), and their
// baseline-vs-scenario diffs serve from GET /api/scenarios/{id}/diff.
// A diff is computed at most once per spec content: concurrent
// requests coalesce through a singleflight group keyed by the spec's
// content hash, and the serialized bytes persist in the result store
// under a content-scoped key — a restarted server replays the stored
// bytes verbatim, bit-identical, without re-simulating.

// maxScenarioBody bounds a POSTed spec document.
const maxScenarioBody = 1 << 16

// registerScenario validates and installs a spec under its ID.
// Re-registering an identical spec is idempotent; a different spec
// under a taken ID is a conflict (the store key embeds the content
// hash, so silently replacing would orphan stored diffs).
func (h *Handler) registerScenario(spec *scenario.Spec) (created bool, err error) {
	if _, err := spec.Compile(h.w); err != nil {
		return false, err
	}
	h.scenMu.Lock()
	defer h.scenMu.Unlock()
	if prev, ok := h.scenarios[spec.ID]; ok {
		if prev.Key() == spec.Key() {
			return false, nil
		}
		return false, fmt.Errorf("scenario id %q already registered with different content", spec.ID)
	}
	h.scenarios[spec.ID] = spec
	return true, nil
}

// scenarioInfo is one row of the GET /api/scenarios listing.
type scenarioInfo struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Name string `json:"name,omitempty"`
}

func (h *Handler) listScenarios(w http.ResponseWriter, _ *http.Request) {
	h.scenMu.Lock()
	out := make([]scenarioInfo, 0, len(h.scenarios))
	for _, s := range h.scenarios {
		out = append(out, scenarioInfo{ID: s.ID, Key: s.Key(), Name: s.Name})
	}
	h.scenMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}

func (h *Handler) postScenario(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxScenarioBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			map[string]string{"error": fmt.Sprintf("spec larger than %d bytes", maxScenarioBody)})
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	created, err := h.registerScenario(spec)
	if err != nil {
		status := http.StatusBadRequest
		if _, taken := h.scenarioByID(spec.ID); taken {
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, map[string]any{
		"id":   spec.ID,
		"key":  spec.Key(),
		"diff": "/api/scenarios/" + spec.ID + "/diff",
	})
}

func (h *Handler) scenarioByID(id string) (*scenario.Spec, bool) {
	h.scenMu.Lock()
	defer h.scenMu.Unlock()
	s, ok := h.scenarios[id]
	return s, ok
}

// computeDiffLocal runs the full scenario simulation on this process's
// engine and serializes the diff in the canonical wire form (indented
// JSON plus trailing newline) — the same bytes whether produced here,
// loaded from the store, or returned by a cluster worker.
func (h *Handler) computeDiffLocal(ctx context.Context, spec *scenario.Spec) ([]byte, error) {
	diff, err := h.engine.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(diff, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// localDiffPayload is the cluster worker's diff entry point: serve the
// stored bytes when present, otherwise simulate and persist. Workers
// coalesce concurrent cluster requests through the same singleflight
// group as their own API traffic.
func (h *Handler) localDiffPayload(ctx context.Context, spec *scenario.Spec) ([]byte, error) {
	payload, err, _ := h.scenFlights.Do(spec.Key(), func() ([]byte, error) {
		key := h.storeKey("scenario", spec.Key())
		if h.opts.Store != nil {
			if stored, err := h.opts.Store.Get(key); err == nil {
				return stored, nil
			} else {
				logStoreMiss("scenario "+spec.ID, err)
			}
		}
		data, err := h.computeDiffLocal(ctx, spec)
		if err != nil {
			return nil, err
		}
		h.persistDiff(spec.ID, key, data)
		return data, nil
	})
	return payload, err
}

// persistDiff writes a serialized diff document to the store; failures
// are logged, not surfaced, because the request already has its bytes.
func (h *Handler) persistDiff(id, key string, data []byte) {
	if h.opts.Store == nil {
		return
	}
	if err := h.opts.Store.Put(key, data); err != nil {
		log.Printf("httpapi: persist scenario %s diff: %v", id, err)
	}
}

// scenarioDiff serves the baseline-vs-scenario diff for a registered
// scenario. The expensive path — two campaign simulations plus the
// diff — runs at most once per spec content: requests coalesce on the
// content key, and the serialized document round-trips through the
// result store so restarts serve the stored bytes verbatim.
func (h *Handler) scenarioDiff(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spec, ok := h.scenarioByID(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("unknown scenario %q", id)})
		return
	}
	ctx, span := obs.StartSpan(r.Context(), "scenario.diff")
	span.SetAttr("scenario", id)
	payload, err, shared := h.scenFlights.Do(spec.Key(), func() ([]byte, error) {
		key := h.storeKey("scenario", spec.Key())
		if h.opts.Store != nil {
			if stored, err := h.opts.Store.Get(key); err == nil {
				return stored, nil
			} else {
				logStoreMiss("scenario "+id, err)
			}
		}
		// A coordinator dispatches the simulation to the spec's ring
		// owner; the worker returns the same serialized document this
		// process would produce, so persisting it keeps the restart
		// path bit-identical. Any dispatch failure (including an empty
		// ring) falls through to local computation.
		if h.cluster != nil {
			if data, err := h.cluster.DiffPayload(ctx, spec); err == nil {
				h.persistDiff(id, key, data)
				return data, nil
			} else {
				log.Printf("httpapi: cluster scenario %s diff: %v (computing locally)", id, err)
			}
		}
		data, err := h.computeDiffLocal(ctx, spec)
		if err != nil {
			return nil, err
		}
		h.persistDiff(id, key, data)
		return data, nil
	})
	if shared {
		h.met.followers.Inc()
	} else {
		h.met.leaders.Inc()
	}
	span.SetAttr("coalesced", shared)
	span.End()
	if err != nil {
		log.Printf("httpapi: scenario %s diff: %v", id, err)
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": fmt.Sprintf("scenario %s temporarily unavailable: %v", id, err)})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(payload); err != nil {
		log.Printf("httpapi: write scenario %s diff: %v", id, err)
	}
}
