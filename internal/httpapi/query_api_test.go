package httpapi

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/query"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

// queryTestConfig keeps /api/query integration tests to a handful of
// partitions.
func queryTestConfig() world.Config {
	return world.Config{
		TraceStart: months.New(2018, time.January),
		TraceEnd:   months.New(2019, time.January),
		ChaosStart: months.New(2018, time.January),
		ChaosEnd:   months.New(2019, time.January),
		Step:       6,
	}
}

func TestQueryEndpoint(t *testing.T) {
	w := mustBuild(queryTestConfig())
	h := NewWithOptions(w, Options{FactsDir: t.TempDir()})

	// Before the lake builds: 503 with Retry-After, never a 500.
	rec := getFrom(t, h, "/api/query?metric=median_rtt&from=2018-01&to=2019-01")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold lake status = %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("cold-lake 503 missing Retry-After")
	}
	// Readiness reports the lake axis alongside the campaign caches.
	var ready struct {
		Campaigns map[string]bool `json:"campaigns"`
	}
	if err := json.Unmarshal(getFrom(t, h, "/readyz").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if v, ok := ready.Campaigns["facts"]; !ok || v {
		t.Errorf("readyz facts = %v, %v; want present and false", v, ok)
	}

	// Warm builds the lake; the same URL flips to 200.
	h.Warm()
	rec = getFrom(t, h, "/api/query?metric=median_rtt&from=2018-01&to=2019-01&country=VE")
	if rec.Code != http.StatusOK {
		t.Fatalf("warm status = %d; body %s", rec.Code, rec.Body.String())
	}
	var res query.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Metric != "median_rtt" || res.Partitions == 0 || len(res.Groups) != 1 || res.Groups[0].Key != "VE" {
		t.Errorf("unexpected result: %+v", res)
	}
	if err := json.Unmarshal(getFrom(t, h, "/readyz").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Campaigns["facts"] {
		t.Error("readyz facts still false after Warm")
	}

	// Bad parameters: 400 with the reason in the body.
	rec = getFrom(t, h, "/api/query?metric=median_rtt&from=2018-01&to=2019-01&percentile=200")
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "percentile") {
		t.Errorf("bad params: status %d body %s", rec.Code, rec.Body.String())
	}
	rec = getFrom(t, h, "/api/query?metric=median_rtt&from=2018-01&to=2019-01&typo=1")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown key: status %d", rec.Code)
	}

	// The query surface is observable: plan counter and lake gauges.
	metrics := getFrom(t, h, "/metrics").Body.String()
	for _, want := range []string{"vz_query_plans_total", "vz_query_bad_params_total", "vz_facts_ready 1", "vz_query_partitions_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestLakeJoinedBaselineByteIdentical is the fact-join equivalence
// contract: a scenario diff whose baseline campaigns were reconstructed
// from the fact lake serializes byte-identically to one whose baseline
// was freshly simulated. The kernels' emission contract (probes
// ascending, samples contiguous, months concatenated in order) is what
// makes lake reconstruction exact, so experiments, scenario diffs, and
// sweeps can all join against the lake instead of re-simulating.
func TestLakeJoinedBaselineByteIdentical(t *testing.T) {
	cfg := queryTestConfig()
	spec := cannedSpec(t, "cantv-depeer")

	sim := NewWithOptions(mustBuild(cfg), Options{Scenarios: []*scenario.Spec{spec}})
	rec := getFrom(t, sim, "/api/scenarios/cantv-depeer/diff")
	if rec.Code != http.StatusOK {
		t.Fatalf("simulated diff: %d %s", rec.Code, rec.Body.String())
	}
	simulated := rec.Body.String()

	joined := NewWithOptions(mustBuild(cfg), Options{
		FactsDir:  t.TempDir(),
		Scenarios: []*scenario.Spec{spec},
	})
	joined.Warm() // builds the lake; campaign caches reconstruct from it
	if tc, ok := joined.lakeTrace(); !ok || tc == nil {
		t.Fatal("lake-backed trace reconstruction unavailable after Warm")
	}
	rec = getFrom(t, joined, "/api/scenarios/cantv-depeer/diff")
	if rec.Code != http.StatusOK {
		t.Fatalf("lake-joined diff: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != simulated {
		t.Fatalf("lake-joined diff diverges from simulated baseline:\n lake: %s\n sim:  %s",
			rec.Body.String(), simulated)
	}
}

// TestQueryQuarantineHeals corrupts a partition on disk, reopens the
// lake cold, and proves the full heal cycle: the first query answers
// 503 (the partition quarantines), the 503 forces a background rebuild
// even though the lake's generation is still committed (Ready alone
// must not short-circuit it — that was a real bug: the 503 looped
// forever), and the same query flips to 200.
func TestQueryQuarantineHeals(t *testing.T) {
	w := mustBuild(queryTestConfig())
	dir := t.TempDir()
	h1 := NewWithOptions(w, Options{FactsDir: dir})
	h1.Warm()

	part := filepath.Join(dir, "trace-"+h1.Lake().TraceMonths()[1].String()+".vzfp")
	raw, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(part, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := NewWithOptions(w, Options{FactsDir: dir})
	url := "/api/query?metric=median_rtt&from=2018-01&to=2019-01&country=VE"
	rec := getFrom(t, h2, url)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("corrupt partition: status %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	if h2.Lake().Quarantines() == 0 {
		t.Error("corrupt partition was not quarantined")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec = getFrom(t, h2, url)
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never healed: last status %d body %s", rec.Code, rec.Body.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestQueryLakeReload proves a second handler over the same facts
// directory serves queries without rebuilding (the manifest reloads).
func TestQueryLakeReload(t *testing.T) {
	w := mustBuild(queryTestConfig())
	dir := t.TempDir()
	h1 := NewWithOptions(w, Options{FactsDir: dir})
	h1.Warm()
	if !h1.Lake().Ready() {
		t.Fatal("lake not ready after Warm")
	}

	h2 := NewWithOptions(w, Options{FactsDir: dir})
	if !h2.Lake().Ready() {
		t.Fatal("reloaded lake not ready")
	}
	rec := getFrom(t, h2, "/api/query?metric=catchment_share&from=2018-01&to=2019-01&group_by=letter")
	if rec.Code != http.StatusOK {
		t.Fatalf("reloaded query status = %d; body %s", rec.Code, rec.Body.String())
	}
	var res query.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 13 {
		t.Errorf("letter groups = %d, want 13", len(res.Groups))
	}
}
