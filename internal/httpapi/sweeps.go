package httpapi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"vzlens/internal/overload"
	"vzlens/internal/sweep"
)

// This file serves the batch sweep engine: POST /api/sweeps expands a
// templated scenario family (depeer each transit, cut each cable,
// place a root replica in each candidate city) and runs it on a
// bounded worker pool, GET /api/sweeps/{id} serves the ranked impact
// leaderboard. Sweeps journal every completed spec through the result
// store, so a restarted server resumes mid-sweep without re-simulating
// anything already journaled — which is why the endpoints require a
// store and answer 503 without one.

// maxSweepBody bounds a POSTed sweep request. Explicit-specs sweeps
// carry up to sweep.MaxSpecs full scenario documents, so the cap is
// larger than a single scenario's.
const maxSweepBody = 1 << 20

// sweepsEnabled reports whether the sweep engine is live; without a
// result store there is no journal to make sweeps crash-safe, so the
// feature is off rather than silently non-durable.
func (h *Handler) sweepsEnabled(w http.ResponseWriter) bool {
	if h.sweeps != nil {
		return true
	}
	writeJSON(w, http.StatusServiceUnavailable,
		map[string]string{"error": "sweeps require a result store (vzserve -store)"})
	return false
}

func (h *Handler) postSweep(w http.ResponseWriter, r *http.Request) {
	if !h.sweepsEnabled(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSweepBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			map[string]string{"error": fmt.Sprintf("sweep request larger than %d bytes", maxSweepBody)})
		return
	}
	req, err := sweep.ParseRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	_, existed := h.sweeps.Get(req.ID)
	st, err := h.sweeps.Start(req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, sweep.ErrConflict) {
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	// A brand-new sweep is accepted for background execution (202); an
	// idempotent re-POST of a live one just reports it (200).
	code := http.StatusAccepted
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (h *Handler) listSweeps(w http.ResponseWriter, _ *http.Request) {
	if !h.sweepsEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": h.sweeps.List()})
}

func (h *Handler) getSweep(w http.ResponseWriter, r *http.Request) {
	if !h.sweepsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	st, ok := h.sweeps.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("unknown sweep %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// sweepAdmit gates each background spec simulation through the same
// admission gate as interactive requests, at low priority: a sweep is
// batch work and must never starve a live client. Sheds surface as
// retryable errors, so the spec's retry policy backs off and tries
// again instead of failing the spec.
func (h *Handler) sweepAdmit(ctx context.Context) (func(), error) {
	return h.gate.Acquire(ctx, overload.PriorityLow)
}

// DrainSweeps stops dispatching new sweep specs, waits for in-flight
// specs to finish and journal, and closes the journals — the SIGTERM
// path, called after the HTTP server has drained. Unfinished sweeps
// resume on the next start. A handler without a sweep engine drains
// trivially.
func (h *Handler) DrainSweeps(ctx context.Context) error {
	if h.sweeps == nil {
		return nil
	}
	return h.sweeps.Drain(ctx)
}
