package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vzlens/internal/overload"
)

// classify maps a request onto its admission priority and rate-limit
// class. Health and readiness probes are critical: an overloaded
// server that stops answering its orchestrator gets restarted, which
// only makes the overload worse. Experiment fetches can trigger
// campaign simulation, so they are the first to shed; the remaining
// API surface is cheap and sheds last.
func classify(r *http.Request) (overload.Priority, string) {
	switch {
	case r.URL.Path == "/healthz" || r.URL.Path == "/readyz":
		return overload.PriorityCritical, "health"
	case r.URL.Path == "/cluster/health":
		// Coordinator probes must never shed: a worker that drops its
		// health check under load gets marked down, which shifts that
		// load onto its peers and makes the overload worse.
		return overload.PriorityCritical, "health"
	case strings.HasPrefix(r.URL.Path, "/cluster/frames"):
		// Frame pulls and replication pushes are cheap byte copies that
		// warm restarted peers; shedding them only forces re-simulation.
		return overload.PriorityHigh, "cluster"
	case strings.HasPrefix(r.URL.Path, "/cluster/"):
		// Dispatched simulations are as expensive as the local paths
		// they replace, so they shed at the same low priority.
		return overload.PriorityLow, "cluster"
	case r.URL.Path == "/metrics" || r.URL.Path == "/metrics.json":
		// Scrapes must survive overload: metrics from a drowning server
		// are exactly what the operator needs to see.
		return overload.PriorityCritical, "metrics"
	case strings.HasPrefix(r.URL.Path, "/api/experiments/"):
		return overload.PriorityLow, "experiment"
	case r.URL.Path == "/api/query":
		// Ad-hoc fact-lake scans are analytical work: cheap once warm,
		// but a cold-cache burst can decode a decade of partitions, so
		// they shed with the other heavy computations.
		return overload.PriorityLow, "query"
	case strings.HasPrefix(r.URL.Path, "/api/sweeps"):
		// Sweep endpoints themselves are cheap — expansion and status
		// serving; the expensive simulations run in background workers
		// that acquire the gate per spec at low priority.
		return overload.PriorityHigh, "sweep"
	case strings.HasPrefix(r.URL.Path, "/api/scenarios"):
		// Scenario diffs can trigger two extra campaign simulations —
		// the most expensive operation the API exposes — so they shed
		// alongside experiments.
		return overload.PriorityLow, "scenario"
	default:
		return overload.PriorityHigh, "api"
	}
}

// admissionMiddleware applies the static rate-limit backstop and the
// bounded-concurrency gate. Rejections are structured JSON with a
// Retry-After so well-behaved clients back off instead of retrying
// hot.
func (h *Handler) admissionMiddleware(next http.Handler) http.Handler {
	if h.gate == nil && h.limits == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pri, class := classify(r)
		if pri < overload.PriorityCritical && h.limits != nil {
			if ok, retry := h.limits.Allow(class); !ok {
				secs := int(retry / time.Second)
				if secs < 1 {
					secs = 1
				}
				h.met.sheds["rate_limited"].Inc()
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeJSON(w, http.StatusTooManyRequests, map[string]string{
					"error":  fmt.Sprintf("rate limit exceeded for %s endpoints", class),
					"reason": "rate_limited",
				})
				return
			}
		}
		if h.gate != nil {
			release, err := h.gate.Acquire(r.Context(), pri)
			if err != nil {
				h.writeShed(w, err)
				return
			}
			defer release()
		}
		next.ServeHTTP(w, r)
	})
}

// writeShed renders a gate rejection. Every shed response carries
// Retry-After: shedding exists to convert queue collapse into quick,
// honest backpressure.
func (h *Handler) writeShed(w http.ResponseWriter, err error) {
	reason, retry := "overloaded", "5"
	switch {
	case errors.Is(err, overload.ErrShed):
		reason, retry = "shed", "2"
	case errors.Is(err, overload.ErrQueueFull):
		reason, retry = "queue_full", "2"
	case errors.Is(err, overload.ErrQueueTimeout):
		reason, retry = "queue_timeout", "5"
	case errors.Is(err, overload.ErrCanceled):
		// The client is gone; the status code is a formality.
		reason, retry = "client_canceled", "1"
	}
	if c := h.met.sheds[reason]; c != nil {
		c.Inc()
	}
	w.Header().Set("Retry-After", retry)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":  "server overloaded, retry later",
		"reason": reason,
	})
}

// backpressureWriter stamps Retry-After (and a JSON Content-Type) onto
// any 429/503 whose handler forgot them — including http.TimeoutHandler's
// built-in 503 page, which this package cannot otherwise reach.
type backpressureWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (b *backpressureWriter) WriteHeader(status int) {
	if !b.wroteHeader {
		b.wroteHeader = true
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			hdr := b.Header()
			if hdr.Get("Retry-After") == "" {
				hdr.Set("Retry-After", "5")
			}
			if hdr.Get("Content-Type") == "" {
				hdr.Set("Content-Type", "application/json; charset=utf-8")
			}
		}
	}
	b.ResponseWriter.WriteHeader(status)
}

func (b *backpressureWriter) Write(p []byte) (int, error) {
	if !b.wroteHeader {
		b.WriteHeader(http.StatusOK)
	}
	return b.ResponseWriter.Write(p)
}

// backpressureHeaderMiddleware guarantees the "every 429/503 carries
// Retry-After" contract for the whole handler tree.
func backpressureHeaderMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&backpressureWriter{ResponseWriter: w}, r)
	})
}
