package httpapi

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/obs"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

// scenarioTestConfig compresses the campaigns around the depeering era
// so scenario tests simulate seconds, not minutes, of work.
func scenarioTestConfig() world.Config {
	return world.Config{
		TraceStart: months.New(2018, time.January),
		TraceEnd:   months.New(2021, time.January),
		ChaosStart: months.New(2018, time.January),
		ChaosEnd:   months.New(2021, time.January),
		Step:       6,
	}
}

// cannedSpec loads one of internal/scenario's shipped scenarios.
func cannedSpec(t *testing.T, id string) *scenario.Spec {
	t.Helper()
	data, err := os.ReadFile("../scenario/testdata/" + id + ".json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func post(t *testing.T, h *Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestScenarioRegistrationAndListing(t *testing.T) {
	w := mustBuild(scenarioTestConfig())
	h := NewWithOptions(w, Options{Scenarios: []*scenario.Spec{cannedSpec(t, "cantv-depeer")}})

	rec := getFrom(t, h, "/api/scenarios")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "cantv-depeer") {
		t.Fatalf("list: %d %s", rec.Code, rec.Body.String())
	}

	// A fresh scenario registers with 201 and advertises its diff URL.
	spec := `{"id":"test-cut","ops":[{"op":"remove_link","a":6762,"b":8048,"kind":"p2c","from":"2019-06"}]}`
	rec = post(t, h, "/api/scenarios", spec)
	if rec.Code != http.StatusCreated || !strings.Contains(rec.Body.String(), "/api/scenarios/test-cut/diff") {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	// Identical re-registration is idempotent.
	if rec = post(t, h, "/api/scenarios", spec); rec.Code != http.StatusOK {
		t.Fatalf("idempotent re-post: %d %s", rec.Code, rec.Body.String())
	}
	// Same id, different content conflicts.
	other := `{"id":"test-cut","ops":[{"op":"depeer","asn":8048,"from":"2019-01"}]}`
	if rec = post(t, h, "/api/scenarios", other); rec.Code != http.StatusConflict {
		t.Fatalf("conflicting re-post: %d %s", rec.Code, rec.Body.String())
	}
	// Structurally invalid and semantically dangling specs are 400s.
	if rec = post(t, h, "/api/scenarios", `{"id":"bad","ops":[{"op":"warp"}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d %s", rec.Code, rec.Body.String())
	}
	dangling := `{"id":"bad2","ops":[{"op":"depeer","asn":424242}]}`
	if rec = post(t, h, "/api/scenarios", dangling); rec.Code != http.StatusBadRequest {
		t.Fatalf("dangling spec: %d %s", rec.Code, rec.Body.String())
	}
	// Oversized bodies are rejected before parsing.
	huge := `{"id":"big","ops":[` + strings.Repeat(`{"op":"depeer","asn":1},`, 4096) + `]}`
	if rec = post(t, h, "/api/scenarios", huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: %d", rec.Code)
	}

	if rec = getFrom(t, h, "/api/scenarios/nope/diff"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown diff: %d", rec.Code)
	}
}

// TestScenarioDiffServedFromStoreAfterRestart is the end-to-end
// persistence contract: a server preloaded with -scenario-file
// computes a diff once; after a "restart" (a fresh handler over the
// same store directory) the diff serves byte-identically from the
// store without a single re-simulation.
func TestScenarioDiffServedFromStoreAfterRestart(t *testing.T) {
	dir := t.TempDir()
	specs := []*scenario.Spec{cannedSpec(t, "cable-cut")}

	boot := func() (*Handler, *obs.Registry) {
		store, err := resultstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		h := NewWithOptions(mustBuild(scenarioTestConfig()), Options{
			Store:     store,
			Metrics:   reg,
			Scenarios: specs,
		})
		return h, reg
	}
	runs := func(reg *obs.Registry) uint64 {
		return reg.Counter("vz_scenario_runs_total",
			"Completed counterfactual scenario runs.").Value()
	}

	h1, reg1 := boot()
	rec := getFrom(t, h1, "/api/scenarios/cable-cut/diff")
	if rec.Code != http.StatusOK {
		t.Fatalf("first diff: %d %s", rec.Code, rec.Body.String())
	}
	first := rec.Body.String()
	if !strings.Contains(first, `"scenario": "cable-cut"`) {
		t.Fatalf("diff body: %s", first)
	}
	if got := runs(reg1); got != 1 {
		t.Fatalf("scenario runs after first request = %d, want 1", got)
	}

	// "Restart": a brand-new handler, registry, and store handle over
	// the same directory. The only shared state is the disk.
	h2, reg2 := boot()
	rec = getFrom(t, h2, "/api/scenarios/cable-cut/diff")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-restart diff: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != first {
		t.Fatal("post-restart diff is not byte-identical to the original")
	}
	if got := runs(reg2); got != 0 {
		t.Fatalf("scenario runs after restart = %d, want 0 (store must answer)", got)
	}
}

// TestScenarioAdmissionClass pins that scenario routes land in their
// own (sheddable) admission class, not the default API class.
func TestScenarioAdmissionClass(t *testing.T) {
	for _, path := range []string{"/api/scenarios", "/api/scenarios/x/diff"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if _, class := classify(req); class != "scenario" {
			t.Errorf("classify(%s) class = %q, want scenario", path, class)
		}
	}
}
