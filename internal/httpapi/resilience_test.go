package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/world"
)

func getFrom(t *testing.T, h *Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestReadyz(t *testing.T) {
	rec := get(t, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Status    string             `json:"status"`
		Campaigns map[string]bool    `json:"campaigns"`
		Axes      []world.AxisStatus `json:"axes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q (synthetic world must not report degraded)", doc.Status)
	}
	if _, ok := doc.Campaigns["trace"]; !ok {
		t.Error("campaigns report missing trace cache")
	}
}

// TestCampaignFailureReturns503ThenRecovers drives the lazy campaign
// cache through a transient failure: the first request gets 503 with
// Retry-After, and because the failure is not cached the next request
// simulates again and succeeds.
func TestCampaignFailureReturns503ThenRecovers(t *testing.T) {
	w := mustBuild(world.Config{Step: 6})
	calls := 0
	h := NewWithOptions(w, Options{
		ChaosCampaign: func() (*atlas.ChaosCampaign, error) {
			calls++
			if calls == 1 {
				return nil, errors.New("upstream archive unreachable")
			}
			return w.ChaosCampaign(), nil
		},
	})

	rec := getFrom(t, h, "/api/experiments/fig6")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("first request status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "temporarily unavailable") {
		t.Errorf("body = %s", rec.Body.String())
	}

	rec = getFrom(t, h, "/api/experiments/fig6")
	if rec.Code != http.StatusOK {
		t.Fatalf("retry status = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if calls != 2 {
		t.Errorf("simulator calls = %d, want 2", calls)
	}

	// The success IS cached: further requests don't re-simulate.
	getFrom(t, h, "/api/experiments/fig16")
	if calls != 2 {
		t.Errorf("simulator calls after cache warm = %d, want 2", calls)
	}
	rec = getFrom(t, h, "/readyz")
	if !strings.Contains(rec.Body.String(), `"chaos": true`) {
		t.Errorf("readyz does not report warm chaos cache: %s", rec.Body.String())
	}
}

// TestCampaignPanicBecomes503 ensures a panicking simulation is
// converted to a 503, not a torn-down connection.
func TestCampaignPanicBecomes503(t *testing.T) {
	w := mustBuild(world.Config{Step: 6})
	h := NewWithOptions(w, Options{
		TraceCampaign: func() (*atlas.TraceCampaign, error) { panic("poisoned input") },
	})
	rec := getFrom(t, h, "/api/experiments/fig12")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "temporarily unavailable") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

// TestRecoverMiddleware ensures a handler panic surfaces as a 500 JSON
// document instead of propagating to the server.
func TestRecoverMiddleware(t *testing.T) {
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	rec := httptest.NewRecorder()
	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic escaped middleware: %v", p)
			}
		}()
		recoverMiddleware(inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

// TestRecoverMiddlewarePreservesAbort: http.ErrAbortHandler is the
// sanctioned way to drop a connection and must pass through.
func TestRecoverMiddlewarePreservesAbort(t *testing.T) {
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", p)
		}
	}()
	recoverMiddleware(inner).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("abort panic swallowed")
}

// TestRequestTimeout ensures slow handlers are cut off with 503.
func TestRequestTimeout(t *testing.T) {
	w := mustBuild(world.Config{Step: 6})
	h := NewWithOptions(w, Options{
		RequestTimeout: 10 * time.Millisecond,
		TraceCampaign: func() (*atlas.TraceCampaign, error) {
			time.Sleep(200 * time.Millisecond)
			return w.TraceCampaign(), nil
		},
	})
	rec := getFrom(t, h, "/api/experiments/fig12")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503 from TimeoutHandler", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "timed out") {
		t.Errorf("body = %s", rec.Body.String())
	}
}
