package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"vzlens/internal/overload"
	"vzlens/internal/resilience"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
)

// This file is the coordinator: the node that owns the ring, the
// health plane, and the dispatch policy. It exposes exactly the
// function signatures the serving layer already injects — a sweep
// RunSpec and a scenario diff renderer — so becoming a cluster is a
// wiring change, not a semantics change. Dispatch composes three
// resilience layers, innermost first:
//
//	hedge     — the request races across the key's owners: a latency
//	            hedge after HedgeDelay, an immediate failover on
//	            error, first success cancels the losers.
//	retry     — a failed hedge round (every candidate errored) backs
//	            off with jitter and re-snapshots the candidate list,
//	            picking up whatever the prober learned meanwhile.
//	reassign  — a key whose ring-primary owner is down simply
//	            executes on a successor; the sticky-assignment
//	            journal records the move so a coordinator restart
//	            keeps routing it to the same survivor.
//
// Exactly-once is layered, not assumed: the coordinator singleflights
// concurrent requests per content key, each worker singleflights and
// caches frames in its store, and the sweep journal upstream already
// refuses duplicate results. A lost response re-dispatches, but the
// re-dispatch hits the worker's frame cache — simulation happens once.

// ErrNoWorkers reports a dispatch with zero available candidates. The
// serving layer treats it as "cluster absent" and falls back to local
// simulation, so a coordinator whose whole worker fleet died degrades
// to a (slower) standalone server instead of failing sweeps.
var ErrNoWorkers = errors.New("cluster: no available workers")

// assignRecord is one sticky-assignment journal entry: key k now
// executes on worker w.
type assignRecord struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
}

// assignCompactFactor triggers assignment-journal compaction once the
// record count exceeds this multiple of the live key count.
const assignCompactFactor = 4

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Workers are the replica base URLs. Required, at least one.
	Workers []string
	// Replicas is how many ring owners each frame replicates to,
	// executor included (default 2, capped at len(Workers)).
	Replicas int
	// Scope is the world-configuration scope for frame keys; must
	// match the workers'.
	Scope string
	// Store, when set, persists the sticky-assignment journal so a
	// coordinator restart resumes routing mid-sweep keys to the same
	// workers. Nil keeps assignments in memory only.
	Store *resultstore.Store
	// HedgeDelay is how long a dispatch may stay silent before racing
	// the next owner (default 500ms).
	HedgeDelay time.Duration
	// DispatchTimeout bounds one spec dispatch end to end, all hedges
	// and retries included (default 2m).
	DispatchTimeout time.Duration
	// Retry is the backoff policy between failed hedge rounds
	// (default: 3 attempts, 100ms base, jittered).
	Retry resilience.Policy
	// ProbeInterval, ProbeTimeout, FailThreshold tune the prober (see
	// ProberOptions).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int
	// VNodes tunes ring granularity (default 64 per worker).
	VNodes int
	// Client performs dispatches; nil uses a private client.
	Client *http.Client
}

// Coordinator routes content-keyed work across the worker ring.
type Coordinator struct {
	opts   CoordinatorOptions
	ring   *Ring
	member map[string]*Member
	prober *Prober
	client *http.Client

	flights overload.Group[string, []byte]

	assignMu      sync.Mutex
	assign        map[string]string // spec content key -> sticky worker
	assignJournal *resultstore.Journal
	assignRecords int // records in the journal, for compaction pacing

	met coordMetrics
}

// NewCoordinator builds the coordinator. Call Instrument (optional)
// and then Start before dispatching. Construction never fails: a
// broken assignment journal degrades to in-memory stickiness with a
// logged warning.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if len(opts.Workers) == 0 {
		panic("cluster: NewCoordinator requires at least one worker")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(opts.Workers) {
		opts.Replicas = len(opts.Workers)
	}
	if opts.HedgeDelay <= 0 {
		opts.HedgeDelay = 500 * time.Millisecond
	}
	if opts.DispatchTimeout <= 0 {
		opts.DispatchTimeout = 2 * time.Minute
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = resilience.Policy{
			MaxAttempts: 3, BaseDelay: 100 * time.Millisecond,
			MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.2,
		}
	}
	c := &Coordinator{
		opts:   opts,
		ring:   NewRing(opts.Workers, opts.VNodes),
		member: make(map[string]*Member, len(opts.Workers)),
		assign: map[string]string{},
		client: opts.Client,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	members := make([]*Member, 0, len(opts.Workers))
	for _, addr := range c.ring.Members() {
		m := NewMember(addr)
		c.member[addr] = m
		members = append(members, m)
	}
	c.prober = NewProber(members, ProberOptions{
		Interval:      opts.ProbeInterval,
		Timeout:       opts.ProbeTimeout,
		FailThreshold: opts.FailThreshold,
		Client:        c.client,
		OnTransition: func(m *Member, from, to State) {
			log.Printf("cluster: worker %s %s -> %s", m.Addr, from, to)
			c.met.transitions.Inc()
		},
	})
	c.openAssignJournal()
	return c
}

// Start launches the health plane. Call after Instrument so the probe
// loop observes its metric hooks.
func (c *Coordinator) Start() { c.prober.Start() }

// openAssignJournal restores sticky assignments from a previous
// coordinator process and compacts the journal down to one record per
// live key.
func (c *Coordinator) openAssignJournal() {
	if c.opts.Store == nil {
		return
	}
	path := c.opts.Store.JournalPath("cluster-assign-" + c.opts.Scope)
	j, recs, truncated, err := resultstore.OpenJournal(path)
	if err != nil {
		log.Printf("cluster: open assignment journal: %v (stickiness is in-memory only)", err)
		return
	}
	if truncated > 0 {
		log.Printf("cluster: assignment journal: %d torn bytes truncated", truncated)
	}
	for _, raw := range recs {
		var rec assignRecord
		if json.Unmarshal(raw, &rec) == nil && rec.Key != "" && rec.Worker != "" {
			c.assign[rec.Key] = rec.Worker
		}
	}
	c.assignJournal = j
	c.assignRecords = len(recs)
}

// Close stops the prober and releases the journal and connections.
func (c *Coordinator) Close() {
	c.prober.Close()
	c.assignMu.Lock()
	if c.assignJournal != nil {
		c.assignJournal.Close()
	}
	c.assignMu.Unlock()
	c.client.CloseIdleConnections()
}

// ProbeNow forces one synchronous probe round — tests and the serving
// layer's readiness path use it to observe fresh health.
func (c *Coordinator) ProbeNow() { c.prober.ProbeAll() }

// FlightStats returns the coordinator singleflight counters: leaders
// are dispatches that did work, followers coalesced onto one.
func (c *Coordinator) FlightStats() (leaders, followers uint64) {
	return c.flights.Stats()
}

// candidates returns the dispatch order for key: the sticky worker
// first when it is still available, then the key's ring owners that
// take new work. The second return is the ring-primary owner (health
// ignored), against which reassignment is measured.
func (c *Coordinator) candidates(key string) (cands []string, primary string) {
	owners := c.ring.Owners(key, len(c.opts.Workers))
	if len(owners) > 0 {
		primary = owners[0]
	}
	seen := map[string]bool{}
	c.assignMu.Lock()
	sticky := c.assign[key]
	c.assignMu.Unlock()
	if sticky != "" {
		if m := c.member[sticky]; m != nil && m.Available() {
			cands = append(cands, sticky)
			seen[sticky] = true
		}
	}
	for _, addr := range owners {
		if seen[addr] {
			continue
		}
		if m := c.member[addr]; m != nil && m.TakesNewWork() {
			cands = append(cands, addr)
			seen[addr] = true
		}
	}
	return cands, primary
}

// recordAssign journals a sticky assignment, compacting the journal
// once superseded records dominate it.
func (c *Coordinator) recordAssign(key, worker string) {
	c.assignMu.Lock()
	defer c.assignMu.Unlock()
	if c.assign[key] == worker {
		return
	}
	c.assign[key] = worker
	if c.assignJournal == nil {
		return
	}
	payload, _ := json.Marshal(assignRecord{Key: key, Worker: worker})
	if err := c.assignJournal.Append(payload); err != nil {
		log.Printf("cluster: journal assignment %s -> %s: %v", key, worker, err)
		return
	}
	c.assignRecords++
	if c.assignRecords > assignCompactFactor*len(c.assign) && c.assignRecords > 64 {
		dropped, err := c.assignJournal.Compact(lastPerKey)
		if err != nil {
			log.Printf("cluster: compact assignment journal: %v", err)
			return
		}
		c.assignRecords -= dropped
	}
}

// lastPerKey is the assignment journal's compaction policy: only the
// newest record per key survives, in first-seen order.
func lastPerKey(records [][]byte) [][]byte {
	latest := map[string]int{}
	order := []string{}
	for i, raw := range records {
		var rec assignRecord
		if json.Unmarshal(raw, &rec) != nil || rec.Key == "" {
			continue
		}
		if _, ok := latest[rec.Key]; !ok {
			order = append(order, rec.Key)
		}
		latest[rec.Key] = i
	}
	kept := make([][]byte, 0, len(order))
	for _, k := range order {
		kept = append(kept, records[latest[k]])
	}
	return kept
}

// RunSpec simulates one scenario spec on the cluster — the function
// the coordinator's sweep manager injects as Options.RunSpec. The
// returned diff and stats are exactly what a local engine run would
// produce, so the manager's summarize/rank path yields byte-identical
// leaderboards.
func (c *Coordinator) RunSpec(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
	fkey := FrameKey(c.opts.Scope, sp.Key())
	payload, err, shared := c.flights.Do(fkey, func() ([]byte, error) {
		return c.dispatchSpec(ctx, sp)
	})
	if shared {
		c.met.flightFollowers.Inc()
	} else {
		c.met.flightLeaders.Inc()
	}
	if err != nil {
		return nil, scenario.RunStats{}, err
	}
	frame, ok := decodeFrame(payload, sp.Key())
	if !ok {
		return nil, scenario.RunStats{}, fmt.Errorf("cluster: worker returned malformed frame for %s", sp.Key())
	}
	return frame.Diff, frame.Stats, nil
}

// dispatchSpec runs the retry-of-hedges loop for one spec and records
// the executing worker.
func (c *Coordinator) dispatchSpec(ctx context.Context, sp *scenario.Spec) ([]byte, error) {
	// Everything keys on the frame key — placement, stickiness, and
	// replication agree on one ring position per spec content.
	fkey := FrameKey(c.opts.Scope, sp.Key())
	replicaOwners := c.ring.Owners(fkey, c.opts.Replicas)
	body := func(self string) ([]byte, error) {
		var replicateTo []string
		for _, o := range replicaOwners {
			if o != self {
				replicateTo = append(replicateTo, o)
			}
		}
		return json.Marshal(specRequest{Spec: sp, ReplicateTo: replicateTo})
	}
	payload, executor, err := c.dispatch(ctx, fkey, func(ctx context.Context, addr string) ([]byte, error) {
		reqBody, err := body(addr)
		if err != nil {
			return nil, resilience.Permanent(err)
		}
		return c.post(ctx, addr+"/cluster/spec", reqBody)
	})
	if err != nil {
		return nil, err
	}
	if len(replicaOwners) > 0 && executor != replicaOwners[0] {
		// The spec ran somewhere other than its ring-primary owner —
		// either a sticky re-route or a health failover. Both are the
		// reassignments operators alert on during an incident.
		c.met.reassignments.Inc()
	}
	c.recordAssign(fkey, executor)
	return payload, nil
}

// DiffPayload renders one scenario's full diff document on the cluster
// — the serving layer proxies GET /api/scenarios/{id}/diff through
// here before falling back to local simulation.
func (c *Coordinator) DiffPayload(ctx context.Context, sp *scenario.Spec) ([]byte, error) {
	reqBody, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	payload, _, err := c.dispatch(ctx, sp.Key(), func(ctx context.Context, addr string) ([]byte, error) {
		return c.post(ctx, addr+"/cluster/diff", reqBody)
	})
	return payload, err
}

// ProxyGET fetches path from one of key's owners with the full hedged
// dispatch stack — the serving layer routes experiment reads through
// it so heavy table computation lands on the worker that owns (and
// has likely cached) the result.
func (c *Coordinator) ProxyGET(ctx context.Context, key, path string) ([]byte, error) {
	payload, _, err := c.dispatch(ctx, key, func(ctx context.Context, addr string) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+path, nil)
		if err != nil {
			return nil, resilience.Permanent(err)
		}
		return c.roundTrip(req)
	})
	return payload, err
}

// dispatch is the shared retry-of-hedges engine: each retry round
// snapshots the candidate list (health may have changed) and hedges
// the call across it; the winning worker's address is returned with
// the payload.
func (c *Coordinator) dispatch(ctx context.Context, key string, call func(ctx context.Context, addr string) ([]byte, error)) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.DispatchTimeout)
	defer cancel()
	start := time.Now()
	type winner struct {
		payload []byte
		addr    string
	}
	attempts := 0
	w, err := resilience.RetryValue(ctx, c.opts.Retry, func(ctx context.Context) (winner, error) {
		attempts++
		cands, _ := c.candidates(key)
		if len(cands) == 0 {
			// Every worker is down or draining. Retrying is pointless
			// within one backoff window only if the fleet is truly
			// gone; the prober may revive someone, so retry unless
			// this is the last attempt — RetryValue handles pacing.
			return winner{}, ErrNoWorkers
		}
		payload, i, err := resilience.Hedge(ctx, resilience.HedgePolicy{
			Delay:       c.opts.HedgeDelay,
			MaxAttempts: len(cands),
			OnHedge:     c.met.hedges.Inc,
		}, func(ctx context.Context, i int) ([]byte, error) {
			return call(ctx, cands[i])
		})
		if err != nil {
			return winner{}, err
		}
		return winner{payload: payload, addr: cands[i]}, nil
	})
	if attempts > 1 {
		c.met.retries.Add(uint64(attempts - 1))
	}
	c.met.dispatchSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		c.met.dispatchErrors.Inc()
		if errors.Is(err, ErrNoWorkers) {
			return nil, "", fmt.Errorf("%w (key %s)", ErrNoWorkers, key)
		}
		return nil, "", err
	}
	return w.payload, w.addr, nil
}

// post POSTs body and returns the response payload; non-200 statuses
// are errors carrying the worker's error document.
func (c *Coordinator) post(ctx context.Context, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.roundTrip(req)
}

// roundTrip executes one request, bounding and validating the reply.
func (c *Coordinator) roundTrip(req *http.Request) ([]byte, error) {
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := ""
		var doc map[string]string
		if json.Unmarshal(payload, &doc) == nil {
			msg = doc["error"]
		}
		return nil, fmt.Errorf("cluster: %s %s: status %d %s", req.Method, req.URL, resp.StatusCode, msg)
	}
	return payload, nil
}

// Snapshot reports ring membership and per-worker health for /readyz.
func (c *Coordinator) Snapshot() *Snapshot {
	snap := &Snapshot{
		Role:     "coordinator",
		Replicas: c.opts.Replicas,
	}
	for _, addr := range c.ring.Members() {
		m := c.member[addr]
		ws := WorkerStatus{
			Addr:          addr,
			State:         m.State().String(),
			EWMALatencyMs: m.EWMALatency() * 1000,
			Fails:         m.Fails(),
			LastError:     m.LastError(),
		}
		snap.Workers = append(snap.Workers, ws)
	}
	return snap
}

// Snapshot is the cluster section of the /readyz document — the ring
// as the reporting node sees it.
type Snapshot struct {
	Role     string `json:"role"`
	Replicas int    `json:"replicas,omitempty"`
	// Coordinator view: one entry per ring member.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Worker view.
	Self           string   `json:"self,omitempty"`
	Peers          []string `json:"peers,omitempty"`
	State          string   `json:"state,omitempty"`
	ReplicationLag int      `json:"replication_lag"`
}

// WorkerStatus is one worker's health as the coordinator sees it.
type WorkerStatus struct {
	Addr          string  `json:"addr"`
	State         string  `json:"state"`
	EWMALatencyMs float64 `json:"ewma_latency_ms"`
	Fails         int     `json:"fails,omitempty"`
	LastError     string  `json:"last_error,omitempty"`
}
