package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 32)
	b := NewRing([]string{"http://w3", "http://w1", "http://w2"}, 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ob := a.Owners(key, 3), b.Owners(key, 3)
		if len(oa) != len(ob) {
			t.Fatalf("key %s: owner counts differ: %v vs %v", key, oa, ob)
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %s: owners differ: %v vs %v", key, oa, ob)
			}
		}
	}
}

func TestRingOwnersDistinctAndCapped(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 16)
	owners := r.Owners("some-key", 10)
	if len(owners) != 3 {
		t.Fatalf("owners = %v, want all 3 distinct members", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %q in %v", o, owners)
		}
		seen[o] = true
	}
	if got := r.Owners("some-key", 0); got != nil {
		t.Fatalf("Owners(n=0) = %v, want nil", got)
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"http://w1", "http://w2", "http://w3"}
	r := NewRing(members, 0) // default vnodes
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("cframe-scope-spec-%d", i), 1)[0]]++
	}
	for _, m := range members {
		// Loose bound: no member owns less than half or more than
		// double its fair share.
		if counts[m] < keys/6 || counts[m] > keys*2/3 {
			t.Fatalf("member %s owns %d of %d keys — ring badly unbalanced: %v", m, counts[m], keys, counts)
		}
	}
}

func TestRingStableOwnershipAcrossRestart(t *testing.T) {
	// The ring is built from addresses only, so the same membership
	// always yields the same shard map — a returning worker reclaims
	// its keys.
	members := []string{"http://w1", "http://w2", "http://w3"}
	before := NewRing(members, 0)
	after := NewRing(members, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		if before.Owners(key, 1)[0] != after.Owners(key, 1)[0] {
			t.Fatalf("key %s changed owner across identical ring builds", key)
		}
	}
}

func TestLastPerKeyCompaction(t *testing.T) {
	recs := [][]byte{
		[]byte(`{"key":"a","worker":"w1"}`),
		[]byte(`{"key":"b","worker":"w1"}`),
		[]byte(`{"key":"a","worker":"w2"}`),
		[]byte(`not json`),
		[]byte(`{"key":"a","worker":"w3"}`),
	}
	kept := lastPerKey(recs)
	if len(kept) != 2 {
		t.Fatalf("kept %d records, want 2: %q", len(kept), kept)
	}
	if string(kept[0]) != `{"key":"a","worker":"w3"}` {
		t.Errorf("key a latest = %s, want w3 record", kept[0])
	}
	if string(kept[1]) != `{"key":"b","worker":"w1"}` {
		t.Errorf("key b = %s, want w1 record", kept[1])
	}
}
