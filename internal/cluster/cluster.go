// Package cluster is the fault-tolerant sharded serving tier: a
// coordinator consistent-hashes scenario and sweep work across a fixed
// set of HTTP-reachable worker replicas, probes their health, hedges
// slow dispatches, fails over dead workers, and replicates immutable
// result frames to ring successors so a restarted worker warms from a
// peer instead of re-simulating its shard.
//
// The design keeps one invariant above all others: a sweep's ranked
// leaderboard is byte-identical whether it ran standalone, on a healthy
// ring, or on a ring that lost a worker mid-sweep. The coordinator
// achieves that by reusing the local sweep engine wholesale — the
// manager still expands, journals, retries, and ranks exactly as in a
// single process — and injecting only the spec-simulation step, which
// dispatches to whichever worker the ring (and its health) selects.
// Workers return the raw diff and stats; summarization and ranking
// never leave the coordinator. See DESIGN.md §15.
package cluster

import (
	"fmt"
	"math"
	"sync/atomic"
)

// State is a worker's health-gated participation level, a three-state
// machine the prober drives:
//
//	StateActive   — in the ring, takes new work.
//	StateDraining — the worker asked to wind down: sticky assignments
//	                may still land on it, new keys go elsewhere.
//	StateDown     — failed FailThreshold consecutive probes: excluded
//	                entirely, its pending keys reassign to survivors.
//
// A down worker that answers a probe again re-enters at Active (or
// Draining, if that is what it reports): recovery is automatic, and
// the ring positions are static, so a returning worker reclaims
// exactly the shard it owned before.
type State int32

const (
	StateActive State = iota
	StateDraining
	StateDown
)

// String renders the state for /readyz and metrics labels.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Member is one worker replica as the coordinator sees it: a stable
// address plus mutable health. All fields are safe for concurrent use
// by the prober and the dispatch path.
type Member struct {
	// Addr is the worker's base URL, e.g. "http://10.0.0.7:8080".
	Addr string

	state   atomic.Int32
	fails   atomic.Int32  // consecutive probe failures
	ewma    atomic.Uint64 // smoothed probe latency, float64 seconds bits
	lastErr atomic.Value  // string: most recent probe error, "" when healthy
}

// NewMember returns an active member for addr.
func NewMember(addr string) *Member {
	m := &Member{Addr: addr}
	m.lastErr.Store("")
	return m
}

// State returns the member's current participation level.
func (m *Member) State() State { return State(m.state.Load()) }

// setState transitions the member; the prober is the only writer.
func (m *Member) setState(s State) { m.state.Store(int32(s)) }

// Available reports whether the member may receive any work at all
// (sticky or new). Down members are never available.
func (m *Member) Available() bool { return m.State() != StateDown }

// TakesNewWork reports whether the member accepts keys not already
// assigned to it. Draining members do not.
func (m *Member) TakesNewWork() bool { return m.State() == StateActive }

// EWMALatency returns the smoothed probe round-trip in seconds.
func (m *Member) EWMALatency() float64 {
	return math.Float64frombits(m.ewma.Load())
}

// observeLatency folds one probe sample into the EWMA (α = 0.3; the
// first sample seeds it directly).
func (m *Member) observeLatency(seconds float64) {
	for {
		old := m.ewma.Load()
		prev := math.Float64frombits(old)
		next := seconds
		if old != 0 {
			next = 0.3*seconds + 0.7*prev
		}
		if m.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// LastError returns the most recent probe failure, "" when healthy.
func (m *Member) LastError() string {
	s, _ := m.lastErr.Load().(string)
	return s
}

// Fails returns the consecutive probe-failure count.
func (m *Member) Fails() int { return int(m.fails.Load()) }
