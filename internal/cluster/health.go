package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// This file is the health plane: a Prober that periodically hits every
// member's /cluster/health endpoint, folds the round-trip into the
// member's EWMA latency, and drives the active → draining → down state
// machine. Health is deliberately decoupled from the ring — the ring
// says who *should* own a key, the prober says who currently *can* —
// so a worker's return needs no rebalance, only a state flip.

// healthDoc is the worker's /cluster/health response body.
type healthDoc struct {
	Status string `json:"status"` // "active" | "draining"
}

// ProberOptions configures a Prober.
type ProberOptions struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout for one probe request (default Interval, capped at 2s).
	Timeout time.Duration
	// FailThreshold is how many consecutive failed probes mark a
	// member down (default 3).
	FailThreshold int
	// Client issues the probes; nil uses a private client.
	Client *http.Client
	// OnTransition, when set, is called (from the probe goroutine)
	// whenever a member changes state. Metrics hook; may be nil.
	OnTransition func(m *Member, from, to State)
}

func (o ProberOptions) withDefaults() ProberOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
		if o.Timeout > 2*time.Second {
			o.Timeout = 2 * time.Second
		}
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Prober owns the health loop for a fixed member set.
type Prober struct {
	opts    ProberOptions
	members []*Member

	probes   func() // nil-safe metric hooks, set by instrument
	failures func()

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewProber returns a prober over members; call Start to begin.
func NewProber(members []*Member, opts ProberOptions) *Prober {
	return &Prober{
		opts:    opts.withDefaults(),
		members: members,
		stop:    make(chan struct{}),
	}
}

// Start launches the probe loop. An immediate first round runs before
// the ticker so dispatch never waits a full interval for initial
// health.
func (p *Prober) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.ProbeAll()
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.ProbeAll()
			}
		}
	}()
}

// Close stops the probe loop and waits for it.
func (p *Prober) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.opts.Client.CloseIdleConnections()
}

// ProbeAll probes every member concurrently and waits for the round to
// finish. Exposed so tests (and a coordinator that just saw a dispatch
// fail) can force a round instead of waiting out the interval.
func (p *Prober) ProbeAll() {
	var wg sync.WaitGroup
	for _, m := range p.members {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			p.probeOne(m)
		}(m)
	}
	wg.Wait()
}

// probeOne performs one health check and applies the state machine.
func (p *Prober) probeOne(m *Member) {
	if p.probes != nil {
		p.probes()
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	start := time.Now()
	doc, err := p.fetchHealth(ctx, m.Addr)
	if err != nil {
		if p.failures != nil {
			p.failures()
		}
		m.lastErr.Store(err.Error())
		fails := m.fails.Add(1)
		if int(fails) >= p.opts.FailThreshold {
			p.transition(m, StateDown)
		}
		return
	}
	m.observeLatency(time.Since(start).Seconds())
	m.fails.Store(0)
	m.lastErr.Store("")
	if doc.Status == "draining" {
		p.transition(m, StateDraining)
	} else {
		p.transition(m, StateActive)
	}
}

// transition applies a state change, firing the hook only on an actual
// edge.
func (p *Prober) transition(m *Member, to State) {
	from := m.State()
	if from == to {
		return
	}
	m.setState(to)
	if p.opts.OnTransition != nil {
		p.opts.OnTransition(m, from, to)
	}
}

// fetchHealth GETs the member's cluster health document.
func (p *Prober) fetchHealth(ctx context.Context, addr string) (*healthDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/health", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("probe %s: status %d", addr, resp.StatusCode)
	}
	var doc healthDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("probe %s: bad health document: %w", addr, err)
	}
	return &doc, nil
}
