package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"vzlens/internal/overload"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
)

// This file is the worker side of the tier: a handler bundle the HTTP
// layer mounts under /cluster/*. A worker simulates specs on demand,
// but only as a last resort — the read order for a spec frame is
// local store, then peers, then simulate — so a worker restarted with
// an empty disk warms its shard from whichever ring successor holds
// the replicas, with zero re-simulation. Frames are immutable and
// content-addressed (the key embeds the spec's content hash and the
// world configuration), which is what makes both the peer pull and the
// replicated PUT idempotent: ingesting the same frame twice is a
// no-op by construction.

// maxFrameBody bounds a frame or spec document on the wire. Diffs over
// a decade of monthly campaigns serialize well under this.
const maxFrameBody = 8 << 20

// SpecFrame is the immutable result of simulating one scenario spec —
// the unit of storage, replication, and peer warm-up. It carries the
// raw diff and stats; ranking (summarize) happens coordinator-side so
// leaderboards are computed by exactly one code path.
type SpecFrame struct {
	Spec  string            `json:"spec"` // scenario ID
	Key   string            `json:"key"`  // scenario content key (Spec.Key())
	Diff  *scenario.Diff    `json:"diff"`
	Stats scenario.RunStats `json:"stats"`
}

// FrameKey scopes a spec's frame to the world configuration: two
// workers (or a worker and the coordinator's store) only share frames
// when they simulate the same world.
func FrameKey(scope, specKey string) string {
	return "cframe-" + scope + "-" + specKey
}

// specRequest is the coordinator's POST /cluster/spec body.
type specRequest struct {
	Spec *scenario.Spec `json:"spec"`
	// ReplicateTo lists the ring successors the executing worker
	// should push the finished frame to (asynchronously; replication
	// is an optimization for warm restarts, never a durability
	// requirement — the executor's own store already has the frame).
	ReplicateTo []string `json:"replicate_to,omitempty"`
}

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Self is this worker's advertised base URL, excluded from peer
	// pulls. May be empty when Peers never includes the worker itself.
	Self string
	// Peers are the other workers' base URLs, tried in order on a
	// local frame miss.
	Peers []string
	// Store persists frames locally. Required.
	Store *resultstore.Store
	// Scope is the world-configuration scope baked into frame keys;
	// must match the coordinator's.
	Scope string
	// RunSpec simulates one spec locally. Required.
	RunSpec func(ctx context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error)
	// DiffPayload renders one scenario's full diff document locally
	// (the coordinator proxies GET /api/scenarios/{id}/diff here).
	// Optional; nil returns 501 from /cluster/diff.
	DiffPayload func(ctx context.Context, sp *scenario.Spec) ([]byte, error)
	// Client performs peer pulls and replication pushes; nil uses a
	// private client.
	Client *http.Client
	// PullTimeout bounds one peer pull (default 10s).
	PullTimeout time.Duration
	// ReplicationQueue bounds the async replication backlog (default
	// 256); a full queue drops the push and counts an error — the
	// frame is still durable locally.
	ReplicationQueue int
}

// Worker serves the /cluster/* endpoints for one replica.
type Worker struct {
	opts    WorkerOptions
	client  *http.Client
	flights overload.Group[string, []byte]

	draining atomic.Bool

	repl     chan replJob
	replWG   sync.WaitGroup
	stopOnce sync.Once

	met workerMetrics
}

type replJob struct {
	addr    string
	key     string
	payload []byte
}

// NewWorker returns a worker; mount it with Register and stop it with
// Close.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Store == nil || opts.RunSpec == nil {
		panic("cluster: NewWorker requires Store and RunSpec")
	}
	if opts.PullTimeout <= 0 {
		opts.PullTimeout = 10 * time.Second
	}
	if opts.ReplicationQueue <= 0 {
		opts.ReplicationQueue = 256
	}
	w := &Worker{opts: opts, client: opts.Client}
	if w.client == nil {
		w.client = &http.Client{}
	}
	w.repl = make(chan replJob, opts.ReplicationQueue)
	return w
}

// Start launches the replication loop. Call after Instrument so the
// loop observes its metric hooks.
func (w *Worker) Start() {
	w.replWG.Add(1)
	go w.replicationLoop()
}

// Register mounts the worker endpoints on mux.
func (w *Worker) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster/health", w.handleHealth)
	mux.HandleFunc("POST /cluster/spec", w.handleSpec)
	mux.HandleFunc("POST /cluster/diff", w.handleDiff)
	mux.HandleFunc("GET /cluster/frames/{key}", w.handleGetFrame)
	mux.HandleFunc("PUT /cluster/frames/{key}", w.handlePutFrame)
}

// Drain flips the worker to draining: the prober sees it within one
// interval, the coordinator stops assigning new keys, and in-flight
// work completes normally.
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports the drain flag.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Close stops the replication loop, flushing any queued pushes.
func (w *Worker) Close() {
	w.stopOnce.Do(func() { close(w.repl) })
	w.replWG.Wait()
	w.client.CloseIdleConnections()
}

// Snapshot reports the worker's cluster state for /readyz.
func (w *Worker) Snapshot() *Snapshot {
	state := StateActive
	if w.Draining() {
		state = StateDraining
	}
	return &Snapshot{
		Role:           "worker",
		Self:           w.opts.Self,
		Peers:          append([]string(nil), w.opts.Peers...),
		State:          state.String(),
		ReplicationLag: len(w.repl),
	}
}

func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	status := "active"
	if w.Draining() {
		status = "draining"
	}
	writeDoc(rw, http.StatusOK, healthDoc{Status: status})
}

// handleSpec simulates (or serves) one spec frame. Concurrent requests
// for the same frame coalesce, so even a coordinator retrying into a
// slow worker cannot double-simulate on it.
func (w *Worker) handleSpec(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxFrameBody))
	if err != nil {
		writeDoc(rw, http.StatusRequestEntityTooLarge, errDoc("spec request too large"))
		return
	}
	var req specRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Spec == nil {
		writeDoc(rw, http.StatusBadRequest, errDoc("malformed spec request"))
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeDoc(rw, http.StatusBadRequest, errDoc(err.Error()))
		return
	}
	fkey := FrameKey(w.opts.Scope, req.Spec.Key())
	payload, err, _ := w.flights.Do(fkey, func() ([]byte, error) {
		return w.framePayload(r.Context(), fkey, req.Spec, req.ReplicateTo)
	})
	if err != nil {
		w.met.specErrors.Inc()
		writeDoc(rw, http.StatusInternalServerError, errDoc(err.Error()))
		return
	}
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	rw.Write(payload) //nolint:errcheck // client gone is the only failure
}

// framePayload produces the frame bytes for one spec: local store,
// then peers, then simulate.
func (w *Worker) framePayload(ctx context.Context, fkey string, sp *scenario.Spec, replicateTo []string) ([]byte, error) {
	if stored, err := w.opts.Store.Get(fkey); err == nil {
		if _, ok := decodeFrame(stored, sp.Key()); ok {
			w.met.cacheHits.Inc()
			return stored, nil
		}
	}
	if payload := w.pullFromPeers(ctx, fkey, sp.Key()); payload != nil {
		return payload, nil
	}
	d, st, err := w.opts.RunSpec(ctx, sp)
	if err != nil {
		return nil, err
	}
	w.met.simulations.Inc()
	payload, err := json.Marshal(SpecFrame{Spec: sp.ID, Key: sp.Key(), Diff: d, Stats: st})
	if err != nil {
		return nil, fmt.Errorf("cluster: encode frame %s: %w", fkey, err)
	}
	if err := w.opts.Store.Put(fkey, payload); err != nil {
		// Not fatal: the response still carries the frame; only the
		// warm restart loses out.
		log.Printf("cluster: worker persist frame %s: %v", fkey, err)
	}
	for _, addr := range replicateTo {
		if addr == w.opts.Self || addr == "" {
			continue
		}
		select {
		case w.repl <- replJob{addr: addr, key: fkey, payload: payload}:
		default:
			w.met.replicationErrors.Inc()
		}
	}
	return payload, nil
}

// pullFromPeers tries each peer for the frame; a hit is validated,
// ingested locally, and returned. This is the warm-restart path: the
// restarted worker's first request for each shard key lands here and
// costs one HTTP GET instead of one simulation.
func (w *Worker) pullFromPeers(ctx context.Context, fkey, specKey string) []byte {
	for _, peer := range w.opts.Peers {
		if peer == w.opts.Self || peer == "" {
			continue
		}
		payload, err := w.fetchFrame(ctx, peer, fkey)
		if err != nil {
			continue
		}
		if _, ok := decodeFrame(payload, specKey); !ok {
			continue
		}
		w.met.warmPulls.Inc()
		if err := w.opts.Store.Put(fkey, payload); err != nil {
			log.Printf("cluster: worker ingest pulled frame %s: %v", fkey, err)
		}
		return payload
	}
	return nil
}

// fetchFrame GETs one frame from a peer.
func (w *Worker) fetchFrame(ctx context.Context, peer, fkey string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, w.opts.PullTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/cluster/frames/"+url.PathEscape(fkey), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: frame %s from %s: status %d", fkey, peer, resp.StatusCode)
	}
	return body, nil
}

// handleDiff renders a full scenario diff document locally — the
// coordinator's proxy target for GET /api/scenarios/{id}/diff.
func (w *Worker) handleDiff(rw http.ResponseWriter, r *http.Request) {
	if w.opts.DiffPayload == nil {
		writeDoc(rw, http.StatusNotImplemented, errDoc("diff rendering not configured"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxFrameBody))
	if err != nil {
		writeDoc(rw, http.StatusRequestEntityTooLarge, errDoc("spec too large"))
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		writeDoc(rw, http.StatusBadRequest, errDoc(err.Error()))
		return
	}
	payload, err := w.opts.DiffPayload(r.Context(), spec)
	if err != nil {
		writeDoc(rw, http.StatusInternalServerError, errDoc(err.Error()))
		return
	}
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	rw.Write(payload) //nolint:errcheck
}

// handleGetFrame serves a stored frame verbatim.
func (w *Worker) handleGetFrame(rw http.ResponseWriter, r *http.Request) {
	fkey := r.PathValue("key")
	payload, err := w.opts.Store.Get(fkey)
	if err != nil {
		writeDoc(rw, http.StatusNotFound, errDoc("no such frame"))
		return
	}
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	rw.Write(payload) //nolint:errcheck
}

// handlePutFrame ingests a replicated frame. Ingestion is idempotent:
// frames are content-addressed, so overwriting an existing entry with
// the same key rewrites identical bytes.
func (w *Worker) handlePutFrame(rw http.ResponseWriter, r *http.Request) {
	fkey := r.PathValue("key")
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxFrameBody))
	if err != nil {
		writeDoc(rw, http.StatusRequestEntityTooLarge, errDoc("frame too large"))
		return
	}
	if _, ok := decodeFrame(body, ""); !ok {
		writeDoc(rw, http.StatusBadRequest, errDoc("malformed frame"))
		return
	}
	if err := w.opts.Store.Put(fkey, body); err != nil {
		writeDoc(rw, http.StatusInternalServerError, errDoc(err.Error()))
		return
	}
	w.met.framesIngested.Inc()
	writeDoc(rw, http.StatusOK, map[string]string{"status": "ok"})
}

// replicationLoop pushes finished frames to ring successors in the
// background. Failures are counted, not retried: replication only
// accelerates a peer's warm restart, and the next simulation of the
// key on the successor would recreate the frame anyway.
func (w *Worker) replicationLoop() {
	defer w.replWG.Done()
	for job := range w.repl {
		ctx, cancel := context.WithTimeout(context.Background(), w.opts.PullTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			job.addr+"/cluster/frames/"+url.PathEscape(job.key),
			bytes.NewReader(job.payload))
		if err != nil {
			cancel()
			w.met.replicationErrors.Inc()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
			resp.Body.Close()
		}
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			w.met.replicationErrors.Inc()
			continue
		}
		w.met.framesReplicated.Inc()
	}
}

// decodeFrame validates frame bytes, optionally pinning the spec
// content key (specKey == "" skips the pin; the PUT path accepts any
// well-formed frame because its key is already content-scoped).
func decodeFrame(payload []byte, specKey string) (*SpecFrame, bool) {
	var f SpecFrame
	if err := json.Unmarshal(payload, &f); err != nil || f.Key == "" || f.Diff == nil {
		return nil, false
	}
	if specKey != "" && f.Key != specKey {
		return nil, false
	}
	return &f, true
}

// writeDoc is the worker's JSON response helper.
func writeDoc(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	rw.WriteHeader(status)
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		log.Printf("cluster: encode %T response: %v", v, err)
	}
}

func errDoc(msg string) map[string]string { return map[string]string{"error": msg} }
