package cluster

import (
	"vzlens/internal/obs"
	"vzlens/internal/resultstore"
)

// This file registers the vz_cluster_* metric families. Both halves of
// the tier hold nil-safe counters, so an un-instrumented coordinator
// or worker (unit tests, tools) runs at full speed with no registry.

// coordMetrics is the coordinator's instrument set.
type coordMetrics struct {
	reassignments   *obs.Counter
	hedges          *obs.Counter
	retries         *obs.Counter
	dispatchErrors  *obs.Counter
	transitions     *obs.Counter
	flightLeaders   *obs.Counter
	flightFollowers *obs.Counter
	dispatchSeconds *obs.Histogram
}

// Instrument registers the coordinator's metrics on reg, including
// per-state worker gauges and the prober's probe counters.
func (c *Coordinator) Instrument(reg *obs.Registry) {
	c.met = coordMetrics{
		reassignments: reg.Counter("vz_cluster_reassignments_total",
			"Specs executed by a worker other than their ring-primary owner."),
		hedges: reg.Counter("vz_cluster_hedges_total",
			"Latency hedges fired (backup dispatch launched while the primary was still silent)."),
		retries: reg.Counter("vz_cluster_dispatch_retries_total",
			"Extra dispatch rounds beyond each request's first (all candidates failed)."),
		dispatchErrors: reg.Counter("vz_cluster_dispatch_errors_total",
			"Dispatches that exhausted every candidate and retry."),
		transitions: reg.Counter("vz_cluster_state_transitions_total",
			"Worker health-state edges (active/draining/down)."),
		flightLeaders: reg.Counter("vz_cluster_flight_leaders_total",
			"Coordinator singleflight leaders: dispatches that did the work."),
		flightFollowers: reg.Counter("vz_cluster_flight_followers_total",
			"Coordinator singleflight followers: requests coalesced onto an in-flight dispatch."),
		dispatchSeconds: reg.Histogram("vz_cluster_dispatch_seconds",
			"End-to-end duration of one cluster dispatch (hedges and retries included).",
			obs.LatencyBuckets),
	}
	c.prober.probes = reg.Counter("vz_cluster_probes_total",
		"Worker health probes issued.").Inc
	c.prober.failures = reg.Counter("vz_cluster_probe_failures_total",
		"Worker health probes that failed.").Inc
	for _, state := range []State{StateActive, StateDraining, StateDown} {
		state := state
		reg.GaugeFunc("vz_cluster_workers",
			"Ring members currently in each health state.",
			func() float64 {
				n := 0
				for _, m := range c.member {
					if m.State() == state {
						n++
					}
				}
				return float64(n)
			}, obs.L("state", state.String()))
	}
	if c.assignJournal != nil {
		c.assignJournal.Instrument(resultstore.InstrumentCompactions(reg))
	}
}

// workerMetrics is the worker's instrument set.
type workerMetrics struct {
	simulations       *obs.Counter
	cacheHits         *obs.Counter
	warmPulls         *obs.Counter
	specErrors        *obs.Counter
	framesIngested    *obs.Counter
	framesReplicated  *obs.Counter
	replicationErrors *obs.Counter
}

// Instrument registers the worker's metrics on reg.
func (w *Worker) Instrument(reg *obs.Registry) {
	w.met = workerMetrics{
		simulations: reg.Counter("vz_cluster_spec_simulations_total",
			"Spec simulations actually executed on this worker (cache and peer misses)."),
		cacheHits: reg.Counter("vz_cluster_spec_cache_hits_total",
			"Spec requests served from this worker's local frame store."),
		warmPulls: reg.Counter("vz_cluster_warm_pulls_total",
			"Spec frames pulled from a peer instead of re-simulating (warm restart path)."),
		specErrors: reg.Counter("vz_cluster_spec_errors_total",
			"Spec requests that failed on this worker."),
		framesIngested: reg.Counter("vz_cluster_frames_ingested_total",
			"Replicated frames accepted via PUT /cluster/frames."),
		framesReplicated: reg.Counter("vz_cluster_frames_replicated_total",
			"Frames successfully pushed to a ring successor."),
		replicationErrors: reg.Counter("vz_cluster_replication_errors_total",
			"Frame replication pushes dropped or failed."),
	}
	reg.GaugeFunc("vz_cluster_replication_lag",
		"Frames queued for replication and not yet pushed.",
		func() float64 { return float64(len(w.repl)) })
}

// SimulationCount returns the number of spec simulations this worker
// has executed — the integration soak's zero-re-simulation assertion
// reads it directly.
func (w *Worker) SimulationCount() uint64 { return w.met.simulations.Value() }

// WarmPullCount returns the number of frames this worker pulled from
// peers instead of simulating.
func (w *Worker) WarmPullCount() uint64 { return w.met.warmPulls.Value() }
