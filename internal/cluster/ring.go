package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// This file is the consistent-hash ring that maps content keys onto
// workers. Each worker contributes vnodes points (its address hashed
// with a per-vnode suffix) to a sorted circle; a key routes to the
// first point clockwise of its own hash. Vnodes smooth the key
// distribution across a small fixed membership, and because the ring
// is built purely from addresses — never from health — a worker that
// dies and returns reclaims exactly the shard it owned, which is what
// lets it warm from the successors that held its replicas meanwhile.

// defaultVNodes gives each worker 64 points on the circle: with the
// 2–5 workers a test ring or small deployment has, that keeps the
// per-worker key share within a few percent of even.
const defaultVNodes = 64

// Ring is an immutable consistent-hash ring over a fixed membership.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members (order-insensitive: the ring
// sorts them so every node building from the same membership set
// agrees on ownership). vnodes <= 0 selects the default.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r := &Ring{members: sorted}
	for i, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("%s#%d", m, v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.member < q.member // deterministic tie-break
	})
	return r
}

// Members returns the ring's membership, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owners returns up to n distinct members in preference order for key:
// the key's primary owner first, then its ring successors. Successors
// are exactly where the primary's frames replicate, so the failover
// order and the replica placement are the same list.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			owners = append(owners, r.members[p.member])
		}
	}
	return owners
}

// hashKey is FNV-64a: fast, dependency-free, and plenty uniform for
// placement (this is not an adversarial setting — keys are our own
// content hashes).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
