package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vzlens/internal/obs"
	"vzlens/internal/resilience"
	"vzlens/internal/resultstore"
	"vzlens/internal/scenario"
)

// testSpec returns a distinct valid scenario spec per n.
func testSpec(n uint32) *scenario.Spec {
	return &scenario.Spec{
		ID:  "t",
		Ops: []scenario.Op{{Op: scenario.OpDepeer, ASN: 1000 + n}},
	}
}

// testDiff is a deterministic non-trivial diff for fake simulations.
func testDiff() *scenario.Diff { return &scenario.Diff{} }

// newTestWorker builds a Worker with a fake counting RunSpec, mounts
// it on an httptest server, and returns both plus the simulation
// counter.
func newTestWorker(t *testing.T, scope string, peers []string) (*Worker, *httptest.Server, *atomic.Int32) {
	t.Helper()
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	w := NewWorker(WorkerOptions{
		Peers: peers,
		Store: store,
		Scope: scope,
		RunSpec: func(_ context.Context, sp *scenario.Spec) (*scenario.Diff, scenario.RunStats, error) {
			runs.Add(1)
			return testDiff(), scenario.RunStats{TraceMonthsRecomputed: 1}, nil
		},
	})
	w.Instrument(obs.NewRegistry())
	w.Start()
	mux := http.NewServeMux()
	w.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() { srv.Close(); w.Close() })
	return w, srv, &runs
}

func postSpec(t *testing.T, addr string, sp *scenario.Spec) (*SpecFrame, int) {
	t.Helper()
	body, _ := json.Marshal(specRequest{Spec: sp})
	resp, err := http.Post(addr+"/cluster/spec", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frame SpecFrame
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
			t.Fatal(err)
		}
	}
	return &frame, resp.StatusCode
}

func TestWorkerSimulatesOnceThenServesCache(t *testing.T) {
	_, srv, runs := newTestWorker(t, "s", nil)
	sp := testSpec(1)
	for i := 0; i < 3; i++ {
		frame, code := postSpec(t, srv.URL, sp)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if frame.Key != sp.Key() {
			t.Fatalf("request %d: frame key %q, want %q", i, frame.Key, sp.Key())
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("simulations = %d, want 1 (repeat requests must hit the frame cache)", n)
	}
}

func TestWorkerWarmsFromPeer(t *testing.T) {
	scope := "warm"
	_, srvA, runsA := newTestWorker(t, scope, nil)
	wB, srvB, runsB := newTestWorker(t, scope, []string{srvA.URL})
	sp := testSpec(2)

	// A simulates the spec; B then serves the same spec by pulling
	// A's frame instead of re-simulating.
	if _, code := postSpec(t, srvA.URL, sp); code != http.StatusOK {
		t.Fatalf("A: status %d", code)
	}
	if _, code := postSpec(t, srvB.URL, sp); code != http.StatusOK {
		t.Fatalf("B: status %d", code)
	}
	if n := runsB.Load(); n != 0 {
		t.Fatalf("B simulated %d times, want 0 (peer pull)", n)
	}
	if n := wB.WarmPullCount(); n != 1 {
		t.Fatalf("B warm pulls = %d, want 1", n)
	}
	if n := runsA.Load(); n != 1 {
		t.Fatalf("A simulations = %d, want 1", n)
	}
}

func TestWorkerFramePutGet(t *testing.T) {
	_, srv, _ := newTestWorker(t, "pg", nil)
	payload, _ := json.Marshal(SpecFrame{Spec: "t", Key: "t-abc", Diff: testDiff()})
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/cluster/frames/cframe-pg-t-abc", strings.NewReader(string(payload)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: status %d", resp.StatusCode)
	}
	got, err := http.Get(srv.URL + "/cluster/frames/cframe-pg-t-abc")
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	var frame SpecFrame
	if err := json.NewDecoder(got.Body).Decode(&frame); err != nil || frame.Key != "t-abc" {
		t.Fatalf("GET round-trip: frame %+v, err %v", frame, err)
	}

	// Malformed frames are rejected, and misses are 404.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/cluster/frames/bad", strings.NewReader("not json"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed PUT: status %d, want 400", resp.StatusCode)
	}
	missing, err := http.Get(srv.URL + "/cluster/frames/nope")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing frame: status %d, want 404", missing.StatusCode)
	}
}

func TestProberStateMachine(t *testing.T) {
	var mode atomic.Value // "active" | "draining" | "fail"
	mode.Store("active")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == "fail" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		writeDoc(w, http.StatusOK, healthDoc{Status: mode.Load().(string)})
	}))
	defer srv.Close()

	m := NewMember(srv.URL)
	p := NewProber([]*Member{m}, ProberOptions{FailThreshold: 2, Interval: time.Hour})
	defer p.Close()

	p.ProbeAll()
	if m.State() != StateActive {
		t.Fatalf("after healthy probe: state %s, want active", m.State())
	}
	if m.EWMALatency() <= 0 {
		t.Fatal("EWMA latency not observed")
	}

	mode.Store("draining")
	p.ProbeAll()
	if m.State() != StateDraining {
		t.Fatalf("after draining probe: state %s, want draining", m.State())
	}

	mode.Store("fail")
	p.ProbeAll()
	if m.State() != StateDraining {
		t.Fatalf("one failure below threshold flipped state to %s", m.State())
	}
	p.ProbeAll()
	if m.State() != StateDown {
		t.Fatalf("after %d failures: state %s, want down", m.Fails(), m.State())
	}
	if m.LastError() == "" {
		t.Fatal("down member carries no last error")
	}

	// Recovery: one healthy probe brings it straight back.
	mode.Store("active")
	p.ProbeAll()
	if m.State() != StateActive {
		t.Fatalf("after recovery probe: state %s, want active", m.State())
	}
	if m.Fails() != 0 || m.LastError() != "" {
		t.Fatalf("recovery did not clear failure state: fails=%d lastErr=%q", m.Fails(), m.LastError())
	}
}

// newTestCoordinator builds a coordinator over the given worker URLs
// with fast probe/retry settings, probes once, and cleans up.
func newTestCoordinator(t *testing.T, scope string, store *resultstore.Store, workers ...string) *Coordinator {
	t.Helper()
	c := NewCoordinator(CoordinatorOptions{
		Workers:       workers,
		Scope:         scope,
		Store:         store,
		Replicas:      2,
		HedgeDelay:    50 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		FailThreshold: 2,
		Retry: resilience.Policy{
			MaxAttempts: 3, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 50 * time.Millisecond, Multiplier: 2,
		},
	})
	c.Instrument(obs.NewRegistry())
	c.Start()
	t.Cleanup(c.Close)
	return c
}

func TestCoordinatorDispatchAndFailover(t *testing.T) {
	scope := "fo"
	_, srvA, runsA := newTestWorker(t, scope, nil)
	_, srvB, runsB := newTestWorker(t, scope, nil)
	c := newTestCoordinator(t, scope, nil, srvA.URL, srvB.URL)
	c.ProbeNow()

	sp := testSpec(7)
	d, st, err := c.RunSpec(context.Background(), sp)
	if err != nil || d == nil {
		t.Fatalf("healthy dispatch: %v", err)
	}
	if st.TraceMonthsRecomputed != 1 {
		t.Fatalf("stats did not round-trip: %+v", st)
	}
	if runsA.Load()+runsB.Load() != 1 {
		t.Fatalf("total simulations = %d, want 1", runsA.Load()+runsB.Load())
	}

	// Kill the spec's primary owner; dispatch of a fresh spec owned by
	// it must fail over to the survivor and count a reassignment.
	before := c.met.reassignments.Value()
	var killed *httptest.Server
	var sp2 *scenario.Spec
	for n := uint32(100); ; n++ {
		cand := testSpec(n)
		primary := c.ring.Owners(FrameKey(scope, cand.Key()), 1)[0]
		if primary == srvA.URL {
			killed, sp2 = srvA, cand
			break
		}
	}
	killed.Close()
	if _, _, err := c.RunSpec(context.Background(), sp2); err != nil {
		t.Fatalf("failover dispatch: %v", err)
	}
	if got := c.met.reassignments.Value(); got != before+1 {
		t.Fatalf("reassignments = %d, want %d", got, before+1)
	}
}

func TestCoordinatorSingleflightCoalesces(t *testing.T) {
	scope := "sf"
	_, srv, runs := newTestWorker(t, scope, nil)
	c := newTestCoordinator(t, scope, nil, srv.URL)
	c.ProbeNow()

	sp := testSpec(9)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, _, err := c.RunSpec(context.Background(), sp)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent dispatch: %v", err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("simulations = %d, want 1 (coordinator + worker singleflight)", got)
	}
	leaders, followers := c.FlightStats()
	if leaders+followers != n {
		t.Fatalf("flight stats %d+%d do not cover %d requests", leaders, followers, n)
	}
}

func TestCoordinatorNoWorkers(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead from the start
	c := newTestCoordinator(t, "nw", nil, srv.URL)
	c.ProbeNow()
	c.ProbeNow() // two failed rounds: threshold reached, marked down

	_, _, err := c.RunSpec(context.Background(), testSpec(3))
	if err == nil || !strings.Contains(err.Error(), ErrNoWorkers.Error()) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestCoordinatorStickyAssignmentsResume(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scope := "sticky"
	_, srv, _ := newTestWorker(t, scope, nil)

	c1 := NewCoordinator(CoordinatorOptions{Workers: []string{srv.URL}, Scope: scope, Store: store})
	c1.recordAssign("cframe-sticky-k1", srv.URL)
	c1.recordAssign("cframe-sticky-k2", srv.URL)
	c1.Close()

	c2 := NewCoordinator(CoordinatorOptions{Workers: []string{srv.URL}, Scope: scope, Store: store})
	defer c2.Close()
	c2.assignMu.Lock()
	got := len(c2.assign)
	worker := c2.assign["cframe-sticky-k1"]
	c2.assignMu.Unlock()
	if got != 2 || worker != srv.URL {
		t.Fatalf("restored %d assignments (k1 -> %q), want 2 with k1 -> %q", got, worker, srv.URL)
	}
}

func TestSnapshotShapes(t *testing.T) {
	scope := "snap"
	w, srv, _ := newTestWorker(t, scope, []string{"http://peer"})
	c := newTestCoordinator(t, scope, nil, srv.URL)
	c.ProbeNow()

	cs := c.Snapshot()
	if cs.Role != "coordinator" || len(cs.Workers) != 1 || cs.Workers[0].State != "active" {
		t.Fatalf("coordinator snapshot: %+v", cs)
	}
	if cs.Workers[0].EWMALatencyMs <= 0 {
		t.Fatalf("coordinator snapshot missing probe latency: %+v", cs.Workers[0])
	}
	w.Drain()
	ws := w.Snapshot()
	if ws.Role != "worker" || ws.State != "draining" || len(ws.Peers) != 1 {
		t.Fatalf("worker snapshot: %+v", ws)
	}
}
