package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// usable; all methods are nil-receiver safe no-ops, so a package can
// hold un-registered counters at zero cost until instrumented.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value, stored as float64 bits in
// one atomic word.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d (CAS loop; gauges are not increment-hot).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets is the fixed duration layout (seconds): 100µs to 30s,
// roughly ×2.5 per step. It brackets everything this system times, from
// a resultstore fsync to a cold full-campaign simulation.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets is the fixed byte-size layout: 256 B to 64 MiB, ×4 per
// step — entry payloads, campaign JSON dumps, archive reads.
var SizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
}

// Histogram counts observations into a fixed set of buckets. Observe is
// lock-free and allocation-free: a linear scan over the (small, fixed)
// bound slice, one atomic add for the bucket, one for the count, and a
// CAS loop for the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus convention.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns sum, count, and *cumulative* bucket counts (the
// Prometheus le semantics), one entry per bound plus +Inf.
func (h *Histogram) snapshot() (sum float64, count uint64, cumulative []uint64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return h.Sum(), h.count.Load(), cumulative
}
