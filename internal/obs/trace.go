package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// TraceID identifies one request across every layer it touches.
type TraceID uint64

// String renders the ID as 16 hex digits, the form logged and returned
// in the X-Trace-Id response header.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Tracer mints trace IDs and writes finished spans as structured slog
// JSON lines. One Tracer is shared by every request; it is safe for
// concurrent use (slog handlers serialize their own writes).
type Tracer struct {
	log  *slog.Logger
	next atomic.Uint64
	seed uint64
}

// NewTracer returns a Tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return NewTracerLogger(slog.New(slog.NewJSONHandler(w, nil)))
}

// NewTracerLogger returns a Tracer emitting through an existing logger.
func NewTracerLogger(l *slog.Logger) *Tracer {
	return &Tracer{log: l, seed: uint64(time.Now().UnixNano())}
}

// newID mints a process-unique ID: a monotonic counter mixed through
// splitmix64 with a per-process seed, so IDs from concurrent processes
// don't collide in a merged log and successive IDs share no prefix.
func (t *Tracer) newID() uint64 {
	x := t.seed ^ t.next.Add(1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ctxKey int

const (
	ctxKeyTracer ctxKey = iota
	ctxKeySpan
	ctxKeyTraceID
)

// WithTracer returns a context carrying t; StartSpan on that context
// (and its descendants) emits through t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKeyTracer, t)
}

// TracerFrom extracts the context's Tracer, nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKeyTracer).(*Tracer)
	return t
}

// TraceIDFrom returns the trace ID the context's innermost span belongs
// to, or the ID planted by WithTraceID, or false when untraced.
func TraceIDFrom(ctx context.Context) (TraceID, bool) {
	if s, ok := ctx.Value(ctxKeySpan).(*Span); ok && s != nil {
		return s.trace, true
	}
	if id, ok := ctx.Value(ctxKeyTraceID).(TraceID); ok {
		return id, true
	}
	return 0, false
}

// WithTraceID plants an externally supplied trace ID (e.g. parsed from
// a request header) for the next StartSpan to adopt.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, ctxKeyTraceID, id)
}

// Span is one timed operation. Spans nest through the context: a span
// started from a context that already carries one becomes its child,
// inheriting the trace ID. A nil *Span is valid and inert, so code can
// instrument unconditionally and pay nothing when tracing is off.
type Span struct {
	t      *Tracer
	name   string
	trace  TraceID
	id     uint64
	parent uint64
	start  time.Time
	attrs  []slog.Attr
}

// StartSpan opens a span named name. When the context carries no
// Tracer it returns the context unchanged and a nil span. The returned
// context carries the new span; pass it down so children nest.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t, name: name, id: t.newID(), start: time.Now()}
	if parent, ok := ctx.Value(ctxKeySpan).(*Span); ok && parent != nil {
		s.trace = parent.trace
		s.parent = parent.id
	} else if id, ok := ctx.Value(ctxKeyTraceID).(TraceID); ok {
		s.trace = id
	} else {
		s.trace = TraceID(t.newID())
	}
	return context.WithValue(ctx, ctxKeySpan, s), s
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// SetAttr attaches a key/value recorded when the span ends.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, slog.Any(key, value))
}

// End stamps the span's duration from its monotonic start time and
// emits one JSON line: msg="span", trace/span/parent IDs, name, and
// dur_us, plus any attributes. End is idempotent in effect only in the
// sense that a nil span no-ops; call it exactly once, normally deferred.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	attrs := make([]slog.Attr, 0, 5+len(s.attrs))
	attrs = append(attrs,
		slog.String("trace", s.trace.String()),
		slog.String("span", fmt.Sprintf("%016x", s.id)),
		slog.String("name", s.name),
		slog.Int64("dur_us", dur.Microseconds()),
	)
	if s.parent != 0 {
		attrs = append(attrs, slog.String("parent", fmt.Sprintf("%016x", s.parent)))
	}
	attrs = append(attrs, s.attrs...)
	s.t.log.LogAttrs(context.Background(), slog.LevelInfo, "span", attrs...)
}
