// Package obs is the reproduction's observability layer: an
// allocation-conscious metrics registry (atomic counters, gauges, and
// fixed-bucket histograms rendered in Prometheus text format and as
// expvar-style JSON), a lightweight span/trace facility that emits
// structured slog JSON lines with per-request trace IDs, and a debug
// mux that keeps /debug/pprof off the public listener.
//
// Design rules, in order:
//
//  1. The increment path allocates nothing and takes no locks: every
//     metric is a fixed set of atomics, and labeled children are
//     materialized at registration time, never on the hot path.
//  2. Every metric method is nil-receiver safe, so instrumented
//     packages pay a nil check (and nothing else) until someone wires
//     a Registry in.
//  3. Rendering is cold-path: WritePrometheus walks the registry under
//     its registration lock and loads each atomic once.
//
// See DESIGN.md §11 for metric naming and the trace schema.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Label is one Prometheus-style key="value" pair. Labels are fixed at
// registration: a labeled family fans out into pre-built children, so
// incrementing a labeled counter is exactly as cheap as a bare one.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instance inside a family.
type child struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups all children registered under one metric name.
type family struct {
	name string
	help string
	kind metricKind
	kids []*child
}

// Registry holds named metrics and renders them. Registration takes a
// lock; reading and incrementing registered metrics never does.
// Registering the same name and label set twice returns the same
// metric, so independent layers may instrument idempotently.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// lookup finds or creates the family and child for (name, labels),
// enforcing kind consistency. A nil registry returns nil, so callers
// can instrument unconditionally.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *child {
	if r == nil {
		return nil
	}
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l.Key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %s, re-registered as %s", name, f.kind, kind))
	}
	for _, c := range f.kids {
		if sameLabels(c.labels, labels) {
			return c
		}
	}
	c := &child{labels: append([]Label(nil), labels...)}
	f.kids = append(f.kids, c)
	return c
}

func sameLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustValidName panics on a name Prometheus would reject; metric names
// are compile-time constants, so this is a programmer error, not input.
func mustValidName(s string) {
	if s == "" {
		panic("obs: empty metric or label name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				panic("obs: metric name starts with a digit: " + s)
			}
		default:
			panic("obs: invalid metric or label name: " + s)
		}
	}
}

// Counter registers (or finds) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.lookup(name, help, kindCounter, labels)
	if c == nil {
		return nil
	}
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge registers (or finds) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.lookup(name, help, kindGauge, labels)
	if c == nil {
		return nil
	}
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// GaugeFunc registers a gauge whose value is computed at render time —
// the natural fit for snapshot-style stats (queue depth, cache sizes)
// that another component already tracks.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.lookup(name, help, kindGauge, labels)
	if c == nil {
		return
	}
	c.fn = fn
}

// Histogram registers (or finds) a histogram with the given fixed
// bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s: bucket bounds not strictly increasing at %d", name, i))
		}
	}
	c := r.lookup(name, help, kindHistogram, labels)
	if c == nil {
		return nil
	}
	if c.hist == nil {
		c.hist = newHistogram(buckets)
	}
	return c.hist
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as one expvar-style JSON document.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, r.ExpvarVar().String())
	})
}

// ExpvarVar adapts the registry to the expvar interface; publish it
// with expvar.Publish to surface metrics on /debug/vars.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.snapshot() })
}

// PublishExpvar publishes the registry under name on the process-wide
// expvar page, once; republishing the same name is a no-op (expvar
// itself would panic).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.ExpvarVar())
}

// snapshot flattens every metric to a JSON-friendly value keyed by
// name{labels}.
func (r *Registry) snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	for _, f := range r.families {
		for _, c := range f.kids {
			key := f.name + formatLabels(c.labels)
			switch {
			case c.counter != nil:
				out[key] = c.counter.Value()
			case c.fn != nil:
				out[key] = c.fn()
			case c.gauge != nil:
				out[key] = c.gauge.Value()
			case c.hist != nil:
				sum, count, buckets := c.hist.snapshot()
				doc := map[string]any{"sum": sum, "count": count}
				bs := make(map[string]uint64, len(buckets))
				for i, b := range c.hist.bounds {
					bs[formatFloat(b)] = buckets[i]
				}
				bs["+Inf"] = buckets[len(buckets)-1]
				doc["buckets"] = bs
				out[key] = doc
			}
		}
	}
	return out
}

// Names returns the registered family names, sorted — handy in tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
