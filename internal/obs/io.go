package obs

import "io"

// CountingReader counts bytes as they flow through an ingestion or
// parsing path. Bytes land in C (nil-safe), so parsers can expose
// byte throughput without knowing whether anyone is watching.
type CountingReader struct {
	R io.Reader
	C *Counter
}

// Read implements io.Reader.
func (cr *CountingReader) Read(p []byte) (int, error) {
	n, err := cr.R.Read(p)
	if n > 0 {
		cr.C.Add(uint64(n))
	}
	return n, err
}

// CountingWriter mirrors CountingReader for write paths.
type CountingWriter struct {
	W io.Writer
	C *Counter
}

// Write implements io.Writer.
func (cw *CountingWriter) Write(p []byte) (int, error) {
	n, err := cw.W.Write(p)
	if n > 0 {
		cw.C.Add(uint64(n))
	}
	return n, err
}
