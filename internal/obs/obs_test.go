package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value() = %d, want 42", got)
	}
	if again := reg.Counter("test_total", "help"); again != c {
		t.Error("re-registering the same counter returned a different instance")
	}
}

func TestLabeledChildrenAreDistinct(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("reqs_total", "h", L("class", "a"))
	b := reg.Counter("reqs_total", "h", L("class", "b"))
	if a == b {
		t.Fatal("different label values returned the same child")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("incrementing one child leaked into its sibling")
	}
	if again := reg.Counter("reqs_total", "h", L("class", "a")); again != a {
		t.Error("same label set returned a different child")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mixed", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("mixed", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "h")
		}()
	}
	// The valid edge cases must not panic.
	reg := NewRegistry()
	reg.Counter("_leading_underscore", "h")
	reg.Counter("ns:subsystem:name", "h")
	reg.Counter("x9", "h")
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "h")
	g := reg.Gauge("x", "h")
	h := reg.Histogram("x_seconds", "h", LatencyBuckets)
	reg.GaugeFunc("x_fn", "h", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Error("nil registry rendered output")
	}
	if reg.Names() != nil || reg.snapshot() != nil {
		t.Error("nil registry introspection must return nil")
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "h")
	g.Set(4.5)
	g.Add(-1.5)
	if got := g.Value(); got != 3 {
		t.Errorf("Value() = %v, want 3", got)
	}
}

// TestHistogramBoundaries pins the le semantics: an observation equal
// to a bound lands in that bound's bucket (Prometheus buckets are
// less-than-or-equal), one above it spills to the next, and anything
// beyond the last bound lands in +Inf only.
func TestHistogramBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 4.0, 4.0001, 100} {
		h.Observe(v)
	}
	sum, count, cum := h.snapshot()
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
	// le=1: {0.5, 1.0}; le=2: +{1.0001, 2.0}; le=4: +{4.0}; +Inf: +{4.0001, 100}
	want := []uint64{2, 4, 5, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	wantSum := 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 + 4.0001 + 100
	if diff := sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bucket bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "h", []float64{1, 1})
}

// TestConcurrentIncrements hammers every metric type from many
// goroutines; run under -race this doubles as the data-race proof, and
// the totals prove no increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "h")
	g := reg.Gauge("g", "h")
	h := reg.Histogram("h_seconds", "h", []float64{0.5})
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	// Render concurrently with the increments to prove the cold path
	// does not race the hot path.
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	wg.Wait()
	const total = goroutines * per
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if want := float64(total) * 0.25; h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vz_reqs_total", "Requests.", L("class", "api")).Add(3)
	reg.Gauge("vz_depth", "Queue depth.").Set(2.5)
	reg.GaugeFunc("vz_fn", "Computed.", func() float64 { return 7 })
	h := reg.Histogram("vz_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition format", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP vz_reqs_total Requests.",
		"# TYPE vz_reqs_total counter",
		`vz_reqs_total{class="api"} 3`,
		"# TYPE vz_depth gauge",
		"vz_depth 2.5",
		"vz_fn 7",
		"# TYPE vz_lat_seconds histogram",
		`vz_lat_seconds_bucket{le="0.1"} 1`,
		`vz_lat_seconds_bucket{le="1"} 2`,
		`vz_lat_seconds_bucket{le="+Inf"} 3`,
		"vz_lat_seconds_sum 5.55",
		"vz_lat_seconds_count 3",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("rendering is missing %q\nfull body:\n%s", want, body)
		}
	}
}

// TestPrometheusEscaping pins the exposition-format escape rules: help
// text escapes backslash and newline; label values additionally escape
// double quotes.
func TestPrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "line one\nback\\slash", L("path", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	body := buf.String()
	if !strings.Contains(body, `# HELP esc_total line one\nback\\slash`) {
		t.Errorf("help not escaped:\n%s", body)
	}
	if !strings.Contains(body, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", body)
	}
	// Every rendered line must stay a single physical line.
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
	}
}

func TestSnapshotAndJSONHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "h", L("k", "v")).Add(5)
	reg.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	rec := httptest.NewRecorder()
	reg.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("JSON handler produced invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if got, ok := doc[`c_total{k="v"}`].(float64); !ok || got != 5 {
		t.Errorf("counter in JSON = %v, want 5", doc[`c_total{k="v"}`])
	}
	hist, ok := doc["h_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing from JSON: %v", doc)
	}
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 0.5 {
		t.Errorf("histogram doc = %v", hist)
	}
}

func TestCountingReaderWriter(t *testing.T) {
	reg := NewRegistry()
	rc := reg.Counter("read_bytes_total", "h")
	wc := reg.Counter("write_bytes_total", "h")
	var sink bytes.Buffer
	cw := &CountingWriter{W: &sink, C: wc}
	cw.Write([]byte("hello"))
	cr := &CountingReader{R: strings.NewReader("world!"), C: rc}
	buf := make([]byte, 16)
	for {
		if _, err := cr.Read(buf); err != nil {
			break
		}
	}
	if wc.Value() != 5 {
		t.Errorf("write bytes = %d, want 5", wc.Value())
	}
	if rc.Value() != 6 {
		t.Errorf("read bytes = %d, want 6", rc.Value())
	}
	// Nil counters must pass bytes through untouched.
	nilw := &CountingWriter{W: &sink}
	if _, err := nilw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

// spanLine is the emitted span schema (DESIGN.md §11).
type spanLine struct {
	Msg    string `json:"msg"`
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent"`
	Name   string `json:"name"`
	DurUS  int64  `json:"dur_us"`
	Month  string `json:"month"`
}

func decodeSpans(t *testing.T, buf *bytes.Buffer) []spanLine {
	t.Helper()
	var out []spanLine
	dec := json.NewDecoder(buf)
	for dec.More() {
		var s spanLine
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("span output is not JSON lines: %v", err)
		}
		out = append(out, s)
	}
	return out
}

// TestSpanNesting proves the trace facility's core contract: children
// inherit the root's trace ID, record their parent span ID, and each
// span emits exactly one line with a plausible duration.
func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "http.request")
	if root == nil {
		t.Fatal("StartSpan returned nil with a tracer in context")
	}
	cctx, child := StartSpan(ctx, "campaign.trace")
	_, grandchild := StartSpan(cctx, "campaign.month")
	grandchild.SetAttr("month", "2023-12")
	grandchild.End()
	child.End()
	root.End()

	spans := decodeSpans(t, &buf)
	if len(spans) != 3 {
		t.Fatalf("got %d span lines, want 3", len(spans))
	}
	byName := map[string]spanLine{}
	for _, s := range spans {
		if s.Msg != "span" {
			t.Errorf("msg = %q, want span", s.Msg)
		}
		byName[s.Name] = s
	}
	r, c, g := byName["http.request"], byName["campaign.trace"], byName["campaign.month"]
	if r.Trace == "" || c.Trace != r.Trace || g.Trace != r.Trace {
		t.Errorf("trace IDs do not propagate: root=%q child=%q grandchild=%q", r.Trace, c.Trace, g.Trace)
	}
	if r.Parent != "" {
		t.Errorf("root has parent %q", r.Parent)
	}
	if c.Parent != r.Span {
		t.Errorf("child parent = %q, want root span %q", c.Parent, r.Span)
	}
	if g.Parent != c.Span {
		t.Errorf("grandchild parent = %q, want child span %q", g.Parent, c.Span)
	}
	if g.Month != "2023-12" {
		t.Errorf("attr month = %q, want 2023-12", g.Month)
	}
	if g.DurUS < 0 {
		t.Errorf("dur_us = %d, want >= 0", g.DurUS)
	}
	if id, ok := TraceIDFrom(cctx); !ok || id.String() != r.Trace {
		t.Errorf("TraceIDFrom = %v/%v, want %s", id, ok, r.Trace)
	}
}

// TestSpanWithoutTracer proves the off switch: no tracer in context
// means nil spans, and every span method is a safe no-op.
func TestSpanWithoutTracer(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "anything")
	if span != nil {
		t.Fatal("StartSpan minted a span without a tracer")
	}
	span.SetAttr("k", "v")
	span.End()
	if span.TraceID() != 0 {
		t.Error("nil span trace ID must be zero")
	}
	if _, ok := TraceIDFrom(ctx); ok {
		t.Error("untraced context reported a trace ID")
	}
}

// TestWithTraceID proves an externally planted ID (e.g. parsed from a
// request header) is adopted by the next span instead of a fresh mint.
func TestWithTraceID(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithTracer(context.Background(), tr)
	ctx = WithTraceID(ctx, TraceID(0xabcd))
	_, span := StartSpan(ctx, "op")
	if got := span.TraceID(); got != TraceID(0xabcd) {
		t.Errorf("TraceID = %v, want 000000000000abcd", got)
	}
	span.End()
	if !strings.Contains(buf.String(), `"trace":"000000000000abcd"`) {
		t.Errorf("emitted line lost the planted trace ID: %s", buf.String())
	}
}

func TestTracerIDsAreUnique(t *testing.T) {
	tr := NewTracer(&bytes.Buffer{})
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := tr.newID()
		if seen[id] {
			t.Fatalf("duplicate ID after %d mints", i)
		}
		seen[id] = true
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg_total", "h").Inc()
	mux := DebugMux(reg)
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	reg := NewRegistry()
	reg.PublishExpvar("obs_test_reg")
	// A second publish of the same name must not panic (expvar itself
	// would); and a second registry reusing the name is silently ignored.
	reg.PublishExpvar("obs_test_reg")
	NewRegistry().PublishExpvar("obs_test_reg")
}

// BenchmarkCounterInc is the tentpole's hot-path contract: one counter
// increment allocates nothing.
func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "h", L("class", "bench"))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		b.Fatalf("Counter.Inc allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkHistogramObserve proves observation is allocation-free too.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_seconds", "h", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.005)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.005) }); allocs != 0 {
		b.Fatalf("Histogram.Observe allocates %.1f per op, want 0", allocs)
	}
}
