package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one HELP/TYPE pair per
// family, then one sample line per child (histograms expand into
// cumulative _bucket lines plus _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, c := range f.kids {
			switch {
			case c.counter != nil:
				writeSample(bw, f.name, c.labels, "", "", strconv.FormatUint(c.counter.Value(), 10))
			case c.fn != nil:
				writeSample(bw, f.name, c.labels, "", "", formatFloat(c.fn()))
			case c.gauge != nil:
				writeSample(bw, f.name, c.labels, "", "", formatFloat(c.gauge.Value()))
			case c.hist != nil:
				sum, count, cumulative := c.hist.snapshot()
				for i, b := range c.hist.bounds {
					writeSample(bw, f.name+"_bucket", c.labels, "le", formatFloat(b),
						strconv.FormatUint(cumulative[i], 10))
				}
				writeSample(bw, f.name+"_bucket", c.labels, "le", "+Inf",
					strconv.FormatUint(cumulative[len(cumulative)-1], 10))
				writeSample(bw, f.name+"_sum", c.labels, "", "", formatFloat(sum))
				writeSample(bw, f.name+"_count", c.labels, "", "", strconv.FormatUint(count, 10))
			}
		}
	}
}

// writeSample emits one `name{labels} value` line; extraKey/extraVal
// append a synthetic label (histogram le) after the registered ones.
func writeSample(w *bufio.Writer, name string, labels []Label, extraKey, extraVal, value string) {
	w.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			writeLabel(w, l.Key, l.Value)
		}
		if extraKey != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			writeLabel(w, extraKey, extraVal)
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func writeLabel(w *bufio.Writer, key, value string) {
	w.WriteString(key)
	w.WriteString(`="`)
	w.WriteString(escapeLabel(value))
	w.WriteByte('"')
}

// escapeHelp escapes backslash and newline, per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabel escapes backslash, double quote, and newline in a label
// value.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatLabels renders a label set as `{k="v",...}` for snapshot keys
// (empty string for no labels).
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation (strconv spells out +Inf/-Inf/NaN
// itself).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
