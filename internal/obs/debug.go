package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the private diagnostics mux: /debug/pprof (CPU,
// heap, goroutine, block, mutex profiles and execution traces),
// /debug/vars (the process expvar page, including the registry when
// published), and the registry itself at /metrics (Prometheus text)
// and /metrics.json. Serve this on a separate listener (-debug-addr in
// vzserve) so profiling endpoints never share the public one: a CPU
// profile from an internet-facing port is a self-inflicted outage.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/metrics.json", reg.JSONHandler())
	}
	return mux
}
