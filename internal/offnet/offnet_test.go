package offnet

import (
	"testing"

	"vzlens/internal/aspop"
	"vzlens/internal/bgp"
)

func TestMatches(t *testing.T) {
	cases := []struct {
		name, fp string
		want     bool
	}{
		{"cache.google.com", "*.google.com", true},
		{"google.com", "*.google.com", true}, // wildcard matches apex too
		{"notgoogle.com", "*.google.com", false},
		{"dns.google", "dns.google", true},
		{"DNS.GOOGLE", "dns.google", true},
		{"evil-google.com", "*.google.com", false},
		{"*.edge.google.com", "*.google.com", true}, // wildcard cert name
		{"a248.e.akamai.net", "a248.e.akamai.net", true},
		{"x.a248.e.akamai.net", "a248.e.akamai.net", false},
	}
	for _, c := range cases {
		if got := matches(c.name, c.fp); got != c.want {
			t.Errorf("matches(%q, %q) = %v, want %v", c.name, c.fp, got, c.want)
		}
	}
}

func TestDetectOffnets(t *testing.T) {
	s := NewScan()
	// CANTV serves a Google cache cert: off-net.
	s.Add(CertRecord{8048, []string{"cache.google.com"}})
	// Google's own AS serves its cert: on-net, not counted.
	s.Add(CertRecord{15169, []string{"www.google.com"}})
	// Telemic serves both Google and Netflix.
	s.Add(CertRecord{21826, []string{"edge.nflxvideo.net", "video.google.com"}})
	// Unrelated bank cert.
	s.Add(CertRecord{26617, []string{"banco.example.ve"}})

	got := DetectOffnets(s, Hypergiants())
	if g := got["Google"]; len(g) != 2 || g[0] != 8048 || g[1] != 21826 {
		t.Errorf("Google off-nets = %v", g)
	}
	if n := got["Netflix"]; len(n) != 1 || n[0] != 21826 {
		t.Errorf("Netflix off-nets = %v", n)
	}
	if _, ok := got["Akamai"]; ok {
		t.Error("Akamai should have no off-nets")
	}
}

func TestDetectDeduplicates(t *testing.T) {
	s := NewScan()
	s.Add(CertRecord{8048, []string{"a.google.com"}})
	s.Add(CertRecord{8048, []string{"b.google.com"}})
	got := DetectOffnets(s, Hypergiants())
	if g := got["Google"]; len(g) != 1 {
		t.Errorf("duplicate AS counted: %v", g)
	}
}

func popTable() *aspop.Estimates {
	e := aspop.New()
	e.Add(aspop.Estimate{ASN: 8048, Name: "CANTV", Country: "VE", Users: 4000})
	e.Add(aspop.Estimate{ASN: 27889, Name: "MOVILNET", Country: "VE", Users: 1000})
	e.Add(aspop.Estimate{ASN: 21826, Name: "Telemic", Country: "VE", Users: 2500})
	e.Add(aspop.Estimate{ASN: 6306, Name: "Telefonica VE", Country: "VE", Users: 2500})
	return e
}

func TestCoveragePerAS(t *testing.T) {
	pop := popTable()
	cov := CoverageNoOrg("VE", []bgp.ASN{8048}, pop)
	if cov != 0.4 {
		t.Errorf("coverage = %v, want 0.4", cov)
	}
	if got := CoverageNoOrg("VE", nil, pop); got != 0 {
		t.Errorf("empty hosts coverage = %v", got)
	}
}

func TestCoverageOrgExpansion(t *testing.T) {
	pop := popTable()
	orgs := bgp.NewOrgMap()
	orgs.Add(bgp.ASInfo{ASN: 8048, Name: "CANTV", Country: "VE", Org: "ORG-CANV"})
	orgs.Add(bgp.ASInfo{ASN: 27889, Name: "MOVILNET", Country: "VE", Org: "ORG-CANV"})
	// An off-net in CANTV covers the whole state org including MOVILNET.
	cov := Coverage("VE", []bgp.ASN{8048}, pop, orgs)
	if cov != 0.5 {
		t.Errorf("org coverage = %v, want 0.5", cov)
	}
	// Unmapped AS still counts itself.
	cov2 := Coverage("VE", []bgp.ASN{21826}, pop, orgs)
	if cov2 != 0.25 {
		t.Errorf("unmapped coverage = %v, want 0.25", cov2)
	}
	// Org expansion never yields less than per-AS accounting.
	if cov < CoverageNoOrg("VE", []bgp.ASN{8048}, pop) {
		t.Error("org expansion reduced coverage")
	}
}

func TestHypergiantDirectory(t *testing.T) {
	hgs := Hypergiants()
	if len(hgs) != 10 {
		t.Fatalf("hypergiants = %d, want 10 (Figure 18)", len(hgs))
	}
	seen := map[string]bool{}
	for _, hg := range hgs {
		if hg.ASN == 0 || len(hg.Domains) == 0 {
			t.Errorf("%s underspecified", hg.Name)
		}
		seen[hg.Name] = true
	}
	for _, want := range []string{"Google", "Akamai", "Facebook", "Netflix", "Cloudflare", "Microsoft", "Amazon", "Limelight", "CDNetworks", "Alibaba"} {
		if !seen[want] {
			t.Errorf("missing hypergiant %s", want)
		}
	}
	g, ok := HypergiantByName("Google")
	if !ok || g.ASN != 15169 {
		t.Errorf("HypergiantByName = %+v %v", g, ok)
	}
	if _, ok := HypergiantByName("NotAProvider"); ok {
		t.Error("unknown hypergiant resolved")
	}
}
