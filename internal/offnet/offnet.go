// Package offnet reimplements the off-net detection methodology of Gigis
// et al. that the paper applies in Section 5.5: scanning TLS certificates
// served from addresses inside eyeball networks and flagging a hypergiant
// off-net replica when a certificate carries the hypergiant's domains
// (subject or dNSNames) but is served from another organization's AS.
// Population coverage then weights hosting organizations by APNIC-style
// user estimates, aggregated at the organization level with as2org+ to
// suppress per-AS fluctuations.
package offnet

import (
	"sort"
	"strings"

	"vzlens/internal/aspop"
	"vzlens/internal/bgp"
)

// Hypergiant is one content provider whose off-net footprint the paper
// tracks.
type Hypergiant struct {
	Name    string
	ASN     bgp.ASN  // the provider's own network
	Domains []string // certificate subject/dNSName fingerprints
}

// Hypergiants returns the ten providers of Figures 7 and 18.
func Hypergiants() []Hypergiant {
	return []Hypergiant{
		{"Google", 15169, []string{"google.com", "*.google.com", "*.gvt1.com", "dns.google"}},
		{"Akamai", 20940, []string{"*.akamaiedge.net", "*.akamaized.net", "a248.e.akamai.net"}},
		{"Facebook", 32934, []string{"*.facebook.com", "*.fbcdn.net", "*.whatsapp.net"}},
		{"Netflix", 2906, []string{"*.nflxvideo.net", "*.netflix.com"}},
		{"Microsoft", 8075, []string{"*.microsoft.com", "*.msedge.net", "*.azureedge.net"}},
		{"Cloudflare", 13335, []string{"*.cloudflare.com", "*.cloudflaressl.com"}},
		{"Amazon", 16509, []string{"*.cloudfront.net", "*.amazonaws.com"}},
		{"Limelight", 22822, []string{"*.llnwd.net", "*.limelight.com"}},
		{"CDNetworks", 36408, []string{"*.cdngc.net", "*.cdnetworks.com"}},
		{"Alibaba", 45102, []string{"*.alicdn.com", "*.alikunlun.com"}},
	}
}

// HypergiantByName returns the named provider.
func HypergiantByName(name string) (Hypergiant, bool) {
	for _, hg := range Hypergiants() {
		if hg.Name == name {
			return hg, true
		}
	}
	return Hypergiant{}, false
}

// CertRecord is one observation from a TLS scan: the certificate names
// served from an address originated by ASN.
type CertRecord struct {
	ASN   bgp.ASN
	Names []string // subject CN + dNSNames
}

// Scan is one scan campaign (the paper uses one per year, 2013-2021).
type Scan struct {
	records []CertRecord
}

// NewScan returns an empty Scan.
func NewScan() *Scan { return &Scan{} }

// Add appends a record.
func (s *Scan) Add(r CertRecord) { s.records = append(s.records, r) }

// Len returns the number of records.
func (s *Scan) Len() int { return len(s.records) }

// matches reports whether a certificate name matches a hypergiant
// fingerprint. Fingerprints with a "*." prefix match any subdomain;
// exact fingerprints match exactly.
func matches(name, fingerprint string) bool {
	name = strings.ToLower(strings.TrimSpace(name))
	fingerprint = strings.ToLower(fingerprint)
	if tail, ok := strings.CutPrefix(fingerprint, "*."); ok {
		return name == tail || strings.HasSuffix(name, "."+tail) ||
			(strings.HasPrefix(name, "*.") && strings.HasSuffix(name, tail))
	}
	return name == fingerprint
}

// DetectOffnets returns, per hypergiant name, the set of ASes serving
// that hypergiant's certificates from outside its own network — the
// off-net hosts. Results are sorted by ASN.
func DetectOffnets(s *Scan, hgs []Hypergiant) map[string][]bgp.ASN {
	found := map[string]map[bgp.ASN]bool{}
	for _, rec := range s.records {
		for _, hg := range hgs {
			if rec.ASN == hg.ASN {
				continue // on-net, not an off-net
			}
			if recordMatches(rec, hg) {
				set, ok := found[hg.Name]
				if !ok {
					set = map[bgp.ASN]bool{}
					found[hg.Name] = set
				}
				set[rec.ASN] = true
			}
		}
	}
	out := map[string][]bgp.ASN{}
	for name, set := range found {
		asns := make([]bgp.ASN, 0, len(set))
		for asn := range set {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		out[name] = asns
	}
	return out
}

func recordMatches(rec CertRecord, hg Hypergiant) bool {
	for _, name := range rec.Names {
		for _, fp := range hg.Domains {
			if matches(name, fp) {
				return true
			}
		}
	}
	return false
}

// Coverage computes the share (0-1) of country cc's user population in
// organizations hosting an off-net, expanding each hosting AS to its full
// organization through orgs (the as2org+ step). A nil orgs map falls back
// to per-AS accounting.
func Coverage(cc string, hosts []bgp.ASN, pop *aspop.Estimates, orgs *bgp.OrgMap) float64 {
	expanded := hosts
	if orgs != nil {
		seen := map[bgp.ASN]bool{}
		expanded = nil
		for _, asn := range hosts {
			for _, member := range orgs.ASNsOf(orgs.Org(asn)) {
				if !seen[member] {
					seen[member] = true
					expanded = append(expanded, member)
				}
			}
			// ASes with no org mapping still count themselves.
			if len(orgs.ASNsOf(orgs.Org(asn))) == 0 && !seen[asn] {
				seen[asn] = true
				expanded = append(expanded, asn)
			}
		}
	}
	return pop.ShareOf(cc, expanded)
}

// CoverageNoOrg is Coverage without the organization expansion — the
// ablation estimator showing raw per-AS fluctuation.
func CoverageNoOrg(cc string, hosts []bgp.ASN, pop *aspop.Estimates) float64 {
	return Coverage(cc, hosts, pop, nil)
}
