package golden

import (
	"encoding/hex"
	"testing"

	"vzlens/internal/dnsplane"
	"vzlens/internal/dnsroot"
	"vzlens/internal/dnswire"
)

// dnsGoldenEntry pins one wire exchange: the exact query bytes sent
// and the exact response bytes the data plane produced. Hex keeps the
// snapshot diffable while still byte-precise — a TTL change, a
// compression-pointer change, or a reordered record all surface.
type dnsGoldenEntry struct {
	Month    string `json:"month"`
	Letter   string `json:"letter"`
	Client   string `json:"client"`
	Name     string `json:"name"`
	Type     string `json:"type"`
	Rcode    int    `json:"rcode"`
	TXT      string `json:"txt,omitempty"`
	Query    string `json:"query_hex"`
	Response string `json:"response_hex"`
}

// dnsClients are the pinned vantages: the first Venezuelan probe
// (CANTV, Caracas), the first foreign probe (id 1000), and a bare
// query with no ECS at all (the default Venezuelan vantage).
var dnsClients = []struct {
	name string
	ecs  func() *dnswire.ECS
}{
	{"ve-probe-1", func() *dnswire.ECS { return probeSubnet(1) }},
	{"probe-1000", func() *dnswire.ECS { return probeSubnet(1000) }},
	{"no-ecs", func() *dnswire.ECS { return nil }},
}

func probeSubnet(id int) *dnswire.ECS {
	e := &dnswire.ECS{Family: dnswire.ECSFamilyIPv4, SourcePrefix: 32, AddrLen: 4}
	e.Addr[0] = 10
	e.Addr[1] = byte(id >> 16)
	e.Addr[2] = byte(id >> 8)
	e.Addr[3] = byte(id)
	return e
}

// TestGoldenDNSWire snapshots the DNS plane's responses across the
// decade: for each campaign month, CHAOS identification answers for a
// spread of root letters from each pinned client, plus the IN
// A/AAAA/TXT records for L. Query IDs are fixed by position, so both
// sides of every exchange are fully deterministic.
func TestGoldenDNSWire(t *testing.T) {
	letters := []dnsroot.Letter{'A', 'F', 'K', 'L'}
	var out []dnsGoldenEntry
	id := uint16(0)
	exchange := func(r *dnsplane.Resolver, month, client, name string, qtype, class uint16, ecs *dnswire.ECS, letter dnsroot.Letter) {
		id++
		pkt, err := dnswire.EncodeQuery(id, dnswire.Question{Name: name, Type: qtype, Class: class})
		if err != nil {
			t.Fatalf("EncodeQuery(%q): %v", name, err)
		}
		if ecs != nil {
			pkt = dnswire.AppendQueryOPT(pkt, 1232, ecs)
		}
		resp, info := r.Handle(pkt, nil)
		if resp == nil {
			t.Fatalf("%s %s %q: dropped", month, client, name)
		}
		entry := dnsGoldenEntry{
			Month:    month,
			Letter:   string(letter),
			Client:   client,
			Name:     name,
			Type:     typeName(qtype),
			Rcode:    info.Rcode,
			Query:    hex.EncodeToString(pkt),
			Response: hex.EncodeToString(resp),
		}
		if msg, err := dnswire.Decode(resp); err == nil {
			if txt, err := dnswire.FirstTXT(msg); err == nil {
				entry.TXT = txt
			}
		}
		out = append(out, entry)
	}

	for _, m := range testChaos.Months() {
		r := dnsplane.NewResolver(testWorld, m)
		for _, letter := range letters {
			l := byte(letter) | 0x20
			for _, c := range dnsClients {
				exchange(r, m.String(), c.name, "hostname.bind."+string(l),
					dnswire.TypeTXT, dnswire.ClassCH, c.ecs(), letter)
			}
		}
		// Address synthesis for L from the Venezuelan probe.
		exchange(r, m.String(), "ve-probe-1", "l.root-servers.vz",
			dnswire.TypeA, dnswire.ClassIN, probeSubnet(1), 'L')
		exchange(r, m.String(), "ve-probe-1", "l.root-servers.vz",
			dnswire.TypeAAAA, dnswire.ClassIN, probeSubnet(1), 'L')
		exchange(r, m.String(), "ve-probe-1", "l.root-servers.vz",
			dnswire.TypeTXT, dnswire.ClassIN, probeSubnet(1), 'L')
	}
	check(t, "dns_wire", encode(t, out))
}

func typeName(qtype uint16) string {
	switch qtype {
	case dnswire.TypeA:
		return "A"
	case dnswire.TypeAAAA:
		return "AAAA"
	case dnswire.TypeTXT:
		return "TXT"
	default:
		return "?"
	}
}
