// Package golden pins the reproduction's observable output. Every
// registry experiment table and both campaign summaries are rendered
// from the seed configuration and compared byte-for-byte against the
// JSON snapshots committed under testdata/golden/. A behavior change
// anywhere in the pipeline — parsing, topology, simulation, analysis —
// surfaces here as a readable diff instead of slipping through.
//
// Refresh the snapshots after an intended change with:
//
//	go test ./internal/golden/ -update
//
// and review the diff like any other code change.
package golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vzlens/internal/atlas"
	"vzlens/internal/core"
	"vzlens/internal/world"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenConfig is the pinned world configuration: default seed,
// semiannual campaign resolution (fast enough for CI, dense enough to
// exercise every analysis), and a fixed worker count so the snapshots
// also witness that parallel simulation is deterministic.
func goldenConfig(workers int) world.Config {
	return world.Config{Step: 6, Workers: workers}
}

// mustBuild is the test-only panicking form of world.Build.
func mustBuild(cfg world.Config) *world.World {
	w, err := world.Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

var (
	testWorld = mustBuild(goldenConfig(8))
	testTrace = testWorld.TraceCampaign()
	testChaos = testWorld.ChaosCampaign()
)

// tableDoc mirrors httpapi's JSON rendering of a core.Table, so the
// snapshots pin the exact shape clients see.
type tableDoc struct {
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

// encode renders v as the canonical golden form: two-space-indented
// JSON with a trailing newline.
func encode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return append(b, '\n')
}

// check compares got against testdata/golden/<name>.json, rewriting the
// file under -update and failing with a line diff otherwise.
func check(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/golden/ -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update if intended):\n%s",
			path, diff(string(want), string(got)))
	}
}

// diff renders a compact line diff: the first mismatching lines with
// one line of context, capped so a wholesale change stays readable.
func diff(want, got string) string {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	n := len(wantLines)
	if len(gotLines) > n {
		n = len(gotLines)
	}
	for i := 0; i < n && shown < 20; i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w == g {
			continue
		}
		if shown == 0 && i > 0 {
			fmt.Fprintf(&b, "  %4d   %s\n", i, wantLines[i-1])
		}
		if w != "" || i < len(wantLines) {
			fmt.Fprintf(&b, "- %4d   %s\n", i+1, w)
		}
		if g != "" || i < len(gotLines) {
			fmt.Fprintf(&b, "+ %4d   %s\n", i+1, g)
		}
		shown++
	}
	if shown == 20 {
		fmt.Fprintf(&b, "  ... (diff truncated at 20 differing lines)\n")
	}
	if shown == 0 {
		b.WriteString("  (files differ only in trailing bytes)\n")
	}
	return b.String()
}

// TestExperimentTables snapshots every registry experiment. The
// registry is the same one httpapi serves from, so an experiment added
// there is automatically pinned here.
func TestExperimentTables(t *testing.T) {
	for _, e := range core.Experiments() {
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(testWorld, testTrace, testChaos)
			check(t, e.ID, encode(t, tableDoc{
				Caption: tbl.Caption,
				Header:  tbl.Header,
				Rows:    tbl.Rows,
			}))
		})
	}
}

// traceSummary condenses the traceroute campaign into its
// analysis-relevant aggregates: size, coverage, and the Venezuelan
// median-RTT series the paper's figure 12 is built from.
type traceSummary struct {
	Months   []string           `json:"months"`
	Samples  int                `json:"samples"`
	VEMedian map[string]float64 `json:"ve_median_rtt_ms"`
}

// chaosSummary condenses the CHAOS sweep: size, coverage, the
// Venezuelan answered-results series, and the root-site diversity seen
// from Venezuela in the final month (the paper's figure 16 input).
type chaosSummary struct {
	Months      []string       `json:"months"`
	Results     int            `json:"results"`
	VESeries    map[string]int `json:"ve_results_by_month"`
	VEFinalSite map[string]int `json:"ve_sites_final_month"`
}

func TestCampaignSummaries(t *testing.T) {
	ts := traceSummary{Samples: testTrace.Len(), VEMedian: map[string]float64{}}
	for _, m := range testTrace.Months() {
		ts.Months = append(ts.Months, m.String())
		if med, ok := testTrace.CountryMedian("VE", m); ok {
			ts.VEMedian[m.String()] = med
		}
	}
	check(t, "trace_campaign", encode(t, ts))

	cms := testChaos.Months()
	cs := chaosSummary{Results: testChaos.Len(), VESeries: map[string]int{}}
	for _, m := range cms {
		cs.Months = append(cs.Months, m.String())
	}
	for m, n := range testChaos.CountrySeries("VE") {
		cs.VESeries[m.String()] = n
	}
	if len(cms) > 0 {
		cs.VEFinalSite = testChaos.SitesByCountry(cms[len(cms)-1], "VE")
	}
	check(t, "chaos_campaign", encode(t, cs))
}

// TestWorkerCountInvariance proves the golden outputs do not depend on
// the worker pool size: the full campaigns simulated at Workers=1 and
// Workers=8 must serialize to identical bytes. This is the determinism
// contract the parallel engine promises (per-probe-month RNG streams,
// merge in month order) — if it breaks, every snapshot above is
// schedule-dependent and meaningless.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates both campaigns twice")
	}
	serial := mustBuild(goldenConfig(1))
	var trace1, trace8, chaos1, chaos8 bytes.Buffer
	if err := atlas.WriteTraceJSON(&trace1, serial.TraceCampaign().Samples()); err != nil {
		t.Fatal(err)
	}
	if err := atlas.WriteTraceJSON(&trace8, testTrace.Samples()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trace1.Bytes(), trace8.Bytes()) {
		t.Errorf("trace campaign differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)",
			trace1.Len(), trace8.Len())
	}
	if err := atlas.WriteChaosJSON(&chaos1, serial.ChaosCampaign().Results()); err != nil {
		t.Fatal(err)
	}
	if err := atlas.WriteChaosJSON(&chaos8, testChaos.Results()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chaos1.Bytes(), chaos8.Bytes()) {
		t.Errorf("chaos campaign differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)",
			chaos1.Len(), chaos8.Len())
	}
}
