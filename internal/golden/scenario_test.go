package golden

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"vzlens/internal/atlas"
	"vzlens/internal/scenario"
	"vzlens/internal/world"
)

// cannedIDs are the scenarios shipped under internal/scenario/testdata;
// each gets its full diff pinned as a golden snapshot.
var cannedIDs = []string{"cantv-depeer", "ixp-join", "cable-cut", "root-replica"}

// loadCanned reads one shipped scenario spec by id.
func loadCanned(t *testing.T, id string) *scenario.Spec {
	t.Helper()
	specs, err := scenario.LoadSpecs(filepath.Join("..", "scenario", "testdata", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("%s: %d specs, want 1", id, len(specs))
	}
	return specs[0]
}

// scenarioEngine builds an engine over w that reuses tr/ch as its
// baselines, mirroring how httpapi wires the engine into its memoized
// campaign caches — a run then costs one scenario simulation only.
func scenarioEngine(w *world.World, tr *atlas.TraceCampaign, ch *atlas.ChaosCampaign) *scenario.Engine {
	return scenario.NewEngine(scenario.Options{
		World:         w,
		BaselineTrace: func(context.Context) (*atlas.TraceCampaign, error) { return tr, nil },
		BaselineChaos: func(context.Context) (*atlas.ChaosCampaign, error) { return ch, nil },
	})
}

// TestScenarioDiffs pins the complete baseline-vs-scenario diff of
// every canned scenario. These snapshots are the engine's regression
// net: an unintended change anywhere in overlay construction, campaign
// replay, or diffing shows up as a readable diff here.
func TestScenarioDiffs(t *testing.T) {
	eng := scenarioEngine(testWorld, testTrace, testChaos)
	for _, id := range cannedIDs {
		t.Run(id, func(t *testing.T) {
			diff, err := eng.Run(context.Background(), loadCanned(t, id))
			if err != nil {
				t.Fatalf("run %s: %v", id, err)
			}
			check(t, "scenario_"+id, encode(t, diff))
		})
	}
}

// TestScenarioWorkerCountInvariance extends the determinism contract
// to scenario runs: the same scenario diffed on a Workers=1 world must
// serialize byte-identically to the Workers=8 snapshot inputs. Jitter
// is sampled scenario-blind per probe-month, so this holds exactly.
func TestScenarioWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two campaigns twice")
	}
	spec := loadCanned(t, "cantv-depeer")
	serial := mustBuild(goldenConfig(1))
	serialDiff, err := scenarioEngine(serial, serial.TraceCampaign(), serial.ChaosCampaign()).
		Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	parallelDiff, err := scenarioEngine(testWorld, testTrace, testChaos).
		Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encode(t, serialDiff), encode(t, parallelDiff); !bytes.Equal(got, want) {
		t.Errorf("scenario diff differs between Workers=1 (%d bytes) and Workers=8 (%d bytes):\n%s",
			len(got), len(want), diff(string(want), string(got)))
	}
}
