package golden

import (
	"context"
	"net/url"
	"reflect"
	"testing"

	"vzlens/internal/core"
	"vzlens/internal/facts"
	"vzlens/internal/query"
)

// TestExperimentTablesFromFacts is the fact lake's differential pin:
// every registry experiment table, rebuilt from campaigns reconstructed
// out of the columnar fact lake, must be byte-equal to the same golden
// snapshots TestExperimentTables checks against fresh simulation. This
// is the contract that lets the serving layer answer experiments,
// scenario baselines, and ad-hoc queries from the lake without any
// possibility of drift: if a kernel's emission order, the VZFC codec,
// or the reconstruction ever disagrees with simulation, a pinned table
// changes here.
func TestExperimentTablesFromFacts(t *testing.T) {
	lake, err := facts.Open(t.TempDir(), testWorld.Config.Scope())
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.Build(context.Background(), testWorld); err != nil {
		t.Fatal(err)
	}
	tc, err := lake.TraceCampaign()
	if err != nil {
		t.Fatal(err)
	}
	cc, err := lake.ChaosCampaign()
	if err != nil {
		t.Fatal(err)
	}
	// The reconstruction is row-for-row identical to the simulation the
	// package pinned at init — checked directly before the tables, so a
	// codec bug reads as "campaign differs", not 22 table diffs.
	if !reflect.DeepEqual(tc.Samples(), testTrace.Samples()) {
		t.Fatal("lake-reconstructed trace campaign differs from simulation")
	}
	if !reflect.DeepEqual(cc.Results(), testChaos.Results()) {
		t.Fatal("lake-reconstructed chaos campaign differs from simulation")
	}
	for _, e := range core.Experiments() {
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(testWorld, tc, cc)
			check(t, e.ID, encode(t, tableDoc{
				Caption: tbl.Caption,
				Header:  tbl.Header,
				Rows:    tbl.Rows,
			}))
		})
	}

	// Representative /api/query responses pin the ad-hoc layer's exact
	// JSON: one per metric, covering percentile, group-by, and filter
	// variants the README documents.
	eng := query.New(lake)
	queries := []struct {
		name string
		raw  string
	}{
		{"query_median_rtt_ve", "metric=median_rtt&from=2013-06&to=2023-06&country=VE&group_by=none"},
		{"query_hop_count_p90", "metric=hop_count&from=2018-01&to=2021-01&percentile=90&group_by=asn&country=VE"},
		{"query_reachability", "metric=reachability&from=2013-06&to=2023-06&country=VE&group_by=none"},
		{"query_catchment_letters", "metric=catchment_share&from=2013-06&to=2023-06&country=VE&group_by=letter"},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			vals, err := url.ParseQuery(q.raw)
			if err != nil {
				t.Fatal(err)
			}
			p, err := query.ParseParams(vals)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			check(t, q.name, encode(t, res))
		})
	}
}
