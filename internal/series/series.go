// Package series implements the monthly time-series containers shared by
// every analysis: a single series keyed by month, and a panel of series
// keyed by country, with the cross-country aggregations (regional mean,
// normalization against a regional reference) that the paper's multi-panel
// figures use.
package series

import (
	"fmt"
	"sort"
	"strings"

	"vzlens/internal/months"
	"vzlens/internal/stats"
)

// Point is one (month, value) observation.
type Point struct {
	Month months.Month
	Value float64
}

// Series is an ordered monthly time series. The zero value is an empty
// series ready to use.
type Series struct {
	points map[months.Month]float64
}

// New returns an empty Series.
func New() *Series { return &Series{points: map[months.Month]float64{}} }

// Set records value v for month m, replacing any prior value.
func (s *Series) Set(m months.Month, v float64) {
	if s.points == nil {
		s.points = map[months.Month]float64{}
	}
	s.points[m] = v
}

// Add accumulates v onto the value stored for month m.
func (s *Series) Add(m months.Month, v float64) {
	if s.points == nil {
		s.points = map[months.Month]float64{}
	}
	s.points[m] += v
}

// Get returns the value at m and whether one is recorded.
func (s *Series) Get(m months.Month) (float64, bool) {
	v, ok := s.points[m]
	return v, ok
}

// At returns the value at m, or 0 when absent.
func (s *Series) At(m months.Month) float64 { return s.points[m] }

// Len returns the number of recorded months.
func (s *Series) Len() int { return len(s.points) }

// Points returns all observations ordered by month.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.points))
	for m, v := range s.points {
		out = append(out, Point{m, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Month < out[j].Month })
	return out
}

// Span returns the earliest and latest recorded months; ok is false for an
// empty series.
func (s *Series) Span() (lo, hi months.Month, ok bool) {
	for m := range s.points {
		if !ok {
			lo, hi, ok = m, m, true
			continue
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return lo, hi, ok
}

// First returns the earliest observation; ok is false for an empty series.
func (s *Series) First() (Point, bool) {
	lo, _, ok := s.Span()
	if !ok {
		return Point{}, false
	}
	return Point{lo, s.points[lo]}, true
}

// Last returns the latest observation; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	_, hi, ok := s.Span()
	if !ok {
		return Point{}, false
	}
	return Point{hi, s.points[hi]}, true
}

// MaxPoint returns the observation with the largest value.
func (s *Series) MaxPoint() (Point, bool) {
	var best Point
	found := false
	for m, v := range s.points {
		if !found || v > best.Value || (v == best.Value && m < best.Month) {
			best = Point{m, v}
			found = true
		}
	}
	return best, found
}

// Window returns the values recorded in [lo, hi], ordered by month.
func (s *Series) Window(lo, hi months.Month) []float64 {
	var out []float64
	for _, p := range s.Points() {
		if p.Month >= lo && p.Month <= hi {
			out = append(out, p.Value)
		}
	}
	return out
}

// MeanOver returns the mean value over [lo, hi]; ok is false when the
// window holds no observations.
func (s *Series) MeanOver(lo, hi months.Month) (float64, bool) {
	w := s.Window(lo, hi)
	m, err := stats.Mean(w)
	return m, err == nil
}

// Normalize returns a new series of s's values divided by its maximum
// value. An empty or all-zero series normalizes to an empty series.
func (s *Series) Normalize() *Series {
	max, found := s.MaxPoint()
	out := New()
	if !found || max.Value == 0 {
		return out
	}
	for m, v := range s.points {
		out.Set(m, v/max.Value)
	}
	return out
}

// PercentChange returns (last-first)/first*100; ok is false when the series
// has fewer than two points or starts at zero.
func (s *Series) PercentChange() (float64, bool) {
	f, ok1 := s.First()
	l, ok2 := s.Last()
	if !ok1 || !ok2 || f.Month == l.Month || f.Value == 0 {
		return 0, false
	}
	return (l.Value - f.Value) / f.Value * 100, true
}

// Panel is a set of per-country series, as drawn in the paper's
// country-comparison panels.
type Panel struct {
	byCountry map[string]*Series
}

// NewPanel returns an empty Panel.
func NewPanel() *Panel { return &Panel{byCountry: map[string]*Series{}} }

// Country returns the series for country cc, creating it when absent.
func (p *Panel) Country(cc string) *Series {
	if p.byCountry == nil {
		p.byCountry = map[string]*Series{}
	}
	s, ok := p.byCountry[cc]
	if !ok {
		s = New()
		p.byCountry[cc] = s
	}
	return s
}

// Has reports whether a series exists for cc.
func (p *Panel) Has(cc string) bool {
	_, ok := p.byCountry[cc]
	return ok
}

// Countries returns the country codes present, sorted.
func (p *Panel) Countries() []string {
	out := make([]string, 0, len(p.byCountry))
	for cc := range p.byCountry {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// RegionalTotal returns the sum across all countries for each month that
// any country has recorded.
func (p *Panel) RegionalTotal() *Series {
	out := New()
	for _, s := range p.byCountry {
		for m, v := range s.points {
			out.Add(m, v)
		}
	}
	return out
}

// RegionalMean returns, per month, the mean over the countries that have a
// value recorded for that month (the paper's "mean LACNIC" curves).
func (p *Panel) RegionalMean() *Series {
	sums := map[months.Month]float64{}
	counts := map[months.Month]int{}
	for _, s := range p.byCountry {
		for m, v := range s.points {
			sums[m] += v
			counts[m]++
		}
	}
	out := New()
	for m, sum := range sums {
		out.Set(m, sum/float64(counts[m]))
	}
	return out
}

// RegionalMedian returns, per month, the median over countries with a
// recorded value.
func (p *Panel) RegionalMedian() *Series {
	vals := map[months.Month][]float64{}
	for _, s := range p.byCountry {
		for m, v := range s.points {
			vals[m] = append(vals[m], v)
		}
	}
	out := New()
	for m, xs := range vals {
		med, err := stats.Median(xs)
		if err == nil {
			out.Set(m, med)
		}
	}
	return out
}

// NormalizeAgainst returns the cc series divided month-by-month by ref
// (months where ref is absent or zero are skipped). This is the paper's
// "VE / regional mean" lower-right panel.
func (p *Panel) NormalizeAgainst(cc string, ref *Series) *Series {
	out := New()
	s, ok := p.byCountry[cc]
	if !ok {
		return out
	}
	for m, v := range s.points {
		r, ok := ref.Get(m)
		if !ok || r == 0 {
			continue
		}
		out.Set(m, v/r)
	}
	return out
}

// RankAt returns cc's descending-value rank (1 = highest) among countries
// with a value at month m, and the number of ranked countries. ok is false
// when cc has no value at m.
func (p *Panel) RankAt(cc string, m months.Month) (rank, of int, ok bool) {
	v, exists := p.byCountry[cc]
	if !exists {
		return 0, 0, false
	}
	val, has := v.Get(m)
	if !has {
		return 0, 0, false
	}
	rank = 1
	for other, s := range p.byCountry {
		ov, ok2 := s.Get(m)
		if !ok2 {
			continue
		}
		of++
		if other != cc && ov > val {
			rank++
		}
	}
	return rank, of, true
}

// CSV renders the panel as a month-by-country CSV table with a header row,
// for the plotting tools. Missing cells are empty.
func (p *Panel) CSV() string {
	ccs := p.Countries()
	allMonths := map[months.Month]bool{}
	for _, s := range p.byCountry {
		for m := range s.points {
			allMonths[m] = true
		}
	}
	ms := make([]months.Month, 0, len(allMonths))
	for m := range allMonths {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })

	var b strings.Builder
	b.WriteString("month")
	for _, cc := range ccs {
		b.WriteString(",")
		b.WriteString(cc)
	}
	b.WriteString("\n")
	for _, m := range ms {
		b.WriteString(m.String())
		for _, cc := range ccs {
			b.WriteString(",")
			if v, ok := p.byCountry[cc].Get(m); ok {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
