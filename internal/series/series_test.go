package series

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vzlens/internal/months"
)

func m(s string) months.Month { return months.MustParse(s) }

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSetGetAdd(t *testing.T) {
	s := New()
	s.Set(m("2020-01"), 5)
	s.Add(m("2020-01"), 2)
	if v, ok := s.Get(m("2020-01")); !ok || !almost(v, 7) {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if v := s.At(m("2020-02")); v != 0 {
		t.Errorf("At missing = %v", v)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Series
	s.Set(m("2020-01"), 1)
	s.Add(m("2020-02"), 2)
	if s.Len() != 2 {
		t.Errorf("zero-value Series unusable: len=%d", s.Len())
	}
	var s2 Series
	s2.Add(m("2020-01"), 3)
	if s2.At(m("2020-01")) != 3 {
		t.Error("zero-value Add broken")
	}
}

func TestPointsOrdered(t *testing.T) {
	s := New()
	s.Set(m("2021-05"), 3)
	s.Set(m("2019-01"), 1)
	s.Set(m("2020-06"), 2)
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Month < pts[i-1].Month {
			t.Fatalf("Points not ordered: %v", pts)
		}
	}
}

func TestSpanFirstLast(t *testing.T) {
	s := New()
	if _, _, ok := s.Span(); ok {
		t.Error("empty Span ok")
	}
	s.Set(m("2015-03"), 10)
	s.Set(m("2018-09"), 20)
	lo, hi, ok := s.Span()
	if !ok || lo != m("2015-03") || hi != m("2018-09") {
		t.Errorf("Span = %v %v %v", lo, hi, ok)
	}
	f, _ := s.First()
	l, _ := s.Last()
	if f.Value != 10 || l.Value != 20 {
		t.Errorf("First/Last = %v %v", f, l)
	}
}

func TestMaxPointAndNormalize(t *testing.T) {
	s := New()
	s.Set(m("2010-01"), 2)
	s.Set(m("2012-01"), 8)
	s.Set(m("2014-01"), 4)
	mp, ok := s.MaxPoint()
	if !ok || mp.Value != 8 || mp.Month != m("2012-01") {
		t.Errorf("MaxPoint = %v %v", mp, ok)
	}
	n := s.Normalize()
	if !almost(n.At(m("2012-01")), 1) || !almost(n.At(m("2010-01")), 0.25) {
		t.Errorf("Normalize = %v", n.Points())
	}
	empty := New().Normalize()
	if empty.Len() != 0 {
		t.Error("Normalize of empty should be empty")
	}
}

func TestPercentChange(t *testing.T) {
	s := New()
	s.Set(m("2013-01"), 100)
	s.Set(m("2020-01"), 30)
	pc, ok := s.PercentChange()
	if !ok || !almost(pc, -70) {
		t.Errorf("PercentChange = %v %v", pc, ok)
	}
	one := New()
	one.Set(m("2013-01"), 5)
	if _, ok := one.PercentChange(); ok {
		t.Error("single-point PercentChange should not be ok")
	}
}

func TestWindowMeanOver(t *testing.T) {
	s := New()
	for i, v := range []float64{1, 2, 3, 4} {
		s.Set(m("2020-01").Add(i), v)
	}
	w := s.Window(m("2020-02"), m("2020-03"))
	if len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Errorf("Window = %v", w)
	}
	mean, ok := s.MeanOver(m("2020-02"), m("2020-03"))
	if !ok || !almost(mean, 2.5) {
		t.Errorf("MeanOver = %v %v", mean, ok)
	}
	if _, ok := s.MeanOver(m("2025-01"), m("2025-02")); ok {
		t.Error("MeanOver empty window should not be ok")
	}
}

func TestPanelRegionalAggregates(t *testing.T) {
	p := NewPanel()
	p.Country("VE").Set(m("2020-01"), 1)
	p.Country("BR").Set(m("2020-01"), 3)
	p.Country("AR").Set(m("2020-01"), 2)
	p.Country("BR").Set(m("2020-02"), 5)

	tot := p.RegionalTotal()
	if !almost(tot.At(m("2020-01")), 6) {
		t.Errorf("total = %v", tot.At(m("2020-01")))
	}
	mean := p.RegionalMean()
	if !almost(mean.At(m("2020-01")), 2) {
		t.Errorf("mean = %v", mean.At(m("2020-01")))
	}
	if !almost(mean.At(m("2020-02")), 5) {
		t.Errorf("mean single-country month = %v", mean.At(m("2020-02")))
	}
	med := p.RegionalMedian()
	if !almost(med.At(m("2020-01")), 2) {
		t.Errorf("median = %v", med.At(m("2020-01")))
	}
}

func TestPanelNormalizeAgainst(t *testing.T) {
	p := NewPanel()
	p.Country("VE").Set(m("2020-01"), 1)
	p.Country("VE").Set(m("2020-02"), 2)
	ref := New()
	ref.Set(m("2020-01"), 4)
	// 2020-02 missing from ref: skipped
	n := p.NormalizeAgainst("VE", ref)
	if !almost(n.At(m("2020-01")), 0.25) {
		t.Errorf("normalized = %v", n.At(m("2020-01")))
	}
	if _, ok := n.Get(m("2020-02")); ok {
		t.Error("month without ref should be skipped")
	}
	if p.NormalizeAgainst("XX", ref).Len() != 0 {
		t.Error("missing country should normalize to empty")
	}
}

func TestPanelRankAt(t *testing.T) {
	p := NewPanel()
	p.Country("VE").Set(m("1980-01"), 9000)
	p.Country("AR").Set(m("1980-01"), 9500)
	p.Country("BO").Set(m("1980-01"), 1000)
	rank, of, ok := p.RankAt("VE", m("1980-01"))
	if !ok || rank != 2 || of != 3 {
		t.Errorf("RankAt = %d/%d %v", rank, of, ok)
	}
	if _, _, ok := p.RankAt("VE", m("1990-01")); ok {
		t.Error("RankAt missing month should not be ok")
	}
	if _, _, ok := p.RankAt("ZZ", m("1980-01")); ok {
		t.Error("RankAt missing country should not be ok")
	}
}

func TestPanelCSV(t *testing.T) {
	p := NewPanel()
	p.Country("BR").Set(m("2020-01"), 3)
	p.Country("AR").Set(m("2020-02"), 2)
	csv := p.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "month,AR,BR" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), csv)
	}
	if lines[1] != "2020-01,,3" {
		t.Errorf("row1 = %q", lines[1])
	}
	if lines[2] != "2020-02,2," {
		t.Errorf("row2 = %q", lines[2])
	}
}

// Property: Normalize bounds values to (0, 1] for positive series.
func TestQuickNormalizeBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		s := New()
		for i, v := range vals {
			s.Set(m("2000-01").Add(i), float64(v)+1)
		}
		n := s.Normalize()
		for _, p := range n.Points() {
			if p.Value <= 0 || p.Value > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RegionalTotal equals the sum of country values month-wise.
func TestQuickRegionalTotal(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := NewPanel()
		p.Country("A").Set(m("2020-01"), float64(a))
		p.Country("B").Set(m("2020-01"), float64(b))
		p.Country("C").Set(m("2020-01"), float64(c))
		return almost(p.RegionalTotal().At(m("2020-01")), float64(a)+float64(b)+float64(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
