// Package econ provides the macroeconomic indicator series behind the
// paper's Figure 1 (Venezuela's oil production, GDP per capita, inflation
// and population) and Figure 13 (GDP-per-capita ranks across the LACNIC
// region).
//
// The paper sources these from the IMF Data Mapper and OECD crude-oil
// production statistics. Those archives are not redistributable, so this
// package embeds piecewise-linear annual series calibrated to the paper's
// reported shape: the -81.49% oil collapse, the -70.90% GDP-per-capita
// drop in seven years, the 32,000% inflation peak, the -13.85% population
// decline, and Venezuela's region-wide GDP rank path 3, 2, 8, 9, 7, 6, 6,
// 18, 23 at five-year marks from 1980.
package econ

import (
	"sort"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/series"
)

// anchor is one (year, value) control point of a piecewise-linear series.
type anchor struct {
	year  int
	value float64
}

// interpolate expands anchors into an annual series (January months) from
// the first to the last anchor year.
func interpolate(anchors []anchor) *series.Series {
	out := series.New()
	if len(anchors) == 0 {
		return out
	}
	sorted := make([]anchor, len(anchors))
	copy(sorted, anchors)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].year < sorted[j].year })
	for i := 0; i < len(sorted)-1; i++ {
		a, b := sorted[i], sorted[i+1]
		span := b.year - a.year
		for y := a.year; y < b.year; y++ {
			frac := float64(y-a.year) / float64(span)
			out.Set(months.New(y, time.January), a.value*(1-frac)+b.value*frac)
		}
	}
	last := sorted[len(sorted)-1]
	out.Set(months.New(last.year, time.January), last.value)
	return out
}

// OilProductionVE returns Venezuela's crude production in thousand barrels
// per day, annual 1980-2024. Peak 3,480 kb/d (1998); trough 644 kb/d
// (2020), a -81.5% collapse matching Figure 1a's annotation.
func OilProductionVE() *series.Series {
	return interpolate([]anchor{
		{1980, 2168}, {1985, 1680}, {1990, 2137}, {1995, 2750},
		{1998, 3480}, {2000, 3155}, {2003, 2640}, {2005, 3270},
		{2008, 3220}, {2010, 2840}, {2013, 2900}, {2015, 2650},
		{2017, 2070}, {2018, 1510}, {2019, 1000}, {2020, 644},
		{2021, 680}, {2022, 716}, {2023, 780}, {2024, 850},
	})
}

// InflationVE returns Venezuela's annual inflation rate in percent,
// 1980-2024, peaking at 32,000% in 2018 (Figure 1c, log scale).
func InflationVE() *series.Series {
	return interpolate([]anchor{
		{1980, 20}, {1985, 11}, {1989, 84}, {1992, 31}, {1996, 100},
		{2000, 16}, {2004, 22}, {2008, 30}, {2013, 40}, {2015, 122},
		{2016, 255}, {2017, 438}, {2018, 32000}, {2019, 19900},
		{2020, 2355}, {2021, 1588}, {2022, 210}, {2023, 337}, {2024, 60},
	})
}

// PopulationVE returns Venezuela's population in millions, 1980-2024.
// Peak 30.08M (2015); trough 25.91M (2022), -13.85% as annotated in
// Figure 1d.
func PopulationVE() *series.Series {
	return interpolate([]anchor{
		{1980, 15.0}, {1985, 17.3}, {1990, 19.8}, {1995, 22.0},
		{2000, 24.5}, {2005, 26.6}, {2010, 28.4}, {2015, 30.08},
		{2018, 28.9}, {2020, 26.4}, {2022, 25.91}, {2024, 26.2},
	})
}

// gdpAnchors holds GDP per capita (nominal USD) control points per
// country. The values are synthetic but rank-calibrated: at every
// five-year mark Venezuela's descending rank matches the paper's Figure 13
// annotations.
var gdpAnchors = map[string][]anchor{
	"AR": {{1980, 8500}, {1985, 5500}, {1990, 4300}, {1995, 7800}, {2000, 8200}, {2005, 5500}, {2010, 11500}, {2015, 13800}, {2020, 8500}, {2024, 13000}},
	"BO": {{1980, 1000}, {1985, 900}, {1990, 800}, {1995, 900}, {2000, 1000}, {2005, 1100}, {2010, 2000}, {2015, 3100}, {2020, 3800}, {2024, 3900}},
	"BR": {{1980, 4800}, {1985, 3800}, {1990, 3100}, {1995, 4700}, {2000, 3700}, {2005, 4800}, {2010, 11300}, {2015, 8800}, {2020, 6800}, {2024, 10500}},
	"BZ": {{1980, 1500}, {1985, 1400}, {1990, 1900}, {1995, 2800}, {2000, 3400}, {2005, 3900}, {2010, 4300}, {2015, 4900}, {2020, 4400}, {2024, 5200}},
	"CL": {{1980, 5500}, {1985, 3500}, {1990, 2600}, {1995, 5000}, {2000, 5100}, {2005, 7600}, {2010, 12800}, {2015, 13500}, {2020, 13000}, {2024, 16500}},
	"CO": {{1980, 1800}, {1985, 1500}, {1990, 1600}, {1995, 2500}, {2000, 2500}, {2005, 3400}, {2010, 6300}, {2015, 6700}, {2020, 5300}, {2024, 7000}},
	"CR": {{1980, 3800}, {1985, 2900}, {1990, 1800}, {1995, 3750}, {2000, 4100}, {2005, 4700}, {2010, 8200}, {2015, 11300}, {2020, 12000}, {2024, 14500}},
	"CU": {{1980, 3000}, {1985, 2800}, {1990, 2400}, {1995, 2400}, {2000, 2800}, {2005, 3800}, {2010, 5700}, {2015, 7700}, {2020, 8000}, {2024, 8200}},
	"DO": {{1980, 2100}, {1985, 1900}, {1990, 1600}, {1995, 2100}, {2000, 2800}, {2005, 3700}, {2010, 5400}, {2015, 6900}, {2020, 7200}, {2024, 9800}},
	"EC": {{1980, 1900}, {1985, 1700}, {1990, 1500}, {1995, 2100}, {2000, 1500}, {2005, 3000}, {2010, 4600}, {2015, 6600}, {2020, 5600}, {2024, 6500}},
	"GT": {{1980, 2200}, {1985, 1900}, {1990, 1300}, {1995, 1600}, {2000, 1900}, {2005, 2200}, {2010, 2900}, {2015, 4000}, {2020, 4400}, {2024, 5400}},
	"GY": {{1980, 900}, {1985, 800}, {1990, 700}, {1995, 1000}, {2000, 1000}, {2005, 1100}, {2010, 3000}, {2015, 4600}, {2020, 6900}, {2024, 19000}},
	"HN": {{1980, 1200}, {1985, 1100}, {1990, 1000}, {1995, 1100}, {2000, 1300}, {2005, 1500}, {2010, 2100}, {2015, 2300}, {2020, 3700}, {2024, 3900}},
	"HT": {{1980, 800}, {1985, 900}, {1990, 700}, {1995, 800}, {2000, 800}, {2005, 900}, {2010, 1200}, {2015, 1400}, {2020, 1400}, {2024, 1700}},
	"MX": {{1980, 5200}, {1985, 4800}, {1990, 3100}, {1995, 4000}, {2000, 7000}, {2005, 8300}, {2010, 9300}, {2015, 9600}, {2020, 8300}, {2024, 13000}},
	"NI": {{1980, 1100}, {1985, 1000}, {1990, 900}, {1995, 1000}, {2000, 1200}, {2005, 1300}, {2010, 1700}, {2015, 2100}, {2020, 3600}, {2024, 3900}},
	"PA": {{1980, 3600}, {1985, 3400}, {1990, 2550}, {1995, 3900}, {2000, 4900}, {2005, 4900}, {2010, 8000}, {2015, 13000}, {2020, 12300}, {2024, 17000}},
	"PE": {{1980, 2000}, {1985, 1700}, {1990, 1200}, {1995, 2200}, {2000, 2000}, {2005, 2900}, {2010, 5100}, {2015, 6750}, {2020, 6100}, {2024, 7800}},
	"PY": {{1980, 1700}, {1985, 1500}, {1990, 1400}, {1995, 1900}, {2000, 1700}, {2005, 1700}, {2010, 3200}, {2015, 5400}, {2020, 4900}, {2024, 6200}},
	"SR": {{1980, 2800}, {1985, 2600}, {1990, 2100}, {1995, 1900}, {2000, 2200}, {2005, 3100}, {2010, 8500}, {2015, 8900}, {2020, 6100}, {2024, 6800}},
	"SV": {{1980, 1600}, {1985, 1500}, {1990, 1200}, {1995, 1700}, {2000, 2200}, {2005, 2800}, {2010, 3500}, {2015, 3500}, {2020, 3900}, {2024, 5300}},
	"TT": {{1980, 9000}, {1985, 8200}, {1990, 4200}, {1995, 4600}, {2000, 6400}, {2005, 12000}, {2010, 16000}, {2015, 17000}, {2020, 15000}, {2024, 16500}},
	"UY": {{1980, 6500}, {1985, 4500}, {1990, 3000}, {1995, 6000}, {2000, 6900}, {2005, 5600}, {2010, 11900}, {2015, 15200}, {2020, 15500}, {2024, 22000}},
	"VE": {{1980, 8000}, {1985, 7600}, {1990, 2500}, {1995, 3700}, {2000, 4800}, {2005, 5450}, {2010, 11000}, {2013, 12200}, {2015, 4500}, {2020, 3550}, {2024, 4200}},
}

// GDPPerCapita returns the per-country annual GDP-per-capita panel for the
// 24 LACNIC economies the IMF reports (the registry's small Caribbean
// territories have no IMF series and are excluded, as in the paper).
func GDPPerCapita() *series.Panel {
	p := series.NewPanel()
	for cc, a := range gdpAnchors {
		dst := p.Country(cc)
		for _, pt := range interpolate(a).Points() {
			dst.Set(pt.Month, pt.Value)
		}
	}
	return p
}

// GDPCountries returns the countries covered by GDPPerCapita, sorted.
func GDPCountries() []string {
	out := make([]string, 0, len(gdpAnchors))
	for cc := range gdpAnchors {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// DropFromPeak returns the percent change from the series' maximum to the
// minimum value observed at or after the peak month — the statistic
// annotated on Figure 1's panels. ok is false for series with fewer than
// two points.
func DropFromPeak(s *series.Series) (percent float64, ok bool) {
	peak, found := s.MaxPoint()
	if !found || peak.Value == 0 {
		return 0, false
	}
	min := peak.Value
	seen := false
	for _, p := range s.Points() {
		if p.Month < peak.Month {
			continue
		}
		seen = true
		if p.Value < min {
			min = p.Value
		}
	}
	if !seen || min == peak.Value {
		return 0, false
	}
	return (min - peak.Value) / peak.Value * 100, true
}
