package econ

import (
	"math"
	"testing"
	"time"

	"vzlens/internal/months"
)

func jan(y int) months.Month { return months.New(y, time.January) }

func TestOilCollapseMatchesPaper(t *testing.T) {
	oil := OilProductionVE()
	drop, ok := DropFromPeak(oil)
	if !ok {
		t.Fatal("no drop computed")
	}
	// Paper Figure 1a annotates -81.49%.
	if drop > -78 || drop < -85 {
		t.Errorf("oil drop = %.2f%%, want ~-81.5%%", drop)
	}
	peak, _ := oil.MaxPoint()
	if peak.Month.Year() != 1998 {
		t.Errorf("oil peak year = %d, want 1998", peak.Month.Year())
	}
}

func TestGDPDropMatchesPaper(t *testing.T) {
	ve := GDPPerCapita().Country("VE")
	drop, ok := DropFromPeak(ve)
	if !ok {
		t.Fatal("no drop computed")
	}
	// Paper Figure 1b annotates -70.90% over 7 years.
	if math.Abs(drop-(-70.9)) > 2 {
		t.Errorf("GDP drop = %.2f%%, want ~-70.9%%", drop)
	}
	peak, _ := ve.MaxPoint()
	if peak.Month.Year() != 2013 {
		t.Errorf("GDP peak year = %d, want 2013", peak.Month.Year())
	}
}

func TestInflationPeak(t *testing.T) {
	inf := InflationVE()
	peak, ok := inf.MaxPoint()
	if !ok {
		t.Fatal("empty inflation series")
	}
	if peak.Value != 32000 || peak.Month.Year() != 2018 {
		t.Errorf("inflation peak = %v at %d, want 32000 at 2018", peak.Value, peak.Month.Year())
	}
}

func TestPopulationDecline(t *testing.T) {
	pop := PopulationVE()
	drop, ok := DropFromPeak(pop)
	if !ok {
		t.Fatal("no drop computed")
	}
	// Paper Figure 1d annotates -13.85%.
	if math.Abs(drop-(-13.85)) > 1 {
		t.Errorf("population drop = %.2f%%, want ~-13.85%%", drop)
	}
}

func TestAnnualCoverage(t *testing.T) {
	for name, s := range map[string]interface {
		Get(months.Month) (float64, bool)
	}{
		"oil":        OilProductionVE(),
		"inflation":  InflationVE(),
		"population": PopulationVE(),
	} {
		for y := 1980; y <= 2024; y++ {
			if _, ok := s.Get(jan(y)); !ok {
				t.Errorf("%s: missing year %d", name, y)
			}
		}
	}
}

// TestGDPRanksMatchFigure13 checks the paper's five-yearly rank
// annotations for Venezuela: 3 (1980), 2 (1985), 8 (1990), 9 (1995),
// 7 (2000), 6 (2005), 6 (2010), 18 (2015), 23 (2020).
func TestGDPRanksMatchFigure13(t *testing.T) {
	p := GDPPerCapita()
	want := map[int]int{
		1980: 3, 1985: 2, 1990: 8, 1995: 9, 2000: 7,
		2005: 6, 2010: 6, 2015: 18, 2020: 23,
	}
	for year, wantRank := range want {
		rank, of, ok := p.RankAt("VE", jan(year))
		if !ok {
			t.Fatalf("no VE value for %d", year)
		}
		if of != 24 {
			t.Errorf("%d: ranked among %d countries, want 24", year, of)
		}
		if rank != wantRank {
			t.Errorf("%d: VE rank = %d, want %d", year, rank, wantRank)
		}
	}
}

func TestGDPCountries(t *testing.T) {
	ccs := GDPCountries()
	if len(ccs) != 24 {
		t.Fatalf("countries = %d, want 24", len(ccs))
	}
	for i := 1; i < len(ccs); i++ {
		if ccs[i] <= ccs[i-1] {
			t.Errorf("not sorted at %d: %v", i, ccs)
		}
	}
}

func TestInterpolationIsMonotoneBetweenAnchors(t *testing.T) {
	// GDP of Chile grows monotonically between the 1990 and 1995 anchors.
	cl := GDPPerCapita().Country("CL")
	prev := cl.At(jan(1990))
	for y := 1991; y <= 1995; y++ {
		v := cl.At(jan(y))
		if v < prev {
			t.Errorf("CL GDP decreases %d→%d: %v → %v", y-1, y, prev, v)
		}
		prev = v
	}
}

func TestDropFromPeakEdgeCases(t *testing.T) {
	if _, ok := DropFromPeak(GDPPerCapita().Country("ZZ")); ok {
		t.Error("empty series should not produce a drop")
	}
	// Strictly growing series has no post-peak decline.
	uy := GDPPerCapita().Country("UY")
	last, _ := uy.Last()
	peak, _ := uy.MaxPoint()
	if peak.Month == last.Month {
		if _, ok := DropFromPeak(uy); ok {
			t.Error("peak-at-end series should not produce a drop")
		}
	}
}
