package world

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vzlens/internal/mlab"
	"vzlens/internal/registry"
	"vzlens/internal/resilience"
)

// fastRetry keeps source-loading tests instantaneous.
var fastRetry = resilience.Policy{
	MaxAttempts: 3,
	Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
}

func TestBuildValidatesConfig(t *testing.T) {
	cases := []Config{
		{TraceStart: mm(2020, time.January), TraceEnd: mm(2014, time.January)},
		{ChaosStart: mm(2020, time.January), ChaosEnd: mm(2014, time.January)},
		{Step: -1},
		{SamplesPerProbe: -2},
		{FleetScale: -0.5},
	}
	for i, cfg := range cases {
		if _, err := Build(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Build(Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestBuildWithSourcesFallsBackAndReportsDegraded(t *testing.T) {
	boom := errors.New("mirror down")
	attempts := 0
	w, err := BuildWithSources(context.Background(), Config{Step: 6}, SourceSet{
		Registry: func(context.Context) (*registry.Table, error) {
			attempts++
			return nil, boom
		},
		Retry: fastRetry,
	})
	if err != nil {
		t.Fatalf("BuildWithSources = %v (persistent source failure must not fail the build)", err)
	}
	if attempts != 3 {
		t.Errorf("loader attempts = %d, want 3", attempts)
	}
	if !w.Degraded() {
		t.Fatal("Degraded = false after persistent registry failure")
	}
	var reg AxisStatus
	for _, st := range w.AxisStatuses() {
		if st.Axis == AxisRegistry {
			reg = st
		} else if st.Degraded {
			t.Errorf("axis %s degraded without a loader", st.Axis)
		}
	}
	if !reg.External || !reg.Degraded || !strings.Contains(reg.Error, "mirror down") {
		t.Errorf("registry status = %+v", reg)
	}
	// The synthetic substitute still serves.
	if w.Registry().Len() == 0 {
		t.Error("synthetic registry fallback is empty")
	}
}

func TestBuildWithSourcesRecoversViaRetry(t *testing.T) {
	attempts := 0
	ext := registry.NewTable()
	w, err := BuildWithSources(context.Background(), Config{Step: 6}, SourceSet{
		Registry: func(context.Context) (*registry.Table, error) {
			attempts++
			if attempts < 3 {
				return nil, errors.New("transient")
			}
			return ext, nil
		},
		Retry: fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Degraded() {
		t.Error("Degraded = true after successful retry")
	}
	if w.Registry() != ext {
		t.Error("external registry not wired in")
	}
}

func TestBuildWithSourcesServesExternalMLab(t *testing.T) {
	ar := mlab.NewArchive()
	m := mm(2023, time.July)
	ar.Add([]mlab.Test{
		{Month: m, Country: "VE", DownloadMbps: 1.0},
		{Month: m, Country: "VE", DownloadMbps: 9.0},
		{Month: m, Country: "VE", DownloadMbps: 5.0},
	})
	w, err := BuildWithSources(context.Background(), Config{Step: 6}, SourceSet{
		MLab:  func(context.Context) (*mlab.Archive, error) { return ar, nil },
		Retry: fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MedianSpeed("VE", m); got != 5.0 {
		t.Errorf("MedianSpeed from external archive = %v, want 5.0", got)
	}
	// Months the archive does not cover fall back to the model.
	if got := w.MedianSpeed("BR", m); got <= 0 {
		t.Errorf("fallback MedianSpeed = %v", got)
	}
}

func TestBuildWithSourcesHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildWithSources(ctx, Config{Step: 6}, SourceSet{
		Registry: func(context.Context) (*registry.Table, error) { return registry.NewTable(), nil },
		Retry:    fastRetry,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
