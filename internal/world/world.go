package world

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vzlens/internal/aspop"
	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/dnsroot"
	"vzlens/internal/mlab"
	"vzlens/internal/months"
	"vzlens/internal/netsim"
	"vzlens/internal/peeringdb"
	"vzlens/internal/registry"
	"vzlens/internal/telegeo"
)

// Config parameterizes world construction. Zero fields take defaults.
type Config struct {
	Seed            int64        // RNG seed for measurement noise
	TraceStart      months.Month // traceroute campaign start (default 2014-03)
	TraceEnd        months.Month // campaign end (default 2024-01)
	ChaosStart      months.Month // CHAOS campaign start (default 2016-01)
	ChaosEnd        months.Month // campaign end (default 2024-01)
	Step            int          // months between snapshots (default 1)
	SamplesPerProbe int          // traceroute samples per probe-month (default 3)
	// Policy selects the anycast catchment model for both campaigns;
	// the default (PolicyBGP) is how anycast actually routes, PolicyGeo
	// is the naive baseline the ablation benchmarks compare against.
	Policy netsim.CatchmentPolicy
	// FleetScale multiplies every country's probe counts (default 1).
	// Values below 1 implement the Section 8 coverage-bias sensitivity
	// experiment: fewer vantage points see fewer anycast instances.
	FleetScale float64
	// Workers bounds the worker pool the campaign simulations fan
	// monthly snapshots out over. Zero means GOMAXPROCS. Results are
	// bit-identical for any worker count: every probe-month derives its
	// jitter RNG by hashing (Seed, month, probe), independent of
	// schedule.
	Workers int
	// Scenario, when non-nil, runs both campaigns under a counterfactual
	// topology overlay (see ScenarioPlan). Scenario campaigns always
	// simulate — ingested external campaigns answer only the baseline —
	// and keep the engine's determinism guarantees.
	Scenario *ScenarioPlan
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20240804 // the paper's presentation date at SIGCOMM
	}
	if c.TraceStart.IsZero() {
		c.TraceStart = mm(2014, time.March)
	}
	if c.TraceEnd.IsZero() {
		c.TraceEnd = mm(2024, time.January)
	}
	if c.ChaosStart.IsZero() {
		c.ChaosStart = mm(2016, time.January)
	}
	if c.ChaosEnd.IsZero() {
		c.ChaosEnd = mm(2024, time.January)
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.SamplesPerProbe <= 0 {
		c.SamplesPerProbe = 3
	}
	if c.FleetScale <= 0 {
		c.FleetScale = 1
	}
	return c
}

// World is one coherent synthetic Latin-American Internet.
type World struct {
	Config Config

	Nets   map[string]CountryNet
	Pop    *aspop.Estimates
	Orgs   *bgp.OrgMap
	Roots  *dnsroot.Deployment
	Fleet  *atlas.Fleet
	Cables *telegeo.Map

	// ext holds externally ingested archives loaded by BuildWithSources;
	// nil fields fall back to the synthetic substitutes.
	ext struct {
		pdb   *peeringdb.Archive
		ribs  *bgp.RIBArchive
		reg   *registry.Table
		mlab  *mlab.Archive
		chaos *atlas.ChaosCampaign
		trace *atlas.TraceCampaign
	}
	axes []AxisStatus

	// topoCache holds one resolver cell per month. The map itself is
	// lock-protected; each cell builds its resolver exactly once, outside
	// the map lock, so parallel month shards never serialize on another
	// month's topology construction.
	topoMu    sync.Mutex
	topoCache map[months.Month]*topoCell

	// activeCache memoizes Fleet.ActiveAt per month, shared by both
	// campaigns (their windows overlap) and computed once per month
	// shard instead of once per letter.
	activeMu    sync.Mutex
	activeCache map[months.Month][]atlas.Probe

	// scenCache holds per-scenario resolver cells, keyed by plan key
	// then month, capped at maxScenarioCacheKeys keys (FIFO eviction).
	// Scenario overlays share the baseline topoCache cells underneath.
	scenMu    sync.Mutex
	scenCache map[string]map[months.Month]*topoCell
	scenOrder []string

	// Campaign-kernel state (see kernel.go and views.go): the static
	// base topology plus per-signature overlay resolvers, the per-month
	// probe-class factorings, the interned GPDNS/root site lists and
	// their localized views, and the interned CHAOS TXT strings. All of
	// it memoizes pure functions of the month (or list identity), so
	// concurrent fills are idempotent. Lock ordering: siteMu may take
	// rootsMu (root-list builds read the active-instance memo); nothing
	// else nests.
	kernelMu         sync.Mutex
	kernelBase       *baseCell
	kernelCells      map[kernelSig]*topoCell
	classMu          sync.Mutex
	classCache       map[months.Month]*monthClasses
	siteMu           sync.Mutex
	siteSeq          int32
	gpdnsLists       map[uint32]*siteList
	rootLists        map[rootListKey]*rootList
	rootsMu          sync.Mutex
	activeRootsCache map[months.Month][]dnsroot.Instance
	localMu          sync.Mutex
	localized        map[localKey][]netsim.Site
	txtMu            sync.Mutex
	txtIntern        map[txtKey]string

	// arenas pools campaignArena scratch across month shards, campaign
	// runs, and sweep specs. No New hook: misses are counted as builds
	// in acquireArena.
	arenas sync.Pool

	// factSink is the armed fact-emission hook (see SetFactSink); the
	// kernels load it per month shard, so arming mid-campaign affects
	// only months simulated afterwards.
	factSink atomic.Pointer[factSinkCell]

	// met is the campaign engine's observability surface (see
	// Instrument); the zero value records nothing.
	met worldMetrics
}

// topoCell is a once-cell for one month's resolver.
type topoCell struct {
	once sync.Once
	r    *netsim.Resolver
}

// baseCell is a once-cell for the kernel's static base topology.
type baseCell struct {
	once sync.Once
	t    *netsim.Topology
}

// validate rejects configurations the pipeline cannot honor. It runs on
// the raw config so that explicitly negative knobs are surfaced rather
// than silently defaulted away.
func (c Config) validate() error {
	if c.Step < 0 {
		return fmt.Errorf("world: negative snapshot step %d", c.Step)
	}
	if c.SamplesPerProbe < 0 {
		return fmt.Errorf("world: negative samples per probe %d", c.SamplesPerProbe)
	}
	if c.FleetScale < 0 {
		return fmt.Errorf("world: negative fleet scale %v", c.FleetScale)
	}
	if c.Workers < 0 {
		return fmt.Errorf("world: negative worker count %d", c.Workers)
	}
	d := c.withDefaults()
	if d.TraceEnd.Before(d.TraceStart) {
		return fmt.Errorf("world: trace window inverted (%v after %v)", d.TraceStart, d.TraceEnd)
	}
	if d.ChaosEnd.Before(d.ChaosStart) {
		return fmt.Errorf("world: chaos window inverted (%v after %v)", d.ChaosStart, d.ChaosEnd)
	}
	return nil
}

// validateTables checks every static placement table against the geo
// database, so the topology code below can assume all IATA codes and
// country references resolve — the errors earlier versions deferred to
// panics deep inside TopologyAt surface here, at build time.
func validateTables(nets map[string]CountryNet) error {
	check := func(table, iata string) error {
		if _, err := lookupCity(iata); err != nil {
			return fmt.Errorf("%w (in %s)", err, table)
		}
		return nil
	}
	for _, iata := range []string{"MIA", "CCS"} {
		if err := check("core anchors", iata); err != nil {
			return err
		}
	}
	for _, iata := range tier1Locations {
		if err := check("tier1Locations", iata); err != nil {
			return err
		}
	}
	for _, iata := range veBorderASes {
		if err := check("veBorderASes", iata); err != nil {
			return err
		}
	}
	for _, s := range gpdnsRollout {
		if err := check("gpdnsRollout", s.iata); err != nil {
			return err
		}
		if s.since.IsZero() {
			return fmt.Errorf("world: gpdnsRollout %s: zero month", s.iata)
		}
		if s.host != "google" {
			if _, ok := nets[s.host]; !ok {
				return fmt.Errorf("world: gpdnsRollout %s: unknown host country %q", s.iata, s.host)
			}
		}
	}
	for _, spec := range veProbeSpec {
		if err := check("veProbeSpec", spec.iata); err != nil {
			return err
		}
	}
	for cc, via := range regionalUpstreams {
		if _, ok := nets[cc]; !ok {
			return fmt.Errorf("world: regionalUpstreams: unknown country %q", cc)
		}
		if _, ok := nets[via]; !ok {
			return fmt.Errorf("world: regionalUpstreams[%s]: unknown upstream %q", cc, via)
		}
	}
	return nil
}

// Build assembles a World from the synthetic substitutes. It validates
// the configuration and every static placement table up front and
// returns an error — earlier versions panicked from deep inside the
// topology code instead.
func Build(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	nets := buildNets()
	if err := validateTables(nets); err != nil {
		return nil, err
	}
	pop := buildPopulations(nets)
	w := &World{
		Config:      cfg,
		Nets:        nets,
		Pop:         pop,
		Orgs:        buildOrgs(nets, pop),
		Roots:       dnsroot.DefaultDeployment(),
		Cables:      telegeo.LatinAmerica(),
		topoCache:   map[months.Month]*topoCell{},
		activeCache: map[months.Month][]atlas.Probe{},
	}
	w.Fleet = buildFleet(nets, cfg.FleetScale)
	return w, nil
}

// fleetAnchors drives non-Venezuelan probe counts, calibrated to
// Appendix F (Figure 17): the region grows from roughly 300 to 450+
// probes, led by Brazil.
var fleetAnchors = map[string][4]int{ // counts at 2014, 2016, 2022, 2024
	"BR": {100, 120, 150, 170}, "AR": {35, 40, 60, 70}, "CL": {25, 30, 42, 50},
	"MX": {20, 25, 38, 45}, "CO": {15, 20, 32, 40}, "UY": {6, 8, 11, 12},
	"PE": {5, 6, 10, 12}, "EC": {4, 5, 8, 10}, "CR": {3, 4, 7, 8},
	"PA": {2, 3, 5, 6}, "PY": {2, 3, 5, 6}, "BO": {2, 2, 4, 5},
	"DO": {2, 2, 4, 5}, "GT": {1, 2, 3, 4}, "TT": {1, 2, 3, 4},
	"HN": {1, 1, 2, 2}, "NI": {1, 1, 2, 2}, "CU": {0, 0, 1, 1},
	"HT": {0, 0, 1, 1}, "SR": {1, 1, 2, 2}, "GY": {1, 1, 2, 2},
	"BZ": {0, 0, 1, 1}, "SV": {1, 1, 2, 2}, "CW": {1, 2, 3, 3},
	"GF": {1, 1, 1, 1}, "BQ": {0, 1, 1, 1}, "SX": {0, 1, 1, 1},
}

// veProbeSpec places Venezuela's probes explicitly: 30 by 2024, only 8 of
// them inside CANTV, with the low-latency vantage points in Airtek
// (Maracaibo) and Viginet (San Cristobal) networks near the Colombian
// border — the geography of Figure 20.
var veProbeSpec = []struct {
	asn   bgp.ASN
	iata  string
	since months.Month
}{
	{ASCANTV, "CCS", mm(2014, time.March)},
	{ASCANTV, "CCS", mm(2014, time.March)},
	{ASCANTV, "CCS", mm(2014, time.June)},
	{ASCANTV, "VLN", mm(2014, time.June)},
	{21826, "CCS", mm(2014, time.March)},
	{21826, "VLN", mm(2014, time.June)},
	{ASTelefonica, "CCS", mm(2014, time.June)},
	{11562, "CCS", mm(2014, time.September)},
	{ASMovilnet, "CCS", mm(2015, time.March)},
	{ASTelefonica, "CCS", mm(2015, time.June)},
	{61461, "MAR", mm(2018, time.January)},
	{263703, "SCI", mm(2019, time.January)},
	{ASCANTV, "CCS", mm(2020, time.January)},
	{11562, "VLN", mm(2020, time.June)},
	{21826, "VLN", mm(2021, time.June)},
	{ASCANTV, "CCS", mm(2022, time.January)},
	{ASCANTV, "MAR", mm(2022, time.January)},
	{264731, "CCS", mm(2022, time.March)},
	{264731, "CCS", mm(2022, time.March)},
	{264628, "CCS", mm(2022, time.June)},
	{264628, "CCS", mm(2022, time.June)},
	{61461, "MAR", mm(2022, time.June)},
	{61461, "MAR", mm(2022, time.September)},
	{61461, "SCI", mm(2023, time.January)},
	{263703, "SCI", mm(2023, time.January)},
	{263703, "MAR", mm(2023, time.March)},
	{264628, "MAR", mm(2023, time.March)},
	{272809, "CCS", mm(2023, time.June)},
	{272809, "CCS", mm(2023, time.June)},
	{ASCANTV, "VLN", mm(2023, time.June)},
}

// buildFleet materializes the regional probe fleet, scaling every
// country's counts by scale (Venezuela's explicit probes are sampled
// proportionally, keeping their AS and city mix).
func buildFleet(nets map[string]CountryNet, scale float64) *atlas.Fleet {
	scaled := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if n > 0 && v < 1 {
			v = 1
		}
		return v
	}
	var plans []atlas.CountryPlan
	for _, cc := range sortedCountries(nets) {
		if cc == "VE" {
			continue
		}
		counts, ok := fleetAnchors[cc]
		if !ok {
			continue
		}
		net := nets[cc]
		plans = append(plans, atlas.CountryPlan{
			CC: cc,
			Anchors: []atlas.CountAnchor{
				{Month: mm(2014, time.March), Count: scaled(counts[0])},
				{Month: mm(2016, time.January), Count: scaled(counts[1])},
				{Month: mm(2022, time.January), Count: scaled(counts[2])},
				{Month: mm(2024, time.January), Count: scaled(counts[3])},
			},
			ASNs: append([]bgp.ASN{net.Transit}, net.Eyeballs...),
		})
	}
	f := atlas.BuildFleet(plans)
	id := 1
	keep := scaled(len(veProbeSpec))
	stride := float64(len(veProbeSpec)) / float64(keep)
	for k := 0; k < keep; k++ {
		spec := veProbeSpec[int(float64(k)*stride)]
		f.Add(atlas.Probe{
			ID:        id,
			Country:   "VE",
			City:      cityAt(spec.iata),
			ASN:       spec.asn,
			Connected: spec.since,
		})
		id++
	}
	return f
}

// campaignMonths expands a [lo, hi] window with the configured step.
func (w *World) campaignMonths(lo, hi months.Month) []months.Month {
	var out []months.Month
	for m := lo; !m.After(hi); m = m.Add(w.Config.Step) {
		out = append(out, m)
	}
	return out
}

// ASRelArchive exports the monthly AS relationship files over [lo, hi]
// (stepped), mirroring the CAIDA serial-1 archive back to 1998.
func (w *World) ASRelArchive(lo, hi months.Month) *bgp.Archive {
	a := bgp.NewArchive()
	for m := lo; !m.After(hi); m = m.Add(w.Config.Step) {
		a.Put(m, w.TopologyAt(m).Topology().Graph())
	}
	return a
}

// RIBArchive exports monthly Venezuelan prefix-to-AS snapshots over
// [lo, hi] (stepped), mirroring the RouteViews pfx2as archive. When an
// external RouteViews archive was ingested, it is served as-is.
func (w *World) RIBArchive(lo, hi months.Month) *bgp.RIBArchive {
	if w.ext.ribs != nil {
		return w.ext.ribs
	}
	a := bgp.NewRIBArchive()
	for m := lo; !m.After(hi); m = m.Add(w.Config.Step) {
		a.Put(m, buildVERIB(m))
	}
	return a
}

// Registry exports the LACNIC delegation table for Venezuela.
func (w *World) Registry() *registry.Table {
	if w.ext.reg != nil {
		return w.ext.reg
	}
	return buildVERegistry()
}

// MedianSpeed returns the NDT median download speed for country cc at
// month m, preferring an ingested M-Lab archive over the synthetic
// trajectory model.
func (w *World) MedianSpeed(cc string, m months.Month) float64 {
	if w.ext.mlab != nil {
		if v, ok := w.ext.mlab.Median(cc, m); ok {
			return v
		}
	}
	return mlab.MedianSpeed(cc, m)
}
