package world

import (
	"math/rand"
	"time"

	"vzlens/internal/netsim"
)

// campaignArena is the reusable scratch a month shard simulates into:
// flat per-class columns (reachability, selected site, one-way
// latency, access delay), the shared great-circle distance cache, and
// the value-type jitter source its *rand.Rand draws from. Arenas live
// in a World-level pool, so columns allocated for one month — or one
// sweep spec — are reused by the next instead of re-made per shard;
// steady-state campaign months allocate only their exactly-sized
// output slice. An arena is owned by one goroutine between acquire and
// release and carries no cross-month state: every column is fully
// overwritten per month and the RNG is re-seeded per probe.
type campaignArena struct {
	jit  jitterSource
	rng  *rand.Rand
	pair netsim.PairCache

	ok     []bool    // class (or letter x class) reachability
	idx    []int32   // selected site index per slot
	oneWay []float64 // one-way latency per slot
	access []float64 // access delay per slot
	hops   []uint8   // catchment AS-path length per slot (fact emission)
}

// newCampaignArena builds an empty arena whose Rand permanently wraps
// its own jitter source: re-seeding jit re-aims the existing Rand, so
// the per-probe rand.New of the old inner loop becomes a free Seed.
func newCampaignArena() *campaignArena {
	ar := &campaignArena{}
	ar.rng = rand.New(&ar.jit)
	return ar
}

// ensure sizes the columns to n slots, reporting whether backing
// arrays had to grow. Contents are unspecified afterwards; the kernels
// write every slot they read.
func (ar *campaignArena) ensure(n int) bool {
	if cap(ar.ok) >= n && cap(ar.idx) >= n && cap(ar.oneWay) >= n && cap(ar.access) >= n && cap(ar.hops) >= n {
		ar.ok = ar.ok[:n]
		ar.idx = ar.idx[:n]
		ar.oneWay = ar.oneWay[:n]
		ar.access = ar.access[:n]
		ar.hops = ar.hops[:n]
		return false
	}
	ar.ok = make([]bool, n)
	ar.idx = make([]int32, n)
	ar.oneWay = make([]float64, n)
	ar.access = make([]float64, n)
	ar.hops = make([]uint8, n)
	return true
}

// acquireArena checks an arena out of the pool (building one when the
// pool is dry) and reports how long the acquisition took, so campaign
// utilization can discount pool overhead from simulation busy time.
func (w *World) acquireArena() (*campaignArena, time.Duration) {
	t0 := time.Now()
	ar, _ := w.arenas.Get().(*campaignArena)
	if ar == nil {
		ar = newCampaignArena()
		w.met.arenaBuilds.Inc()
	}
	w.met.arenaAcquires.Inc()
	return ar, time.Since(t0)
}

// releaseArena returns an arena to the pool.
func (w *World) releaseArena(ar *campaignArena) { w.arenas.Put(ar) }
