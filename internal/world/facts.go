package world

import (
	"fmt"

	"vzlens/internal/atlas"
	"vzlens/internal/months"
)

// FactSink receives baseline campaign months as the columnar kernels
// emit them — the hook the fact lake builds its month-partitioned
// columnar files from. Hooks fire only for baseline simulation (never
// under a scenario overlay) and only while a sink is armed via
// SetFactSink, from inside month shards: implementations must be safe
// for concurrent calls on distinct months, and idempotent per month
// (a month may be re-simulated by a concurrent campaign run; the
// emission is deterministic, so duplicate deliveries carry identical
// rows). The slices are the kernel's own month fragments — valid only
// for the duration of the call; sinks must encode, not retain.
type FactSink interface {
	// TraceMonthFacts delivers one simulated traceroute month. hops
	// parallels samples: the AS-path length of each sample's selected
	// anycast site (the per-class catchment hop count).
	TraceMonthFacts(m months.Month, samples []atlas.TraceSample, hops []uint8)
	// ChaosMonthFacts delivers one simulated CHAOS month.
	ChaosMonthFacts(m months.Month, results []atlas.ChaosResult)
}

// SetFactSink arms (or, with nil, disarms) the campaign kernels' fact
// emission hook. Emission never touches the jitter RNG or reorders any
// computation, so campaign output is bit-identical with or without a
// sink.
func (w *World) SetFactSink(s FactSink) {
	if s == nil {
		w.factSink.Store(&factSinkCell{})
		return
	}
	w.factSink.Store(&factSinkCell{sink: s})
}

// factSinkCell boxes the interface so an atomic.Pointer can hold "no
// sink" and "sink" uniformly.
type factSinkCell struct{ sink FactSink }

// armedFactSink returns the currently armed sink, or nil.
func (w *World) armedFactSink() FactSink {
	cell := w.factSink.Load()
	if cell == nil {
		return nil
	}
	return cell.sink
}

// TopologySignatureAt renders the campaign kernel's wiring signature
// for month m — the (CANTV provider set, customer cone size) pair that
// is the only thing varying between monthly topologies. The fact lake's
// topology-era dimension groups months by this string: two months with
// equal signatures share one resolver and simulate identical paths.
func TopologySignatureAt(m months.Month) string {
	sig := kernelSigAt(m)
	return fmt.Sprintf("prov%#x-cust%d", sig.prov, sig.cust)
}

// Scope fingerprints the configuration axes that determine campaign
// output, after defaulting. Two configs with equal scopes simulate
// bit-identical campaigns; Workers is deliberately excluded (output is
// schedule-independent). The HTTP layer keys its result store and the
// cluster tier's frame exchange on this string, and the fact lake's
// manifest records it so a lake directory reused across
// differently-configured servers is rebuilt, never trusted.
func (c Config) Scope() string {
	d := c.withDefaults()
	return fmt.Sprintf("seed%d-step%d-tr%s-%s-ch%s-%s-spp%d-pol%d-fs%g",
		d.Seed, d.Step, d.TraceStart, d.TraceEnd,
		d.ChaosStart, d.ChaosEnd, d.SamplesPerProbe, d.Policy, d.FleetScale)
}
