package world

import (
	"context"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/mlab"
	"vzlens/internal/peeringdb"
	"vzlens/internal/registry"
	"vzlens/internal/resilience"
)

// Axis names one of the five independent archival inputs the paper's
// pipeline joins.
type Axis string

const (
	AxisPeeringDB  Axis = "peeringdb"  // CAIDA's daily PeeringDB dumps
	AxisAtlas      Axis = "atlas"      // RIPE Atlas result archives
	AxisMLab       Axis = "mlab"       // M-Lab NDT unified views
	AxisRouteViews Axis = "routeviews" // RouteViews MRT RIBs / pfx2as
	AxisRegistry   Axis = "registry"   // LACNIC delegation files
)

// AxisStatus records how one ingestion axis fared during
// BuildWithSources; the /readyz endpoint reports it verbatim.
type AxisStatus struct {
	Axis Axis `json:"axis"`
	// External reports whether a loader was configured for the axis.
	External bool `json:"external"`
	// Degraded is set when the loader failed persistently and the
	// synthetic substitute is serving in its place.
	Degraded bool   `json:"degraded"`
	Error    string `json:"error,omitempty"`
}

// SourceSet wires external archival loaders into world construction.
// Every field is optional: a nil loader means the axis is synthetic by
// design and never counts as degraded. Loaders are retried per Retry
// and bounded per attempt by Timeout; a loader that still fails leaves
// its axis on the synthetic substitute and marks it Degraded instead of
// failing the build — ten years of archives should not be hostage to
// one stalled mirror.
type SourceSet struct {
	PeeringDB  func(ctx context.Context) (*peeringdb.Archive, error)
	Atlas      func(ctx context.Context) (*atlas.ChaosCampaign, *atlas.TraceCampaign, error)
	MLab       func(ctx context.Context) (*mlab.Archive, error)
	RouteViews func(ctx context.Context) (*bgp.RIBArchive, error)
	Registry   func(ctx context.Context) (*registry.Table, error)

	// Retry is the per-axis retry policy (zero value: DefaultPolicy).
	Retry resilience.Policy
	// Timeout bounds each attempt (0: no per-attempt deadline).
	Timeout time.Duration
}

func (s SourceSet) retryPolicy() resilience.Policy {
	if s.Retry.MaxAttempts == 0 && s.Retry.BaseDelay == 0 {
		return resilience.DefaultPolicy()
	}
	return s.Retry
}

// loadAxis retries fn under the source policy and per-attempt deadline.
func loadAxis(ctx context.Context, src SourceSet, fn func(ctx context.Context) error) error {
	return resilience.Retry(ctx, src.retryPolicy(), func(ctx context.Context) error {
		return resilience.WithDeadline(ctx, src.Timeout, fn)
	})
}

// BuildWithSources assembles a World, ingesting each configured external
// source with retry and falling back to the synthetic substitute — with
// a Degraded axis status — when a source keeps failing. Only an invalid
// configuration or a cancelled context fails the build outright.
func BuildWithSources(ctx context.Context, cfg Config, src SourceSet) (*World, error) {
	w, err := Build(cfg)
	if err != nil {
		return nil, err
	}

	load := func(axis Axis, configured bool, fn func(ctx context.Context) error) error {
		st := AxisStatus{Axis: axis, External: configured}
		if configured {
			if err := loadAxis(ctx, src, fn); err != nil {
				st.Degraded = true
				st.Error = err.Error()
			}
		}
		w.axes = append(w.axes, st)
		return ctx.Err()
	}

	steps := []struct {
		axis Axis
		on   bool
		fn   func(ctx context.Context) error
	}{
		{AxisPeeringDB, src.PeeringDB != nil, func(ctx context.Context) error {
			a, err := src.PeeringDB(ctx)
			if err == nil {
				w.ext.pdb = a
			}
			return err
		}},
		{AxisAtlas, src.Atlas != nil, func(ctx context.Context) error {
			chaos, trace, err := src.Atlas(ctx)
			if err == nil {
				w.ext.chaos, w.ext.trace = chaos, trace
			}
			return err
		}},
		{AxisMLab, src.MLab != nil, func(ctx context.Context) error {
			a, err := src.MLab(ctx)
			if err == nil {
				w.ext.mlab = a
			}
			return err
		}},
		{AxisRouteViews, src.RouteViews != nil, func(ctx context.Context) error {
			a, err := src.RouteViews(ctx)
			if err == nil {
				w.ext.ribs = a
			}
			return err
		}},
		{AxisRegistry, src.Registry != nil, func(ctx context.Context) error {
			t, err := src.Registry(ctx)
			if err == nil {
				w.ext.reg = t
			}
			return err
		}},
	}
	for _, s := range steps {
		if err := load(s.axis, s.on, s.fn); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// AxisStatuses returns the per-axis ingestion report (nil for a world
// built without sources).
func (w *World) AxisStatuses() []AxisStatus {
	out := make([]AxisStatus, len(w.axes))
	copy(out, w.axes)
	return out
}

// Degraded reports whether any ingestion axis fell back to its
// synthetic substitute.
func (w *World) Degraded() bool {
	for _, st := range w.axes {
		if st.Degraded {
			return true
		}
	}
	return false
}
