package world

import (
	"fmt"
	"time"

	"vzlens/internal/bgp"
	"vzlens/internal/dnsroot"
	"vzlens/internal/geo"
	"vzlens/internal/months"
	"vzlens/internal/netsim"
)

// tier1Locations places the global transit providers at their primary
// Latin-America-facing interconnection city; Miami dominates in reality.
var tier1Locations = map[bgp.ASN]string{
	ASVerizon: "MIA", ASSprint: "MIA", ASArelion: "ARN", ASGTT: "JFK",
	ASLevel3: "MIA", ASGBLX: "MIA", ASnLayer: "ORD", ASOrange: "CDG",
	ASTelecomIT: "MIA", ASATT: "DFW", ASTelxius: "MAD", ASColumbus: "MIA",
	ASGoldData: "MIA", ASVtal: "MIA", ASGoldDataI: "MIA", ASISPNet: "MIA",
	ASNetRail: "MIA", ASLatamTel: "MIA",
}

// foreignTransits gives non-LACNIC countries referenced in the DNS-origin
// analysis one national network each, joined to the global peer mesh.
var foreignTransits = map[string]bgp.ASN{
	"US": ASLevel3, "GB": 2856, "DE": 3320, "FR": ASOrange, "NL": 1136,
	"SE": ASArelion, "JP": 2914, "ZA": 3741, "CA": 577, "RU": 20485,
	"ES": ASTelxius, "IT": ASTelecomIT,
}

// regionalUpstreams routes small economies through a neighbor instead of
// straight to the global core, as their real transit markets do. Cuba's
// dependence on Venezuela follows the ALBA cable's purpose.
var regionalUpstreams = map[string]string{
	"BO": "PE", "PY": "AR", "HT": "DO", "NI": "CR", "HN": "GT",
	"GY": "TT", "SR": "TT", "BZ": "MX", "CU": "VE", "GF": "BR",
	"CW": "CO", "BQ": "CO", "SX": "DO",
}

// veBorderASes are the Venezuelan access networks that reach the world
// through Colombia rather than through CANTV — the low-latency vantage
// points of Figure 20 (Airtek around Maracaibo, Viginet at the border).
var veBorderASes = map[bgp.ASN]string{
	61461:  "MAR", // Airtek Solutions, Maracaibo
	263703: "SCI", // Viginet, San Cristobal
}

// veOwnTransitASes are Venezuelan networks with their own international
// transit (not CANTV customers).
var veOwnTransitASes = map[bgp.ASN]bgp.ASN{
	21826:        ASColumbus, // Telemic buys from Columbus Networks
	11562:        ASColumbus, // Net Uno
	ASTelefonica: ASTelxius,  // Telefonica's backbone is Telxius
}

// lookupCity resolves an IATA code, reporting unknown codes as errors;
// Build validates every static table through it so that the hot paths
// below can use cityAt without a panic fallback.
func lookupCity(iata string) (geo.City, error) {
	c, ok := geo.LookupIATA(iata)
	if !ok {
		return geo.City{}, fmt.Errorf("world: unknown IATA %q", iata)
	}
	return c, nil
}

// cityAt resolves an IATA code already validated at build time. Unknown
// codes (impossible after validation) degrade to the zero City rather
// than panicking.
func cityAt(iata string) geo.City {
	c, _ := geo.LookupIATA(iata)
	return c
}

// TopologyAt assembles the interdomain topology for month m. Results are
// cached on the World — both campaigns, the archive exports, and the
// HTTP handlers share one resolver (and therefore one set of memoized
// path trees) per month. Only the cell lookup holds the cache lock;
// construction runs under the cell's own once, so parallel month shards
// build distinct months concurrently.
func (w *World) TopologyAt(m months.Month) *netsim.Resolver {
	w.topoMu.Lock()
	cell, ok := w.topoCache[m]
	if !ok {
		cell = &topoCell{}
		w.topoCache[m] = cell
	}
	w.topoMu.Unlock()
	cell.once.Do(func() { cell.r = w.buildTopologyAt(m) })
	return cell.r
}

// buildTopologyAt constructs month m's topology and resolver.
func (w *World) buildTopologyAt(m months.Month) *netsim.Resolver {
	return netsim.NewResolver(w.assembleTopology(func(t *netsim.Topology) {
		w.wireVenezuela(t, m)
	}))
}

// assembleTopology constructs the month-independent part of the
// interdomain topology — the tier-1 mesh, foreign nationals, and every
// non-Venezuelan country fleet — delegating the Venezuelan wiring
// (the only month-dependent piece) to wireVE. buildTopologyAt passes
// the documented monthly timeline; the campaign kernel passes a
// superset variant whose months are carved out by overlay edits.
func (w *World) assembleTopology(wireVE func(*netsim.Topology)) *netsim.Topology {
	t := netsim.New()

	// Global transit core: full peer mesh among tier-1s plus Google.
	var tier1s []bgp.ASN
	for asn, iata := range tier1Locations {
		t.Locate(asn, cityAt(iata))
		tier1s = append(tier1s, asn)
	}
	sortASNs(tier1s)
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			t.AddLink(a, b, bgp.PeerPeer)
		}
	}
	t.Locate(ASGoogle, cityAt("MIA"))
	for _, a := range tier1s {
		t.AddLink(ASGoogle, a, bgp.PeerPeer)
	}

	// Foreign national networks join the mesh.
	for cc, asn := range foreignTransits {
		if _, ok := tier1Locations[asn]; ok {
			continue // already placed as a tier-1
		}
		cities := geo.CitiesIn(cc)
		if len(cities) > 0 {
			t.Locate(asn, cities[0])
		}
		for _, a := range tier1s {
			t.AddLink(asn, a, bgp.PeerPeer)
		}
	}

	// Country fleets: the national transit buys from two tier-1s (or a
	// regional neighbor), eyeballs buy from the national transit.
	for _, cc := range sortedCountries(w.Nets) {
		net := w.Nets[cc]
		capital := capitalOf(cc)
		t.Locate(net.Transit, capital)
		if cc == "VE" {
			wireVE(t)
			continue
		}
		if via, ok := regionalUpstreams[cc]; ok {
			t.AddLink(w.Nets[via].Transit, net.Transit, bgp.ProviderCustomer)
		} else {
			// Deterministic pair of tier-1 providers.
			idx := int(net.Transit) % len(tier1s)
			t.AddLink(tier1s[idx], net.Transit, bgp.ProviderCustomer)
			t.AddLink(tier1s[(idx+7)%len(tier1s)], net.Transit, bgp.ProviderCustomer)
		}
		for _, eb := range net.Eyeballs {
			t.Locate(eb, capital)
			t.AddLink(net.Transit, eb, bgp.ProviderCustomer)
		}
	}

	return t
}

// wireVenezuela adds the Venezuelan edges for month m: CANTV's transit
// providers per the documented timeline, its domestic customer cone, the
// independent internationally-connected networks, and the border ASes
// homed to Colombia.
func (w *World) wireVenezuela(t *netsim.Topology, m months.Month) {
	ccs := cityAt("CCS")
	t.Locate(ASCANTV, ccs)
	for _, p := range CANTVProvidersAt(m) {
		t.AddLink(p, ASCANTV, bgp.ProviderCustomer)
	}
	for i := 0; i < cantvCustomerCount(m); i++ {
		cust := cantvCustomerASN(i)
		t.Locate(cust, ccs)
		t.AddLink(ASCANTV, cust, bgp.ProviderCustomer)
	}
	for _, eb := range w.Nets["VE"].Eyeballs {
		if eb == ASCANTV {
			continue
		}
		if iata, ok := veBorderASes[eb]; ok {
			t.Locate(eb, cityAt(iata))
			t.AddLink(w.Nets["CO"].Transit, eb, bgp.ProviderCustomer)
			continue
		}
		t.Locate(eb, ccs)
		if upstream, ok := veOwnTransitASes[eb]; ok {
			t.AddLink(upstream, eb, bgp.ProviderCustomer)
			continue
		}
		t.AddLink(ASCANTV, eb, bgp.ProviderCustomer)
	}
}

// wireVenezuelaKernel is the campaign kernel's variant of
// wireVenezuela: a month-independent superset. CANTV carries no
// transit providers (each month's overlay adds the documented ones)
// and every domestic customer that will ever exist is wired (overlays
// remove the not-yet-active tail). The eyeball, border, and
// own-transit edges are identical to wireVenezuela — they never vary
// by month.
func (w *World) wireVenezuelaKernel(t *netsim.Topology) {
	ccs := cityAt("CCS")
	t.Locate(ASCANTV, ccs)
	for i := 0; i < maxCANTVCustomers; i++ {
		cust := cantvCustomerASN(i)
		t.Locate(cust, ccs)
		t.AddLink(ASCANTV, cust, bgp.ProviderCustomer)
	}
	for _, eb := range w.Nets["VE"].Eyeballs {
		if eb == ASCANTV {
			continue
		}
		if iata, ok := veBorderASes[eb]; ok {
			t.Locate(eb, cityAt(iata))
			t.AddLink(w.Nets["CO"].Transit, eb, bgp.ProviderCustomer)
			continue
		}
		t.Locate(eb, ccs)
		if upstream, ok := veOwnTransitASes[eb]; ok {
			t.AddLink(upstream, eb, bgp.ProviderCustomer)
			continue
		}
		t.AddLink(ASCANTV, eb, bgp.ProviderCustomer)
	}
}

// capitalOf returns a country's primary city (first city-table entry).
func capitalOf(cc string) geo.City {
	cities := geo.CitiesIn(cc)
	if len(cities) == 0 {
		if c, ok := geo.LookupCountry(cc); ok {
			return geo.City{Name: c.Name, Country: cc, Lat: c.Lat, Lon: c.Lon}
		}
		return geo.City{Name: cc, Country: cc}
	}
	return cities[0]
}

// gpdnsSite describes one Google Public DNS deployment.
type gpdnsSite struct {
	iata  string
	host  string // "google" or the country code whose transit hosts it
	since months.Month
}

// gpdnsRollout models GPDNS expansion over the study period: the US
// anycast origin from the start, in-country replicas appearing as Google
// built out the region — never in Venezuela.
var gpdnsRollout = []gpdnsSite{
	{"MIA", "google", mm(2009, time.December)},
	{"GRU", "BR", mm(2014, time.January)},
	{"EZE", "AR", mm(2014, time.January)},
	{"SCL", "CL", mm(2014, time.January)},
	{"MEX", "MX", mm(2014, time.January)},
	{"BOG", "CO", mm(2017, time.January)},
	{"LIM", "PE", mm(2018, time.January)},
	{"MVD", "UY", mm(2018, time.January)},
	{"GIG", "BR", mm(2019, time.January)},
	{"PTY", "PA", mm(2019, time.January)},
	{"UIO", "EC", mm(2020, time.January)},
	{"FOR", "BR", mm(2020, time.January)},
	{"POA", "BR", mm(2021, time.January)},
	{"SJO", "CR", mm(2021, time.January)},
	{"SDQ", "DO", mm(2021, time.January)},
	{"ASU", "PY", mm(2021, time.January)},
	{"GUA", "GT", mm(2022, time.January)},
	{"SAL", "SV", mm(2021, time.June)},
	{"CUR", "CW", mm(2021, time.June)},
	{"CAY", "GF", mm(2021, time.June)},
	{"POS", "TT", mm(2021, time.June)},
	{"TGU", "HN", mm(2022, time.June)},
	{"MGA", "NI", mm(2022, time.June)},
	{"LPB", "BO", mm(2022, time.June)},
	{"BZE", "BZ", mm(2023, time.January)},
	{"GEO", "GY", mm(2023, time.January)},
	{"PBM", "SR", mm(2023, time.January)},
}

// GPDNSSitesAt returns the Google Public DNS anycast sites active at
// month m.
func (w *World) GPDNSSitesAt(m months.Month) []netsim.Site {
	var out []netsim.Site
	for _, s := range gpdnsRollout {
		if m.Before(s.since) {
			continue
		}
		host := ASGoogle
		if s.host != "google" {
			host = w.Nets[s.host].Transit
		}
		out = append(out, netsim.Site{Host: host, City: cityAt(s.iata)})
	}
	return out
}

// RootSitesAt returns the anycast sites of one root letter at month m,
// paired with the instances they represent. Instances are hosted by
// networks of their country (cycling through the national fleet);
// Venezuela's Caracas instances were hosted inside CANTV, the Maracaibo
// replacement inside Airtek's Maracaibo network.
func (w *World) RootSitesAt(letter dnsroot.Letter, m months.Month) ([]netsim.Site, []dnsroot.Instance) {
	var sites []netsim.Site
	var insts []dnsroot.Instance
	for _, inst := range w.activeRootsAt(m) {
		if inst.Letter != letter {
			continue
		}
		sites = append(sites, netsim.Site{Host: w.rootHost(inst), City: inst.City})
		insts = append(insts, inst)
	}
	return sites, insts
}

// rootHost picks the AS hosting a root instance.
func (w *World) rootHost(inst dnsroot.Instance) bgp.ASN {
	cc := inst.City.Country
	if cc == "VE" {
		if inst.City.Name == "Maracaibo" {
			return 61461 // Airtek
		}
		return ASCANTV
	}
	if net, ok := w.Nets[cc]; ok {
		all := append([]bgp.ASN{net.Transit}, net.Eyeballs...)
		return all[(int(inst.Letter)+inst.Index)%len(all)]
	}
	if asn, ok := foreignTransits[cc]; ok {
		return asn
	}
	return ASLevel3
}

// accessAnchor pins a country's last-mile access delay (ms, one way).
type accessAnchor struct {
	m  months.Month
	ms float64
}

// accessDelay encodes each country's access-network latency trajectory:
// most of the region improves as fiber replaces DSL; Venezuela improves
// only with the 2022 fiber plans.
var accessDelay = map[string][]accessAnchor{
	"VE": {{mm(2014, time.January), 5.5}, {mm(2021, time.October), 5.0}, {mm(2023, time.July), 1.0}},
	"AR": {{mm(2014, time.January), 5.8}, {mm(2016, time.January), 5.2}, {mm(2023, time.July), 4.7}},
	"CL": {{mm(2014, time.January), 5.4}, {mm(2016, time.January), 4.7}, {mm(2023, time.July), 5.0}},
	"BR": {{mm(2014, time.January), 9.5}, {mm(2016, time.January), 8.3}, {mm(2023, time.July), 2.9}},
	"CO": {{mm(2014, time.January), 5.0}, {mm(2017, time.June), 7.5}, {mm(2023, time.July), 7.2}},
	"MX": {{mm(2014, time.January), 14.4}, {mm(2019, time.January), 12.0}, {mm(2023, time.July), 9.8}},
	"PE": {{mm(2014, time.January), 9.0}, {mm(2023, time.July), 5.0}},
	"EC": {{mm(2014, time.January), 9.0}, {mm(2023, time.July), 6.0}},
	"UY": {{mm(2014, time.January), 6.0}, {mm(2023, time.July), 3.0}},
}

const defaultAccessMs = 8.0

// AccessDelayMs returns the one-way access delay for country cc at month
// m, interpolating between anchors.
func AccessDelayMs(cc string, m months.Month) float64 {
	as, ok := accessDelay[cc]
	if !ok {
		return defaultAccessMs
	}
	if !m.After(as[0].m) {
		return as[0].ms
	}
	last := as[len(as)-1]
	if !m.Before(last.m) {
		return last.ms
	}
	for i := 0; i < len(as)-1; i++ {
		lo, hi := as[i], as[i+1]
		if m.Before(lo.m) || !m.Before(hi.m) {
			continue
		}
		frac := float64(m.Sub(lo.m)) / float64(hi.m.Sub(lo.m))
		return lo.ms*(1-frac) + hi.ms*frac
	}
	return last.ms
}
