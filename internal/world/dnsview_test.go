package world

import (
	"sort"
	"testing"

	"vzlens/internal/dnsroot"
	"vzlens/internal/months"
)

func TestProbeAt(t *testing.T) {
	w, err := Build(Config{Step: 12})
	if err != nil {
		t.Fatal(err)
	}
	// VE probe 1 (CANTV, Caracas) connects 2014-03.
	if _, ok := w.ProbeAt(1, months.MustParse("2014-03")); !ok {
		t.Error("probe 1 inactive at its connection month")
	}
	if _, ok := w.ProbeAt(1, months.MustParse("2014-02")); ok {
		t.Error("probe 1 active before connecting")
	}
	p, ok := w.ProbeAt(1, months.MustParse("2020-01"))
	if !ok || p.Country != "VE" {
		t.Errorf("probe 1 = %+v, %v; want active VE probe", p, ok)
	}
	if _, ok := w.ProbeAt(1<<24, months.MustParse("2020-01")); ok {
		t.Error("nonexistent probe id resolved")
	}
}

func TestCountryVantages(t *testing.T) {
	w, err := Build(Config{Step: 12})
	if err != nil {
		t.Fatal(err)
	}
	ccs := w.VantageCountries()
	if len(ccs) == 0 || !sort.StringsAreSorted(ccs) {
		t.Fatalf("VantageCountries = %v; want sorted, non-empty", ccs)
	}
	foundVE := false
	for _, cc := range ccs {
		asn, city, ok := w.CountryVantage(cc)
		if !ok || asn == 0 || city.Name == "" {
			t.Errorf("CountryVantage(%s) = %v %v %v", cc, asn, city, ok)
		}
		if cc == "VE" {
			foundVE = true
		}
	}
	if !foundVE {
		t.Error("VE missing from vantage countries")
	}
	if _, _, ok := w.CountryVantage("XX"); ok {
		t.Error("unknown country produced a vantage")
	}
}

// TestDNSAnswerAtScenario pins the overlay sensitivity DNS serving
// depends on: withdrawing the Caracas L replica must move the answer a
// Caracas CANTV client gets for L, while leaving a letter the plan
// doesn't touch alone.
func TestDNSAnswerAtScenario(t *testing.T) {
	w, err := Build(Config{Step: 12})
	if err != nil {
		t.Fatal(err)
	}
	m := months.MustParse("2017-01") // L-from-Caracas era
	asn, city, ok := w.CountryVantage("VE")
	if !ok {
		t.Fatal("no VE vantage")
	}
	base, err := w.DNSAnswerAt('L', m, "VE", asn, city, nil)
	if err != nil {
		t.Fatalf("baseline L: %v", err)
	}
	if base.TXT == "" || base.TXT != base.Instance.ChaosName(m) {
		t.Errorf("TXT %q disagrees with instance identity %q", base.TXT, base.Instance.ChaosName(m))
	}

	plan := &ScenarioPlan{
		Key: "dnsview-drop-l-ccs",
		Roots: []ScenarioRootReplica{{
			Remove: true, Letter: 'L', Host: ASCANTV, City: city,
		}},
	}
	moved, err := w.DNSAnswerAt('L', m, "VE", asn, city, plan)
	if err != nil {
		t.Fatalf("scenario L: %v", err)
	}
	if moved.TXT == base.TXT {
		t.Errorf("withdrawing the local replica did not move the catchment (still %q)", base.TXT)
	}

	baseK, err := w.DNSAnswerAt('K', m, "VE", asn, city, nil)
	if err != nil {
		t.Fatalf("baseline K: %v", err)
	}
	planK, err := w.DNSAnswerAt('K', m, "VE", asn, city, plan)
	if err != nil {
		t.Fatalf("scenario K: %v", err)
	}
	if baseK.TXT != planK.TXT {
		t.Errorf("plan touching only L changed K: %q -> %q", baseK.TXT, planK.TXT)
	}
}

// TestDNSAnswerAtAllLetters sanity-checks every deployed letter
// resolves for the default vantage at the window edges.
func TestDNSAnswerAtAllLetters(t *testing.T) {
	w, err := Build(Config{Step: 12})
	if err != nil {
		t.Fatal(err)
	}
	asn, city, _ := w.CountryVantage("VE")
	for _, m := range []months.Month{w.Config.ChaosStart, w.Config.ChaosEnd} {
		for _, letter := range dnsroot.Letters() {
			ans, err := w.DNSAnswerAt(letter, m, "VE", asn, city, nil)
			if err != nil {
				t.Errorf("%s %c: %v", m, letter, err)
				continue
			}
			if ans.SiteIndex < 0 || ans.TXT == "" {
				t.Errorf("%s %c: empty answer %+v", m, letter, ans)
			}
		}
	}
}
