package world

import (
	"vzlens/internal/bgp"
	"vzlens/internal/ixp"
)

// domesticIXPJoins selects which of a country's eyeball networks (by
// market-share rank, 0 = largest) peer at its largest IXP. Subsets are
// chosen so the covered population share lands on Figure 10's cells:
// AR-IX 62.4%, IX.br 45.53%, PIT Chile 49.57%, NAP.CO 63.68%, and the
// near-total coverage of the small single-IXP markets.
var domesticIXPJoins = map[string][]int{
	"AR-IX":           {0, 1, 5},       // 34+22+7  ≈ 62.4% of AR
	"IX.br (SP)":      {0, 3},          // 34+12    ≈ 45.5% of BR
	"PIT Chile (SCL)": {0, 2},          // 34+16    ≈ 49.6% of CL
	"NAP.CO":          {0, 1, 5},       // ≈ 63.7% of CO
	"AMS-IX (CW)":     {0, 1, 2, 3, 4}, // ≈ 92.6% of CW
	"NAP.EC - UIO":    {0, 1, 2, 4},    // ≈ 81% of EC
	"Peru IX":         {0, 2},          // ≈ 49.4% of PE
	"PIT.BO":          {0, 1, 2, 3, 4, 5},
	"IXpy":            {0, 1, 2, 3, 4, 5},
	"GTIX":            {0},
	"TTIX":            {0, 1},
	"IXP-HN":          {0, 1, 2, 3, 4},
	"Guyanix":         {0, 1, 2, 3},
	"SUR-IX":          {0, 1, 2, 3, 4, 5},
	"CRIX":            {1, 2},
	"InteRed (PA)":    {3},
	"IXSY":            {0, 1, 2, 3, 4},
	"OCIX":            {0, 1, 2, 3, 4},
}

// IXPMembership assembles the regional exchange membership of 2024:
// domestic joins per the table above, Uruguay's international peering at
// four foreign exchanges (its state incumbent left no domestic IXP), and
// Venezuela's single toehold — Viginet at Equinix Bogota, roughly 4% of
// the country's users.
func (w *World) IXPMembership() *ixp.Membership {
	m := ixp.NewMembership()
	exchanges := ixp.LatAmExchanges()
	for _, ex := range exchanges {
		ranks, ok := domesticIXPJoins[ex.Name]
		if !ok {
			continue
		}
		net := w.Nets[ex.Country]
		for _, r := range ranks {
			if r < len(net.Eyeballs) {
				m.Join(ex.Name, net.Eyeballs[r])
			}
		}
	}
	// Uruguay travels abroad to peer.
	uy := w.Nets["UY"]
	for _, exName := range []string{"AR-IX", "IX.br (SP)", "IXpy", "PIT Chile (SCL)"} {
		m.Join(exName, uy.Eyeballs[0])
		m.Join(exName, uy.Eyeballs[1])
	}
	// Venezuela: a single network at Equinix Bogota (~4% of users).
	m.Join("Equinix Bogota", 263703)
	return m
}

// usIXPPresence places Latin American networks at US exchanges per
// Appendix I: Brazilian and Mexican networks appear across most
// exchanges, Uruguayan networks concentrate at three, and exactly seven
// small Venezuelan networks reach ~7% of the country's users.
var veUSNetworks = []bgp.ASN{
	269918, // SISTEMAS TELCORP
	21980,  // Dayco Telecom
	272102, // BESSER SOLUTIONS
	264703, // UFINET VE
	262999, // GalaNet
	263237, // Lifetel
	264774, // NetVision VE
}

// USIXPMembership assembles the United States exchange membership.
func (w *World) USIXPMembership() *ixp.Membership {
	m := ixp.NewMembership()
	us := ixp.USExchanges()
	// Brazil and Mexico: top-3 networks across most exchanges.
	for i, ex := range us {
		for _, cc := range []string{"BR", "MX"} {
			net := w.Nets[cc]
			for r := 0; r < 3; r++ {
				if (i+r)%2 == 0 { // spread, not exhaustive
					m.Join(ex.Name, net.Eyeballs[r])
				}
			}
		}
	}
	// Uruguay at the Miami/Ashburn triangle.
	uy := w.Nets["UY"]
	for _, exName := range []string{"FL-IX", "Equinix Miami", "Equinix Ashburn"} {
		m.Join(exName, uy.Eyeballs[0])
		m.Join(exName, uy.Eyeballs[1])
	}
	// Scattered single-network presences.
	m.Join("FL-IX", w.Nets["AR"].Eyeballs[1])
	m.Join("Equinix Miami", w.Nets["CL"].Eyeballs[1])
	m.Join("FL-IX", w.Nets["CO"].Eyeballs[1])
	m.Join("DE-CIX New York", w.Nets["DO"].Eyeballs[0])
	m.Join("MEX-IX McAllen", w.Nets["MX"].Eyeballs[0])
	// Venezuela's seven small networks, mostly around Miami.
	for i, asn := range veUSNetworks {
		switch {
		case i < 4:
			m.Join("FL-IX", asn)
		case i < 6:
			m.Join("Equinix Miami", asn)
		default:
			m.Join("DE-CIX New York", asn)
		}
	}
	return m
}
