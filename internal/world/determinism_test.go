package world

import (
	"bytes"
	"testing"
	"time"

	"vzlens/internal/netsim"
)

// TestWorldDeterministic guards the reproducibility promise: two worlds
// built from the same configuration produce identical datasets and
// identical campaign results.
func TestWorldDeterministic(t *testing.T) {
	cfg := Config{
		TraceStart: mm(2023, time.January), TraceEnd: mm(2023, time.June),
		ChaosStart: mm(2023, time.January), ChaosEnd: mm(2023, time.June),
		Step: 3,
	}
	w1 := mustBuild(cfg)
	w2 := mustBuild(cfg)

	// Registry bytes.
	var r1, r2 bytes.Buffer
	if _, err := w1.Registry().WriteTo(&r1); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Registry().WriteTo(&r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Error("registry differs between identical builds")
	}

	// AS relationship bytes for a probe month.
	var g1, g2 bytes.Buffer
	if _, err := w1.TopologyAt(mm(2013, time.January)).Topology().Graph().WriteTo(&g1); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.TopologyAt(mm(2013, time.January)).Topology().Graph().WriteTo(&g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1.Bytes(), g2.Bytes()) {
		t.Error("AS graph differs between identical builds")
	}

	// Trace campaign samples, including the jitter draws.
	s1 := w1.TraceCampaign().Samples()
	s2 := w2.TraceCampaign().Samples()
	if len(s1) != len(s2) {
		t.Fatalf("sample counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}

	// CHAOS campaign results.
	c1 := w1.ChaosCampaign().Results()
	c2 := w2.ChaosCampaign().Results()
	if len(c1) != len(c2) {
		t.Fatalf("chaos counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("chaos result %d differs", i)
		}
	}
}

// TestSeedChangesJitterOnly: a different seed must change the RTT noise
// but not the structural facts.
func TestSeedChangesJitterOnly(t *testing.T) {
	cfg := Config{
		TraceStart: mm(2023, time.June), TraceEnd: mm(2023, time.June),
	}
	cfgB := cfg
	cfgB.Seed = 99
	w1, w2 := mustBuild(cfg), mustBuild(cfgB)

	s1, s2 := w1.TraceCampaign().Samples(), w2.TraceCampaign().Samples()
	if len(s1) != len(s2) {
		t.Fatalf("structure changed with seed: %d vs %d samples", len(s1), len(s2))
	}
	differ := false
	for i := range s1 {
		if s1[i].ProbeID != s2[i].ProbeID || s1[i].ProbeCC != s2[i].ProbeCC {
			t.Fatal("probe assignment changed with seed")
		}
		if s1[i].RTTms != s2[i].RTTms {
			differ = true
		}
	}
	if !differ {
		t.Error("jitter identical across seeds")
	}
}

// TestGeoPolicyChangesCatchment: the ablation knob must actually switch
// the campaign's catchment behavior.
func TestGeoPolicyChangesCatchment(t *testing.T) {
	cfg := Config{
		TraceStart: mm(2023, time.June), TraceEnd: mm(2023, time.June),
	}
	cfgGeo := cfg
	cfgGeo.Policy = netsim.PolicyGeo
	bgpWorld, geoWorld := mustBuild(cfg), mustBuild(cfgGeo)

	vb, ok1 := bgpWorld.TraceCampaign().CountryMedian("VE", mm(2023, time.June))
	vg, ok2 := geoWorld.TraceCampaign().CountryMedian("VE", mm(2023, time.June))
	if !ok1 || !ok2 {
		t.Fatal("missing medians")
	}
	// Geographic selection sends Caracas traffic to the "nearby"
	// Colombian replica whose actual path is longer: latency rises.
	if vg <= vb {
		t.Errorf("geo policy median %.1f should exceed BGP median %.1f", vg, vb)
	}
}
