package world

import (
	"testing"
	"time"

	"vzlens/internal/bgp"
)

// TestInferenceRecoversCANTVProviders closes the loop the real pipeline
// depends on: collector paths simulated over the topology, fed through
// Gao-style inference, must re-derive CANTV's provider set for the
// month — the information the paper reads out of CAIDA's serial-1 files.
func TestInferenceRecoversCANTVProviders(t *testing.T) {
	m := mm(2013, time.January)
	collectors := testWorld.DefaultCollectors()

	// Origins: every Venezuelan network plus a spread of regional ones,
	// so the Venezuelan edges appear in many paths.
	var origins []bgp.ASN
	origins = append(origins, testWorld.Nets["VE"].Eyeballs...)
	for _, cc := range []string{"BR", "CO", "PE", "EC", "PA"} {
		origins = append(origins, testWorld.Nets[cc].Eyeballs[:3]...)
	}
	paths := testWorld.CollectorPaths(m, collectors, origins)
	if len(paths) < 50 {
		t.Fatalf("only %d collector paths", len(paths))
	}
	inferred := bgp.InferRelationships(paths, bgp.InferConfig{})

	truth := CANTVProvidersAt(m)
	recovered := 0
	for _, p := range truth {
		if inferred.HasProvider(ASCANTV, p) {
			recovered++
		}
	}
	// Collectors only reveal providers that carry their paths; most of
	// the 11 should surface.
	if recovered < len(truth)/2 {
		t.Errorf("recovered %d of %d CANTV providers: inferred=%v",
			recovered, len(truth), inferred.Providers(ASCANTV))
	}
	// Nothing bogus: every inferred provider of CANTV must be in the
	// ground-truth provider set (collectors can miss but not invent).
	truthSet := map[bgp.ASN]bool{}
	for _, p := range truth {
		truthSet[p] = true
	}
	for _, p := range inferred.Providers(ASCANTV) {
		if !truthSet[p] {
			t.Errorf("inferred bogus provider %d", p)
		}
	}
}

func TestCollectorPathsValleyFree(t *testing.T) {
	m := mm(2020, time.June)
	paths := testWorld.CollectorPaths(m, testWorld.DefaultCollectors(),
		[]bgp.ASN{ASCANTV, testWorld.Nets["BR"].Eyeballs[0]})
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	g := testWorld.TopologyAt(m).Topology().Graph()
	for _, path := range paths {
		descended := false
		for i := 1; i < len(path); i++ {
			a, b := path[i-1], path[i]
			up := g.HasProvider(a, b)
			down := g.HasProvider(b, a)
			peer := false
			for _, p := range g.Peers(a) {
				if p == b {
					peer = true
				}
			}
			switch {
			case up:
				if descended {
					t.Fatalf("valley in path %v", path)
				}
			case peer, down:
				descended = true
			default:
				t.Fatalf("unknown edge %d-%d in path %v", a, b, path)
			}
		}
	}
}
