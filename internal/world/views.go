package world

import (
	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/dnsroot"
	"vzlens/internal/geo"
	"vzlens/internal/months"
	"vzlens/internal/netsim"
)

// This file holds the campaign kernel's interned per-month views. The
// old inner loops recomputed the same values once per probe per month:
// the catchment of every probe sharing a (country, AS, city) triple is
// identical, a localized site list depends only on (site list, probe
// country, probe AS), and a CHAOS TXT string depends only on the
// instance and the naming era. Interning each of these collapses
// hundreds of thousands of recomputations (and their allocations) into
// a few hundred memoized entries shared across months, campaigns, and
// sweep specs. Every memoized value is a pure function of its key, so
// concurrent month shards racing to fill a cache produce identical
// entries and the campaign output stays schedule-independent.

// probeClassKey identifies a probe equivalence class: probes with the
// same country, AS, and city get identical catchments, localized site
// lists, and access delays — everything except their RNG stream.
type probeClassKey struct {
	country string
	asn     bgp.ASN
	city    geo.City
}

// monthClasses is one month's probe fleet factored into classes:
// probes is the sorted active snapshot, classOf maps each probe to its
// class, keys lists the distinct classes in first-seen order.
type monthClasses struct {
	probes  []atlas.Probe
	classOf []int32
	keys    []probeClassKey
}

// classesAt memoizes the class factoring per month. The trace campaign
// and all thirteen CHAOS letters share one factoring.
func (w *World) classesAt(m months.Month) *monthClasses {
	w.classMu.Lock()
	defer w.classMu.Unlock()
	if mc, ok := w.classCache[m]; ok {
		return mc
	}
	if w.classCache == nil {
		w.classCache = map[months.Month]*monthClasses{}
	}
	probes := w.activeProbesAt(m)
	mc := &monthClasses{probes: probes, classOf: make([]int32, len(probes))}
	idx := make(map[probeClassKey]int32, 64)
	for i, p := range probes {
		k := probeClassKey{country: p.Country, asn: p.ASN, city: p.City}
		c, ok := idx[k]
		if !ok {
			c = int32(len(mc.keys))
			idx[k] = c
			mc.keys = append(mc.keys, k)
		}
		mc.classOf[i] = c
	}
	w.classCache[m] = mc
	return mc
}

// siteList is an interned anycast site list. The id keys localization
// memos; domestic marks the countries hosting at least one replica, so
// probes elsewhere skip localization entirely (the shared slice IS
// their view).
type siteList struct {
	id       int32
	sites    []netsim.Site
	domestic map[string]bool
}

// newSiteListLocked interns sites under w.siteMu (held by the caller).
func (w *World) newSiteListLocked(sites []netsim.Site) *siteList {
	w.siteSeq++
	dom := make(map[string]bool, 8)
	for _, s := range sites {
		dom[s.City.Country] = true
	}
	return &siteList{id: w.siteSeq, sites: sites, domestic: dom}
}

func init() {
	if len(gpdnsRollout) > 32 {
		panic("world: gpdnsRollout exceeds the uint32 site-list mask")
	}
}

// traceSiteListAt returns the GPDNS site list for month m. Baseline
// months intern by activation mask — GPDNSSitesAt walks gpdnsRollout
// in slice order, so two months with the same mask produce identical
// lists and share one backing array. A plan with a GPDNS change active
// at m bypasses interning (nil list, freshly computed sites).
func (w *World) traceSiteListAt(m months.Month, plan *ScenarioPlan) (*siteList, []netsim.Site) {
	if plan != nil {
		for _, ch := range plan.GPDNS {
			if windowActive(ch.From, ch.Until, m) {
				return nil, w.gpdnsSitesFor(m, plan)
			}
		}
	}
	var mask uint32
	for i, s := range gpdnsRollout {
		if !m.Before(s.since) {
			mask |= 1 << i
		}
	}
	w.siteMu.Lock()
	defer w.siteMu.Unlock()
	sl, ok := w.gpdnsLists[mask]
	if !ok {
		if w.gpdnsLists == nil {
			w.gpdnsLists = map[uint32]*siteList{}
		}
		sl = w.newSiteListLocked(w.GPDNSSitesAt(m))
		w.gpdnsLists[mask] = sl
	}
	return sl, sl.sites
}

// rootList is a siteList for one root letter plus the parallel
// instance slice and the letter's lazily built per-era TXT tables.
type rootList struct {
	siteList
	letter dnsroot.Letter
	insts  []dnsroot.Instance
	txt    [2][]string // by dnsroot.Era; built under w.txtMu
}

// rootListKey keys the per-(letter, month) root list memo. Root lists
// are memoized per month — not by an activation mask — because
// Deployment.ActiveAt re-sorts with an unstable sort, so only the
// exact per-month call reproduces the baseline order byte-for-byte.
type rootListKey struct {
	letter dnsroot.Letter
	m      months.Month
}

// rootSiteListAt returns letter's site list for month m, interned per
// (letter, month). A plan with a replica change for this letter active
// at m bypasses interning (nil list, freshly computed sites).
func (w *World) rootSiteListAt(letter dnsroot.Letter, m months.Month, plan *ScenarioPlan) (*rootList, []netsim.Site, []dnsroot.Instance) {
	if plan != nil {
		for _, ch := range plan.Roots {
			if ch.Letter == letter && windowActive(ch.From, ch.Until, m) {
				sites, insts := w.rootSitesFor(letter, m, plan)
				return nil, sites, insts
			}
		}
	}
	key := rootListKey{letter: letter, m: m}
	w.siteMu.Lock()
	defer w.siteMu.Unlock()
	rl, ok := w.rootLists[key]
	if !ok {
		if w.rootLists == nil {
			w.rootLists = map[rootListKey]*rootList{}
		}
		sites, insts := w.RootSitesAt(letter, m)
		rl = &rootList{siteList: *w.newSiteListLocked(sites), letter: letter, insts: insts}
		w.rootLists[key] = rl
	}
	return rl, rl.sites, rl.insts
}

// activeRootsAt memoizes Roots.ActiveAt per month: every letter of the
// CHAOS sweep filters one shared snapshot instead of re-sorting the
// full deployment thirteen times. Callers must not mutate the result.
func (w *World) activeRootsAt(m months.Month) []dnsroot.Instance {
	w.rootsMu.Lock()
	defer w.rootsMu.Unlock()
	insts, ok := w.activeRootsCache[m]
	if !ok {
		if w.activeRootsCache == nil {
			w.activeRootsCache = map[months.Month][]dnsroot.Instance{}
		}
		insts = w.Roots.ActiveAt(m)
		w.activeRootsCache[m] = insts
	}
	return insts
}

// localKey keys the localization memo: the probe's view of a site list
// depends only on the list identity and the probe's (AS, country).
type localKey struct {
	list    int32
	asn     bgp.ASN
	country string
}

// localizedSites returns the (asn, country) view of an interned site
// list, memoized so every probe of a class — and every month sharing
// the list — reuses one localized copy. Probes in countries hosting no
// replica short-circuit to the shared slice without touching the memo.
func (w *World) localizedSites(list *siteList, asn bgp.ASN, country string) []netsim.Site {
	if !list.domestic[country] {
		return list.sites
	}
	key := localKey{list: list.id, asn: asn, country: country}
	w.localMu.Lock()
	if s, ok := w.localized[key]; ok {
		w.localMu.Unlock()
		return s
	}
	w.localMu.Unlock()
	s := localizeSitesFor(list.sites, country, asn)
	w.localMu.Lock()
	if w.localized == nil {
		w.localized = map[localKey][]netsim.Site{}
	}
	w.localized[key] = s
	w.localMu.Unlock()
	return s
}

// txtKey keys the global TXT intern table: an instance's CHAOS answer
// is a pure function of (letter, city, index, era).
type txtKey struct {
	letter dnsroot.Letter
	city   geo.City
	index  int
	era    dnsroot.Era
}

// txtFor returns the letter's TXT answer table for month m (indexed
// like insts), rendering each distinct instance name exactly once per
// era across the whole campaign.
func (w *World) txtFor(rl *rootList, m months.Month) []string {
	era := dnsroot.NamingEraAt(rl.letter, m)
	w.txtMu.Lock()
	defer w.txtMu.Unlock()
	if t := rl.txt[era]; t != nil {
		return t
	}
	t := make([]string, len(rl.insts))
	for i, inst := range rl.insts {
		key := txtKey{letter: rl.letter, city: inst.City, index: inst.Index, era: era}
		s, ok := w.txtIntern[key]
		if !ok {
			if w.txtIntern == nil {
				w.txtIntern = map[txtKey]string{}
			}
			s = dnsroot.InstanceName(rl.letter, inst.City, inst.Index, era)
			w.txtIntern[key] = s
		}
		t[i] = s
	}
	rl.txt[era] = t
	return t
}
