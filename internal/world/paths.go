package world

import (
	"vzlens/internal/bgp"
	"vzlens/internal/months"
)

// CollectorPaths simulates the route-collector view at month m: the
// valley-free AS path from every collector-hosting AS toward every
// origin, as a RouteViews/RIS-style table dump would record. These are
// the paths from which the serial-1 relationship files the paper
// consumes are inferred.
func (w *World) CollectorPaths(m months.Month, collectors, origins []bgp.ASN) [][]bgp.ASN {
	topo := w.TopologyAt(m).Topology()
	var paths [][]bgp.ASN
	for _, c := range collectors {
		for _, o := range origins {
			if c == o {
				continue
			}
			if path, ok := topo.ASPath(c, o); ok {
				paths = append(paths, path)
			}
		}
	}
	return paths
}

// DefaultCollectors returns a realistic collector placement: the entire
// global transit core (RouteViews and RIS peer with essentially every
// tier-1) plus the national transits of the well-instrumented countries.
func (w *World) DefaultCollectors() []bgp.ASN {
	var out []bgp.ASN
	for asn := range tier1Locations {
		out = append(out, asn)
	}
	for _, cc := range []string{"BR", "AR", "CL", "MX", "CO"} {
		out = append(out, w.Nets[cc].Transit)
	}
	sortASNs(out)
	return out
}
