package world

import (
	"math"
	"testing"
	"time"

	"vzlens/internal/months"
	"vzlens/internal/stats"
)

// halfMedian computes the mean of a country's monthly medians over a
// six-month window, the paper's "first half of 2016" style statistic.
func halfMedian(tc interface {
	CountryMedian(string, months.Month) (float64, bool)
}, cc string, lo months.Month) (float64, bool) {
	var vals []float64
	for i := 0; i < 6; i++ {
		if v, ok := tc.CountryMedian(cc, lo.Add(i)); ok {
			vals = append(vals, v)
		}
	}
	m, err := stats.Mean(vals)
	return m, err == nil
}

func TestTraceCampaignFigure12(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	tc := testWorld.TraceCampaign()

	check := func(cc string, lo months.Month, want, tolFrac float64) {
		t.Helper()
		got, ok := halfMedian(tc, cc, lo)
		if !ok {
			t.Errorf("%s @%v: no data", cc, lo)
			return
		}
		if math.Abs(got-want)/want > tolFrac {
			t.Errorf("%s @%v median RTT = %.2f ms, want %.2f ±%.0f%%", cc, lo, got, want, tolFrac*100)
		}
	}
	h1of2016 := mm(2016, time.January)
	h2of2023 := mm(2023, time.July)

	// Paper Section 7.2 values, first half 2016 → second half 2023.
	check("AR", h1of2016, 12.27, 0.30)
	check("AR", h2of2023, 11.36, 0.30)
	check("CL", h1of2016, 11.25, 0.30)
	check("CL", h2of2023, 11.87, 0.30)
	check("CO", h1of2016, 48.48, 0.25)
	check("CO", h2of2023, 16.10, 0.30)
	check("BR", h1of2016, 18.12, 0.30)
	check("BR", h2of2023, 7.52, 0.35)
	check("MX", h1of2016, 30.21, 0.30)
	check("MX", h2of2023, 21.28, 0.30)
	check("VE", h1of2016, 45.71, 0.25)
	check("VE", h2of2023, 36.56, 0.25)
}

func TestVenezuelaVsRegionalAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	tc := testWorld.TraceCampaign()
	h2of2023 := mm(2023, time.July)
	ve, ok := halfMedian(tc, "VE", h2of2023)
	if !ok {
		t.Fatal("no VE data")
	}
	// LACNIC average over country medians; paper: 17.74 ms, making
	// Venezuela's latency 2.06× the region's.
	var sum float64
	var n int
	panel := tc.MedianPanel()
	for _, cc := range panel.Countries() {
		if v, ok := halfMedian(tc, cc, h2of2023); ok {
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 13 || avg > 23 {
		t.Errorf("LACNIC average = %.2f ms, want ~17.74", avg)
	}
	ratio := ve / avg
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("VE/LACNIC ratio = %.2f, want ~2.06", ratio)
	}
}

func TestProbeGeographyFigure20(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	w := mustBuild(Config{TraceStart: mm(2023, time.December), TraceEnd: mm(2023, time.December)})
	tc := w.TraceCampaign()
	m := mm(2023, time.December)
	probes := tc.ProbeMinsWithLocation(w.Fleet, "VE", m)
	if len(probes) < 25 {
		t.Fatalf("VE probes with data = %d, want ~30", len(probes))
	}
	var borderMin, caracasMin float64 = math.Inf(1), math.Inf(1)
	for _, pr := range probes {
		switch pr.Probe.City.Name {
		case "San Cristobal":
			if pr.MinRTTms < borderMin {
				borderMin = pr.MinRTTms
			}
		case "Caracas":
			if pr.MinRTTms < caracasMin {
				caracasMin = pr.MinRTTms
			}
		}
	}
	// Probes on the Colombian border dip under 10 ms; Caracas stays high.
	if borderMin >= 12 {
		t.Errorf("border probe min RTT = %.1f ms, want < 12", borderMin)
	}
	if caracasMin < 30 {
		t.Errorf("Caracas probe min RTT = %.1f ms, want >= 30 (no domestic GPDNS)", caracasMin)
	}
	if borderMin >= caracasMin {
		t.Error("border probes should beat Caracas probes")
	}
}

func TestChaosCampaignFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	cc := testWorld.ChaosCampaign()

	regionCount := func(m months.Month) int {
		total := 0
		for country, n := range cc.SitesByCountry(m, "") {
			switch country {
			case "US", "GB", "DE", "FR", "NL", "SE", "JP", "ZA", "CA", "RU", "ES", "IT":
			default:
				total += n
			}
		}
		return total
	}
	at2016 := regionCount(mm(2016, time.February))
	at2023 := regionCount(mm(2023, time.December))
	// Paper: 59 → 138 replicas (2.34×). Detection through probe
	// catchments sees most but not all of the deployment.
	if at2016 < 40 || at2016 > 65 {
		t.Errorf("region replicas seen 2016 = %d, want ~55", at2016)
	}
	ratio := float64(at2023) / float64(at2016)
	if ratio < 1.8 || ratio > 2.9 {
		t.Errorf("replica growth = %d → %d (%.2fx), want ~2.34x", at2016, at2023, ratio)
	}
}

func TestChaosVenezuelaRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	cc := testWorld.ChaosCampaign()
	series := cc.CountrySeries("VE")
	if got := series[mm(2016, time.February)]; got != 2 {
		t.Errorf("VE replicas 2016 = %d, want 2 (L and F in Caracas)", got)
	}
	if got := series[mm(2021, time.February)]; got != 1 {
		t.Errorf("VE replicas 2021 = %d, want 1 (Maracaibo L)", got)
	}
	if got := series[mm(2023, time.June)]; got != 0 {
		t.Errorf("VE replicas 2023 = %d, want 0", got)
	}
}

func TestChaosOriginsServingVenezuela(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	cc := testWorld.ChaosCampaign()
	// Appendix E: after the domestic withdrawal, Venezuela is served
	// mostly from the US, with Latin American alternatives (BR, CO, PA).
	origins := cc.SitesByCountry(mm(2023, time.June), "VE")
	if origins["VE"] != 0 {
		t.Errorf("VE still sees domestic roots: %v", origins)
	}
	us := origins["US"]
	if us == 0 {
		t.Fatalf("no US origins: %v", origins)
	}
	for country, n := range origins {
		if country != "US" && n > us {
			t.Errorf("%s (%d) outranks US (%d) as a root origin for VE", country, n, us)
		}
	}
	latam := origins["BR"] + origins["CO"] + origins["PA"] + origins["MX"]
	if latam == 0 {
		t.Errorf("no Latin American alternatives in %v", origins)
	}
}

func TestChaosCoverageArgumentAppendixF(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign simulation")
	}
	cc := testWorld.ChaosCampaign()
	// Venezuela's replica regression is not a coverage artifact: probes
	// kept reporting throughout.
	probes := cc.ProbesSeen(mm(2023, time.June))
	if probes["VE"] < 20 {
		t.Errorf("VE probes reporting in 2023 = %d, want >= 20", probes["VE"])
	}
}
