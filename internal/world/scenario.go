package world

import (
	"context"
	"fmt"

	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/dnsroot"
	"vzlens/internal/geo"
	"vzlens/internal/months"
	"vzlens/internal/netsim"
)

// This file is the world half of the counterfactual scenario engine:
// a compiled ScenarioPlan describes windowed, declarative changes to
// the monthly topology and the anycast deployments, and the campaign
// runs below replay the paper's measurements under them. Per month the
// plan compiles to a netsim overlay — a copy-on-write view over the
// cached baseline topology — so a scenario run shares every baseline
// resolver and pays only O(edits) per month on top. Scenario runs use
// the same per-probe-month RNG streams as the baseline (sampleSeed is
// scenario-blind), so an RTT delta between baseline and scenario
// isolates the topology change: the jitter draws cancel exactly.

// ScenarioLink is one windowed link edit: the relationship A→B exists
// (for additions) or is suppressed (for removals) during [From, Until).
// A zero From means from the beginning; a zero Until means forever.
type ScenarioLink struct {
	A, B        bgp.ASN // provider (or first peer), second endpoint
	Kind        bgp.RelKind
	From, Until months.Month
}

// ScenarioDepeer strips every provider and peer edge of ASN during its
// window — the conflict-driven disconnection counterfactual. Customer
// edges survive: the AS keeps its cone, it just loses its upstreams.
type ScenarioDepeer struct {
	ASN         bgp.ASN
	From, Until months.Month
}

// ScenarioMove relocates an AS's interconnection city during its
// window.
type ScenarioMove struct {
	ASN         bgp.ASN
	City        geo.City
	From, Until months.Month
}

// ScenarioGPDNSSite adds (or, with Remove, suppresses) a Google Public
// DNS anycast site during its window. For additions Host is the AS
// announcing the prefix at City; for removals any baseline site in
// City is dropped.
type ScenarioGPDNSSite struct {
	Remove      bool
	Host        bgp.ASN
	City        geo.City
	From, Until months.Month
}

// ScenarioRootReplica adds (or suppresses) a root-server instance of
// Letter at City during its window, hosted by Host when adding.
type ScenarioRootReplica struct {
	Remove      bool
	Letter      dnsroot.Letter
	Host        bgp.ASN
	City        geo.City
	From, Until months.Month
}

// ScenarioPlan is a compiled, validated scenario: the form the world
// executes. Plans are built by internal/scenario's Compile (or by
// hand in tests); the world trusts them structurally but still skips
// edits that are no-ops in a given month (a removal of a link the
// month doesn't have, an addition that already exists), because AS and
// link presence is month-dependent.
type ScenarioPlan struct {
	// Key identifies the plan for caching and persistence. Two plans
	// with the same Key are assumed identical.
	Key string

	AddLinks    []ScenarioLink
	RemoveLinks []ScenarioLink
	Depeers     []ScenarioDepeer
	Moves       []ScenarioMove
	GPDNS       []ScenarioGPDNSSite
	Roots       []ScenarioRootReplica

	// EventShiftMonths time-shifts CANTV's documented transit timeline:
	// at month m the scenario uses the providers the baseline had at
	// m−EventShiftMonths. Positive delays the paper's events, negative
	// advances them.
	EventShiftMonths int
}

// windowActive reports whether [from, until) covers m.
func windowActive(from, until, m months.Month) bool {
	if !from.IsZero() && m.Before(from) {
		return false
	}
	return until.IsZero() || m.Before(until)
}

// editsAt compiles the plan's topology changes for month m into
// overlay edits against base (the cached baseline topology of m).
// Edits that cannot apply this month — an endpoint that doesn't exist
// yet, a removal of a link the month doesn't carry — are skipped, so
// the returned list always builds a valid overlay.
func (p *ScenarioPlan) editsAt(m months.Month, base *netsim.Topology) []netsim.Edit {
	var edits []netsim.Edit
	seen := map[netsim.Edit]bool{} // guard against overlapping plan entries
	add := func(e netsim.Edit) {
		if !seen[e] {
			seen[e] = true
			edits = append(edits, e)
		}
	}
	// Peer links are undirected, so canonicalize their endpoint order:
	// a depeer walking Peers(b) emits (b, a) while an explicit op may
	// say (a, b), and both must dedupe to one edit — two removals (or
	// additions) of the same link would invalidate the whole overlay.
	canon := func(a, b bgp.ASN, kind bgp.RelKind) (bgp.ASN, bgp.ASN) {
		if kind == bgp.PeerPeer && b < a {
			return b, a
		}
		return a, b
	}
	addLink := func(a, b bgp.ASN, kind bgp.RelKind) {
		a, b = canon(a, b, kind)
		if base.HasAS(a) && base.HasAS(b) && !base.HasLink(a, b, kind) {
			add(netsim.Edit{Op: netsim.EditAddLink, A: a, B: b, Kind: kind})
		}
	}
	removeLink := func(a, b bgp.ASN, kind bgp.RelKind) {
		a, b = canon(a, b, kind)
		if base.HasAS(a) && base.HasAS(b) && base.HasLink(a, b, kind) {
			add(netsim.Edit{Op: netsim.EditRemoveLink, A: a, B: b, Kind: kind})
		}
	}

	if s := p.EventShiftMonths; s != 0 {
		want := CANTVProvidersAt(m.Add(-s))
		have := CANTVProvidersAt(m)
		for _, asn := range want {
			if !hasASN(have, asn) {
				addLink(asn, ASCANTV, bgp.ProviderCustomer)
			}
		}
		for _, asn := range have {
			if !hasASN(want, asn) {
				removeLink(asn, ASCANTV, bgp.ProviderCustomer)
			}
		}
	}
	for _, l := range p.AddLinks {
		if windowActive(l.From, l.Until, m) {
			addLink(l.A, l.B, l.Kind)
		}
	}
	for _, l := range p.RemoveLinks {
		if windowActive(l.From, l.Until, m) {
			removeLink(l.A, l.B, l.Kind)
		}
	}
	for _, d := range p.Depeers {
		if !windowActive(d.From, d.Until, m) || !base.HasAS(d.ASN) {
			continue
		}
		// Walk the view's effective adjacency, not Graph()'s: when base
		// is itself an overlay (the campaign kernel's monthly cells),
		// the raw graph misses the month's own link edits.
		for _, prov := range base.ProvidersOf(d.ASN) {
			removeLink(prov, d.ASN, bgp.ProviderCustomer)
		}
		for _, peer := range base.PeersOf(d.ASN) {
			removeLink(d.ASN, peer, bgp.PeerPeer)
		}
	}
	for _, mv := range p.Moves {
		if windowActive(mv.From, mv.Until, m) && base.HasAS(mv.ASN) {
			add(netsim.Edit{Op: netsim.EditRelocate, A: mv.ASN, City: mv.City})
		}
	}
	return edits
}

func hasASN(xs []bgp.ASN, a bgp.ASN) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

// maxScenarioCacheKeys bounds how many distinct scenarios keep their
// per-month resolver caches alive; beyond it the oldest key is evicted
// wholesale. Scenario resolvers are cheap to rebuild (the overlays are
// O(edits)), so eviction costs latency, not correctness.
const maxScenarioCacheKeys = 8

// topologyFor returns the resolver for month m under plan; a nil plan
// is the baseline, served from the campaign kernel's per-signature
// cells (bit-identical to TopologyAt for every campaign observable —
// see kernel.go). Scenario resolvers are cached per (plan key, month)
// like baseline ones, because the trace and chaos campaigns — and every
// experiment table re-run — visit the same months. The overlay stacks
// on the kernel's monthly cell, so a scenario month shares the
// signature resolver's base arrays and pays only O(edits) on top; an
// invalid compiled edit list is a programming error and panics (the
// serving layer converts campaign panics into retryable errors).
func (w *World) topologyFor(m months.Month, plan *ScenarioPlan) *netsim.Resolver {
	if plan == nil {
		return w.kernelTopologyAt(m)
	}
	w.scenMu.Lock()
	byMonth, ok := w.scenCache[plan.Key]
	if !ok {
		if w.scenCache == nil {
			w.scenCache = map[string]map[months.Month]*topoCell{}
		}
		if len(w.scenOrder) >= maxScenarioCacheKeys {
			delete(w.scenCache, w.scenOrder[0])
			w.scenOrder = w.scenOrder[1:]
		}
		byMonth = map[months.Month]*topoCell{}
		w.scenCache[plan.Key] = byMonth
		w.scenOrder = append(w.scenOrder, plan.Key)
	}
	cell, ok := byMonth[m]
	if !ok {
		cell = &topoCell{}
		byMonth[m] = cell
	}
	w.scenMu.Unlock()
	cell.once.Do(func() {
		base := w.kernelTopologyAt(m).Topology()
		ov, err := base.Overlay(plan.editsAt(m, base))
		if err != nil {
			panic(fmt.Sprintf("world: scenario %q month %s: %v", plan.Key, m, err))
		}
		cell.r = netsim.NewResolver(ov)
	})
	return cell.r
}

// gpdnsSitesFor is GPDNSSitesAt under a plan: suppressed sites are
// filtered by city, added sites appended (sorted placement keeps the
// list deterministic — added sites go last, in plan order).
func (w *World) gpdnsSitesFor(m months.Month, plan *ScenarioPlan) []netsim.Site {
	sites := w.GPDNSSitesAt(m)
	if plan == nil {
		return sites
	}
	return applySiteChanges(sites, m, plan.GPDNS)
}

// applySiteChanges applies windowed GPDNS site edits to a baseline
// site list.
func applySiteChanges(sites []netsim.Site, m months.Month, changes []ScenarioGPDNSSite) []netsim.Site {
	out := sites
	for _, ch := range changes {
		if !windowActive(ch.From, ch.Until, m) {
			continue
		}
		if ch.Remove {
			kept := make([]netsim.Site, 0, len(out))
			for _, s := range out {
				if s.City.Name != ch.City.Name || s.City.Country != ch.City.Country {
					kept = append(kept, s)
				}
			}
			out = kept
			continue
		}
		out = append(append([]netsim.Site(nil), out...), netsim.Site{Host: ch.Host, City: ch.City})
	}
	return out
}

// rootSitesFor is RootSitesAt under a plan. Added replicas become
// synthetic dnsroot instances (Index 9 within their city, active over
// the change window) so the CHAOS sweep names them like real ones;
// suppressed replicas are filtered by letter and city.
func (w *World) rootSitesFor(letter dnsroot.Letter, m months.Month, plan *ScenarioPlan) ([]netsim.Site, []dnsroot.Instance) {
	sites, insts := w.RootSitesAt(letter, m)
	if plan == nil {
		return sites, insts
	}
	for _, ch := range plan.Roots {
		if ch.Letter != letter || !windowActive(ch.From, ch.Until, m) {
			continue
		}
		if ch.Remove {
			keptSites := sites[:0:0]
			keptInsts := insts[:0:0]
			for i, s := range sites {
				if insts[i].City.Name == ch.City.Name && insts[i].City.Country == ch.City.Country {
					continue
				}
				keptSites = append(keptSites, s)
				keptInsts = append(keptInsts, insts[i])
			}
			sites, insts = keptSites, keptInsts
			continue
		}
		sites = append(append([]netsim.Site(nil), sites...), netsim.Site{Host: ch.Host, City: ch.City})
		insts = append(append([]dnsroot.Instance(nil), insts...), dnsroot.Instance{
			Letter: ch.Letter, City: ch.City, Index: 9, Start: ch.From, End: ch.Until,
		})
	}
	return sites, insts
}

// TraceCampaignScenario simulates the traceroute campaign under plan
// (nil = baseline). Scenario runs always simulate — an ingested
// external campaign cannot answer a counterfactual — and inherit the
// engine's determinism: bit-identical output for any worker count.
func (w *World) TraceCampaignScenario(ctx context.Context, plan *ScenarioPlan) *atlas.TraceCampaign {
	if plan == nil {
		return w.TraceCampaignCtx(ctx)
	}
	return w.traceCampaign(ctx, plan)
}

// ChaosCampaignScenario is TraceCampaignScenario for the CHAOS sweep.
func (w *World) ChaosCampaignScenario(ctx context.Context, plan *ScenarioPlan) *atlas.ChaosCampaign {
	if plan == nil {
		return w.ChaosCampaignCtx(ctx)
	}
	return w.chaosCampaign(ctx, plan)
}
