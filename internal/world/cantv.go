package world

import (
	"net/netip"
	"time"

	"vzlens/internal/bgp"
	"vzlens/internal/months"
	"vzlens/internal/registry"
)

// span is a half-open activity window [from, to); a zero to means open.
type span struct {
	from, to months.Month
}

func (s span) active(m months.Month) bool {
	if m.Before(s.from) {
		return false
	}
	return s.to.IsZero() || m.Before(s.to)
}

func mm(y int, mo time.Month) months.Month { return months.New(y, mo) }

// cantvTransits encodes Figure 9: every provider that served transit to
// CANTV for more than a year since January 1998, with its activity
// window. US-registered providers leave between 2013 and 2018; the
// submarine-cable partners (Telecom Italia via SAC/Americas-II, V.tal via
// GlobeNet, Columbus and Orange via Americas-II, Gold Data recently)
// sustain connectivity afterwards.
var cantvTransits = map[bgp.ASN][]span{
	ASVerizon:   {{mm(1998, time.January), mm(2013, time.July)}},
	ASSprint:    {{mm(2000, time.January), mm(2013, time.October)}},
	ASATT:       {{mm(2004, time.January), mm(2013, time.April)}},
	ASGTT:       {{mm(2011, time.June), mm(2017, time.July)}},
	ASnLayer:    {{mm(2012, time.July), mm(2017, time.April)}},
	ASLevel3:    {{mm(2007, time.January), mm(2018, time.July)}},
	ASGBLX:      {{mm(2002, time.January), mm(2018, time.April)}},
	ASArelion:   {{mm(2009, time.January), mm(2016, time.February)}},
	ASTelxius:   {{mm(2008, time.January), mm(2015, time.July)}},
	ASTelecomIT: {{mm(1998, time.June), 0}},
	ASOrange:    {{mm(2000, time.January), mm(2009, time.January)}, {mm(2021, time.July), 0}},
	ASColumbus:  {{mm(2006, time.January), 0}},
	ASVtal:      {{mm(2014, time.January), 0}},
	ASGoldData:  {{mm(2021, time.July), 0}},
	ASGoldDataI: {{mm(2022, time.January), 0}},
	ASISPNet:    {{mm(1998, time.January), mm(2003, time.January)}},
	ASNetRail:   {{mm(2000, time.January), mm(2004, time.June)}},
	ASLatamTel:  {{mm(2009, time.January), mm(2010, time.June)}},
}

// CANTVProvidersAt returns CANTV's active transit providers at month m.
func CANTVProvidersAt(m months.Month) []bgp.ASN {
	var out []bgp.ASN
	for asn, spans := range cantvTransits {
		for _, s := range spans {
			if s.active(m) {
				out = append(out, asn)
				break
			}
		}
	}
	sortASNs(out)
	return out
}

func sortASNs(xs []bgp.ASN) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// maxCANTVCustomers is the ceiling of cantvCustomerCount: the campaign
// kernel's static base topology wires all of them and per-month
// overlays remove the ones not yet active.
const maxCANTVCustomers = 21

// cantvCustomerCount models CANTV's domestic transit expansion after its
// 2007 re-nationalization: academic institutions and local banks join
// steadily, reaching roughly twenty customers (Figure 8, bottom).
func cantvCustomerCount(m months.Month) int {
	start := mm(2007, time.January)
	if m.Before(start) {
		return 0
	}
	n := m.Sub(start) / 10 // one new customer roughly every ten months
	if n > maxCANTVCustomers {
		n = maxCANTVCustomers
	}
	return n
}

// cantvCustomerASN returns the ASN of CANTV's i-th domestic customer.
// Customers are small Venezuelan enterprise, bank and university
// networks.
func cantvCustomerASN(i int) bgp.ASN { return bgp.ASN(270100 + i) }

// prefixSpan is an announced prefix with its visibility window.
type prefixSpan struct {
	cidr string
	span span
}

// cantvPrefixes is CANTV's announcement history: early blocks from the
// 1990s/2000s, growth until Venezuela's 2014 stall (aligned with LACNIC
// exhaustion phases 1-2), then essentially flat.
var cantvPrefixes = []prefixSpan{
	{"200.44.0.0/16", span{mm(1998, time.January), 0}},
	{"200.82.0.0/15", span{mm(2000, time.June), 0}},
	{"150.186.0.0/16", span{mm(2001, time.March), 0}},
	{"200.11.128.0/17", span{mm(2002, time.June), 0}},
	{"201.208.0.0/13", span{mm(2005, time.March), 0}},
	{"190.72.0.0/14", span{mm(2007, time.September), 0}},
	{"186.88.0.0/13", span{mm(2010, time.June), 0}},
	{"190.202.0.0/16", span{mm(2012, time.March), 0}},
	{"190.36.0.0/15", span{mm(2013, time.June), 0}},
	{"190.38.0.0/15", span{mm(2022, time.June), 0}},
}

// telefonicaPrefixes encodes Appendix C: stable blocks, the /17s that
// vanished around June 2016, and their June 2023 reappearance inside
// larger aggregates (179.20.0.0/14 and 161.255.0.0/16).
var telefonicaPrefixes = []prefixSpan{
	// Stable footprint.
	{"200.35.64.0/18", span{mm(2005, time.June), 0}},
	{"186.24.0.0/17", span{mm(2008, time.March), 0}},
	{"186.25.0.0/16", span{mm(2008, time.September), 0}},
	{"200.71.128.0/19", span{mm(2006, time.June), 0}},
	{"186.185.0.0/16", span{mm(2011, time.January), 0}},
	{"186.186.0.0/15", span{mm(2012, time.June), 0}},
	{"181.180.0.0/14", span{mm(2012, time.September), 0}},
	{"186.164.0.0/15", span{mm(2013, time.January), 0}},
	{"190.96.0.0/15", span{mm(2013, time.March), 0}},
	// The disappearing /17s (June 2016 withdrawal).
	{"161.255.0.0/17", span{mm(2010, time.March), mm(2016, time.June)}},
	{"161.255.128.0/17", span{mm(2010, time.March), mm(2016, time.June)}},
	{"179.20.128.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"179.21.0.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"179.21.128.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"179.22.0.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"179.22.128.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"179.23.0.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"179.23.128.0/17", span{mm(2012, time.January), mm(2016, time.June)}},
	{"161.140.0.0/16", span{mm(2011, time.June), mm(2016, time.June)}},
	// June 2023 reappearance as larger aggregates.
	{"179.20.0.0/14", span{mm(2023, time.June), 0}},
	{"161.255.0.0/16", span{mm(2023, time.June), 0}},
}

// otherVEPrefixes gives the remaining Venezuelan providers their address
// blocks, with start dates spread through the market's growth years.
var otherVEPrefixes = map[bgp.ASN][]prefixSpan{
	21826:  {{"190.120.0.0/15", span{mm(2006, time.June), 0}}, {"190.76.0.0/15", span{mm(2011, time.June), 0}}, {"200.109.0.0/16", span{mm(2010, time.January), 0}}},
	264731: {{"190.204.0.0/15", span{mm(2013, time.June), 0}}},
	264628: {{"190.98.0.0/15", span{mm(2014, time.January), 0}}},
	61461:  {{"190.207.0.0/17", span{mm(2013, time.January), 0}}},
	263703: {{"190.207.128.0/17", span{mm(2013, time.March), 0}}},
	11562:  {{"200.74.192.0/18", span{mm(2003, time.June), 0}}, {"201.249.0.0/16", span{mm(2009, time.June), 0}}},
	272809: {{"190.216.0.0/17", span{mm(2019, time.June), 0}}},
	27889:  {{"200.84.0.0/14", span{mm(2004, time.June), 0}}},
}

// VEPrefixOrigins returns every Venezuelan (prefix, origin, window)
// triple used to synthesize RIBs and delegation files.
func VEPrefixOrigins() []struct {
	Prefix netip.Prefix
	Origin bgp.ASN
	Span   [2]months.Month
} {
	var out []struct {
		Prefix netip.Prefix
		Origin bgp.ASN
		Span   [2]months.Month
	}
	add := func(origin bgp.ASN, specs []prefixSpan) {
		for _, ps := range specs {
			out = append(out, struct {
				Prefix netip.Prefix
				Origin bgp.ASN
				Span   [2]months.Month
			}{netip.MustParsePrefix(ps.cidr), origin, [2]months.Month{ps.span.from, ps.span.to}})
		}
	}
	add(ASCANTV, cantvPrefixes)
	add(ASTelefonica, telefonicaPrefixes)
	for asn, specs := range otherVEPrefixes {
		add(asn, specs)
	}
	return out
}

// buildVERIB assembles the Venezuelan announcements visible at month m.
func buildVERIB(m months.Month) *bgp.RIB {
	rib := bgp.NewRIB()
	appendActive := func(origin bgp.ASN, specs []prefixSpan) {
		for _, ps := range specs {
			if ps.span.active(m) {
				rib.Announce(bgp.Prefix{Network: netip.MustParsePrefix(ps.cidr), Origin: origin})
			}
		}
	}
	appendActive(ASCANTV, cantvPrefixes)
	appendActive(ASTelefonica, telefonicaPrefixes)
	for asn, specs := range otherVEPrefixes {
		appendActive(asn, specs)
	}
	return rib
}

// buildVERegistry synthesizes the LACNIC delegation records for
// Venezuela: each announced block was delegated when first announced, to
// the holder org of its origin AS.
func buildVERegistry() *registry.Table {
	t := registry.NewTable()
	holder := func(origin bgp.ASN) string {
		switch origin {
		case ASCANTV, ASMovilnet:
			return "ORG-CANV"
		case ASTelefonica:
			return "ORG-TELF"
		default:
			return "ORG-VE" + origin.String()
		}
	}
	seenASN := map[bgp.ASN]bool{}
	for _, po := range VEPrefixOrigins() {
		// Withdrawn announcements remain delegated; skip the 2023
		// re-aggregates to avoid double-counting delegated space.
		if po.Span[0].After(mm(2023, time.January)) {
			continue
		}
		bits := po.Prefix.Bits()
		t.Add(registry.Record{
			Registry: "lacnic",
			Country:  "VE",
			Type:     "ipv4",
			Start:    po.Prefix.Addr().String(),
			Value:    1 << (32 - bits),
			Date:     po.Span[0],
			Status:   "allocated",
			Holder:   holder(po.Origin),
		})
		if !seenASN[po.Origin] {
			seenASN[po.Origin] = true
			t.Add(registry.Record{
				Registry: "lacnic",
				Country:  "VE",
				Type:     "asn",
				Start:    po.Origin.String(),
				Value:    1,
				Date:     po.Span[0],
				Status:   "allocated",
				Holder:   holder(po.Origin),
			})
		}
	}
	// CANTV's lone IPv6 allocation (2019), still essentially unused —
	// consistent with the country's near-zero IPv6 adoption (Figure 5).
	t.Add(registry.Record{
		Registry: "lacnic",
		Country:  "VE",
		Type:     "ipv6",
		Start:    "2801:10::",
		Value:    32,
		Date:     mm(2019, time.June),
		Status:   "allocated",
		Holder:   "ORG-CANV",
	})
	return t
}
