package world

import (
	"fmt"
	"time"

	"vzlens/internal/ixp"
	"vzlens/internal/months"
	"vzlens/internal/peeringdb"
)

// facilityGrowth pins per-country facility counts at April 2018 (the
// start of PeeringDB's v2 schema) and January 2024, calibrated to
// Figure 3: the region triples from ~180 to ~552 facilities, Brazil grows
// 102 to 311, Mexico 11 to 45, Chile 18 to 45, and Costa Rica — despite
// its dominant state-owned ICE — 3 to 8. Venezuela is handled explicitly.
var facilityGrowth = []struct {
	cc           string
	n2018, n2024 int
}{
	{"BR", 102, 311}, {"MX", 11, 45}, {"CL", 18, 45}, {"AR", 15, 38},
	{"CO", 8, 22}, {"PE", 5, 13}, {"EC", 4, 10}, {"UY", 3, 8},
	{"PA", 4, 9}, {"CR", 3, 8}, {"DO", 3, 6}, {"GT", 2, 5},
	{"BO", 1, 4}, {"PY", 1, 4}, {"TT", 2, 3}, {"HN", 1, 2},
	{"NI", 1, 2}, {"SV", 1, 2}, {"CW", 2, 3}, {"SX", 1, 1},
	{"GF", 1, 1}, {"HT", 0, 1}, {"CU", 0, 1}, {"GY", 0, 1},
	{"SR", 0, 1}, {"BZ", 0, 1}, {"BQ", 0, 1},
}

// veFacility is one Venezuelan facility with its PeeringDB registration
// window and name history (Lumen's Latin American unit became Cirion in
// 2022 after the Stonepeak sale, renaming the La Urbina facility).
type veFacility struct {
	id    int
	names []struct {
		name string
		from months.Month
	}
	city       string
	registered months.Month
}

var veFacilities = []veFacility{
	{
		id: 9001,
		names: []struct {
			name string
			from months.Month
		}{
			{"Lumen La Urbina", mm(2021, time.November)},
			{"Cirion La Urbina", mm(2022, time.August)},
		},
		city:       "Caracas",
		registered: mm(2021, time.November),
	},
	{
		id: 9002,
		names: []struct {
			name string
			from months.Month
		}{{"Daycohost - Caracas", mm(2021, time.November)}},
		city:       "Caracas",
		registered: mm(2021, time.November),
	},
	{
		id: 9003,
		names: []struct {
			name string
			from months.Month
		}{{"GigaPOP Maracaibo", mm(2023, time.January)}},
		city:       "Maracaibo",
		registered: mm(2023, time.January),
	},
	{
		id: 9004,
		names: []struct {
			name string
			from months.Month
		}{{"Globenet Maiquetia", mm(2023, time.January)}},
		city:       "Maiquetia",
		registered: mm(2023, time.January),
	},
}

func (f veFacility) nameAt(m months.Month) string {
	name := f.names[0].name
	for _, n := range f.names {
		if !m.Before(n.from) {
			name = n.name
		}
	}
	return name
}

// veFacilityNetworks encodes Table 2 and Figure 15: which Venezuelan
// networks report presence at each facility, and since when. The La
// Urbina site accumulates eleven networks; Daycohost stays at two to
// three; GigaPOP attracts none; Globenet Maiquetia gains two in 2023.
var veFacilityNetworks = map[int][]struct {
	asn   uint32
	name  string
	since months.Month
}{
	9001: {
		{8053, "IFX Venezuela", mm(2021, time.November)},
		{265641, "CIX BROADBAND", mm(2022, time.February)},
		{269832, "MDSTELECOM", mm(2022, time.May)},
		{23379, "Blackburn Technologies II", mm(2022, time.August)},
		{270042, "RED DOT TECHNOLOGIES", mm(2022, time.November)},
		{269738, "Chircalnet Telecom", mm(2023, time.February)},
		{267809, "360NET", mm(2023, time.April)},
		{19978, "Cirion - VE", mm(2023, time.June)},
		{21826, "Corporacion Telemic Network", mm(2023, time.August)},
		{21980, "Dayco Telecom", mm(2023, time.October)},
		{269918, "SISTEMAS TELCORP, C.A.", mm(2023, time.November)},
	},
	9002: {
		{8053, "IFX Venezuela", mm(2021, time.November)},
		{269832, "MDSTELECOM", mm(2022, time.March)},
		{270042, "RED DOT TECHNOLOGIES", mm(2022, time.September)},
	},
	9003: {},
	9004: {
		{272102, "BESSER SOLUTIONS", mm(2023, time.July)},
		{21826, "Corporacion Telemic Network", mm(2023, time.September)},
	},
}

// PeeringDBSnapshot returns the database state at month m: an ingested
// archive snapshot when one covers m, else the synthetic model.
func (w *World) PeeringDBSnapshot(m months.Month) *peeringdb.Snapshot {
	if w.ext.pdb != nil {
		if s := w.ext.pdb.Get(m); s != nil {
			return s
		}
	}
	s := &peeringdb.Snapshot{}
	start := mm(2018, time.April)
	end := mm(2024, time.January)
	window := end.Sub(start)
	elapsed := m.Sub(start)
	if elapsed < 0 {
		elapsed = 0
	}
	if elapsed > window {
		elapsed = window
	}
	id := 1
	for _, g := range facilityGrowth {
		count := g.n2018 + (g.n2024-g.n2018)*elapsed/window
		for k := 0; k < count; k++ {
			s.Facilities = append(s.Facilities, peeringdb.Facility{
				ID:      id + k,
				Name:    fmt.Sprintf("%s Facility %d", g.cc, k+1),
				City:    capitalOf(g.cc).Name,
				Country: g.cc,
			})
		}
		id += g.n2024 + 1
	}

	netIDs := map[uint32]int{}
	nextNet := 50000
	ensureNet := func(asn uint32, name, cc string) int {
		if nid, ok := netIDs[asn]; ok {
			return nid
		}
		nextNet++
		netIDs[asn] = nextNet
		s.Networks = append(s.Networks, peeringdb.Network{
			ID: nextNet, ASN: asn, Name: name, Country: cc,
		})
		return nextNet
	}
	for _, f := range veFacilities {
		if m.Before(f.registered) {
			continue
		}
		s.Facilities = append(s.Facilities, peeringdb.Facility{
			ID: f.id, Name: f.nameAt(m), City: f.city, Country: "VE",
		})
		for _, member := range veFacilityNetworks[f.id] {
			if m.Before(member.since) {
				continue
			}
			nid := ensureNet(member.asn, member.name, "VE")
			s.NetFacs = append(s.NetFacs, peeringdb.NetFac{NetID: nid, FacID: f.id})
		}
	}

	// Exchanges and their membership, from the 2024 regional and US
	// pictures. PeeringDB's IX coverage in the region only matured late
	// in the study window, so dumps before 2020 omit it.
	if !m.Before(mm(2020, time.January)) {
		ixID := 80000
		addMembership := func(members *ixp.Membership, exchanges []ixp.Exchange) {
			byName := map[string]ixp.Exchange{}
			for _, ex := range exchanges {
				byName[ex.Name] = ex
			}
			for _, exName := range members.Exchanges() {
				ex, ok := byName[exName]
				if !ok {
					continue
				}
				ixID++
				s.IXs = append(s.IXs, peeringdb.IX{
					ID: ixID, Name: ex.Name, City: ex.City, Country: ex.Country,
				})
				for _, asn := range members.Members(exName) {
					name := "AS" + asn.String()
					cc := ""
					if est, ok := w.Pop.Lookup(asn); ok {
						name, cc = est.Name, est.Country
					}
					nid := ensureNet(uint32(asn), name, cc)
					s.NetIXLans = append(s.NetIXLans, peeringdb.NetIXLan{NetID: nid, IXID: ixID})
				}
			}
		}
		addMembership(w.IXPMembership(), ixp.LatAmExchanges())
		addMembership(w.USIXPMembership(), ixp.USExchanges())
	}
	return s
}

// PeeringDBArchive exports monthly snapshots over [lo, hi] (stepped).
func (w *World) PeeringDBArchive(lo, hi months.Month) *peeringdb.Archive {
	a := peeringdb.NewArchive()
	for m := lo; !m.After(hi); m = m.Add(w.Config.Step) {
		a.Put(m, w.PeeringDBSnapshot(m))
	}
	return a
}

// VEFacilityNamesAt returns the Venezuelan facility names registered at
// month m, in ID order.
func (w *World) VEFacilityNamesAt(m months.Month) []string {
	var out []string
	for _, f := range veFacilities {
		if !m.Before(f.registered) {
			out = append(out, f.nameAt(m))
		}
	}
	return out
}
