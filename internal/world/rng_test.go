package world

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestJitterSourceMatchesMathRand pins jitterSource to rand.NewSource
// bit for bit: raw Uint64/Int63 streams across seeds (including the
// negative, zero, and boundary normalizations) and draw counts well
// past the 607-word lagged-Fibonacci wraparound.
func TestJitterSourceMatchesMathRand(t *testing.T) {
	seeds := []int64{
		1, 2, 42, 20240804, -1, -20240804, 0, 1<<31 - 1, 1 << 31, 1<<31 + 1,
		math.MaxInt64, math.MinInt64, 89482311, -(1<<31 - 1),
	}
	// Include a spread of real campaign seeds.
	for _, m := range []int{0, 17, 118} {
		for probe := 1; probe <= 5; probe++ {
			seeds = append(seeds, int64(sampleSeed(20240804, mm(2014+m/12, time.Month(1+m%12)), probe)))
		}
	}
	var js jitterSource
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		js.Seed(seed)
		for i := 0; i < 1500; i++ {
			if got, want := js.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 = %#x, want %#x", seed, i, got, want)
			}
		}
		// Int63 path, fresh seed.
		ref2 := rand.NewSource(seed)
		js.Seed(seed)
		for i := 0; i < 700; i++ {
			if got, want := js.Int63(), ref2.Int63(); got != want {
				t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, got, want)
			}
		}
	}
}

// TestJitterSourceRandConsumers pins the derived streams the campaigns
// actually consume — ExpFloat64 (the RTT jitter), Float64, Intn —
// through a rand.Rand wrapper, including after re-seeding the same
// jitterSource value (the arena reuse pattern).
func TestJitterSourceRandConsumers(t *testing.T) {
	var js jitterSource
	r := rand.New(&js)
	for _, seed := range []int64{20240804, 7, -99, 1<<40 + 12345} {
		ref := rand.New(rand.NewSource(seed))
		js.Seed(seed)
		for i := 0; i < 300; i++ {
			switch i % 3 {
			case 0:
				if got, want := r.ExpFloat64(), ref.ExpFloat64(); got != want {
					t.Fatalf("seed %d draw %d: ExpFloat64 = %v, want %v", seed, i, got, want)
				}
			case 1:
				if got, want := r.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 2:
				if got, want := r.Intn(1000), ref.Intn(1000); got != want {
					t.Fatalf("seed %d draw %d: Intn = %d, want %d", seed, i, got, want)
				}
			}
		}
	}
}

// TestJitterSourceSeedIsAllocFree pins the kernel contract: re-seeding
// and drawing from an existing jitterSource never allocates.
func TestJitterSourceSeedIsAllocFree(t *testing.T) {
	var js jitterSource
	r := rand.New(&js)
	var sink float64
	n := testing.AllocsPerRun(200, func() {
		js.Seed(12345)
		for i := 0; i < 6; i++ {
			sink += r.ExpFloat64()
		}
	})
	if n != 0 {
		t.Fatalf("seed+draw allocates %v per run, want 0", n)
	}
	_ = sink
}
