package world

import (
	"testing"
	"time"

	"vzlens/internal/bgp"
	"vzlens/internal/geo"
	"vzlens/internal/months"
)

// mustBuild is the test-only panicking form of Build.
func mustBuild(cfg Config) *World {
	w, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// testWorld builds one shared world for the calibration tests.
var testWorld = mustBuild(Config{})

func TestCANTVUpstreamTimeline(t *testing.T) {
	// Figure 8: steady rise to 11 upstreams by 2013, decline to 3 by
	// 2020, recent rebound.
	if n := len(CANTVProvidersAt(mm(2013, time.January))); n != 11 {
		t.Errorf("upstreams 2013 = %d, want 11", n)
	}
	if n := len(CANTVProvidersAt(mm(2020, time.January))); n != 3 {
		t.Errorf("upstreams 2020 = %d, want 3", n)
	}
	if n := len(CANTVProvidersAt(mm(2023, time.January))); n < 5 {
		t.Errorf("upstreams 2023 = %d, want rebound >= 5", n)
	}
	if n := len(CANTVProvidersAt(mm(1998, time.June))); n < 2 || n > 4 {
		t.Errorf("upstreams 1998 = %d, want small early set", n)
	}
}

func TestUSProvidersDepartAfter2013(t *testing.T) {
	// Figure 9: after the departures, Columbus Networks is the only
	// remaining US-based provider.
	usProviders := map[bgp.ASN]bool{
		ASVerizon: true, ASSprint: true, ASATT: true, ASGTT: true,
		ASnLayer: true, ASLevel3: true, ASGBLX: true, ASColumbus: true,
	}
	at2019 := CANTVProvidersAt(mm(2019, time.January))
	for _, p := range at2019 {
		if usProviders[p] && p != ASColumbus {
			t.Errorf("US provider %d still serving CANTV in 2019", p)
		}
	}
	found := false
	for _, p := range at2019 {
		if p == ASColumbus {
			found = true
		}
	}
	if !found {
		t.Error("Columbus Networks should remain")
	}
	// Named departures at the documented times.
	checkGone := func(asn bgp.ASN, m months.Month) {
		t.Helper()
		for _, p := range CANTVProvidersAt(m) {
			if p == asn {
				t.Errorf("AS%d should have departed by %v", asn, m)
			}
		}
	}
	checkGone(ASVerizon, mm(2014, time.January)) // 2013
	checkGone(ASSprint, mm(2014, time.January))  // 2013
	checkGone(ASATT, mm(2014, time.January))     // 2013
	checkGone(ASGTT, mm(2018, time.January))     // 2017
	checkGone(ASnLayer, mm(2018, time.January))  // 2017
	checkGone(ASLevel3, mm(2019, time.January))  // 2018
	checkGone(ASGBLX, mm(2019, time.January))    // 2018
}

func TestCANTVDownstreamGrowth(t *testing.T) {
	if n := cantvCustomerCount(mm(2006, time.June)); n != 0 {
		t.Errorf("customers before nationalization = %d", n)
	}
	n2015 := cantvCustomerCount(mm(2015, time.January))
	n2024 := cantvCustomerCount(mm(2024, time.January))
	if n2015 < 5 || n2015 > 15 {
		t.Errorf("customers 2015 = %d", n2015)
	}
	if n2024 < 18 || n2024 > 25 {
		t.Errorf("customers 2024 = %d, want ~20", n2024)
	}
}

func TestAddressSpaceSharesFigure2(t *testing.T) {
	// CANTV dominates: peak share near 69%, long-run average near 43%.
	var sum float64
	var n int
	peak := 0.0
	for m := mm(2008, time.January); !m.After(mm(2024, time.January)); m = m.Add(3) {
		rib := buildVERIB(m)
		total := 0.0
		for _, asn := range append([]bgp.ASN{ASCANTV, ASTelefonica}, veOthers()...) {
			total += float64(rib.AnnouncedSpace(asn))
		}
		if total == 0 {
			continue
		}
		share := float64(rib.AnnouncedSpace(ASCANTV)) / total
		sum += share
		n++
		if share > peak {
			peak = share
		}
	}
	avg := sum / float64(n)
	if avg < 0.40 || avg > 0.58 {
		t.Errorf("CANTV average share = %.2f, want ~0.43-0.55", avg)
	}
	if peak < 0.60 || peak > 0.78 {
		t.Errorf("CANTV peak share = %.2f, want ~0.69", peak)
	}
}

func veOthers() []bgp.ASN {
	var out []bgp.ASN
	for asn := range otherVEPrefixes {
		out = append(out, asn)
	}
	return out
}

func TestTelefonicaNarrowsThenContracts(t *testing.T) {
	shareAt := func(m months.Month) (cantv, telf float64) {
		rib := buildVERIB(m)
		total := 0.0
		for _, asn := range append([]bgp.ASN{ASCANTV, ASTelefonica}, veOthers()...) {
			total += float64(rib.AnnouncedSpace(asn))
		}
		return float64(rib.AnnouncedSpace(ASCANTV)) / total,
			float64(rib.AnnouncedSpace(ASTelefonica)) / total
	}
	c13, t13 := shareAt(mm(2013, time.June))
	gap13 := c13 - t13
	if gap13 > 0.20 {
		t.Errorf("2013 gap = %.2f, want narrow (~0.11)", gap13)
	}
	c17, t17 := shareAt(mm(2017, time.June))
	gap17 := c17 - t17
	if gap17 <= gap13 {
		t.Errorf("gap should re-widen after the 2016 contraction: %.2f vs %.2f", gap17, gap13)
	}
	// Telefonica's announced space shrinks between 2016 and 2017.
	rib16 := buildVERIB(mm(2016, time.January))
	rib17 := buildVERIB(mm(2017, time.January))
	if rib17.AnnouncedSpace(ASTelefonica) >= rib16.AnnouncedSpace(ASTelefonica) {
		t.Error("Telefonica space should contract after June 2016")
	}
	// And recovers with the June 2023 aggregates.
	rib23 := buildVERIB(mm(2023, time.December))
	if rib23.AnnouncedSpace(ASTelefonica) <= rib17.AnnouncedSpace(ASTelefonica) {
		t.Error("Telefonica space should recover in 2023")
	}
}

func TestPrefixVisibilityFigure14(t *testing.T) {
	arch := testWorld.RIBArchive(mm(2016, time.January), mm(2024, time.January))
	matrix := arch.VisibilityMatrix(ASTelefonica)
	gone := matrix["161.255.0.0/17"]
	if len(gone) == 0 {
		t.Fatal("161.255.0.0/17 never visible")
	}
	last := gone[len(gone)-1]
	if !last.Before(mm(2016, time.July)) {
		t.Errorf("161.255.0.0/17 last seen %v, want before 2016-07", last)
	}
	agg := matrix["179.20.0.0/14"]
	if len(agg) == 0 {
		t.Fatal("179.20.0.0/14 never visible")
	}
	if agg[0].Before(mm(2023, time.June)) {
		t.Errorf("179.20.0.0/14 first seen %v, want 2023-06", agg[0])
	}
}

func TestRegistryConsistentWithRIB(t *testing.T) {
	reg := testWorld.Registry()
	// CANTV's delegated space at 2024 matches its long-held announcements.
	canv := reg.IPv4HolderTotal("ORG-CANV", mm(2024, time.January))
	rib := buildVERIB(mm(2024, time.January))
	announcedCANTV := rib.AnnouncedSpace(ASCANTV) + rib.AnnouncedSpace(ASMovilnet)
	ratio := float64(announcedCANTV) / float64(canv)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("announced/delegated = %.2f, want ~1", ratio)
	}
	if got := reg.Holders("VE"); len(got) < 5 {
		t.Errorf("VE holders = %v", got)
	}
}

func TestFacilityGrowthFigure3(t *testing.T) {
	at := func(m months.Month) map[string]int {
		return testWorld.PeeringDBSnapshot(m).FacilityCount()
	}
	c18 := at(mm(2018, time.April))
	c24 := at(mm(2024, time.January))
	sum := func(counts map[string]int) int {
		total := 0
		for _, n := range counts {
			total += n
		}
		return total
	}
	if got := sum(c18); got < 170 || got > 195 {
		t.Errorf("region facilities 2018 = %d, want ~180", got)
	}
	if got := sum(c24); got < 535 || got > 565 {
		t.Errorf("region facilities 2024 = %d, want ~552", got)
	}
	if c18["BR"] != 102 || c24["BR"] != 311 {
		t.Errorf("BR = %d → %d, want 102 → 311", c18["BR"], c24["BR"])
	}
	if c18["MX"] != 11 || c24["MX"] != 45 {
		t.Errorf("MX = %d → %d, want 11 → 45", c18["MX"], c24["MX"])
	}
	if c18["VE"] != 0 || c24["VE"] != 4 {
		t.Errorf("VE = %d → %d, want 0 → 4", c18["VE"], c24["VE"])
	}
	if c18["CR"] != 3 || c24["CR"] != 8 {
		t.Errorf("CR = %d → %d, want 3 → 8 (ICE comparison)", c18["CR"], c24["CR"])
	}
}

func TestVEFacilityStory(t *testing.T) {
	// Two facilities registered in 2021, the rest in 2023 (Section 5.1).
	if n := len(testWorld.VEFacilityNamesAt(mm(2021, time.December))); n != 2 {
		t.Errorf("VE facilities end-2021 = %d, want 2", n)
	}
	names := testWorld.VEFacilityNamesAt(mm(2023, time.June))
	if len(names) != 4 {
		t.Fatalf("VE facilities 2023 = %v", names)
	}
	// The Lumen→Cirion rename after the Stonepeak sale.
	early := testWorld.VEFacilityNamesAt(mm(2022, time.January))
	if early[0] != "Lumen La Urbina" {
		t.Errorf("2022-01 name = %q, want Lumen La Urbina", early[0])
	}
	if names[0] != "Cirion La Urbina" {
		t.Errorf("2023 name = %q, want Cirion La Urbina", names[0])
	}
}

func TestVEFacilityMembershipFigure15(t *testing.T) {
	snap := testWorld.PeeringDBSnapshot(mm(2023, time.December))
	cirion, ok := snap.FacilityByName("Cirion La Urbina")
	if !ok {
		t.Fatal("Cirion La Urbina missing")
	}
	if got := len(snap.NetworksAt(cirion.ID)); got != 11 {
		t.Errorf("Cirion members = %d, want 11", got)
	}
	dayco, _ := snap.FacilityByName("Daycohost - Caracas")
	if got := len(snap.NetworksAt(dayco.ID)); got < 2 || got > 3 {
		t.Errorf("Daycohost members = %d, want 2-3", got)
	}
	giga, _ := snap.FacilityByName("GigaPOP Maracaibo")
	if got := len(snap.NetworksAt(giga.ID)); got != 0 {
		t.Errorf("GigaPOP members = %d, want 0", got)
	}
	globe, _ := snap.FacilityByName("Globenet Maiquetia")
	if got := len(snap.NetworksAt(globe.ID)); got != 2 {
		t.Errorf("Globenet members = %d, want 2", got)
	}
}

func TestFleetMatchesAppendixF(t *testing.T) {
	f := testWorld.Fleet
	ve16 := f.CountByCountry(mm(2016, time.January))["VE"]
	ve24 := f.CountByCountry(mm(2024, time.January))["VE"]
	if ve16 != 10 {
		t.Errorf("VE probes 2016 = %d, want 10", ve16)
	}
	if ve24 != 30 {
		t.Errorf("VE probes 2024 = %d, want 30", ve24)
	}
	// CANTV hosts only 8 probes.
	cantv := 0
	for _, p := range f.ActiveIn("VE", mm(2024, time.January)) {
		if p.ASN == ASCANTV {
			cantv++
		}
	}
	if cantv != 8 {
		t.Errorf("CANTV probes = %d, want 8", cantv)
	}
	// VE ranks 6th in the region.
	rank, _ := f.CountryRank("VE", mm(2023, time.December))
	if rank != 6 {
		t.Errorf("VE probe rank = %d, want 6", rank)
	}
	// Regional totals ~300 → ~450+.
	total := func(m months.Month) int {
		sum := 0
		for cc, n := range f.CountByCountry(m) {
			if c, ok := geo.LookupCountry(cc); ok && c.LACNIC {
				sum += n
			}
		}
		return sum
	}
	if got := total(mm(2016, time.January)); got < 280 || got > 330 {
		t.Errorf("region probes 2016 = %d, want ~300", got)
	}
	if got := total(mm(2024, time.January)); got < 430 || got > 530 {
		t.Errorf("region probes 2024 = %d, want ~450+", got)
	}
}

func TestIXPHeatmapFigure10(t *testing.T) {
	// Computed over the membership and population tables.
	members := testWorld.IXPMembership()
	if members.Present("AR-IX", testWorld.Nets["VE"].Transit) {
		t.Error("CANTV must not peer at AR-IX")
	}
	// Domestic coverage shares.
	share := func(exName, cc string) float64 {
		var asns []bgp.ASN
		for _, asn := range members.Members(exName) {
			if est, ok := testWorld.Pop.Lookup(asn); ok && est.Country == cc {
				asns = append(asns, asn)
			}
		}
		return testWorld.Pop.ShareOf(cc, asns)
	}
	checks := []struct {
		ex, cc string
		want   float64
		tol    float64
	}{
		{"AR-IX", "AR", 0.624, 0.03},
		{"IX.br (SP)", "BR", 0.4553, 0.03},
		{"PIT Chile (SCL)", "CL", 0.4957, 0.03},
		{"NAP.CO", "CO", 0.6368, 0.03},
		{"Equinix Bogota", "VE", 0.04, 0.015},
	}
	for _, c := range checks {
		got := share(c.ex, c.cc)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s share of %s = %.3f, want %.3f±%.3f", c.ex, c.cc, got, c.want, c.tol)
		}
	}
	// Uruguay present at four foreign exchanges.
	uy := testWorld.Nets["UY"].Eyeballs[0]
	for _, ex := range []string{"AR-IX", "IX.br (SP)", "IXpy", "PIT Chile (SCL)"} {
		if !members.Present(ex, uy) {
			t.Errorf("UY should peer at %s", ex)
		}
	}
}

func TestUSIXPPresenceAppendixI(t *testing.T) {
	members := testWorld.USIXPMembership()
	seen := map[bgp.ASN]bool{}
	for _, ex := range members.Exchanges() {
		for _, asn := range members.Members(ex) {
			if est, ok := testWorld.Pop.Lookup(asn); ok && est.Country == "VE" {
				seen[asn] = true
			}
		}
	}
	if len(seen) != 7 {
		t.Errorf("VE networks at US IXPs = %d, want 7", len(seen))
	}
	var asns []bgp.ASN
	for asn := range seen {
		asns = append(asns, asn)
	}
	shareVE := testWorld.Pop.ShareOf("VE", asns)
	if shareVE < 0.05 || shareVE > 0.09 {
		t.Errorf("VE US-IXP population share = %.3f, want ~0.07", shareVE)
	}
	// CANTV itself never peers in the US.
	if seen[ASCANTV] {
		t.Error("CANTV should not peer at US exchanges")
	}
}

func TestOffnetStoryFigure7(t *testing.T) {
	// Google and Akamai present in VE (including CANTV) before the
	// crisis; Facebook never in CANTV; Netflix in CANTV only from 2021.
	g2013 := testWorld.OffnetHosts("Google", "VE", 2013)
	if len(g2013) == 0 || g2013[0] != ASCANTV {
		t.Errorf("Google 2013 VE hosts = %v, want CANTV first", g2013)
	}
	for year := 2014; year <= 2021; year++ {
		for _, asn := range testWorld.OffnetHosts("Facebook", "VE", year) {
			if asn == ASCANTV {
				t.Errorf("Facebook in CANTV in %d", year)
			}
		}
	}
	inCANTV := func(hosts []bgp.ASN) bool {
		for _, h := range hosts {
			if h == ASCANTV {
				return true
			}
		}
		return false
	}
	if inCANTV(testWorld.OffnetHosts("Netflix", "VE", 2020)) {
		t.Error("Netflix in CANTV before 2021")
	}
	if !inCANTV(testWorld.OffnetHosts("Netflix", "VE", 2021)) {
		t.Error("Netflix should enter CANTV in 2021")
	}
	// The minor hypergiants never deploy in Venezuela.
	for _, hg := range []string{"Microsoft", "Cloudflare", "Amazon", "Limelight", "CDNetworks", "Alibaba"} {
		if hosts := testWorld.OffnetHosts(hg, "VE", 2021); len(hosts) != 0 {
			t.Errorf("%s hosts in VE = %v, want none", hg, hosts)
		}
	}
}

func TestOffnetScanDetection(t *testing.T) {
	// Round trip: detection over the generated scan recovers the hosts.
	scan := testWorld.OffnetScan(2021)
	detected := offnetDetect(scan)
	for _, provider := range []string{"Google", "Akamai", "Facebook", "Netflix"} {
		want := testWorld.OffnetHosts(provider, "VE", 2021)
		got := map[bgp.ASN]bool{}
		for _, asn := range detected[provider] {
			got[asn] = true
		}
		for _, asn := range want {
			if !got[asn] {
				t.Errorf("%s: host %d not detected", provider, asn)
			}
		}
	}
}

func TestPeeringDBSnapshotCarriesIXData(t *testing.T) {
	snap := testWorld.PeeringDBSnapshot(mm(2024, time.January))
	ix, ok := snap.IXByName("AR-IX")
	if !ok {
		t.Fatal("AR-IX missing from the dump")
	}
	members := snap.NetworksAtIX(ix.ID)
	if len(members) < 3 {
		t.Errorf("AR-IX members = %d", len(members))
	}
	// The Fig 10 story is visible from the dump alone: no Venezuelan
	// exchange, and VE networks appear only at Equinix Bogota.
	if got := snap.IXsIn("VE"); len(got) != 0 {
		t.Errorf("VE exchanges in dump = %v", got)
	}
	bog, ok := snap.IXByName("Equinix Bogota")
	if !ok {
		t.Fatal("Equinix Bogota missing")
	}
	veNets := 0
	for _, n := range snap.NetworksAtIX(bog.ID) {
		if n.Country == "VE" {
			veNets++
		}
	}
	if veNets != 1 {
		t.Errorf("VE networks at Equinix Bogota = %d, want 1", veNets)
	}
	// Pre-2020 dumps omit IX coverage.
	early := testWorld.PeeringDBSnapshot(mm(2019, time.January))
	if len(early.IXs) != 0 {
		t.Errorf("2019 dump has %d exchanges, want 0", len(early.IXs))
	}
}

func TestRegistryCarriesASNAndIPv6(t *testing.T) {
	reg := testWorld.Registry()
	m := mm(2024, time.January)
	// One ASN delegation per prefix-originating network.
	if got := reg.CountByType("VE", "asn", m); got < 9 {
		t.Errorf("VE ASN delegations = %d, want >= 9", got)
	}
	// CANTV's single IPv6 block, delegated 2019.
	if got := reg.CountByType("VE", "ipv6", m); got != 1 {
		t.Errorf("VE IPv6 delegations = %d, want 1", got)
	}
	if got := reg.CountByType("VE", "ipv6", mm(2018, time.January)); got != 0 {
		t.Errorf("VE IPv6 before 2019 = %d, want 0", got)
	}
}
