package world

import (
	"testing"
	"time"

	"vzlens/internal/atlas"
	"vzlens/internal/dnsroot"
	"vzlens/internal/netsim"
)

func TestAccessDelayTrajectories(t *testing.T) {
	// Venezuela's access delay only improves with the 2022 fiber plans.
	early := AccessDelayMs("VE", mm(2016, time.January))
	late := AccessDelayMs("VE", mm(2023, time.December))
	if late >= early {
		t.Errorf("VE access delay %v -> %v, want improvement", early, late)
	}
	// Brazil's fiber boom cuts access latency by more than half.
	br14 := AccessDelayMs("BR", mm(2014, time.January))
	br23 := AccessDelayMs("BR", mm(2023, time.December))
	if br23 > br14/2 {
		t.Errorf("BR access delay %v -> %v", br14, br23)
	}
	// Unknown countries take the default.
	if got := AccessDelayMs("ZZ", mm(2020, time.January)); got != defaultAccessMs {
		t.Errorf("default access = %v", got)
	}
	// Clamping outside the anchor range.
	if AccessDelayMs("VE", mm(2010, time.January)) != AccessDelayMs("VE", mm(2014, time.January)) {
		t.Error("pre-range access should clamp to the first anchor")
	}
}

func TestGPDNSSitesGrowOverTime(t *testing.T) {
	n2014 := len(testWorld.GPDNSSitesAt(mm(2014, time.June)))
	n2023 := len(testWorld.GPDNSSitesAt(mm(2023, time.June)))
	if n2014 >= n2023 {
		t.Errorf("GPDNS sites %d -> %d, want growth", n2014, n2023)
	}
	// Never a Venezuelan site.
	for _, m := range []int{0, 60, 118} {
		for _, site := range testWorld.GPDNSSitesAt(mm(2014, time.January).Add(m)) {
			if site.City.Country == "VE" {
				t.Fatalf("GPDNS site in Venezuela at offset %d", m)
			}
		}
	}
}

func TestRootSitesHostAssignment(t *testing.T) {
	m := mm(2017, time.March)
	sitesL, instsL := testWorld.RootSitesAt('L', m)
	if len(sitesL) != len(instsL) || len(sitesL) == 0 {
		t.Fatalf("L sites = %d, insts = %d", len(sitesL), len(instsL))
	}
	foundCaracas := false
	for i, inst := range instsL {
		if inst.City.Country == "VE" && inst.City.Name == "Caracas" {
			foundCaracas = true
			if sitesL[i].Host != ASCANTV {
				t.Errorf("Caracas L root hosted by %d, want CANTV", sitesL[i].Host)
			}
		}
	}
	if !foundCaracas {
		t.Error("Caracas L root missing in 2017")
	}
	// The Maracaibo replacement sits inside Airtek.
	m2 := mm(2021, time.January)
	sites2, insts2 := testWorld.RootSitesAt('L', m2)
	for i, inst := range insts2 {
		if inst.City.Name == "Maracaibo" && sites2[i].Host != 61461 {
			t.Errorf("Maracaibo L root hosted by %d, want Airtek 61461", sites2[i].Host)
		}
	}
}

func TestLocalizeSites(t *testing.T) {
	gru := cityAt("GRU")
	mia := cityAt("MIA")
	sites := []netsim.Site{
		{Host: 4230, City: gru},
		{Host: ASGoogle, City: mia},
	}
	brProbe := atlas.Probe{Country: "BR", ASN: 265123}
	local := localizeSites(sites, brProbe)
	if local[0].Host != brProbe.ASN {
		t.Errorf("domestic site host = %d, want probe AS", local[0].Host)
	}
	if local[1].Host != ASGoogle {
		t.Errorf("foreign site host rewritten to %d", local[1].Host)
	}
	// The original slice is untouched.
	if sites[0].Host != 4230 {
		t.Error("localizeSites mutated its input")
	}
	// A probe with no domestic sites gets the original slice back.
	veProbe := atlas.Probe{Country: "VE", ASN: ASCANTV}
	if got := localizeSites(sites, veProbe); &got[0] != &sites[0] {
		t.Error("no-rewrite case should return the input slice")
	}
}

func TestTopologyCacheReuse(t *testing.T) {
	w := mustBuild(Config{})
	a := w.TopologyAt(mm(2020, time.June))
	b := w.TopologyAt(mm(2020, time.June))
	if a != b {
		t.Error("monthly topology not cached")
	}
	c := w.TopologyAt(mm(2020, time.July))
	if a == c {
		t.Error("distinct months share a topology")
	}
}

func TestRootSitesEveryLetterResolvable(t *testing.T) {
	m := mm(2023, time.June)
	resolver := testWorld.TopologyAt(m)
	probe := testWorld.Fleet.ActiveIn("VE", m)[0]
	for _, letter := range dnsroot.Letters() {
		sites, _ := testWorld.RootSitesAt(letter, m)
		if len(sites) == 0 {
			t.Errorf("%s: no instances deployed", letter)
			continue
		}
		if _, _, err := resolver.CatchmentIndex(probe.ASN, probe.City, sites, netsim.PolicyBGP); err != nil {
			t.Errorf("%s: catchment failed: %v", letter, err)
		}
	}
}
