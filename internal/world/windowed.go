package world

import (
	"context"

	"vzlens/internal/atlas"
	"vzlens/internal/bgp"
	"vzlens/internal/months"
	"vzlens/internal/obs"
)

// This file is the incremental half of the scenario engine: a scenario
// whose edits are windowed to a few months only differs from the
// baseline inside those windows, because the per-probe-month RNG
// streams are scenario-blind (sampleSeed hashes only seed, month,
// probe) and every other input to a monthly snapshot is month-local.
// The windowed campaign runs below therefore re-simulate only the
// months a plan can touch and splice the caller's memoized baseline in
// for the rest — for a sweep of hundreds of single-window specs this
// turns N full campaign replays into N small fractions of one.

// topoActiveAt reports whether the plan's topology edits (links,
// depeers, moves, or a provider-timeline shift) can alter month m.
// Conservative by design: a window that covers m counts even if the
// edit turns out to be a no-op against that month's topology — the
// recomputation then reproduces the baseline bytes exactly.
func (p *ScenarioPlan) topoActiveAt(m months.Month) bool {
	if s := p.EventShiftMonths; s != 0 {
		if !equalASNs(CANTVProvidersAt(m), CANTVProvidersAt(m.Add(-s))) {
			return true
		}
	}
	for _, l := range p.AddLinks {
		if windowActive(l.From, l.Until, m) {
			return true
		}
	}
	for _, l := range p.RemoveLinks {
		if windowActive(l.From, l.Until, m) {
			return true
		}
	}
	for _, d := range p.Depeers {
		if windowActive(d.From, d.Until, m) {
			return true
		}
	}
	for _, mv := range p.Moves {
		if windowActive(mv.From, mv.Until, m) {
			return true
		}
	}
	return false
}

// AffectsTraceAt reports whether the plan can change the traceroute
// campaign's month m: any topology edit, or a GPDNS site change, active
// that month. Root replica edits never reach the traceroute campaign.
func (p *ScenarioPlan) AffectsTraceAt(m months.Month) bool {
	if p.topoActiveAt(m) {
		return true
	}
	for _, ch := range p.GPDNS {
		if windowActive(ch.From, ch.Until, m) {
			return true
		}
	}
	return false
}

// AffectsChaosAt is AffectsTraceAt for the CHAOS sweep, whose anycast
// targets are the root letters: root replica edits matter, GPDNS edits
// do not.
func (p *ScenarioPlan) AffectsChaosAt(m months.Month) bool {
	if p.topoActiveAt(m) {
		return true
	}
	for _, ch := range p.Roots {
		if windowActive(ch.From, ch.Until, m) {
			return true
		}
	}
	return false
}

// equalASNs compares two sorted provider lists (CANTVProvidersAt
// returns them sorted).
func equalASNs(a, b []bgp.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TraceCampaignScenarioWindowed simulates the traceroute campaign under
// plan, re-simulating only the months plan can affect and reusing
// base's samples for the rest. It returns the campaign and the number
// of months actually re-simulated. The output is bit-identical to
// TraceCampaignScenario: outside the affected months the overlay is
// empty and the RNG streams are scenario-blind, so the baseline samples
// ARE the scenario samples. A nil base falls back to the full replay.
func (w *World) TraceCampaignScenarioWindowed(ctx context.Context, plan *ScenarioPlan, base *atlas.TraceCampaign) (*atlas.TraceCampaign, int) {
	if plan == nil {
		return w.TraceCampaignCtx(ctx), 0
	}
	ms := w.campaignMonths(w.Config.TraceStart, w.Config.TraceEnd)
	if base == nil {
		return w.traceCampaign(ctx, plan), len(ms)
	}
	ctx, span := obs.StartSpan(ctx, "campaign.trace")
	span.SetAttr("scenario", plan.Key)
	span.SetAttr("windowed", true)
	affected := make([]bool, len(ms))
	var idx []int
	for i, m := range ms {
		if plan.AffectsTraceAt(m) {
			affected[i] = true
			idx = append(idx, i)
		}
	}
	frags := make([][]atlas.TraceSample, len(ms))
	forEachIndex(len(idx), w.workers(), func(k int) {
		i := idx[k]
		// The arena pool is World-level, so a sweep of many specs reuses
		// the same scratch columns across specs, not just across months.
		ar, _ := w.acquireArena()
		frags[i] = w.traceMonth(ctx, ms[i], plan, ar)
		w.releaseArena(ar)
	})
	byMonth := traceSamplesByMonth(base)
	tc := atlas.NewTraceCampaign()
	for i, m := range ms {
		if affected[i] {
			tc.AddAll(frags[i])
		} else {
			tc.AddAll(byMonth[m])
		}
	}
	span.SetAttr("months", len(ms))
	span.SetAttr("recomputed", len(idx))
	span.SetAttr("samples", tc.Len())
	span.End()
	return tc, len(idx)
}

// ChaosCampaignScenarioWindowed is TraceCampaignScenarioWindowed for
// the CHAOS sweep.
func (w *World) ChaosCampaignScenarioWindowed(ctx context.Context, plan *ScenarioPlan, base *atlas.ChaosCampaign) (*atlas.ChaosCampaign, int) {
	if plan == nil {
		return w.ChaosCampaignCtx(ctx), 0
	}
	ms := w.campaignMonths(w.Config.ChaosStart, w.Config.ChaosEnd)
	if base == nil {
		return w.chaosCampaign(ctx, plan), len(ms)
	}
	ctx, span := obs.StartSpan(ctx, "campaign.chaos")
	span.SetAttr("scenario", plan.Key)
	span.SetAttr("windowed", true)
	affected := make([]bool, len(ms))
	var idx []int
	for i, m := range ms {
		if plan.AffectsChaosAt(m) {
			affected[i] = true
			idx = append(idx, i)
		}
	}
	frags := make([][]atlas.ChaosResult, len(ms))
	forEachIndex(len(idx), w.workers(), func(k int) {
		i := idx[k]
		ar, _ := w.acquireArena()
		frags[i] = w.chaosMonth(ctx, ms[i], plan, ar)
		w.releaseArena(ar)
	})
	byMonth := chaosResultsByMonth(base)
	cc := atlas.NewChaosCampaign()
	for i, m := range ms {
		if affected[i] {
			cc.AddAll(frags[i])
		} else {
			cc.AddAll(byMonth[m])
		}
	}
	span.SetAttr("months", len(ms))
	span.SetAttr("recomputed", len(idx))
	span.SetAttr("results", cc.Len())
	span.End()
	return cc, len(idx)
}

// traceSamplesByMonth partitions a campaign's samples by month in one
// pass, preserving encounter order within each month — the order the
// simulator produced them in, which the splice must reproduce for
// byte-identical output.
func traceSamplesByMonth(tc *atlas.TraceCampaign) map[months.Month][]atlas.TraceSample {
	out := map[months.Month][]atlas.TraceSample{}
	for _, s := range tc.Samples() {
		out[s.Month] = append(out[s.Month], s)
	}
	return out
}

// chaosResultsByMonth is traceSamplesByMonth for CHAOS results.
func chaosResultsByMonth(cc *atlas.ChaosCampaign) map[months.Month][]atlas.ChaosResult {
	out := map[months.Month][]atlas.ChaosResult{}
	for _, r := range cc.Results() {
		out[r.Month] = append(out[r.Month], r)
	}
	return out
}
