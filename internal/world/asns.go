// Package world builds the coherent synthetic Latin-American Internet
// that every dataset in vzlens derives from: autonomous systems and their
// populations, the interdomain graph and its monthly evolution (including
// CANTV's documented transit history), address allocations and
// announcements, peering facilities, IXP memberships, hypergiant off-net
// roll-outs, the RIPE Atlas probe fleet, and the two active-measurement
// campaigns simulated over the topology. One World value is internally
// consistent: joins across datasets behave like joins across the real
// archives.
package world

import (
	"fmt"
	"sort"

	"vzlens/internal/aspop"
	"vzlens/internal/bgp"
	"vzlens/internal/geo"
)

// Transit providers with documented relationships to CANTV (Figure 9) and
// other well-known networks referenced across the paper.
const (
	ASCANTV      bgp.ASN = 8048
	ASTelefonica bgp.ASN = 6306
	ASMovilnet   bgp.ASN = 27889

	ASVerizon   bgp.ASN = 701
	ASSprint    bgp.ASN = 1239
	ASArelion   bgp.ASN = 1299
	ASGTT       bgp.ASN = 3257
	ASLevel3    bgp.ASN = 3356
	ASGBLX      bgp.ASN = 3549
	ASNetRail   bgp.ASN = 4004
	ASnLayer    bgp.ASN = 4436
	ASOrange    bgp.ASN = 5511
	ASTelecomIT bgp.ASN = 6762
	ASATT       bgp.ASN = 7018
	ASISPNet    bgp.ASN = 7927
	ASTelxius   bgp.ASN = 12956
	ASLatamTel  bgp.ASN = 19962
	ASColumbus  bgp.ASN = 23520
	ASGoldData  bgp.ASN = 28007
	ASVtal      bgp.ASN = 52320
	ASGoldDataI bgp.ASN = 262589

	ASGoogle bgp.ASN = 15169
)

// CountryNet describes a country's synthetic network fleet: one national
// transit operator plus eyeball access networks whose populations follow
// a fixed market-share split.
type CountryNet struct {
	CC       string
	Transit  bgp.ASN
	Eyeballs []bgp.ASN
}

// internetUsers approximates each country's Internet population
// (millions). Venezuela's is replaced by the exact Table 1 composition.
var internetUsers = map[string]float64{
	"BR": 160, "MX": 96, "AR": 39, "CO": 35, "PE": 24, "VE": 20.1,
	"CL": 15, "EC": 13, "GT": 9, "BO": 8, "DO": 8, "CU": 6,
	"HN": 5, "PY": 5, "SV": 4, "HT": 4, "CR": 4, "PA": 3.5,
	"UY": 3, "NI": 3, "TT": 1, "GY": 0.6, "SR": 0.4, "BZ": 0.3,
	"GF": 0.15, "CW": 0.15, "SX": 0.03, "BQ": 0.02,
}

// realTransits gives the highlighted countries their actual national
// operators; remaining countries use synthetic registry-range ASNs.
var realTransits = map[string]bgp.ASN{
	"VE": ASCANTV,
	"BR": 4230,  // Claro/Embratel
	"AR": 7303,  // Telecom Argentina
	"CL": 6471,  // ENTEL Chile
	"MX": 8151,  // Uninet/Telmex
	"CO": 3816,  // Telecom Colombia
	"PE": 6147,  // Telefonica del Peru
	"EC": 14420, // CNT Ecuador
	"UY": 6057,  // ANTEL
	"CR": 11830, // ICE, the state-owned provider the paper contrasts
	"PA": 11556,
}

// eyeballShares splits each country's population across its access
// networks, largest first.
var eyeballShares = []float64{0.34, 0.22, 0.16, 0.12, 0.09, 0.07}

// buildNets constructs every country's fleet deterministically. Venezuela
// keeps its real provider list (from the Table 1 estimates); other
// countries get one transit plus six eyeballs.
func buildNets() map[string]CountryNet {
	out := map[string]CountryNet{}
	ccs := geo.LACNICCountries()
	for idx, cc := range ccs {
		if cc == "VE" {
			out[cc] = CountryNet{
				CC:      cc,
				Transit: ASCANTV,
				Eyeballs: []bgp.ASN{
					ASCANTV, 21826, ASTelefonica, 264731, 264628,
					61461, 263703, 11562, 272809, ASMovilnet,
				},
			}
			continue
		}
		transit, ok := realTransits[cc]
		if !ok {
			transit = bgp.ASN(264000 + idx*50)
		}
		eyeballs := make([]bgp.ASN, len(eyeballShares))
		for k := range eyeballs {
			eyeballs[k] = bgp.ASN(265000 + idx*50 + k)
		}
		out[cc] = CountryNet{CC: cc, Transit: transit, Eyeballs: eyeballs}
	}
	return out
}

// buildPopulations assembles the regional population table: the exact
// Venezuelan composition plus share-split fleets everywhere else.
func buildPopulations(nets map[string]CountryNet) *aspop.Estimates {
	est := aspop.Venezuela()
	for cc, net := range nets {
		if cc == "VE" {
			continue
		}
		total := internetUsers[cc] * 1e6
		for k, asn := range net.Eyeballs {
			est.Add(aspop.Estimate{
				ASN:     asn,
				Name:    fmt.Sprintf("%s Access Network %d", cc, k+1),
				Country: cc,
				Users:   int64(total * eyeballShares[k]),
			})
		}
	}
	return est
}

// buildOrgs assembles the as2org+-style directory. The Venezuelan state
// operator and its mobile arm share one organization, as the paper notes;
// every other AS maps to its own organization.
func buildOrgs(nets map[string]CountryNet, est *aspop.Estimates) *bgp.OrgMap {
	orgs := bgp.NewOrgMap()
	orgs.Add(bgp.ASInfo{ASN: ASCANTV, Name: "CANTV Servicios, Venezuela", Country: "VE", Org: "ORG-CANV"})
	orgs.Add(bgp.ASInfo{ASN: ASMovilnet, Name: "Telecomunicaciones MOVILNET", Country: "VE", Org: "ORG-CANV"})
	orgs.Add(bgp.ASInfo{ASN: ASTelefonica, Name: "TELEFONICA VENEZOLANA, C.A.", Country: "VE", Org: "ORG-TELF"})
	for cc, net := range nets {
		all := append([]bgp.ASN{net.Transit}, net.Eyeballs...)
		for _, asn := range all {
			if _, ok := orgs.Lookup(asn); ok {
				continue
			}
			name := fmt.Sprintf("AS%d", asn)
			if e, ok := est.Lookup(asn); ok {
				name = e.Name
			}
			orgs.Add(bgp.ASInfo{ASN: asn, Name: name, Country: cc, Org: fmt.Sprintf("ORG-%d", asn)})
		}
	}
	return orgs
}

// sortedCountries returns the fleet countries in deterministic order.
func sortedCountries(nets map[string]CountryNet) []string {
	out := make([]string, 0, len(nets))
	for cc := range nets {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}
