package world

import (
	"vzlens/internal/obs"
)

// worldMetrics holds the campaign engine's observability hooks. Every
// field is a nil-safe obs metric: an un-instrumented World records
// nothing and pays (almost) nothing.
type worldMetrics struct {
	traceRuns, chaosRuns         *obs.Counter
	traceResults, chaosResults   *obs.Counter
	traceMonthDur, chaosMonthDur *obs.Histogram
	traceWall, chaosWall         *obs.Gauge
	traceUtil, chaosUtil         *obs.Gauge

	// Arena-pool hooks: acquisitions, pool misses that built a fresh
	// arena, column regrowths, and the per-campaign time spent checking
	// arenas out (excluded from the utilization gauges, so those keep
	// reporting time spent simulating).
	arenaAcquires, arenaBuilds, arenaGrows *obs.Counter
	traceArenaWait, chaosArenaWait         *obs.Gauge
}

// Instrument registers the campaign engine's metrics on reg: full-run
// counters, per-month simulate-duration histograms, produced
// sample/result counters, and two gauges per campaign — the wall time
// of the last full simulation and its worker utilization (summed
// per-month busy time divided by wall time × effective workers; 1.0
// means the pool never idled). Call during startup, before campaigns
// run concurrently.
func (w *World) Instrument(reg *obs.Registry) {
	trace, chaos := obs.L("campaign", "trace"), obs.L("campaign", "chaos")
	w.met = worldMetrics{
		traceRuns: reg.Counter("vz_campaign_runs_total",
			"Full campaign simulations executed.", trace),
		chaosRuns: reg.Counter("vz_campaign_runs_total",
			"Full campaign simulations executed.", chaos),
		traceResults: reg.Counter("vz_campaign_results_total",
			"Samples/results produced by campaign simulations.", trace),
		chaosResults: reg.Counter("vz_campaign_results_total",
			"Samples/results produced by campaign simulations.", chaos),
		traceMonthDur: reg.Histogram("vz_campaign_month_seconds",
			"Wall time simulating one monthly snapshot.", obs.LatencyBuckets, trace),
		chaosMonthDur: reg.Histogram("vz_campaign_month_seconds",
			"Wall time simulating one monthly snapshot.", obs.LatencyBuckets, chaos),
		traceWall: reg.Gauge("vz_campaign_last_run_seconds",
			"Wall time of the most recent full campaign simulation.", trace),
		chaosWall: reg.Gauge("vz_campaign_last_run_seconds",
			"Wall time of the most recent full campaign simulation.", chaos),
		traceUtil: reg.Gauge("vz_campaign_worker_utilization",
			"Simulating/(wall x workers) for the most recent full simulation, arena acquisition excluded.", trace),
		chaosUtil: reg.Gauge("vz_campaign_worker_utilization",
			"Simulating/(wall x workers) for the most recent full simulation, arena acquisition excluded.", chaos),
		arenaAcquires: reg.Counter("vz_campaign_arena_acquires_total",
			"Arena checkouts from the campaign scratch pool."),
		arenaBuilds: reg.Counter("vz_campaign_arena_builds_total",
			"Pool misses that constructed a fresh campaign arena."),
		arenaGrows: reg.Counter("vz_campaign_arena_grows_total",
			"Arena column regrowths (a month needed more slots than the arena held)."),
		traceArenaWait: reg.Gauge("vz_campaign_arena_wait_seconds",
			"Summed arena-acquisition time of the most recent full simulation.", trace),
		chaosArenaWait: reg.Gauge("vz_campaign_arena_wait_seconds",
			"Summed arena-acquisition time of the most recent full simulation.", chaos),
	}
}
