package world

import "math/rand"

// This file implements jitterSource: a value-type, allocation-free
// replacement for the rand.NewSource generator the campaign kernels
// draw their queueing jitter from. The campaign engine seeds one RNG
// per probe-month (sampleSeed), so the original code paid one ~5KB
// rngSource allocation plus a full 607-word reseed (≈1800 Lehmer
// steps) for every three jitter draws. jitterSource produces the
// exact same stream — bit for bit, so every golden table survives —
// but seeds in O(1) and materializes only the lagged-Fibonacci words a
// draw actually touches, by jumping the underlying Lehmer generator
// directly to the word's position with a precomputed power table.
//
// How it works. math/rand's generator is an additive lagged Fibonacci
// sequence over 607 words with tap 273. Seeding normalizes the seed
// into a Lehmer generator x → 48271·x mod (2³¹−1), warms it up 20
// steps, then derives word i from three consecutive Lehmer values
// (steps 21+3i, 22+3i, 23+3i) XORed with a constant table
// (math/rand's rngCooked). Because the Lehmer step is multiplication
// in a cyclic group, the value at step 21+3i is (48271^(21+3i)·x₀)
// mod (2³¹−1) — one modular multiplication against a precomputed
// power, no iteration. jitterSource exploits this to fill words
// lazily: Seed just records x₀ and bumps an epoch; a word is computed
// on first touch. A probe-month consumes ~4 draws, touching ~8 of the
// 607 words, so the per-probe cost drops by two orders of magnitude.
//
// The cooked table is recovered at init time from an actual
// rand.NewSource stream rather than copied out of the runtime: the
// first 607 raw draws of a known seed determine the seeded word
// vector exactly (see recoverCooked), and XORing out the known
// seed-derived part leaves the constants. rng_test.go pins stream
// equality against math/rand across seeds, draw counts past the
// 607-word wraparound, and the ExpFloat64 consumer the campaigns use.

const (
	lehmerM = 1<<31 - 1 // Lehmer modulus, the Mersenne prime 2³¹−1
	lehmerQ = 44488     // lehmerM / 48271 (Schrage decomposition)
	lehmerR = 3399      // lehmerM % 48271
	rngLen  = 607       // lagged-Fibonacci state words
	rngTap  = 273       // feed-tap distance
	rngMask = 1<<63 - 1 // Int63 mask
)

// seedrand is math/rand's Lehmer step x → 48271·x mod (2³¹−1),
// computed with Schrage's method exactly as the stdlib does.
func seedrand(x int32) int32 {
	hi := x / lehmerQ
	lo := x % lehmerQ
	x = 48271*lo - lehmerR*hi
	if x < 0 {
		x += lehmerM
	}
	return x
}

// lehmerMul is a·b mod (2³¹−1); both operands are below 2³¹ so the
// product fits 64 bits.
func lehmerMul(a, b uint64) uint64 { return a * b % lehmerM }

// seedJump[i] = 48271^(21+3i) mod (2³¹−1): the Lehmer power that jumps
// the normalized seed directly to word i's first derived value (20
// warm-up steps, three steps per preceding word, one step into this
// word).
var seedJump [rngLen]uint64

// rngCooked mirrors math/rand's additive constant table: the seeded
// word i equals seedWords(x₀, i) XOR rngCooked[i]. Recovered at init
// by recoverCooked.
var rngCooked [rngLen]uint64

func init() {
	p := uint64(1)
	for i := 0; i < 21; i++ {
		p = lehmerMul(p, 48271)
	}
	a3 := lehmerMul(lehmerMul(48271, 48271), 48271)
	for i := range seedJump {
		seedJump[i] = p
		p = lehmerMul(p, a3)
	}
	recoverCooked()
}

// normalizeSeed folds an int64 seed into the Lehmer domain [1, 2³¹−2]
// the way math/rand's Seed does.
func normalizeSeed(seed int64) uint64 {
	seed %= lehmerM
	if seed < 0 {
		seed += lehmerM
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// seedWords derives word i's seed-dependent part: three consecutive
// Lehmer values packed as (x₁<<40) ^ (x₂<<20) ^ x₃, with x₁ reached by
// a single modular multiplication against seedJump[i].
func seedWords(x0 uint64, i int32) uint64 {
	x := int32(lehmerMul(x0, seedJump[i]))
	u := uint64(x) << 40
	x = seedrand(x)
	u ^= uint64(x) << 20
	x = seedrand(x)
	u ^= uint64(x)
	return u
}

// recoverCooked reconstructs math/rand's constant table from observable
// output. Seed a reference source and take its first 607 raw draws
// u[1..607]. Draw n adds positions feed=334−n (mod 607) and tap=607−n
// (mod 607) and stores the sum at feed. Tracking which positions still
// hold their post-Seed ("original") values at each draw gives three
// regimes, each solvable for one range of originals:
//
//	n=274..334: tap was overwritten at draw n−273, feed is original
//	            → orig[334−n] = u[n] − u[n−273]      (orig[0..60])
//	n=335..607: feed is original, tap was overwritten at draw n−273
//	            → orig[941−n] = u[n] − u[n−273]      (orig[334..606])
//	n=1..273:   both positions are original
//	            → orig[334−n] = u[n] − orig[607−n]   (orig[61..333])
//
// Subtraction wraps mod 2⁶⁴ like the generator's addition. XORing the
// known seed-derived parts out of the originals leaves the constants.
func recoverCooked() {
	const refSeed = 20240804
	src := rand.NewSource(refSeed).(rand.Source64)
	var u [rngLen + 1]uint64
	for n := 1; n <= rngLen; n++ {
		u[n] = src.Uint64()
	}
	var orig [rngLen]uint64
	for n := 274; n <= 334; n++ {
		orig[334-n] = u[n] - u[n-273]
	}
	for n := 335; n <= rngLen; n++ {
		orig[941-n] = u[n] - u[n-273]
	}
	for n := 1; n <= rngTap; n++ {
		orig[334-n] = u[n] - orig[607-n]
	}
	x0 := normalizeSeed(refSeed)
	for i := range rngCooked {
		rngCooked[i] = orig[i] ^ seedWords(x0, int32(i))
	}
}

// jitterSource is a rand.Source64 reproducing rand.NewSource's stream
// exactly, with O(1) reseeding and lazy state materialization. The
// zero value must be Seeded before use. Not safe for concurrent use;
// each campaign arena embeds its own.
type jitterSource struct {
	x0        uint64 // normalized seed of the current epoch
	tap, feed int32
	epoch     uint32
	vec       [rngLen]uint64 // word i is valid only when stamp[i] == epoch
	stamp     [rngLen]uint32
}

// Seed resets the stream to the same state rand.NewSource(seed) would
// start in, in O(1): words are invalidated by epoch stamp, not cleared.
func (s *jitterSource) Seed(seed int64) {
	s.tap, s.feed = 0, rngLen-rngTap
	s.x0 = normalizeSeed(seed)
	s.epoch++
	if s.epoch == 0 { // stamp wraparound: invalidate everything once
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

// word returns state word i, deriving it from the seed on first touch
// in this epoch.
func (s *jitterSource) word(i int32) uint64 {
	if s.stamp[i] != s.epoch {
		s.vec[i] = seedWords(s.x0, i) ^ rngCooked[i]
		s.stamp[i] = s.epoch
	}
	return s.vec[i]
}

// Uint64 advances the lagged-Fibonacci recurrence one step, exactly as
// math/rand's rngSource.Uint64 does.
func (s *jitterSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.word(s.feed) + s.word(s.tap)
	s.vec[s.feed] = x
	return x
}

// Int63 returns the low 63 bits of the next word, matching
// rngSource.Int63.
func (s *jitterSource) Int63() int64 { return int64(s.Uint64() & rngMask) }
